#!/usr/bin/env python3
"""Promtool-style lint for the /metrics endpoint and --metrics .prom output.

Validates the Prometheus 0.0.4 text exposition this repo emits without
needing promtool in the container:

  * every sample belongs to a family announced by a # TYPE line;
  * family types are valid (counter | gauge | histogram | summary);
  * sample lines parse (name{labels} value) and values are finite floats
    (+Inf allowed only in histogram 'le' labels);
  * no duplicate sample (name + label set);
  * counter family names end in _total;
  * histograms are complete: cumulative le-ordered buckets ending at +Inf,
    with _sum and _count present and _count equal to the +Inf bucket.

Usage: check_prometheus.py FILE   (or '-' for stdin).  Exit 0 clean, 1 with
one line per violation otherwise.
"""

import math
import re
import sys

SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+\S+)?$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def base_family(name, types):
    """Family a sample belongs to, stripping histogram/summary suffixes."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return None


def parse_value(text):
    if text in ("+Inf", "-Inf", "Inf"):
        return math.inf if not text.startswith("-") else -math.inf
    if text == "NaN":
        return math.nan
    return float(text)


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    source = sys.stdin if sys.argv[1] == "-" else open(sys.argv[1])
    with source as f:
        lines = f.read().splitlines()

    errors = []
    types = {}
    seen = set()
    buckets = {}  # family -> list of (le, value)
    counts = {}  # family -> _count value
    sums = set()  # families with _sum

    for lineno, line in enumerate(lines, 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"{lineno}: malformed TYPE line: {line}")
                continue
            _, _, family, kind = parts
            if kind not in VALID_TYPES:
                errors.append(f"{lineno}: invalid type '{kind}' for {family}")
            if family in types:
                errors.append(f"{lineno}: duplicate TYPE for {family}")
            types[family] = kind
            if kind == "counter" and not family.endswith("_total"):
                errors.append(
                    f"{lineno}: counter family {family} must end in _total"
                )
            continue
        if line.startswith("#"):
            continue

        m = SAMPLE_RE.match(line)
        if m is None:
            errors.append(f"{lineno}: unparseable sample line: {line}")
            continue
        name, _, labels_text, value_text = m.group(1), m.group(2), m.group(
            3
        ), m.group(4)
        family = base_family(name, types)
        if family is None:
            errors.append(f"{lineno}: sample {name} has no # TYPE line")
            continue

        labels = []
        if labels_text:
            labels = sorted(LABEL_RE.findall(labels_text))
            stripped = LABEL_RE.sub("", labels_text).replace(",", "").strip()
            if stripped:
                errors.append(f"{lineno}: malformed labels: {{{labels_text}}}")

        key = (name, tuple(labels))
        if key in seen:
            errors.append(f"{lineno}: duplicate sample {name}{labels}")
        seen.add(key)

        try:
            value = parse_value(value_text)
        except ValueError:
            errors.append(f"{lineno}: non-float value '{value_text}' on {name}")
            continue
        le = dict(labels).get("le")
        if math.isinf(value) and not (
            name.endswith("_bucket") or dict(labels).get("quantile")
        ):
            errors.append(f"{lineno}: non-finite value on {name}")
        if math.isnan(value):
            errors.append(f"{lineno}: NaN value on {name}")

        if types.get(family) == "histogram":
            if name.endswith("_bucket"):
                if le is None:
                    errors.append(f"{lineno}: {name} bucket without le label")
                else:
                    other = tuple(kv for kv in labels if kv[0] != "le")
                    buckets.setdefault((family, other), []).append(
                        (parse_value(le), value, lineno)
                    )
            elif name.endswith("_count"):
                other = tuple(labels)
                counts[(family, other)] = value
            elif name.endswith("_sum"):
                sums.add((family, tuple(labels)))

    for (family, other), series in buckets.items():
        series.sort(key=lambda b: b[0])
        if not series or not math.isinf(series[-1][0]):
            errors.append(f"histogram {family}{dict(other)} missing +Inf bucket")
            continue
        last = -1.0
        for le, value, lineno in series:
            if value < last:
                errors.append(
                    f"{lineno}: histogram {family} buckets not cumulative at"
                    f" le={le}"
                )
            last = value
        count = counts.get((family, other))
        if count is None:
            errors.append(f"histogram {family}{dict(other)} missing _count")
        elif count != series[-1][1]:
            errors.append(
                f"histogram {family}{dict(other)} _count {count} !="
                f" +Inf bucket {series[-1][1]}"
            )
        if (family, other) not in sums:
            errors.append(f"histogram {family}{dict(other)} missing _sum")

    for error in errors:
        print(error)
    if not errors:
        samples = len(seen)
        print(f"ok: {len(types)} families, {samples} samples")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
