// behaviot — command-line front end for the library.
//
// Drives the gateway workflow end-to-end on pcap files:
//
//   behaviot simulate --dataset idle --days 2 --seed 7 --out idle.pcap
//       Write a simulated testbed capture as a classic .pcap file.
//       Datasets: idle | activity | routine | uncontrolled-day:<N>
//
//   behaviot train --idle idle.pcap --window-days 2 --out models.txt
//       Infer periodic models from an idle capture and save them (with the
//       default deviation thresholds). User-action models need labeled
//       interactions and are therefore trained via the library API, not
//       from raw pcaps — see README.
//
//   behaviot show --models models.txt [--device <name>]
//       Print the saved models.
//
//   behaviot score --models models.txt --capture day.pcap
//       Evaluate a capture against saved models and print periodic
//       deviation alerts. With --window-s W the capture is scored in
//       successive W-second windows instead of the prime/score half-split.
//
//   behaviot watch --models models.txt --capture day.pcap --window-s W
//       Streaming daemon: read the capture incrementally (tail it as it
//       grows with --follow 1), assemble flows with bounded memory, score
//       each W-second deviation window as it closes, and optionally
//       retrain + hot-swap models every N windows (--retrain-every N).
//       On a finite capture the alerts are identical to
//       `score --window-s W`. --max-windows / --until-s bound the run
//       deterministically; --alerts is rewritten after every window.
//
//   behaviot mud --models models.txt --device <name>
//       Emit a MUD-like profile for one device.
//
//   behaviot check --models models.txt --capture day.pcap --device <name>
//       MUD compliance: flag the device's flows that match no profile
//       entry (unknown destination or protocol).
//
//   behaviot explain --alerts report.json [--source periodic|short-term|
//       long-term]
//       Render the provenance of each alert in a report written by
//       `score --alerts FILE`: observed vs expected value, crossed
//       threshold, model group, and cluster/vote evidence.
//
//   behaviot health --capture day.pcap [--models models.txt]
//       Exercise the pipeline on a capture (assembly + inference, plus
//       scoring when models are given) and print the per-component health
//       report: healthy / degraded / quarantined with reason codes.
//
//   behaviot convert-models --in models.txt --out models.bbm
//       Convert between the text and binary model formats (selected by
//       extension — ".bbm" is binary). Every --models/--out path in the
//       other commands dispatches the same way. Binary output is
//       re-opened and verified (header, section table, CRC) after the
//       write.
//
// Numeric flags are validated before any file I/O: a malformed or
// out-of-domain value (--window-s abc, --seed -1, --days inf) prints a
// one-line `usage error:` to stderr and exits 2.
//
// Any traffic-consuming command accepts --chaos SPEC to inject
// deterministic faults (packet loss, reordering, clock faults, DNS-answer
// loss, feature corruption...) before processing — the graceful-degradation
// paths then show up in the health report instead of as crashes.
#include <algorithm>
#include <atomic>
#include <cctype>
#include <charconv>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <sstream>
#include <string>
#include <thread>

#include <sys/stat.h>

#include "behaviot/analysis/alert_report.hpp"
#include "behaviot/chaos/fault_injector.hpp"
#include "behaviot/core/checkpoint.hpp"
#include "behaviot/core/model_handle.hpp"
#include "behaviot/core/mud_profile.hpp"
#include "behaviot/core/pipeline.hpp"
#include "behaviot/core/serialize.hpp"
#include "behaviot/core/serialize_binary.hpp"
#include "behaviot/core/watch_engine.hpp"
#include "behaviot/deviation/monitor.hpp"
#include "behaviot/net/pcap.hpp"
#include "behaviot/obs/crash_point.hpp"
#include "behaviot/obs/export.hpp"
#include "behaviot/obs/health.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/process_stats.hpp"
#include "behaviot/obs/snapshot.hpp"
#include "behaviot/obs/span.hpp"
#include "behaviot/obs/telemetry_server.hpp"
#include "behaviot/obs/trace.hpp"

using namespace behaviot;

namespace {

/// The run's fault injector (nullptr without --chaos). Lives for the whole
/// command so feature-stage faults stay armed while the pipeline runs.
std::unique_ptr<chaos::FaultInjector> g_chaos;

/// The run's telemetry server (nullptr without --http). Started before the
/// command dispatch so the endpoints answer for the whole run, including
/// model load and ingest.
std::unique_ptr<obs::TelemetryServer> g_telemetry;

/// Shared /statusz document for `watch`: the window sink rewrites it, the
/// server thread reads it. The mutex is the whole consistency story — the
/// served document is always one complete window's status.
struct WatchStatus {
  std::mutex mu;
  std::string json = "null";
};

/// Graceful-shutdown flag for `watch`. The first SIGINT/SIGTERM asks the
/// stream loop to stop: the current window is finished and every snapshot —
/// alerts, metrics, trace, checkpoint — is flushed before a clean exit 0.
/// A second signal aborts immediately with the conventional 128+SIGINT
/// code (no flushing; equivalent to a crash, which --resume recovers from).
std::atomic<int> g_signal_count{0};

extern "C" void handle_watch_signal(int) {
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) >= 1) {
    std::_Exit(130);
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: behaviot <simulate|train|show|score|watch|mud|check"
               "|explain|health|convert-models> [options]\n"
               "Model files are text (.txt, human-diffable) or binary (.bbm,"
               " zero-copy\n"
               "load, carries user-action forests) — the extension selects"
               " the format.\n"
               "  simulate --dataset idle|activity|routine|uncontrolled-day:N"
               " [--days D] [--seed S] --out FILE.pcap\n"
               "  train    --idle FILE.pcap --window-days D --out MODELS\n"
               "  show     --models MODELS [--device NAME]\n"
               "  score    --models MODELS --capture FILE.pcap"
               " [--window-s W] [--alerts REPORT.json]\n"
               "  watch    --models MODELS --capture FILE.pcap"
               " [--window-s W]\n"
               "      [--max-windows N] [--until-s S] [--retrain-every N]"
               " [--follow 1]\n"
               "      [--poll-ms MS] [--horizon-s S] [--max-open-flows N]\n"
               "      [--max-buffered-packets N] [--alerts REPORT.json]\n"
               "      [--publish-models FILE   write each retrained+swapped"
               " model\n"
               "      generation to FILE (format by extension)]\n"
               "      [--rotate-max-bytes N --rotate-keep K   archive an"
               " --alerts/\n"
               "      --metrics/--trace snapshot as FILE.<window> once it"
               " exceeds N\n"
               "      bytes, keeping the newest K archives (default 3)]\n"
               "      [--checkpoint FILE.bbc [--checkpoint-every N]   write"
               " a durable\n"
               "      checkpoint (engine state + pinned models + capture"
               " cursor) after\n"
               "      every N closed windows (default 1), rotating FILE ->"
               " FILE.prev so\n"
               "      a kill -9 mid-write always leaves one intact"
               " generation]\n"
               "      [--resume FILE.bbc   restore a checkpointed run and"
               " continue it:\n"
               "      the capture replays from the checkpointed byte offset"
               " and the\n"
               "      alert stream continues byte-identically to the"
               " uninterrupted run\n"
               "      (--models becomes optional; the checkpoint embeds the"
               " models)]\n"
               "      [--retrain-timeout-s S   abandon a background retrain"
               " still\n"
               "      running S seconds after launch — prior models keep"
               " scoring and\n"
               "      the next interval retries (0 = wait, fully"
               " deterministic)]\n"
               "      [--reopen-backoff-max-ms MS   cap on the exponential"
               " backoff\n"
               "      used when a --follow input is rotated, truncated or"
               " unreadable\n"
               "      (default 5000); the daemon reopens instead of"
               " exiting]\n"
               "      stream the capture (tail it with --follow 1), score"
               " each closed\n"
               "      W-second window, retrain + hot-swap models every"
               " --retrain-every\n"
               "      windows; --alerts is rewritten after every window."
               " SIGTERM/SIGINT\n"
               "      finish the current window and flush every snapshot"
               " before exit 0\n"
               "      (a second signal exits immediately)\n"
               "  mud      --models MODELS --device NAME\n"
               "  check    --models MODELS --capture FILE.pcap"
               " --device NAME\n"
               "  explain  --alerts REPORT.json [--source"
               " periodic|short-term|long-term]\n"
               "  health   --capture FILE.pcap [--models MODELS]\n"
               "  convert-models --in MODELS --out MODELS\n"
               "      convert between the text and binary model formats"
               " (extension\n"
               "      selects each side; .bbm->.txt drops user-action"
               " forests, which\n"
               "      the text format does not carry)\n"
               "common:\n"
               "  --chaos SPEC             inject deterministic faults into"
               " the loaded or\n"
               "      simulated traffic before processing. SPEC is"
               " comma-separated\n"
               "      name=value: drop/dup/reorder/regress/dnsloss/flap/"
               "truncate/nan/inf/\n"
               "      throw (probabilities in [0,1]), skew (clock drift,"
               " ppm), seed,\n"
               "      crash=POINT + crashn=K (SIGKILL the process at the"
               " K-th hit of a\n"
               "      named crash point, e.g. checkpoint.after_rotate — for"
               " crash-\n"
               "      recovery testing with watch --resume).\n"
               "      Example: --chaos drop=0.01,reorder=0.005,seed=42."
               " Injected faults\n"
               "      surface in the health report, never as crashes\n"
               "  --parse strict|lenient   capture/model parse policy"
               " (default lenient:\n"
               "      damaged records are skipped and reported; strict stops"
               " at the first\n"
               "      malformation with its byte offset)\n"
               "  --metrics FILE           record pipeline metrics (stage"
               " timings, ingestion\n"
               "      skip counters, alert counts) and write them to FILE:"
               " JSON, or\n"
               "      Prometheus text exposition when FILE ends in .prom;"
               " also prints an\n"
               "      end-of-run summary table to stderr\n"
               "  --trace FILE             record an execution timeline and"
               " write it to FILE\n"
               "      as Chrome trace-event JSON (open in Perfetto or"
               " chrome://tracing);\n"
               "      parallel stages render as per-thread lanes of chunk"
               " spans\n"
               "  --http PORT              serve live telemetry on"
               " 127.0.0.1:PORT while the\n"
               "      command runs (0 = ephemeral; the bound port is printed"
               " to stderr):\n"
               "      /metrics (Prometheus 0.0.4), /metrics.json, /healthz"
               " (200/503),\n"
               "      /statusz (run status JSON), /tracez (recent-event"
               " trace)\n");
  return 2;
}

/// A flag value the command cannot use. Distinct from internal failures
/// (exit 1): the operator mistyped, so main() reports it as a one-line
/// usage error and exits 2.
class FlagError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

[[noreturn]] void reject_flag(const char* name, const std::string& value,
                              const char* want) {
  throw FlagError("--" + std::string(name) + " " + value + ": expected " +
                  want);
}

/// Non-negative integer value, digits only. The std::stoul calls this
/// replaces silently wrapped "-1" to 2^64-1 (a watch --max-windows -1 ran
/// forever believing it was bounded) and accepted junk suffixes ("12abc").
std::uint64_t parse_count_value(const char* name, const std::string& value) {
  const bool digits_only =
      !value.empty() && std::all_of(value.begin(), value.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c)) != 0;
      });
  std::uint64_t parsed = 0;
  const auto [ptr, ec] =
      std::from_chars(value.data(), value.data() + value.size(), parsed);
  if (!digits_only || ec != std::errc{} ||
      ptr != value.data() + value.size()) {
    reject_flag(name, value, "a non-negative integer");
  }
  return parsed;
}

std::uint64_t parse_count(const std::map<std::string, std::string>& flags,
                          const char* name, std::uint64_t fallback) {
  const auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  return parse_count_value(name, it->second);
}

/// Finite floating-point value bounded below. The std::stod calls this
/// replaces accepted "nan" (which then disabled every comparison downstream)
/// and threw std::out_of_range on "1e999" — surfacing as a generic exit-1
/// error instead of a usage error.
double parse_double_value(const char* name, const std::string& value,
                          double min_value, const char* want) {
  double parsed = 0.0;
  const auto [ptr, ec] = std::from_chars(
      value.data(), value.data() + value.size(), parsed,
      std::chars_format::general);
  if (ec != std::errc{} || ptr != value.data() + value.size() ||
      !std::isfinite(parsed) || parsed < min_value) {
    reject_flag(name, value, want);
  }
  return parsed;
}

/// Strictly positive seconds/days value (windows, durations).
double parse_positive(const std::map<std::string, std::string>& flags,
                      const char* name, double fallback) {
  const auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  const double v = parse_double_value(name, it->second,
                                      std::numeric_limits<double>::min(),
                                      "a positive finite number");
  return v;
}

/// Non-negative seconds value (offsets, horizons).
double parse_non_negative(const std::map<std::string, std::string>& flags,
                          const char* name, double fallback) {
  const auto it = flags.find(name);
  if (it == flags.end()) return fallback;
  return parse_double_value(name, it->second, 0.0,
                            "a non-negative finite number");
}

/// Parse policy for pcap/model ingestion from the common --parse flag.
ParsePolicy parse_policy(const std::map<std::string, std::string>& flags) {
  const auto it = flags.find("parse");
  if (it == flags.end() || it->second == "lenient") {
    return ParsePolicy::kLenient;
  }
  if (it->second == "strict") return ParsePolicy::kStrict;
  throw std::runtime_error("unknown --parse policy '" + it->second +
                           "' (want strict|lenient)");
}

std::map<std::string, std::string> parse_flags(int argc, char** argv) {
  std::map<std::string, std::string> flags;
  for (int i = 2; i < argc; ++i) {
    if (std::strncmp(argv[i], "--", 2) != 0) continue;
    const std::string arg = argv[i] + 2;
    // Both spellings work: "--window-s 30" and "--window-s=30".
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      flags[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc) {
      flags[arg] = argv[++i];
    }
  }
  return flags;
}

/// Reads a pcap and restores device identity from the catalog's lease table.
/// With --chaos, the configured packet faults are applied here — right after
/// ingestion, before any pipeline stage sees the traffic.
std::vector<Packet> load_capture(const std::string& path, ParsePolicy policy) {
  auto parsed = read_pcap(path, policy);
  const auto& catalog = testbed::Catalog::standard();
  for (Packet& p : parsed.packets) {
    const auto* device = catalog.by_ip(p.tuple.src.ip);
    if (device != nullptr) p.device = device->id;
  }
  std::fprintf(stderr, "loaded %s: %s\n", path.c_str(),
               parsed.stats.summary().c_str());
  if (g_chaos != nullptr) {
    g_chaos->apply(parsed.packets);
    std::fprintf(stderr, "chaos: %llu faults injected (%s)\n",
                 static_cast<unsigned long long>(g_chaos->stats().total()),
                 g_chaos->spec().summary().c_str());
  }
  return std::move(parsed.packets);
}

/// Loads a model file under the selected policy, reporting any sections a
/// lenient load had to abandon.
BehaviorModelSet load_models_reporting(const std::string& path,
                                       ParsePolicy policy) {
  ParseStats stats;
  BehaviorModelSet models = load_models_file(path, policy, &stats);
  if (stats.sections_dropped > 0) {
    std::fprintf(stderr,
                 "warning: %s is damaged — %zu model section(s) dropped by"
                 " the lenient load (re-run with --parse strict for the"
                 " offending byte)\n",
                 path.c_str(), stats.sections_dropped);
  }
  return models;
}

DomainResolver make_resolver() {
  DomainResolver resolver;
  testbed::GeneratedCapture rdns_only;
  testbed::TrafficGenerator::add_static_rdns(rdns_only);
  testbed::configure_resolver(resolver, rdns_only);
  return resolver;
}

int cmd_simulate(const std::map<std::string, std::string>& flags) {
  const std::string dataset = flags.count("dataset") ? flags.at("dataset")
                                                     : "idle";
  const double days = parse_positive(flags, "days", 1.0);
  const std::uint64_t seed = parse_count(flags, "seed", 1);
  if (flags.count("out") == 0) return usage();

  testbed::GeneratedCapture capture;
  if (dataset == "idle") {
    capture = testbed::Datasets::idle(seed, days);
  } else if (dataset == "activity") {
    capture = testbed::Datasets::activity(seed);
  } else if (dataset == "routine") {
    capture = testbed::Datasets::routine_week(seed, days);
  } else if (dataset.rfind("uncontrolled-day:", 0) == 0) {
    capture = testbed::Datasets::uncontrolled_day(
        static_cast<std::size_t>(parse_count_value(
            "dataset", dataset.substr(std::strlen("uncontrolled-day:")))),
        seed);
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
    return 2;
  }

  if (g_chaos != nullptr) g_chaos->apply(capture);

  PcapWriter writer(flags.at("out"));
  for (const Packet& p : capture.packets) writer.write(p);
  std::printf("wrote %zu packets to %s (%zu ground-truth user events "
              "withheld — pcap carries traffic only)\n",
              writer.packets_written(), flags.at("out").c_str(),
              capture.events.size());
  return 0;
}

int cmd_train(const std::map<std::string, std::string>& flags) {
  if (flags.count("idle") == 0 || flags.count("out") == 0) return usage();
  const double window_days = parse_positive(flags, "window-days", 1.0);

  const auto packets = load_capture(flags.at("idle"), parse_policy(flags));
  DomainResolver resolver = make_resolver();
  FlowAssembler assembler;
  const auto flows = assembler.assemble(packets, resolver);
  std::fprintf(stderr, "assembled %zu flows\n", flows.size());

  BehaviorModelSet models;
  models.periodic = PeriodicModelSet::infer(flows, window_days * 86400.0);
  save_models_file(flags.at("out"), models);
  std::printf("inferred %zu periodic models (coverage %.1f%%), saved to %s\n",
              models.periodic.size(),
              models.periodic.stats().coverage() * 100.0,
              flags.at("out").c_str());
  return 0;
}

int cmd_show(const std::map<std::string, std::string>& flags) {
  if (flags.count("models") == 0) return usage();
  const BehaviorModelSet models =
      load_models_reporting(flags.at("models"), parse_policy(flags));
  const auto& catalog = testbed::Catalog::standard();

  const testbed::DeviceInfo* only = nullptr;
  if (flags.count("device")) {
    only = catalog.by_name(flags.at("device"));
    if (only == nullptr) {
      std::fprintf(stderr, "unknown device '%s'\n",
                   flags.at("device").c_str());
      return 2;
    }
  }
  std::printf("periodic models: %zu; PFSM: %zu states / %zu transitions; "
              "thresholds: periodic %.2f, short-term %.2f, |z| %.2f\n\n",
              models.periodic.size(), models.pfsm.num_states(),
              models.pfsm.num_transitions(), models.thresholds.periodic,
              models.short_term.value(), models.thresholds.long_term_z);
  for (const PeriodicModel& m : models.periodic.all()) {
    if (only != nullptr && m.device != only->id) continue;
    const char* device_name = m.device < catalog.size()
                                  ? catalog.by_id(m.device).name.c_str()
                                  : "?";
    std::printf("%-20s %-4s %-32s T=%8.1fs tol=%6.1fs support=%zu\n",
                device_name, to_string(m.app), m.domain.c_str(),
                m.period_seconds, m.tolerance_seconds, m.support);
  }
  return 0;
}

int cmd_score(const std::map<std::string, std::string>& flags) {
  if (flags.count("models") == 0 || flags.count("capture") == 0) {
    return usage();
  }
  // Validate numeric flags before any file I/O: a typo'd --window-s is a
  // usage error (exit 2) even when the model file also happens to be absent.
  const std::optional<std::int64_t> window_us =
      flags.count("window-s")
          ? std::optional<std::int64_t>(
                seconds(parse_positive(flags, "window-s", 1.0)))
          : std::nullopt;
  const BehaviorModelSet models =
      load_models_reporting(flags.at("models"), parse_policy(flags));
  const auto packets = load_capture(flags.at("capture"), parse_policy(flags));
  if (packets.empty()) {
    std::fprintf(stderr, "empty capture\n");
    return 1;
  }
  DomainResolver resolver = make_resolver();
  FlowAssembler assembler;
  const auto flows = assembler.assemble(packets, resolver);

  DeviationMonitor monitor(models.periodic, models.pfsm, models.short_term);
  std::vector<DeviationAlert> alerts;
  if (window_us) {
    // Windowed scoring: evaluate successive W-second windows over the whole
    // capture. This is the grid `behaviot watch` streams over, so on a finite
    // capture the two commands emit identical alerts.
    const Timestamp t0 = flows.front().start;
    const Timestamp end = flows.back().end + seconds(1.0);
    std::size_t windows = 0;
    for (Timestamp ws = t0; ws < end; ws = ws + *window_us) {
      const Timestamp we = ws + *window_us;
      std::vector<FlowRecord> in_window;
      for (const FlowRecord& f : flows) {
        if (f.start >= ws && f.start < we) in_window.push_back(f);
      }
      auto batch = monitor.evaluate_window(ws, we, in_window, {});
      alerts.insert(alerts.end(), std::make_move_iterator(batch.begin()),
                    std::make_move_iterator(batch.end()));
      ++windows;
    }
    std::printf("%zu flows, %zu deviation alerts in %zu windows\n",
                flows.size(), alerts.size(), windows);
  } else {
    // Two passes: the first primes the timers, the second scores. A gateway
    // deployment would stream windows (see `behaviot watch`); for a one-shot
    // file we split in half.
    const Timestamp start = flows.front().start;
    const Timestamp end = flows.back().end + seconds(1.0);
    const Timestamp mid((start.micros() + end.micros()) / 2);
    std::vector<FlowRecord> first_half, second_half;
    for (const FlowRecord& f : flows) {
      (f.start < mid ? first_half : second_half).push_back(f);
    }
    (void)monitor.evaluate_window(start, mid, first_half, {});
    alerts = monitor.evaluate_window(mid, end, second_half, {});
    std::printf("%zu flows, %zu deviation alerts in the scored half\n",
                flows.size(), alerts.size());
  }

  const auto& catalog = testbed::Catalog::standard();
  for (const auto& a : alerts) {
    const char* device_name = a.device < catalog.size()
                                  ? catalog.by_id(a.device).name.c_str()
                                  : "(system)";
    std::printf("  [%s] %-18s score %6.2f (thr %4.2f)  %s\n",
                to_string(a.source), device_name, a.score, a.threshold,
                a.context.substr(0, 80).c_str());
  }
  if (flags.count("alerts")) {
    const std::string& path = flags.at("alerts");
    const obs::HealthSnapshot health = obs::health().snapshot();
    std::string error;
    if (!obs::write_file_atomic(path, alerts_to_json(alerts, &health),
                                &error)) {
      std::fprintf(stderr, "error: cannot write alerts: %s\n", error.c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu alert(s) with provenance to %s\n",
                 alerts.size(), path.c_str());
  }
  return 0;
}

/// Streaming counterpart of `score --window-s`: tail the capture through the
/// bounded PcapReader + StreamingFlowAssembler, evaluate each window as the
/// stream clock closes it, and hot-swap retrained models between windows.
int cmd_watch(const std::map<std::string, std::string>& flags) {
  const bool resuming = flags.count("resume") > 0;
  if (flags.count("capture") == 0 ||
      (!resuming && flags.count("models") == 0)) {
    return usage();
  }
  // Numeric flags first (usage errors exit 2 before any file is touched),
  // then the checkpoint load (whose pinned option grid overrides the
  // deterministic knobs), then the model load.
  WatchOptions opts;
  if (flags.count("window-s")) {
    opts.window_us = seconds(parse_positive(flags, "window-s", 1.0));
  }
  if (flags.count("max-windows")) {
    opts.max_windows =
        static_cast<std::size_t>(parse_count(flags, "max-windows", 0));
  }
  if (flags.count("until-s")) {
    opts.until = Timestamp(seconds(parse_non_negative(flags, "until-s", 0.0)));
  }
  if (flags.count("retrain-every")) {
    opts.retrain_every_windows =
        static_cast<std::size_t>(parse_count(flags, "retrain-every", 0));
  }
  if (flags.count("horizon-s")) {
    opts.assembler.reorder_horizon_us =
        seconds(parse_non_negative(flags, "horizon-s", 0.0));
  }
  if (flags.count("max-open-flows")) {
    opts.assembler.max_open_flows =
        static_cast<std::size_t>(parse_count(flags, "max-open-flows", 0));
  }
  if (flags.count("max-buffered-packets")) {
    opts.assembler.max_buffered_packets = static_cast<std::size_t>(
        parse_count(flags, "max-buffered-packets", 0));
  }
  if (flags.count("publish-models")) {
    opts.publish_models_path = flags.at("publish-models");
  }
  if (flags.count("retrain-timeout-s")) {
    opts.retrain_timeout_s = parse_non_negative(flags, "retrain-timeout-s",
                                                0.0);
  }
  const long poll_ms = static_cast<long>(parse_count(flags, "poll-ms", 200));
  const long reopen_backoff_max_ms = static_cast<long>(std::max<std::uint64_t>(
      1, parse_count(flags, "reopen-backoff-max-ms", 5000)));
  const std::string checkpoint_path =
      flags.count("checkpoint") ? flags.at("checkpoint") : "";
  const std::uint64_t checkpoint_every =
      parse_count(flags, "checkpoint-every", 1);
  if (checkpoint_every == 0) {
    reject_flag("checkpoint-every", flags.at("checkpoint-every"),
                "a positive window count");
  }
  obs::SnapshotRotation rotation;
  rotation.max_bytes = parse_count(flags, "rotate-max-bytes", 0);
  rotation.keep =
      static_cast<std::size_t>(parse_count(flags, "rotate-keep", 3));

  // --resume: restore the whole daemon — health registry, pinned models,
  // engine state and the capture cursor — from the newest intact checkpoint
  // generation (FILE strictly, FILE.prev leniently as fallback).
  std::optional<WatchCheckpoint> resume_cp;
  if (resuming) {
    std::string source;
    resume_cp.emplace(load_checkpoint_resilient(flags.at("resume"), &source));
    std::fprintf(stderr,
                 "resume: restored %s (window %zu, input offset %llu,"
                 " models v%llu)\n",
                 source.c_str(), resume_cp->engine.windows,
                 static_cast<unsigned long long>(resume_cp->input_offset),
                 static_cast<unsigned long long>(resume_cp->model_version));
    obs::health().restore(resume_cp->health);
    // The checkpointed deterministic grid wins over CLI flags: the
    // continuation must share window geometry, retrain cadence and
    // assembler behavior with the run that wrote the checkpoint, or the
    // byte-identity guarantee is meaningless. Operational knobs (--follow,
    // --max-windows, --until-s, snapshot paths) stay CLI-provided.
    opts.window_us = resume_cp->options.window_us;
    opts.retrain_every_windows =
        static_cast<std::size_t>(resume_cp->options.retrain_every_windows);
    opts.assembler.base.burst_gap_us = resume_cp->options.burst_gap_us;
    opts.assembler.base.drop_infrastructure =
        resume_cp->options.drop_infrastructure;
    opts.assembler.base.max_ts_regression_us =
        resume_cp->options.max_ts_regression_us;
    opts.assembler.reorder_horizon_us = resume_cp->options.reorder_horizon_us;
    opts.assembler.max_open_flows =
        static_cast<std::size_t>(resume_cp->options.max_open_flows);
    opts.assembler.max_buffered_packets =
        static_cast<std::size_t>(resume_cp->options.max_buffered_packets);
  }

  // The handle starts from the checkpoint's embedded .bbm image (version
  // counter continued, so post-resume publishes number their generations
  // exactly as the uninterrupted run would) or from --models at version 1.
  ModelHandle handle{BehaviorModelSet{}};
  if (resuming) {
    const std::string& image = resume_cp->models_image;
    handle.restore(
        load_models_binary({reinterpret_cast<const std::uint8_t*>(
                                image.data()),
                            image.size()}),
        resume_cp->model_version);
  } else {
    handle.restore(load_models_reporting(flags.at("models"),
                                         parse_policy(flags)),
                   1);
  }
  WatchEngine engine(handle, make_resolver(), opts);
  if (resuming) {
    engine.import_state(std::move(resume_cp->engine));
  }

  const auto& catalog = testbed::Catalog::standard();
  // Every telemetry output is rewritten atomically after each closed window
  // (and archived once it crosses the rotation cap), so a kill -9 at any
  // moment leaves complete previous-generation files behind.
  std::optional<obs::SnapshotWriter> alerts_writer;
  if (flags.count("alerts")) {
    alerts_writer.emplace(flags.at("alerts"), rotation);
  }
  std::optional<obs::SnapshotWriter> metrics_writer;
  if (flags.count("metrics")) {
    metrics_writer.emplace(flags.at("metrics"), rotation);
  }
  std::optional<obs::SnapshotWriter> trace_writer;
  if (flags.count("trace")) {
    trace_writer.emplace(flags.at("trace"), rotation);
  }
  auto status = std::make_shared<WatchStatus>();
  if (g_telemetry != nullptr) {
    g_telemetry->set_status_provider([status]() {
      std::lock_guard<std::mutex> lock(status->mu);
      return status->json;
    });
  }
  std::vector<DeviationAlert> all_alerts;
  if (resuming && !resume_cp->alerts_json.empty()) {
    // Continue the alerts document exactly where the checkpoint froze it
    // (post-rotation state included), so the resumed daemon's snapshot
    // files carry on byte-identically.
    all_alerts = alerts_from_json(resume_cp->alerts_json);
  }

  // Capture-side cursor the checkpoints pin: updated right before every
  // ingest() call, when all packets of the chunk lie below it. The sink
  // fires inside ingest() with the whole chunk inside engine state, so a
  // resume replaying from this offset replays no packet twice, loses none.
  std::uint64_t input_offset = resuming ? resume_cp->input_offset : 0;
  struct CheckpointTelemetry {
    bool written = false;
    std::size_t window = 0;
    std::uint64_t bytes = 0;
    double write_ms = 0.0;
    std::chrono::steady_clock::time_point at{};
  } ck;
  auto write_checkpoint_now = [&](std::size_t window_index,
                                  const obs::HealthSnapshot& health) {
    if (checkpoint_path.empty()) return;
    WatchCheckpoint cp;
    cp.options.window_us = opts.window_us;
    cp.options.retrain_every_windows = opts.retrain_every_windows;
    cp.options.burst_gap_us = opts.assembler.base.burst_gap_us;
    cp.options.drop_infrastructure = opts.assembler.base.drop_infrastructure;
    cp.options.max_ts_regression_us = opts.assembler.base.max_ts_regression_us;
    cp.options.reorder_horizon_us = opts.assembler.reorder_horizon_us;
    cp.options.max_open_flows = opts.assembler.max_open_flows;
    cp.options.max_buffered_packets = opts.assembler.max_buffered_packets;
    cp.engine = engine.export_state();
    cp.models_image = save_models_binary(*handle.acquire());
    cp.model_version = handle.version();
    cp.input_offset = input_offset;
    cp.alerts_json = alerts_to_json(all_alerts, &health);
    cp.health = health;
    const auto t_begin = std::chrono::steady_clock::now();
    obs::crash_point("window.before_checkpoint");
    std::string error;
    if (!write_checkpoint_rotating(checkpoint_path, cp, &error)) {
      std::fprintf(stderr, "error: cannot write checkpoint: %s\n",
                   error.c_str());
      obs::health().degrade("watch.checkpoint",
                            "checkpoint-write-failed: " + error);
      return;
    }
    obs::crash_point("window.after_checkpoint");
    ck.written = true;
    ck.window = window_index;
    ck.write_ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t_begin)
                      .count();
    ck.at = std::chrono::steady_clock::now();
    std::error_code ec;
    const auto size = std::filesystem::file_size(checkpoint_path, ec);
    ck.bytes = ec ? 0 : static_cast<std::uint64_t>(size);
    obs::counter("checkpoint.writes").inc();
    obs::gauge("checkpoint.bytes").set(static_cast<double>(ck.bytes));
    obs::gauge("checkpoint.last_window")
        .set(static_cast<double>(window_index));
    obs::histogram("checkpoint.write_ms").observe(ck.write_ms);
  };
  engine.set_window_sink([&](const WatchWindowReport& r) {
    std::string note;
    if (r.swapped) {
      note = "  [models v" + std::to_string(r.model_version) + " swapped in]";
    }
    std::printf("window %4zu [%11.1fs, %11.1fs)  %5zu flows  %zu alert(s)%s\n",
                r.index, static_cast<double>(r.start.micros()) / 1e6,
                static_cast<double>(r.end.micros()) / 1e6, r.flows,
                r.alerts.size(), note.c_str());
    for (const auto& a : r.alerts) {
      const char* device_name = a.device < catalog.size()
                                    ? catalog.by_id(a.device).name.c_str()
                                    : "(system)";
      std::printf("  [%s] %-18s score %6.2f (thr %4.2f)  %s\n",
                  to_string(a.source), device_name, a.score, a.threshold,
                  a.context.substr(0, 80).c_str());
    }
    all_alerts.insert(all_alerts.end(), r.alerts.begin(), r.alerts.end());
    const obs::HealthSnapshot health = obs::health().snapshot();
    if (alerts_writer) {
      // Rewritten whole after every window: the file is always a complete,
      // valid report of the alerts emitted since the last rotation.
      if (!alerts_writer->write(alerts_to_json(all_alerts, &health),
                                r.index)) {
        std::fprintf(stderr, "error: cannot write alerts: %s\n",
                     alerts_writer->last_error().c_str());
      } else if (alerts_writer->rotated_last_write()) {
        // The archived generation holds everything so far; the next
        // generation reports only what follows. Concatenating the archives
        // with the live file reproduces the unrotated report exactly.
        all_alerts.clear();
      }
    }
    if ((r.index + 1) % checkpoint_every == 0) {
      // The window sink is the engine's quiescent point (no retrain in
      // flight), so export_state() here is exact; the checkpoint cadence
      // keys off the absolute window index so interrupted and uninterrupted
      // runs checkpoint at identical instants.
      write_checkpoint_now(r.index, health);
    }
    if (metrics_writer || g_telemetry != nullptr) {
      obs::update_process_gauges();
    }
    if (metrics_writer) {
      const auto snap = obs::MetricsRegistry::global().snapshot();
      const std::string& mpath = metrics_writer->path();
      const bool prom =
          mpath.size() >= 5 && mpath.rfind(".prom") == mpath.size() - 5;
      if (!metrics_writer->write(prom ? obs::to_prometheus(snap, health)
                                      : obs::to_json(snap, health),
                                 r.index)) {
        std::fprintf(stderr, "error: cannot write metrics: %s\n",
                     metrics_writer->last_error().c_str());
      }
    }
    if (obs::Tracer::enabled() &&
        (trace_writer || g_telemetry != nullptr)) {
      // The window sink is the stream's quiescent point (the retrain thread
      // is joined and pool workers are idle), so the tracer's snapshot
      // contract holds — this is where the rings may be read and published.
      const std::string doc =
          obs::trace_to_chrome_json(obs::Tracer::global().snapshot());
      if (trace_writer && !trace_writer->write(doc, r.index)) {
        std::fprintf(stderr, "error: cannot write trace: %s\n",
                     trace_writer->last_error().c_str());
      }
      if (g_telemetry != nullptr) g_telemetry->publish_trace_json(doc);
    }
    if (g_telemetry != nullptr) {
      // Refresh /statusz: one complete JSON document per closed window.
      const auto snap = obs::MetricsRegistry::global().snapshot();
      const auto quantiles = [&snap](const char* name) {
        std::ostringstream q;
        const auto it = snap.histograms.find(name);
        if (it == snap.histograms.end()) {
          q << "{\"count\":0}";
        } else {
          q << "{\"count\":" << it->second.count
            << ",\"p50\":" << obs::histogram_quantile(it->second, 0.5)
            << ",\"p95\":" << obs::histogram_quantile(it->second, 0.95)
            << ",\"p99\":" << obs::histogram_quantile(it->second, 0.99)
            << "}";
        }
        return q.str();
      };
      const auto wm = engine.last_seal_watermark();
      std::ostringstream js;
      js << "{\"window\":" << r.index << ",\"window_end_s\":"
         << static_cast<double>(r.end.micros()) / 1e6
         << ",\"seal_watermark_s\":";
      if (wm) {
        js << static_cast<double>(wm->micros()) / 1e6 << ",\"watermark_lag_s\":"
           << static_cast<double>(wm->micros() - r.end.micros()) / 1e6;
      } else {
        js << "null,\"watermark_lag_s\":null";
      }
      js << ",\"model_version\":" << r.model_version
         << ",\"swaps\":" << engine.swaps()
         << ",\"alerts\":" << engine.alerts_emitted()
         << ",\"open_flows\":" << engine.open_flows()
         << ",\"buffered_packets\":" << engine.buffered_packets()
         << ",\"retrain_failures\":" << engine.retrain_failures()
         << ",\"window_close_latency_ms\":"
         << quantiles("watch.window_close_latency_ms")
         << ",\"retrain_duration_ms\":"
         << quantiles("watch.retrain_duration_ms");
      // Checkpoint staleness: operators alert on age_s exceeding a few
      // window widths — the daemon is alive but no longer durable.
      js << ",\"checkpoint\":";
      if (ck.written) {
        js << "{\"window\":" << ck.window << ",\"bytes\":" << ck.bytes
           << ",\"write_ms\":" << ck.write_ms << ",\"age_s\":"
           << std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            ck.at)
                  .count()
           << "}";
      } else {
        js << "null";
      }
      js << "}";
      std::lock_guard<std::mutex> lock(status->mu);
      status->json = js.str();
    }
    std::fflush(stdout);
  });

  const std::string capture_path = flags.at("capture");
  const bool follow = flags.count("follow") && flags.at("follow") != "0";
  PcapReaderOptions ropts;
  ropts.policy = parse_policy(flags);

  // Graceful shutdown: the first SIGINT/SIGTERM breaks the stream loop so
  // the current window is finished and every snapshot (alerts, metrics,
  // trace, checkpoint) flushed before exit 0; a second signal exits hard.
  g_signal_count.store(0);
  std::signal(SIGINT, handle_watch_signal);
  std::signal(SIGTERM, handle_watch_signal);

  // Follow-mode self-healing: fingerprint the input on every EOF poll. A
  // vanished path, a shrunken file or a changed inode means the capture was
  // rotated or truncated under us — the current reader is abandoned and the
  // path reopened from its (new) pcap header, with capped exponential
  // backoff between attempts.
  struct InputFingerprint {
    bool valid = false;
    std::uint64_t size = 0;
    std::uint64_t inode = 0;
    std::uint64_t device = 0;
  } fingerprint;
  bool reopen_requested = false;
  auto input_intact = [&]() {
    struct stat st {};
    if (::stat(capture_path.c_str(), &st) != 0) return false;
    if (fingerprint.valid &&
        (static_cast<std::uint64_t>(st.st_ino) != fingerprint.inode ||
         static_cast<std::uint64_t>(st.st_dev) != fingerprint.device ||
         static_cast<std::uint64_t>(st.st_size) < fingerprint.size)) {
      return false;
    }
    fingerprint = {true, static_cast<std::uint64_t>(st.st_size),
                   static_cast<std::uint64_t>(st.st_ino),
                   static_cast<std::uint64_t>(st.st_dev)};
    return true;
  };
  auto interruptible_sleep = [&](long ms) {
    // Short slices so a shutdown signal cuts the wait, not one full backoff.
    while (ms > 0 && g_signal_count.load() == 0) {
      const long slice = std::min<long>(ms, 50);
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      ms -= slice;
    }
  };
  if (follow) {
    // Tail mode: at EOF verify the input is still the same growing file,
    // then sleep one poll interval and retry. A --max-windows / --until-s
    // stop or a shutdown signal ends the loop; a rotated/truncated input
    // requests a reopen instead.
    ropts.on_eof = [&]() {
      if (engine.done() || g_signal_count.load() != 0) return false;
      if (!input_intact()) {
        reopen_requested = true;
        return false;
      }
      interruptible_sleep(poll_ms);
      return g_signal_count.load() == 0;
    };
  }

  // Chunked ingest: device annotation and chaos faults are applied per chunk,
  // exactly as load_capture() does for the batch commands.
  std::vector<Packet> chunk;
  constexpr std::size_t kChunk = 1024;
  std::optional<std::ifstream> input;  // outlives reader (reader holds a ref)
  std::optional<PcapReader> reader;
  auto flush_chunk = [&]() {
    if (chunk.empty()) return;
    for (Packet& p : chunk) {
      const auto* device = catalog.by_ip(p.tuple.src.ip);
      if (device != nullptr) p.device = device->id;
    }
    if (g_chaos != nullptr) g_chaos->apply(chunk);
    if (reader) input_offset = reader->consumed_offset();
    engine.ingest(chunk);
    chunk.clear();
  };

  bool first_open = true;
  long backoff_ms = std::max<long>(1, poll_ms);
  while (!engine.done() && g_signal_count.load() == 0) {
    reader.reset();
    input.emplace(capture_path, std::ios::binary);
    if (*input) {
      fingerprint.valid = false;
      (void)input_intact();
      PcapReaderOptions per_open = ropts;
      // The checkpointed capture cursor applies to the first open only: a
      // reopened (rotated) file is a new capture, read from its header on.
      per_open.resume_offset =
          (first_open && resuming) ? resume_cp->input_offset : 0;
      try {
        reader.emplace(*input, per_open);
      } catch (const ParseError& e) {
        if (!follow) throw;
        // Truncated or half-written global header: transient in tail mode —
        // the writer may still be producing the file.
        std::fprintf(stderr, "watch: cannot read %s (%s) — retrying\n",
                     capture_path.c_str(), e.what());
      }
    } else if (!follow) {
      std::fprintf(stderr, "error: cannot open %s\n", capture_path.c_str());
      return 1;
    }
    if (!reader) {
      obs::counter("watch.input_reopens").inc();
      obs::health().degrade("watch.input", "input-reopened");
      interruptible_sleep(backoff_ms);
      backoff_ms = std::min<long>(backoff_ms * 2, reopen_backoff_max_ms);
      continue;
    }
    first_open = false;
    reopen_requested = false;
    bool read_error = false;
    while (!engine.done() && g_signal_count.load() == 0) {
      std::optional<Packet> packet;
      try {
        packet = reader->next();
      } catch (const ParseError& e) {
        if (!follow) throw;
        std::fprintf(stderr, "watch: read error on %s (%s) — reopening\n",
                     capture_path.c_str(), e.what());
        read_error = true;
        break;
      }
      if (!packet) break;
      backoff_ms = std::max<long>(1, poll_ms);  // a healthy read resets it
      chunk.push_back(*packet);
      if (chunk.size() >= kChunk) flush_chunk();
    }
    if (!follow || engine.done() || g_signal_count.load() != 0) break;
    if (!reopen_requested && !read_error) break;
    obs::counter("watch.input_reopens").inc();
    obs::health().degrade("watch.input", "input-reopened");
    std::fprintf(stderr, "watch: input %s %s — reopening from the start\n",
                 capture_path.c_str(),
                 read_error ? "hit a read error"
                            : "was rotated or truncated");
    interruptible_sleep(backoff_ms);
    backoff_ms = std::min<long>(backoff_ms * 2, reopen_backoff_max_ms);
  }
  if (!engine.done()) flush_chunk();
  if (g_signal_count.load() != 0) {
    std::fprintf(stderr,
                 "watch: shutdown signal received — finishing the stream and"
                 " flushing final snapshots\n");
  }
  engine.finish();
  std::signal(SIGINT, SIG_DFL);
  std::signal(SIGTERM, SIG_DFL);
  {
    // Final snapshot flush. The sink keeps these fresh per window, but a
    // run that closes no further window — a --resume picking up at the end
    // of the capture, or a SIGTERM before the first close — must still
    // leave complete documents behind.
    const obs::HealthSnapshot health = obs::health().snapshot();
    const std::size_t last_window =
        engine.windows_evaluated() == 0 ? 0 : engine.windows_evaluated() - 1;
    if (alerts_writer &&
        !alerts_writer->write(alerts_to_json(all_alerts, &health),
                              last_window)) {
      std::fprintf(stderr, "error: cannot write alerts: %s\n",
                   alerts_writer->last_error().c_str());
    }
    if (metrics_writer) {
      obs::update_process_gauges();
      const auto snap = obs::MetricsRegistry::global().snapshot();
      const std::string& mpath = metrics_writer->path();
      const bool prom =
          mpath.size() >= 5 && mpath.rfind(".prom") == mpath.size() - 5;
      if (!metrics_writer->write(prom ? obs::to_prometheus(snap, health)
                                      : obs::to_json(snap, health),
                                 last_window)) {
        std::fprintf(stderr, "error: cannot write metrics: %s\n",
                     metrics_writer->last_error().c_str());
      }
    }
  }
  if (!checkpoint_path.empty()) {
    // Final checkpoint after the stream is fully drained, regardless of
    // cadence: a --resume from it knows the run completed.
    write_checkpoint_now(
        engine.windows_evaluated() == 0 ? 0 : engine.windows_evaluated() - 1,
        obs::health().snapshot());
  }

  const StreamingAssemblerStats& st = engine.assembler_stats();
  std::printf("watched %zu windows: %llu flows, %zu alerts, %llu model"
              " swap(s); peak %zu open flows / %zu buffered packets\n",
              engine.windows_evaluated(),
              static_cast<unsigned long long>(st.flows_emitted),
              engine.alerts_emitted(),
              static_cast<unsigned long long>(engine.swaps()),
              st.peak_open_flows, st.peak_buffered_packets);
  if (g_chaos != nullptr) {
    std::fprintf(stderr, "chaos: %llu faults injected (%s)\n",
                 static_cast<unsigned long long>(g_chaos->stats().total()),
                 g_chaos->spec().summary().c_str());
  }
  return 0;
}

/// Converts a model file between the text (.txt) and binary (.bbm) formats;
/// each side's format is selected by its extension. Note the text format
/// deliberately omits user-action forests, so .bbm → .txt drops them (and
/// .txt → .bbm → .txt is byte-identical).
int cmd_convert(const std::map<std::string, std::string>& flags) {
  if (flags.count("in") == 0 || flags.count("out") == 0) return usage();
  const BehaviorModelSet models =
      load_models_reporting(flags.at("in"), parse_policy(flags));
  save_models_file(flags.at("out"), models);
  if (is_binary_model_path(flags.at("out"))) {
    // Verify the written image with the zero-copy view: re-validates the
    // header, section table and CRC straight off disk without a second
    // materializing load, so a torn or miswritten store file is caught at
    // write time rather than by the next reader.
    std::ifstream check(flags.at("out"), std::ios::binary);
    if (!check) {
      std::fprintf(stderr,
                   "error: cannot re-open %s for verification\n",
                   flags.at("out").c_str());
      return 1;
    }
    const std::string image((std::istreambuf_iterator<char>(check)),
                            std::istreambuf_iterator<char>());
    const BinaryModelView view = BinaryModelView::open(
        {reinterpret_cast<const std::uint8_t*>(image.data()), image.size()});
    if (view.periodic_count() != models.periodic.size()) {
      std::fprintf(stderr, "error: written image holds %zu periodic models, "
                           "expected %zu\n",
                   view.periodic_count(), models.periodic.size());
      return 1;
    }
  }
  std::printf("converted %s -> %s (%zu periodic models, %zu states, "
              "%zu user-action classifiers)\n",
              flags.at("in").c_str(), flags.at("out").c_str(),
              models.periodic.size(), models.pfsm.num_states(),
              models.user_actions.size());
  return 0;
}

int cmd_health(const std::map<std::string, std::string>& flags) {
  if (flags.count("capture") == 0) return usage();
  const auto packets = load_capture(flags.at("capture"), parse_policy(flags));
  DomainResolver resolver = make_resolver();
  FlowAssembler assembler;
  const auto flows = assembler.assemble(packets, resolver);
  std::fprintf(stderr, "assembled %zu flows\n", flows.size());

  if (flags.count("models")) {
    // Score the capture against the saved models so the classify/monitor
    // components report too.
    const BehaviorModelSet models =
        load_models_reporting(flags.at("models"), parse_policy(flags));
    Pipeline pipeline;
    const auto classified = pipeline.classify(flows, models);
    for (const std::string& reason : classified.degraded) {
      std::fprintf(stderr, "degraded: %s\n", reason.c_str());
    }
    if (!flows.empty()) {
      DeviationMonitor monitor(models.periodic, models.pfsm,
                               models.short_term);
      (void)monitor.evaluate_window(flows.front().start,
                                    flows.back().end + seconds(1.0), flows,
                                    {});
    }
  } else if (!flows.empty()) {
    // No models: exercise inference itself on the capture.
    const double window_s =
        std::max(1.0, (flows.back().end - flows.front().start) / 1e6);
    (void)PeriodicModelSet::infer(flows, window_s);
  }

  std::printf("%s", obs::render_health_table(obs::health().snapshot()).c_str());
  return obs::health().snapshot().overall() == obs::ComponentState::kHealthy
             ? 0
             : 3;  // distinct from usage (2) and hard errors (1)
}

int cmd_explain(const std::map<std::string, std::string>& flags) {
  if (flags.count("alerts") == 0) return usage();
  std::ifstream is(flags.at("alerts"));
  if (!is) {
    std::fprintf(stderr, "error: cannot read %s\n",
                 flags.at("alerts").c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << is.rdbuf();
  const auto alerts = alerts_from_json(buf.str());

  const auto& catalog = testbed::Catalog::standard();
  std::size_t shown = 0;
  for (const auto& a : alerts) {
    if (flags.count("source") && flags.at("source") != to_string(a.source)) {
      continue;
    }
    const std::string device_name =
        a.device < catalog.size() ? catalog.by_id(a.device).name : "(system)";
    std::printf("%s\n", render_alert_explanation(a, device_name).c_str());
    ++shown;
  }
  std::printf("%zu of %zu alert(s) explained\n", shown, alerts.size());
  return 0;
}

int cmd_mud(const std::map<std::string, std::string>& flags) {
  if (flags.count("models") == 0 || flags.count("device") == 0) {
    return usage();
  }
  const BehaviorModelSet models =
      load_models_reporting(flags.at("models"), parse_policy(flags));
  const auto* device =
      testbed::Catalog::standard().by_name(flags.at("device"));
  if (device == nullptr) {
    std::fprintf(stderr, "unknown device '%s'\n", flags.at("device").c_str());
    return 2;
  }
  const MudProfile profile =
      generate_mud_profile(device->id, device->name, models.periodic, {});
  std::printf("%s", profile.to_json().c_str());
  return 0;
}

int cmd_check(const std::map<std::string, std::string>& flags) {
  if (flags.count("models") == 0 || flags.count("capture") == 0 ||
      flags.count("device") == 0) {
    return usage();
  }
  const BehaviorModelSet models =
      load_models_reporting(flags.at("models"), parse_policy(flags));
  const auto* device =
      testbed::Catalog::standard().by_name(flags.at("device"));
  if (device == nullptr) {
    std::fprintf(stderr, "unknown device '%s'\n", flags.at("device").c_str());
    return 2;
  }
  const auto packets =
      load_capture(flags.at("capture"), parse_policy(flags));
  DomainResolver resolver = make_resolver();
  FlowAssembler assembler;
  const auto flows = assembler.assemble(packets, resolver);

  const MudProfile profile = generate_mud_profile(
      device->id, device->name, models.periodic, {});
  const auto violations = check_mud_compliance(profile, device->id, flows);
  std::size_t device_flows = 0;
  for (const auto& f : flows) device_flows += f.device == device->id ? 1 : 0;
  std::printf("%s: %zu flows checked against %zu ACL entries, %zu "
              "non-compliant\n",
              device->display.c_str(), device_flows, profile.entries.size(),
              violations.size());
  for (const auto& v : violations) {
    std::printf("  NONCOMPLIANT %-14s %-40s %s\n", v.protocol.c_str(),
                v.domain.c_str(), v.reason.c_str());
  }
  return 0;
}

}  // namespace

namespace {

int dispatch(const std::string& command,
             const std::map<std::string, std::string>& flags) {
  obs::StageSpan span("cli." + command);
  if (command == "simulate") return cmd_simulate(flags);
  if (command == "train") return cmd_train(flags);
  if (command == "show") return cmd_show(flags);
  if (command == "score") return cmd_score(flags);
  if (command == "watch") return cmd_watch(flags);
  if (command == "mud") return cmd_mud(flags);
  if (command == "check") return cmd_check(flags);
  if (command == "explain") return cmd_explain(flags);
  if (command == "health") return cmd_health(flags);
  if (command == "convert-models") return cmd_convert(flags);
  return usage();
}

/// Stops the tracer and writes its snapshot to `path` as Chrome trace-event
/// JSON. Returns false on I/O failure.
bool write_trace(const std::string& path) {
  obs::Tracer::global().stop();
  const auto snap = obs::Tracer::global().snapshot();
  std::string error;
  if (!obs::write_file_atomic(path, obs::trace_to_chrome_json(snap),
                              &error)) {
    std::fprintf(stderr, "error: cannot write trace: %s\n", error.c_str());
    return false;
  }
  std::fprintf(stderr,
               "wrote trace to %s (%llu events on %zu threads, %llu dropped)"
               " — open in Perfetto or chrome://tracing\n",
               path.c_str(),
               static_cast<unsigned long long>(snap.total_events),
               snap.threads.size(),
               static_cast<unsigned long long>(snap.total_dropped));
  return true;
}

/// Writes the registry to `path` (Prometheus text for .prom, JSON otherwise)
/// and prints the summary table to stderr. Returns false on I/O failure.
bool write_metrics(const std::string& path) {
  obs::update_process_gauges();
  const auto snap = obs::MetricsRegistry::global().snapshot();
  const bool prom = path.size() >= 5 && path.rfind(".prom") == path.size() - 5;
  const obs::HealthSnapshot health = obs::health().snapshot();
  std::string error;
  if (!obs::write_file_atomic(path,
                              prom ? obs::to_prometheus(snap, health)
                                   : obs::to_json(snap, health),
                              &error)) {
    std::fprintf(stderr, "error: cannot write metrics: %s\n", error.c_str());
    return false;
  }
  std::fprintf(stderr, "\n%swrote metrics to %s\n",
               obs::summary_table(snap).c_str(), path.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const auto flags = parse_flags(argc, argv);
  const auto metrics = flags.find("metrics");
  if (metrics != flags.end()) obs::MetricsRegistry::set_enabled(true);
  const auto trace = flags.find("trace");
  if (trace != flags.end()) {
    obs::Tracer::set_thread_label("main");
    obs::Tracer::global().start();
  }
  const auto chaos_flag = flags.find("chaos");
  if (chaos_flag != flags.end()) {
    try {
      g_chaos = std::make_unique<chaos::FaultInjector>(
          chaos::parse_chaos_spec(chaos_flag->second));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 2;
    }
    g_chaos->arm_feature_chaos();
    g_chaos->arm_crash_points();
  }
  const auto http = flags.find("http");
  if (http != flags.end()) {
    try {
      const std::uint64_t port = parse_count_value("http", http->second);
      if (port > 65535) {
        reject_flag("http", http->second, "a TCP port (0-65535)");
      }
      // A scrape surface implies recording: turn the registry on like
      // --metrics does, so /metrics has something to say.
      obs::MetricsRegistry::set_enabled(true);
      obs::TelemetryServerOptions topts;
      topts.port = static_cast<std::uint16_t>(port);
      g_telemetry = std::make_unique<obs::TelemetryServer>(topts);
      std::string err;
      if (!g_telemetry->start(&err)) {
        std::fprintf(stderr, "error: --http: %s\n", err.c_str());
        return 1;
      }
      std::fprintf(stderr, "telemetry: listening on http://127.0.0.1:%u\n",
                   static_cast<unsigned>(g_telemetry->port()));
    } catch (const FlagError& e) {
      std::fprintf(stderr, "usage error: %s\n", e.what());
      return 2;
    }
  }
  int rc = 2;
  try {
    rc = dispatch(command, flags);
  } catch (const FlagError& e) {
    // Operator typo, not a runtime failure: one line, usage exit code.
    std::fprintf(stderr, "usage error: %s\n", e.what());
    rc = 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    rc = 1;
  }
  // Metrics and traces are written even after a failed command: the record
  // up to the failure is exactly what an operator wants to see.
  if (metrics != flags.end() && !write_metrics(metrics->second)) rc = 1;
  if (trace != flags.end() && !write_trace(trace->second)) rc = 1;
  // A degraded run still exits 0 — outputs were produced, the operator just
  // gets told what they cost (the `health` subcommand scrutinizes instead).
  if (command != "health") {
    const obs::HealthSnapshot health = obs::health().snapshot();
    if (health.overall() != obs::ComponentState::kHealthy) {
      std::fprintf(stderr, "\n%s", obs::render_health_table(health).c_str());
    }
  }
  // Stopped after the final writes so a scraper polling through command
  // exit sees the run's complete telemetry.
  g_telemetry.reset();
  return rc;
}
