// fleet_report: the §6.1 per-device behavior characterization as an
// operator-facing report — periodic-model inventory with periods, party
// split of destinations, and the traffic mix per device, plus the
// cross-device observations the paper highlights (complexity ↔ model count,
// same-vendor devices with differing periods).
//
//   $ ./fleet_report
#include <cstdio>

#include "behaviot/analysis/characterize.hpp"
#include "behaviot/core/pipeline.hpp"

using namespace behaviot;

int main() {
  std::printf("=== BehavIoT fleet report ===\n\n");
  Pipeline pipeline;
  DomainResolver resolver;
  const auto idle = testbed::Datasets::idle(601, 1.5);
  const auto idle_flows = pipeline.to_flows(idle, resolver);
  const auto models = PeriodicModelSet::infer(idle_flows, 1.5 * 86400.0);

  const auto& catalog = testbed::Catalog::standard();
  const auto registry = PartyRegistry::standard();
  const auto devices =
      characterize_devices(models, idle_flows, catalog, registry);
  std::printf("%s", render_characterization(devices).c_str());

  // Cross-device observations (§6.1).
  double speaker_models = 0, automation_models = 0;
  std::size_t speakers = 0, automations = 0;
  for (const auto& c : devices) {
    if (c.category == testbed::DeviceCategory::kSmartSpeaker) {
      speaker_models += static_cast<double>(c.periodic_models);
      ++speakers;
    }
    if (c.category == testbed::DeviceCategory::kHomeAutomation) {
      automation_models += static_cast<double>(c.periodic_models);
      ++automations;
    }
  }
  std::printf("--- observations ---\n");
  std::printf(
      "complex devices carry more periodic models: smart speakers avg %.1f "
      "vs home automation avg %.1f\n",
      speaker_models / static_cast<double>(speakers),
      automation_models / static_cast<double>(automations));

  const auto* bulb = catalog.by_name("tplink_bulb");
  const auto* plug = catalog.by_name("tplink_plug");
  double bulb_cloud = 0, plug_cloud = 0;
  for (const auto* m : models.models_for(bulb->id)) {
    if (m->domain.find("tplinkcloud") != std::string::npos) {
      bulb_cloud = m->period_seconds;
    }
  }
  for (const auto* m : models.models_for(plug->id)) {
    if (m->domain.find("tplinkcloud") != std::string::npos) {
      plug_cloud = m->period_seconds;
    }
  }
  std::printf(
      "same vendor, different periods (supply-chain variation): TP-Link "
      "Bulb %.0fs vs TP-Link Plug %.0fs to the same cloud\n",
      bulb_cloud, plug_cloud);
  return 0;
}
