// Quickstart: train BehavIoT models on the controlled datasets, inspect
// them, then score one day of new traffic for deviations.
//
//   $ ./quickstart
//
// Demonstrates the three steps of Fig. 1: device behavior inference, system
// behavior inference, and deviation inference.
#include <cstdio>

#include "behaviot/core/deviation_engine.hpp"
#include "behaviot/core/pipeline.hpp"

using namespace behaviot;

int main() {
  std::printf("=== BehavIoT quickstart ===\n\n");

  // --- 1. Observation phase: collect the controlled datasets. -------------
  std::printf("[1/4] generating controlled datasets (idle 2d, activity, "
              "routine 3d)...\n");
  const auto idle = testbed::Datasets::idle(/*seed=*/11, /*days=*/2.0);
  const auto activity = testbed::Datasets::activity(/*seed=*/22,
                                                    /*repetitions=*/12);
  const auto routine = testbed::Datasets::routine_week(/*seed=*/33,
                                                       /*days=*/3.0);
  std::printf("      idle: %zu packets, activity: %zu packets, routine: %zu "
              "packets\n",
              idle.packets.size(), activity.packets.size(),
              routine.packets.size());

  // --- 2. Train the behavior models. --------------------------------------
  std::printf("[2/4] training behavior models...\n");
  Pipeline pipeline;
  DomainResolver resolver;
  const auto idle_flows = pipeline.to_flows(idle, resolver);
  const auto activity_flows = pipeline.to_flows(activity, resolver);
  const auto routine_flows = pipeline.to_flows(routine, resolver);
  const BehaviorModelSet models = pipeline.train(
      idle_flows, 2.0 * 86400.0, activity_flows, routine_flows);

  std::printf("      periodic models: %zu (coverage %.1f%% of idle flows)\n",
              models.periodic.size(), models.periodic.stats().coverage() * 100);
  std::printf("      user-action classifiers: %zu\n",
              models.user_actions.size());
  std::printf("      PFSM: %zu states, %zu transitions (from %zu traces, "
              "%zu invariants, %zu refinements)\n",
              models.pfsm.num_states(), models.pfsm.num_transitions(),
              models.training_traces.size(), models.invariants.size(),
              models.pfsm_refinements);
  std::printf("      short-term threshold: %.2f (mu=%.2f sigma=%.2f)\n",
              models.short_term.value(), models.short_term.mean,
              models.short_term.sigma);

  // --- 3. Show one device's inferred models (the paper's TP-Link demo). ---
  std::printf("[3/4] TPLink Plug inferred periodic models:\n");
  const auto* plug = testbed::Catalog::standard().by_name("tplink_plug");
  for (const PeriodicModel* m : models.periodic.models_for(plug->id)) {
    std::printf("      %-4s %-28s period %.0fs (tolerance %.1fs)\n",
                to_string(m->app), m->domain.c_str(), m->period_seconds,
                m->tolerance_seconds);
  }

  // --- 4. Score a new day of traffic. --------------------------------------
  std::printf("[4/4] scoring one uncontrolled day for deviations...\n");
  DeviationEngine engine(models);
  const auto day = testbed::Datasets::uncontrolled_day(/*day=*/2, /*seed=*/44);
  const auto alerts = engine.process_window(day);
  std::printf("      %zu significant deviations\n", alerts.size());
  for (std::size_t i = 0; i < alerts.size() && i < 5; ++i) {
    const DeviationAlert& a = alerts[i];
    std::printf("      [%s] score %.2f (thr %.2f): %s\n",
                to_string(a.source), a.score, a.threshold,
                a.context.c_str());
  }
  std::printf("\ndone.\n");
  return 0;
}
