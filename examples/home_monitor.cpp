// home_monitor: a streaming gateway monitor (§7.2 "Anomaly detection").
//
// Trains behavior models during an observation phase, then watches a stream
// of daily traffic windows, printing human-readable alerts with the device,
// score, threshold, and triggering context — the information the paper
// argues an IoT safeguard needs to triage anomalies.
//
//   $ ./home_monitor [days]      (default 14 days of the user study)
#include <cstdio>
#include <cstdlib>

#include "behaviot/core/deviation_engine.hpp"
#include "behaviot/core/pipeline.hpp"

using namespace behaviot;

int main(int argc, char** argv) {
  std::size_t watch_days = 14;
  if (argc > 1) watch_days = static_cast<std::size_t>(std::atoi(argv[1]));
  watch_days = std::min(watch_days, testbed::Datasets::kUncontrolledDays);

  std::printf("=== BehavIoT home monitor ===\n");
  std::printf("[observe] training behavior models on controlled data...\n");
  Pipeline pipeline;
  DomainResolver resolver;
  const auto idle = testbed::Datasets::idle(201, 1.5);
  const auto activity = testbed::Datasets::activity(202, 8);
  const auto routine = testbed::Datasets::routine_week(203, 3.0);
  const auto models = pipeline.train(
      pipeline.to_flows(idle, resolver), 1.5 * 86400.0,
      pipeline.to_flows(activity, resolver),
      pipeline.to_flows(routine, resolver));
  std::printf("[observe] %zu periodic models, %zu user-action classifiers, "
              "PFSM %zu states\n\n",
              models.periodic.size(), models.user_actions.size(),
              models.pfsm.num_states());

  const auto& catalog = testbed::Catalog::standard();
  DeviationEngine engine(models);
  std::size_t total_alerts = 0;
  for (std::size_t day = 0; day < watch_days; ++day) {
    const auto capture = testbed::Datasets::uncontrolled_day(day, 204);
    const auto alerts = engine.process_window(capture);
    std::printf("[day %2zu] %zu flows, %zu user events, %zu alerts\n", day,
                capture.truths.size(), capture.events.size(), alerts.size());
    for (const auto& a : alerts) {
      const char* device_name =
          a.device == kUnknownDevice ? "(system)"
                                     : catalog.by_id(a.device).display.c_str();
      std::printf("  ALERT %-10s %-18s score %6.2f (thr %5.2f)  %s\n",
                  to_string(a.source), device_name, a.score, a.threshold,
                  a.context.substr(0, 90).c_str());
    }
    total_alerts += alerts.size();
  }
  std::printf("\n%zu alerts over %zu days (%.2f/day; the paper observed "
              "~2/day on the full testbed)\n",
              total_alerts, watch_days,
              static_cast<double>(total_alerts) /
                  static_cast<double>(watch_days));
  return 0;
}
