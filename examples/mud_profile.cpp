// mud_profile: generate MUD-like profiles from inferred behavior models
// (§7.2 "Informing IoT profiles").
//
// RFC 8520 expects manufacturers to publish device communication profiles;
// four years on, none of the paper's 49 devices shipped one. This example
// builds the profile *from observation*: the device's periodic models
// (protocol-destination-period) plus its user-event destinations.
//
//   $ ./mud_profile [device-name]      (default: tplink_plug)
#include <cstdio>
#include <string>

#include "behaviot/core/mud_profile.hpp"
#include "behaviot/core/pipeline.hpp"

using namespace behaviot;

int main(int argc, char** argv) {
  const std::string device_name = argc > 1 ? argv[1] : "tplink_plug";
  const auto& catalog = testbed::Catalog::standard();
  const auto* device = catalog.by_name(device_name);
  if (device == nullptr) {
    std::fprintf(stderr, "unknown device '%s'; available:\n",
                 device_name.c_str());
    for (const auto& d : catalog.devices()) {
      std::fprintf(stderr, "  %s\n", d.name.c_str());
    }
    return 1;
  }

  std::printf("=== MUD profile generation for %s ===\n\n",
              device->display.c_str());
  Pipeline pipeline;
  DomainResolver resolver;
  const auto idle = testbed::Datasets::idle(301, 2.0);
  const auto activity = testbed::Datasets::activity(302, 8);
  const auto idle_flows = pipeline.to_flows(idle, resolver);
  const auto activity_flows = pipeline.to_flows(activity, resolver);

  const auto periodic = PeriodicModelSet::infer(idle_flows, 2.0 * 86400.0);
  std::vector<FlowRecord> user_flows;
  for (const FlowRecord& f : activity_flows) {
    if (f.truth == EventKind::kUser) user_flows.push_back(f);
  }

  const MudProfile profile = generate_mud_profile(
      device->id, device->name, periodic, user_flows);
  std::printf("%s\n", profile.to_json().c_str());
  std::printf("// %zu ACL entries inferred. Any traffic from %s not matching "
              "these\n// entries would be flagged as MUD-non-compliant.\n",
              profile.entries.size(), device->display.c_str());
  return 0;
}
