// pcap_roundtrip: export a simulated capture as a classic .pcap file and
// re-ingest it through the full pipeline — demonstrating that the library
// consumes real capture files (the deployment mode of the paper: a tap at
// the home gateway), not just in-memory simulations.
//
//   $ ./pcap_roundtrip [output.pcap]
#include <cstdio>
#include <fstream>
#include <string>

#include "behaviot/core/pipeline.hpp"
#include "behaviot/net/pcap.hpp"

using namespace behaviot;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/behaviot_demo.pcap";

  std::printf("=== pcap round trip ===\n");
  const auto capture = testbed::Datasets::idle(501, 0.1);
  std::printf("[1/3] writing %zu packets to %s ...\n", capture.packets.size(),
              path.c_str());
  {
    PcapWriter writer(path);
    for (const Packet& p : capture.packets) writer.write(p);
  }

  std::printf("[2/3] reading the capture back ...\n");
  // Stream the file record-by-record through a small fixed-size chunk
  // buffer — the gateway ingestion mode: peak memory stays bounded by one
  // record no matter how large the capture grows.
  PcapReadResult parsed;
  {
    std::ifstream file(path, std::ios::binary);
    PcapReader reader(file, {.policy = ParsePolicy::kLenient,
                             .chunk_size = 16 * 1024});
    while (auto p = reader.next()) parsed.packets.push_back(std::move(*p));
    parsed.stats = reader.stats();
    parsed.skipped = parsed.stats.skipped();
    std::printf("      %s\n      streamed with a %zu-byte buffer\n",
                parsed.stats.summary().c_str(), reader.buffer_capacity());
  }

  // Re-attach device identity by source IP, as a gateway deployment would
  // (the catalog doubles as the DHCP lease table).
  const auto& catalog = testbed::Catalog::standard();
  auto packets = parsed.packets;
  std::size_t unknown = 0;
  for (Packet& p : packets) {
    const auto* device = catalog.by_ip(p.tuple.src.ip);
    if (device != nullptr) {
      p.device = device->id;
    } else {
      ++unknown;
    }
  }

  std::printf("[3/3] assembling flows from the re-ingested capture ...\n");
  DomainResolver resolver;
  testbed::configure_resolver(resolver, capture);
  FlowAssembler assembler;
  const auto flows = assembler.assemble(packets, resolver);

  std::size_t annotated = 0;
  for (const FlowRecord& f : flows) {
    if (!f.domain.empty()) ++annotated;
  }
  std::printf("\nflows: %zu, domain-annotated: %zu (%.1f%%), unknown-device "
              "packets: %zu\n",
              flows.size(), annotated,
              100.0 * static_cast<double>(annotated) /
                  static_cast<double>(flows.size()),
              unknown);
  std::printf("round trip %s\n",
              parsed.packets.size() == capture.packets.size() && unknown == 0
                  ? "OK"
                  : "MISMATCH");
  return parsed.packets.size() == capture.packets.size() ? 0 : 1;
}
