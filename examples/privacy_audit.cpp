// privacy_audit: destination/party exposure report (§6.1 + §7.2 "Regulatory
// and privacy policy compliance").
//
// For every device, classifies each observed destination as first/support/
// third party and essential/non-essential, and flags the combinations that
// merit attention: third-party periodic telemetry and blockable
// non-essential traffic — the GDPR data-minimization angle of the paper.
//
//   $ ./privacy_audit
#include <cstdio>
#include <map>
#include <set>

#include "behaviot/analysis/essential.hpp"
#include "behaviot/analysis/party.hpp"
#include "behaviot/analysis/report.hpp"
#include "behaviot/core/pipeline.hpp"

using namespace behaviot;

int main() {
  std::printf("=== BehavIoT privacy audit ===\n\n");
  Pipeline pipeline;
  DomainResolver resolver;
  const auto idle = testbed::Datasets::idle(401, 1.0);
  const auto activity = testbed::Datasets::activity(402, 6);
  const auto idle_flows = pipeline.to_flows(idle, resolver);
  const auto activity_flows = pipeline.to_flows(activity, resolver);

  const auto& catalog = testbed::Catalog::standard();
  const auto registry = PartyRegistry::standard();
  const auto essential = EssentialList::standard();

  // destination → (devices, parties, essentiality, flow count).
  struct DestInfo {
    std::set<std::string> devices;
    Party party = Party::kUnknown;
    Essentiality essentiality = Essentiality::kUnlisted;
    std::size_t flows = 0;
  };
  std::map<std::string, DestInfo> destinations;
  for (const auto* flows : {&idle_flows, &activity_flows}) {
    for (const FlowRecord& f : *flows) {
      if (f.domain.empty()) continue;
      const auto& info = catalog.by_id(f.device);
      DestInfo& d = destinations[f.domain];
      d.devices.insert(info.name);
      d.party = registry.classify(f.domain, info.vendor);
      d.essentiality = essential.classify(f.domain);
      ++d.flows;
    }
  }

  std::size_t third_party = 0, non_essential = 0;
  TablePrinter flagged({"Destination", "Party", "Essential?", "Devices",
                        "Flows"});
  for (const auto& [domain, d] : destinations) {
    if (d.party == Party::kThird) ++third_party;
    if (d.essentiality == Essentiality::kNonEssential) ++non_essential;
    if (d.party == Party::kThird ||
        d.essentiality == Essentiality::kNonEssential) {
      flagged.add_row({domain, to_string(d.party), to_string(d.essentiality),
                       std::to_string(d.devices.size()),
                       std::to_string(d.flows)});
    }
  }

  std::printf("observed destinations: %zu (%zu third-party, %zu known "
              "non-essential)\n\n",
              destinations.size(), third_party, non_essential);
  std::printf("--- destinations flagged for review ---\n%s\n",
              flagged.to_string().c_str());
  std::printf(
      "Recommendation: non-essential destinations can be blocked without\n"
      "impairing functionality (per the IoTrim methodology the paper\n"
      "builds on); third-party periodic telemetry may violate the GDPR\n"
      "art. 5(1)(c) data-minimization principle and deserves disclosure.\n");
  return 0;
}
