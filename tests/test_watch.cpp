// `behaviot watch` engine tests: the streaming daemon must be a faithful
// re-statement of the batch pipeline — same windows, same alerts, byte for
// byte — while holding peak buffered state under its caps and swapping
// retrained models without dropping or double-scoring a window.
#include "behaviot/core/watch_engine.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <span>
#include <vector>

#include "behaviot/core/model_handle.hpp"
#include "behaviot/flow/assembler.hpp"
#include "behaviot/runtime/runtime.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

/// Shared fixture, built once per binary (heavy: trains real periodic
/// models from generated idle traffic).
struct WatchFixture {
  BehaviorModelSet models;
  std::vector<Packet> eval_packets;  ///< quarter-day capture to stream
};

const WatchFixture& fixture() {
  static const WatchFixture* fx = [] {
    auto* f = new WatchFixture;
    const auto train = testbed::Datasets::idle(/*seed=*/11, /*days=*/0.5);
    DomainResolver train_resolver;
    const auto train_flows =
        FlowAssembler().assemble(train.packets, train_resolver);
    f->models.periodic = PeriodicModelSet::infer(train_flows, 0.5 * 86400.0);
    // Routine traffic (automations + user commands) against idle-only models
    // guarantees real deviation alerts, so the equality checks below are
    // never vacuously comparing empty sets.
    f->eval_packets =
        testbed::Datasets::routine_week(/*seed=*/23, /*days=*/0.25).packets;
    return f;
  }();
  return *fx;
}

/// The batch reference: assemble everything, then score the same window grid
/// `score --window-s` walks.
std::vector<DeviationAlert> batch_score(const BehaviorModelSet& models,
                                        const std::vector<Packet>& packets,
                                        std::int64_t window_us,
                                        std::size_t max_windows = 0) {
  DomainResolver resolver;
  const auto flows = FlowAssembler().assemble(packets, resolver);
  std::vector<DeviationAlert> alerts;
  if (flows.empty()) return alerts;
  DeviationMonitor monitor(models.periodic, models.pfsm, models.short_term);
  const Timestamp t0 = flows.front().start;
  const Timestamp end = flows.back().end + seconds(1.0);
  std::size_t k = 0;
  for (Timestamp ws = t0; ws < end; ws = ws + window_us) {
    if (max_windows > 0 && k >= max_windows) break;
    std::vector<FlowRecord> in_window;
    for (const FlowRecord& f : flows) {
      if (f.start >= ws && f.start < ws + window_us) in_window.push_back(f);
    }
    auto batch = monitor.evaluate_window(ws, ws + window_us, in_window, {});
    alerts.insert(alerts.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
    ++k;
  }
  return alerts;
}

struct WatchRun {
  std::vector<DeviationAlert> alerts;
  std::vector<WatchWindowReport> reports;
  StreamingAssemblerStats stats;
  std::size_t windows = 0;
  std::uint64_t swaps = 0;
  std::uint64_t final_version = 0;
  std::size_t live_buffered_max = 0;  ///< max buffered_packets() between chunks
};

WatchRun run_watch(const BehaviorModelSet& models,
                   const std::vector<Packet>& packets, WatchOptions opts,
                   std::size_t chunk) {
  ModelHandle handle(models);
  WatchEngine engine(handle, DomainResolver{}, opts);
  WatchRun run;
  engine.set_window_sink([&run](const WatchWindowReport& r) {
    run.alerts.insert(run.alerts.end(), r.alerts.begin(), r.alerts.end());
    run.reports.push_back(r);
  });
  const std::span<const Packet> all(packets);
  for (std::size_t i = 0; i < all.size() && !engine.done(); i += chunk) {
    engine.ingest(all.subspan(i, std::min(chunk, all.size() - i)));
    run.live_buffered_max =
        std::max(run.live_buffered_max, engine.buffered_packets());
  }
  engine.finish();
  run.stats = engine.assembler_stats();
  run.windows = engine.windows_evaluated();
  run.swaps = engine.swaps();
  run.final_version = engine.model_version();
  return run;
}

void expect_same_alerts(const std::vector<DeviationAlert>& a,
                        const std::vector<DeviationAlert>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source) << i;
    EXPECT_EQ(a[i].when, b[i].when) << i;
    EXPECT_EQ(a[i].device, b[i].device) << i;
    EXPECT_EQ(a[i].score, b[i].score) << i;        // byte-identical, not near
    EXPECT_EQ(a[i].threshold, b[i].threshold) << i;
    EXPECT_EQ(a[i].context, b[i].context) << i;
  }
}

constexpr std::int64_t kWindowUs = 30 * 60 * 1'000'000LL;  // 30 min

TEST(ModelHandle, PublishBumpsVersionOldGenerationStaysValid) {
  BehaviorModelSet initial;
  initial.training_traces = {{"a"}};
  ModelHandle handle(initial);
  EXPECT_EQ(handle.version(), 1u);
  const auto gen1 = handle.acquire();
  ASSERT_EQ(gen1->training_traces.size(), 1u);

  BehaviorModelSet next;
  next.training_traces = {{"a"}, {"b"}};
  EXPECT_EQ(handle.publish(std::move(next)), 2u);
  EXPECT_EQ(handle.version(), 2u);
  const auto gen2 = handle.acquire();
  EXPECT_EQ(gen2->training_traces.size(), 2u);
  // A reader holding the old generation is unaffected by the swap.
  EXPECT_EQ(gen1->training_traces.size(), 1u);
}

TEST(WatchEngine, StreamingMatchesBatchScore) {
  const auto& fx = fixture();
  const auto batch = batch_score(fx.models, fx.eval_packets, kWindowUs);
  ASSERT_FALSE(batch.empty()) << "fixture must produce alerts or the "
                                 "streaming==batch check is vacuous";
  WatchOptions opts;
  opts.window_us = kWindowUs;
  const auto run = run_watch(fx.models, fx.eval_packets, opts, /*chunk=*/257);
  expect_same_alerts(run.alerts, batch);
  // Same window grid: quarter day / 30 min = 12 windows (+1 for the +1 s
  // batch tail bound, depending on the last flow's end).
  EXPECT_GE(run.windows, 12u);
}

TEST(WatchEngine, ChunkingDoesNotChangeAlertsOrSwaps) {
  const auto& fx = fixture();
  WatchOptions opts;
  opts.window_us = kWindowUs;
  opts.retrain_every_windows = 4;
  const auto a = run_watch(fx.models, fx.eval_packets, opts, /*chunk=*/64);
  const auto b = run_watch(fx.models, fx.eval_packets, opts, /*chunk=*/4099);
  expect_same_alerts(a.alerts, b.alerts);
  EXPECT_EQ(a.windows, b.windows);
  EXPECT_EQ(a.swaps, b.swaps);
  EXPECT_GT(a.swaps, 0u);
  EXPECT_EQ(a.final_version, a.swaps + 1);
}

TEST(WatchEngine, RetrainSwapIsThreadCountInvariant) {
  const auto& fx = fixture();
  WatchOptions opts;
  opts.window_us = kWindowUs;
  opts.retrain_every_windows = 3;
  const std::size_t before = runtime::global_threads();
  runtime::set_global_threads(1);
  const auto single = run_watch(fx.models, fx.eval_packets, opts, 311);
  runtime::set_global_threads(8);
  const auto pooled = run_watch(fx.models, fx.eval_packets, opts, 311);
  runtime::set_global_threads(before);
  expect_same_alerts(single.alerts, pooled.alerts);
  EXPECT_EQ(single.swaps, pooled.swaps);
  EXPECT_GT(single.swaps, 0u);
}

TEST(WatchEngine, SwapNeverDropsOrReordersWindows) {
  const auto& fx = fixture();
  WatchOptions opts;
  opts.window_us = kWindowUs;
  opts.retrain_every_windows = 2;  // swap pressure on almost every window
  const auto run = run_watch(fx.models, fx.eval_packets, opts, 997);

  // Windows arrive exactly once, in order, on the fixed grid.
  ASSERT_FALSE(run.reports.empty());
  const Timestamp t0 = run.reports.front().start;
  std::uint64_t version = 0;
  std::uint64_t swapped_windows = 0;
  for (std::size_t i = 0; i < run.reports.size(); ++i) {
    const WatchWindowReport& r = run.reports[i];
    EXPECT_EQ(r.index, i);
    EXPECT_EQ(r.start,
              t0 + static_cast<std::int64_t>(i) * opts.window_us);
    EXPECT_EQ(r.end, r.start + opts.window_us);
    EXPECT_GE(r.model_version, version);  // generations only move forward
    version = r.model_version;
    swapped_windows += r.swapped ? 1 : 0;
  }
  // Every swap lands on exactly one window's report — except a retrain
  // launched after the final window, which is still joined (and counted) at
  // shutdown but has no later window to mark.
  EXPECT_GE(run.swaps, swapped_windows);
  EXPECT_LE(run.swaps, swapped_windows + 1);
  EXPECT_GT(run.swaps, 0u);

  // And every assembled flow was scored in exactly one window.
  DomainResolver resolver;
  const auto flows = FlowAssembler().assemble(fx.eval_packets, resolver);
  std::size_t windowed = 0;
  for (const auto& r : run.reports) windowed += r.flows;
  EXPECT_EQ(windowed, flows.size());
}

TEST(WatchEngine, BoundedMemoryHoldsUnderCapsWithoutLosingWindows) {
  const auto& fx = fixture();
  const auto unbounded = batch_score(fx.models, fx.eval_packets, kWindowUs);

  WatchOptions opts;
  opts.window_us = kWindowUs;
  opts.assembler.max_open_flows = 64;
  opts.assembler.max_buffered_packets = 512;  // capture is >10x this
  const auto run = run_watch(fx.models, fx.eval_packets, opts, 509);
  ASSERT_GT(fx.eval_packets.size(), 10u * 512u);

  EXPECT_LE(run.stats.peak_open_flows, 64u);
  EXPECT_LE(run.stats.peak_buffered_packets, 512u);
  EXPECT_LE(run.live_buffered_max, 512u);
  // No window dropped: the cap may split flows (force-seals), never skip
  // windows or lose packets.
  std::uint64_t packets_out = 0;
  DomainResolver resolver;
  for (const auto& f : FlowAssembler().assemble(fx.eval_packets, resolver)) {
    packets_out += f.packets.size();
  }
  std::size_t streamed_windows = run.reports.size();
  EXPECT_EQ(run.windows, streamed_windows);
  EXPECT_GE(streamed_windows, 12u);
  EXPECT_EQ(run.stats.packets_in, fx.eval_packets.size());
  // With generous caps the capture fits: behavior stays batch-identical.
  expect_same_alerts(run.alerts, unbounded);

  // Now with caps tight enough to actually bind: flows get force-sealed,
  // but the window grid is unchanged and every packet still reaches exactly
  // one flow in exactly one window.
  WatchOptions tight = opts;
  tight.assembler.max_open_flows = 8;
  tight.assembler.max_buffered_packets = 64;
  const auto squeezed = run_watch(fx.models, fx.eval_packets, tight, 509);
  EXPECT_LE(squeezed.stats.peak_open_flows, 8u);
  EXPECT_LE(squeezed.stats.peak_buffered_packets, 64u);
  EXPECT_GT(squeezed.stats.force_sealed, 0u);
  EXPECT_EQ(squeezed.windows, run.windows);
  EXPECT_EQ(squeezed.stats.packets_in, fx.eval_packets.size());
}

TEST(WatchEngine, MaxWindowsStopsDeterministically) {
  const auto& fx = fixture();
  const auto batch3 =
      batch_score(fx.models, fx.eval_packets, kWindowUs, /*max_windows=*/3);
  WatchOptions opts;
  opts.window_us = kWindowUs;
  opts.max_windows = 3;
  const auto run = run_watch(fx.models, fx.eval_packets, opts, 1021);
  EXPECT_EQ(run.windows, 3u);
  expect_same_alerts(run.alerts, batch3);
}

TEST(WatchEngine, UntilStopsBeforeTheBoundary) {
  const auto& fx = fixture();
  WatchOptions opts;
  opts.window_us = kWindowUs;
  opts.until = Timestamp(seconds(3.5 * 1800.0));  // mid-window-3
  const auto run = run_watch(fx.models, fx.eval_packets, opts, 1021);
  // Windows starting at/after `until` are never evaluated.
  for (const auto& r : run.reports) {
    EXPECT_LT(r.start, *opts.until);
  }
  EXPECT_GT(run.windows, 0u);
  EXPECT_LE(run.windows, 4u);
}

}  // namespace
}  // namespace behaviot
