#include "behaviot/ml/unsupervised.hpp"

#include <gtest/gtest.h>

#include "behaviot/flow/assembler.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

/// Candidate event flows: ground-truth user flows from the activity dataset
/// (what a deployment would have after periodic filtering, §7.3).
struct Fixture {
  std::vector<FlowRecord> user_flows;

  explicit Fixture(std::uint64_t seed, std::size_t reps) {
    const auto capture = testbed::Datasets::activity(seed, reps);
    DomainResolver resolver;
    testbed::configure_resolver(resolver, capture);
    FlowAssembler assembler;
    auto flows = assembler.assemble(capture.packets, resolver);
    testbed::apply_ground_truth(flows, capture.truths);
    for (FlowRecord& f : flows) {
      if (f.truth == EventKind::kUser) user_flows.push_back(std::move(f));
    }
  }
};

TEST(Unsupervised, ClustersEmergePerDevice) {
  const Fixture fx(121, 10);
  const auto models = UnsupervisedActionModels::train(fx.user_flows);
  EXPECT_GT(models.num_clusters(), 20u);
  const auto* bulb = testbed::Catalog::standard().by_name("tplink_bulb");
  EXPECT_GE(models.labels_for(bulb->id).size(), 2u);
}

TEST(Unsupervised, ClustersArePureAgainstGroundTruth) {
  // The §7.3 claim only works if unsupervised clusters correspond to real
  // activities; measure cluster purity against the hidden labels.
  const Fixture fx(122, 10);
  const auto models = UnsupervisedActionModels::train(fx.user_flows);
  EXPECT_GT(models.purity(fx.user_flows), 0.9);
}

TEST(Unsupervised, GeneralizesToHeldOutTraffic) {
  const Fixture train(123, 10);
  const auto models = UnsupervisedActionModels::train(train.user_flows);
  const Fixture test(124, 3);
  std::size_t matched = 0;
  for (const FlowRecord& f : test.user_flows) {
    matched += models.classify(f).matched() ? 1 : 0;
  }
  EXPECT_GT(static_cast<double>(matched) /
                static_cast<double>(test.user_flows.size()),
            0.7);
  EXPECT_GT(models.purity(test.user_flows), 0.85);
}

TEST(Unsupervised, SameActivityMapsToSameCluster) {
  const Fixture fx(125, 10);
  const auto models = UnsupervisedActionModels::train(fx.user_flows);
  // Two flows with the same truth label on the same device should land in
  // the same pseudo-cluster (spot check on a frequent label).
  std::map<std::string, std::set<std::string>> label_to_clusters;
  for (const FlowRecord& f : fx.user_flows) {
    const auto prediction = models.classify(f);
    if (prediction.matched()) {
      label_to_clusters[f.truth_label].insert(prediction.label);
    }
  }
  std::size_t single_cluster_labels = 0, labels_total = 0;
  for (const auto& [label, clusters] : label_to_clusters) {
    ++labels_total;
    if (clusters.size() == 1) ++single_cluster_labels;
  }
  ASSERT_GT(labels_total, 0u);
  EXPECT_GT(static_cast<double>(single_cluster_labels) /
                static_cast<double>(labels_total),
            0.7);
}

TEST(Unsupervised, UnknownDeviceUnmatched) {
  const Fixture fx(126, 6);
  const auto models = UnsupervisedActionModels::train(fx.user_flows);
  FlowRecord flow;
  flow.device = 9999;
  EXPECT_FALSE(models.classify(flow).matched());
  EXPECT_TRUE(models.labels_for(9999).empty());
}

TEST(Unsupervised, EmptyTrainingIsHarmless) {
  const auto models = UnsupervisedActionModels::train({});
  EXPECT_EQ(models.num_clusters(), 0u);
  EXPECT_DOUBLE_EQ(models.purity({}), 0.0);
}

TEST(Unsupervised, TinyInputBelowMinClusterSize) {
  Fixture fx(127, 1);
  fx.user_flows.resize(std::min<std::size_t>(fx.user_flows.size(), 3));
  const auto models = UnsupervisedActionModels::train(fx.user_flows);
  EXPECT_EQ(models.num_clusters(), 0u);
}

}  // namespace
}  // namespace behaviot
