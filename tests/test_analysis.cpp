#include <gtest/gtest.h>

#include "behaviot/analysis/essential.hpp"
#include "behaviot/analysis/party.hpp"
#include "behaviot/analysis/report.hpp"

namespace behaviot {
namespace {

TEST(PartyRegistry, VendorDomainIsFirstPartyForItsDevices) {
  const auto r = PartyRegistry::standard();
  EXPECT_EQ(r.classify("api.tplinkcloud.com", "tplink"), Party::kFirst);
  EXPECT_EQ(r.classify("device-metrics-us.amazon.com", "amazon"),
            Party::kFirst);
}

TEST(PartyRegistry, OtherVendorsCloudIsThirdParty) {
  const auto r = PartyRegistry::standard();
  EXPECT_EQ(r.classify("api.tplinkcloud.com", "wemo"), Party::kThird);
  EXPECT_EQ(r.classify("alexa.com", "tplink"), Party::kThird);
}

TEST(PartyRegistry, CloudInfrastructureIsSupportParty) {
  const auto r = PartyRegistry::standard();
  EXPECT_EQ(r.classify("d1a2b3.cloudfront.net", "ring"), Party::kSupport);
  EXPECT_EQ(r.classify("iot.us-east-1.amazonaws.com", "wyze"),
            Party::kSupport);
}

TEST(PartyRegistry, AffiliateBrandsMapToVendor) {
  // Smart Life is Tuya's platform: Tuya cloud is first party for it.
  const auto r = PartyRegistry::standard();
  EXPECT_EQ(r.classify("telemetry.tuyaus.com", "smartlife"), Party::kFirst);
}

TEST(PartyRegistry, TrackersAndPublicDnsAreThirdParty) {
  const auto r = PartyRegistry::standard();
  EXPECT_EQ(r.classify("metrics.adservice.net", "tplink"), Party::kThird);
  EXPECT_EQ(r.classify("dns.google", "ring"), Party::kThird);
  EXPECT_EQ(r.classify("0.pool.ntp.org", "ring"), Party::kThird);
}

TEST(PartyRegistry, UnknownDomainDefaultsToThird) {
  // "All other entities are considered third parties" (§6.1).
  const auto r = PartyRegistry::standard();
  EXPECT_EQ(r.classify("totally-unknown.example.xyz", "tplink"),
            Party::kThird);
}

TEST(PartyRegistry, EmptyDomainIsUnknown) {
  const auto r = PartyRegistry::standard();
  EXPECT_EQ(r.classify("", "tplink"), Party::kUnknown);
}

TEST(PartyRegistry, SuffixMatchingRespectsLabelBoundaries) {
  const auto r = PartyRegistry::standard();
  // "notring.com" must not match "ring.com".
  EXPECT_EQ(r.organization("api.notring.com"), "");
  EXPECT_EQ(r.organization("api.ring.com"), "Ring");
  EXPECT_EQ(r.organization("ring.com"), "Ring");
}

TEST(PartyRegistry, LongestSuffixWins) {
  PartyRegistry r;
  r.add_domain("example.com", "Generic", Party::kThird);
  r.add_domain("cdn.example.com", "CDN", Party::kSupport);
  EXPECT_EQ(r.organization("x.cdn.example.com"), "CDN");
  EXPECT_EQ(r.organization("x.example.com"), "Generic");
}

TEST(PartyNames, Spellings) {
  EXPECT_STREQ(to_string(Party::kFirst), "first");
  EXPECT_STREQ(to_string(Party::kSupport), "support");
  EXPECT_STREQ(to_string(Party::kThird), "third");
}

TEST(EssentialList, VendorControlPlanesAreEssential) {
  const auto list = EssentialList::standard();
  EXPECT_EQ(list.classify("api.tplinkcloud.com"), Essentiality::kEssential);
  EXPECT_EQ(list.classify("mqtt.ring.com"), Essentiality::kEssential);
}

TEST(EssentialList, TelemetryAndTrackersAreNonEssential) {
  const auto list = EssentialList::standard();
  EXPECT_EQ(list.classify("device-metrics-us.amazon.com"),
            Essentiality::kNonEssential);
  EXPECT_EQ(list.classify("mas-sdk.amazon.com"), Essentiality::kNonEssential);
  EXPECT_EQ(list.classify("api.tracker.io"), Essentiality::kNonEssential);
}

TEST(EssentialList, SpecificNonEssentialBeatsBroaderEssential) {
  // stats.tplinkcloud.com is telemetry inside an otherwise essential cloud.
  const auto list = EssentialList::standard();
  EXPECT_EQ(list.classify("stats.tplinkcloud.com"),
            Essentiality::kNonEssential);
  EXPECT_EQ(list.classify("api.tplinkcloud.com"), Essentiality::kEssential);
}

TEST(EssentialList, UnlistedDomains) {
  const auto list = EssentialList::standard();
  EXPECT_EQ(list.classify("mystery.example.org"), Essentiality::kUnlisted);
  EXPECT_STREQ(to_string(Essentiality::kUnlisted), "unlisted");
}

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter t({"Device", "Acc"});
  t.add_row({"tplink_plug", "100%"});
  t.add_row({"x", "9%"});
  const std::string out = t.to_string();
  EXPECT_NE(out.find("Device"), std::string::npos);
  EXPECT_NE(out.find("tplink_plug"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // Header line and rows share column offsets: "Acc" sits above "100%".
  const auto header_pos = out.find("Acc");
  const auto value_pos = out.find("100%");
  const auto header_col = header_pos - out.rfind('\n', header_pos) - 1;
  const auto value_col = value_pos - out.rfind('\n', value_pos) - 1;
  EXPECT_EQ(header_col, value_col);
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter t({"A", "B", "C"});
  t.add_row({"1"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(TablePrinter, FormatHelpers) {
  EXPECT_EQ(TablePrinter::percent(0.9985), "99.9%");
  EXPECT_EQ(TablePrinter::percent(0.5, 0), "50%");
  EXPECT_EQ(TablePrinter::fixed(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace behaviot
