#include "behaviot/pfsm/invariants.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace behaviot {
namespace {

using Traces = std::vector<std::vector<std::string>>;

bool has(const std::vector<Invariant>& invs, InvariantKind kind,
         const std::string& a, const std::string& b) {
  return std::any_of(invs.begin(), invs.end(), [&](const Invariant& i) {
    return i.kind == kind && i.a == a && i.b == b;
  });
}

TEST(Invariants, AlwaysFollowedBy) {
  const Traces traces{{"motion", "light_on"}, {"motion", "beep", "light_on"}};
  const auto invs = mine_invariants(traces);
  EXPECT_TRUE(has(invs, InvariantKind::kAlwaysFollowedBy, "motion", "light_on"));
}

TEST(Invariants, AFbyBrokenByOneCounterexample) {
  const Traces traces{{"motion", "light_on"}, {"motion"}};
  const auto invs = mine_invariants(traces);
  EXPECT_FALSE(
      has(invs, InvariantKind::kAlwaysFollowedBy, "motion", "light_on"));
}

TEST(Invariants, NeverFollowedBy) {
  // "light_off" precedes "motion" somewhere (so the pair co-occurs), but
  // "light_off" is never followed by "motion".
  const Traces traces{{"motion", "light_off"}, {"light_off"}};
  const auto invs = mine_invariants(traces);
  EXPECT_TRUE(
      has(invs, InvariantKind::kNeverFollowedBy, "light_off", "motion"));
}

TEST(Invariants, AlwaysPrecededBy) {
  const Traces traces{{"doorbell", "chime"}, {"doorbell", "pause", "chime"}};
  const auto invs = mine_invariants(traces);
  EXPECT_TRUE(has(invs, InvariantKind::kAlwaysPrecededBy, "doorbell", "chime"));
}

TEST(Invariants, APBrokenWhenEventAppearsAlone) {
  const Traces traces{{"doorbell", "chime"}, {"chime"}};
  const auto invs = mine_invariants(traces);
  EXPECT_FALSE(
      has(invs, InvariantKind::kAlwaysPrecededBy, "doorbell", "chime"));
}

TEST(Invariants, MinSupportFiltersRareEvidence) {
  const Traces traces{{"rare", "follow"}};
  EXPECT_TRUE(has(mine_invariants(traces, 1),
                  InvariantKind::kAlwaysFollowedBy, "rare", "follow"));
  EXPECT_FALSE(has(mine_invariants(traces, 2),
                   InvariantKind::kAlwaysFollowedBy, "rare", "follow"));
}

TEST(Invariants, RepeatedLabelWithinTrace) {
  // "a" occurs twice; the second occurrence is not followed by "b", breaking
  // AFby(a, b).
  const Traces traces{{"a", "b", "a"}};
  const auto invs = mine_invariants(traces);
  EXPECT_FALSE(has(invs, InvariantKind::kAlwaysFollowedBy, "a", "b"));
  // But every "b" is preceded by an "a".
  EXPECT_TRUE(has(invs, InvariantKind::kAlwaysPrecededBy, "a", "b"));
}

TEST(Invariants, EmptyTraceSet) {
  EXPECT_TRUE(mine_invariants(Traces{}).empty());
  EXPECT_TRUE(mine_invariants(Traces{{}}).empty());
}

TEST(Invariants, ToStringRendering) {
  const Invariant inv{InvariantKind::kNeverFollowedBy, "x", "y"};
  EXPECT_EQ(inv.to_string(), "x NFby y");
  EXPECT_STREQ(to_string(InvariantKind::kAlwaysFollowedBy), "AFby");
  EXPECT_STREQ(to_string(InvariantKind::kAlwaysPrecededBy), "AP");
}

}  // namespace
}  // namespace behaviot
