#include "behaviot/pfsm/trace.hpp"

#include <gtest/gtest.h>

namespace behaviot {
namespace {

UserEvent ev(double t_s, const std::string& device,
             const std::string& activity) {
  UserEvent e;
  e.ts = Timestamp::from_seconds(t_s);
  e.device_name = device;
  e.activity = activity;
  return e;
}

TEST(Traces, EmptyStream) {
  EXPECT_TRUE(build_traces(std::vector<UserEvent>{}).empty());
}

TEST(Traces, SingleEventSingleTrace) {
  const std::vector<UserEvent> events{ev(0, "plug", "on")};
  const auto traces = build_traces(events);
  ASSERT_EQ(traces.size(), 1u);
  EXPECT_EQ(traces[0].size(), 1u);
}

TEST(Traces, SplitsAtGapsOverOneMinute) {
  const std::vector<UserEvent> events{
      ev(0, "cam", "motion"), ev(5, "bulb", "on"),     // trace 1
      ev(120, "plug", "on"), ev(150, "plug", "off"),   // trace 2 (gap 115 s)
      ev(400, "cam", "motion"),                        // trace 3 (gap 250 s)
  };
  const auto traces = build_traces(events);
  ASSERT_EQ(traces.size(), 3u);
  EXPECT_EQ(traces[0].size(), 2u);
  EXPECT_EQ(traces[1].size(), 2u);
  EXPECT_EQ(traces[2].size(), 1u);
}

TEST(Traces, ExactGapBoundaryStaysTogether) {
  // Gap of exactly 60 s does not split (threshold is strict >).
  const std::vector<UserEvent> events{ev(0, "a", "x"), ev(60, "b", "y")};
  EXPECT_EQ(build_traces(events).size(), 1u);
  const std::vector<UserEvent> events2{ev(0, "a", "x"), ev(60.001, "b", "y")};
  EXPECT_EQ(build_traces(events2).size(), 2u);
}

TEST(Traces, UnsortedInputIsSortedFirst) {
  const std::vector<UserEvent> events{ev(100, "b", "y"), ev(0, "a", "x"),
                                      ev(95, "c", "z")};
  const auto traces = build_traces(events);
  ASSERT_EQ(traces.size(), 2u);
  EXPECT_EQ(traces[0][0].device_name, "a");
  EXPECT_EQ(traces[1][0].device_name, "c");
  EXPECT_EQ(traces[1][1].device_name, "b");
}

TEST(Traces, CustomGap) {
  const std::vector<UserEvent> events{ev(0, "a", "x"), ev(10, "b", "y")};
  EXPECT_EQ(build_traces(events, seconds(5.0)).size(), 2u);
  EXPECT_EQ(build_traces(events, seconds(15.0)).size(), 1u);
}

TEST(Traces, LabelsCombineDeviceAndActivity) {
  const EventTrace trace{ev(0, "tplink_plug", "on"), ev(1, "cam", "motion")};
  const auto labels = trace_labels(trace);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0], "tplink_plug:on");
  EXPECT_EQ(labels[1], "cam:motion");
}

TEST(UserEvent, LabelFormat) {
  EXPECT_EQ(ev(0, "bulb", "color").label(), "bulb:color");
}

}  // namespace
}  // namespace behaviot
