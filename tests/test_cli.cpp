// End-to-end smoke tests of the `behaviot` CLI: simulate → train → show →
// score → mud → explain, exercising the pcap, serialization, alert-report,
// and trace formats through the shipped binary.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <map>
#include <set>
#include <string>

#include "behaviot/obs/json.hpp"

namespace {

std::string cli_path() {
  // tests run from build/tests (ctest) or anywhere (manual); resolve the
  // binary relative to this test's own location.
  const auto self = std::filesystem::read_symlink("/proc/self/exe");
  return (self.parent_path().parent_path() / "tools" / "behaviot").string();
}

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

/// `env` is prepended to the shell command ("NAME=value", may be empty).
CommandResult run(const std::string& args, const std::string& env = "") {
  CommandResult result;
  const std::string cmd =
      (env.empty() ? "" : env + " ") + cli_path() + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = pclose(pipe);
  // Decode the wait(2) status: the exit-code contract (2 for usage errors)
  // is on the process exit code, not the packed status word.
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string read_file(const std::string& path) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return text;
  std::array<char, 512> buf{};
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
    text.append(buf.data(), n);
  }
  std::fclose(f);
  return text;
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/behaviot_cli");
    std::filesystem::create_directories(*dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
  }
  static std::string* dir_;
};

std::string* CliTest::dir_ = nullptr;

TEST_F(CliTest, NoArgumentsPrintsUsage) {
  const auto result = run("");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandPrintsUsage) {
  const auto result = run("frobnicate");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, FullWorkflow) {
  const std::string pcap = *dir_ + "/idle.pcap";
  const std::string models = *dir_ + "/models.txt";

  // simulate
  auto result = run("simulate --dataset idle --days 0.1 --seed 5 --out " +
                    pcap);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("wrote"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(pcap));

  // train
  result = run("train --idle " + pcap + " --window-days 0.1 --out " + models);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("periodic models"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(models));

  // show
  result = run("show --models " + models + " --device tplink_plug");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("tplink_plug"), std::string::npos);
  EXPECT_NE(result.output.find("tplinkcloud"), std::string::npos);

  // score the same capture against its own models: quiet.
  result = run("score --models " + models + " --capture " + pcap);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("deviation alerts"), std::string::npos);

  // mud
  result = run("mud --models " + models + " --device tplink_plug");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("ietf-mud:mud"), std::string::npos);

  // check: MUD compliance of the capture against the inferred profile.
  result = run("check --models " + models + " --capture " + pcap +
               " --device tplink_plug");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("flows checked"), std::string::npos);
}

TEST_F(CliTest, MetricsFlagWritesJsonAndSummary) {
  const std::string pcap = *dir_ + "/metrics.pcap";
  const std::string models = *dir_ + "/metrics_models.txt";
  const std::string metrics = *dir_ + "/metrics.json";
  ASSERT_EQ(run("simulate --dataset idle --days 0.1 --seed 7 --out " + pcap)
                .exit_code,
            0);
  ASSERT_EQ(run("train --idle " + pcap + " --window-days 0.1 --out " + models)
                .exit_code,
            0);

  const auto result = run("score --models " + models + " --capture " + pcap +
                          " --metrics " + metrics);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  ASSERT_TRUE(std::filesystem::exists(metrics));
  // End-of-run summary table on stderr.
  EXPECT_NE(result.output.find("stage"), std::string::npos) << result.output;

  const std::string json = read_file(metrics);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("ingest.records"), std::string::npos);
  EXPECT_NE(json.find("cli.score"), std::string::npos);
  EXPECT_NE(json.find("deviation.windows"), std::string::npos);
}

TEST_F(CliTest, MetricsFlagWritesPrometheusText) {
  const std::string pcap = *dir_ + "/metrics2.pcap";
  const std::string prom = *dir_ + "/metrics.prom";
  ASSERT_EQ(run("simulate --dataset idle --days 0.05 --seed 8 --out " + pcap)
                .exit_code,
            0);
  const auto result =
      run("simulate --dataset idle --days 0.05 --seed 8 --out " + pcap +
          " --metrics " + prom);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  ASSERT_TRUE(std::filesystem::exists(prom));
  const std::string text = read_file(prom);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("behaviot_"), std::string::npos);
  EXPECT_NE(text.find("behaviot_stage_ms"), std::string::npos);
}

TEST_F(CliTest, ShowRejectsUnknownDevice) {
  const std::string pcap = *dir_ + "/idle2.pcap";
  const std::string models = *dir_ + "/models2.txt";
  ASSERT_EQ(run("simulate --dataset idle --days 0.05 --seed 6 --out " + pcap)
                .exit_code,
            0);
  ASSERT_EQ(run("train --idle " + pcap + " --window-days 0.05 --out " +
                models)
                .exit_code,
            0);
  const auto result = run("show --models " + models + " --device nope");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown device"), std::string::npos);
}

TEST_F(CliTest, TrainRejectsMissingCapture) {
  const auto result =
      run("train --idle /nonexistent.pcap --window-days 1 --out /tmp/x.txt");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("error"), std::string::npos);
}

TEST_F(CliTest, TraceFlagWritesChromeJsonWithWorkerLanes) {
  const std::string pcap = *dir_ + "/trace.pcap";
  const std::string models = *dir_ + "/trace_models.txt";
  const std::string trace = *dir_ + "/trace.json";
  ASSERT_EQ(run("simulate --dataset idle --days 0.1 --seed 5 --out " + pcap)
                .exit_code,
            0);

  // Train with a 4-thread pool so parallel stages fan out to worker lanes.
  const auto result = run("train --idle " + pcap + " --window-days 0.1 --out " +
                              models + " --trace " + trace,
                          "BEHAVIOT_THREADS=4");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("wrote trace to"), std::string::npos)
      << result.output;
  ASSERT_TRUE(std::filesystem::exists(trace));

  // The file must be one valid JSON document with the Chrome trace-event
  // shape: a traceEvents array of ph/name/pid/tid records.
  const auto doc = behaviot::obs::json::parse(read_file(trace));
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  std::map<double, std::string> thread_names;
  std::set<double> chunk_lanes;
  std::map<double, int> depth;
  bool worker_named = false;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").as_string();
    const std::string& name = e.at("name").as_string();
    const double tid = e.at("tid").as_number();
    (void)e.at("pid").as_number();
    if (ph == "M" && name == "thread_name") {
      const std::string& label = e.at("args").at("name").as_string();
      thread_names[tid] = label;
      worker_named |= label.rfind("pool-worker-", 0) == 0;
    }
    if (ph == "B") {
      ++depth[tid];
      const std::string suffix = "/task";
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        chunk_lanes.insert(tid);
      }
    }
    if (ph == "E") {
      --depth[tid];
      ASSERT_GE(depth[tid], 0) << "unbalanced span end on tid " << tid;
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
  }
  EXPECT_TRUE(worker_named);
  // A parallel stage rendered chunks on at least two lanes.
  EXPECT_GE(chunk_lanes.size(), 2u);
  // Every lane carrying chunk spans has a thread_name metadata record.
  for (const double tid : chunk_lanes) {
    EXPECT_EQ(thread_names.count(tid), 1u) << "unnamed lane " << tid;
  }
}

TEST_F(CliTest, ScoreWritesAlertReportAndExplainRendersIt) {
  const std::string idle = *dir_ + "/explain_idle.pcap";
  const std::string models = *dir_ + "/explain_models.txt";
  const std::string outage = *dir_ + "/explain_day30.pcap";
  const std::string report = *dir_ + "/alerts.json";
  ASSERT_EQ(run("simulate --dataset idle --days 0.1 --seed 5 --out " + idle)
                .exit_code,
            0);
  ASSERT_EQ(run("train --idle " + idle + " --window-days 0.1 --out " + models)
                .exit_code,
            0);
  // Day 30 of the uncontrolled dataset carries a scheduled network outage
  // (incidents.cpp), so scoring it against idle models must raise periodic
  // deviations deterministically.
  ASSERT_EQ(run("simulate --dataset uncontrolled-day:30 --seed 5 --out " +
                outage)
                .exit_code,
            0);

  auto result = run("score --models " + models + " --capture " + outage +
                    " --alerts " + report);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("with provenance"), std::string::npos)
      << result.output;
  ASSERT_TRUE(std::filesystem::exists(report));

  // The report is valid JSON carrying a populated explanation per alert.
  const auto doc = behaviot::obs::json::parse(read_file(report));
  EXPECT_EQ(doc.at("version").as_number(), 1.0);
  const auto& alerts = doc.at("alerts").as_array();
  ASSERT_FALSE(alerts.empty());
  for (const auto& a : alerts) {
    const auto& ex = a.at("explanation");
    EXPECT_FALSE(ex.at("metric").as_string().empty());
    EXPECT_FALSE(ex.at("model_group").as_string().empty());
    EXPECT_GT(ex.at("threshold").as_number(), 0.0);
    (void)ex.at("observed").as_number();
    (void)ex.at("expected").as_number();
    (void)ex.at("support").as_number();
  }

  // explain renders every alert's provenance block.
  result = run("explain --alerts " + report);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("crossed threshold"), std::string::npos);
  EXPECT_NE(result.output.find("model group:"), std::string::npos);
  EXPECT_NE(result.output.find("alert(s) explained"), std::string::npos);

  // Source filtering narrows the rendering without failing.
  result = run("explain --alerts " + report + " --source periodic");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("[periodic]"), std::string::npos);

  // A malformed report is rejected loudly.
  const std::string bad = *dir_ + "/bad_report.json";
  {
    std::FILE* f = std::fopen(bad.c_str(), "w");
    std::fputs("{\"version\": 99}", f);
    std::fclose(f);
  }
  result = run("explain --alerts " + bad);
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("error"), std::string::npos);
}

TEST_F(CliTest, MalformedNumericFlagsExitTwoWithUsageError) {
  // Every numeric flag is parsed by the checked helpers: a malformed value
  // must produce exit code 2 and a one-line "usage error:" diagnostic, not
  // a stoul/stod exception or a silently truncated number.
  const struct {
    const char* args;
    const char* needle;
  } cases[] = {
      {"score --models m --capture c --window-s abc",
       "a positive finite number"},
      {"score --models m --capture c --window-s 0", "a positive finite"},
      {"score --models m --capture c --window-s -3", "a positive finite"},
      {"score --models m --capture c --window-s inf", "a positive finite"},
      {"simulate --dataset idle --days nope --out /tmp/x", "--days"},
      {"simulate --dataset idle --days 1e, --out /tmp/x", "--days"},
      {"simulate --dataset idle --days 0.1 --seed -1 --out /tmp/x",
       "--seed"},
      {"simulate --dataset idle --days 0.1 --seed 12x --out /tmp/x",
       "--seed"},
      {"train --idle c --window-days -0.5 --out m", "--window-days"},
      {"watch --models m --capture c --max-windows -1", "--max-windows"},
      {"watch --models m --capture c --poll-ms 10.5", "--poll-ms"},
      {"watch --models m --capture c --retrain-every 1e3",
       "--retrain-every"},
  };
  for (const auto& c : cases) {
    const auto result = run(c.args);
    EXPECT_EQ(result.exit_code, 2) << c.args << "\n" << result.output;
    EXPECT_NE(result.output.find("usage error:"), std::string::npos)
        << c.args << "\n" << result.output;
    EXPECT_NE(result.output.find(c.needle), std::string::npos)
        << c.args << "\n" << result.output;
    // One line, not a usage dump: the diagnostic names the flag directly.
    EXPECT_LT(result.output.size(), 200u) << c.args << "\n" << result.output;
  }
}

TEST_F(CliTest, ConvertModelsRoundTripsThroughBinary) {
  const std::string pcap = *dir_ + "/convert.pcap";
  const std::string models = *dir_ + "/convert_models.txt";
  const std::string binary = *dir_ + "/convert_models.bbm";
  const std::string back = *dir_ + "/convert_back.txt";
  ASSERT_EQ(run("simulate --dataset idle --days 0.1 --seed 5 --out " + pcap)
                .exit_code,
            0);
  ASSERT_EQ(run("train --idle " + pcap + " --window-days 0.1 --out " + models)
                .exit_code,
            0);

  auto result = run("convert-models --in " + models + " --out " + binary);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("converted"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(binary));
  // Binary magic at offset 0.
  EXPECT_EQ(read_file(binary).substr(0, 4), "BBM1");

  result = run("convert-models --in " + binary + " --out " + back);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  // Text -> binary -> text is byte-identical: nothing lost, no FP drift.
  EXPECT_EQ(read_file(back), read_file(models));

  // The binary file is a drop-in for every consumer of --models.
  result = run("score --models " + binary + " --capture " + pcap);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("deviation alerts"), std::string::npos);

  // Corrupt binary models: a strict load rejects the file and reports the
  // damaged byte (the default lenient load instead drops/tolerates what the
  // flip damaged — that path is covered in test_serialize_binary).
  std::string corrupt = read_file(binary);
  corrupt[corrupt.size() / 2] ^= 1;
  const std::string bad = *dir_ + "/corrupt.bbm";
  {
    std::FILE* f = std::fopen(bad.c_str(), "wb");
    std::fwrite(corrupt.data(), 1, corrupt.size(), f);
    std::fclose(f);
  }
  result = run("score --models " + bad + " --capture " + pcap +
               " --parse strict");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("at byte"), std::string::npos)
      << result.output;
}

TEST_F(CliTest, ScoreRejectsCorruptModels) {
  const std::string bad = *dir_ + "/bad_models.txt";
  {
    std::FILE* f = std::fopen(bad.c_str(), "w");
    std::fputs("not a model file\n", f);
    std::fclose(f);
  }
  const auto result = run("score --models " + bad + " --capture /dev/null");
  EXPECT_NE(result.exit_code, 0);
}

}  // namespace
