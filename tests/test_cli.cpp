// End-to-end smoke tests of the `behaviot` CLI: simulate → train → show →
// score → mud, exercising the pcap and serialization formats through the
// shipped binary.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <filesystem>
#include <string>

namespace {

std::string cli_path() {
  // tests run from build/tests (ctest) or anywhere (manual); resolve the
  // binary relative to this test's own location.
  const auto self = std::filesystem::read_symlink("/proc/self/exe");
  return (self.parent_path().parent_path() / "tools" / "behaviot").string();
}

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

CommandResult run(const std::string& args) {
  CommandResult result;
  const std::string cmd = cli_path() + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  result.exit_code = pclose(pipe);
  return result;
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/behaviot_cli");
    std::filesystem::create_directories(*dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
  }
  static std::string* dir_;
};

std::string* CliTest::dir_ = nullptr;

TEST_F(CliTest, NoArgumentsPrintsUsage) {
  const auto result = run("");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandPrintsUsage) {
  const auto result = run("frobnicate");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, FullWorkflow) {
  const std::string pcap = *dir_ + "/idle.pcap";
  const std::string models = *dir_ + "/models.txt";

  // simulate
  auto result = run("simulate --dataset idle --days 0.1 --seed 5 --out " +
                    pcap);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("wrote"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(pcap));

  // train
  result = run("train --idle " + pcap + " --window-days 0.1 --out " + models);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("periodic models"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(models));

  // show
  result = run("show --models " + models + " --device tplink_plug");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("tplink_plug"), std::string::npos);
  EXPECT_NE(result.output.find("tplinkcloud"), std::string::npos);

  // score the same capture against its own models: quiet.
  result = run("score --models " + models + " --capture " + pcap);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("deviation alerts"), std::string::npos);

  // mud
  result = run("mud --models " + models + " --device tplink_plug");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("ietf-mud:mud"), std::string::npos);

  // check: MUD compliance of the capture against the inferred profile.
  result = run("check --models " + models + " --capture " + pcap +
               " --device tplink_plug");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("flows checked"), std::string::npos);
}

TEST_F(CliTest, MetricsFlagWritesJsonAndSummary) {
  const std::string pcap = *dir_ + "/metrics.pcap";
  const std::string models = *dir_ + "/metrics_models.txt";
  const std::string metrics = *dir_ + "/metrics.json";
  ASSERT_EQ(run("simulate --dataset idle --days 0.1 --seed 7 --out " + pcap)
                .exit_code,
            0);
  ASSERT_EQ(run("train --idle " + pcap + " --window-days 0.1 --out " + models)
                .exit_code,
            0);

  const auto result = run("score --models " + models + " --capture " + pcap +
                          " --metrics " + metrics);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  ASSERT_TRUE(std::filesystem::exists(metrics));
  // End-of-run summary table on stderr.
  EXPECT_NE(result.output.find("stage"), std::string::npos) << result.output;

  std::string json;
  {
    std::FILE* f = std::fopen(metrics.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::array<char, 512> buf{};
    std::size_t n = 0;
    while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
      json.append(buf.data(), n);
    }
    std::fclose(f);
  }
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("ingest.records"), std::string::npos);
  EXPECT_NE(json.find("cli.score"), std::string::npos);
  EXPECT_NE(json.find("deviation.windows"), std::string::npos);
}

TEST_F(CliTest, MetricsFlagWritesPrometheusText) {
  const std::string pcap = *dir_ + "/metrics2.pcap";
  const std::string prom = *dir_ + "/metrics.prom";
  ASSERT_EQ(run("simulate --dataset idle --days 0.05 --seed 8 --out " + pcap)
                .exit_code,
            0);
  const auto result =
      run("simulate --dataset idle --days 0.05 --seed 8 --out " + pcap +
          " --metrics " + prom);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  ASSERT_TRUE(std::filesystem::exists(prom));
  std::string text;
  {
    std::FILE* f = std::fopen(prom.c_str(), "r");
    ASSERT_NE(f, nullptr);
    std::array<char, 512> buf{};
    std::size_t n = 0;
    while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
      text.append(buf.data(), n);
    }
    std::fclose(f);
  }
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("behaviot_"), std::string::npos);
  EXPECT_NE(text.find("behaviot_stage_ms"), std::string::npos);
}

TEST_F(CliTest, ShowRejectsUnknownDevice) {
  const std::string pcap = *dir_ + "/idle2.pcap";
  const std::string models = *dir_ + "/models2.txt";
  ASSERT_EQ(run("simulate --dataset idle --days 0.05 --seed 6 --out " + pcap)
                .exit_code,
            0);
  ASSERT_EQ(run("train --idle " + pcap + " --window-days 0.05 --out " +
                models)
                .exit_code,
            0);
  const auto result = run("show --models " + models + " --device nope");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown device"), std::string::npos);
}

TEST_F(CliTest, TrainRejectsMissingCapture) {
  const auto result =
      run("train --idle /nonexistent.pcap --window-days 1 --out /tmp/x.txt");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("error"), std::string::npos);
}

TEST_F(CliTest, ScoreRejectsCorruptModels) {
  const std::string bad = *dir_ + "/bad_models.txt";
  {
    std::FILE* f = std::fopen(bad.c_str(), "w");
    std::fputs("not a model file\n", f);
    std::fclose(f);
  }
  const auto result = run("score --models " + bad + " --capture /dev/null");
  EXPECT_NE(result.exit_code, 0);
}

}  // namespace
