// End-to-end smoke tests of the `behaviot` CLI: simulate → train → show →
// score → mud → explain, exercising the pcap, serialization, alert-report,
// and trace formats through the shipped binary.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "behaviot/core/binary_io.hpp"
#include "behaviot/core/checkpoint.hpp"
#include "behaviot/obs/json.hpp"

namespace {

std::string cli_path() {
  // tests run from build/tests (ctest) or anywhere (manual); resolve the
  // binary relative to this test's own location.
  const auto self = std::filesystem::read_symlink("/proc/self/exe");
  return (self.parent_path().parent_path() / "tools" / "behaviot").string();
}

struct CommandResult {
  int exit_code = -1;
  std::string output;
};

/// `env` is prepended to the shell command ("NAME=value", may be empty).
CommandResult run(const std::string& args, const std::string& env = "") {
  CommandResult result;
  const std::string cmd =
      (env.empty() ? "" : env + " ") + cli_path() + " " + args + " 2>&1";
  FILE* pipe = popen(cmd.c_str(), "r");
  if (pipe == nullptr) return result;
  std::array<char, 512> buf{};
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    result.output += buf.data();
  }
  const int status = pclose(pipe);
  // Decode the wait(2) status: the exit-code contract (2 for usage errors)
  // is on the process exit code, not the packed status word.
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string read_file(const std::string& path) {
  std::string text;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return text;
  std::array<char, 512> buf{};
  std::size_t n = 0;
  while ((n = std::fread(buf.data(), 1, buf.size(), f)) > 0) {
    text.append(buf.data(), n);
  }
  std::fclose(f);
  return text;
}

class CliTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/behaviot_cli");
    std::filesystem::create_directories(*dir_);
  }
  static void TearDownTestSuite() {
    std::filesystem::remove_all(*dir_);
    delete dir_;
  }
  static std::string* dir_;
};

std::string* CliTest::dir_ = nullptr;

TEST_F(CliTest, NoArgumentsPrintsUsage) {
  const auto result = run("");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, UnknownCommandPrintsUsage) {
  const auto result = run("frobnicate");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("usage:"), std::string::npos);
}

TEST_F(CliTest, FullWorkflow) {
  const std::string pcap = *dir_ + "/idle.pcap";
  const std::string models = *dir_ + "/models.txt";

  // simulate
  auto result = run("simulate --dataset idle --days 0.1 --seed 5 --out " +
                    pcap);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("wrote"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(pcap));

  // train
  result = run("train --idle " + pcap + " --window-days 0.1 --out " + models);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("periodic models"), std::string::npos);
  EXPECT_TRUE(std::filesystem::exists(models));

  // show
  result = run("show --models " + models + " --device tplink_plug");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("tplink_plug"), std::string::npos);
  EXPECT_NE(result.output.find("tplinkcloud"), std::string::npos);

  // score the same capture against its own models: quiet.
  result = run("score --models " + models + " --capture " + pcap);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("deviation alerts"), std::string::npos);

  // mud
  result = run("mud --models " + models + " --device tplink_plug");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("ietf-mud:mud"), std::string::npos);

  // check: MUD compliance of the capture against the inferred profile.
  result = run("check --models " + models + " --capture " + pcap +
               " --device tplink_plug");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("flows checked"), std::string::npos);
}

TEST_F(CliTest, MetricsFlagWritesJsonAndSummary) {
  const std::string pcap = *dir_ + "/metrics.pcap";
  const std::string models = *dir_ + "/metrics_models.txt";
  const std::string metrics = *dir_ + "/metrics.json";
  ASSERT_EQ(run("simulate --dataset idle --days 0.1 --seed 7 --out " + pcap)
                .exit_code,
            0);
  ASSERT_EQ(run("train --idle " + pcap + " --window-days 0.1 --out " + models)
                .exit_code,
            0);

  const auto result = run("score --models " + models + " --capture " + pcap +
                          " --metrics " + metrics);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  ASSERT_TRUE(std::filesystem::exists(metrics));
  // End-of-run summary table on stderr.
  EXPECT_NE(result.output.find("stage"), std::string::npos) << result.output;

  const std::string json = read_file(metrics);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("ingest.records"), std::string::npos);
  EXPECT_NE(json.find("cli.score"), std::string::npos);
  EXPECT_NE(json.find("deviation.windows"), std::string::npos);
}

TEST_F(CliTest, MetricsFlagWritesPrometheusText) {
  const std::string pcap = *dir_ + "/metrics2.pcap";
  const std::string prom = *dir_ + "/metrics.prom";
  ASSERT_EQ(run("simulate --dataset idle --days 0.05 --seed 8 --out " + pcap)
                .exit_code,
            0);
  const auto result =
      run("simulate --dataset idle --days 0.05 --seed 8 --out " + pcap +
          " --metrics " + prom);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  ASSERT_TRUE(std::filesystem::exists(prom));
  const std::string text = read_file(prom);
  EXPECT_NE(text.find("# TYPE"), std::string::npos);
  EXPECT_NE(text.find("behaviot_"), std::string::npos);
  EXPECT_NE(text.find("behaviot_stage_ms"), std::string::npos);
}

TEST_F(CliTest, ShowRejectsUnknownDevice) {
  const std::string pcap = *dir_ + "/idle2.pcap";
  const std::string models = *dir_ + "/models2.txt";
  ASSERT_EQ(run("simulate --dataset idle --days 0.05 --seed 6 --out " + pcap)
                .exit_code,
            0);
  ASSERT_EQ(run("train --idle " + pcap + " --window-days 0.05 --out " +
                models)
                .exit_code,
            0);
  const auto result = run("show --models " + models + " --device nope");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("unknown device"), std::string::npos);
}

TEST_F(CliTest, TrainRejectsMissingCapture) {
  const auto result =
      run("train --idle /nonexistent.pcap --window-days 1 --out /tmp/x.txt");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("error"), std::string::npos);
}

TEST_F(CliTest, TraceFlagWritesChromeJsonWithWorkerLanes) {
  const std::string pcap = *dir_ + "/trace.pcap";
  const std::string models = *dir_ + "/trace_models.txt";
  const std::string trace = *dir_ + "/trace.json";
  ASSERT_EQ(run("simulate --dataset idle --days 0.1 --seed 5 --out " + pcap)
                .exit_code,
            0);

  // Train with a 4-thread pool so parallel stages fan out to worker lanes.
  const auto result = run("train --idle " + pcap + " --window-days 0.1 --out " +
                              models + " --trace " + trace,
                          "BEHAVIOT_THREADS=4");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("wrote trace to"), std::string::npos)
      << result.output;
  ASSERT_TRUE(std::filesystem::exists(trace));

  // The file must be one valid JSON document with the Chrome trace-event
  // shape: a traceEvents array of ph/name/pid/tid records.
  const auto doc = behaviot::obs::json::parse(read_file(trace));
  const auto& events = doc.at("traceEvents").as_array();
  ASSERT_FALSE(events.empty());

  std::map<double, std::string> thread_names;
  std::set<double> chunk_lanes;
  std::map<double, int> depth;
  bool worker_named = false;
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").as_string();
    const std::string& name = e.at("name").as_string();
    const double tid = e.at("tid").as_number();
    (void)e.at("pid").as_number();
    if (ph == "M" && name == "thread_name") {
      const std::string& label = e.at("args").at("name").as_string();
      thread_names[tid] = label;
      worker_named |= label.rfind("pool-worker-", 0) == 0;
    }
    if (ph == "B") {
      ++depth[tid];
      const std::string suffix = "/task";
      if (name.size() > suffix.size() &&
          name.compare(name.size() - suffix.size(), suffix.size(), suffix) ==
              0) {
        chunk_lanes.insert(tid);
      }
    }
    if (ph == "E") {
      --depth[tid];
      ASSERT_GE(depth[tid], 0) << "unbalanced span end on tid " << tid;
    }
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
  }
  EXPECT_TRUE(worker_named);
  // A parallel stage rendered chunks on at least two lanes.
  EXPECT_GE(chunk_lanes.size(), 2u);
  // Every lane carrying chunk spans has a thread_name metadata record.
  for (const double tid : chunk_lanes) {
    EXPECT_EQ(thread_names.count(tid), 1u) << "unnamed lane " << tid;
  }
}

TEST_F(CliTest, ScoreWritesAlertReportAndExplainRendersIt) {
  const std::string idle = *dir_ + "/explain_idle.pcap";
  const std::string models = *dir_ + "/explain_models.txt";
  const std::string outage = *dir_ + "/explain_day30.pcap";
  const std::string report = *dir_ + "/alerts.json";
  ASSERT_EQ(run("simulate --dataset idle --days 0.1 --seed 5 --out " + idle)
                .exit_code,
            0);
  ASSERT_EQ(run("train --idle " + idle + " --window-days 0.1 --out " + models)
                .exit_code,
            0);
  // Day 30 of the uncontrolled dataset carries a scheduled network outage
  // (incidents.cpp), so scoring it against idle models must raise periodic
  // deviations deterministically.
  ASSERT_EQ(run("simulate --dataset uncontrolled-day:30 --seed 5 --out " +
                outage)
                .exit_code,
            0);

  auto result = run("score --models " + models + " --capture " + outage +
                    " --alerts " + report);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("with provenance"), std::string::npos)
      << result.output;
  ASSERT_TRUE(std::filesystem::exists(report));

  // The report is valid JSON carrying a populated explanation per alert.
  const auto doc = behaviot::obs::json::parse(read_file(report));
  EXPECT_EQ(doc.at("version").as_number(), 1.0);
  const auto& alerts = doc.at("alerts").as_array();
  ASSERT_FALSE(alerts.empty());
  for (const auto& a : alerts) {
    const auto& ex = a.at("explanation");
    EXPECT_FALSE(ex.at("metric").as_string().empty());
    EXPECT_FALSE(ex.at("model_group").as_string().empty());
    EXPECT_GT(ex.at("threshold").as_number(), 0.0);
    (void)ex.at("observed").as_number();
    (void)ex.at("expected").as_number();
    (void)ex.at("support").as_number();
  }

  // explain renders every alert's provenance block.
  result = run("explain --alerts " + report);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("crossed threshold"), std::string::npos);
  EXPECT_NE(result.output.find("model group:"), std::string::npos);
  EXPECT_NE(result.output.find("alert(s) explained"), std::string::npos);

  // Source filtering narrows the rendering without failing.
  result = run("explain --alerts " + report + " --source periodic");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("[periodic]"), std::string::npos);

  // A malformed report is rejected loudly.
  const std::string bad = *dir_ + "/bad_report.json";
  {
    std::FILE* f = std::fopen(bad.c_str(), "w");
    std::fputs("{\"version\": 99}", f);
    std::fclose(f);
  }
  result = run("explain --alerts " + bad);
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("error"), std::string::npos);
}

TEST_F(CliTest, MalformedNumericFlagsExitTwoWithUsageError) {
  // Every numeric flag is parsed by the checked helpers: a malformed value
  // must produce exit code 2 and a one-line "usage error:" diagnostic, not
  // a stoul/stod exception or a silently truncated number.
  const struct {
    const char* args;
    const char* needle;
  } cases[] = {
      {"score --models m --capture c --window-s abc",
       "a positive finite number"},
      {"score --models m --capture c --window-s 0", "a positive finite"},
      {"score --models m --capture c --window-s -3", "a positive finite"},
      {"score --models m --capture c --window-s inf", "a positive finite"},
      {"simulate --dataset idle --days nope --out /tmp/x", "--days"},
      {"simulate --dataset idle --days 1e, --out /tmp/x", "--days"},
      {"simulate --dataset idle --days 0.1 --seed -1 --out /tmp/x",
       "--seed"},
      {"simulate --dataset idle --days 0.1 --seed 12x --out /tmp/x",
       "--seed"},
      {"train --idle c --window-days -0.5 --out m", "--window-days"},
      {"watch --models m --capture c --max-windows -1", "--max-windows"},
      {"watch --models m --capture c --poll-ms 10.5", "--poll-ms"},
      {"watch --models m --capture c --retrain-every 1e3",
       "--retrain-every"},
      {"watch --models m --capture c --rotate-max-bytes -4",
       "--rotate-max-bytes"},
      {"score --models m --capture c --http nope", "--http"},
      {"score --models m --capture c --http 70000", "TCP port"},
  };
  for (const auto& c : cases) {
    const auto result = run(c.args);
    EXPECT_EQ(result.exit_code, 2) << c.args << "\n" << result.output;
    EXPECT_NE(result.output.find("usage error:"), std::string::npos)
        << c.args << "\n" << result.output;
    EXPECT_NE(result.output.find(c.needle), std::string::npos)
        << c.args << "\n" << result.output;
    // One line, not a usage dump: the diagnostic names the flag directly.
    EXPECT_LT(result.output.size(), 200u) << c.args << "\n" << result.output;
  }
}

TEST_F(CliTest, ConvertModelsRoundTripsThroughBinary) {
  const std::string pcap = *dir_ + "/convert.pcap";
  const std::string models = *dir_ + "/convert_models.txt";
  const std::string binary = *dir_ + "/convert_models.bbm";
  const std::string back = *dir_ + "/convert_back.txt";
  ASSERT_EQ(run("simulate --dataset idle --days 0.1 --seed 5 --out " + pcap)
                .exit_code,
            0);
  ASSERT_EQ(run("train --idle " + pcap + " --window-days 0.1 --out " + models)
                .exit_code,
            0);

  auto result = run("convert-models --in " + models + " --out " + binary);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("converted"), std::string::npos);
  ASSERT_TRUE(std::filesystem::exists(binary));
  // Binary magic at offset 0.
  EXPECT_EQ(read_file(binary).substr(0, 4), "BBM1");

  result = run("convert-models --in " + binary + " --out " + back);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  // Text -> binary -> text is byte-identical: nothing lost, no FP drift.
  EXPECT_EQ(read_file(back), read_file(models));

  // The binary file is a drop-in for every consumer of --models.
  result = run("score --models " + binary + " --capture " + pcap);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("deviation alerts"), std::string::npos);

  // Corrupt binary models: a strict load rejects the file and reports the
  // damaged byte (the default lenient load instead drops/tolerates what the
  // flip damaged — that path is covered in test_serialize_binary).
  std::string corrupt = read_file(binary);
  corrupt[corrupt.size() / 2] ^= 1;
  const std::string bad = *dir_ + "/corrupt.bbm";
  {
    std::FILE* f = std::fopen(bad.c_str(), "wb");
    std::fwrite(corrupt.data(), 1, corrupt.size(), f);
    std::fclose(f);
  }
  result = run("score --models " + bad + " --capture " + pcap +
               " --parse strict");
  EXPECT_NE(result.exit_code, 0);
  EXPECT_NE(result.output.find("at byte"), std::string::npos)
      << result.output;
}

TEST_F(CliTest, ScoreRejectsCorruptModels) {
  const std::string bad = *dir_ + "/bad_models.txt";
  {
    std::FILE* f = std::fopen(bad.c_str(), "w");
    std::fputs("not a model file\n", f);
    std::fclose(f);
  }
  const auto result = run("score --models " + bad + " --capture /dev/null");
  EXPECT_NE(result.exit_code, 0);
}

// ---- Live telemetry: rotation, crash-safety, HTTP endpoint ----

/// Forks and execs the CLI with stdout+stderr redirected to `out_path`.
pid_t spawn_cli(std::vector<std::string> args, const std::string& out_path) {
  const std::string cli = cli_path();
  const pid_t pid = fork();
  if (pid != 0) return pid;
  const int fd = ::open(out_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) {
    ::dup2(fd, 1);
    ::dup2(fd, 2);
    ::close(fd);
  }
  std::vector<char*> argv;
  std::string argv0 = cli;
  argv.push_back(argv0.data());
  for (std::string& a : args) argv.push_back(a.data());
  argv.push_back(nullptr);
  ::execv(cli.c_str(), argv.data());
  _exit(127);
}

/// Trains models and simulates the deterministic-outage day once for the
/// telemetry tests (uncontrolled-day:30 against idle models raises alerts).
void make_watch_inputs(const std::string& dir, std::string* models,
                       std::string* capture) {
  static std::map<std::string, std::pair<std::string, std::string>> cache;
  if (const auto it = cache.find(dir); it != cache.end()) {
    *models = it->second.first;
    *capture = it->second.second;
    return;
  }
  const std::string idle = dir + "/telemetry_idle.pcap";
  *models = dir + "/telemetry_models.txt";
  *capture = dir + "/telemetry_day30.pcap";
  ASSERT_EQ(run("simulate --dataset idle --days 0.1 --seed 5 --out " + idle)
                .exit_code,
            0);
  ASSERT_EQ(
      run("train --idle " + idle + " --window-days 0.1 --out " + *models)
          .exit_code,
      0);
  ASSERT_EQ(run("simulate --dataset uncontrolled-day:30 --seed 5 --out " +
                *capture)
                .exit_code,
            0);
  cache[dir] = {*models, *capture};
}

TEST_F(CliTest, WatchRotatesAlertSnapshotsWithoutLosingAlerts) {
  std::string models, capture;
  make_watch_inputs(*dir_, &models, &capture);

  // Reference: one unrotated report over the whole run.
  const std::string ref = *dir_ + "/rotate_ref.json";
  ASSERT_EQ(run("watch --models " + models + " --capture " + capture +
                " --window-s 600 --alerts " + ref)
                .exit_code,
            0);
  const auto ref_alerts =
      behaviot::obs::json::parse(read_file(ref)).at("alerts").as_array();
  ASSERT_FALSE(ref_alerts.empty());

  // Rotated run: a tight byte cap forces archives; keep is high enough that
  // nothing is pruned, so no alert may be lost.
  const std::string rot = *dir_ + "/rotate_live.json";
  const auto result =
      run("watch --models " + models + " --capture " + capture +
          " --window-s 600 --alerts " + rot +
          " --rotate-max-bytes 600 --rotate-keep 50");
  ASSERT_EQ(result.exit_code, 0) << result.output;

  // Every generation on disk — archives (<path>.<window>) plus the live
  // file — is a complete document, and together they carry exactly the
  // reference alerts in order.
  std::vector<std::pair<unsigned long, std::string>> generations;
  const std::string base = std::filesystem::path(rot).filename().string();
  for (const auto& entry : std::filesystem::directory_iterator(*dir_)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind(base + ".", 0) == 0) {
      generations.emplace_back(std::stoul(name.substr(base.size() + 1)),
                               entry.path().string());
    }
  }
  ASSERT_FALSE(generations.empty()) << "the byte cap never triggered";
  std::sort(generations.begin(), generations.end());
  if (std::filesystem::exists(rot)) {
    generations.emplace_back(~0ul, rot);  // live file holds the newest tail
  }
  std::size_t i = 0;
  for (const auto& [index, path] : generations) {
    const auto doc = behaviot::obs::json::parse(read_file(path));
    for (const auto& alert : doc.at("alerts").as_array()) {
      ASSERT_LT(i, ref_alerts.size()) << "more alerts than the unrotated run";
      EXPECT_EQ(alert.at("when_us").as_number(),
                ref_alerts[i].at("when_us").as_number())
          << path << " alert " << i;
      EXPECT_EQ(alert.at("score").as_number(),
                ref_alerts[i].at("score").as_number())
          << path << " alert " << i;
      ++i;
    }
  }
  EXPECT_EQ(i, ref_alerts.size());
}

TEST_F(CliTest, KillMidRunNeverLeavesTornTelemetryFiles) {
  std::string models, capture;
  make_watch_inputs(*dir_, &models, &capture);
  const std::string alerts = *dir_ + "/kill_alerts.json";
  const std::string metrics = *dir_ + "/kill_metrics.json";

  // Kill the daemon at several points mid-run; whatever the moment, every
  // telemetry file on disk must parse as a complete document (the atomic
  // temp-then-rename write means a reader sees the previous generation or
  // the new one, never a prefix).
  for (const unsigned delay_us : {5000u, 20000u, 60000u, 150000u}) {
    for (const auto& entry : std::filesystem::directory_iterator(*dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("kill_", 0) == 0) std::filesystem::remove(entry.path());
    }
    const pid_t pid = spawn_cli(
        {"watch", "--models", models, "--capture", capture, "--window-s",
         "300", "--alerts", alerts, "--metrics", metrics,
         "--rotate-max-bytes", "2048", "--rotate-keep", "4"},
        "/dev/null");
    ASSERT_GT(pid, 0);
    ::usleep(delay_us);
    ::kill(pid, SIGKILL);
    int status = 0;
    ::waitpid(pid, &status, 0);

    for (const auto& entry : std::filesystem::directory_iterator(*dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("kill_", 0) != 0) continue;
      if (name.find(".tmp.") != std::string::npos) continue;  // orphan temp
      const std::string text = read_file(entry.path().string());
      ASSERT_FALSE(text.empty()) << name;
      EXPECT_NO_THROW((void)behaviot::obs::json::parse(text))
          << name << " torn at delay " << delay_us;
    }
  }
}

/// Minimal HTTP GET against the CLI's telemetry endpoint.
std::pair<int, std::string> http_get(unsigned port, const std::string& target) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return {-1, ""};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return {-1, ""};
  }
  const std::string req =
      "GET " + target + " HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n";
  (void)::send(fd, req.data(), req.size(), 0);
  std::string raw;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto split = raw.find("\r\n\r\n");
  if (split == std::string::npos) return {-1, ""};
  return {std::atoi(raw.c_str() + 9), raw.substr(split + 4)};
}

TEST_F(CliTest, WatchServesHttpTelemetryWhileFollowing) {
  std::string models, capture;
  make_watch_inputs(*dir_, &models, &capture);
  const std::string log = *dir_ + "/http_watch.log";

  // --follow keeps the daemon alive at EOF, holding the endpoints up while
  // we probe them; --http 0 binds an ephemeral port printed to stderr.
  const pid_t pid = spawn_cli(
      {"watch", "--models", models, "--capture", capture, "--window-s",
       "600", "--follow", "1", "--http", "0"},
      log);
  ASSERT_GT(pid, 0);

  unsigned port = 0;
  for (int tries = 0; tries < 100 && port == 0; ++tries) {
    ::usleep(50000);
    const std::string text = read_file(log);
    const auto at = text.find("listening on http://127.0.0.1:");
    if (at != std::string::npos) {
      port = static_cast<unsigned>(
          std::atoi(text.c_str() + at + std::strlen("listening on http://127.0.0.1:")));
    }
  }
  ASSERT_NE(port, 0u) << read_file(log);

  const auto healthz = http_get(port, "/healthz");
  EXPECT_EQ(healthz.first, 200) << healthz.second;
  const auto metrics = http_get(port, "/metrics");
  EXPECT_EQ(metrics.first, 200);
  EXPECT_NE(metrics.second.find("behaviot_process_rss_bytes"),
            std::string::npos);
  const auto statusz = http_get(port, "/statusz");
  EXPECT_EQ(statusz.first, 200);
  EXPECT_NO_THROW((void)behaviot::obs::json::parse(statusz.second));

  ::kill(pid, SIGKILL);
  int status = 0;
  ::waitpid(pid, &status, 0);
}

// ---- Crash safety: checkpoint/resume, graceful shutdown, self-healing ----

/// Polls `log` until `needle` appears (or ~10 s pass); returns success.
bool wait_for_log(const std::string& log, const std::string& needle) {
  for (int tries = 0; tries < 200; ++tries) {
    if (read_file(log).find(needle) != std::string::npos) return true;
    ::usleep(50000);
  }
  return false;
}

TEST_F(CliTest, SigtermFinishesTheWindowAndFlushesEverything) {
  std::string models, capture;
  make_watch_inputs(*dir_, &models, &capture);
  const std::string log = *dir_ + "/term_watch.log";
  const std::string alerts = *dir_ + "/term_alerts.json";
  const std::string ckpt = *dir_ + "/term_state.bbc";

  // --follow parks the daemon at EOF after streaming the capture, so the
  // SIGTERM arrives while it idles — the shutdown path must still flush the
  // alerts snapshot and write a final checkpoint before exiting 0.
  const pid_t pid = spawn_cli(
      {"watch", "--models", models, "--capture", capture, "--window-s", "600",
       "--follow", "1", "--alerts", alerts, "--checkpoint", ckpt},
      log);
  ASSERT_GT(pid, 0);
  // Hold fire until the live snapshot already carries alerts, so the flush
  // path has real content to preserve.
  bool has_alerts = false;
  for (int tries = 0; tries < 400 && !has_alerts; ++tries) {
    const std::string text = read_file(alerts);
    has_alerts = text.find("\"when_us\"") != std::string::npos;
    if (!has_alerts) ::usleep(50000);
  }
  ASSERT_TRUE(has_alerts) << read_file(log);
  ::kill(pid, SIGTERM);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status)) << "daemon did not exit cleanly";
  EXPECT_EQ(WEXITSTATUS(status), 0) << read_file(log);

  const std::string text = read_file(log);
  EXPECT_NE(text.find("shutdown signal received"), std::string::npos) << text;
  EXPECT_NE(text.find("watched"), std::string::npos) << text;

  // The flushed snapshots are complete documents, not prefixes.
  const auto doc = behaviot::obs::json::parse(read_file(alerts));
  EXPECT_FALSE(doc.at("alerts").as_array().empty());
  const std::string bbc = read_file(ckpt);
  ASSERT_FALSE(bbc.empty());
  const behaviot::WatchCheckpoint cp =
      behaviot::load_checkpoint(behaviot::binio::as_bytes(bbc));
  EXPECT_GT(cp.engine.windows, 0u);
  EXPECT_GT(cp.input_offset, 0u);
}

TEST_F(CliTest, FollowModeReopensARotatedInputAndKeepsRunning) {
  std::string models, capture;
  make_watch_inputs(*dir_, &models, &capture);
  const std::string followed = *dir_ + "/rotating_input.pcap";
  const std::string log = *dir_ + "/reopen_watch.log";
  const std::string metrics = *dir_ + "/reopen_metrics.json";
  std::filesystem::copy_file(capture, followed,
                             std::filesystem::copy_options::overwrite_existing);

  const pid_t pid = spawn_cli(
      {"watch", "--models", models, "--capture", followed, "--window-s",
       "600", "--follow", "1", "--metrics", metrics},
      log);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_log(log, "window ")) << read_file(log);

  // Rotate the input under the daemon: a fresh copy moved over the followed
  // path changes the inode, which the poll loop must detect and reopen —
  // logrotate semantics, no signal, no restart.
  const std::string staged = *dir_ + "/rotating_input.staged";
  std::filesystem::copy_file(capture, staged,
                             std::filesystem::copy_options::overwrite_existing);
  std::filesystem::rename(staged, followed);
  ASSERT_TRUE(wait_for_log(log, "reopening from the start"))
      << read_file(log);

  ::kill(pid, SIGTERM);
  int status = 0;
  ::waitpid(pid, &status, 0);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0) << read_file(log);

  // The healing is observable: a reopen counter and a degradation record,
  // not just a log line.
  const auto doc = behaviot::obs::json::parse(read_file(metrics));
  const auto* reopens = doc.at("counters").find("watch.input_reopens");
  ASSERT_NE(reopens, nullptr) << read_file(metrics);
  EXPECT_GE(reopens->as_number(), 1.0);
}

TEST_F(CliTest, SigkillAtACheckpointPlusResumeYieldsByteIdenticalAlerts) {
  std::string models, capture;
  make_watch_inputs(*dir_, &models, &capture);
  const std::string base_alerts = *dir_ + "/crash_base_alerts.json";
  const std::string crash_alerts = *dir_ + "/crash_live_alerts.json";
  const std::string ckpt = *dir_ + "/crash_state.bbc";

  // Uninterrupted baseline (checkpointing on, so the only difference in the
  // crashed run is the kill itself).
  auto result = run("watch --models " + models + " --capture " + capture +
                    " --window-s 600 --retrain-every 8 --alerts " +
                    base_alerts + " --checkpoint " + ckpt + ".base");
  ASSERT_EQ(result.exit_code, 0) << result.output;
  const std::string expected = read_file(base_alerts);
  ASSERT_FALSE(expected.empty());

  // Same run, but chaos SIGKILLs the process the moment the 20th checkpoint
  // hits the disk — a power cut with maximally fresh durable state. The
  // shell reports 128+SIGKILL.
  result = run("watch --models " + models + " --capture " + capture +
               " --window-s 600 --retrain-every 8 --alerts " + crash_alerts +
               " --checkpoint " + ckpt +
               " --chaos crash=checkpoint.after_write,crashn=20");
  EXPECT_EQ(result.exit_code, 137) << result.output;
  ASSERT_TRUE(std::filesystem::exists(ckpt));

  // A fresh process resumes from the wreckage and must converge on the
  // exact baseline alert stream — same bytes, not just same counts.
  result = run("watch --resume " + ckpt + " --capture " + capture +
               " --alerts " + crash_alerts);
  ASSERT_EQ(result.exit_code, 0) << result.output;
  EXPECT_NE(result.output.find("resume: restored"), std::string::npos)
      << result.output;
  EXPECT_EQ(read_file(crash_alerts), expected);
}

TEST_F(CliTest, RetrainTimeoutKeepsThePriorGenerationScoring) {
  std::string models, capture;
  make_watch_inputs(*dir_, &models, &capture);
  const std::string ref_alerts = *dir_ + "/watchdog_ref_alerts.json";
  const std::string wd_alerts = *dir_ + "/watchdog_alerts.json";
  const std::string wd_metrics = *dir_ + "/watchdog_metrics.json";

  // Reference: no retraining at all.
  auto result = run("watch --models " + models + " --capture " + capture +
                    " --window-s 600 --alerts " + ref_alerts);
  ASSERT_EQ(result.exit_code, 0) << result.output;

  // A watchdog timeout no retrain can reliably meet: attempts still running
  // at the join point are abandoned (one that happened to finish in time may
  // still swap — the watchdog bounds waiting, it does not reject completed
  // work), the prior generation keeps scoring, and the daemon neither
  // crashes nor hangs.
  result = run("watch --models " + models + " --capture " + capture +
               " --window-s 600 --retrain-every 4 --retrain-timeout-s 1e-6" +
               " --alerts " + wd_alerts + " --metrics " + wd_metrics);
  ASSERT_EQ(result.exit_code, 0) << result.output;

  const auto doc = behaviot::obs::json::parse(read_file(wd_metrics));
  const auto* failures = doc.at("counters").find("watch.retrain_failures_total");
  ASSERT_NE(failures, nullptr) << read_file(wd_metrics);
  EXPECT_GE(failures->as_number(), 1.0);
  // The degradation carries a stable reason code, not just a count.
  EXPECT_NE(read_file(wd_metrics).find("retrain-timeout"), std::string::npos);

  if (result.output.find("0 model swap(s)") != std::string::npos) {
    // Every retrain was abandoned: the alert stream must be byte-for-byte
    // the no-retrain stream. (The health header differs by design — the
    // watchdog run reports its degradation — so compare from the alerts
    // array on.)
    const std::string wd_text = read_file(wd_alerts);
    const std::string ref_text = read_file(ref_alerts);
    const auto wd_at = wd_text.find("\"alerts\"");
    const auto ref_at = ref_text.find("\"alerts\"");
    ASSERT_NE(wd_at, std::string::npos);
    ASSERT_NE(ref_at, std::string::npos);
    EXPECT_EQ(wd_text.substr(wd_at), ref_text.substr(ref_at));
  } else {
    // A retrain beat the clock; the stream is still a complete report.
    EXPECT_FALSE(behaviot::obs::json::parse(read_file(wd_alerts))
                     .at("alerts")
                     .as_array()
                     .empty());
  }
}

}  // namespace
