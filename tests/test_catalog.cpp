#include "behaviot/testbed/catalog.hpp"

#include <gtest/gtest.h>

#include <set>

namespace behaviot::testbed {
namespace {

const Catalog& catalog() { return Catalog::standard(); }

TEST(Catalog, FortyNineDevices) { EXPECT_EQ(catalog().size(), 49u); }

TEST(Catalog, CategoryCountsMatchTable1) {
  EXPECT_EQ(catalog().in_category(DeviceCategory::kCamera).size(), 11u);
  EXPECT_EQ(catalog().in_category(DeviceCategory::kSmartSpeaker).size(), 11u);
  EXPECT_EQ(catalog().in_category(DeviceCategory::kHomeAutomation).size(),
            16u);
  EXPECT_EQ(catalog().in_category(DeviceCategory::kAppliance).size(), 5u);
  EXPECT_EQ(catalog().in_category(DeviceCategory::kHub).size(), 6u);
}

TEST(Catalog, DatasetMembershipsMatchPaper) {
  EXPECT_EQ(catalog().routine_set().size(), 18u);    // Table 6
  EXPECT_EQ(catalog().uncontrolled_set().size(), 47u);  // §3.3
  EXPECT_NEAR(static_cast<double>(catalog().activity_set().size()), 30.0, 2.0);
}

TEST(Catalog, UniqueNamesIdsAndIps) {
  std::set<std::string> names;
  std::set<DeviceId> ids;
  std::set<std::uint32_t> ips;
  for (const DeviceInfo& d : catalog().devices()) {
    EXPECT_TRUE(names.insert(d.name).second) << d.name;
    EXPECT_TRUE(ids.insert(d.id).second);
    EXPECT_TRUE(ips.insert(d.ip.value()).second);
    EXPECT_TRUE(d.ip.is_private());
  }
}

TEST(Catalog, LookupByNameIdIp) {
  const DeviceInfo* plug = catalog().by_name("tplink_plug");
  ASSERT_NE(plug, nullptr);
  EXPECT_EQ(plug->display, "TPLink Plug");
  EXPECT_EQ(&catalog().by_id(plug->id), plug);
  EXPECT_EQ(catalog().by_ip(plug->ip), plug);
  EXPECT_EQ(catalog().by_name("nonexistent"), nullptr);
  EXPECT_EQ(catalog().by_ip(Ipv4Addr(10, 0, 0, 1)), nullptr);
  EXPECT_THROW((void)catalog().by_id(999), std::out_of_range);
}

TEST(Catalog, PeriodicBehaviorCountsMatchTable4Shape) {
  auto avg = [this_catalog = &catalog()](DeviceCategory c) {
    double sum = 0;
    const auto devices = this_catalog->in_category(c);
    for (const DeviceInfo* d : devices) {
      sum += static_cast<double>(d->periodic_behaviors);
    }
    return sum / static_cast<double>(devices.size());
  };
  EXPECT_NEAR(avg(DeviceCategory::kHomeAutomation), 4.06, 0.5);
  EXPECT_NEAR(avg(DeviceCategory::kCamera), 5.82, 0.5);
  EXPECT_NEAR(avg(DeviceCategory::kSmartSpeaker), 23.36, 1.0);
  EXPECT_NEAR(avg(DeviceCategory::kHub), 6.0, 0.5);
  EXPECT_NEAR(avg(DeviceCategory::kAppliance), 6.4, 1.0);

  // Echo Show 5 tops the table with 31 periodic models.
  std::size_t max_behaviors = 0;
  std::string max_name;
  std::size_t total = 0;
  for (const DeviceInfo& d : catalog().devices()) {
    total += d.periodic_behaviors;
    if (d.periodic_behaviors > max_behaviors) {
      max_behaviors = d.periodic_behaviors;
      max_name = d.name;
    }
  }
  EXPECT_EQ(max_name, "echo_show5");
  EXPECT_EQ(max_behaviors, 31u);
  EXPECT_NEAR(static_cast<double>(total), 454.0, 10.0);  // paper: 454 models
}

TEST(Catalog, RoutineDevicesAreInActivitySet) {
  // User-action models must exist for every routine device.
  for (const DeviceInfo* d : catalog().routine_set()) {
    EXPECT_TRUE(d->in_activity_set) << d->name;
  }
}

TEST(DeviceInfo, AggregatedBinaryCommandsShareLabel) {
  const DeviceInfo* plug = catalog().by_name("tplink_plug");
  ASSERT_NE(plug, nullptr);
  ASSERT_TRUE(plug->binary_commands_aggregated);
  EXPECT_EQ(plug->label_for("on"), "on_off");
  EXPECT_EQ(plug->label_for("off"), "on_off");
}

TEST(DeviceInfo, DistinguishableCommandsKeepTheirLabels) {
  const DeviceInfo* bulb = catalog().by_name("tplink_bulb");
  ASSERT_NE(bulb, nullptr);
  EXPECT_FALSE(bulb->binary_commands_aggregated);
  EXPECT_EQ(bulb->label_for("on"), "on");
  EXPECT_EQ(bulb->label_for("color"), "color");
}

TEST(DeviceInfo, MerossOpenCloseAreDistinct) {
  const DeviceInfo* meross = catalog().by_name("meross_dooropener");
  ASSERT_NE(meross, nullptr);
  EXPECT_EQ(meross->label_for("open"), "open");
  EXPECT_EQ(meross->label_for("close"), "close");
}

TEST(Catalog, AggregationCoversThirteenOfEighteenShape) {
  // §6.1: binary on/off states indistinguishable for 13 of 18 routine
  // devices. Our testbed reproduces the shape: most routine devices with
  // binary commands aggregate.
  std::size_t aggregated = 0;
  for (const DeviceInfo* d : catalog().routine_set()) {
    if (d->binary_commands_aggregated) ++aggregated;
  }
  EXPECT_GE(aggregated, 5u);
  EXPECT_LE(aggregated, 14u);
}

TEST(CategoryNames, Spellings) {
  EXPECT_STREQ(to_string(DeviceCategory::kCamera), "Camera");
  EXPECT_STREQ(to_string(DeviceCategory::kSmartSpeaker), "Smart Speaker");
  EXPECT_STREQ(to_string(DeviceCategory::kHomeAutomation), "Home Auto");
  EXPECT_STREQ(to_string(DeviceCategory::kAppliance), "Appliance");
  EXPECT_STREQ(to_string(DeviceCategory::kHub), "Hub");
}

}  // namespace
}  // namespace behaviot::testbed
