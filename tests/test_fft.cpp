#include "behaviot/periodic/fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>

#include "behaviot/net/rng.hpp"

namespace behaviot {
namespace {

TEST(NextPow2, Values) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
  EXPECT_EQ(next_pow2(1024), 1024u);
  EXPECT_EQ(next_pow2(1025), 2048u);
}

TEST(NextPow2, OverflowBoundary) {
  // The largest representable power of two is its own ceiling; anything
  // above it must throw instead of looping forever on the shifted-out bit.
  constexpr std::size_t kMaxPow2 =
      std::size_t{1} << (std::numeric_limits<std::size_t>::digits - 1);
  EXPECT_EQ(next_pow2(kMaxPow2 - 1), kMaxPow2);
  EXPECT_EQ(next_pow2(kMaxPow2), kMaxPow2);
  EXPECT_THROW(next_pow2(kMaxPow2 + 1), std::overflow_error);
  EXPECT_THROW(next_pow2(std::numeric_limits<std::size_t>::max()),
               std::overflow_error);
}

// Reference O(n^2) DFT for validation.
std::vector<std::complex<double>> naive_dft(
    const std::vector<std::complex<double>>& x) {
  const std::size_t n = x.size();
  std::vector<std::complex<double>> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    std::complex<double> acc{0, 0};
    for (std::size_t t = 0; t < n; ++t) {
      const double angle = -2.0 * M_PI * static_cast<double>(k * t) /
                           static_cast<double>(n);
      acc += x[t] * std::complex<double>(std::cos(angle), std::sin(angle));
    }
    out[k] = acc;
  }
  return out;
}

TEST(Fft, MatchesNaiveDftOnRandomInput) {
  Rng rng(1);
  std::vector<std::complex<double>> x(64);
  for (auto& v : x) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};
  auto fast = x;
  fft(fast);
  const auto slow = naive_dft(x);
  for (std::size_t k = 0; k < x.size(); ++k) {
    EXPECT_NEAR(fast[k].real(), slow[k].real(), 1e-9) << k;
    EXPECT_NEAR(fast[k].imag(), slow[k].imag(), 1e-9) << k;
  }
}

TEST(Fft, InverseRoundTrip) {
  Rng rng(2);
  std::vector<std::complex<double>> x(256);
  for (auto& v : x) v = {rng.uniform(-5, 5), 0.0};
  auto buf = x;
  fft(buf);
  fft(buf, /*inverse=*/true);
  for (std::size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR(buf[i].real() / 256.0, x[i].real(), 1e-9);
  }
}

TEST(Fft, SingleElementIsIdentity) {
  std::vector<std::complex<double>> x{{3.0, 4.0}};
  fft(x);
  EXPECT_DOUBLE_EQ(x[0].real(), 3.0);
  EXPECT_DOUBLE_EQ(x[0].imag(), 4.0);
}

TEST(PowerSpectrum, PeakAtSignalFrequency) {
  // 512 samples of a sine with 16 cycles → peak at bin 16.
  std::vector<double> series(512);
  for (std::size_t i = 0; i < series.size(); ++i) {
    series[i] = std::sin(2.0 * M_PI * 16.0 * static_cast<double>(i) / 512.0);
  }
  const auto power = power_spectrum(series);
  std::size_t argmax = 1;
  for (std::size_t k = 1; k < power.size(); ++k) {
    if (power[k] > power[argmax]) argmax = k;
  }
  EXPECT_EQ(argmax, 16u);
}

TEST(PowerSpectrum, MeanCenteringRemovesDc) {
  const std::vector<double> series(128, 42.0);
  const auto power = power_spectrum(series);
  EXPECT_NEAR(power[0], 0.0, 1e-9);
}

TEST(PowerSpectrum, EmptyInput) {
  EXPECT_TRUE(power_spectrum(std::vector<double>{}).empty());
}

TEST(Autocorrelation, LagZeroIsOne) {
  Rng rng(3);
  std::vector<double> series(300);
  for (auto& v : series) v = rng.uniform(0, 1);
  const auto acf = autocorrelation_fft(series, 50);
  ASSERT_EQ(acf.size(), 51u);
  EXPECT_NEAR(acf[0], 1.0, 1e-9);
}

TEST(Autocorrelation, PeriodicSignalPeaksAtPeriod) {
  std::vector<double> series(1024, 0.0);
  for (std::size_t i = 0; i < series.size(); i += 32) series[i] = 1.0;
  const auto acf = autocorrelation_fft(series, 64);
  EXPECT_GT(acf[32], 0.8);
  EXPECT_LT(std::abs(acf[16]), 0.2);
  EXPECT_GT(acf[64], 0.6);
}

TEST(Autocorrelation, ConstantSeriesReturnsZeros) {
  const std::vector<double> series(128, 7.0);
  const auto acf = autocorrelation_fft(series, 10);
  for (double v : acf) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Autocorrelation, WhiteNoiseDecorrelates) {
  Rng rng(4);
  std::vector<double> series(4096);
  for (auto& v : series) v = rng.normal();
  const auto acf = autocorrelation_fft(series, 100);
  for (std::size_t lag = 1; lag <= 100; ++lag) {
    EXPECT_LT(std::abs(acf[lag]), 0.1) << lag;
  }
}

TEST(Autocorrelation, MaxLagClampedToSeries) {
  const std::vector<double> series{1.0, 0.0, 1.0, 0.0};
  const auto acf = autocorrelation_fft(series, 100);
  EXPECT_EQ(acf.size(), 4u);  // clamped to n-1 lags + lag 0
}

}  // namespace
}  // namespace behaviot
