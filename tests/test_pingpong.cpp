#include "behaviot/baseline/pingpong.hpp"

#include <gtest/gtest.h>

#include "behaviot/flow/assembler.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

FlowRecord make_flow(DeviceId device, std::vector<std::uint32_t> sizes,
                     Transport proto = Transport::kTcp,
                     const std::string& label = "dev:on") {
  FlowRecord f;
  f.device = device;
  f.tuple = {{Ipv4Addr(192, 168, 1, 10), 40000},
             {Ipv4Addr(54, 1, 1, 1), 443},
             proto};
  f.truth = EventKind::kUser;
  f.truth_label = label;
  Timestamp t(0);
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    f.packets.push_back({t, sizes[i],
                         i % 2 == 0 ? Direction::kOutbound
                                    : Direction::kInbound,
                         false});
    t += milliseconds(50);
  }
  f.start = Timestamp(0);
  f.end = t;
  return f;
}

TEST(PingPong, LearnsAndMatchesStableSignatures) {
  std::vector<FlowRecord> train;
  for (int i = 0; i < 10; ++i) {
    train.push_back(make_flow(1, {200, 120, 340, 90}));
  }
  const auto clf = PingPongClassifier::train(train);
  EXPECT_EQ(clf.num_signatures(), 1u);
  EXPECT_EQ(clf.classify(make_flow(1, {201, 119, 342, 91})).activity,
            "dev:on");
}

TEST(PingPong, RangeSlackBoundsMatching) {
  std::vector<FlowRecord> train;
  for (int i = 0; i < 10; ++i) train.push_back(make_flow(1, {200, 120}));
  const auto clf = PingPongClassifier::train(train, {.signature_packets = 2});
  EXPECT_TRUE(clf.classify(make_flow(1, {205, 125})).matched());
  EXPECT_FALSE(clf.classify(make_flow(1, {260, 125})).matched());
}

TEST(PingPong, UdpFlowsAreNotLearnedNorMatched) {
  // The documented PingPong limitation the paper exploits in Table 3.
  std::vector<FlowRecord> train;
  for (int i = 0; i < 10; ++i) {
    train.push_back(make_flow(1, {200, 120, 340, 90}, Transport::kUdp));
  }
  const auto clf = PingPongClassifier::train(train);
  EXPECT_EQ(clf.num_signatures(), 0u);
  EXPECT_FALSE(
      clf.classify(make_flow(1, {200, 120, 340, 90}, Transport::kUdp))
          .matched());
}

TEST(PingPong, DirectionsMustMatch) {
  std::vector<FlowRecord> train;
  for (int i = 0; i < 10; ++i) train.push_back(make_flow(1, {200, 120, 300, 80}));
  const auto clf = PingPongClassifier::train(train);
  // Same sizes, flipped directions.
  FlowRecord flipped = make_flow(1, {200, 120, 300, 80});
  for (auto& p : flipped.packets) {
    p.dir = p.dir == Direction::kOutbound ? Direction::kInbound
                                          : Direction::kOutbound;
  }
  EXPECT_FALSE(clf.classify(flipped).matched());
}

TEST(PingPong, SignatureFoundAtAnyOffset) {
  std::vector<FlowRecord> train;
  for (int i = 0; i < 10; ++i) train.push_back(make_flow(1, {200, 120, 300, 80}));
  const auto clf = PingPongClassifier::train(train);
  // Prepend unrelated chatter; signature appears later in the flow.
  FlowRecord shifted = make_flow(1, {60, 60, 200, 120, 300, 80});
  EXPECT_TRUE(clf.classify(shifted).matched());
}

TEST(PingPong, UnstableTrainingFlowsAreDropped) {
  // Wildly varying sizes produce an over-wide signature; the self-match
  // validation keeps it, but a flow of different *direction pattern* fails.
  std::vector<FlowRecord> train;
  for (int i = 0; i < 6; ++i) {
    // Alternate direction patterns between samples → majority pattern
    // mismatches half the flows → dropped by min_self_match.
    std::vector<std::uint32_t> sizes{100, 100, 100, 100};
    FlowRecord f = make_flow(1, sizes);
    if (i % 2 == 0) {
      for (auto& p : f.packets) {
        p.dir = p.dir == Direction::kOutbound ? Direction::kInbound
                                              : Direction::kOutbound;
      }
    }
    train.push_back(f);
  }
  const auto clf =
      PingPongClassifier::train(train, {.min_self_match = 0.9});
  EXPECT_EQ(clf.num_signatures(), 0u);
}

TEST(PingPong, ShortFlowsCannotMatchLongSignatures) {
  std::vector<FlowRecord> train;
  for (int i = 0; i < 10; ++i) train.push_back(make_flow(1, {200, 120, 300, 80}));
  const auto clf = PingPongClassifier::train(train);
  EXPECT_FALSE(clf.classify(make_flow(1, {200, 120})).matched());
}

TEST(PingPong, PerDeviceSignatureIsolation) {
  std::vector<FlowRecord> train;
  for (int i = 0; i < 10; ++i) {
    train.push_back(make_flow(1, {200, 120, 300, 80}, Transport::kTcp, "a:on"));
    train.push_back(make_flow(2, {500, 400, 700, 60}, Transport::kTcp, "b:on"));
  }
  const auto clf = PingPongClassifier::train(train);
  EXPECT_EQ(clf.num_signatures(), 2u);
  // Device 2's pattern on device 1 does not match device 1's signature.
  EXPECT_FALSE(clf.classify(make_flow(1, {500, 400, 700, 60})).matched());
  EXPECT_EQ(clf.activities_for(1).size(), 1u);
}

TEST(PingPong, TrainsOnTestbedActivityData) {
  const auto capture = testbed::Datasets::activity(61, 6);
  DomainResolver resolver;
  testbed::configure_resolver(resolver, capture);
  FlowAssembler assembler;
  auto flows = assembler.assemble(capture.packets, resolver);
  testbed::apply_ground_truth(flows, capture.truths);
  const auto clf = PingPongClassifier::train(flows);
  EXPECT_GT(clf.num_signatures(), 10u);
}

}  // namespace
}  // namespace behaviot
