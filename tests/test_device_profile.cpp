#include "behaviot/testbed/device.hpp"

#include <gtest/gtest.h>

#include <set>

namespace behaviot::testbed {
namespace {

const DeviceInfo& device(const std::string& name) {
  const DeviceInfo* d = Catalog::standard().by_name(name);
  EXPECT_NE(d, nullptr) << name;
  return *d;
}

TEST(DeviceProfile, PeriodicCountMatchesCatalog) {
  for (const DeviceInfo& info : Catalog::standard().devices()) {
    const DeviceProfile profile = build_profile(info);
    EXPECT_EQ(profile.periodic.size(), info.periodic_behaviors) << info.name;
  }
}

TEST(DeviceProfile, DnsFirstNtpSecond) {
  const DeviceProfile p = build_profile(device("tplink_plug"));
  ASSERT_GE(p.periodic.size(), 2u);
  EXPECT_TRUE(p.periodic[0].is_dns);
  EXPECT_EQ(p.periodic[0].proto, Transport::kUdp);
  EXPECT_EQ(p.periodic[0].dst_port, 53);
  EXPECT_TRUE(p.periodic[1].is_ntp);
  EXPECT_EQ(p.periodic[1].dst_port, 123);
  // Hourly cadence, as in the paper's DNS/NTP examples (period 3603).
  EXPECT_NEAR(p.periodic[0].period_s, 3603.0, 1.0);
}

TEST(DeviceProfile, DeterministicAcrossBuilds) {
  const DeviceProfile a = build_profile(device("echo_show5"));
  const DeviceProfile b = build_profile(device("echo_show5"));
  ASSERT_EQ(a.periodic.size(), b.periodic.size());
  for (std::size_t i = 0; i < a.periodic.size(); ++i) {
    EXPECT_EQ(a.periodic[i].domain, b.periodic[i].domain);
    EXPECT_DOUBLE_EQ(a.periodic[i].period_s, b.periodic[i].period_s);
    EXPECT_EQ(a.periodic[i].sizes, b.periodic[i].sizes);
  }
}

TEST(DeviceProfile, ActivitiesCoverCatalogCommands) {
  const DeviceInfo& info = device("tplink_bulb");
  const DeviceProfile p = build_profile(info);
  EXPECT_EQ(p.activities.size(), info.commands.size());
  for (const std::string& command : info.commands) {
    EXPECT_NE(p.signature_for(command), nullptr) << command;
  }
  EXPECT_EQ(p.signature_for("nonexistent"), nullptr);
}

TEST(DeviceProfile, AggregatedCommandsShareSignatureShape) {
  // tplink_plug aggregates on/off: same label → same template.
  const DeviceProfile p = build_profile(device("tplink_plug"));
  const ActivitySignature* on = p.signature_for("on");
  const ActivitySignature* off = p.signature_for("off");
  ASSERT_NE(on, nullptr);
  ASSERT_NE(off, nullptr);
  EXPECT_EQ(on->label, "on_off");
  EXPECT_EQ(off->label, "on_off");
  EXPECT_EQ(on->out_sizes, off->out_sizes);
}

TEST(DeviceProfile, DistinctActivitiesHaveDistinctTemplates) {
  const DeviceProfile p = build_profile(device("tplink_bulb"));
  const ActivitySignature* on = p.signature_for("on");
  const ActivitySignature* off = p.signature_for("off");
  ASSERT_NE(on, nullptr);
  ASSERT_NE(off, nullptr);
  EXPECT_NE(on->out_sizes, off->out_sizes);
}

TEST(DeviceProfile, UserEventDomainsAvoidPeriodicGroups) {
  // ctrl.* endpoints must not collide with any periodic group's domain —
  // except the SmartThings Hub, whose overlap is the intended quirk.
  for (const DeviceInfo& info : Catalog::standard().devices()) {
    if (info.name == "smartthings_hub") continue;
    const DeviceProfile p = build_profile(info);
    std::set<std::string> periodic_domains;
    for (const auto& b : p.periodic) periodic_domains.insert(b.domain);
    for (const auto& a : p.activities) {
      EXPECT_EQ(periodic_domains.count(a.domain), 0u)
          << info.name << " " << a.command;
    }
  }
}

TEST(DeviceProfile, SmartThingsHubActivityMimicsHeartbeat) {
  // §5.1's FNR case: the hub's user events share destination and shape with
  // a periodic behavior.
  const DeviceProfile p = build_profile(device("smartthings_hub"));
  ASSERT_FALSE(p.activities.empty());
  const ActivitySignature& a = p.activities.front();
  bool overlaps = false;
  for (const auto& b : p.periodic) {
    if (b.domain == a.domain) overlaps = true;
  }
  EXPECT_TRUE(overlaps);
}

TEST(DeviceProfile, EchoShow5HasUserMimickingAperiodicTraffic) {
  // §5.1's FPR case: idle flows shaped like voice events.
  const DeviceProfile p = build_profile(device("echo_show5"));
  bool has_mimic = false;
  for (const auto& b : p.aperiodic) has_mimic |= b.mimics_user_activity;
  EXPECT_TRUE(has_mimic);
}

TEST(DeviceProfile, SomeDevicesUseGoogleDns) {
  // §6.1: 6 devices query Google DNS despite the DHCP-provided resolver.
  std::size_t google_dns = 0;
  for (const DeviceInfo& info : Catalog::standard().devices()) {
    const DeviceProfile p = build_profile(info);
    if (p.periodic.front().domain == "dns.google") ++google_dns;
  }
  EXPECT_GE(google_dns, 3u);
  EXPECT_LE(google_dns, 9u);
}

TEST(DeviceProfile, NtpServersAreDiverse) {
  // §6.1: devices sync with 17 distinct NTP servers.
  std::set<std::string> servers;
  for (const DeviceInfo& info : Catalog::standard().devices()) {
    const DeviceProfile p = build_profile(info);
    servers.insert(p.periodic[1].domain);
  }
  EXPECT_GE(servers.size(), 8u);
}

TEST(DeviceProfile, SameVendorDevicesDifferInPeriods) {
  // §6.1: TP-Link Bulb and Plug contact the same cloud with different
  // periods.
  const DeviceProfile bulb = build_profile(device("tplink_bulb"));
  const DeviceProfile plug = build_profile(device("tplink_plug"));
  const double bulb_cloud = bulb.periodic.back().period_s;
  const double plug_cloud = plug.periodic.back().period_s;
  EXPECT_NE(bulb_cloud, plug_cloud);
}

TEST(IpForDomain, DeterministicAndPublic) {
  const Ipv4Addr a = ip_for_domain("api.tplinkcloud.com");
  EXPECT_EQ(a, ip_for_domain("api.tplinkcloud.com"));
  EXPECT_FALSE(a.is_private());
  EXPECT_NE(a, ip_for_domain("mqtt.tplinkcloud.com"));
}

TEST(IpForDomain, ResolverAddressesAreWellKnown) {
  EXPECT_EQ(ip_for_domain("dns.google"), google_dns_ip());
  EXPECT_EQ(ip_for_domain("dns.neu.edu"), campus_resolver_ip());
  EXPECT_EQ(google_dns_ip().to_string(), "8.8.8.8");
}

}  // namespace
}  // namespace behaviot::testbed
