#include "behaviot/net/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "behaviot/core/fuzz_corpus.hpp"

namespace behaviot {
namespace {

Packet make_packet(std::int64_t us, Transport proto, Direction dir,
                   std::uint32_t size, std::vector<std::uint8_t> payload = {}) {
  Packet p;
  p.ts = Timestamp(us);
  const std::uint16_t dst_port = proto == Transport::kUdp ? 53 : 443;
  p.tuple = {{Ipv4Addr(192, 168, 1, 20), 40000},
             {Ipv4Addr(54, 10, 20, 30), dst_port},
             proto};
  p.size = size;
  p.dir = dir;
  p.payload = std::move(payload);
  return p;
}

TEST(PcapRoundTrip, PreservesTimingSizesAndTuples) {
  std::vector<Packet> in;
  in.push_back(make_packet(1'000'000, Transport::kTcp, Direction::kOutbound, 120));
  in.push_back(make_packet(1'200'000, Transport::kTcp, Direction::kInbound, 90));
  in.push_back(make_packet(2'500'000, Transport::kUdp, Direction::kOutbound, 80));

  const auto bytes = serialize_pcap(in);
  const PcapReadResult out = parse_pcap(bytes);
  ASSERT_EQ(out.packets.size(), in.size());
  EXPECT_EQ(out.skipped, 0u);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out.packets[i].ts, in[i].ts) << i;
    EXPECT_EQ(out.packets[i].size, in[i].size) << i;
    EXPECT_EQ(out.packets[i].tuple, in[i].tuple) << i;
    EXPECT_EQ(out.packets[i].dir, in[i].dir) << i;
  }
}

TEST(PcapRoundTrip, PreservesPayloadBytes) {
  std::vector<std::uint8_t> payload{0xde, 0xad, 0xbe, 0xef, 0x01};
  auto p = make_packet(500, Transport::kUdp, Direction::kOutbound,
                       28 + 5, payload);
  const auto out = parse_pcap(serialize_pcap({p}));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].payload, payload);
}

TEST(PcapRoundTrip, InboundFramesRecanonicalize) {
  // An inbound packet is written with swapped src/dst on the wire; the
  // parser must restore device-side orientation via the private-IP rule.
  auto p = make_packet(100, Transport::kTcp, Direction::kInbound, 200);
  const auto out = parse_pcap(serialize_pcap({p}));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].dir, Direction::kInbound);
  EXPECT_EQ(out.packets[0].tuple.src.ip, Ipv4Addr(192, 168, 1, 20));
  EXPECT_EQ(out.packets[0].tuple.dst.ip, Ipv4Addr(54, 10, 20, 30));
}

TEST(PcapRoundTrip, LocalTrafficKeepsSenderAsSource) {
  Packet p;
  p.ts = Timestamp(100);
  p.tuple = {{Ipv4Addr(192, 168, 1, 20), 5000},
             {Ipv4Addr(192, 168, 1, 30), 6000},
             Transport::kUdp};
  p.size = 100;
  p.dir = Direction::kOutbound;
  const auto out = parse_pcap(serialize_pcap({p}));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].tuple.src.ip, Ipv4Addr(192, 168, 1, 20));
  EXPECT_EQ(out.packets[0].dir, Direction::kOutbound);
}

TEST(PcapParse, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes(24, 0);
  EXPECT_THROW(parse_pcap(bytes), std::runtime_error);
}

TEST(PcapParse, RejectsTruncatedHeader) {
  std::vector<std::uint8_t> bytes(10, 0);
  EXPECT_THROW(parse_pcap(bytes), std::runtime_error);
}

TEST(PcapParse, ToleratesTruncatedLastRecord) {
  auto bytes = serialize_pcap(
      {make_packet(1, Transport::kTcp, Direction::kOutbound, 100),
       make_packet(2, Transport::kTcp, Direction::kOutbound, 100)});
  bytes.resize(bytes.size() - 10);  // chop into the final record
  const auto out = parse_pcap(bytes);
  EXPECT_EQ(out.packets.size(), 1u);
}

TEST(PcapParse, MinimumSizeIsHeaderOverhead) {
  // A declared size below the header overhead is clamped up by the writer.
  auto p = make_packet(1, Transport::kTcp, Direction::kOutbound, 10);
  const auto out = parse_pcap(serialize_pcap({p}));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].size, header_overhead(Transport::kTcp));
}

TEST(PcapWriter, WritesReadableFile) {
  const std::string path = ::testing::TempDir() + "/behaviot_test.pcap";
  {
    PcapWriter writer(path);
    writer.write(make_packet(1'000, Transport::kTcp, Direction::kOutbound, 150));
    writer.write(make_packet(2'000, Transport::kUdp, Direction::kInbound, 80));
    EXPECT_EQ(writer.packets_written(), 2u);
  }
  const auto out = read_pcap(path);
  EXPECT_EQ(out.packets.size(), 2u);
  std::filesystem::remove(path);
}

TEST(PcapWriter, ThrowsOnUnopenablePath) {
  EXPECT_THROW(PcapWriter("/nonexistent_dir_xyz/file.pcap"),
               std::runtime_error);
}

TEST(PcapReader, ThrowsOnMissingFile) {
  EXPECT_THROW(read_pcap("/nonexistent_file.pcap"), std::runtime_error);
}

TEST(PcapParse, AcceptsAllFourMagicVariants) {
  // Native/byte-swapped × microsecond/nanosecond headers must all decode
  // to the same packets (nanosecond timestamps scaled down to µs).
  std::vector<Packet> in;
  in.push_back(make_packet(1'234'567, Transport::kTcp, Direction::kOutbound,
                           40 + 2, {0x41, 0x42}));
  in.push_back(make_packet(2'000'003, Transport::kUdp, Direction::kInbound,
                           28 + 1, {0x99}));
  const auto native = serialize_pcap(in);
  for (const bool swapped : {false, true}) {
    for (const bool nanos : {false, true}) {
      const auto variant = fuzz::pcap_variant(native, swapped, nanos);
      const auto out = parse_pcap(variant, ParsePolicy::kStrict);
      ASSERT_EQ(out.packets.size(), in.size())
          << "swapped=" << swapped << " nanos=" << nanos;
      for (std::size_t i = 0; i < in.size(); ++i) {
        EXPECT_EQ(out.packets[i].ts, in[i].ts)
            << "swapped=" << swapped << " nanos=" << nanos << " packet " << i;
        EXPECT_EQ(out.packets[i].tuple, in[i].tuple) << i;
        EXPECT_EQ(out.packets[i].payload, in[i].payload) << i;
      }
    }
  }
}

TEST(PcapParse, TrimsEthernetTrailerPadding) {
  // Frames shorter than the 60-byte Ethernet minimum are padded on the wire;
  // the padding sits after the IP datagram and must not leak into payload.
  auto bytes =
      serialize_pcap({make_packet(10, Transport::kUdp, Direction::kOutbound,
                                  28 + 4, {0x01, 0x02, 0x03, 0x04})});
  // Append 8 trailer bytes to the record and patch incl/orig lengths
  // (offsets 32/36: 24-byte global header + ts_sec + ts_frac).
  const std::size_t record_len = bytes.size() - 40;
  for (int i = 0; i < 8; ++i) bytes.push_back(0xEE);
  const auto patched = static_cast<std::uint32_t>(record_len + 8);
  for (const std::size_t off : {std::size_t{32}, std::size_t{36}}) {
    bytes[off + 0] = static_cast<std::uint8_t>(patched & 0xff);
    bytes[off + 1] = static_cast<std::uint8_t>((patched >> 8) & 0xff);
    bytes[off + 2] = static_cast<std::uint8_t>((patched >> 16) & 0xff);
    bytes[off + 3] = static_cast<std::uint8_t>((patched >> 24) & 0xff);
  }
  const auto out = parse_pcap(bytes, ParsePolicy::kStrict);
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].payload,
            (std::vector<std::uint8_t>{0x01, 0x02, 0x03, 0x04}));
}

TEST(PcapRoundTrip, PreservesTrailingZeroPayloadBytes) {
  // Payloads that genuinely end in 0x00 (common in binary IoT protocols)
  // must survive the round trip — length comes from the IP header, so
  // trailing zeros are data, not padding.
  const std::vector<std::uint8_t> payload{0x17, 0x03, 0x00, 0x00, 0x00};
  const auto out = parse_pcap(serialize_pcap(
      {make_packet(5, Transport::kTcp, Direction::kOutbound, 40 + 5,
                   payload)}));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].payload, payload);
}

TEST(PcapWriter, RejectsNegativeTimestamps) {
  // ts_sec/ts_usec are unsigned on the wire; a pre-epoch timestamp would
  // serialize as garbage, so the writer refuses it outright.
  const auto p = make_packet(-1, Transport::kTcp, Direction::kOutbound, 100);
  EXPECT_THROW(serialize_pcap({p}), std::runtime_error);
}

TEST(PcapParse, StrictThrowsTypedErrorWithOffsetOnMalformedFrame) {
  auto bytes = serialize_pcap(
      {make_packet(1, Transport::kTcp, Direction::kOutbound, 100)});
  // Corrupt the IP version/IHL byte (offset 40+14: record header + Ethernet).
  bytes[40 + 14] = 0x41;  // IHL=1 → header shorter than the minimum 20
  try {
    parse_pcap(bytes, ParsePolicy::kStrict);
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_GE(e.offset(), 40u);
    EXPECT_LT(e.offset(), bytes.size());
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos);
  }
  // The same frame under kLenient is counted, not thrown.
  const auto out = parse_pcap(bytes, ParsePolicy::kLenient);
  EXPECT_EQ(out.packets.size(), 0u);
  EXPECT_EQ(out.stats.malformed, 1u);
}

TEST(PcapStreamingReader, MatchesBatchParserOnFiles) {
  const std::string path = ::testing::TempDir() + "/behaviot_stream.pcap";
  std::vector<Packet> in;
  for (int i = 0; i < 300; ++i) {
    in.push_back(make_packet(1'000 * (i + 1),
                             i % 3 == 0 ? Transport::kUdp : Transport::kTcp,
                             i % 2 == 0 ? Direction::kOutbound
                                        : Direction::kInbound,
                             60 + static_cast<std::uint32_t>(i % 200),
                             std::vector<std::uint8_t>(i % 32, 0xab)));
  }
  {
    PcapWriter writer(path);
    for (const Packet& p : in) writer.write(p);
  }
  const auto batch = read_pcap(path);

  std::ifstream file(path, std::ios::binary);
  PcapReader reader(file, {.chunk_size = 512});
  std::vector<Packet> streamed;
  while (auto p = reader.next()) streamed.push_back(std::move(*p));
  std::filesystem::remove(path);

  ASSERT_EQ(streamed.size(), batch.packets.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].ts, batch.packets[i].ts) << i;
    EXPECT_EQ(streamed[i].tuple, batch.packets[i].tuple) << i;
    EXPECT_EQ(streamed[i].payload, batch.packets[i].payload) << i;
  }
  // The chunk buffer grows to hold at most one record, not the file.
  EXPECT_LE(reader.buffer_capacity(), 512u + 16u + 65535u);
}

TEST(PcapStreamingReader, LenientStopsCleanlyOnMidRecordTruncation) {
  const auto bytes = serialize_pcap(
      {make_packet(1, Transport::kTcp, Direction::kOutbound, 100),
       make_packet(2, Transport::kTcp, Direction::kOutbound, 100)});
  const std::string text(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size() - 7);
  std::istringstream in(text);
  PcapReader reader(in, {.policy = ParsePolicy::kLenient});
  std::size_t n = 0;
  while (reader.next()) ++n;
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(reader.stats().truncated, 1u);

  std::istringstream strict_in(text);
  PcapReader strict_reader(strict_in, {.policy = ParsePolicy::kStrict});
  EXPECT_NO_THROW(strict_reader.next());          // first record is whole
  EXPECT_THROW(strict_reader.next(), ParseError);  // second is cut short
}

TEST(PcapStreamingReader, OnEofTailsAGrowingStream) {
  // `behaviot watch --follow` mode: the file runs dry mid-record, the on_eof
  // callback "waits" for the capture to grow (here: appends the remaining
  // bytes), and reading resumes where it stopped.
  const auto bytes = serialize_pcap(
      {make_packet(1'000, Transport::kTcp, Direction::kOutbound, 100),
       make_packet(2'000, Transport::kUdp, Direction::kInbound, 80),
       make_packet(3'000, Transport::kTcp, Direction::kOutbound, 120)});
  // First installment cuts into the middle of the second record.
  const std::size_t cut = bytes.size() - 50;
  std::stringstream stream;
  stream.write(reinterpret_cast<const char*>(bytes.data()),
               static_cast<std::streamsize>(cut));

  int grow_calls = 0;
  PcapReaderOptions options;
  options.on_eof = [&]() {
    if (grow_calls++ > 0) return false;  // second dry spell: real EOF
    stream.clear();
    stream.write(reinterpret_cast<const char*>(bytes.data() + cut),
                 static_cast<std::streamsize>(bytes.size() - cut));
    return true;
  };
  PcapReader reader(stream, options);
  std::vector<Packet> out;
  while (auto p = reader.next()) out.push_back(std::move(*p));

  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].ts, Timestamp(1'000));
  EXPECT_EQ(out[1].ts, Timestamp(2'000));
  EXPECT_EQ(out[2].ts, Timestamp(3'000));
  EXPECT_GE(grow_calls, 1);
  EXPECT_EQ(reader.stats().truncated, 0u);  // the dry spell is not damage
}

TEST(PcapStreamingReader, OnEofDecliningBehavesLikePlainEof) {
  const auto bytes = serialize_pcap(
      {make_packet(1'000, Transport::kTcp, Direction::kOutbound, 100)});
  const std::string text(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
  std::istringstream in(text);
  PcapReaderOptions options;
  options.on_eof = []() { return false; };
  PcapReader reader(in, options);
  std::size_t n = 0;
  while (reader.next()) ++n;
  EXPECT_EQ(n, 1u);
}

}  // namespace
}  // namespace behaviot
