#include "behaviot/net/pcap.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace behaviot {
namespace {

Packet make_packet(std::int64_t us, Transport proto, Direction dir,
                   std::uint32_t size, std::vector<std::uint8_t> payload = {}) {
  Packet p;
  p.ts = Timestamp(us);
  const std::uint16_t dst_port = proto == Transport::kUdp ? 53 : 443;
  p.tuple = {{Ipv4Addr(192, 168, 1, 20), 40000},
             {Ipv4Addr(54, 10, 20, 30), dst_port},
             proto};
  p.size = size;
  p.dir = dir;
  p.payload = std::move(payload);
  return p;
}

TEST(PcapRoundTrip, PreservesTimingSizesAndTuples) {
  std::vector<Packet> in;
  in.push_back(make_packet(1'000'000, Transport::kTcp, Direction::kOutbound, 120));
  in.push_back(make_packet(1'200'000, Transport::kTcp, Direction::kInbound, 90));
  in.push_back(make_packet(2'500'000, Transport::kUdp, Direction::kOutbound, 80));

  const auto bytes = serialize_pcap(in);
  const PcapReadResult out = parse_pcap(bytes);
  ASSERT_EQ(out.packets.size(), in.size());
  EXPECT_EQ(out.skipped, 0u);
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out.packets[i].ts, in[i].ts) << i;
    EXPECT_EQ(out.packets[i].size, in[i].size) << i;
    EXPECT_EQ(out.packets[i].tuple, in[i].tuple) << i;
    EXPECT_EQ(out.packets[i].dir, in[i].dir) << i;
  }
}

TEST(PcapRoundTrip, PreservesPayloadBytes) {
  std::vector<std::uint8_t> payload{0xde, 0xad, 0xbe, 0xef, 0x01};
  auto p = make_packet(500, Transport::kUdp, Direction::kOutbound,
                       28 + 5, payload);
  const auto out = parse_pcap(serialize_pcap({p}));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].payload, payload);
}

TEST(PcapRoundTrip, InboundFramesRecanonicalize) {
  // An inbound packet is written with swapped src/dst on the wire; the
  // parser must restore device-side orientation via the private-IP rule.
  auto p = make_packet(100, Transport::kTcp, Direction::kInbound, 200);
  const auto out = parse_pcap(serialize_pcap({p}));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].dir, Direction::kInbound);
  EXPECT_EQ(out.packets[0].tuple.src.ip, Ipv4Addr(192, 168, 1, 20));
  EXPECT_EQ(out.packets[0].tuple.dst.ip, Ipv4Addr(54, 10, 20, 30));
}

TEST(PcapRoundTrip, LocalTrafficKeepsSenderAsSource) {
  Packet p;
  p.ts = Timestamp(100);
  p.tuple = {{Ipv4Addr(192, 168, 1, 20), 5000},
             {Ipv4Addr(192, 168, 1, 30), 6000},
             Transport::kUdp};
  p.size = 100;
  p.dir = Direction::kOutbound;
  const auto out = parse_pcap(serialize_pcap({p}));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].tuple.src.ip, Ipv4Addr(192, 168, 1, 20));
  EXPECT_EQ(out.packets[0].dir, Direction::kOutbound);
}

TEST(PcapParse, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes(24, 0);
  EXPECT_THROW(parse_pcap(bytes), std::runtime_error);
}

TEST(PcapParse, RejectsTruncatedHeader) {
  std::vector<std::uint8_t> bytes(10, 0);
  EXPECT_THROW(parse_pcap(bytes), std::runtime_error);
}

TEST(PcapParse, ToleratesTruncatedLastRecord) {
  auto bytes = serialize_pcap(
      {make_packet(1, Transport::kTcp, Direction::kOutbound, 100),
       make_packet(2, Transport::kTcp, Direction::kOutbound, 100)});
  bytes.resize(bytes.size() - 10);  // chop into the final record
  const auto out = parse_pcap(bytes);
  EXPECT_EQ(out.packets.size(), 1u);
}

TEST(PcapParse, MinimumSizeIsHeaderOverhead) {
  // A declared size below the header overhead is clamped up by the writer.
  auto p = make_packet(1, Transport::kTcp, Direction::kOutbound, 10);
  const auto out = parse_pcap(serialize_pcap({p}));
  ASSERT_EQ(out.packets.size(), 1u);
  EXPECT_EQ(out.packets[0].size, header_overhead(Transport::kTcp));
}

TEST(PcapWriter, WritesReadableFile) {
  const std::string path = ::testing::TempDir() + "/behaviot_test.pcap";
  {
    PcapWriter writer(path);
    writer.write(make_packet(1'000, Transport::kTcp, Direction::kOutbound, 150));
    writer.write(make_packet(2'000, Transport::kUdp, Direction::kInbound, 80));
    EXPECT_EQ(writer.packets_written(), 2u);
  }
  const auto out = read_pcap(path);
  EXPECT_EQ(out.packets.size(), 2u);
  std::filesystem::remove(path);
}

TEST(PcapWriter, ThrowsOnUnopenablePath) {
  EXPECT_THROW(PcapWriter("/nonexistent_dir_xyz/file.pcap"),
               std::runtime_error);
}

TEST(PcapReader, ThrowsOnMissingFile) {
  EXPECT_THROW(read_pcap("/nonexistent_file.pcap"), std::runtime_error);
}

}  // namespace
}  // namespace behaviot
