#include "behaviot/core/serialize.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

#include "behaviot/periodic/periodic_classifier.hpp"
#include "behaviot/pfsm/synoptic.hpp"

namespace behaviot {
namespace {

BehaviorModelSet small_models() {
  BehaviorModelSet models;

  std::vector<PeriodicModel> periodic;
  PeriodicModel hb;
  hb.device = 3;
  hb.group = "hb.vendor.com|TLS";
  hb.domain = "hb.vendor.com";
  hb.app = AppProtocol::kTls;
  hb.period_seconds = 600.125;
  hb.tolerance_seconds = 12.5;
  hb.autocorr_score = 0.93;
  hb.support = 144;
  hb.secondary_periods = {3600.0};
  periodic.push_back(hb);
  PeriodicModel unnamed;
  unnamed.device = 4;
  unnamed.group = "54.1.2.3|UDP";
  unnamed.domain = "";  // blank destination (the paper's unresolved case)
  unnamed.app = AppProtocol::kOtherUdp;
  unnamed.period_seconds = 236.0;
  unnamed.tolerance_seconds = 3.0;
  unnamed.support = 10;
  periodic.push_back(unnamed);
  models.periodic = PeriodicModelSet::from_models(periodic);

  const std::vector<std::vector<std::string>> traces{
      {"cam:motion", "bulb:on"}, {"plug:on_off", "plug:on_off"}};
  models.pfsm = infer_pfsm(traces).pfsm;
  models.training_traces = traces;
  models.short_term = ShortTermThreshold::calibrate(models.pfsm, traces);
  models.thresholds.short_term = models.short_term.value();
  return models;
}

TEST(Serialize, RoundTripPreservesPeriodicModels) {
  const BehaviorModelSet original = small_models();
  std::stringstream buffer;
  save_models(buffer, original);
  const BehaviorModelSet loaded = load_models(buffer);

  ASSERT_EQ(loaded.periodic.size(), original.periodic.size());
  const PeriodicModel* hb = loaded.periodic.find(3, "hb.vendor.com|TLS");
  ASSERT_NE(hb, nullptr);
  EXPECT_DOUBLE_EQ(hb->period_seconds, 600.125);
  EXPECT_DOUBLE_EQ(hb->tolerance_seconds, 12.5);
  EXPECT_DOUBLE_EQ(hb->autocorr_score, 0.93);
  EXPECT_EQ(hb->support, 144u);
  EXPECT_EQ(hb->app, AppProtocol::kTls);
  ASSERT_EQ(hb->secondary_periods.size(), 1u);
  EXPECT_DOUBLE_EQ(hb->secondary_periods[0], 3600.0);

  const PeriodicModel* unnamed = loaded.periodic.find(4, "54.1.2.3|UDP");
  ASSERT_NE(unnamed, nullptr);
  EXPECT_TRUE(unnamed->domain.empty());
}

TEST(Serialize, RoundTripPreservesPfsmBehavior) {
  const BehaviorModelSet original = small_models();
  std::stringstream buffer;
  save_models(buffer, original);
  const BehaviorModelSet loaded = load_models(buffer);

  EXPECT_EQ(loaded.pfsm.num_states(), original.pfsm.num_states());
  EXPECT_EQ(loaded.pfsm.num_transitions(), original.pfsm.num_transitions());
  for (const auto& trace : original.training_traces) {
    EXPECT_TRUE(loaded.pfsm.accepts(trace));
    EXPECT_DOUBLE_EQ(loaded.pfsm.trace_probability(trace),
                     original.pfsm.trace_probability(trace));
  }
}

TEST(Serialize, RoundTripPreservesThresholds) {
  const BehaviorModelSet original = small_models();
  std::stringstream buffer;
  save_models(buffer, original);
  const BehaviorModelSet loaded = load_models(buffer);
  EXPECT_DOUBLE_EQ(loaded.short_term.value(), original.short_term.value());
  EXPECT_DOUBLE_EQ(loaded.thresholds.periodic, original.thresholds.periodic);
  EXPECT_DOUBLE_EQ(loaded.thresholds.long_term_z,
                   original.thresholds.long_term_z);
}

TEST(Serialize, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/behaviot_models.txt";
  save_models_file(path, small_models());
  const BehaviorModelSet loaded = load_models_file(path);
  EXPECT_EQ(loaded.periodic.size(), 2u);
  std::filesystem::remove(path);
}

TEST(Serialize, RejectsBadMagic) {
  std::stringstream buffer("not-a-model v1\n");
  EXPECT_THROW(load_models(buffer), SerializationError);
}

TEST(Serialize, RejectsWrongVersion) {
  std::stringstream buffer("behaviot-models v999\nperiodic 0\n");
  EXPECT_THROW(load_models(buffer), SerializationError);
}

TEST(Serialize, RejectsTruncatedInput) {
  const BehaviorModelSet original = small_models();
  std::stringstream buffer;
  save_models(buffer, original);
  std::string text = buffer.str();
  text.resize(text.size() / 2);
  std::stringstream truncated(text);
  EXPECT_THROW(load_models(truncated), SerializationError);
}

TEST(Serialize, RejectsDanglingTransition) {
  std::stringstream buffer(
      "behaviot-models v1\nperiodic 0\npfsm 2\ntransitions 1\n0 99 5\n");
  EXPECT_THROW(load_models(buffer), SerializationError);
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(load_models_file("/nonexistent/behaviot.txt"),
               SerializationError);
}

TEST(Serialize, RejectsNegativeCount) {
  // stoul("-1") silently wraps to 2^64-1; the loader must reject the token
  // instead of attempting a 2^64-element reserve().
  std::stringstream buffer("behaviot-models v1\nperiodic -1\n");
  EXPECT_THROW(load_models(buffer), SerializationError);
}

TEST(Serialize, RejectsNonNumericCount) {
  std::stringstream buffer("behaviot-models v1\nperiodic lots\n");
  EXPECT_THROW(load_models(buffer), SerializationError);
}

TEST(Serialize, RejectsOversizedCount) {
  // A count no remaining input could possibly satisfy is structural
  // corruption, caught before any allocation proportional to it.
  std::stringstream buffer("behaviot-models v1\nperiodic 918273645\n");
  EXPECT_THROW(load_models(buffer), SerializationError);

  std::stringstream saved;
  save_models(saved, small_models());
  std::string text = saved.str();
  const auto cut = text.find("traces ");
  ASSERT_NE(cut, std::string::npos);
  text.resize(cut);
  text += "traces 400000000\n";  // no input this size could back that count
  std::stringstream trace_buffer(text);
  EXPECT_THROW(load_models(trace_buffer), SerializationError);
}

TEST(Serialize, LenientLoadRecoversCompletedSections) {
  // Under kLenient a corrupt later section is dropped and counted, while
  // every section parsed before it is preserved.
  const BehaviorModelSet original = small_models();
  std::stringstream buffer;
  save_models(buffer, original);
  std::string text = buffer.str();
  const auto cut = text.find("traces ");
  ASSERT_NE(cut, std::string::npos);
  text.resize(cut);
  text += "traces -9\n";  // corrupt final section

  std::stringstream strict_in(text);
  EXPECT_THROW(load_models(strict_in, ParsePolicy::kStrict),
               SerializationError);

  std::stringstream lenient_in(text);
  ParseStats stats;
  const BehaviorModelSet loaded =
      load_models(lenient_in, ParsePolicy::kLenient, &stats);
  EXPECT_EQ(stats.sections_dropped, 1u);
  EXPECT_EQ(loaded.periodic.size(), original.periodic.size());
  EXPECT_EQ(loaded.pfsm.num_states(), original.pfsm.num_states());
  EXPECT_DOUBLE_EQ(loaded.thresholds.periodic, original.thresholds.periodic);
  EXPECT_TRUE(loaded.training_traces.empty());
}

TEST(Serialize, LenientLoadSurvivesTruncationMidSection) {
  const BehaviorModelSet original = small_models();
  std::stringstream buffer;
  save_models(buffer, original);
  std::string text = buffer.str();
  const auto cut = text.find("pfsm ");
  ASSERT_NE(cut, std::string::npos);
  text.resize(cut + 6);  // chop inside the pfsm section

  std::stringstream lenient_in(text);
  ParseStats stats;
  const BehaviorModelSet loaded =
      load_models(lenient_in, ParsePolicy::kLenient, &stats);
  EXPECT_GE(stats.sections_dropped, 1u);
  EXPECT_EQ(loaded.periodic.size(), original.periodic.size());
}

TEST(Serialize, LoadedModelsDriveTimerClassification) {
  // The deserialized set classifies via timers even without clusters.
  const BehaviorModelSet original = small_models();
  std::stringstream buffer;
  save_models(buffer, original);
  const BehaviorModelSet loaded = load_models(buffer);

  PeriodicEventClassifier classifier(loaded.periodic);
  FlowRecord flow;
  flow.device = 3;
  flow.domain = "hb.vendor.com";
  flow.app = AppProtocol::kTls;
  flow.tuple = {{Ipv4Addr(192, 168, 1, 13), 40000},
                {Ipv4Addr(54, 9, 9, 9), 443},
                Transport::kTcp};
  flow.start = Timestamp(0);
  EXPECT_TRUE(classifier.classify(flow).periodic);  // first sighting arms
  flow.start = Timestamp::from_seconds(600.125);
  EXPECT_TRUE(classifier.classify(flow).periodic);  // on schedule
  flow.start = Timestamp::from_seconds(600.125 + 900.0);
  const auto off_schedule = classifier.classify(flow);
  EXPECT_FALSE(off_schedule.via_timer);
}

}  // namespace
}  // namespace behaviot
