#include <gtest/gtest.h>

#include <cmath>

#include "behaviot/deviation/long_term_metric.hpp"
#include "behaviot/deviation/periodic_metric.hpp"
#include "behaviot/deviation/short_term_metric.hpp"
#include "behaviot/deviation/thresholds.hpp"
#include "behaviot/pfsm/synoptic.hpp"

namespace behaviot {
namespace {

using Traces = std::vector<std::vector<std::string>>;

// ---------- periodic-event deviation metric ----------

TEST(PeriodicMetric, ZeroWhenOnSchedule) {
  EXPECT_DOUBLE_EQ(periodic_deviation(600.0, 600.0), 0.0);
}

TEST(PeriodicMetric, PaperThresholdIsLnFiveAtFiveT) {
  // Mp = log(|5T - T|/T + 1) = ln 5 ≈ 1.609 — the §5.3 threshold.
  EXPECT_NEAR(periodic_deviation(5.0 * 600.0, 600.0),
              kPeriodicDeviationThreshold, 1e-9);
}

TEST(PeriodicMetric, SymmetricInEarlyAndLate) {
  EXPECT_DOUBLE_EQ(periodic_deviation(500.0, 600.0),
                   periodic_deviation(700.0, 600.0));
}

TEST(PeriodicMetric, MonotonicInLateness) {
  double prev = 0.0;
  for (double t0 = 600.0; t0 < 6000.0; t0 += 600.0) {
    const double m = periodic_deviation(t0, 600.0);
    EXPECT_GE(m, prev);
    prev = m;
  }
}

TEST(PeriodicMetric, DegeneratePeriodReturnsZero) {
  EXPECT_DOUBLE_EQ(periodic_deviation(100.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(periodic_deviation(100.0, -5.0), 0.0);
}

TEST(PeriodicMetric, NearestCycleForgivesSkippedBeacons) {
  // An arrival at 2T is a large plain deviation but zero nearest-cycle
  // deviation when two cycles are allowed.
  EXPECT_GT(periodic_deviation(1200.0, 600.0), 0.6);
  EXPECT_DOUBLE_EQ(periodic_deviation_nearest_cycle(1200.0, 600.0, 2), 0.0);
  // Beyond max_cycles it is not forgiven.
  EXPECT_GT(periodic_deviation_nearest_cycle(1800.0, 600.0, 2), 0.4);
}

// ---------- short-term deviation metric ----------

Pfsm trained_machine() {
  const Traces traces{
      {"cam:motion", "bulb:on"},
      {"cam:motion", "bulb:on"},
      {"cam:motion", "bulb:on", "bulb:off"},
      {"plug:on", "plug:off"},
  };
  return infer_pfsm(traces).pfsm;
}

TEST(ShortTermMetric, SeenTraceScoresNearOne) {
  const Pfsm m = trained_machine();
  const std::vector<std::string> seen{"cam:motion", "bulb:on"};
  const double a = short_term_deviation(m, seen);
  EXPECT_GE(a, 1.0);
  EXPECT_LT(a, 4.0);
}

TEST(ShortTermMetric, GrowsWithInjectedNovelEvents) {
  // Fig. 4b: the metric shifts right as unseen transitions are added.
  const Pfsm m = trained_machine();
  std::vector<std::string> trace{"cam:motion", "bulb:on"};
  double prev = short_term_deviation(m, trace);
  for (int i = 1; i <= 5; ++i) {
    trace.insert(trace.begin() + 1, "novel:event" + std::to_string(i));
    const double a = short_term_deviation(m, trace);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(ShortTermMetric, LowerBoundIsOne) {
  Pfsm m;
  const int s = m.add_state("x");
  m.add_transition(Pfsm::kInitial, s, 100);
  m.add_transition(s, Pfsm::kTerminal, 100);
  m.finalize();
  const std::vector<std::string> trace{"x"};
  EXPECT_GE(short_term_deviation(m, trace, 1e-6), 1.0);
  EXPECT_NEAR(short_term_deviation(m, trace, 1e-6), 1.0, 1e-3);
}

TEST(ShortTermThreshold, CalibratesMuPlusNSigma) {
  const Pfsm m = trained_machine();
  const Traces training{{"cam:motion", "bulb:on"}, {"plug:on", "plug:off"}};
  const auto t3 = ShortTermThreshold::calibrate(m, training, 3.0);
  const auto t1 = ShortTermThreshold::calibrate(m, training, 1.0);
  EXPECT_DOUBLE_EQ(t3.value(), t3.mean + 3.0 * t3.sigma);
  EXPECT_GT(t3.value(), t1.value());
  EXPECT_TRUE(t3.exceeded(t3.value() + 0.1));
  EXPECT_FALSE(t3.exceeded(t3.value()));
}

// ---------- long-term deviation metric ----------

TEST(BinomialZ, ZeroWhenObservedMatchesModel) {
  EXPECT_NEAR(binomial_z_score(0.5, 0.5, 100), 0.0, 1e-9);
}

TEST(BinomialZ, SignTracksDirection) {
  EXPECT_GT(binomial_z_score(0.9, 0.5, 100), 0.0);
  EXPECT_LT(binomial_z_score(0.1, 0.5, 100), 0.0);
}

TEST(BinomialZ, MagnitudeGrowsWithSampleSize) {
  const double small = std::abs(binomial_z_score(0.7, 0.5, 10));
  const double large = std::abs(binomial_z_score(0.7, 0.5, 1000));
  EXPECT_GT(large, small);
}

TEST(BinomialZ, ZeroModelProbabilityIsFloored) {
  const double z = binomial_z_score(0.5, 0.0, 50);
  EXPECT_TRUE(std::isfinite(z));
  EXPECT_GT(z, kLongTermZThreshold);
}

TEST(BinomialZ, ZeroSamplesScoreZero) {
  EXPECT_DOUBLE_EQ(binomial_z_score(0.5, 0.5, 0), 0.0);
}

TEST(LongTermMetric, MatchingWindowHasNoSignificantDeviations) {
  const Pfsm m = trained_machine();
  const Traces window{{"cam:motion", "bulb:on"},
                      {"cam:motion", "bulb:on"},
                      {"cam:motion", "bulb:on", "bulb:off"},
                      {"plug:on", "plug:off"}};
  for (const auto& d : long_term_deviations(m, window)) {
    EXPECT_LE(d.z_abs, kLongTermZThreshold + 1.0) << d.from << "->" << d.to;
  }
}

TEST(LongTermMetric, DuplicatedTracesShiftScoresRight) {
  // Fig. 4c: duplicating one trace inflates its transitions' frequencies.
  const Pfsm m = trained_machine();
  Traces window{{"cam:motion", "bulb:on"}, {"plug:on", "plug:off"}};
  auto max_z = [&m](const Traces& w) {
    double best = 0.0;
    for (const auto& d : long_term_deviations(m, w)) {
      best = std::max(best, d.z_abs);
    }
    return best;
  };
  const double base = max_z(window);
  for (int dup = 0; dup < 12; ++dup) {
    window.push_back({"plug:on", "plug:off"});
  }
  EXPECT_GT(max_z(window), base);
}

TEST(LongTermMetric, NovelTransitionIsSignificant) {
  const Pfsm m = trained_machine();
  Traces window;
  for (int i = 0; i < 10; ++i) window.push_back({"bulb:off", "cam:motion"});
  const auto deviations = long_term_deviations(m, window);
  ASSERT_FALSE(deviations.empty());
  EXPECT_GT(deviations.front().z_abs, kLongTermZThreshold);
}

TEST(LongTermMetric, ResultsSortedByScore) {
  const Pfsm m = trained_machine();
  const Traces window{{"cam:motion", "bulb:on"}, {"bulb:off", "plug:on"}};
  const auto deviations = long_term_deviations(m, window);
  for (std::size_t i = 1; i < deviations.size(); ++i) {
    EXPECT_GE(deviations[i - 1].z_abs, deviations[i].z_abs);
  }
}

// ---------- thresholds ----------

TEST(Thresholds, DefaultsMatchPaper) {
  const DeviationThresholds t;
  EXPECT_NEAR(t.periodic, std::log(5.0), 1e-12);
  EXPECT_NEAR(t.long_term_z, 1.96, 0.01);
}

TEST(Thresholds, CdfKneeFindsElbow) {
  // 95% of mass at small values, a long tail above: knee near the step.
  std::vector<double> samples;
  for (int i = 0; i < 95; ++i) samples.push_back(0.1 + 0.001 * i);
  for (int i = 0; i < 5; ++i) samples.push_back(10.0 + i);
  const double knee = cdf_knee(samples);
  EXPECT_GE(knee, 0.1);
  EXPECT_LE(knee, 0.3);
}

TEST(Thresholds, CdfKneeDegenerateInputs) {
  EXPECT_DOUBLE_EQ(cdf_knee({}), 0.0);
  EXPECT_DOUBLE_EQ(cdf_knee({2.0, 2.0, 2.0}), 2.0);
}

TEST(Thresholds, ZForConfidenceMatchesTables) {
  EXPECT_NEAR(z_for_confidence(0.95), 1.95996, 1e-4);
  EXPECT_NEAR(z_for_confidence(0.99), 2.57583, 1e-4);
  EXPECT_NEAR(z_for_confidence(0.6827), 1.0, 1e-3);
}

}  // namespace
}  // namespace behaviot
