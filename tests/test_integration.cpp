// End-to-end integration: train on controlled datasets, then verify the
// deviation engine stays quiet on normal days and fires on injected
// incidents — the core claim of the paper at miniature scale.
#include <gtest/gtest.h>

#include "behaviot/core/deviation_engine.hpp"
#include "behaviot/core/pipeline.hpp"
#include "behaviot/net/pcap.hpp"

namespace behaviot {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new Pipeline();
    DomainResolver resolver;
    const auto idle = testbed::Datasets::idle(91, /*days=*/1.0);
    const auto activity = testbed::Datasets::activity(92, /*repetitions=*/6);
    const auto routine = testbed::Datasets::routine_week(93, /*days=*/2.0);
    const auto idle_flows = pipeline_->to_flows(idle, resolver);
    const auto activity_flows = pipeline_->to_flows(activity, resolver);
    const auto routine_flows = pipeline_->to_flows(routine, resolver);
    models_ = new BehaviorModelSet(pipeline_->train(
        idle_flows, 86400.0, activity_flows, routine_flows));
  }

  static void TearDownTestSuite() {
    delete models_;
    delete pipeline_;
  }

  static Pipeline* pipeline_;
  static BehaviorModelSet* models_;
};

Pipeline* IntegrationTest::pipeline_ = nullptr;
BehaviorModelSet* IntegrationTest::models_ = nullptr;

TEST_F(IntegrationTest, QuietDaysStayMostlyQuiet) {
  DeviationEngine engine(*models_);
  std::size_t total_alerts = 0;
  for (std::size_t day = 1; day <= 3; ++day) {
    const auto capture = testbed::Datasets::uncontrolled_day(day, 94);
    total_alerts += engine.process_window(capture).size();
  }
  // The paper sees ~2 deviations/day on average across 47 devices; a small
  // number of alerts is expected, a flood is a failure.
  EXPECT_LT(total_alerts, 40u);
  EXPECT_EQ(engine.windows_processed(), 3u);
}

TEST_F(IntegrationTest, NetworkOutageDayFiresPeriodicAlerts) {
  DeviationEngine engine(*models_);
  // Prime timers with a quiet day, then the outage day (day 30).
  (void)engine.process_window(testbed::Datasets::uncontrolled_day(29, 94));
  const auto alerts =
      engine.process_window(testbed::Datasets::uncontrolled_day(30, 94));
  std::size_t periodic_alerts = 0;
  for (const auto& a : alerts) {
    periodic_alerts += a.source == DeviationSource::kPeriodic ? 1 : 0;
  }
  EXPECT_GT(periodic_alerts, 3u);
}

TEST_F(IntegrationTest, LabExperimentDayFiresUserEventAlerts) {
  DeviationEngine engine(*models_);
  (void)engine.process_window(testbed::Datasets::uncontrolled_day(12, 94));
  const auto alerts =
      engine.process_window(testbed::Datasets::uncontrolled_day(13, 94));
  bool user_alert = false;
  for (const auto& a : alerts) {
    if (a.source != DeviationSource::kPeriodic &&
        a.context.find("echo_spot") != std::string::npos) {
      user_alert = true;
    }
  }
  EXPECT_TRUE(user_alert);
}

TEST_F(IntegrationTest, MisconfigDayFiresAlerts) {
  DeviationEngine engine(*models_);
  (void)engine.process_window(testbed::Datasets::uncontrolled_day(14, 94));
  const auto alerts =
      engine.process_window(testbed::Datasets::uncontrolled_day(15, 94));
  bool hit = false;
  for (const auto& a : alerts) {
    if (a.context.find("smartlife_bulb") != std::string::npos ||
        a.context.find("switchbot_hub") != std::string::npos) {
      hit = true;
    }
  }
  EXPECT_TRUE(hit);
}

TEST_F(IntegrationTest, ResetReplaysIdenticallyToFreshEngine) {
  // Replaying the same capture after reset() must match a fresh engine:
  // stale timers and DNS knowledge would otherwise leak phantom alerts
  // into the second run.
  auto run = [&](DeviationEngine& e) {
    std::vector<std::string> log;
    for (std::size_t day = 1; day <= 2; ++day) {
      const auto alerts =
          e.process_window(testbed::Datasets::uncontrolled_day(day, 94));
      for (const auto& a : alerts) {
        log.push_back(std::string(to_string(a.source)) + "|" + a.context);
      }
    }
    return log;
  };

  DeviationEngine engine(*models_);
  const auto first = run(engine);
  EXPECT_EQ(engine.windows_processed(), 2u);

  engine.reset();
  EXPECT_EQ(engine.windows_processed(), 0u);
  EXPECT_EQ(run(engine), first);

  DeviationEngine fresh(*models_);
  EXPECT_EQ(run(fresh), first);
}

TEST_F(IntegrationTest, PcapRoundTripPreservesPipelineResults) {
  // Export a small capture to pcap bytes, re-ingest, and verify flows agree
  // — the pipeline works identically on "real" capture files.
  const auto capture = testbed::Datasets::idle(95, 0.05);
  const auto bytes = serialize_pcap(capture.packets);
  const auto parsed = parse_pcap(bytes);
  EXPECT_EQ(parsed.packets.size(), capture.packets.size());
  EXPECT_EQ(parsed.skipped, 0u);

  DomainResolver r1, r2;
  testbed::configure_resolver(r1, capture);
  testbed::configure_resolver(r2, capture);
  FlowAssembler assembler;
  // Device ids are unknown after pcap ingestion (kUnknownDevice); map back
  // via the catalog by source IP, as a real deployment would.
  auto reparsed = parsed.packets;
  for (Packet& p : reparsed) {
    const auto* dev = testbed::Catalog::standard().by_ip(p.tuple.src.ip);
    if (dev != nullptr) p.device = dev->id;
  }
  const auto flows_direct = assembler.assemble(capture.packets, r1);
  const auto flows_pcap = assembler.assemble(reparsed, r2);
  ASSERT_EQ(flows_direct.size(), flows_pcap.size());
  for (std::size_t i = 0; i < flows_direct.size(); ++i) {
    EXPECT_EQ(flows_direct[i].tuple, flows_pcap[i].tuple);
    EXPECT_EQ(flows_direct[i].device, flows_pcap[i].device);
    EXPECT_EQ(flows_direct[i].domain, flows_pcap[i].domain);
    EXPECT_EQ(flows_direct[i].packets.size(), flows_pcap[i].packets.size());
  }
}

TEST_F(IntegrationTest, ModelsAreDeterministic) {
  // Re-training on identical inputs yields the same model sizes and
  // thresholds (full reproducibility claim).
  Pipeline pipeline;
  DomainResolver resolver;
  const auto idle = testbed::Datasets::idle(91, 1.0);
  const auto activity = testbed::Datasets::activity(92, 6);
  const auto routine = testbed::Datasets::routine_week(93, 2.0);
  const auto idle_flows = pipeline.to_flows(idle, resolver);
  const auto activity_flows = pipeline.to_flows(activity, resolver);
  const auto routine_flows = pipeline.to_flows(routine, resolver);
  const auto again = pipeline.train(idle_flows, 86400.0, activity_flows,
                                    routine_flows);
  EXPECT_EQ(again.periodic.size(), models_->periodic.size());
  EXPECT_EQ(again.user_actions.size(), models_->user_actions.size());
  EXPECT_EQ(again.pfsm.num_states(), models_->pfsm.num_states());
  EXPECT_EQ(again.pfsm.num_transitions(), models_->pfsm.num_transitions());
  EXPECT_DOUBLE_EQ(again.short_term.value(), models_->short_term.value());
}

}  // namespace
}  // namespace behaviot
