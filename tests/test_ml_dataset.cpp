#include "behaviot/ml/dataset.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

namespace behaviot {
namespace {

std::vector<int> labels_mix(std::size_t zeros, std::size_t ones) {
  std::vector<int> y(zeros, 0);
  y.insert(y.end(), ones, 1);
  return y;
}

TEST(Dataset, AddAndQuery) {
  Dataset d;
  EXPECT_EQ(d.size(), 0u);
  EXPECT_EQ(d.num_features(), 0u);
  d.add({1.0, 2.0, 3.0}, 1);
  d.add({4.0, 5.0, 6.0}, 0);
  EXPECT_EQ(d.size(), 2u);
  EXPECT_EQ(d.num_features(), 3u);
  EXPECT_EQ(d.y[0], 1);
}

TEST(StratifiedKfold, PartitionsAllIndicesExactlyOnce) {
  const auto y = labels_mix(40, 20);
  const auto folds = stratified_kfold(y, 5, 1);
  ASSERT_EQ(folds.size(), 5u);
  std::set<std::size_t> seen;
  for (const auto& fold : folds) {
    for (std::size_t i : fold) EXPECT_TRUE(seen.insert(i).second);
  }
  EXPECT_EQ(seen.size(), y.size());
}

TEST(StratifiedKfold, PreservesClassProportions) {
  const auto y = labels_mix(50, 25);
  const auto folds = stratified_kfold(y, 5, 2);
  for (const auto& fold : folds) {
    std::size_t ones = 0;
    for (std::size_t i : fold) ones += static_cast<std::size_t>(y[i]);
    EXPECT_EQ(fold.size(), 15u);
    EXPECT_EQ(ones, 5u);
  }
}

TEST(StratifiedKfold, DeterministicAcrossCalls) {
  const auto y = labels_mix(30, 30);
  EXPECT_EQ(stratified_kfold(y, 3, 7), stratified_kfold(y, 3, 7));
  EXPECT_NE(stratified_kfold(y, 3, 7), stratified_kfold(y, 3, 8));
}

TEST(StratifiedSplit, RespectsTestFraction) {
  const auto y = labels_mix(80, 20);
  const auto split = stratified_split(y, 0.25, 3);
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  std::size_t test_ones = 0;
  for (std::size_t i : split.test) test_ones += static_cast<std::size_t>(y[i]);
  EXPECT_EQ(test_ones, 5u);
}

TEST(StratifiedSplit, TinyClassesGetAtLeastOneTestSample) {
  std::vector<int> y{0, 0, 0, 0, 0, 0, 0, 0, 1, 1};
  const auto split = stratified_split(y, 0.1, 4);
  std::size_t test_ones = 0;
  for (std::size_t i : split.test) test_ones += static_cast<std::size_t>(y[i]);
  EXPECT_GE(test_ones, 1u);
}

TEST(StratifiedSplit, SingletonClassStaysInTraining) {
  std::vector<int> y{0, 0, 0, 0, 1};
  const auto split = stratified_split(y, 0.2, 5);
  // The lone class-1 sample must not vanish from training.
  bool one_in_train = false;
  for (std::size_t i : split.train) one_in_train |= (y[i] == 1);
  EXPECT_TRUE(one_in_train);
}

TEST(Bootstrap, SampleSizeMatchesAndDrawsWithReplacement) {
  Rng rng(6);
  const auto sample = bootstrap_indices(100, rng);
  EXPECT_EQ(sample.size(), 100u);
  for (std::size_t i : sample) EXPECT_LT(i, 100u);
  // With replacement: ~63 distinct values expected, far from 100.
  std::set<std::size_t> distinct(sample.begin(), sample.end());
  EXPECT_LT(distinct.size(), 90u);
  EXPECT_GT(distinct.size(), 40u);
}

}  // namespace
}  // namespace behaviot
