// Chaos differential suite: every fault class the injector can produce must
// be survived by the pipeline — train, classify, and score all complete
// without throwing, the degradation is visible in the health report, and the
// §6.2 incident-detection result holds within tolerance under realistic
// (≤1%) loss and reordering. Plus unit coverage of the fault-spec grammar,
// the quarantine primitives, and the sanitization boundaries.
#include "behaviot/chaos/fault_injector.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <numeric>
#include <sstream>

#include "behaviot/analysis/alert_report.hpp"
#include "behaviot/core/deviation_engine.hpp"
#include "behaviot/core/pipeline.hpp"
#include "behaviot/core/serialize.hpp"
#include "behaviot/flow/assembler.hpp"
#include "behaviot/ml/dataset.hpp"
#include "behaviot/net/pcap.hpp"
#include "behaviot/obs/export.hpp"
#include "behaviot/obs/health.hpp"
#include "behaviot/runtime/runtime.hpp"

namespace behaviot {
namespace {

using chaos::FaultInjector;
using chaos::FaultSpec;

// ---------------------------------------------------------------------------
// Fault-spec grammar.

TEST(ChaosSpec, ParsesEveryKey) {
  const FaultSpec s = FaultSpec::parse(
      "drop=0.01,dup=0.02,reorder=0.03,regress=0.04,dnsloss=0.05,flap=0.06,"
      "truncate=0.07,nan=0.08,inf=0.09,throw=0.1,skew=-250,seed=42");
  EXPECT_DOUBLE_EQ(s.drop, 0.01);
  EXPECT_DOUBLE_EQ(s.dup, 0.02);
  EXPECT_DOUBLE_EQ(s.reorder, 0.03);
  EXPECT_DOUBLE_EQ(s.regress, 0.04);
  EXPECT_DOUBLE_EQ(s.dns_loss, 0.05);
  EXPECT_DOUBLE_EQ(s.flap, 0.06);
  EXPECT_DOUBLE_EQ(s.truncate, 0.07);
  EXPECT_DOUBLE_EQ(s.nan, 0.08);
  EXPECT_DOUBLE_EQ(s.inf, 0.09);
  EXPECT_DOUBLE_EQ(s.throw_p, 0.1);
  EXPECT_DOUBLE_EQ(s.skew_ppm, -250.0);
  EXPECT_EQ(s.seed, 42u);
  EXPECT_TRUE(s.any_packet_faults());
  EXPECT_TRUE(s.any_feature_faults());
  EXPECT_TRUE(s.enabled());
}

TEST(ChaosSpec, RejectsUnknownKeyListingValidOnes) {
  try {
    (void)FaultSpec::parse("drop=0.1,jitter=0.5");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("jitter"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("valid:"), std::string::npos);
  }
}

TEST(ChaosSpec, RejectsOutOfRangeAndMalformedValues) {
  EXPECT_THROW((void)FaultSpec::parse("drop=1.5"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("drop=-0.1"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("drop=abc"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("drop=0.1x"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("drop"), std::invalid_argument);
}

TEST(ChaosSpec, EmptySpecIsDisabledAndTrailingCommasTolerated) {
  const FaultSpec empty = chaos::parse_chaos_spec("");
  EXPECT_FALSE(empty.enabled());
  const FaultSpec s = chaos::parse_chaos_spec("drop=0.5,,");
  EXPECT_DOUBLE_EQ(s.drop, 0.5);
}

TEST(ChaosSpec, SummaryListsOnlyNonZeroFields) {
  const std::string s = FaultSpec::parse("nan=0.25,seed=9").summary();
  EXPECT_NE(s.find("nan=0.25"), std::string::npos);
  EXPECT_NE(s.find("seed=9"), std::string::npos);
  EXPECT_EQ(s.find("drop"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Health registry semantics.

TEST(Health, StateEscalatesAndNeverDowngrades) {
  obs::health().reset();
  obs::health().heartbeat("stage.a");
  auto snap = obs::health().snapshot();
  ASSERT_NE(snap.find("stage.a"), nullptr);
  EXPECT_EQ(snap.find("stage.a")->state, obs::ComponentState::kHealthy);
  EXPECT_EQ(snap.overall(), obs::ComponentState::kHealthy);

  obs::health().degrade("stage.a", "lost-things:3");
  obs::health().degrade("stage.a", "lost-things:3");  // dedup, +1 incident
  obs::health().heartbeat("stage.a");                 // no downgrade
  snap = obs::health().snapshot();
  EXPECT_EQ(snap.find("stage.a")->state, obs::ComponentState::kDegraded);
  ASSERT_EQ(snap.find("stage.a")->reasons.size(), 1u);
  EXPECT_EQ(snap.find("stage.a")->incidents, 2u);

  obs::health().quarantine("stage.a", "dev:grp", "it threw");
  obs::health().degrade("stage.a", "later");  // quarantine sticks
  snap = obs::health().snapshot();
  EXPECT_EQ(snap.find("stage.a")->state, obs::ComponentState::kQuarantined);
  ASSERT_EQ(snap.find("stage.a")->quarantined.size(), 1u);
  EXPECT_EQ(snap.find("stage.a")->quarantined[0].key, "dev:grp");
  EXPECT_EQ(snap.overall(), obs::ComponentState::kQuarantined);

  obs::health().reset();
  EXPECT_TRUE(obs::health().snapshot().empty());
}

TEST(Health, SnapshotIsSortedForDeterministicRendering) {
  obs::health().reset();
  obs::health().heartbeat("zeta");
  obs::health().heartbeat("alpha");
  obs::health().quarantine("mid", "k2", "r");
  obs::health().quarantine("mid", "k1", "r");
  const auto snap = obs::health().snapshot();
  ASSERT_EQ(snap.components.size(), 3u);
  EXPECT_EQ(snap.components[0].component, "alpha");
  EXPECT_EQ(snap.components[1].component, "mid");
  EXPECT_EQ(snap.components[2].component, "zeta");
  EXPECT_EQ(snap.components[1].quarantined[0].key, "k1");
  const std::string json = obs::health_to_json(snap);
  EXPECT_NE(json.find("\"overall\""), std::string::npos);
  const std::string table = obs::render_health_table(snap);
  EXPECT_NE(table.find("quarantined"), std::string::npos);
  obs::health().reset();
}

// ---------------------------------------------------------------------------
// Sanitization boundaries.

TEST(Sanitize, NanAndInfCellsAreClampedInPlace) {
  std::vector<double> row{std::numeric_limits<double>::quiet_NaN(), 1.5,
                          std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity()};
  EXPECT_EQ(sanitize_features(std::span<double>(row)), 3u);
  EXPECT_DOUBLE_EQ(row[0], 0.0);
  EXPECT_DOUBLE_EQ(row[1], 1.5);
  EXPECT_DOUBLE_EQ(row[2], 1e12);
  EXPECT_DOUBLE_EQ(row[3], -1e12);
  EXPECT_EQ(sanitize_features(std::span<double>(row)), 0u);
}

TEST(Sanitize, CorruptedDatasetBecomesFiniteAgain) {
  Dataset ds;
  for (int i = 0; i < 64; ++i) {
    ds.add(std::vector<double>(8, static_cast<double>(i)), i % 3);
  }
  FaultInjector inj(FaultSpec::parse("nan=0.4,inf=0.4,seed=3"));
  inj.corrupt(ds);
  EXPECT_GT(inj.stats().features_nan.load() + inj.stats().features_inf.load(),
            0u);
  const std::size_t fixed = sanitize(ds);
  EXPECT_EQ(fixed, inj.stats().features_nan.load() +
                       inj.stats().features_inf.load());
  for (const auto& row : ds.X) {
    for (double v : row) EXPECT_TRUE(std::isfinite(v));
  }
}

// ---------------------------------------------------------------------------
// Quarantine primitive.

TEST(TryMap, IsolatesThrowingItemsAndKeepsAlignment) {
  std::vector<int> items(64);
  std::iota(items.begin(), items.end(), 0);
  const auto out = runtime::parallel_try_map(items, [](int v) -> int {
    if (v % 3 == 0) throw std::runtime_error("boom " + std::to_string(v));
    return v * 10;
  });
  ASSERT_EQ(out.size(), items.size());
  for (int v : items) {
    const auto& r = out[static_cast<std::size_t>(v)];
    if (v % 3 == 0) {
      EXPECT_FALSE(r.ok());
      EXPECT_EQ(r.error, "boom " + std::to_string(v));
    } else {
      ASSERT_TRUE(r.ok());
      EXPECT_EQ(*r, v * 10);
    }
  }
}

// ---------------------------------------------------------------------------
// Per-flow fault decisions.

FlowRecord flow_with_port(std::uint16_t src_port) {
  FlowRecord f;
  f.device = 7;
  f.tuple = {{Ipv4Addr(192, 168, 1, 7), src_port},
             {Ipv4Addr(54, 1, 2, 3), 443},
             Transport::kTcp};
  f.start = Timestamp(1'000'000);
  f.end = Timestamp(2'000'000);
  return f;
}

TEST(Chaos, FlowFaultDecisionsAreDeterministicAndDisjoint) {
  FaultInjector inj(FaultSpec::parse("nan=0.5,inf=0.5,seed=11"));
  FaultInjector off(FaultSpec{});
  std::size_t nans = 0;
  std::size_t infs = 0;
  for (std::uint16_t port = 40000; port < 40200; ++port) {
    const FlowRecord f = flow_with_port(port);
    const bool n = inj.flow_fault_fires(f, "nan");
    const bool i = inj.flow_fault_fires(f, "inf");
    // nan + inf partition [0,1): exactly one fires at rates 0.5/0.5.
    EXPECT_NE(n, i);
    // Decisions are a pure function of the flow content.
    EXPECT_EQ(n, inj.flow_fault_fires(f, "nan"));
    EXPECT_FALSE(off.flow_fault_fires(f, "nan"));
    EXPECT_FALSE(off.flow_fault_fires(f, "throw"));
    nans += n ? 1 : 0;
    infs += i ? 1 : 0;
  }
  // Rates are respected roughly (200 draws at p=0.5 each).
  EXPECT_GT(nans, 60u);
  EXPECT_GT(infs, 60u);
}

TEST(Chaos, OnlyOneInjectorMayArmFeatureChaos) {
  FaultInjector a(FaultSpec::parse("nan=0.1"));
  FaultInjector b(FaultSpec::parse("inf=0.1"));
  a.arm_feature_chaos();
  a.arm_feature_chaos();  // re-arming the same injector is a no-op
  EXPECT_THROW(b.arm_feature_chaos(), std::logic_error);
  a.disarm_feature_chaos();
  b.arm_feature_chaos();
  b.disarm_feature_chaos();
  obs::health().reset();
}

// ---------------------------------------------------------------------------
// Assembler tolerance of non-monotonic timestamps.

Packet assembler_packet(std::int64_t us) {
  Packet p;
  p.ts = Timestamp(us);
  p.tuple = {{Ipv4Addr(192, 168, 1, 7), 40000},
             {Ipv4Addr(54, 1, 2, 3), 443},
             Transport::kTcp};
  p.size = 100;
  p.dir = Direction::kOutbound;
  p.device = 7;
  return p;
}

TEST(Assembler, ClampsBackwardsTimestampsAndReportsHealth) {
  obs::health().reset();
  DomainResolver resolver;
  const FlowAssembler assembler;
  // The third packet regresses 800 ms — beyond the 100 ms tolerance — and
  // must be clamped to the running max instead of fracturing the flow.
  const std::vector<Packet> packets{assembler_packet(0),
                                    assembler_packet(1'000'000),
                                    assembler_packet(200'000),
                                    assembler_packet(1'100'000)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets.size(), 4u);
  EXPECT_EQ(flows[0].start, Timestamp(0));
  EXPECT_EQ(flows[0].end, Timestamp(1'100'000));
  for (std::size_t i = 1; i < flows[0].packets.size(); ++i) {
    EXPECT_GE(flows[0].packets[i].ts, flows[0].packets[i - 1].ts);
  }
  // The input vector is untouched (clamping happens on a side copy).
  EXPECT_EQ(packets[2].ts, Timestamp(200'000));
  const auto snap = obs::health().snapshot();
  const auto* asm_health = snap.find("flow.assembler");
  ASSERT_NE(asm_health, nullptr);
  EXPECT_EQ(asm_health->state, obs::ComponentState::kDegraded);
  ASSERT_FALSE(asm_health->reasons.empty());
  EXPECT_EQ(asm_health->reasons[0].rfind("nonmonotonic-ts:", 0), 0u);
  obs::health().reset();
}

TEST(Assembler, SmallRegressionsWithinToleranceAreNotReported) {
  obs::health().reset();
  DomainResolver resolver;
  const FlowAssembler assembler;
  // 50 ms backwards is ordinary capture jitter, not a fault.
  const std::vector<Packet> packets{assembler_packet(0),
                                    assembler_packet(1'000'000),
                                    assembler_packet(950'000)};
  (void)assembler.assemble(packets, resolver);
  const auto snap = obs::health().snapshot();
  const auto* asm_health = snap.find("flow.assembler");
  ASSERT_NE(asm_health, nullptr);
  for (const std::string& r : asm_health->reasons) {
    EXPECT_EQ(r.rfind("nonmonotonic-ts:", 0), std::string::npos) << r;
  }
  obs::health().reset();
}

// ---------------------------------------------------------------------------
// Health embedding in exports and alert reports.

TEST(Export, HealthTravelsWithMetricsAndAlerts) {
  obs::health().reset();
  obs::health().degrade("flow.assembler", "nonmonotonic-ts:5");
  obs::health().quarantine("periodic.infer", "cam:api.example.com|TLS",
                           "kmeans blew up");
  const auto snap = obs::health().snapshot();

  const std::string json = obs::to_json(obs::MetricsSnapshot{}, snap);
  EXPECT_NE(json.find("\"health\""), std::string::npos);
  EXPECT_NE(json.find("periodic.infer"), std::string::npos);

  const std::string prom = obs::to_prometheus(obs::MetricsSnapshot{}, snap);
  EXPECT_NE(prom.find("behaviot_component_health{component=\"flow_assembler\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("behaviot_component_health{component=\"periodic_infer\"} 2"),
            std::string::npos);

  // Alerts document embeds the snapshot, and readers that predate the field
  // still round-trip the alerts themselves.
  const std::string doc = alerts_to_json({}, &snap);
  EXPECT_NE(doc.find("\"health\""), std::string::npos);
  EXPECT_TRUE(alerts_from_json(doc).empty());
  obs::health().reset();
}

// ---------------------------------------------------------------------------
// Faulted captures still ingest under both parse policies.

TEST(Chaos, FaultedCaptureSurvivesStrictAndLenientIngest) {
  auto capture = testbed::Datasets::idle(17, /*days=*/0.02);
  FaultInjector inj(
      FaultSpec::parse("truncate=0.8,drop=0.1,dup=0.1,reorder=0.1,seed=4"));
  inj.apply(capture);
  EXPECT_GT(inj.stats().payloads_truncated.load(), 0u);
  const auto bytes = serialize_pcap(capture.packets);
  for (const ParsePolicy policy :
       {ParsePolicy::kStrict, ParsePolicy::kLenient}) {
    const auto result = parse_pcap(bytes, policy);
    EXPECT_EQ(result.packets.size(), capture.packets.size());
  }
  obs::health().reset();
}

// ---------------------------------------------------------------------------
// The differential suite proper: shared clean fixtures, then every fault
// class through the full train → classify → score chain.

class ChaosPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    idle_ = new testbed::GeneratedCapture(testbed::Datasets::idle(91, 0.5));
    activity_ =
        new testbed::GeneratedCapture(testbed::Datasets::activity(92, 4));
    routine_ = new testbed::GeneratedCapture(
        testbed::Datasets::routine_week(93, 1.0));
    pipeline_ = new Pipeline();
    models_ = new BehaviorModelSet(train_clean());
  }

  static void TearDownTestSuite() {
    delete models_;
    delete pipeline_;
    delete routine_;
    delete activity_;
    delete idle_;
    obs::health().reset();
  }

  static BehaviorModelSet train_clean() {
    DomainResolver resolver;
    return pipeline_->train(pipeline_->to_flows(*idle_, resolver), 43200.0,
                            pipeline_->to_flows(*activity_, resolver),
                            pipeline_->to_flows(*routine_, resolver));
  }

  /// Full train → classify → score chain with `injector` applied to every
  /// capture (and armed for feature faults). Returns the injected count.
  static std::uint64_t run_chain(FaultInjector& injector) {
    testbed::GeneratedCapture idle = *idle_;
    testbed::GeneratedCapture activity = *activity_;
    testbed::GeneratedCapture routine = *routine_;
    injector.apply(idle);
    injector.apply(activity);
    injector.apply(routine);
    injector.arm_feature_chaos();

    DomainResolver resolver;
    const BehaviorModelSet trained = pipeline_->train(
        pipeline_->to_flows(idle, resolver), 43200.0,
        pipeline_->to_flows(activity, resolver),
        pipeline_->to_flows(routine, resolver));

    const auto flows = pipeline_->to_flows(routine, resolver);
    (void)pipeline_->classify(flows, trained);

    DeviationEngine engine(trained);
    auto day = testbed::Datasets::uncontrolled_day(1, 94);
    injector.apply(day);
    (void)engine.process_window(day);

    injector.disarm_feature_chaos();
    return injector.stats().total();
  }

  static testbed::GeneratedCapture* idle_;
  static testbed::GeneratedCapture* activity_;
  static testbed::GeneratedCapture* routine_;
  static Pipeline* pipeline_;
  static BehaviorModelSet* models_;
};

testbed::GeneratedCapture* ChaosPipelineTest::idle_ = nullptr;
testbed::GeneratedCapture* ChaosPipelineTest::activity_ = nullptr;
testbed::GeneratedCapture* ChaosPipelineTest::routine_ = nullptr;
Pipeline* ChaosPipelineTest::pipeline_ = nullptr;
BehaviorModelSet* ChaosPipelineTest::models_ = nullptr;

TEST_F(ChaosPipelineTest, EveryFaultClassSurvivesTrainClassifyScore) {
  const char* kSpecs[] = {
      "drop=0.05",   "dup=0.05",   "reorder=0.05", "regress=0.02",
      "dnsloss=0.5", "flap=0.5",   "truncate=0.5", "skew=250",
      "nan=0.1",     "inf=0.1",    "throw=0.05",
  };
  for (const char* spec : kSpecs) {
    SCOPED_TRACE(spec);
    obs::health().reset();
    FaultInjector injector(
        FaultSpec::parse(std::string(spec) + ",seed=7"));
    std::uint64_t injected = 0;
    ASSERT_NO_THROW(injected = run_chain(injector)) << spec;
    EXPECT_GT(injected, 0u) << spec;
    // The degradation must be visible: at minimum the injector reported
    // itself, and the run cannot claim to be fully healthy.
    const auto snap = obs::health().snapshot();
    EXPECT_NE(snap.find("chaos.injector"), nullptr) << spec;
    EXPECT_NE(snap.overall(), obs::ComponentState::kHealthy) << spec;
  }
  obs::health().reset();
}

TEST_F(ChaosPipelineTest, DisabledChaosIsByteIdentical) {
  // A zero spec must leave captures untouched and models byte-for-byte
  // identical — chaos support cannot tax the non-chaos path.
  FaultInjector off(FaultSpec{});
  testbed::GeneratedCapture idle = *idle_;
  off.apply(idle);
  off.arm_feature_chaos();  // no-op for a spec with no feature faults
  const BehaviorModelSet retrained = train_clean();
  off.disarm_feature_chaos();

  std::ostringstream a;
  std::ostringstream b;
  save_models(a, *models_);
  save_models(b, retrained);
  EXPECT_EQ(a.str(), b.str());
  EXPECT_EQ(off.stats().total(), 0u);
}

TEST_F(ChaosPipelineTest, OutageDetectionSurvivesOnePercentLossAndReorder) {
  // §6.2: the day-30 network outage fires periodic alerts. Realistic capture
  // imperfections — ≤1% loss and reordering — must not mask the incident.
  const auto periodic_alerts = [&](DeviationEngine& engine,
                                   FaultInjector* injector) {
    auto quiet = testbed::Datasets::uncontrolled_day(29, 94);
    auto outage = testbed::Datasets::uncontrolled_day(30, 94);
    if (injector != nullptr) {
      injector->apply(quiet);
      injector->apply(outage);
    }
    (void)engine.process_window(quiet);
    const auto alerts = engine.process_window(outage);
    std::size_t periodic = 0;
    for (const auto& a : alerts) {
      periodic += a.source == DeviationSource::kPeriodic ? 1 : 0;
    }
    return periodic;
  };

  DeviationEngine clean_engine(*models_);
  const std::size_t baseline = periodic_alerts(clean_engine, nullptr);
  EXPECT_GT(baseline, 3u);

  FaultInjector injector(FaultSpec::parse("drop=0.01,reorder=0.01,seed=5"));
  DeviationEngine chaos_engine(*models_);
  const std::size_t under_chaos = periodic_alerts(chaos_engine, &injector);
  EXPECT_GT(injector.stats().packets_dropped.load(), 0u);
  EXPECT_GT(under_chaos, 3u);
  // Within tolerance of the clean run: the incident stays the dominant
  // signal, not an artifact drowned by capture noise.
  EXPECT_GE(under_chaos * 2, baseline);
  obs::health().reset();
}

}  // namespace
}  // namespace behaviot
