// Parallel runtime: primitive correctness (chunking, exceptions, nesting)
// and the pipeline-wide determinism guarantee — training with 1, 2, and
// hardware-concurrency threads must serialize to byte-identical models.
#include "behaviot/runtime/runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "behaviot/core/pipeline.hpp"
#include "behaviot/core/serialize.hpp"

namespace behaviot {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  runtime::ThreadPool pool({.threads = 4});
  std::vector<std::atomic<int>> hits(10'000);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelFor, EmptyAndSingleElementRanges) {
  runtime::ThreadPool pool({.threads = 4});
  int calls = 0;
  pool.parallel_for(5, 5, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.parallel_for(7, 8, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 7u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, SerialPoolRunsInline) {
  runtime::ThreadPool pool({.threads = 1});
  EXPECT_EQ(pool.threads(), 1u);
  std::vector<int> order;
  pool.parallel_for(0, 100, [&](std::size_t i) {
    order.push_back(static_cast<int>(i));  // no race: must be inline
  });
  ASSERT_EQ(order.size(), 100u);
  EXPECT_TRUE(std::is_sorted(order.begin(), order.end()));
}

TEST(ParallelFor, PropagatesException) {
  runtime::ThreadPool pool({.threads = 4});
  EXPECT_THROW(pool.parallel_for(0, 1000,
                                 [&](std::size_t i) {
                                   if (i == 537) {
                                     throw std::runtime_error("index 537");
                                   }
                                 }),
               std::runtime_error);
  try {
    pool.parallel_for(0, 1000, [&](std::size_t i) {
      if (i == 537) throw std::runtime_error("index 537");
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "index 537");
  }
  // The pool survives a failed job and runs subsequent jobs normally.
  std::atomic<int> total{0};
  pool.parallel_for(0, 64, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, NestedCallsRunSeriallyWithoutDeadlock) {
  runtime::ThreadPool pool({.threads = 4});
  std::vector<std::atomic<int>> hits(32 * 32);
  pool.parallel_for(0, 32, [&](std::size_t outer) {
    // Inner call re-enters the same pool from a parallel region; it must
    // degrade to inline execution instead of deadlocking on the workers.
    pool.parallel_for(0, 32, [&](std::size_t inner) {
      hits[outer * 32 + inner].fetch_add(1);
    });
  });
  for (std::size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ParallelMap, AlignsResultsWithInput) {
  runtime::ThreadPool pool({.threads = 3});
  std::vector<int> items(1000);
  std::iota(items.begin(), items.end(), 0);
  const auto squares =
      pool.parallel_map(items, [](int v) { return v * v; });
  ASSERT_EQ(squares.size(), items.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(squares[i], items[i] * items[i]);
  }
}

TEST(GlobalPool, SetThreadsRebuildsPool) {
  runtime::set_global_threads(2);
  EXPECT_EQ(runtime::global_threads(), 2u);
  std::atomic<int> total{0};
  runtime::parallel_for(0, 100, [&](std::size_t) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 100);
  runtime::set_global_threads(1);
  EXPECT_EQ(runtime::global_threads(), 1u);
}

/// Serializes the full trained model set for one thread count.
std::string train_and_serialize(std::size_t threads) {
  runtime::set_global_threads(threads);
  Pipeline pipeline;
  DomainResolver resolver;
  const auto idle = testbed::Datasets::idle(71, /*days=*/0.5);
  const auto activity = testbed::Datasets::activity(72, /*repetitions=*/4);
  const auto routine = testbed::Datasets::routine_week(73, /*days=*/1.0);
  const auto idle_flows = pipeline.to_flows(idle, resolver);
  const auto activity_flows = pipeline.to_flows(activity, resolver);
  const auto routine_flows = pipeline.to_flows(routine, resolver);
  const auto models = pipeline.train(idle_flows, 43200.0, activity_flows,
                                     routine_flows);

  // Fold classification outcomes in as well: kinds/labels/merged events must
  // also be invariant, not just what save_models covers.
  const auto classified = pipeline.classify(routine_flows, models);
  std::ostringstream os;
  save_models(os, models);
  os << "classified";
  for (const EventKind k : classified.kinds) os << ' ' << static_cast<int>(k);
  for (const auto& label : classified.labels) os << ' ' << label;
  os << ' ' << classified.periodic_via_timer << ' '
     << classified.periodic_via_cluster << ' '
     << classified.user_events.size();
  return os.str();
}

TEST(ThreadInvariance, TrainAndClassifyAreBitIdenticalAcrossThreadCounts) {
  const std::string serial = train_and_serialize(1);
  ASSERT_FALSE(serial.empty());
  const std::string two_threads = train_and_serialize(2);
  EXPECT_EQ(serial, two_threads);
  const std::size_t hw = runtime::default_threads();
  if (hw > 2) {
    const std::string hw_threads = train_and_serialize(hw);
    EXPECT_EQ(serial, hw_threads);
  }
  runtime::set_global_threads(0);  // restore default for any later suites
}

}  // namespace
}  // namespace behaviot
