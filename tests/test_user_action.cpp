#include "behaviot/ml/user_action_model.hpp"

#include <gtest/gtest.h>

#include "behaviot/flow/assembler.hpp"
#include "behaviot/ml/metrics.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

struct ActivityFixture {
  std::vector<FlowRecord> flows;

  explicit ActivityFixture(std::uint64_t seed = 51, std::size_t reps = 8) {
    const auto capture = testbed::Datasets::activity(seed, reps);
    DomainResolver resolver;
    testbed::configure_resolver(resolver, capture);
    FlowAssembler assembler;
    flows = assembler.assemble(capture.packets, resolver);
    testbed::apply_ground_truth(flows, capture.truths);
  }
};

TEST(UserActionModels, TrainsOneClassifierPerDeviceActivity) {
  const ActivityFixture fixture;
  const auto models = UserActionModels::train(fixture.flows, {});
  // 31 activity devices, 2-4 commands each, aggregated pairs share one
  // classifier: expect on the order of the paper's 57 models.
  EXPECT_GT(models.size(), 25u);
  EXPECT_LT(models.size(), 120u);
}

TEST(UserActionModels, ClassifiesHeldOutUserFlows) {
  const ActivityFixture train(52, 8);
  const auto models = UserActionModels::train(train.flows, {});

  const ActivityFixture test(53, 3);  // different seed = unseen traffic
  BinaryCounts counts;
  std::vector<std::string> truth_labels, predicted_labels;
  for (const FlowRecord& f : test.flows) {
    const auto prediction = models.classify(f);
    if (f.truth == EventKind::kUser) {
      if (prediction.is_user_event()) {
        ++counts.true_positive;
        truth_labels.push_back(f.truth_label);
        predicted_labels.push_back(prediction.activity);
      } else {
        ++counts.false_negative;
      }
    } else {
      if (prediction.is_user_event()) {
        ++counts.false_positive;
      } else {
        ++counts.true_negative;
      }
    }
  }
  // Paper: 98.9% accuracy, FPR 0.09%. Slack for the small fixture, and the
  // SmartThings Hub quirk inflates FNR by design.
  EXPECT_GT(multiclass_accuracy(truth_labels, predicted_labels), 0.93);
  EXPECT_LT(counts.false_positive_rate(), 0.02);
  EXPECT_LT(counts.false_negative_rate(), 0.25);
}

TEST(UserActionModels, SmartThingsHubEventsAreMissedByDesign) {
  // §5.1: the hub's user events are indistinguishable from its background
  // traffic → high FNR for that one device.
  const ActivityFixture train(54, 8);
  // Include idle background so the classifier knows the heartbeat shape.
  const auto idle = testbed::Datasets::idle(54, 0.2);
  DomainResolver resolver;
  testbed::configure_resolver(resolver, idle);
  FlowAssembler assembler;
  auto idle_flows = assembler.assemble(idle.packets, resolver);
  testbed::apply_ground_truth(idle_flows, idle.truths);

  const auto models = UserActionModels::train(train.flows, idle_flows);
  const auto* hub = testbed::Catalog::standard().by_name("smartthings_hub");

  const ActivityFixture test(55, 4);
  std::size_t hub_events = 0, hub_detected = 0;
  for (const FlowRecord& f : test.flows) {
    if (f.device != hub->id || f.truth != EventKind::kUser) continue;
    ++hub_events;
    if (models.classify(f).is_user_event()) ++hub_detected;
  }
  ASSERT_GT(hub_events, 0u);
  // The majority of hub events are missed (paper: 71.88% FNR).
  EXPECT_LT(static_cast<double>(hub_detected) /
                static_cast<double>(hub_events),
            0.6);
}

TEST(UserActionModels, UnknownDeviceYieldsNoPrediction) {
  const ActivityFixture fixture(56, 4);
  const auto models = UserActionModels::train(fixture.flows, {});
  FlowRecord flow;
  flow.device = 9999;
  const auto prediction = models.classify(flow);
  EXPECT_FALSE(prediction.is_user_event());
  EXPECT_TRUE(models.activities_for(9999).empty());
}

TEST(UserActionModels, ActivitiesForListsTrainedLabels) {
  const ActivityFixture fixture(57, 4);
  const auto models = UserActionModels::train(fixture.flows, {});
  const auto* bulb = testbed::Catalog::standard().by_name("tplink_bulb");
  const auto activities = models.activities_for(bulb->id);
  EXPECT_GE(activities.size(), 3u);  // on, off, color, dim (some may merge)
}

TEST(UserActionModels, AggregatedLabelsPredictOnOff) {
  const ActivityFixture train(58, 8);
  const auto models = UserActionModels::train(train.flows, {});
  const auto* plug = testbed::Catalog::standard().by_name("tplink_plug");
  const ActivityFixture test(59, 2);
  for (const FlowRecord& f : test.flows) {
    if (f.device != plug->id || f.truth != EventKind::kUser) continue;
    const auto prediction = models.classify(f);
    if (prediction.is_user_event()) {
      EXPECT_EQ(prediction.activity, "tplink_plug:on_off");
    }
  }
}

TEST(UserActionModels, EmptyTrainingIsHarmless) {
  const auto models = UserActionModels::train({}, {});
  EXPECT_EQ(models.size(), 0u);
  FlowRecord flow;
  flow.device = 0;
  EXPECT_FALSE(models.classify(flow).is_user_event());
}

}  // namespace
}  // namespace behaviot
