#include "behaviot/analysis/characterize.hpp"

#include <gtest/gtest.h>

#include "behaviot/flow/assembler.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

struct Fixture {
  std::vector<FlowRecord> flows;
  PeriodicModelSet models;

  Fixture() {
    const auto idle = testbed::Datasets::idle(131, 0.6);
    DomainResolver resolver;
    testbed::configure_resolver(resolver, idle);
    FlowAssembler assembler;
    flows = assembler.assemble(idle.packets, resolver);
    testbed::apply_ground_truth(flows, idle.truths);
    models = PeriodicModelSet::infer(flows, 0.6 * 86400.0);
  }
};

const Fixture& fixture() {
  static const Fixture fx;
  return fx;
}

TEST(Characterize, CoversEveryCatalogDevice) {
  const auto devices = characterize_devices(
      fixture().models, fixture().flows, testbed::Catalog::standard(),
      PartyRegistry::standard());
  EXPECT_EQ(devices.size(), testbed::Catalog::standard().size());
}

TEST(Characterize, ModelCountsMatchModelSet) {
  const auto devices = characterize_devices(
      fixture().models, fixture().flows, testbed::Catalog::standard(),
      PartyRegistry::standard());
  std::size_t total = 0;
  for (const auto& c : devices) {
    total += c.periodic_models;
    EXPECT_EQ(c.periods.size(), c.periodic_models) << c.name;
    EXPECT_TRUE(std::is_sorted(c.periods.begin(), c.periods.end())) << c.name;
  }
  EXPECT_EQ(total, fixture().models.size());
}

TEST(Characterize, SpeakersOutModelHomeAutomation) {
  // The §6.1 complexity observation must be visible in the summaries.
  const auto devices = characterize_devices(
      fixture().models, fixture().flows, testbed::Catalog::standard(),
      PartyRegistry::standard());
  double speakers = 0, autos = 0;
  std::size_t n_speakers = 0, n_autos = 0;
  for (const auto& c : devices) {
    if (c.category == testbed::DeviceCategory::kSmartSpeaker) {
      speakers += static_cast<double>(c.periodic_models);
      ++n_speakers;
    } else if (c.category == testbed::DeviceCategory::kHomeAutomation) {
      autos += static_cast<double>(c.periodic_models);
      ++n_autos;
    }
  }
  EXPECT_GT(speakers / static_cast<double>(n_speakers),
            2.0 * autos / static_cast<double>(n_autos));
}

TEST(Characterize, PartySplitsAreCounted) {
  const auto devices = characterize_devices(
      fixture().models, fixture().flows, testbed::Catalog::standard(),
      PartyRegistry::standard());
  std::size_t first = 0, support = 0, third = 0;
  for (const auto& c : devices) {
    first += c.first_party_dests;
    support += c.support_party_dests;
    third += c.third_party_dests;
  }
  EXPECT_GT(first, 0u);
  EXPECT_GT(support, 0u);
  EXPECT_GT(third, 0u);
  EXPECT_GT(first, third);  // Table 5 shape: first party dominates
}

TEST(Characterize, TrafficMixIsTracked) {
  const auto devices = characterize_devices(
      fixture().models, fixture().flows, testbed::Catalog::standard(),
      PartyRegistry::standard());
  for (const auto& c : devices) {
    if (c.total_flows() == 0) continue;
    EXPECT_EQ(c.user_flows, 0u) << c.name;  // idle traffic has no user flows
    EXPECT_GT(c.periodic_flows, c.aperiodic_flows) << c.name;
  }
}

TEST(Characterize, RenderingContainsDevicesAndPeriods) {
  const auto devices = characterize_devices(
      fixture().models, fixture().flows, testbed::Catalog::standard(),
      PartyRegistry::standard());
  const std::string text = render_characterization(devices);
  EXPECT_NE(text.find("TPLink Plug"), std::string::npos);
  EXPECT_NE(text.find("Echo Show5"), std::string::npos);
  EXPECT_NE(text.find("periodic models:"), std::string::npos);
  EXPECT_NE(text.find("first /"), std::string::npos);
}

TEST(Characterize, EmptyInputsYieldZeroedEntries) {
  const PeriodicModelSet empty;
  const auto devices =
      characterize_devices(empty, {}, testbed::Catalog::standard(),
                           PartyRegistry::standard());
  for (const auto& c : devices) {
    EXPECT_EQ(c.periodic_models, 0u);
    EXPECT_EQ(c.total_flows(), 0u);
  }
}

}  // namespace
}  // namespace behaviot
