#include "behaviot/net/dns.hpp"

#include <gtest/gtest.h>

namespace behaviot {
namespace {

TEST(Dns, ResponseRoundTrip) {
  const Ipv4Addr addr(54, 1, 2, 3);
  const auto payload = make_dns_response(0x1234, "api.example.com", addr, 600);
  const auto binding = parse_dns_response(payload);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->name, "api.example.com");
  EXPECT_EQ(binding->address, addr);
  EXPECT_EQ(binding->ttl, 600u);
}

TEST(Dns, NamesAreLowercasedOnParse) {
  const auto payload =
      make_dns_response(1, "API.Example.COM", Ipv4Addr(1, 2, 3, 4));
  const auto binding = parse_dns_response(payload);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->name, "api.example.com");
}

TEST(Dns, QueryIsNotParsedAsResponse) {
  const auto query = make_dns_query(7, "example.com");
  EXPECT_FALSE(parse_dns_response(query).has_value());
}

TEST(Dns, CompressionPointerIsFollowed) {
  // make_dns_response emits the answer name as a pointer to offset 12; the
  // round-trip test above covers it, but verify the pointer byte is present.
  const auto payload = make_dns_response(1, "x.y", Ipv4Addr(9, 9, 9, 9));
  bool has_pointer = false;
  for (std::size_t i = 0; i + 1 < payload.size(); ++i) {
    if (payload[i] == 0xc0 && payload[i + 1] == 12) has_pointer = true;
  }
  EXPECT_TRUE(has_pointer);
}

TEST(Dns, SingleLabelName) {
  const auto payload = make_dns_response(1, "localhost", Ipv4Addr(127, 0, 0, 1));
  const auto binding = parse_dns_response(payload);
  ASSERT_TRUE(binding.has_value());
  EXPECT_EQ(binding->name, "localhost");
}

TEST(Dns, TruncatedPayloadIsRejected) {
  auto payload = make_dns_response(1, "api.example.com", Ipv4Addr(1, 2, 3, 4));
  payload.resize(payload.size() - 6);  // chop the A record data
  EXPECT_FALSE(parse_dns_response(payload).has_value());
}

TEST(Dns, TooShortPayloadIsRejected) {
  EXPECT_FALSE(parse_dns_response({0x01, 0x02, 0x03}).has_value());
}

TEST(Dns, ZeroAnswerResponseIsRejected) {
  auto query = make_dns_query(7, "example.com");
  query[2] = 0x81;  // set QR bit: a response with ANCOUNT=0
  query[3] = 0x80;
  EXPECT_FALSE(parse_dns_response(query).has_value());
}

TEST(Dns, PointerLoopDoesNotHang) {
  // Craft a response whose name is a pointer to itself.
  std::vector<std::uint8_t> evil = {
      0x00, 0x01, 0x81, 0x80, 0x00, 0x00, 0x00, 0x01, 0x00, 0x00, 0x00, 0x00,
      0xc0, 0x0c,              // answer name: pointer to itself
      0x00, 0x01, 0x00, 0x01,  // TYPE A, CLASS IN
      0x00, 0x00, 0x01, 0x2c,  // TTL
      0x00, 0x04, 1, 2, 3, 4};
  EXPECT_FALSE(parse_dns_response(evil).has_value());
}

TEST(Dns, DifferentTransactionIds) {
  const auto a = make_dns_query(0x1111, "a.com");
  const auto b = make_dns_query(0x2222, "a.com");
  EXPECT_NE(a, b);
  EXPECT_EQ(a.size(), b.size());
}

}  // namespace
}  // namespace behaviot
