#include "behaviot/pfsm/pfsm.hpp"

#include <gtest/gtest.h>

namespace behaviot {
namespace {

/// INITIAL -> on -> off -> TERMINAL, with a 30% on->on self-ish alternative.
Pfsm simple_machine() {
  Pfsm m;
  const int on = m.add_state("plug:on");
  const int off = m.add_state("plug:off");
  m.add_transition(Pfsm::kInitial, on, 10);
  m.add_transition(on, off, 7);
  m.add_transition(on, on, 3);
  m.add_transition(off, Pfsm::kTerminal, 7);
  m.add_transition(on, Pfsm::kTerminal, 3);
  m.finalize();
  return m;
}

TEST(Pfsm, InitialAndTerminalExist) {
  const Pfsm m;
  EXPECT_EQ(m.num_states(), 2u);
  EXPECT_EQ(m.label(Pfsm::kInitial), "INITIAL");
  EXPECT_EQ(m.label(Pfsm::kTerminal), "TERMINAL");
}

TEST(Pfsm, TransitionProbabilitiesNormalizePerSource) {
  const Pfsm m = simple_machine();
  double on_out = 0.0;
  for (const auto& t : m.transitions()) {
    if (m.label(t.from) == "plug:on") on_out += t.probability;
  }
  EXPECT_NEAR(on_out, 1.0, 1e-9);
}

TEST(Pfsm, AcceptsObservedSequences) {
  const Pfsm m = simple_machine();
  const std::vector<std::string> ok{"plug:on", "plug:off"};
  EXPECT_TRUE(m.accepts(ok));
  const std::vector<std::string> ok2{"plug:on", "plug:on", "plug:off"};
  EXPECT_TRUE(m.accepts(ok2));
}

TEST(Pfsm, RejectsUnknownLabelOrBadOrder) {
  const Pfsm m = simple_machine();
  const std::vector<std::string> unknown{"camera:motion"};
  EXPECT_FALSE(m.accepts(unknown));
  const std::vector<std::string> bad_order{"plug:off", "plug:on"};
  EXPECT_FALSE(m.accepts(bad_order));  // off only reaches TERMINAL
}

TEST(Pfsm, EmptyTraceAcceptanceRequiresInitialToTerminalEdge) {
  const Pfsm m = simple_machine();
  EXPECT_FALSE(m.accepts(std::vector<std::string>{}));
  Pfsm direct;
  direct.add_transition(Pfsm::kInitial, Pfsm::kTerminal, 1);
  direct.finalize();
  EXPECT_TRUE(direct.accepts(std::vector<std::string>{}));
}

TEST(Pfsm, TraceProbabilityMatchesPathProduct) {
  const Pfsm m = simple_machine();
  // P(on|init) = 1, P(off|on) = 0.538.., P(term|off) = 1 with counts
  // 10/10, 7/13, 7/7 — smoothing shifts slightly; use tiny alpha.
  const std::vector<std::string> trace{"plug:on", "plug:off"};
  const double p = m.trace_probability(trace, /*alpha=*/1e-9);
  EXPECT_NEAR(p, 1.0 * (7.0 / 13.0) * 1.0, 1e-6);
}

TEST(Pfsm, SmoothedProbabilityPositiveForUnseenTrace) {
  const Pfsm m = simple_machine();
  const std::vector<std::string> unseen{"plug:off", "plug:off", "plug:on"};
  const double p = m.trace_probability(unseen, 0.01);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 0.05);
}

TEST(Pfsm, UnseenTraceScoresBelowSeenTrace) {
  const Pfsm m = simple_machine();
  const std::vector<std::string> seen{"plug:on", "plug:off"};
  const std::vector<std::string> unseen{"plug:off", "plug:on"};
  EXPECT_GT(m.trace_probability(seen), m.trace_probability(unseen));
}

TEST(Pfsm, ProbabilityDecreasesWithInjectedNovelEvents) {
  const Pfsm m = simple_machine();
  std::vector<std::string> trace{"plug:on", "plug:off"};
  double prev = m.trace_probability(trace);
  for (int i = 0; i < 3; ++i) {
    trace.insert(trace.begin() + 1, "ghost:event" + std::to_string(i));
    const double p = m.trace_probability(trace);
    EXPECT_LT(p, prev);
    prev = p;
  }
}

TEST(Pfsm, LabelBigramAggregation) {
  const Pfsm m = simple_machine();
  const auto stat = m.label_bigram("plug:on", "plug:off");
  EXPECT_EQ(stat.from_occurrences, 13u);
  EXPECT_NEAR(stat.probability, 7.0 / 13.0, 1e-9);
  const auto missing = m.label_bigram("plug:off", "plug:on");
  EXPECT_DOUBLE_EQ(missing.probability, 0.0);
}

TEST(Pfsm, LabelBigramsEnumeration) {
  const Pfsm m = simple_machine();
  const auto bigrams = m.label_bigrams();
  EXPECT_EQ(bigrams.count({"INITIAL", "plug:on"}), 1u);
  EXPECT_EQ(bigrams.count({"plug:off", "TERMINAL"}), 1u);
  EXPECT_NEAR(bigrams.at({"plug:on", "plug:on"}).probability, 3.0 / 13.0,
              1e-9);
}

TEST(Pfsm, StatesWithLabelFindsSplitStates) {
  Pfsm m;
  m.add_state("x");
  m.add_state("x");
  m.add_state("y");
  EXPECT_EQ(m.states_with_label("x").size(), 2u);
  EXPECT_EQ(m.states_with_label("y").size(), 1u);
  EXPECT_TRUE(m.states_with_label("z").empty());
}

TEST(Pfsm, DotExportContainsStatesAndEdges) {
  const Pfsm m = simple_machine();
  const std::string dot = m.to_dot();
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("plug:on"), std::string::npos);
  EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Pfsm, ProbabilityCappedAtOne) {
  Pfsm m;
  const int s = m.add_state("only");
  m.add_transition(Pfsm::kInitial, s, 1);
  m.add_transition(s, Pfsm::kTerminal, 1);
  m.finalize();
  const std::vector<std::string> trace{"only"};
  EXPECT_LE(m.trace_probability(trace, 0.5), 1.0);
}

}  // namespace
}  // namespace behaviot
