#include "behaviot/core/pipeline.hpp"

#include <gtest/gtest.h>

namespace behaviot {
namespace {

/// Shared small-scale trained pipeline (expensive: built once).
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pipeline_ = new Pipeline();
    resolver_ = new DomainResolver();
    const auto idle = testbed::Datasets::idle(71, /*days=*/1.0);
    const auto activity = testbed::Datasets::activity(72, /*repetitions=*/6);
    const auto routine = testbed::Datasets::routine_week(73, /*days=*/2.0);
    idle_flows_ = new auto(pipeline_->to_flows(idle, *resolver_));
    activity_flows_ = new auto(pipeline_->to_flows(activity, *resolver_));
    routine_flows_ = new auto(pipeline_->to_flows(routine, *resolver_));
    models_ = new BehaviorModelSet(pipeline_->train(
        *idle_flows_, 86400.0, *activity_flows_, *routine_flows_));
  }

  static void TearDownTestSuite() {
    delete models_;
    delete routine_flows_;
    delete activity_flows_;
    delete idle_flows_;
    delete resolver_;
    delete pipeline_;
  }

  static Pipeline* pipeline_;
  static DomainResolver* resolver_;
  static std::vector<FlowRecord>* idle_flows_;
  static std::vector<FlowRecord>* activity_flows_;
  static std::vector<FlowRecord>* routine_flows_;
  static BehaviorModelSet* models_;
};

Pipeline* PipelineTest::pipeline_ = nullptr;
DomainResolver* PipelineTest::resolver_ = nullptr;
std::vector<FlowRecord>* PipelineTest::idle_flows_ = nullptr;
std::vector<FlowRecord>* PipelineTest::activity_flows_ = nullptr;
std::vector<FlowRecord>* PipelineTest::routine_flows_ = nullptr;
BehaviorModelSet* PipelineTest::models_ = nullptr;

TEST_F(PipelineTest, FlowsCarryGroundTruthAndDomains) {
  ASSERT_FALSE(idle_flows_->empty());
  std::size_t annotated = 0;
  for (const FlowRecord& f : *idle_flows_) {
    EXPECT_NE(f.truth, EventKind::kUnknown);
    if (!f.domain.empty()) ++annotated;
  }
  // DNS bootstrap + SNI should annotate nearly everything.
  EXPECT_GT(static_cast<double>(annotated) /
                static_cast<double>(idle_flows_->size()),
            0.95);
}

TEST_F(PipelineTest, TrainsAllThreeModelFamilies) {
  EXPECT_GT(models_->periodic.size(), 250u);
  EXPECT_GT(models_->user_actions.size(), 20u);
  EXPECT_GT(models_->pfsm.num_states(), 10u);
  EXPECT_GT(models_->pfsm.num_transitions(), 20u);
  EXPECT_FALSE(models_->training_traces.empty());
  EXPECT_GT(models_->short_term.value(), 1.0);
}

TEST_F(PipelineTest, IdleCoverageMatchesPaperShape) {
  // Paper Table 2: 99.8% periodic coverage in idle. Allow slack for the
  // 1-day fixture (long periods lack cycles).
  EXPECT_GT(models_->periodic.stats().coverage(), 0.93);
}

TEST_F(PipelineTest, ClassifyPartitionsIdleTraffic) {
  const auto classified = pipeline_->classify(*idle_flows_, *models_);
  std::size_t periodic = 0, user = 0, aperiodic = 0;
  for (EventKind kind : classified.kinds) {
    periodic += kind == EventKind::kPeriodic ? 1 : 0;
    user += kind == EventKind::kUser ? 1 : 0;
    aperiodic += kind == EventKind::kAperiodic ? 1 : 0;
  }
  const auto total = static_cast<double>(idle_flows_->size());
  EXPECT_GT(static_cast<double>(periodic) / total, 0.9);
  // FPR on idle (§5.1: 0.09%): generous bound for the small fixture.
  EXPECT_LT(static_cast<double>(user) / total, 0.02);
  EXPECT_GT(classified.periodic_via_timer, classified.periodic_via_cluster);
}

TEST_F(PipelineTest, ClassifyRecoversRoutineUserEvents) {
  const auto classified = pipeline_->classify(*routine_flows_, *models_);
  EXPECT_FALSE(classified.user_events.empty());
  // Merged events should approximate the ground truth event count.
  std::size_t truth_events = 0;
  std::set<std::string> seen;
  for (const FlowRecord& f : *routine_flows_) {
    if (f.truth == EventKind::kUser) ++truth_events;
  }
  EXPECT_GT(truth_events, 0u);
  EXPECT_GT(classified.user_events.size(), truth_events / 4);
  EXPECT_LT(classified.user_events.size(), truth_events * 2);
}

TEST_F(PipelineTest, TracesRespectGapOption) {
  const auto classified = pipeline_->classify(*routine_flows_, *models_);
  const auto traces = pipeline_->traces_of(classified.user_events);
  ASSERT_FALSE(traces.empty());
  for (const EventTrace& trace : traces) {
    for (std::size_t i = 1; i < trace.size(); ++i) {
      EXPECT_LE(trace[i].ts - trace[i - 1].ts, kDefaultTraceGapUs);
    }
  }
}

TEST_F(PipelineTest, TrainingTracesAreAcceptedByPfsm) {
  // §5.2 property (i): 100% of training traces map to valid paths.
  for (const auto& labels : models_->training_traces) {
    EXPECT_TRUE(models_->pfsm.accepts(labels));
  }
}

TEST_F(PipelineTest, EventMergingCollapsesRelayFlows) {
  // Devices with a support relay emit 2 flows per event; merged events must
  // not double-count.
  const auto classified = pipeline_->classify(*routine_flows_, *models_);
  std::map<std::string, std::size_t> flow_count, event_count;
  for (std::size_t i = 0; i < routine_flows_->size(); ++i) {
    if (classified.kinds[i] == EventKind::kUser) {
      ++flow_count[classified.labels[i]];
    }
  }
  for (const UserEvent& e : classified.user_events) {
    ++event_count[e.label()];
  }
  for (const auto& [label, events] : event_count) {
    EXPECT_LE(events, flow_count[label]) << label;
  }
}

}  // namespace
}  // namespace behaviot
