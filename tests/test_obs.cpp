// Observability subsystem: registry semantics, disabled-mode no-ops, span
// nesting, thread safety under the runtime pool, exporter formats, and the
// end-to-end counter contract on a known synthetic capture.
#include "behaviot/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "behaviot/core/pipeline.hpp"
#include "behaviot/deviation/monitor.hpp"
#include "behaviot/net/pcap.hpp"
#include "behaviot/obs/export.hpp"
#include "behaviot/obs/span.hpp"
#include "behaviot/pfsm/synoptic.hpp"
#include "behaviot/runtime/runtime.hpp"

namespace behaviot {
namespace {

/// Every test runs with a freshly zeroed, enabled registry and leaves it
/// disabled (the library default) behind.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::set_enabled(true);
    obs::MetricsRegistry::global().reset_values();
  }
  void TearDown() override {
    obs::MetricsRegistry::set_enabled(false);
    obs::MetricsRegistry::global().reset_values();
  }
};

TEST_F(ObsTest, CounterAddsAndResets) {
  auto& c = obs::counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name -> same instrument; references stay stable across lookups.
  EXPECT_EQ(&obs::counter("test.counter"), &c);
  obs::MetricsRegistry::global().reset_values();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  auto& g = obs::gauge("test.gauge");
  g.set(0.25);
  EXPECT_DOUBLE_EQ(g.value(), 0.25);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.75);
  g.set(-1.0);
  EXPECT_DOUBLE_EQ(g.value(), -1.0);
}

TEST_F(ObsTest, HistogramBucketsUpperBoundInclusive) {
  const std::vector<double> bounds{1.0, 10.0};
  auto& h = obs::histogram("test.hist", bounds);
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper bound)
  h.observe(5.0);   // bucket 1
  h.observe(100.0); // +inf bucket
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 1u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  h.reset_value();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(0), 0u);
}

TEST_F(ObsTest, HistogramDefaultsToLatencyBounds) {
  auto& h = obs::histogram("test.hist_default");
  const auto def = obs::default_latency_bounds_ms();
  ASSERT_EQ(h.bounds().size(), def.size());
  for (std::size_t i = 0; i < def.size(); ++i) {
    EXPECT_DOUBLE_EQ(h.bounds()[i], def[i]);
  }
}

TEST_F(ObsTest, DisabledRegistryDropsEveryUpdate) {
  auto& c = obs::counter("test.disabled_counter");
  auto& g = obs::gauge("test.disabled_gauge");
  auto& h = obs::histogram("test.disabled_hist");
  obs::MetricsRegistry::set_enabled(false);
  c.add(7);
  g.set(3.0);
  h.observe(1.0);
  {
    obs::StageSpan span("test.disabled_span");
    EXPECT_TRUE(span.path().empty());
    EXPECT_DOUBLE_EQ(span.elapsed_ms(), 0.0);
  }
  obs::MetricsRegistry::set_enabled(true);
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(h.count(), 0u);
  const auto snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.histograms.count("span.test.disabled_span"), 0u);
}

TEST_F(ObsTest, SpansNestIntoSlashJoinedPaths) {
  {
    obs::StageSpan outer("outer");
    EXPECT_EQ(outer.path(), "outer");
    {
      obs::StageSpan inner("inner");
      EXPECT_EQ(inner.path(), "outer/inner");
    }
    // Sibling after the first child nests under the same parent again.
    obs::StageSpan sibling("sibling");
    EXPECT_EQ(sibling.path(), "outer/sibling");
  }
  obs::StageSpan top("top");
  EXPECT_EQ(top.path(), "top");

  const auto snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.histograms.at("span.outer").count, 1u);
  EXPECT_EQ(snap.histograms.at("span.outer/inner").count, 1u);
  EXPECT_EQ(snap.histograms.at("span.outer/sibling").count, 1u);
}

TEST_F(ObsTest, ConcurrentUpdatesFromPoolWorkersAreLossless) {
  auto& c = obs::counter("test.pool_counter");
  auto& h = obs::histogram("test.pool_hist", std::vector<double>{0.5});
  constexpr std::size_t kN = 20000;
  runtime::parallel_for(0, kN, [&](std::size_t i) {
    c.inc();
    h.observe(i % 2 == 0 ? 0.25 : 1.0);
  });
  EXPECT_EQ(c.value(), kN);
  EXPECT_EQ(h.count(), kN);
  EXPECT_EQ(h.bucket_count(0), kN / 2);
  EXPECT_EQ(h.bucket_count(1), kN / 2);
}

TEST_F(ObsTest, ConcurrentFirstTouchRegistrationIsSafe) {
  // Many workers race to register overlapping names; every name must end
  // up as exactly one instrument with a lossless total.
  runtime::parallel_for(0, 1000, [&](std::size_t i) {
    obs::counter("test.race." + std::to_string(i % 16)).inc();
  });
  const auto snap = obs::MetricsRegistry::global().snapshot();
  std::uint64_t total = 0;
  for (const auto& [name, v] : snap.counters) {
    if (name.rfind("test.race.", 0) == 0) total += v;
  }
  EXPECT_EQ(total, 1000u);
}

TEST_F(ObsTest, JsonExporterShapes) {
  obs::counter("json.counter").add(3);
  obs::gauge("json.gauge").set(0.5);
  obs::histogram("json.hist", std::vector<double>{1.0}).observe(0.5);
  { obs::StageSpan span("json_stage"); }
  const auto json = obs::to_json(obs::MetricsRegistry::global().snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"json.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"json.gauge\": 0.5"), std::string::npos);
  // Span histograms appear under "spans" keyed by stage path with
  // calls/total/mean, not as a raw histogram entry.
  EXPECT_NE(json.find("\"json_stage\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"total_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"mean_ms\""), std::string::npos);
}

TEST_F(ObsTest, PrometheusExporterShapes) {
  obs::counter("prom.skipped.total-weird name").add(2);
  obs::gauge("prom.coverage").set(0.75);
  obs::histogram("prom.hist", std::vector<double>{1.0, 2.0}).observe(1.5);
  { obs::StageSpan span("prom_stage"); }
  const auto text =
      obs::to_prometheus(obs::MetricsRegistry::global().snapshot());
  // Counter: sanitized name, behaviot_ prefix, _total suffix, TYPE line.
  EXPECT_NE(text.find("# TYPE behaviot_prom_skipped_total_weird_name_total "
                      "counter"),
            std::string::npos);
  EXPECT_NE(text.find("behaviot_prom_skipped_total_weird_name_total 2"),
            std::string::npos);
  EXPECT_NE(text.find("behaviot_prom_coverage 0.75"), std::string::npos);
  // Histogram: cumulative le buckets + _sum/_count.
  EXPECT_NE(text.find("behaviot_prom_hist_bucket{le=\"1\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("behaviot_prom_hist_bucket{le=\"2\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("behaviot_prom_hist_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("behaviot_prom_hist_count 1"), std::string::npos);
  // Spans fold into one behaviot_stage_ms family labeled by stage.
  EXPECT_NE(text.find("behaviot_stage_ms_count{stage=\"prom_stage\"} 1"),
            std::string::npos);
}

TEST_F(ObsTest, SummaryTableListsStagesAndCounters) {
  obs::counter("table.flows").add(12);
  { obs::StageSpan span("table_stage"); }
  const auto table =
      obs::summary_table(obs::MetricsRegistry::global().snapshot());
  EXPECT_NE(table.find("table_stage"), std::string::npos);
  EXPECT_NE(table.find("table.flows"), std::string::npos);
  EXPECT_NE(table.find("12"), std::string::npos);
}

TEST_F(ObsTest, SummaryTableSortsFamiliesLexicographically) {
  // Register deliberately out of order; the table must list families sorted
  // by name so two runs (and two scrapes) are diffable line-by-line.
  obs::counter("zeta.last").inc();
  obs::counter("alpha.first").inc();
  obs::counter("mid.dle").inc();
  obs::gauge("zz.gauge").set(1.0);
  obs::gauge("aa.gauge").set(1.0);
  const auto table =
      obs::summary_table(obs::MetricsRegistry::global().snapshot());
  const auto alpha = table.find("alpha.first");
  const auto mid = table.find("mid.dle");
  const auto zeta = table.find("zeta.last");
  ASSERT_NE(alpha, std::string::npos);
  ASSERT_NE(mid, std::string::npos);
  ASSERT_NE(zeta, std::string::npos);
  EXPECT_LT(alpha, mid);
  EXPECT_LT(mid, zeta);
  const auto aa = table.find("aa.gauge");
  const auto zz = table.find("zz.gauge");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);
}

// ---- End-to-end counter contract on a known synthetic capture ----

TEST_F(ObsTest, IngestCountersMatchParseStats) {
  const auto capture = testbed::Datasets::idle(95, /*days=*/0.05);
  auto bytes = serialize_pcap(capture.packets);
  // Damage the tail: chop the last record mid-payload so the lenient parse
  // classifies exactly one truncated skip.
  ASSERT_GT(bytes.size(), 40u);
  bytes.resize(bytes.size() - 10);
  const auto parsed = parse_pcap(bytes);
  ASSERT_EQ(parsed.stats.truncated, 1u);

  const auto snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("ingest.records"), parsed.stats.records);
  EXPECT_EQ(snap.counters.at("ingest.packets"), parsed.stats.packets);
  EXPECT_EQ(snap.counters.at("ingest.skipped.non_ip"), parsed.stats.non_ip);
  EXPECT_EQ(snap.counters.at("ingest.skipped.non_transport"),
            parsed.stats.non_transport);
  EXPECT_EQ(snap.counters.at("ingest.skipped.malformed"),
            parsed.stats.malformed);
  EXPECT_EQ(snap.counters.at("ingest.skipped.truncated"),
            parsed.stats.truncated);
  EXPECT_EQ(snap.counters.at("ingest.snapped_payloads"),
            parsed.stats.snapped_payloads);
  EXPECT_EQ(snap.histograms.at("span.ingest.pcap").count, 1u);
}

TEST_F(ObsTest, PipelineCountersMatchClassifierOutput) {
  Pipeline pipeline;
  DomainResolver resolver;
  const auto capture = testbed::Datasets::idle(95, /*days=*/0.1);
  const auto flows = pipeline.to_flows(capture, resolver);
  ASSERT_FALSE(flows.empty());

  auto snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("flow.assembled"), flows.size());
  EXPECT_GE(snap.counters.at("flow.packets_in"), flows.size());
  EXPECT_EQ(snap.histograms.at("span.pipeline.to_flows").count, 1u);
  EXPECT_EQ(snap.histograms.at("span.pipeline.to_flows/flow.assemble").count,
            1u);

  const auto periodic = PeriodicModelSet::infer(flows, 86400.0 * 0.1);
  snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("periodic.models_inferred"), periodic.size());
  EXPECT_EQ(snap.histograms.at("span.periodic.infer").count, 1u);

  BehaviorModelSet models;
  models.periodic = periodic;
  const auto classified = pipeline.classify(flows, models);
  snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("classify.flows"), flows.size());
  EXPECT_EQ(snap.counters.at("classify.periodic_via_timer"),
            classified.periodic_via_timer);
  EXPECT_EQ(snap.counters.at("classify.user_events"),
            classified.user_events.size());
}

TEST_F(ObsTest, DeviationCountersMatchAlerts) {
  // One modeled heartbeat group; a normal day, then an outage day.
  std::vector<FlowRecord> idle;
  for (double t = 0; t < 86400.0; t += 600.0) {
    FlowRecord f;
    f.device = 1;
    f.tuple = {{Ipv4Addr(192, 168, 1, 11), 40000},
               {Ipv4Addr(54, 2, 2, 2), 443},
               Transport::kTcp};
    f.domain = "hb.vendor.com";
    f.app = AppProtocol::kTls;
    f.start = f.end = Timestamp::from_seconds(t);
    f.packets = {{f.start, 120, Direction::kOutbound, false}};
    idle.push_back(std::move(f));
  }
  const auto periodic = PeriodicModelSet::infer(idle, 86400.0);
  ASSERT_EQ(periodic.size(), 1u);
  const std::vector<std::vector<std::string>> traces{
      {"cam:motion", "bulb:on"}, {"cam:motion", "bulb:on"}};
  const Pfsm pfsm = infer_pfsm(traces).pfsm;
  const auto short_term = ShortTermThreshold::calibrate(pfsm, traces);

  DeviationMonitor monitor(periodic, pfsm, short_term);
  const auto quiet = monitor.evaluate_window(
      Timestamp(0), Timestamp::from_seconds(86400.0), idle, {});
  EXPECT_TRUE(quiet.empty());
  const auto outage = monitor.evaluate_window(
      Timestamp::from_seconds(86400.0), Timestamp::from_seconds(2 * 86400.0),
      {}, {});
  ASSERT_EQ(outage.size(), 1u);
  // A third silent window: alert suppressed (same episode), counted as such.
  const auto still_out = monitor.evaluate_window(
      Timestamp::from_seconds(2 * 86400.0),
      Timestamp::from_seconds(3 * 86400.0), {}, {});
  EXPECT_TRUE(still_out.empty());

  const auto snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_EQ(snap.counters.at("deviation.windows"), 3u);
  EXPECT_EQ(snap.counters.at("deviation.alerts.periodic"), 1u);
  EXPECT_EQ(snap.counters.at("deviation.silences_suppressed"), 1u);
}

}  // namespace
}  // namespace behaviot
