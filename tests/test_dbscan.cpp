#include "behaviot/periodic/dbscan.hpp"

#include <gtest/gtest.h>

#include "behaviot/net/rng.hpp"

namespace behaviot {
namespace {

std::vector<std::vector<double>> blob(double cx, double cy, std::size_t n,
                                      double spread, Rng& rng) {
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({cx + rng.normal(0, spread), cy + rng.normal(0, spread)});
  }
  return points;
}

TEST(Dbscan, TwoBlobsTwoClusters) {
  Rng rng(1);
  auto points = blob(0, 0, 40, 0.1, rng);
  const auto other = blob(10, 10, 40, 0.1, rng);
  points.insert(points.end(), other.begin(), other.end());

  const auto result = dbscan(points, {.eps = 0.5, .min_points = 4});
  EXPECT_EQ(result.num_clusters, 2);
  // Same-blob points share labels; cross-blob points differ.
  EXPECT_EQ(result.labels[0], result.labels[10]);
  EXPECT_EQ(result.labels[40], result.labels[70]);
  EXPECT_NE(result.labels[0], result.labels[40]);
}

TEST(Dbscan, OutliersAreNoise) {
  Rng rng(2);
  auto points = blob(0, 0, 30, 0.1, rng);
  points.push_back({50.0, 50.0});
  const auto result = dbscan(points, {.eps = 0.5, .min_points = 4});
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.labels.back(), kDbscanNoise);
}

TEST(Dbscan, AllNoiseWhenSparse) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) {
    points.push_back({static_cast<double>(i * 100), 0.0});
  }
  const auto result = dbscan(points, {.eps = 1.0, .min_points = 3});
  EXPECT_EQ(result.num_clusters, 0);
  for (int label : result.labels) EXPECT_EQ(label, kDbscanNoise);
}

TEST(Dbscan, EmptyInput) {
  const auto result =
      dbscan(std::vector<std::vector<double>>{}, {.eps = 1.0, .min_points = 3});
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_TRUE(result.labels.empty());
}

TEST(Dbscan, ChainsMergeThroughDensityConnectivity) {
  // Points spaced 0.9 apart with eps=1.0 form one long cluster.
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 20; ++i) points.push_back({0.9 * i, 0.0});
  const auto result = dbscan(points, {.eps = 1.0, .min_points = 3});
  EXPECT_EQ(result.num_clusters, 1);
  for (int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(Dbscan, MinPointsBoundary) {
  // Exactly min_points neighbors (including self) forms a cluster.
  std::vector<std::vector<double>> points{{0, 0}, {0.1, 0}, {0, 0.1}};
  const auto yes = dbscan(points, {.eps = 0.5, .min_points = 3});
  EXPECT_EQ(yes.num_clusters, 1);
  const auto no = dbscan(points, {.eps = 0.5, .min_points = 4});
  EXPECT_EQ(no.num_clusters, 0);
}

TEST(DbscanMembership, ContainsTrainingNeighborhood) {
  Rng rng(3);
  const auto points = blob(5, 5, 50, 0.2, rng);
  const DbscanMembership membership(points, {.eps = 1.0, .min_points = 4});
  EXPECT_EQ(membership.num_clusters(), 1);
  EXPECT_GT(membership.core_point_count(), 0u);
  EXPECT_TRUE(membership.contains(std::vector<double>{5.0, 5.0}));
  EXPECT_TRUE(membership.contains(std::vector<double>{5.5, 5.2}));
  EXPECT_FALSE(membership.contains(std::vector<double>{20.0, 20.0}));
}

TEST(DbscanMembership, NoiseOnlyTrainingContainsNothing) {
  std::vector<std::vector<double>> points{{0, 0}, {100, 100}};
  const DbscanMembership membership(points, {.eps = 1.0, .min_points = 3});
  EXPECT_EQ(membership.core_point_count(), 0u);
  EXPECT_FALSE(membership.contains(std::vector<double>{0.0, 0.0}));
}

TEST(DbscanMembership, DefaultConstructedIsEmpty) {
  const DbscanMembership membership;
  EXPECT_FALSE(membership.contains(std::vector<double>{0.0, 0.0}));
}

// Property: DBSCAN labels are invariant to point duplication (a duplicated
// core point stays in the same cluster).
class DbscanProperty : public ::testing::TestWithParam<int> {};

TEST_P(DbscanProperty, DuplicatedPointSharesCluster) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 10);
  auto points = blob(0, 0, 30, 0.3, rng);
  points.push_back(points[5]);  // duplicate
  const auto result = dbscan(points, {.eps = 1.0, .min_points = 3});
  EXPECT_EQ(result.labels[5], result.labels.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace behaviot
