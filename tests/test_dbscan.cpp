#include "behaviot/periodic/dbscan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>

#include "behaviot/net/rng.hpp"

namespace behaviot {
namespace {

std::vector<std::vector<double>> blob(double cx, double cy, std::size_t n,
                                      double spread, Rng& rng) {
  std::vector<std::vector<double>> points;
  for (std::size_t i = 0; i < n; ++i) {
    points.push_back({cx + rng.normal(0, spread), cy + rng.normal(0, spread)});
  }
  return points;
}

TEST(Dbscan, TwoBlobsTwoClusters) {
  Rng rng(1);
  auto points = blob(0, 0, 40, 0.1, rng);
  const auto other = blob(10, 10, 40, 0.1, rng);
  points.insert(points.end(), other.begin(), other.end());

  const auto result = dbscan(points, {.eps = 0.5, .min_points = 4});
  EXPECT_EQ(result.num_clusters, 2);
  // Same-blob points share labels; cross-blob points differ.
  EXPECT_EQ(result.labels[0], result.labels[10]);
  EXPECT_EQ(result.labels[40], result.labels[70]);
  EXPECT_NE(result.labels[0], result.labels[40]);
}

TEST(Dbscan, OutliersAreNoise) {
  Rng rng(2);
  auto points = blob(0, 0, 30, 0.1, rng);
  points.push_back({50.0, 50.0});
  const auto result = dbscan(points, {.eps = 0.5, .min_points = 4});
  EXPECT_EQ(result.num_clusters, 1);
  EXPECT_EQ(result.labels.back(), kDbscanNoise);
}

TEST(Dbscan, AllNoiseWhenSparse) {
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 10; ++i) {
    points.push_back({static_cast<double>(i * 100), 0.0});
  }
  const auto result = dbscan(points, {.eps = 1.0, .min_points = 3});
  EXPECT_EQ(result.num_clusters, 0);
  for (int label : result.labels) EXPECT_EQ(label, kDbscanNoise);
}

TEST(Dbscan, EmptyInput) {
  const auto result =
      dbscan(std::vector<std::vector<double>>{}, {.eps = 1.0, .min_points = 3});
  EXPECT_EQ(result.num_clusters, 0);
  EXPECT_TRUE(result.labels.empty());
}

TEST(Dbscan, ChainsMergeThroughDensityConnectivity) {
  // Points spaced 0.9 apart with eps=1.0 form one long cluster.
  std::vector<std::vector<double>> points;
  for (int i = 0; i < 20; ++i) points.push_back({0.9 * i, 0.0});
  const auto result = dbscan(points, {.eps = 1.0, .min_points = 3});
  EXPECT_EQ(result.num_clusters, 1);
  for (int label : result.labels) EXPECT_EQ(label, 0);
}

TEST(Dbscan, MinPointsBoundary) {
  // Exactly min_points neighbors (including self) forms a cluster.
  std::vector<std::vector<double>> points{{0, 0}, {0.1, 0}, {0, 0.1}};
  const auto yes = dbscan(points, {.eps = 0.5, .min_points = 3});
  EXPECT_EQ(yes.num_clusters, 1);
  const auto no = dbscan(points, {.eps = 0.5, .min_points = 4});
  EXPECT_EQ(no.num_clusters, 0);
}

TEST(DbscanMembership, ContainsTrainingNeighborhood) {
  Rng rng(3);
  const auto points = blob(5, 5, 50, 0.2, rng);
  const DbscanMembership membership(points, {.eps = 1.0, .min_points = 4});
  EXPECT_EQ(membership.num_clusters(), 1);
  EXPECT_GT(membership.core_point_count(), 0u);
  EXPECT_TRUE(membership.contains(std::vector<double>{5.0, 5.0}));
  EXPECT_TRUE(membership.contains(std::vector<double>{5.5, 5.2}));
  EXPECT_FALSE(membership.contains(std::vector<double>{20.0, 20.0}));
}

TEST(DbscanMembership, NoiseOnlyTrainingContainsNothing) {
  std::vector<std::vector<double>> points{{0, 0}, {100, 100}};
  const DbscanMembership membership(points, {.eps = 1.0, .min_points = 3});
  EXPECT_EQ(membership.core_point_count(), 0u);
  EXPECT_FALSE(membership.contains(std::vector<double>{0.0, 0.0}));
}

TEST(DbscanMembership, DefaultConstructedIsEmpty) {
  const DbscanMembership membership;
  EXPECT_FALSE(membership.contains(std::vector<double>{0.0, 0.0}));
}

// Property: DBSCAN labels are invariant to point duplication (a duplicated
// core point stays in the same cluster).
class DbscanProperty : public ::testing::TestWithParam<int> {};

TEST_P(DbscanProperty, DuplicatedPointSharesCluster) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) + 10);
  auto points = blob(0, 0, 30, 0.3, rng);
  points.push_back(points[5]);  // duplicate
  const auto result = dbscan(points, {.eps = 1.0, .min_points = 3});
  EXPECT_EQ(result.labels[5], result.labels.back());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbscanProperty, ::testing::Range(0, 10));

// ---- Sweep-vs-naive equivalence property suite ------------------------------
//
// The production fit computes DBSCAN as an order-free function of the pairwise
// neighbor relation (pair sweep + union-find); dbscan_naive is the original
// graph-traversal formulation. These suites pin exact equality — labels and
// cluster count — across >= 1k randomized cases spanning the regimes the
// pipeline feeds it (clustered, uniform, duplicated, degenerate) plus the
// non-finite parameter edge cases.

std::vector<std::vector<double>> random_points(Rng& rng, std::size_t n,
                                               std::size_t dim) {
  std::vector<std::vector<double>> points;
  points.reserve(n);
  const std::size_t num_centers = 1 + rng.uniform_index(4);
  std::vector<std::vector<double>> centers;
  for (std::size_t c = 0; c < num_centers; ++c) {
    std::vector<double> center(dim);
    for (auto& v : center) v = rng.uniform(-5.0, 5.0);
    centers.push_back(std::move(center));
  }
  const double spread = rng.uniform(0.05, 1.5);
  for (std::size_t i = 0; i < n; ++i) {
    if (!points.empty() && rng.chance(0.08)) {
      points.push_back(points[rng.uniform_index(points.size())]);  // duplicate
      continue;
    }
    std::vector<double> p(dim);
    if (rng.chance(0.2)) {  // background noise
      for (auto& v : p) v = rng.uniform(-8.0, 8.0);
    } else {
      const auto& c = centers[rng.uniform_index(centers.size())];
      for (std::size_t d = 0; d < dim; ++d) p[d] = c[d] + rng.normal(0, spread);
    }
    points.push_back(std::move(p));
  }
  return points;
}

void expect_equal_clustering(const std::vector<std::vector<double>>& points,
                             const DbscanOptions& options, std::uint64_t seed) {
  const auto fast = dbscan(points, options);
  const auto naive = dbscan_naive(points, options);
  ASSERT_EQ(fast.num_clusters, naive.num_clusters)
      << "seed=" << seed << " n=" << points.size() << " eps=" << options.eps
      << " min_points=" << options.min_points;
  ASSERT_EQ(fast.labels, naive.labels)
      << "seed=" << seed << " n=" << points.size() << " eps=" << options.eps
      << " min_points=" << options.min_points;
}

TEST(DbscanEquivalence, MatchesNaiveAcrossRandomizedCases) {
  int cases = 0;
  for (std::uint64_t seed = 0; seed < 220; ++seed) {
    Rng rng(seed + 1000);
    for (std::size_t dim = 1; dim <= 5; ++dim) {
      const std::size_t n = rng.uniform_index(60);
      const auto points = random_points(rng, n, dim);
      const DbscanOptions options{
          .eps = rng.uniform(0.05, 2.5),
          .min_points = rng.uniform_index(7),  // includes the 0 edge case
      };
      expect_equal_clustering(points, options, seed);
      ++cases;
    }
  }
  EXPECT_GE(cases, 1000);  // the suite's advertised coverage floor
}

TEST(DbscanEquivalence, MatchesNaiveOnDegenerateEps) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed + 7000);
    const auto points = random_points(rng, 25 + rng.uniform_index(25), 3);
    for (const double eps : {0.0, -1.0, kInf, -kInf, kNan}) {
      expect_equal_clustering(points, {.eps = eps, .min_points = 3}, seed);
    }
  }
}

TEST(DbscanEquivalence, MatchesNaiveOnNonFiniteCoordinates) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed + 8000);
    auto points = random_points(rng, 30, 2);
    // Corrupt a few rows the way unsanitized features would.
    points[3][0] = std::numeric_limits<double>::quiet_NaN();
    points[7][1] = std::numeric_limits<double>::infinity();
    points[11][0] = -std::numeric_limits<double>::infinity();
    expect_equal_clustering(points, {.eps = 0.8, .min_points = 3}, seed);
  }
}

TEST(DbscanEquivalence, MatchesNaiveOnIdenticalPoints) {
  // Every point duplicated at one location: one cluster (or none when
  // min_points exceeds n).
  for (const std::size_t n : {1u, 2u, 5u, 40u}) {
    const std::vector<std::vector<double>> points(n,
                                                  std::vector<double>{1.0, 2.0});
    for (const std::size_t min_points : {1u, 3u, 41u}) {
      expect_equal_clustering(points, {.eps = 0.5, .min_points = min_points},
                              n * 100 + min_points);
    }
  }
}

// Membership queries (classification hot path) against brute force over the
// retained cores.
TEST(DbscanMembershipProperty, ContainsAndNearestMatchBruteForce) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed + 9000);
    const std::size_t dim = 1 + rng.uniform_index(4);
    const auto points = random_points(rng, 20 + rng.uniform_index(60), dim);
    const double eps = rng.uniform(0.1, 1.5);
    const DbscanMembership membership(points, {.eps = eps, .min_points = 3});

    for (int q = 0; q < 25; ++q) {
      std::vector<double> query(dim);
      for (auto& v : query) v = rng.uniform(-9.0, 9.0);

      // Brute force over the cores with the same (distance, index)
      // first-strictly-smaller tie-break the grid documents.
      bool inside = false;
      std::size_t best_index = 0;
      double best_sq = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < membership.core_point_count(); ++i) {
        const auto core = membership.core(i);
        double sq = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
          const double diff = core[d] - query[d];
          sq += diff * diff;
        }
        if (sq <= eps * eps) inside = true;
        if (sq < best_sq) {
          best_sq = sq;
          best_index = i;
        }
      }
      EXPECT_EQ(membership.contains(query), inside) << "seed=" << seed;
      const auto near = membership.nearest(query);
      if (membership.core_point_count() == 0) {
        EXPECT_EQ(near.cluster, kDbscanNoise);
        EXPECT_FALSE(near.inside);
      } else {
        EXPECT_EQ(near.cluster, membership.core_cluster(best_index))
            << "seed=" << seed;
        EXPECT_DOUBLE_EQ(near.distance, std::sqrt(best_sq));
        EXPECT_EQ(near.inside, best_sq <= eps * eps);
      }
    }
  }
}

}  // namespace
}  // namespace behaviot
