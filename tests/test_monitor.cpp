#include "behaviot/deviation/monitor.hpp"

#include <gtest/gtest.h>

#include "behaviot/pfsm/synoptic.hpp"

namespace behaviot {
namespace {

using Traces = std::vector<std::vector<std::string>>;

/// Minimal fixture: one periodic model (600 s heartbeat) and a tiny PFSM.
struct MonitorFixture {
  PeriodicModelSet periodic;
  Pfsm pfsm;
  ShortTermThreshold short_term;

  MonitorFixture() {
    // Synthesize idle flows: one group, 600 s period, 1 day.
    std::vector<FlowRecord> flows;
    for (double t = 0; t < 86400.0; t += 600.0) {
      FlowRecord f;
      f.device = 1;
      f.tuple = {{Ipv4Addr(192, 168, 1, 11), 40000},
                 {Ipv4Addr(54, 2, 2, 2), 443},
                 Transport::kTcp};
      f.domain = "hb.vendor.com";
      f.app = AppProtocol::kTls;
      f.start = f.end = Timestamp::from_seconds(t);
      f.packets = {{f.start, 120, Direction::kOutbound, false},
                   {f.start + milliseconds(40), 90, Direction::kInbound,
                    false}};
      f.truth = EventKind::kPeriodic;
      flows.push_back(std::move(f));
    }
    periodic = PeriodicModelSet::infer(flows, 86400.0);

    const Traces traces{{"cam:motion", "bulb:on"},
                        {"cam:motion", "bulb:on"},
                        {"plug:on", "plug:off"}};
    pfsm = infer_pfsm(traces).pfsm;
    short_term = ShortTermThreshold::calibrate(pfsm, traces);
  }

  [[nodiscard]] FlowRecord heartbeat_at(double t_s) const {
    FlowRecord f;
    f.device = 1;
    f.tuple = {{Ipv4Addr(192, 168, 1, 11), 41000},
               {Ipv4Addr(54, 2, 2, 2), 443},
               Transport::kTcp};
    f.domain = "hb.vendor.com";
    f.app = AppProtocol::kTls;
    f.start = f.end = Timestamp::from_seconds(t_s);
    f.packets = {{f.start, 120, Direction::kOutbound, false}};
    return f;
  }

  [[nodiscard]] static EventTrace trace_of(
      const std::vector<std::string>& labels, double t0_s) {
    EventTrace trace;
    double t = t0_s;
    for (const auto& l : labels) {
      UserEvent e;
      const auto colon = l.find(':');
      e.device_name = l.substr(0, colon);
      e.activity = l.substr(colon + 1);
      e.ts = Timestamp::from_seconds(t);
      t += 5.0;
      trace.push_back(e);
    }
    return trace;
  }
};

TEST(DeviationMonitor, QuietWindowRaisesNothing) {
  MonitorFixture fx;
  ASSERT_EQ(fx.periodic.size(), 1u);
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);

  std::vector<FlowRecord> flows;
  for (double t = 0; t < 86400.0; t += 600.0) {
    flows.push_back(fx.heartbeat_at(t));
  }
  const std::vector<EventTrace> traces{
      MonitorFixture::trace_of({"cam:motion", "bulb:on"}, 1000.0)};
  const auto alerts = monitor.evaluate_window(
      Timestamp(0), Timestamp::from_seconds(86400.0), flows, traces);
  EXPECT_TRUE(alerts.empty());
}

TEST(DeviationMonitor, SilencedHeartbeatTriggersPeriodicAlert) {
  MonitorFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);

  // First window: normal. Second window: device goes silent (outage).
  std::vector<FlowRecord> day1;
  for (double t = 0; t < 86400.0; t += 600.0) day1.push_back(fx.heartbeat_at(t));
  auto alerts = monitor.evaluate_window(
      Timestamp(0), Timestamp::from_seconds(86400.0), day1, {});
  EXPECT_TRUE(alerts.empty());

  const std::vector<FlowRecord> empty_day;
  alerts = monitor.evaluate_window(Timestamp::from_seconds(86400.0),
                                   Timestamp::from_seconds(2 * 86400.0),
                                   empty_day, {});
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].source, DeviationSource::kPeriodic);
  EXPECT_EQ(alerts[0].device, 1);
  EXPECT_GT(alerts[0].score, kPeriodicDeviationThreshold);
  EXPECT_NE(alerts[0].context.find("silent"), std::string::npos);
}

TEST(DeviationMonitor, LateArrivalWithinToleranceIsQuiet) {
  MonitorFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);
  std::vector<FlowRecord> flows;
  for (double t = 0; t < 86400.0; t += 600.0) {
    flows.push_back(fx.heartbeat_at(t + 3.0));  // tiny jitter
  }
  const auto alerts = monitor.evaluate_window(
      Timestamp(0), Timestamp::from_seconds(86400.0), flows, {});
  EXPECT_TRUE(alerts.empty());
}

TEST(DeviationMonitor, NovelTraceTriggersShortTermAlert) {
  MonitorFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);
  const std::vector<EventTrace> traces{MonitorFixture::trace_of(
      {"kettle:on", "door:open", "plug:off", "cam:motion"}, 100.0)};
  std::vector<FlowRecord> flows;
  for (double t = 0; t < 86400.0; t += 600.0) flows.push_back(fx.heartbeat_at(t));
  const auto alerts = monitor.evaluate_window(
      Timestamp(0), Timestamp::from_seconds(86400.0), flows, traces);
  bool short_term = false;
  for (const auto& a : alerts) {
    short_term |= a.source == DeviationSource::kShortTerm;
  }
  EXPECT_TRUE(short_term);
}

TEST(DeviationMonitor, RepeatedNovelTraceIsDedupedWithinWindow) {
  MonitorFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);
  std::vector<EventTrace> traces;
  for (int i = 0; i < 5; ++i) {
    traces.push_back(
        MonitorFixture::trace_of({"ghost:event", "plug:on"}, 100.0 + i * 200));
  }
  std::vector<FlowRecord> flows;
  for (double t = 0; t < 86400.0; t += 600.0) flows.push_back(fx.heartbeat_at(t));
  const auto alerts = monitor.evaluate_window(
      Timestamp(0), Timestamp::from_seconds(86400.0), flows, traces);
  std::size_t short_term = 0;
  for (const auto& a : alerts) {
    short_term += a.source == DeviationSource::kShortTerm ? 1 : 0;
  }
  EXPECT_EQ(short_term, 1u);
}

TEST(DeviationMonitor, FrequencyShiftTriggersLongTermAlert) {
  MonitorFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);
  // The model has cam:motion → bulb:on at p=1.0. A window where motion is
  // followed by plug:off instead shifts transition frequencies.
  std::vector<EventTrace> traces;
  for (int i = 0; i < 15; ++i) {
    traces.push_back(
        MonitorFixture::trace_of({"cam:motion", "plug:off"}, 100.0 + i * 300));
  }
  std::vector<FlowRecord> flows;
  for (double t = 0; t < 86400.0; t += 600.0) flows.push_back(fx.heartbeat_at(t));
  const auto alerts = monitor.evaluate_window(
      Timestamp(0), Timestamp::from_seconds(86400.0), flows, traces);
  bool long_term = false;
  for (const auto& a : alerts) {
    long_term |= a.source == DeviationSource::kLongTerm;
  }
  EXPECT_TRUE(long_term);
}

TEST(DeviationMonitor, SilenceEpisodeAlertsOnceUntilTrafficResumes) {
  MonitorFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);
  const double day = 86400.0;
  auto window = [&](int day_idx, bool with_traffic) {
    std::vector<FlowRecord> flows;
    if (with_traffic) {
      for (double t = 0; t < day; t += 600.0) {
        flows.push_back(fx.heartbeat_at(day_idx * day + t));
      }
    }
    return monitor.evaluate_window(Timestamp::from_seconds(day_idx * day),
                                   Timestamp::from_seconds((day_idx + 1) * day),
                                   flows, {});
  };
  auto silence_alerts = [](const std::vector<DeviationAlert>& alerts) {
    std::size_t n = 0;
    for (const auto& a : alerts) {
      n += a.context.find("silent") != std::string::npos ? 1 : 0;
    }
    return n;
  };

  EXPECT_TRUE(window(0, true).empty());
  // Three consecutive silent windows: the episode alerts exactly once.
  EXPECT_EQ(silence_alerts(window(1, false)), 1u);
  EXPECT_EQ(silence_alerts(window(2, false)), 0u);
  EXPECT_EQ(silence_alerts(window(3, false)), 0u);
  // Traffic resumes (the resume window itself may alert on the giant
  // inter-arrival gap, but not on silence)...
  EXPECT_EQ(silence_alerts(window(4, true)), 0u);
  // ...and a fresh outage is a new episode: it alerts again, once.
  EXPECT_EQ(silence_alerts(window(5, false)), 1u);
  EXPECT_EQ(silence_alerts(window(6, false)), 0u);
}

TEST(DeviationMonitor, RetrainingPurgesStaleStreamingState) {
  MonitorFixture fx;
  const std::vector<PeriodicModel> trained = fx.periodic.all();
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);
  const double day = 86400.0;

  // Day 1: traffic arms the timer. Day 2: silence alerts once.
  std::vector<FlowRecord> day1;
  for (double t = 0; t < day; t += 600.0) day1.push_back(fx.heartbeat_at(t));
  EXPECT_TRUE(monitor
                  .evaluate_window(Timestamp(0), Timestamp::from_seconds(day),
                                   day1, {})
                  .empty());
  auto alerts = monitor.evaluate_window(Timestamp::from_seconds(day),
                                        Timestamp::from_seconds(2 * day), {},
                                        {});
  ASSERT_EQ(alerts.size(), 1u);

  // Retraining drops the model: the silent window raises nothing and the
  // monitor purges the group's timer and silence-episode marker.
  fx.periodic = PeriodicModelSet::from_models({});
  EXPECT_TRUE(monitor
                  .evaluate_window(Timestamp::from_seconds(2 * day),
                                   Timestamp::from_seconds(3 * day), {}, {})
                  .empty());

  // The model returns after retraining. Without the purge the group would
  // inherit the old era's silence_reported_ marker and stay suppressed;
  // with it, the new era's silence alerts afresh — scored from the window
  // start, not from the day-1 timer.
  fx.periodic = PeriodicModelSet::from_models(trained);
  alerts = monitor.evaluate_window(Timestamp::from_seconds(3 * day),
                                   Timestamp::from_seconds(4 * day), {}, {});
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].source, DeviationSource::kPeriodic);
  EXPECT_NE(alerts[0].context.find("silent"), std::string::npos);
  const double one_window =
      periodic_deviation(day, trained[0].period_seconds);
  EXPECT_NEAR(alerts[0].score, one_window, 1e-9);
}

TEST(DeviationMonitor, TiedFirstSightingScoresTiedOccurrences) {
  // Regression fix: the first-sighting arm used timestamp equality, so when
  // several occurrences of a never-seen group shared one timestamp, ALL of
  // them were skipped — burying the zero inter-arrival deviation the tied
  // duplicates represent. Only the first occurrence (by index) may arm.
  MonitorFixture fx;
  MonitorOptions options;
  // Zero elapsed scores Mp = ln(|0 - T|/T + 1) = ln 2 ~= 0.69; set the
  // threshold below that but above the ~0 end-of-window silence score.
  options.thresholds.periodic = 0.5;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term, options);

  // Three tied occurrences, placed one period before window end so the
  // count-up timer contributes nothing.
  const std::vector<FlowRecord> flows{fx.heartbeat_at(85800.0),
                                      fx.heartbeat_at(85800.0),
                                      fx.heartbeat_at(85800.0)};
  const auto alerts = monitor.evaluate_window(
      Timestamp(0), Timestamp::from_seconds(86400.0), flows, {});
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].source, DeviationSource::kPeriodic);
  EXPECT_NE(alerts[0].context.find("inter-arrival"), std::string::npos);
  EXPECT_NEAR(alerts[0].explanation.observed, 0.0, 1e-9);
}

TEST(DeviationMonitor, RebindSwapsModelsAndKeepsStreamingState) {
  // Hot model swap (`behaviot watch`): rebinding to a new generation keeps
  // armed timers, so a silence spanning the swap still alerts exactly once.
  MonitorFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);
  const double day = 86400.0;
  std::vector<FlowRecord> day1;
  for (double t = 0; t < day; t += 600.0) day1.push_back(fx.heartbeat_at(t));
  EXPECT_TRUE(monitor
                  .evaluate_window(Timestamp(0), Timestamp::from_seconds(day),
                                   day1, {})
                  .empty());

  // Swap in an identical-parameter generation (a retrain that kept the
  // model), then go silent: the day-1 timer must still be armed.
  const PeriodicModelSet next_gen =
      PeriodicModelSet::from_models(fx.periodic.all());
  monitor.rebind(next_gen, fx.pfsm, fx.short_term);
  auto alerts = monitor.evaluate_window(Timestamp::from_seconds(day),
                                        Timestamp::from_seconds(2 * day), {},
                                        {});
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].source, DeviationSource::kPeriodic);
  EXPECT_NE(alerts[0].context.find("silent"), std::string::npos);
  // Same episode, next window: still suppressed across the swap boundary.
  monitor.rebind(fx.periodic, fx.pfsm, fx.short_term);
  EXPECT_TRUE(monitor
                  .evaluate_window(Timestamp::from_seconds(2 * day),
                                   Timestamp::from_seconds(3 * day), {}, {})
                  .empty());
}

TEST(DeviationMonitor, ResetForgetsTimers) {
  MonitorFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);
  std::vector<FlowRecord> day1;
  for (double t = 0; t < 86400.0; t += 600.0) day1.push_back(fx.heartbeat_at(t));
  (void)monitor.evaluate_window(Timestamp(0),
                                Timestamp::from_seconds(86400.0), day1, {});
  monitor.reset();
  // After reset, an empty window raises nothing (no armed timers).
  const auto alerts = monitor.evaluate_window(
      Timestamp::from_seconds(86400.0), Timestamp::from_seconds(2 * 86400.0),
      {}, {});
  EXPECT_TRUE(alerts.empty());
}

TEST(DeviationMonitor, AlertsSortedByTime) {
  MonitorFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);
  std::vector<EventTrace> traces{
      MonitorFixture::trace_of({"zz:x", "plug:on"}, 50000.0),
      MonitorFixture::trace_of({"aa:y", "plug:on"}, 100.0)};
  const auto alerts = monitor.evaluate_window(
      Timestamp(0), Timestamp::from_seconds(86400.0), {}, traces);
  for (std::size_t i = 1; i < alerts.size(); ++i) {
    EXPECT_LE(alerts[i - 1].when, alerts[i].when);
  }
}

TEST(DeviationSource, Names) {
  EXPECT_STREQ(to_string(DeviationSource::kPeriodic), "periodic");
  EXPECT_STREQ(to_string(DeviationSource::kShortTerm), "short-term");
  EXPECT_STREQ(to_string(DeviationSource::kLongTerm), "long-term");
}

}  // namespace
}  // namespace behaviot
