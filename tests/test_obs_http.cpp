// Live telemetry layer: TelemetryServer endpoint semantics, atomic snapshot
// writes with size-gated rotation, process self-stats, and the concurrent
// scrape contract — endpoints hammered from multiple threads while the watch
// engine closes windows and hot-swaps retrained models must answer with
// well-formed documents and must not perturb the alert stream by one byte.
#include "behaviot/obs/telemetry_server.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "behaviot/core/model_handle.hpp"
#include "behaviot/core/watch_engine.hpp"
#include "behaviot/flow/assembler.hpp"
#include "behaviot/obs/health.hpp"
#include "behaviot/obs/json.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/process_stats.hpp"
#include "behaviot/obs/snapshot.hpp"
#include "behaviot/obs/trace.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

struct HttpResponse {
  int status = -1;  ///< -1 = connection failed / malformed status line
  std::string headers;
  std::string body;
};

/// Minimal blocking HTTP client: one request, read to connection close.
HttpResponse http_request(std::uint16_t port, const std::string& target,
                          const std::string& method = "GET") {
  HttpResponse r;
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return r;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return r;
  }
  const std::string req = method + " " + target +
                          " HTTP/1.1\r\nHost: localhost\r\n"
                          "Connection: close\r\n\r\n";
  std::size_t sent = 0;
  while (sent < req.size()) {
    const ssize_t n = ::send(fd, req.data() + sent, req.size() - sent, 0);
    if (n <= 0) {
      ::close(fd);
      return r;
    }
    sent += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto split = raw.find("\r\n\r\n");
  if (split == std::string::npos || raw.rfind("HTTP/1.1 ", 0) != 0) return r;
  r.headers = raw.substr(0, split);
  r.body = raw.substr(split + 4);
  r.status = std::atoi(raw.c_str() + 9);
  return r;
}

/// Every test runs with a fresh enabled registry and clean health state, and
/// restores the library defaults behind itself.
class ObsHttpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::set_enabled(true);
    obs::MetricsRegistry::global().reset_values();
    obs::health().reset();
  }
  void TearDown() override {
    obs::MetricsRegistry::set_enabled(false);
    obs::MetricsRegistry::global().reset_values();
    obs::health().reset();
  }
};

TEST_F(ObsHttpTest, StartsOnEphemeralPortAndServesIndex) {
  obs::TelemetryServer server;
  std::string err;
  ASSERT_TRUE(server.start(&err)) << err;
  ASSERT_NE(server.port(), 0);
  const auto index = http_request(server.port(), "/");
  EXPECT_EQ(index.status, 200);
  EXPECT_NE(index.body.find("/metrics"), std::string::npos);
  EXPECT_EQ(http_request(server.port(), "/nope").status, 404);
  server.stop();
  EXPECT_FALSE(server.running());
}

TEST_F(ObsHttpTest, MetricsEndpointServesPrometheusWithProcessFamilies) {
  obs::counter("http_test.requests").add(7);
  obs::TelemetryServer server;
  ASSERT_TRUE(server.start());
  const auto r = http_request(server.port(), "/metrics");
  ASSERT_EQ(r.status, 200);
  EXPECT_NE(r.headers.find("version=0.0.4"), std::string::npos);
  EXPECT_NE(r.body.find("behaviot_http_test_requests_total 7"),
            std::string::npos);
  // Process self-stats are refreshed on the scrape path.
  EXPECT_NE(r.body.find("behaviot_process_rss_bytes"), std::string::npos);
  EXPECT_NE(r.body.find("behaviot_process_cpu_seconds"), std::string::npos);
  EXPECT_NE(r.body.find("behaviot_process_uptime_seconds"),
            std::string::npos);
}

TEST_F(ObsHttpTest, MetricsJsonEndpointParsesAsJson) {
  obs::counter("http_test.json").inc();
  obs::TelemetryServer server;
  ASSERT_TRUE(server.start());
  const auto r = http_request(server.port(), "/metrics.json");
  ASSERT_EQ(r.status, 200);
  const auto doc = obs::json::parse(r.body);
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.at("counters").at("http_test.json").as_number(), 1.0);
  EXPECT_TRUE(doc.find("health") != nullptr);
}

TEST_F(ObsHttpTest, HealthzMirrorsHealthSubcommandSemantics) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.start());
  const auto healthy = http_request(server.port(), "/healthz");
  EXPECT_EQ(healthy.status, 200);
  EXPECT_EQ(healthy.body, "ok\n");

  obs::health().degrade("http.test", "synthetic-degrade");
  const auto degraded = http_request(server.port(), "/healthz");
  EXPECT_EQ(degraded.status, 503);
  EXPECT_NE(degraded.body.find("http.test"), std::string::npos);
  EXPECT_NE(degraded.body.find("synthetic-degrade"), std::string::npos);
}

TEST_F(ObsHttpTest, StatuszEmbedsProviderDocument) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.start());
  const auto bare = http_request(server.port(), "/statusz");
  ASSERT_EQ(bare.status, 200);
  const auto bare_doc = obs::json::parse(bare.body);
  EXPECT_TRUE(bare_doc.at("watch").is_null());
  EXPECT_GE(bare_doc.at("process").at("uptime_seconds").as_number(), 0.0);

  server.set_status_provider([] { return std::string("{\"window\":42}"); });
  const auto with = http_request(server.port(), "/statusz");
  ASSERT_EQ(with.status, 200);
  const auto doc = obs::json::parse(with.body);
  EXPECT_DOUBLE_EQ(doc.at("watch").at("window").as_number(), 42.0);
  EXPECT_GE(doc.at("server").at("requests").as_number(), 1.0);
}

TEST_F(ObsHttpTest, TracezServesOnlyPublishedSnapshotsWhileArmed) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.start());

  // Armed with nothing published: reading the live rings would race the
  // recording threads, so the endpoint must decline rather than crash.
  obs::Tracer::global().start();
  const auto pending = http_request(server.port(), "/tracez");
  EXPECT_EQ(pending.status, 503);
  EXPECT_NE(pending.body.find("pending"), std::string::npos);

  const std::string doc = "{\"traceEvents\":[],\"published\":true}";
  server.publish_trace_json(doc);
  const auto published = http_request(server.port(), "/tracez");
  EXPECT_EQ(published.status, 200);
  EXPECT_EQ(published.body, doc);
  obs::Tracer::global().stop();

  // Disarmed: the rings are static, a live render is safe and wins over any
  // stale published document on a fresh server.
  obs::TelemetryServer fresh;
  ASSERT_TRUE(fresh.start());
  const auto live = http_request(fresh.port(), "/tracez");
  EXPECT_EQ(live.status, 200);
  EXPECT_NE(live.body.find("traceEvents"), std::string::npos);
}

TEST_F(ObsHttpTest, HeadOmitsBodyAndOtherMethodsAreRejected) {
  obs::TelemetryServer server;
  ASSERT_TRUE(server.start());
  const auto head = http_request(server.port(), "/healthz", "HEAD");
  EXPECT_EQ(head.status, 200);
  EXPECT_TRUE(head.body.empty());
  EXPECT_NE(head.headers.find("Content-Length: 3"), std::string::npos);
  EXPECT_EQ(http_request(server.port(), "/healthz", "POST").status, 405);
  // Query strings are accepted and ignored (scraper cache-busting).
  EXPECT_EQ(http_request(server.port(), "/healthz?ts=1").status, 200);
}

// ---- Atomic snapshot writes and rotation ----

TEST(SnapshotWrite, AtomicWriteReplacesWholeFile) {
  const std::string dir = ::testing::TempDir() + "/behaviot_snap_atomic";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/out.json";
  ASSERT_TRUE(obs::write_file_atomic(path, "first"));
  ASSERT_TRUE(obs::write_file_atomic(path, "second generation"));
  std::string text;
  {
    std::FILE* f = std::fopen(path.c_str(), "r");
    ASSERT_NE(f, nullptr);
    char buf[64] = {};
    text.assign(buf, std::fread(buf, 1, sizeof(buf), f));
    std::fclose(f);
  }
  EXPECT_EQ(text, "second generation");
  // No temp droppings left behind.
  std::size_t entries = 0;
  for ([[maybe_unused]] const auto& e :
       std::filesystem::directory_iterator(dir)) {
    ++entries;
  }
  EXPECT_EQ(entries, 1u);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotWrite, FailedWriteReportsErrorAndLeavesTargetAlone) {
  const std::string path =
      ::testing::TempDir() + "/behaviot_no_such_dir/out.json";
  std::string error;
  EXPECT_FALSE(obs::write_file_atomic(path, "content", &error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(std::filesystem::exists(path));
}

TEST(SnapshotWrite, RotationArchivesByWindowIndexAndPrunes) {
  const std::string dir = ::testing::TempDir() + "/behaviot_snap_rotate";
  std::filesystem::create_directories(dir);
  const std::string path = dir + "/alerts.json";
  obs::SnapshotRotation rotation;
  rotation.max_bytes = 8;
  rotation.keep = 2;
  obs::SnapshotWriter writer(path, rotation);

  ASSERT_TRUE(writer.write("tiny", 1));
  EXPECT_FALSE(writer.rotated_last_write());
  EXPECT_TRUE(std::filesystem::exists(path));

  ASSERT_TRUE(writer.write("well over the byte cap", 2));
  EXPECT_TRUE(writer.rotated_last_write());
  EXPECT_TRUE(std::filesystem::exists(path + ".2"));
  ASSERT_TRUE(writer.write("another oversized generation", 5));
  ASSERT_TRUE(writer.write("and one more past the cap", 9));
  EXPECT_EQ(writer.rotations(), 3u);
  // keep=2: the oldest archive was pruned, the newest two remain.
  EXPECT_FALSE(std::filesystem::exists(path + ".2"));
  EXPECT_TRUE(std::filesystem::exists(path + ".5"));
  EXPECT_TRUE(std::filesystem::exists(path + ".9"));
  EXPECT_EQ(writer.archives().size(), 2u);
  std::filesystem::remove_all(dir);
}

TEST(ProcessStats, CollectsPlausibleValues) {
  const obs::ProcessStats stats = obs::collect_process_stats();
  EXPECT_GT(stats.rss_bytes, 0.0);  // a running gtest binary has an RSS
  EXPECT_GE(stats.cpu_seconds, 0.0);
  EXPECT_GE(stats.uptime_seconds, 0.0);

  obs::MetricsRegistry::set_enabled(true);
  obs::update_process_gauges();
  const auto snap = obs::MetricsRegistry::global().snapshot();
  EXPECT_GT(snap.gauges.at("process.rss_bytes"), 0.0);
  obs::MetricsRegistry::set_enabled(false);
  obs::MetricsRegistry::global().reset_values();
}

// ---- Concurrent scraping against a live watch run ----

/// Shared fixture (heavy: trains real periodic models once per binary).
struct HttpWatchFixture {
  BehaviorModelSet models;
  std::vector<Packet> eval_packets;
};

const HttpWatchFixture& watch_fixture() {
  static const HttpWatchFixture* fx = [] {
    auto* f = new HttpWatchFixture;
    const auto train = testbed::Datasets::idle(/*seed=*/11, /*days=*/0.25);
    DomainResolver resolver;
    const auto flows = FlowAssembler().assemble(train.packets, resolver);
    f->models.periodic = PeriodicModelSet::infer(flows, 0.25 * 86400.0);
    f->eval_packets =
        testbed::Datasets::routine_week(/*seed=*/23, /*days=*/0.2).packets;
    return f;
  }();
  return *fx;
}

std::vector<DeviationAlert> run_watch_collecting(
    const HttpWatchFixture& fx, obs::TelemetryServer* server) {
  WatchOptions opts;
  opts.window_us = minutes(30.0);
  opts.retrain_every_windows = 2;
  ModelHandle handle(fx.models);
  WatchEngine engine(handle, DomainResolver{}, opts);
  std::vector<DeviationAlert> alerts;
  engine.set_window_sink([&](const WatchWindowReport& r) {
    alerts.insert(alerts.end(), r.alerts.begin(), r.alerts.end());
    if (server != nullptr) {
      // What the CLI does per window: publish a trace snapshot from this
      // quiescent point and refresh the status document.
      server->publish_trace_json(
          obs::trace_to_chrome_json(obs::Tracer::global().snapshot()));
      server->set_status_provider([index = r.index, version =
                                       r.model_version] {
        return "{\"window\":" + std::to_string(index) +
               ",\"model_version\":" + std::to_string(version) + "}";
      });
    }
  });
  const std::span<const Packet> all(fx.eval_packets);
  constexpr std::size_t kChunk = 512;
  for (std::size_t i = 0; i < all.size() && !engine.done(); i += kChunk) {
    engine.ingest(all.subspan(i, std::min(kChunk, all.size() - i)));
  }
  engine.finish();
  return alerts;
}

TEST_F(ObsHttpTest, ConcurrentScrapesDoNotPerturbAlerts) {
  const auto& fx = watch_fixture();
  // Reference run: no server, no tracer, nobody scraping.
  const auto baseline = run_watch_collecting(fx, nullptr);
  ASSERT_FALSE(baseline.empty()) << "fixture must produce real alerts";

  obs::MetricsRegistry::global().reset_values();
  obs::health().reset();
  obs::Tracer::global().start();
  obs::TelemetryServer server;
  ASSERT_TRUE(server.start());

  // Hammer every endpoint from several threads for the whole run, including
  // through window closes and retrain + ModelHandle swaps.
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> well_formed{0};
  std::atomic<std::uint64_t> malformed{0};
  const char* kTargets[] = {"/metrics", "/metrics.json", "/healthz",
                            "/statusz", "/tracez"};
  std::vector<std::thread> scrapers;
  for (int t = 0; t < 4; ++t) {
    scrapers.emplace_back([&, t] {
      std::size_t i = static_cast<std::size_t>(t);
      while (!stop.load(std::memory_order_acquire)) {
        const char* target = kTargets[i++ % std::size(kTargets)];
        const auto r = http_request(server.port(), target);
        const bool ok =
            (r.status == 200 || r.status == 503) && !r.body.empty();
        if (ok &&
            (r.status != 200 || std::string_view(target) != "/metrics" ||
             r.body.find("behaviot_") != std::string::npos)) {
          well_formed.fetch_add(1, std::memory_order_relaxed);
        } else {
          malformed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  const auto scraped = run_watch_collecting(fx, &server);
  stop.store(true, std::memory_order_release);
  for (auto& th : scrapers) th.join();
  obs::Tracer::global().stop();

  EXPECT_EQ(malformed.load(), 0u);
  EXPECT_GT(well_formed.load(), 0u);

  // The scrape load changed nothing: alert for alert, byte for byte.
  ASSERT_EQ(scraped.size(), baseline.size());
  for (std::size_t i = 0; i < scraped.size(); ++i) {
    EXPECT_EQ(scraped[i].source, baseline[i].source) << i;
    EXPECT_EQ(scraped[i].when, baseline[i].when) << i;
    EXPECT_EQ(scraped[i].device, baseline[i].device) << i;
    EXPECT_EQ(scraped[i].score, baseline[i].score) << i;
    EXPECT_EQ(scraped[i].threshold, baseline[i].threshold) << i;
    EXPECT_EQ(scraped[i].context, baseline[i].context) << i;
  }
}

}  // namespace
}  // namespace behaviot
