#include "behaviot/net/stats.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "behaviot/net/rng.hpp"

namespace behaviot {
namespace {

TEST(Stats, MeanBasics) {
  EXPECT_DOUBLE_EQ(stats::mean(std::vector<double>{}), 0.0);
  EXPECT_DOUBLE_EQ(stats::mean(std::vector<double>{5.0}), 5.0);
  EXPECT_DOUBLE_EQ(stats::mean(std::vector<double>{1, 2, 3, 4}), 2.5);
}

TEST(Stats, VarianceAndStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(stats::variance(xs), 4.0);
  EXPECT_DOUBLE_EQ(stats::stddev(xs), 2.0);
  EXPECT_DOUBLE_EQ(stats::variance(std::vector<double>{3.0}), 0.0);
}

TEST(Stats, SampleStddevUsesBesselCorrection) {
  const std::vector<double> xs{1, 2, 3};
  EXPECT_DOUBLE_EQ(stats::sample_stddev(xs), 1.0);
  EXPECT_DOUBLE_EQ(stats::sample_stddev(std::vector<double>{7.0}), 0.0);
}

TEST(Stats, MedianOddAndEven) {
  EXPECT_DOUBLE_EQ(stats::median({1, 3, 2}), 2.0);
  EXPECT_DOUBLE_EQ(stats::median({4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(stats::median({}), 0.0);
  EXPECT_DOUBLE_EQ(stats::median({9}), 9.0);
}

TEST(Stats, MedianAbsDeviation) {
  const std::vector<double> xs{1, 1, 2, 2, 4, 6, 9};
  // median = 2, |x - 2| = {1,1,0,0,2,4,7}, median of that = 1.
  EXPECT_DOUBLE_EQ(stats::median_abs_deviation(xs), 1.0);
  EXPECT_DOUBLE_EQ(stats::median_abs_deviation(std::vector<double>{}), 0.0);
}

TEST(Stats, SkewnessSignsMatchShape) {
  const std::vector<double> right_skewed{1, 1, 1, 1, 10};
  const std::vector<double> left_skewed{10, 10, 10, 10, 1};
  EXPECT_GT(stats::skewness(right_skewed), 0.5);
  EXPECT_LT(stats::skewness(left_skewed), -0.5);
  EXPECT_DOUBLE_EQ(stats::skewness(std::vector<double>{5, 5, 5}), 0.0);
}

TEST(Stats, SymmetricDataHasNearZeroSkew) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_NEAR(stats::skewness(xs), 0.0, 1e-12);
}

TEST(Stats, KurtosisOfNormalSamplesNearZero) {
  Rng rng(3);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal());
  EXPECT_NEAR(stats::kurtosis(xs), 0.0, 0.15);
}

TEST(Stats, KurtosisDegenerate) {
  EXPECT_DOUBLE_EQ(stats::kurtosis(std::vector<double>{1, 1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(stats::kurtosis(std::vector<double>{1}), 0.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 40.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 25.0);
  EXPECT_DOUBLE_EQ(stats::percentile({}, 50), 0.0);
}

TEST(Stats, PercentileClampsOutOfRangeQuantiles) {
  const std::vector<double> xs{10, 20, 30, 40};
  // Out-of-range q clamps to the nearest valid quantile instead of
  // indexing out of bounds.
  EXPECT_DOUBLE_EQ(stats::percentile(xs, -1), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, -1e9), 10.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 101), 40.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 1e9), 40.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(stats::percentile(xs, nan), 10.0);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> xs{7.0};
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 7.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 7.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 7.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, -5), 7.0);
  EXPECT_DOUBLE_EQ(stats::percentile(xs, 250), 7.0);
}

// Property sweep: median lies within [min, max] and MAD >= 0 on random data.
class StatsProperty : public ::testing::TestWithParam<int> {};

TEST_P(StatsProperty, MedianBoundedAndMadNonNegative) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> xs;
  const std::size_t n = 1 + rng.uniform_index(200);
  for (std::size_t i = 0; i < n; ++i) xs.push_back(rng.uniform(-100, 100));
  const double med = stats::median(xs);
  EXPECT_GE(med, *std::min_element(xs.begin(), xs.end()));
  EXPECT_LE(med, *std::max_element(xs.begin(), xs.end()));
  EXPECT_GE(stats::median_abs_deviation(xs), 0.0);
  EXPECT_GE(stats::variance(xs), 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomVectors, StatsProperty, ::testing::Range(0, 25));

}  // namespace
}  // namespace behaviot
