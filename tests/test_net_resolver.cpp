#include "behaviot/net/domain_resolver.hpp"

#include <gtest/gtest.h>

#include "behaviot/net/dns.hpp"
#include "behaviot/net/tls.hpp"

namespace behaviot {
namespace {

Packet dns_response_packet(const std::string& name, Ipv4Addr addr) {
  Packet p;
  p.ts = Timestamp(1000);
  p.tuple = {{Ipv4Addr(192, 168, 1, 5), 41000},
             {Ipv4Addr(155, 33, 10, 53), 53},
             Transport::kUdp};
  p.dir = Direction::kInbound;
  p.payload = make_dns_response(1, name, addr);
  p.size = static_cast<std::uint32_t>(p.payload.size()) + 28;
  return p;
}

Packet tls_hello_packet(const std::string& sni, Ipv4Addr dst) {
  Packet p;
  p.ts = Timestamp(2000);
  p.tuple = {{Ipv4Addr(192, 168, 1, 5), 41001}, {dst, 443}, Transport::kTcp};
  p.dir = Direction::kOutbound;
  p.payload = make_tls_client_hello(sni);
  p.size = static_cast<std::uint32_t>(p.payload.size()) + 40;
  return p;
}

TEST(DomainResolver, UnknownIpResolvesBlank) {
  const DomainResolver resolver;
  EXPECT_EQ(resolver.resolve(Ipv4Addr(54, 1, 1, 1)), "");
}

TEST(DomainResolver, LearnsFromDnsResponses) {
  DomainResolver resolver;
  const Ipv4Addr addr(54, 9, 9, 9);
  EXPECT_TRUE(resolver.observe(dns_response_packet("api.example.com", addr)));
  EXPECT_EQ(resolver.resolve(addr), "api.example.com");
  EXPECT_EQ(resolver.dns_bindings(), 1u);
}

TEST(DomainResolver, LearnsFromSni) {
  DomainResolver resolver;
  const Ipv4Addr dst(54, 8, 8, 8);
  EXPECT_TRUE(resolver.observe(tls_hello_packet("mqtt.vendor.com", dst)));
  EXPECT_EQ(resolver.resolve(dst), "mqtt.vendor.com");
  EXPECT_EQ(resolver.sni_bindings(), 1u);
}

TEST(DomainResolver, DnsTakesPrecedenceOverSni) {
  DomainResolver resolver;
  const Ipv4Addr addr(54, 7, 7, 7);
  resolver.observe(tls_hello_packet("sni-name.com", addr));
  resolver.observe(dns_response_packet("dns-name.com", addr));
  EXPECT_EQ(resolver.resolve(addr), "dns-name.com");
}

TEST(DomainResolver, SniTakesPrecedenceOverReverseDns) {
  DomainResolver resolver;
  const Ipv4Addr addr(54, 6, 6, 6);
  resolver.add_reverse_dns(addr, "rdns-name.com");
  EXPECT_EQ(resolver.resolve(addr), "rdns-name.com");
  resolver.observe(tls_hello_packet("sni-name.com", addr));
  EXPECT_EQ(resolver.resolve(addr), "sni-name.com");
}

TEST(DomainResolver, IgnoresPayloadFreePackets) {
  DomainResolver resolver;
  Packet p;
  p.tuple = {{Ipv4Addr(192, 168, 1, 5), 41000},
             {Ipv4Addr(54, 5, 5, 5), 443},
             Transport::kTcp};
  p.dir = Direction::kOutbound;
  p.size = 100;
  EXPECT_FALSE(resolver.observe(p));
}

TEST(DomainResolver, IgnoresOutboundDnsQueries) {
  DomainResolver resolver;
  Packet p;
  p.ts = Timestamp(10);
  p.tuple = {{Ipv4Addr(192, 168, 1, 5), 41000},
             {Ipv4Addr(155, 33, 10, 53), 53},
             Transport::kUdp};
  p.dir = Direction::kOutbound;  // queries carry no binding
  p.payload = make_dns_query(5, "api.example.com");
  p.size = 80;
  EXPECT_FALSE(resolver.observe(p));
  EXPECT_EQ(resolver.dns_bindings(), 0u);
}

TEST(DomainResolver, LaterDnsBindingWins) {
  DomainResolver resolver;
  const Ipv4Addr addr(54, 4, 4, 4);
  resolver.observe(dns_response_packet("old.example.com", addr));
  resolver.observe(dns_response_packet("new.example.com", addr));
  EXPECT_EQ(resolver.resolve(addr), "new.example.com");
}

}  // namespace
}  // namespace behaviot
