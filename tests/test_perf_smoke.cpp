// Wall-clock smoke ceiling for the training hot path (ctest label:
// perf_smoke).
//
// Periodic inference was rebuilt around vectorized kernels (pair-sweep
// DBSCAN, cache-blocked FFT, interleaved ACF) for a multi-x speedup; this
// test keeps the floor from silently eroding. The ceiling is deliberately
// generous — an order of magnitude above the current single-thread time on a
// modest container — so it only trips on structural regressions (e.g.
// reintroducing an O(n^2) traversal or a __muldc3-lowered complex multiply
// in the FFT), never on CI scheduling noise.
#include <gtest/gtest.h>

#include <chrono>
#include <iostream>

#include "behaviot/core/pipeline.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

TEST(PerfSmoke, TrainWallClockStaysUnderCeiling) {
  Pipeline pipeline;
  DomainResolver resolver;
  const auto idle = testbed::Datasets::idle(211, /*days=*/0.25);
  const auto activity = testbed::Datasets::activity(212, /*repetitions=*/2);
  const auto routine = testbed::Datasets::routine_week(213, /*days=*/0.5);
  const auto idle_flows = pipeline.to_flows(idle, resolver);
  const auto activity_flows = pipeline.to_flows(activity, resolver);
  const auto routine_flows = pipeline.to_flows(routine, resolver);

  const auto t0 = std::chrono::steady_clock::now();
  const auto models = pipeline.train(idle_flows, 0.25 * 86400.0,
                                     activity_flows, routine_flows);
  const double train_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
  std::cout << "[perf_smoke] train_ms=" << train_ms << "\n";
  EXPECT_GT(models.periodic.size(), 0u);  // the run did real work

  // Current single-thread time on a 1-core container: ~1.0 s. Seed (before
  // the kernel work): ~3.5 s on the same dataset. Ceiling sits above both
  // noise and hardware spread, below an accidental O(n^2) reintroduction.
  constexpr double kCeilingMs = 15000.0;
  EXPECT_LT(train_ms, kCeilingMs);
}

}  // namespace
}  // namespace behaviot
