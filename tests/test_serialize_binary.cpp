// Binary model format (.bbm) suite: round trips (including user-action
// forests, which the text format omits), golden-file compatibility, header
// and CRC validation with byte offsets, count caps, lenient section resync,
// extension dispatch, and locale independence of both model formats.
#include "behaviot/core/serialize_binary.hpp"

#include <gtest/gtest.h>

#include <clocale>
#include <filesystem>
#include <fstream>
#include <locale>
#include <sstream>

#include "behaviot/core/serialize.hpp"
#include "behaviot/flow/features.hpp"
#include "behaviot/pfsm/synoptic.hpp"

namespace behaviot {
namespace {

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// A model set exercising every binary section, including the two parts the
/// text format cannot carry: absence trailers round-trip in both, forests
/// only in binary.
BehaviorModelSet full_models() {
  BehaviorModelSet models;

  std::vector<PeriodicModel> periodic;
  PeriodicModel hb;
  hb.device = 3;
  hb.group = "hb.vendor.com|TLS";
  hb.domain = "hb.vendor.com";
  hb.app = AppProtocol::kTls;
  hb.period_seconds = 600.125;
  hb.tolerance_seconds = 12.5;
  hb.autocorr_score = 0.93;
  hb.support = 144;
  hb.absent_generations = 2;
  hb.secondary_periods = {3600.0, 7200.5};
  periodic.push_back(hb);
  PeriodicModel unnamed;
  unnamed.device = 4;
  unnamed.group = "54.1.2.3|UDP";
  unnamed.domain = "";  // blank destination (the paper's unresolved case)
  unnamed.app = AppProtocol::kOtherUdp;
  unnamed.period_seconds = 236.0;
  unnamed.tolerance_seconds = 3.0;
  unnamed.support = 10;
  periodic.push_back(unnamed);
  models.periodic = PeriodicModelSet::from_models(periodic);

  const std::vector<std::vector<std::string>> traces{
      {"cam:motion", "bulb:on"}, {"plug:on_off", "plug:on_off"}};
  models.pfsm = infer_pfsm(traces).pfsm;
  models.training_traces = traces;
  models.short_term = ShortTermThreshold::calibrate(models.pfsm, traces);
  models.thresholds.short_term = models.short_term.value();

  // One split tree + one leaf tree: covers internal nodes, leaves, empty
  // and filled distribution arrays.
  std::vector<DecisionTree::Node> split_nodes;
  split_nodes.push_back({2, 417.25, 1, 2, {}});
  split_nodes.push_back({-1, 0.0, -1, -1, {0.9, 0.1}});
  split_nodes.push_back({-1, 0.0, -1, -1, {0.2, 0.8}});
  std::vector<DecisionTree> trees;
  trees.push_back(DecisionTree::from_nodes(2, std::move(split_nodes)));
  trees.push_back(DecisionTree::from_nodes(
      2, {DecisionTree::Node{-1, 0.0, -1, -1, {0.4, 0.6}}}));
  UserActionModels::ClassifierMap classifiers;
  classifiers[3].push_back(
      {"cam:motion", RandomForest::from_trees(2, std::move(trees))});
  models.user_actions =
      UserActionModels::from_classifiers(std::move(classifiers), 0.6);
  return models;
}

/// Rewrites the trailing CRC so a deliberately patched image stays
/// structurally valid — the test then probes the *section* parser.
void fix_crc(std::string& image) {
  const std::uint32_t crc =
      crc32_ieee(as_bytes(image).first(image.size() - 4));
  for (int i = 0; i < 4; ++i) {
    image[image.size() - 4 + static_cast<std::size_t>(i)] =
        static_cast<char>((crc >> (8 * i)) & 0xff);
  }
}

TEST(SerializeBinary, RoundTripPreservesEverySection) {
  const BehaviorModelSet original = full_models();
  const std::string image = save_models_binary(original);
  const BehaviorModelSet loaded = load_models_binary(as_bytes(image));

  ASSERT_EQ(loaded.periodic.size(), original.periodic.size());
  const PeriodicModel* hb = loaded.periodic.find(3, "hb.vendor.com|TLS");
  ASSERT_NE(hb, nullptr);
  EXPECT_DOUBLE_EQ(hb->period_seconds, 600.125);
  EXPECT_DOUBLE_EQ(hb->tolerance_seconds, 12.5);
  EXPECT_DOUBLE_EQ(hb->autocorr_score, 0.93);
  EXPECT_EQ(hb->support, 144u);
  EXPECT_EQ(hb->absent_generations, 2u);
  EXPECT_EQ(hb->app, AppProtocol::kTls);
  ASSERT_EQ(hb->secondary_periods.size(), 2u);
  EXPECT_DOUBLE_EQ(hb->secondary_periods[1], 7200.5);
  const PeriodicModel* unnamed = loaded.periodic.find(4, "54.1.2.3|UDP");
  ASSERT_NE(unnamed, nullptr);
  EXPECT_TRUE(unnamed->domain.empty());

  EXPECT_EQ(loaded.pfsm.num_states(), original.pfsm.num_states());
  EXPECT_EQ(loaded.pfsm.num_transitions(), original.pfsm.num_transitions());
  for (const auto& trace : original.training_traces) {
    EXPECT_TRUE(loaded.pfsm.accepts(trace));
    EXPECT_DOUBLE_EQ(loaded.pfsm.trace_probability(trace),
                     original.pfsm.trace_probability(trace));
  }
  EXPECT_EQ(loaded.training_traces, original.training_traces);
  EXPECT_DOUBLE_EQ(loaded.short_term.value(), original.short_term.value());
  EXPECT_DOUBLE_EQ(loaded.thresholds.periodic, original.thresholds.periodic);
}

TEST(SerializeBinary, RoundTripPreservesForests) {
  // The discriminating property: the text format drops user-action forests,
  // the binary format must reproduce their exact decision function.
  const BehaviorModelSet original = full_models();
  const std::string image = save_models_binary(original);
  const BehaviorModelSet loaded = load_models_binary(as_bytes(image));

  ASSERT_EQ(loaded.user_actions.size(), 1u);
  EXPECT_DOUBLE_EQ(loaded.user_actions.decision_threshold(), 0.6);
  const auto& device_classifiers = loaded.user_actions.classifiers();
  ASSERT_EQ(device_classifiers.count(3), 1u);
  const auto& list = device_classifiers.at(3);
  ASSERT_EQ(list.size(), 1u);
  EXPECT_EQ(list[0].activity, "cam:motion");
  const RandomForest& forest = list[0].forest;
  ASSERT_EQ(forest.num_trees(), 2u);
  const RandomForest& original_forest =
      original.user_actions.classifiers().at(3)[0].forest;
  for (const double x : {0.0, 400.0, 417.25, 500.0, 1500.0}) {
    const std::vector<double> row{0.0, 0.0, x, 0.0, 0.0, 0.0};
    const auto got = forest.predict_proba(row);
    const auto want = original_forest.predict_proba(row);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t c = 0; c < got.size(); ++c) {
      EXPECT_DOUBLE_EQ(got[c], want[c]) << "x=" << x << " class " << c;
    }
  }
}

TEST(SerializeBinary, SaveLoadSaveIsByteIdentical) {
  const std::string image = save_models_binary(full_models());
  const BehaviorModelSet loaded = load_models_binary(as_bytes(image));
  EXPECT_EQ(save_models_binary(loaded), image);
}

TEST(SerializeBinary, TextToBinaryToTextReproducesGoldenByteIdentical) {
  // The acceptance property on the real trained artifact: the golden
  // periodic model file survives text → binary → text without a byte of
  // drift (hexfloat doubles, absence trailers, blank domains and all).
  const std::string golden_path =
      std::string(BEHAVIOT_TEST_DATA_DIR) + "/golden_periodic_models.txt";
  const std::string golden_text = read_file(golden_path);
  std::istringstream in(golden_text);
  const BehaviorModelSet models = load_models(in, ParsePolicy::kStrict);

  const std::string image = save_models_binary(models);
  const BehaviorModelSet reloaded = load_models_binary(as_bytes(image));
  std::ostringstream out;
  save_models(out, reloaded);
  EXPECT_EQ(out.str(), golden_text);
}

TEST(SerializeBinary, GoldenBbmLoadsAndResavesByteIdentical) {
  // Format-compatibility pin: the checked-in .bbm must parse with today's
  // loader and re-serialize byte-identically. A layout change that breaks
  // existing model stores fails here (and requires a version bump plus a
  // regenerated golden).
  const std::string golden_path =
      std::string(BEHAVIOT_TEST_DATA_DIR) + "/golden_models.bbm";
  const std::string image = read_file(golden_path);
  const BehaviorModelSet models =
      load_models_binary(as_bytes(image), ParsePolicy::kStrict);
  EXPECT_GT(models.periodic.size(), 0u);
  EXPECT_EQ(save_models_binary(models), image);
}

TEST(SerializeBinary, FileDispatchSelectsFormatByExtension) {
  EXPECT_TRUE(is_binary_model_path("models.bbm"));
  EXPECT_TRUE(is_binary_model_path("MODELS.BBM"));
  EXPECT_FALSE(is_binary_model_path("models.txt"));
  EXPECT_FALSE(is_binary_model_path("bbm"));

  const std::string dir = ::testing::TempDir();
  const BehaviorModelSet models = full_models();

  const std::string bin_path = dir + "/models.bbm";
  save_models_file(bin_path, models);
  const std::string on_disk = read_file(bin_path);
  ASSERT_GE(on_disk.size(), 4u);
  EXPECT_EQ(on_disk.substr(0, 4), "BBM1");
  const BehaviorModelSet from_bin = load_models_file(bin_path);
  EXPECT_EQ(from_bin.user_actions.size(), 1u);  // binary carries forests

  const std::string text_path = dir + "/models.txt";
  save_models_file(text_path, models);
  EXPECT_EQ(read_file(text_path).substr(0, 15), "behaviot-models");
  const BehaviorModelSet from_text = load_models_file(text_path);
  EXPECT_EQ(from_text.user_actions.size(), 0u);  // text does not
  EXPECT_EQ(from_text.periodic.size(), from_bin.periodic.size());

  std::filesystem::remove(bin_path);
  std::filesystem::remove(text_path);
}

TEST(SerializeBinary, RejectsBadMagicWithOffsetZero) {
  std::string image = save_models_binary(full_models());
  image[0] = 'X';
  try {
    load_models_binary(as_bytes(image));
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_EQ(e.offset(), 0u);
  }
  // Bad magic is not a model file at all: both policies throw.
  EXPECT_THROW(load_models_binary(as_bytes(image), ParsePolicy::kLenient),
               SerializationError);
}

TEST(SerializeBinary, RejectsUnsupportedVersionAndFlags) {
  std::string image = save_models_binary(full_models());
  std::string bumped = image;
  bumped[4] = 2;  // version 2
  try {
    load_models_binary(as_bytes(bumped));
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_EQ(e.offset(), 4u);
  }
  std::string flagged = image;
  flagged[6] = 1;  // reserved flags must be zero
  try {
    load_models_binary(as_bytes(flagged));
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_EQ(e.offset(), 6u);
  }
}

TEST(SerializeBinary, StrictRejectsFlippedCrcLenientCountsIt) {
  std::string image = save_models_binary(full_models());
  image.back() = static_cast<char>(image.back() ^ 0x40);
  try {
    load_models_binary(as_bytes(image), ParsePolicy::kStrict);
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_EQ(e.offset(), image.size() - 4);
  }
  ParseStats stats;
  const BehaviorModelSet loaded =
      load_models_binary(as_bytes(image), ParsePolicy::kLenient, &stats);
  EXPECT_EQ(stats.malformed, 1u);  // damage disclosed
  EXPECT_EQ(loaded.periodic.size(), 2u);  // payload bytes were intact
}

TEST(SerializeBinary, StrictRejectsFlippedPayloadByteViaCrc) {
  // A single flipped payload bit that still parses structurally is exactly
  // what the CRC exists for.
  std::string image = save_models_binary(full_models());
  image[image.size() / 2] = static_cast<char>(image[image.size() / 2] ^ 1);
  EXPECT_THROW(load_models_binary(as_bytes(image), ParsePolicy::kStrict),
               SerializationError);
}

TEST(SerializeBinary, TruncationAtEverySectionBoundaryThrowsWithOffset) {
  const std::string image = save_models_binary(full_models());
  // Recompute the section boundaries from the table the image itself
  // declares (header is 12 bytes, entries 16, size at entry offset +8).
  const auto u32at = [&](std::size_t at) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{static_cast<std::uint8_t>(
               image[at + static_cast<std::size_t>(i)])}
           << (8 * i);
    }
    return v;
  };
  const std::uint32_t n_sections = u32at(8);
  ASSERT_EQ(n_sections, 5u);
  std::vector<std::size_t> boundaries;
  std::size_t offset = 12 + static_cast<std::size_t>(n_sections) * 16;
  boundaries.push_back(offset);
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    std::uint64_t size = 0;
    const std::size_t at = 12 + static_cast<std::size_t>(i) * 16 + 8;
    for (int b = 0; b < 8; ++b) {
      size |= std::uint64_t{static_cast<std::uint8_t>(
                  image[at + static_cast<std::size_t>(b)])}
              << (8 * b);
    }
    offset += static_cast<std::size_t>(size);
    boundaries.push_back(offset);
  }
  EXPECT_EQ(boundaries.back() + 4, image.size());

  for (const std::size_t cut : boundaries) {
    const auto prefix = as_bytes(image).first(cut);
    for (const ParsePolicy policy :
         {ParsePolicy::kStrict, ParsePolicy::kLenient}) {
      try {
        // Structural damage (sizes no longer fit) throws in both policies.
        load_models_binary(prefix, policy);
        FAIL() << "expected SerializationError at boundary " << cut;
      } catch (const SerializationError& e) {
        EXPECT_LE(e.offset(), cut + 1) << "boundary " << cut;
      }
    }
  }
}

TEST(SerializeBinary, OversizedCountRejectedBeforeAllocation) {
  // Patch the periodic section's model count to a value no section could
  // hold, fix the CRC so only the count is wrong: strict throws at the
  // count's offset, lenient drops the section — neither may reserve() it.
  std::string image = save_models_binary(full_models());
  const std::size_t count_at = 12 + 5 * 16;  // first payload byte
  for (int i = 0; i < 8; ++i) {
    image[count_at + static_cast<std::size_t>(i)] =
        static_cast<char>(0xff);
  }
  fix_crc(image);

  try {
    load_models_binary(as_bytes(image), ParsePolicy::kStrict);
    FAIL() << "expected SerializationError";
  } catch (const SerializationError& e) {
    EXPECT_EQ(e.offset(), count_at);
  }

  ParseStats stats;
  const BehaviorModelSet loaded =
      load_models_binary(as_bytes(image), ParsePolicy::kLenient, &stats);
  EXPECT_EQ(stats.sections_dropped, 1u);
  EXPECT_EQ(loaded.periodic.size(), 0u);
}

TEST(SerializeBinary, LenientResynchronizesAtNextSection) {
  // The section table lets the lenient loader do what the text loader
  // cannot: drop the damaged section and still parse everything after it.
  std::string image = save_models_binary(full_models());
  const std::size_t count_at = 12 + 5 * 16;
  image[count_at] = static_cast<char>(0xff);
  image[count_at + 1] = static_cast<char>(0xff);
  image[count_at + 2] = static_cast<char>(0xff);
  image[count_at + 3] = static_cast<char>(0xff);
  fix_crc(image);

  ParseStats stats;
  const BehaviorModelSet loaded =
      load_models_binary(as_bytes(image), ParsePolicy::kLenient, &stats);
  const BehaviorModelSet original = full_models();
  EXPECT_EQ(stats.sections_dropped, 1u);
  EXPECT_EQ(loaded.periodic.size(), 0u);  // damaged section dropped whole
  // Every later section survived the resync.
  EXPECT_EQ(loaded.pfsm.num_states(), original.pfsm.num_states());
  EXPECT_EQ(loaded.training_traces, original.training_traces);
  EXPECT_EQ(loaded.user_actions.size(), original.user_actions.size());
  EXPECT_DOUBLE_EQ(loaded.short_term.value(), original.short_term.value());
}

TEST(SerializeBinary, UnknownSectionIdIsSkippedForForwardCompat) {
  // Append a section with an id from "the future": same major version, so
  // today's loader must skip it and still read everything else.
  const BehaviorModelSet original = full_models();
  std::string image = save_models_binary(original);

  // Rebuild the image with an extra empty-payload section id 99.
  const std::uint32_t n_sections = 5;
  std::string patched;
  patched.append(image, 0, 8);
  const std::uint32_t new_count = n_sections + 1;
  for (int i = 0; i < 4; ++i) {
    patched.push_back(static_cast<char>((new_count >> (8 * i)) & 0xff));
  }
  patched.append(image, 12, n_sections * 16);  // existing table entries
  const std::uint32_t unknown_id = 99;
  for (int i = 0; i < 4; ++i) {
    patched.push_back(static_cast<char>((unknown_id >> (8 * i)) & 0xff));
  }
  patched.append(4, '\0');   // reserved
  patched.append(8, '\0');   // size 0
  patched.append(image, 12 + n_sections * 16,
                 image.size() - 4 - (12 + n_sections * 16));  // payloads
  patched.append(4, '\0');  // CRC placeholder
  fix_crc(patched);

  const BehaviorModelSet loaded =
      load_models_binary(as_bytes(patched), ParsePolicy::kStrict);
  EXPECT_EQ(loaded.periodic.size(), original.periodic.size());
  EXPECT_EQ(loaded.user_actions.size(), original.user_actions.size());
}

TEST(SerializeBinary, RejectsDanglingTransitionAndBadTreeChild) {
  // PFSM transition to an unknown state.
  {
    BehaviorModelSet models = full_models();
    std::string image = save_models_binary(models);
    const BehaviorModelSet loaded = load_models_binary(as_bytes(image));
    EXPECT_GT(loaded.pfsm.num_transitions(), 0u);
  }
  // Tree child index out of range: build nodes pointing past the end.
  std::vector<DecisionTree::Node> nodes;
  nodes.push_back({0, 1.0, 7, -1, {}});  // child 7 of a 2-node tree
  nodes.push_back({-1, 0.0, -1, -1, {1.0, 0.0}});
  BehaviorModelSet models = full_models();
  UserActionModels::ClassifierMap classifiers;
  std::vector<DecisionTree> trees;
  trees.push_back(DecisionTree::from_nodes(2, std::move(nodes)));
  classifiers[1].push_back(
      {"bad", RandomForest::from_trees(2, std::move(trees))});
  models.user_actions =
      UserActionModels::from_classifiers(std::move(classifiers), 0.5);
  const std::string image = save_models_binary(models);
  EXPECT_THROW(load_models_binary(as_bytes(image), ParsePolicy::kStrict),
               SerializationError);
  ParseStats stats;
  const BehaviorModelSet loaded =
      load_models_binary(as_bytes(image), ParsePolicy::kLenient, &stats);
  EXPECT_EQ(stats.sections_dropped, 1u);
  EXPECT_EQ(loaded.user_actions.size(), 0u);
  EXPECT_EQ(loaded.periodic.size(), 2u);  // earlier sections intact
}

/// Wraps one hand-built tree into a saved image, for probing the forest
/// validator with node layouts the trainer would never emit.
std::string image_with_forest(int num_classes,
                              std::vector<DecisionTree::Node> nodes) {
  BehaviorModelSet models = full_models();
  std::vector<DecisionTree> trees;
  trees.push_back(DecisionTree::from_nodes(num_classes, std::move(nodes)));
  UserActionModels::ClassifierMap classifiers;
  classifiers[1].push_back(
      {"bad", RandomForest::from_trees(num_classes, std::move(trees))});
  models.user_actions =
      UserActionModels::from_classifiers(std::move(classifiers), 0.5);
  return save_models_binary(models);
}

TEST(SerializeBinary, RejectsForestsThatWouldCrashClassify) {
  // Every layout here passes the CRC (it is faithfully serialized) but
  // violates an invariant DecisionTree::predict_proba relies on without
  // bounds checks. Each must throw under strict and drop the forest
  // section (leaving earlier sections intact) under lenient.
  struct Case {
    const char* name;
    int num_classes;
    std::vector<DecisionTree::Node> nodes;
  };
  const Case cases[] = {
      // Internal node with a -1 child: predict_proba would index
      // nodes_[size_t(-1)].
      {"internal node with leaf child marker", 2,
       {{0, 1.0, 1, -1, {}}, {-1, 0.0, -1, -1, {1.0, 0.0}}}},
      // Child pointing at the node itself: infinite walk.
      {"self-referencing child", 2,
       {{0, 1.0, 0, 1, {}}, {-1, 0.0, -1, -1, {1.0, 0.0}}}},
      // Child pointing backwards at an ancestor: cycle through the root.
      {"backward child edge", 2,
       {{0, 1.0, 1, 2, {}},
        {3, 2.0, 0, 2, {}},
        {-1, 0.0, -1, -1, {1.0, 0.0}}}},
      // Split feature past the feature-vector width: row[feature] reads
      // out of bounds.
      {"feature index out of range", 2,
       {{static_cast<int>(kNumFlowFeatures), 1.0, 1, 2, {}},
        {-1, 0.0, -1, -1, {1.0, 0.0}},
        {-1, 0.0, -1, -1, {0.0, 1.0}}}},
      // Leaf distribution shorter than num_classes: RandomForest's
      // acc[c] += p[c] and classify's proba[1] read out of bounds.
      {"short leaf distribution", 2, {{-1, 0.0, -1, -1, {1.0}}}},
      // Fewer than two classes: classify reads predict_proba(row)[1].
      {"single-class forest", 1, {{-1, 0.0, -1, -1, {1.0}}}},
  };
  for (const Case& c : cases) {
    const std::string image = image_with_forest(c.num_classes, c.nodes);
    EXPECT_THROW(load_models_binary(as_bytes(image), ParsePolicy::kStrict),
                 SerializationError)
        << c.name;
    ParseStats stats;
    const BehaviorModelSet loaded =
        load_models_binary(as_bytes(image), ParsePolicy::kLenient, &stats);
    EXPECT_EQ(stats.sections_dropped, 1u) << c.name;
    EXPECT_EQ(loaded.user_actions.size(), 0u) << c.name;
    EXPECT_EQ(loaded.periodic.size(), 2u) << c.name;
  }
}

TEST(SerializeBinary, LenientDropsDamagedTracesSectionWhole) {
  // Damage the traces section AFTER its first trace has parsed: the
  // documented lenient semantics drop the section, so no partially parsed
  // traces may leak into the result.
  std::string image = save_models_binary(full_models());
  // Walk the section table (5 fixed-order sections; traces is the 4th) to
  // find the traces payload span.
  std::size_t offset = 12 + 5 * 16;
  std::size_t traces_end = 0;
  for (std::uint32_t i = 0; i < 5; ++i) {
    std::uint64_t size = 0;
    const std::size_t at = 12 + static_cast<std::size_t>(i) * 16 + 8;
    for (int b = 0; b < 8; ++b) {
      size |= std::uint64_t{static_cast<std::uint8_t>(
                  image[at + static_cast<std::size_t>(b)])}
              << (8 * b);
    }
    offset += static_cast<std::size_t>(size);
    if (i == 3) traces_end = offset;
  }
  ASSERT_GT(traces_end, 0u);
  // The section ends with the label "plug:on_off" (11 bytes) and its u32
  // length prefix; blow up that length so the final label fails to parse.
  const std::size_t len_at = traces_end - 11 - 4;
  for (int i = 0; i < 4; ++i) {
    image[len_at + static_cast<std::size_t>(i)] = static_cast<char>(0xff);
  }
  fix_crc(image);

  EXPECT_THROW(load_models_binary(as_bytes(image), ParsePolicy::kStrict),
               SerializationError);
  ParseStats stats;
  const BehaviorModelSet loaded =
      load_models_binary(as_bytes(image), ParsePolicy::kLenient, &stats);
  EXPECT_EQ(stats.sections_dropped, 1u);
  EXPECT_TRUE(loaded.training_traces.empty());  // nothing partial committed
  EXPECT_EQ(loaded.periodic.size(), 2u);        // other sections intact
  EXPECT_EQ(loaded.user_actions.size(), 1u);
}

TEST(SerializeBinary, UnreadableModelPathThrowsTypedErrorNotBadAlloc) {
  // A missing file fails at open; a directory opens but has no meaningful
  // size — tellg-based sizing used to turn the latter into bad_alloc.
  EXPECT_THROW(load_models_binary_file("/no/such/models.bbm"),
               SerializationError);
  std::string dir = ::testing::TempDir();
  if (!dir.empty() && dir.back() == '/') dir.pop_back();
  EXPECT_THROW(load_models_binary_file(dir), SerializationError);
}

TEST(SerializeBinary, ViewMatchesMaterializedLoad) {
  const BehaviorModelSet models = full_models();
  const std::string image = save_models_binary(models);
  const BehaviorModelSet loaded = load_models_binary(as_bytes(image));
  const BinaryModelView view = BinaryModelView::open(as_bytes(image));

  ASSERT_EQ(view.periodic_count(), loaded.periodic.size());
  const std::vector<PeriodicModelView> records = view.periodic();
  ASSERT_EQ(records.size(), loaded.periodic.size());
  for (const PeriodicModelView& v : records) {
    const PeriodicModel* m = loaded.periodic.find(v.device, std::string(v.group));
    ASSERT_NE(m, nullptr) << "view-only model " << v.group;
    EXPECT_EQ(v.app, m->app);
    EXPECT_EQ(v.support, m->support);
    EXPECT_EQ(v.absent_generations, m->absent_generations);
    EXPECT_DOUBLE_EQ(v.period_seconds, m->period_seconds);
    EXPECT_DOUBLE_EQ(v.tolerance_seconds, m->tolerance_seconds);
    EXPECT_DOUBLE_EQ(v.autocorr_score, m->autocorr_score);
    EXPECT_EQ(v.domain, m->domain);
    ASSERT_EQ(v.secondary_period_count, m->secondary_periods.size());
    for (std::size_t i = 0; i < v.secondary_period_count; ++i) {
      EXPECT_DOUBLE_EQ(v.secondary_period(i), m->secondary_periods[i]);
    }
    // materialize() must reproduce the owning record exactly.
    const PeriodicModel owned = v.materialize();
    EXPECT_EQ(owned.group, m->group);
    EXPECT_EQ(owned.secondary_periods, m->secondary_periods);
  }

  const auto t = view.thresholds();
  ASSERT_TRUE(t.has_value());
  EXPECT_DOUBLE_EQ(t->periodic, models.thresholds.periodic);
  EXPECT_DOUBLE_EQ(t->long_term_z, models.thresholds.long_term_z);
  EXPECT_DOUBLE_EQ(t->short_term_mean, models.short_term.mean);

  EXPECT_TRUE(view.has_section(kSectionForests));
  EXPECT_FALSE(view.has_section(99));
}

TEST(SerializeBinary, ViewPointLookupFindsWithoutMaterializing) {
  const std::string image = save_models_binary(full_models());
  const BinaryModelView view = BinaryModelView::open(as_bytes(image));
  const auto hit = view.find_periodic(3, "hb.vendor.com|TLS");
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->period_seconds, 600.125);
  EXPECT_EQ(hit->domain, "hb.vendor.com");
  EXPECT_FALSE(view.find_periodic(3, "no.such.group|TLS").has_value());
  EXPECT_FALSE(view.find_periodic(77, "hb.vendor.com|TLS").has_value());
}

TEST(SerializeBinary, ViewOpenIsAlwaysStrict) {
  std::string image = save_models_binary(full_models());
  // Flipped payload byte: the view has no lenient mode — open() refuses.
  std::string corrupt = image;
  corrupt[corrupt.size() / 2] ^= 0x01;
  try {
    BinaryModelView::open(as_bytes(corrupt));
    FAIL() << "open() accepted a CRC-mismatched image";
  } catch (const SerializationError& e) {
    EXPECT_EQ(e.offset(), corrupt.size() - 4);
  }
  // Truncation is structural: rejected before any CRC work.
  EXPECT_THROW(
      BinaryModelView::open(as_bytes(image).first(image.size() / 2)),
      SerializationError);
}

/// Comma-decimal numpunct facet standing in for a de_DE-style locale: the
/// container images this repo tests on ship only the C/POSIX locales, so
/// the stream-side hazard is reproduced with a custom facet instead of
/// setlocale(3) names (whose availability the test probes and skips on).
struct CommaNumpunct : std::numpunct<char> {
  char do_decimal_point() const override { return ','; }
  char do_thousands_sep() const override { return '.'; }
  std::string do_grouping() const override { return "\3"; }
};

/// RAII: swaps in a comma-decimal global locale (C++ streams) and restores
/// on destruction even if the test fails mid-way.
class GlobalLocaleGuard {
 public:
  GlobalLocaleGuard()
      : previous_(std::locale::global(
            std::locale(std::locale::classic(), new CommaNumpunct))) {}
  ~GlobalLocaleGuard() { std::locale::global(previous_); }

 private:
  std::locale previous_;
};

TEST(SerializeBinary, ModelFilesAreByteIdenticalUnderCommaDecimalLocale) {
  const BehaviorModelSet models = full_models();
  std::ostringstream ref_text_os;
  save_models(ref_text_os, models);
  const std::string ref_text = ref_text_os.str();
  const std::string ref_binary = save_models_binary(models);

  {
    GlobalLocaleGuard comma_locale;
    // Writers: newly created streams inherit the comma-decimal global
    // locale; save_models must still emit classic-locale bytes (no comma
    // radix in hexfloats, no thousands grouping in integers).
    std::ostringstream text_under;
    save_models(text_under, models);
    EXPECT_EQ(text_under.str(), ref_text);
    EXPECT_EQ(save_models_binary(models), ref_binary);

    // Readers: parsing back under the same locale must reproduce the set.
    std::istringstream in(ref_text);
    const BehaviorModelSet from_text = load_models(in, ParsePolicy::kStrict);
    const PeriodicModel* hb = from_text.periodic.find(3, "hb.vendor.com|TLS");
    ASSERT_NE(hb, nullptr);
    EXPECT_DOUBLE_EQ(hb->period_seconds, 600.125);
    const BehaviorModelSet from_binary =
        load_models_binary(as_bytes(ref_binary));
    EXPECT_EQ(save_models_binary(from_binary), ref_binary);
  }

  // The setlocale(3) side (C radix used by strtod/snprintf) needs a real
  // comma-decimal locale compiled into the image; skip that half when none
  // exists rather than silently testing nothing.
  const char* const named = std::setlocale(LC_ALL, "de_DE.UTF-8");
  if (named == nullptr) {
    GTEST_SKIP() << "no comma-decimal C locale available in this image";
  }
  std::ostringstream text_under;
  save_models(text_under, models);
  const std::string bin_under = save_models_binary(models);
  std::istringstream in(ref_text);
  const BehaviorModelSet from_text = load_models(in, ParsePolicy::kStrict);
  std::setlocale(LC_ALL, "C");
  EXPECT_EQ(text_under.str(), ref_text);
  EXPECT_EQ(bin_under, ref_binary);
  EXPECT_EQ(from_text.periodic.size(), models.periodic.size());
}

}  // namespace
}  // namespace behaviot
