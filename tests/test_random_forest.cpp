#include "behaviot/ml/random_forest.hpp"

#include <gtest/gtest.h>

namespace behaviot {
namespace {

Dataset gaussian_blobs(std::uint64_t seed, std::size_t per_class) {
  Rng rng(seed);
  Dataset d;
  for (std::size_t i = 0; i < per_class; ++i) {
    d.add({rng.normal(0, 1), rng.normal(0, 1)}, 0);
    d.add({rng.normal(6, 1), rng.normal(6, 1)}, 1);
  }
  return d;
}

TEST(RandomForest, UntrainedPredictsZeroVector) {
  const RandomForest forest;
  const std::vector<double> row{1.0, 2.0};
  const auto proba = forest.predict_proba(row);
  EXPECT_TRUE(proba.empty());
}

TEST(RandomForest, SeparatesGaussianBlobs) {
  const Dataset d = gaussian_blobs(1, 100);
  RandomForest forest({.num_trees = 15, .seed = 5});
  forest.fit(d, 2);
  EXPECT_EQ(forest.num_trees(), 15u);

  Rng rng(2);
  int correct = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const bool cls1 = i % 2 == 1;
    const double cx = cls1 ? 6.0 : 0.0;
    const std::vector<double> row{cx + rng.normal(0, 1), cx + rng.normal(0, 1)};
    if (forest.predict(row) == (cls1 ? 1 : 0)) ++correct;
  }
  EXPECT_GT(correct, 190);
}

TEST(RandomForest, ProbabilitiesAreCalibratedAtCenters) {
  const Dataset d = gaussian_blobs(3, 150);
  RandomForest forest({.num_trees = 30, .seed = 9});
  forest.fit(d, 2);
  const auto p0 = forest.predict_proba(std::vector<double>{0.0, 0.0});
  const auto p1 = forest.predict_proba(std::vector<double>{6.0, 6.0});
  EXPECT_GT(p0[0], 0.9);
  EXPECT_GT(p1[1], 0.9);
}

TEST(RandomForest, DeterministicGivenSeed) {
  const Dataset d = gaussian_blobs(4, 50);
  RandomForest a({.num_trees = 10, .seed = 77});
  RandomForest b({.num_trees = 10, .seed = 77});
  a.fit(d, 2);
  b.fit(d, 2);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> row{rng.uniform(-3, 9), rng.uniform(-3, 9)};
    EXPECT_EQ(a.predict_proba(row), b.predict_proba(row));
  }
}

TEST(RandomForest, DifferentSeedsDifferSomewhere) {
  const Dataset d = gaussian_blobs(6, 50);
  RandomForest a({.num_trees = 5, .seed = 1});
  RandomForest b({.num_trees = 5, .seed = 2});
  a.fit(d, 2);
  b.fit(d, 2);
  Rng rng(7);
  bool any_diff = false;
  for (int i = 0; i < 200 && !any_diff; ++i) {
    const std::vector<double> row{rng.uniform(-3, 9), rng.uniform(-3, 9)};
    any_diff = a.predict_proba(row) != b.predict_proba(row);
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomForest, EmptyDatasetIsHarmless) {
  RandomForest forest;
  forest.fit(Dataset{}, 2);
  EXPECT_EQ(forest.num_trees(), 0u);
}

TEST(RandomForest, MulticlassPrediction) {
  Rng rng(8);
  Dataset d;
  for (int i = 0; i < 80; ++i) {
    d.add({rng.normal(0, 0.5)}, 0);
    d.add({rng.normal(5, 0.5)}, 1);
    d.add({rng.normal(10, 0.5)}, 2);
  }
  RandomForest forest({.num_trees = 20, .seed = 3});
  forest.fit(d, 3);
  EXPECT_EQ(forest.predict(std::vector<double>{0.1}), 0);
  EXPECT_EQ(forest.predict(std::vector<double>{5.1}), 1);
  EXPECT_EQ(forest.predict(std::vector<double>{9.8}), 2);
}

// Property: forest accuracy improves (or stays) with more trees on a fixed
// noisy problem.
TEST(RandomForest, BaggingStabilizesNoisyLabels) {
  Rng rng(10);
  Dataset d;
  for (int i = 0; i < 300; ++i) {
    const bool cls1 = i % 2 == 1;
    const double cx = cls1 ? 2.0 : 0.0;
    // 10% label noise.
    const int label = rng.chance(0.1) ? (cls1 ? 0 : 1) : (cls1 ? 1 : 0);
    d.add({cx + rng.normal(0, 0.7), cx + rng.normal(0, 0.7)}, label);
  }
  auto accuracy = [&](std::size_t trees) {
    RandomForest forest({.num_trees = trees, .seed = 11});
    forest.fit(d, 2);
    Rng eval(12);
    int correct = 0;
    for (int i = 0; i < 400; ++i) {
      const bool cls1 = i % 2 == 1;
      const double cx = cls1 ? 2.0 : 0.0;
      const std::vector<double> row{cx + eval.normal(0, 0.7),
                                    cx + eval.normal(0, 0.7)};
      if (forest.predict(row) == (cls1 ? 1 : 0)) ++correct;
    }
    return correct;
  };
  EXPECT_GE(accuracy(25) + 8, accuracy(1));  // ensemble ≥ single tree (slack)
}

}  // namespace
}  // namespace behaviot
