#include "behaviot/periodic/periodic_model.hpp"

#include <gtest/gtest.h>

#include "behaviot/flow/assembler.hpp"
#include "behaviot/periodic/periodic_classifier.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

/// Small idle capture assembled into ground-truth-tagged flows.
struct IdleFixture {
  std::vector<FlowRecord> flows;
  double window_seconds = 0.0;

  explicit IdleFixture(double days = 0.6, std::uint64_t seed = 41) {
    const auto capture = testbed::Datasets::idle(seed, days);
    DomainResolver resolver;
    testbed::configure_resolver(resolver, capture);
    FlowAssembler assembler;
    flows = assembler.assemble(capture.packets, resolver);
    testbed::apply_ground_truth(flows, capture.truths);
    window_seconds = days * 86400.0;
  }
};

/// One shared fixture: dataset generation + inference dominate this suite's
/// runtime, and every test below reads the same observation window.
const IdleFixture& shared_fixture() {
  static const IdleFixture fixture;
  return fixture;
}

const PeriodicModelSet& shared_models() {
  static const PeriodicModelSet models = PeriodicModelSet::infer(
      shared_fixture().flows, shared_fixture().window_seconds);
  return models;
}

TEST(PeriodicModelSet, InfersModelsFromIdleTraffic) {
  const auto& models = shared_models();
  // 49 devices with 457 periodic behaviors; the window sees those with
  // enough cycles. Expect a substantial majority.
  EXPECT_GT(models.size(), 250u);
  EXPECT_GT(models.stats().coverage(), 0.9);
}

TEST(PeriodicModelSet, FindsKnownGroup) {
  const auto& models = shared_models();
  const auto* plug = testbed::Catalog::standard().by_name("tplink_plug");
  const auto plug_models = models.models_for(plug->id);
  EXPECT_GE(plug_models.size(), 2u);  // DNS + NTP + cloud (window permitting)
  for (const PeriodicModel* m : plug_models) {
    EXPECT_EQ(m->device, plug->id);
    EXPECT_GT(m->period_seconds, 0.0);
    EXPECT_GT(m->tolerance_seconds, 0.0);
    EXPECT_LE(m->tolerance_seconds, 0.15 * m->period_seconds + 1.0);
    EXPECT_EQ(models.find(plug->id, m->group), m);
  }
}

TEST(PeriodicModelSet, FindReturnsNullForUnknownGroup) {
  const auto& models = shared_models();
  EXPECT_EQ(models.find(0, "no-such-group|TCP"), nullptr);
  EXPECT_EQ(models.find(9999, "x|TCP"), nullptr);
}

TEST(PeriodicModelSet, InferredPeriodsMatchProfiles) {
  const IdleFixture& fixture = shared_fixture();
  const auto& models = shared_models();
  testbed::TrafficGenerator gen(testbed::Catalog::standard(), 41);
  const auto* plug = testbed::Catalog::standard().by_name("tplink_plug");
  const auto& profile = gen.profile(plug->id);
  for (const auto& behavior : profile.periodic) {
    if (fixture.window_seconds / behavior.period_s < 5) continue;
    // Find the matching inferred model by domain.
    bool matched = false;
    for (const PeriodicModel* m : models.models_for(plug->id)) {
      if (m->domain == behavior.domain &&
          std::abs(m->period_seconds - behavior.period_s) <
              0.05 * behavior.period_s) {
        matched = true;
      }
    }
    EXPECT_TRUE(matched) << behavior.domain << " T=" << behavior.period_s;
  }
}

TEST(PeriodicClassifier, TimerAcceptsOnScheduleFlows) {
  const IdleFixture& train = shared_fixture();
  const auto& models = shared_models();
  PeriodicEventClassifier classifier(models);
  std::size_t periodic = 0, total = 0;
  for (const FlowRecord& f : train.flows) {
    const auto result = classifier.classify(f);
    if (f.truth == EventKind::kPeriodic) {
      ++total;
      if (result.periodic) ++periodic;
    }
  }
  // The paper reports 99.2% periodic-event accuracy; allow slack on the
  // small fixture.
  EXPECT_GT(static_cast<double>(periodic) / static_cast<double>(total), 0.95);
}

TEST(PeriodicClassifier, ClusterStageCatchesTimerMisses) {
  const IdleFixture& train = shared_fixture();
  const auto& models = shared_models();
  PeriodicEventClassifier classifier(models);
  std::size_t via_timer = 0, via_cluster = 0;
  for (const FlowRecord& f : train.flows) {
    const auto result = classifier.classify(f);
    via_timer += result.via_timer ? 1 : 0;
    via_cluster += result.via_cluster ? 1 : 0;
  }
  EXPECT_GT(via_timer, via_cluster);  // timers carry the bulk
  EXPECT_GT(via_cluster, 0u);         // congestion-delayed flows exist
}

TEST(PeriodicClassifier, ResetClearsTimerState) {
  const IdleFixture& train = shared_fixture();
  const auto& models = shared_models();
  PeriodicEventClassifier classifier(models);
  ASSERT_FALSE(train.flows.empty());
  const FlowRecord& first = train.flows.front();
  const auto a = classifier.classify(first);
  classifier.reset();
  const auto b = classifier.classify(first);
  EXPECT_EQ(a.periodic, b.periodic);
  EXPECT_EQ(a.elapsed_seconds, b.elapsed_seconds);
}

TEST(FeatureScaler, StandardizesTrainingRows) {
  std::vector<FeatureVector> rows(10);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    rows[i].fill(0.0);
    rows[i][0] = static_cast<double>(i);  // mean 4.5
    rows[i][1] = 100.0;                   // constant
  }
  const FeatureScaler scaler(rows);
  const auto t = scaler.transform(rows[0]);
  EXPECT_NEAR(t[0], (0.0 - 4.5) / 2.8722813232690143, 1e-9);
  EXPECT_NEAR(t[1], 0.0, 1e-6);  // constant column maps to ~0
}

TEST(PeriodicInferenceStats, CoverageFormula) {
  PeriodicInferenceStats stats;
  EXPECT_DOUBLE_EQ(stats.coverage(), 0.0);
  stats.total_flows = 200;
  stats.flows_in_periodic_groups = 150;
  EXPECT_DOUBLE_EQ(stats.coverage(), 0.75);
}

}  // namespace
}  // namespace behaviot
