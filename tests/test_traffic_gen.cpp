#include "behaviot/testbed/traffic_gen.hpp"

#include <gtest/gtest.h>

#include "behaviot/flow/assembler.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot::testbed {
namespace {

const Catalog& catalog() { return Catalog::standard(); }

TEST(TrafficGenerator, BackgroundBeaconCountTracksPeriods) {
  TrafficGenerator gen(catalog(), 1);
  const DeviceInfo* plug = catalog().by_name("tplink_plug");
  GeneratedCapture out;
  const double window_s = 6.0 * 3600;
  gen.gen_background(plug->id, Timestamp(0), Timestamp::from_seconds(window_s),
                     {}, out);
  // Expected flows: sum over periodic behaviors of window/period (+ a few
  // aperiodic). The plug has 3 behaviors: DNS 3603, NTP 3603, cloud.
  double expected = 0;
  for (const auto& b : gen.profile(plug->id).periodic) {
    expected += window_s / b.period_s;
  }
  EXPECT_NEAR(static_cast<double>(out.truths.size()), expected,
              expected * 0.35 + 3.0);
}

TEST(TrafficGenerator, BackgroundIsPhaseContinuousAcrossWindows) {
  // Generating [0, 12h) in one call or as two 6 h calls must produce the
  // same periodic grid (same truth count, no boundary duplication).
  TrafficGenerator gen_full(catalog(), 2);
  TrafficGenerator gen_split(catalog(), 2);
  const DeviceInfo* plug = catalog().by_name("tplink_plug");

  GeneratedCapture full;
  gen_full.gen_background(plug->id, Timestamp(0),
                          Timestamp::from_seconds(12 * 3600.0), {}, full);
  GeneratedCapture split;
  gen_split.gen_background(plug->id, Timestamp(0),
                           Timestamp::from_seconds(6 * 3600.0), {}, split);
  gen_split.gen_background(plug->id, Timestamp::from_seconds(6 * 3600.0),
                           Timestamp::from_seconds(12 * 3600.0), {}, split);
  // Aperiodic arrivals may differ (independent Poisson draws); periodic
  // grids must agree within the aperiodic budget.
  EXPECT_NEAR(static_cast<double>(full.truths.size()),
              static_cast<double>(split.truths.size()), 4.0);
}

TEST(TrafficGenerator, OutagesSuppressBackground) {
  TrafficGenerator gen(catalog(), 3);
  const DeviceInfo* cam = catalog().by_name("ring_camera");
  GeneratedCapture normal;
  gen.gen_background(cam->id, Timestamp(0), Timestamp::from_seconds(86400), {},
                     normal);
  TrafficGenerator gen2(catalog(), 3);
  GeneratedCapture outage;
  const OutageSpans spans{{Timestamp::from_seconds(3600 * 6),
                           Timestamp::from_seconds(3600 * 18)}};
  gen2.gen_background(cam->id, Timestamp(0), Timestamp::from_seconds(86400),
                      spans, outage);
  EXPECT_LT(outage.truths.size(), normal.truths.size());
  for (const FlowTruth& t : outage.truths) {
    const bool inside = t.start >= spans[0].first && t.start < spans[0].second;
    EXPECT_FALSE(inside);
  }
}

TEST(TrafficGenerator, UserEventEmitsTruthAndEvent) {
  TrafficGenerator gen(catalog(), 4);
  const DeviceInfo* bulb = catalog().by_name("tplink_bulb");
  GeneratedCapture out;
  gen.gen_user_event(bulb->id, "on", Timestamp::from_seconds(100), out);
  ASSERT_EQ(out.events.size(), 1u);
  EXPECT_EQ(out.events[0].device_name, "tplink_bulb");
  EXPECT_EQ(out.events[0].activity, "on");
  ASSERT_GE(out.truths.size(), 1u);
  for (const FlowTruth& t : out.truths) {
    EXPECT_EQ(t.kind, EventKind::kUser);
    EXPECT_EQ(t.label, "tplink_bulb:on");
  }
  EXPECT_FALSE(out.packets.empty());
}

TEST(TrafficGenerator, UnknownCommandIsIgnored) {
  TrafficGenerator gen(catalog(), 5);
  GeneratedCapture out;
  gen.gen_user_event(catalog().by_name("tplink_plug")->id, "fly",
                     Timestamp(0), out);
  EXPECT_TRUE(out.events.empty());
  EXPECT_TRUE(out.packets.empty());
}

TEST(TrafficGenerator, GroundTruthJoinsEveryFlow) {
  TrafficGenerator gen(catalog(), 6);
  const DeviceInfo* plug = catalog().by_name("amazon_plug");
  GeneratedCapture capture;
  gen.gen_dns_bootstrap(plug->id, Timestamp(0), capture);
  gen.gen_background(plug->id, Timestamp(0), Timestamp::from_seconds(7200), {},
                     capture);
  gen.gen_user_event(plug->id, "on", Timestamp::from_seconds(3000), capture);
  capture.sort_packets();

  DomainResolver resolver;
  configure_resolver(resolver, capture);
  FlowAssembler assembler;
  auto flows = assembler.assemble(capture.packets, resolver);
  const std::size_t unmatched = apply_ground_truth(flows, capture.truths);
  EXPECT_EQ(unmatched, 0u);
  for (const FlowRecord& f : flows) {
    EXPECT_NE(f.truth, EventKind::kUnknown);
  }
}

TEST(TrafficGenerator, DnsBootstrapTeachesResolver) {
  TrafficGenerator gen(catalog(), 7);
  const DeviceInfo* bulb = catalog().by_name("govee_bulb");
  GeneratedCapture capture;
  TrafficGenerator::add_static_rdns(capture);  // gateway's resolver config
  gen.gen_dns_bootstrap(bulb->id, Timestamp(0), capture);
  capture.sort_packets();

  DomainResolver resolver;
  configure_resolver(resolver, capture);
  for (const Packet& p : capture.packets) resolver.observe(p);

  // Every periodic destination of the device resolves (DNS or rDNS).
  for (const auto& behavior : gen.profile(bulb->id).periodic) {
    EXPECT_EQ(resolver.resolve(ip_for_domain(behavior.domain)),
              behavior.domain);
  }
}

TEST(TrafficGenerator, TlsFlowsCarrySni) {
  TrafficGenerator gen(catalog(), 8);
  const DeviceInfo* cam = catalog().by_name("ring_camera");
  GeneratedCapture out;
  gen.gen_background(cam->id, Timestamp(0), Timestamp::from_seconds(86400), {},
                     out);
  bool any_sni = false;
  for (const Packet& p : out.packets) {
    if (!p.payload.empty() && p.tuple.dst.port == 443) any_sni = true;
  }
  EXPECT_TRUE(any_sni);
}

TEST(TrafficGenerator, FlowPacketsStayWithinBurstGap) {
  // All packets of one generated flow must be < 1 s apart, or the assembler
  // would split them and the truth join would fail.
  TrafficGenerator gen(catalog(), 9);
  const DeviceInfo* bulb = catalog().by_name("tplink_bulb");
  GeneratedCapture out;
  for (int i = 0; i < 20; ++i) {
    gen.gen_user_event(bulb->id, "color",
                       Timestamp::from_seconds(100.0 * (i + 1)), out);
  }
  std::map<FiveTuple, Timestamp, std::less<FiveTuple>> last;
  for (const Packet& p : out.packets) {
    auto it = last.find(p.tuple);
    if (it != last.end()) {
      EXPECT_LT(p.ts - it->second, seconds(1.0));
    }
    last[p.tuple] = p.ts;
  }
}

TEST(GeneratedCapture, MergeCombines) {
  GeneratedCapture a;
  a.start = Timestamp(0);
  a.end = Timestamp(100);
  a.packets.resize(2);
  GeneratedCapture b;
  b.start = Timestamp(50);
  b.end = Timestamp(300);
  b.packets.resize(3);
  a.merge(std::move(b));
  EXPECT_EQ(a.packets.size(), 5u);
  EXPECT_EQ(a.start, Timestamp(0));
  EXPECT_EQ(a.end, Timestamp(300));
}

}  // namespace
}  // namespace behaviot::testbed
