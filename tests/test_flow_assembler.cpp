#include "behaviot/flow/assembler.hpp"

#include <gtest/gtest.h>

#include "behaviot/net/dns.hpp"

namespace behaviot {
namespace {

Packet packet_at(std::int64_t us, std::uint16_t src_port = 40000,
                 std::uint16_t dst_port = 443,
                 Transport proto = Transport::kTcp) {
  Packet p;
  p.ts = Timestamp(us);
  p.tuple = {{Ipv4Addr(192, 168, 1, 7), src_port},
             {Ipv4Addr(54, 1, 2, 3), dst_port},
             proto};
  p.size = 100;
  p.dir = Direction::kOutbound;
  p.device = 7;
  return p;
}

TEST(FlowAssembler, GroupsSameTupleIntoOneFlow) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  const std::vector<Packet> packets{packet_at(0), packet_at(100'000),
                                    packet_at(500'000)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets.size(), 3u);
  EXPECT_EQ(flows[0].device, 7);
  EXPECT_EQ(flows[0].start, Timestamp(0));
  EXPECT_EQ(flows[0].end, Timestamp(500'000));
}

TEST(FlowAssembler, SplitsAtBurstGap) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  // Gap of exactly 1 s does NOT split (threshold is strict >).
  const std::vector<Packet> packets{packet_at(0), packet_at(1'000'000),
                                    packet_at(2'000'001), packet_at(2'900'000)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].packets.size(), 2u);
  EXPECT_EQ(flows[1].packets.size(), 2u);
}

TEST(FlowAssembler, DistinctTuplesSeparateFlows) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  const std::vector<Packet> packets{packet_at(0, 40000), packet_at(10, 40001),
                                    packet_at(20, 40000)};
  const auto flows = assembler.assemble(packets, resolver);
  EXPECT_EQ(flows.size(), 2u);
}

TEST(FlowAssembler, UnsortedInputIsSorted) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  const std::vector<Packet> packets{packet_at(2'500'000), packet_at(0),
                                    packet_at(400'000)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 2u);  // 0 & 0.4s together, 2.5s separate
  EXPECT_EQ(flows[0].packets.size(), 2u);
  EXPECT_LT(flows[0].start, flows[1].start);
}

TEST(FlowAssembler, AnnotatesDomainFromDnsSeenEarlier) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  Packet dns;
  dns.ts = Timestamp(0);
  dns.tuple = {{Ipv4Addr(192, 168, 1, 7), 39000},
               {Ipv4Addr(155, 33, 10, 53), 53},
               Transport::kUdp};
  dns.dir = Direction::kInbound;
  dns.payload = make_dns_response(1, "api.example.com", Ipv4Addr(54, 1, 2, 3));
  dns.size = 100;
  dns.device = 7;

  const std::vector<Packet> packets{dns, packet_at(2'000'000)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[1].domain, "api.example.com");
  EXPECT_EQ(flows[1].group_key(), "api.example.com|TLS");
}

TEST(FlowAssembler, BlankDomainGroupsFallBackToIp) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  const std::vector<Packet> packets{packet_at(0)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].domain, "");
  // Unresolved flows carry a stable "unresolved:" prefix so a raw-IP group
  // can never collide with a domain named like an address.
  EXPECT_EQ(flows[0].group_key(), "unresolved:54.1.2.3|TLS");
}

TEST(FlowAssembler, DropInfrastructureFiltersDnsNtp) {
  DomainResolver resolver;
  AssemblerOptions options;
  options.drop_infrastructure = true;
  const FlowAssembler assembler(options);
  const std::vector<Packet> packets{
      packet_at(0, 40000, 53, Transport::kUdp),
      packet_at(10, 40001, 123, Transport::kUdp),
      packet_at(20, 40002, 443, Transport::kTcp)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].app, AppProtocol::kTls);
}

TEST(FlowAssembler, EmptyCapture) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  const auto flows = assembler.assemble(std::vector<Packet>{}, resolver);
  EXPECT_TRUE(flows.empty());
}

TEST(FlowRecord, TotalBytesAndDuration) {
  FlowRecord f;
  f.start = Timestamp(0);
  f.end = Timestamp(seconds(2.0));
  f.packets = {{Timestamp(0), 100, Direction::kOutbound, false},
               {Timestamp(seconds(2.0)), 200, Direction::kInbound, false}};
  EXPECT_EQ(f.total_bytes(), 300u);
  EXPECT_DOUBLE_EQ(f.duration_seconds(), 2.0);
}

TEST(EventKind, Names) {
  EXPECT_STREQ(to_string(EventKind::kPeriodic), "periodic");
  EXPECT_STREQ(to_string(EventKind::kUser), "user");
  EXPECT_STREQ(to_string(EventKind::kAperiodic), "aperiodic");
  EXPECT_STREQ(to_string(EventKind::kUnknown), "unknown");
}

}  // namespace
}  // namespace behaviot
