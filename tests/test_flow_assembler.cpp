#include "behaviot/flow/assembler.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "behaviot/net/dns.hpp"

namespace behaviot {
namespace {

Packet packet_at(std::int64_t us, std::uint16_t src_port = 40000,
                 std::uint16_t dst_port = 443,
                 Transport proto = Transport::kTcp) {
  Packet p;
  p.ts = Timestamp(us);
  p.tuple = {{Ipv4Addr(192, 168, 1, 7), src_port},
             {Ipv4Addr(54, 1, 2, 3), dst_port},
             proto};
  p.size = 100;
  p.dir = Direction::kOutbound;
  p.device = 7;
  return p;
}

TEST(FlowAssembler, GroupsSameTupleIntoOneFlow) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  const std::vector<Packet> packets{packet_at(0), packet_at(100'000),
                                    packet_at(500'000)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].packets.size(), 3u);
  EXPECT_EQ(flows[0].device, 7);
  EXPECT_EQ(flows[0].start, Timestamp(0));
  EXPECT_EQ(flows[0].end, Timestamp(500'000));
}

TEST(FlowAssembler, SplitsAtBurstGap) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  // Gap of exactly 1 s does NOT split (threshold is strict >).
  const std::vector<Packet> packets{packet_at(0), packet_at(1'000'000),
                                    packet_at(2'000'001), packet_at(2'900'000)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[0].packets.size(), 2u);
  EXPECT_EQ(flows[1].packets.size(), 2u);
}

TEST(FlowAssembler, DistinctTuplesSeparateFlows) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  const std::vector<Packet> packets{packet_at(0, 40000), packet_at(10, 40001),
                                    packet_at(20, 40000)};
  const auto flows = assembler.assemble(packets, resolver);
  EXPECT_EQ(flows.size(), 2u);
}

TEST(FlowAssembler, UnsortedInputIsSorted) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  const std::vector<Packet> packets{packet_at(2'500'000), packet_at(0),
                                    packet_at(400'000)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 2u);  // 0 & 0.4s together, 2.5s separate
  EXPECT_EQ(flows[0].packets.size(), 2u);
  EXPECT_LT(flows[0].start, flows[1].start);
}

TEST(FlowAssembler, AnnotatesDomainFromDnsSeenEarlier) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  Packet dns;
  dns.ts = Timestamp(0);
  dns.tuple = {{Ipv4Addr(192, 168, 1, 7), 39000},
               {Ipv4Addr(155, 33, 10, 53), 53},
               Transport::kUdp};
  dns.dir = Direction::kInbound;
  dns.payload = make_dns_response(1, "api.example.com", Ipv4Addr(54, 1, 2, 3));
  dns.size = 100;
  dns.device = 7;

  const std::vector<Packet> packets{dns, packet_at(2'000'000)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 2u);
  EXPECT_EQ(flows[1].domain, "api.example.com");
  EXPECT_EQ(flows[1].group_key(), "api.example.com|TLS");
}

TEST(FlowAssembler, BlankDomainGroupsFallBackToIp) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  const std::vector<Packet> packets{packet_at(0)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].domain, "");
  // Unresolved flows carry a stable "unresolved:" prefix so a raw-IP group
  // can never collide with a domain named like an address.
  EXPECT_EQ(flows[0].group_key(), "unresolved:54.1.2.3|TLS");
}

TEST(FlowAssembler, DropInfrastructureFiltersDnsNtp) {
  DomainResolver resolver;
  AssemblerOptions options;
  options.drop_infrastructure = true;
  const FlowAssembler assembler(options);
  const std::vector<Packet> packets{
      packet_at(0, 40000, 53, Transport::kUdp),
      packet_at(10, 40001, 123, Transport::kUdp),
      packet_at(20, 40002, 443, Transport::kTcp)};
  const auto flows = assembler.assemble(packets, resolver);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].app, AppProtocol::kTls);
}

TEST(FlowAssembler, EmptyCapture) {
  DomainResolver resolver;
  const FlowAssembler assembler;
  const auto flows = assembler.assemble(std::vector<Packet>{}, resolver);
  EXPECT_TRUE(flows.empty());
}

// ---------------------------------------------------------------------------
// StreamingFlowAssembler: the incremental core behind `behaviot watch`.

constexpr Timestamp kDrainAll{std::numeric_limits<std::int64_t>::max()};

std::vector<FlowRecord> stream_assemble(const std::vector<Packet>& packets,
                                        std::size_t chunk,
                                        StreamingAssemblerOptions opts = {}) {
  DomainResolver resolver;
  StreamingFlowAssembler core(opts, resolver);
  const std::span<const Packet> all(packets);
  for (std::size_t i = 0; i < all.size(); i += chunk) {
    core.feed(all.subspan(i, std::min(chunk, all.size() - i)));
  }
  core.finish();
  return core.drain_sealed(kDrainAll);
}

void expect_same_flows(const std::vector<FlowRecord>& a,
                       const std::vector<FlowRecord>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].start, b[i].start) << "flow " << i;
    EXPECT_EQ(a[i].end, b[i].end) << "flow " << i;
    EXPECT_EQ(a[i].tuple, b[i].tuple) << "flow " << i;
    EXPECT_EQ(a[i].domain, b[i].domain) << "flow " << i;
    ASSERT_EQ(a[i].packets.size(), b[i].packets.size()) << "flow " << i;
    for (std::size_t j = 0; j < a[i].packets.size(); ++j) {
      EXPECT_EQ(a[i].packets[j].ts, b[i].packets[j].ts) << i << "/" << j;
      EXPECT_EQ(a[i].packets[j].size, b[i].packets[j].size) << i << "/" << j;
    }
  }
}

TEST(StreamingFlowAssembler, AnyChunkingMatchesBatch) {
  // Deterministic mixed traffic: five tuples, jittered timing, mild
  // reordering within the horizon, and occasional >1 s lulls that split
  // bursts. Chunk boundaries must carry no meaning.
  std::vector<Packet> packets;
  std::int64_t t = 0;
  for (int i = 0; i < 400; ++i) {
    t += 137'000 + (i * i % 13) * 5'000;   // ~137 ms cadence, jittered
    if (i % 97 == 0) t += 2'500'000;       // occasional burst-splitting lull
    std::int64_t ts = t;
    if (i % 11 == 3) ts -= 40'000;         // in-horizon capture reordering
    packets.push_back(
        packet_at(ts, static_cast<std::uint16_t>(40000 + i * 7 % 5)));
  }
  DomainResolver batch_resolver;
  const auto batch =
      FlowAssembler().assemble(packets, batch_resolver);
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{17}, std::size_t{1000}}) {
    SCOPED_TRACE(chunk);
    expect_same_flows(stream_assemble(packets, chunk), batch);
  }
}

TEST(StreamingFlowAssembler, MidStreamIsolatedRegressionIsClamped) {
  // One packet jumps back past the clamp threshold while its successor is
  // already back on the high timeline: a capture-clock fault, clamped.
  const std::vector<Packet> packets{packet_at(5'000'000), packet_at(4'000'000),
                                    packet_at(5'050'000)};
  DomainResolver resolver;
  StreamingFlowAssembler core({}, resolver);
  core.feed(packets);
  core.finish();
  const auto flows = core.drain_sealed(kDrainAll);
  EXPECT_EQ(core.stats().clamped_ts, 1u);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].start, Timestamp(5'000'000));  // not smeared to 4.0 s
  EXPECT_EQ(flows[0].packets.size(), 3u);
}

TEST(StreamingFlowAssembler, TailRegressionIsClamped) {
  // Regression fix: the final packet has no look-ahead successor, so the old
  // clamp could never fire on a batch tail. The tail rule clamps when the
  // regression starts at the tail (predecessor still on the high timeline).
  const std::vector<Packet> packets{packet_at(5'000'000), packet_at(5'050'000),
                                    packet_at(4'000'000)};
  DomainResolver resolver;
  StreamingFlowAssembler core({}, resolver);
  core.feed(packets);
  core.finish();
  const auto flows = core.drain_sealed(kDrainAll);
  EXPECT_EQ(core.stats().clamped_ts, 1u);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].start, Timestamp(5'000'000));
  EXPECT_EQ(flows[0].end, Timestamp(5'050'000));

  // The batch wrapper shares the core, so `score` sees the same fix.
  DomainResolver batch_resolver;
  const auto batch = FlowAssembler().assemble(packets, batch_resolver);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].start, Timestamp(5'000'000));
}

TEST(StreamingFlowAssembler, SustainedDropAtTailIsNotClamped) {
  // The predecessor already regressed too: block-unsorted input, which the
  // reorder stage sorts — no clamping. The displacement (1.05 s) exceeds the
  // default 1 s horizon, so widen it: this case is about the clamp rule, not
  // late-packet handling.
  const std::vector<Packet> packets{packet_at(5'000'000), packet_at(4'000'000),
                                    packet_at(3'950'000)};
  StreamingAssemblerOptions opts;
  opts.reorder_horizon_us = seconds(10.0);
  DomainResolver resolver;
  StreamingFlowAssembler core(opts, resolver);
  core.feed(packets);
  core.finish();
  const auto flows = core.drain_sealed(kDrainAll);
  EXPECT_EQ(core.stats().clamped_ts, 0u);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(flows[0].start, Timestamp(3'950'000));
}

TEST(StreamingFlowAssembler, UnresolvedCountsOnlyEmittedFlows) {
  // Regression fix: infrastructure flows dropped from the output must not
  // inflate the unresolved-domain count — it is a statement about emitted
  // flows.
  StreamingAssemblerOptions opts;
  opts.base.drop_infrastructure = true;
  DomainResolver resolver;
  StreamingFlowAssembler core(opts, resolver);
  const std::vector<Packet> packets{
      packet_at(0, 40000, 53, Transport::kUdp),    // DNS: dropped, unresolved
      packet_at(10, 40001, 123, Transport::kUdp),  // NTP: dropped, unresolved
      packet_at(20, 40002, 443, Transport::kTcp)}; // TLS: emitted, unresolved
  core.feed(packets);
  core.finish();
  const auto flows = core.drain_sealed(kDrainAll);
  ASSERT_EQ(flows.size(), 1u);
  EXPECT_EQ(core.stats().infrastructure_dropped, 2u);
  EXPECT_EQ(core.stats().flows_emitted, 1u);
  EXPECT_EQ(core.stats().unresolved_emitted, 1u);
}

TEST(StreamingFlowAssembler, OpenFlowCapForceSealsLeastRecentlyActive) {
  StreamingAssemblerOptions opts;
  opts.max_open_flows = 4;
  DomainResolver resolver;
  StreamingFlowAssembler core(opts, resolver);
  // 50 distinct tuples, 100 ms apart: without the cap ~10 flows would be
  // open at once (burst gap 1 s).
  std::vector<Packet> packets;
  for (int i = 0; i < 50; ++i) {
    packets.push_back(packet_at(static_cast<std::int64_t>(i) * 100'000,
                                static_cast<std::uint16_t>(40000 + i)));
  }
  core.feed(packets);
  core.finish();
  const auto flows = core.drain_sealed(kDrainAll);
  EXPECT_LE(core.stats().peak_open_flows, 4u);
  EXPECT_GT(core.stats().force_sealed, 0u);
  // Every packet still comes out in exactly one flow.
  ASSERT_EQ(flows.size(), 50u);
  std::size_t total = 0;
  for (const auto& f : flows) total += f.packets.size();
  EXPECT_EQ(total, 50u);
}

TEST(StreamingFlowAssembler, BufferedPacketCapForcesProgress) {
  StreamingAssemblerOptions opts;
  opts.reorder_horizon_us = seconds(100.0);  // reorder stage would hold all
  opts.max_buffered_packets = 16;
  DomainResolver resolver;
  StreamingFlowAssembler core(opts, resolver);
  std::vector<Packet> packets;
  for (int i = 0; i < 1000; ++i) {
    packets.push_back(packet_at(i));
  }
  core.feed(packets);
  EXPECT_LE(core.buffered_packets(), 16u);
  core.finish();
  const auto flows = core.drain_sealed(kDrainAll);
  EXPECT_LE(core.stats().peak_buffered_packets, 16u);
  EXPECT_GT(core.stats().force_released, 0u);
  std::size_t total = 0;
  for (const auto& f : flows) total += f.packets.size();
  EXPECT_EQ(total, 1000u);
}

TEST(StreamingFlowAssembler, SealWatermarkClosesWindowsIncrementally) {
  DomainResolver resolver;
  StreamingFlowAssembler core({}, resolver);
  const std::vector<Packet> packets{packet_at(0), packet_at(5'000'000),
                                    packet_at(10'000'000)};
  core.feed(packets);
  // Stream clock at 5 s (the 10 s packet is still the clamp look-ahead):
  // everything before ~4 s is final — the 0 s burst is sealed and drainable.
  EXPECT_GE(core.seal_watermark(), Timestamp(seconds(4.0)));
  EXPECT_LT(core.seal_watermark(), Timestamp(seconds(5.0)));
  auto early = core.drain_sealed(Timestamp(seconds(4.0)));
  ASSERT_EQ(early.size(), 1u);
  EXPECT_EQ(early[0].start, Timestamp(0));

  core.finish();
  EXPECT_EQ(core.seal_watermark(), kDrainAll);
  const auto rest = core.drain_sealed(kDrainAll);
  EXPECT_EQ(rest.size(), 2u);  // 5 s and 10 s bursts
  EXPECT_EQ(core.first_release(), Timestamp(0));
}

TEST(FlowRecord, TotalBytesAndDuration) {
  FlowRecord f;
  f.start = Timestamp(0);
  f.end = Timestamp(seconds(2.0));
  f.packets = {{Timestamp(0), 100, Direction::kOutbound, false},
               {Timestamp(seconds(2.0)), 200, Direction::kInbound, false}};
  EXPECT_EQ(f.total_bytes(), 300u);
  EXPECT_DOUBLE_EQ(f.duration_seconds(), 2.0);
}

TEST(EventKind, Names) {
  EXPECT_STREQ(to_string(EventKind::kPeriodic), "periodic");
  EXPECT_STREQ(to_string(EventKind::kUser), "user");
  EXPECT_STREQ(to_string(EventKind::kAperiodic), "aperiodic");
  EXPECT_STREQ(to_string(EventKind::kUnknown), "unknown");
}

}  // namespace
}  // namespace behaviot
