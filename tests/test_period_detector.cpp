#include "behaviot/periodic/period_detector.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "behaviot/net/rng.hpp"
#include "behaviot/periodic/autocorrelation.hpp"

namespace behaviot {
namespace {

std::vector<double> periodic_times(double period, double jitter,
                                   double window, Rng& rng) {
  std::vector<double> times;
  const double phase = rng.uniform(0.0, period);
  for (double t = phase; t < window; t += period) {
    times.push_back(std::max(0.0, t + rng.normal(0.0, jitter)));
  }
  return times;
}

std::vector<double> aperiodic_times(std::size_t n, double window, Rng& rng) {
  std::vector<double> times;
  times.reserve(n);
  for (std::size_t i = 0; i < n; ++i) times.push_back(rng.uniform(0.0, window));
  return times;
}

TEST(PeriodDetector, FindsCleanPeriod) {
  Rng rng(1);
  const double window = 86400.0;
  const auto times = periodic_times(600.0, 2.0, window, rng);
  const PeriodDetector detector;
  const auto dominant = detector.dominant_period(times, window);
  ASSERT_TRUE(dominant.has_value());
  EXPECT_NEAR(dominant->period_seconds, 600.0, 600.0 * 0.05);
  EXPECT_GT(dominant->autocorr_score, 0.3);
}

TEST(PeriodDetector, RejectsUniformRandomTimes) {
  Rng rng(2);
  const double window = 86400.0;
  const auto times = aperiodic_times(144, window, rng);
  const PeriodDetector detector;
  EXPECT_FALSE(detector.dominant_period(times, window).has_value());
}

TEST(PeriodDetector, TooFewEventsIsAperiodic) {
  const std::vector<double> times{10.0, 20.0, 30.0};
  const PeriodDetector detector;
  EXPECT_TRUE(detector.detect(times, 100.0).empty());
}

// The §5.1 synthetic evaluation: 100 periodic sequences of varying periods,
// 100 aperiodic sequences, and 100 noisy periodic sequences — all must be
// classified correctly (the paper reports 100% on all three).
class SyntheticEval : public ::testing::TestWithParam<int> {};

TEST_P(SyntheticEval, PeriodicSequencesDetected) {
  const int index = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(index));
  const double window = 86400.0 * 2;
  const double period = 236.0 + 107.0 * index;  // 236 s .. ~10800 s
  const double jitter = 0.01 * period;
  const auto times = periodic_times(period, jitter, window, rng);
  const PeriodDetector detector;
  const auto dominant = detector.dominant_period(times, window);
  ASSERT_TRUE(dominant.has_value()) << "period " << period;
  EXPECT_NEAR(dominant->period_seconds, period, period * 0.08);
}

TEST_P(SyntheticEval, AperiodicSequencesRejected) {
  const int index = GetParam();
  Rng rng(300 + static_cast<std::uint64_t>(index));
  const double window = 86400.0 * 2;
  const auto times = aperiodic_times(100 + 5 * static_cast<std::size_t>(index),
                                     window, rng);
  const PeriodDetector detector;
  EXPECT_FALSE(detector.dominant_period(times, window).has_value());
}

TEST_P(SyntheticEval, NoisyPeriodicSequencesDetected) {
  const int index = GetParam();
  Rng rng(500 + static_cast<std::uint64_t>(index));
  const double window = 86400.0 * 2;
  const double period = 300.0 + 100.0 * index;
  auto times = periodic_times(period, 0.01 * period, window, rng);
  // Mix in aperiodic noise at 25% of the periodic event count.
  const auto noise = aperiodic_times(times.size() / 4, window, rng);
  times.insert(times.end(), noise.begin(), noise.end());
  const PeriodDetector detector;
  const auto periods = detector.detect(times, window);
  ASSERT_FALSE(periods.empty()) << "period " << period;
  bool found = false;
  for (const auto& p : periods) {
    if (std::abs(p.period_seconds - period) < period * 0.08) found = true;
  }
  EXPECT_TRUE(found) << "period " << period;
}

INSTANTIATE_TEST_SUITE_P(HundredSequences, SyntheticEval,
                         ::testing::Range(0, 100));

TEST(PeriodDetector, DetectsTwoOverlappingPeriods) {
  Rng rng(7);
  const double window = 86400.0 * 2;
  auto times = periodic_times(600.0, 3.0, window, rng);
  const auto second = periodic_times(3600.0, 10.0, window, rng);
  times.insert(times.end(), second.begin(), second.end());
  const PeriodDetector detector;
  const auto periods = detector.detect(times, window);
  bool found_600 = false;
  bool found_3600 = false;
  for (const auto& p : periods) {
    if (std::abs(p.period_seconds - 600.0) < 40.0) found_600 = true;
    if (std::abs(p.period_seconds - 3600.0) < 250.0) found_3600 = true;
  }
  EXPECT_TRUE(found_600);
  EXPECT_TRUE(found_3600);
}

TEST(PeriodDetector, LongPeriodNeedsEnoughCycles) {
  // A 24 h period in a 2-day window has <3 cycles: undetectable by design
  // (the paper makes the same observation about daily update checks).
  Rng rng(8);
  const double window = 86400.0 * 2;
  const auto times = periodic_times(86400.0, 60.0, window, rng);
  const PeriodDetector detector;
  for (const auto& p : detector.detect(times, window)) {
    EXPECT_LT(p.period_seconds, 86400.0 / 2.0);
  }
}

TEST(ValidatePeriod, AcceptsExactGrid) {
  std::vector<double> series(1000, 0.0);
  for (std::size_t i = 0; i < series.size(); i += 50) series[i] = 1.0;
  const auto v = validate_period(series, 50.0);
  ASSERT_TRUE(v.has_value());
  EXPECT_NEAR(v->refined_lag, 50.0, 0.5);
  EXPECT_GT(v->score, 0.9);
}

TEST(ValidatePeriod, RejectsConstantSeries) {
  const std::vector<double> series(1000, 1.0);
  EXPECT_FALSE(validate_period(series, 50.0).has_value());
}

TEST(ValidatePeriod, RejectsWrongLag) {
  std::vector<double> series(1000, 0.0);
  for (std::size_t i = 0; i < series.size(); i += 50) series[i] = 1.0;
  EXPECT_FALSE(validate_period(series, 37.0).has_value());
}

TEST(ValidatePeriodWithAcf, HandlesShortAcf) {
  const std::vector<double> acf{1.0, 0.1};
  EXPECT_FALSE(validate_period_with_acf(acf, 5.0).has_value());
}

}  // namespace
}  // namespace behaviot
