#include "behaviot/ml/metrics.hpp"

#include <gtest/gtest.h>

namespace behaviot {
namespace {

TEST(BinaryCounts, EmptyIsZero) {
  const BinaryCounts c;
  EXPECT_EQ(c.total(), 0u);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(c.false_negative_rate(), 0.0);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.0);
}

TEST(BinaryCounts, AccuracyFormula) {
  const BinaryCounts c{.true_positive = 40,
                       .true_negative = 50,
                       .false_positive = 5,
                       .false_negative = 5};
  EXPECT_EQ(c.total(), 100u);
  EXPECT_DOUBLE_EQ(c.accuracy(), 0.9);
}

TEST(BinaryCounts, FnrIsMissedPositivesOverPositives) {
  const BinaryCounts c{.true_positive = 30,
                       .true_negative = 100,
                       .false_positive = 0,
                       .false_negative = 10};
  EXPECT_DOUBLE_EQ(c.false_negative_rate(), 0.25);
}

TEST(BinaryCounts, FprIsFalseAlarmsOverNegatives) {
  const BinaryCounts c{.true_positive = 0,
                       .true_negative = 999,
                       .false_positive = 1,
                       .false_negative = 0};
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.001);
}

TEST(BinaryCounts, PerfectClassifier) {
  const BinaryCounts c{.true_positive = 10, .true_negative = 90};
  EXPECT_DOUBLE_EQ(c.accuracy(), 1.0);
  EXPECT_DOUBLE_EQ(c.false_negative_rate(), 0.0);
  EXPECT_DOUBLE_EQ(c.false_positive_rate(), 0.0);
}

TEST(MulticlassAccuracy, Basics) {
  const std::vector<std::string> truth{"on", "off", "on", "color"};
  const std::vector<std::string> pred{"on", "off", "off", "color"};
  EXPECT_DOUBLE_EQ(multiclass_accuracy(truth, pred), 0.75);
}

TEST(MulticlassAccuracy, MismatchedSizesReturnZero) {
  const std::vector<std::string> truth{"a", "b"};
  const std::vector<std::string> pred{"a"};
  EXPECT_DOUBLE_EQ(multiclass_accuracy(truth, pred), 0.0);
}

TEST(MulticlassAccuracy, EmptyReturnsZero) {
  EXPECT_DOUBLE_EQ(multiclass_accuracy({}, {}), 0.0);
}

TEST(Confusion, CountsPairs) {
  const std::vector<std::string> truth{"on", "on", "off", "off"};
  const std::vector<std::string> pred{"on", "off", "off", "off"};
  const auto m = confusion(truth, pred);
  EXPECT_EQ(m.at({"on", "on"}), 1u);
  EXPECT_EQ(m.at({"on", "off"}), 1u);
  EXPECT_EQ(m.at({"off", "off"}), 2u);
  EXPECT_EQ(m.count({"off", "on"}), 0u);
}

}  // namespace
}  // namespace behaviot
