#include "behaviot/pfsm/synoptic.hpp"

#include <gtest/gtest.h>

#include "behaviot/pfsm/sequence_graph.hpp"

namespace behaviot {
namespace {

using Traces = std::vector<std::vector<std::string>>;

TEST(Synoptic, AcceptsEveryTrainingTrace) {
  const Traces traces{
      {"cam:motion", "bulb:on"},
      {"cam:motion", "bulb:on", "bulb:off"},
      {"plug:on", "plug:off"},
      {"doorbell:ring", "plug:on", "speaker:voice", "plug:off"},
  };
  const auto result = infer_pfsm(traces);
  for (const auto& t : traces) {
    EXPECT_TRUE(result.pfsm.accepts(t));
  }
}

TEST(Synoptic, GeneralizesToRecombinations) {
  // The PFSM is generative (§5.2): it accepts unseen traces assembled from
  // observed transitions.
  const Traces traces{
      {"a", "b", "c"},
      {"a", "b", "b", "c"},
  };
  const auto result = infer_pfsm(traces);
  const std::vector<std::string> unseen{"a", "b", "b", "b", "c"};
  EXPECT_TRUE(result.pfsm.accepts(unseen));
}

TEST(Synoptic, RejectsUnknownLabels) {
  const Traces traces{{"a", "b"}};
  const auto result = infer_pfsm(traces);
  const std::vector<std::string> bad{"a", "zzz"};
  EXPECT_FALSE(result.pfsm.accepts(bad));
}

TEST(Synoptic, MinesInvariantsFromTraces) {
  const Traces traces{{"motion", "light"}, {"motion", "pause", "light"}};
  const auto result = infer_pfsm(traces);
  EXPECT_FALSE(result.invariants.empty());
}

TEST(Synoptic, RefinementSplitsContextDependentStates) {
  // "b" behaves differently depending on context: after "a" it is always
  // followed by "c"; after "x" it never is. The coarse one-state-per-label
  // model merges both, creating a path x->b->c that violates NFby(x, c)...
  const Traces traces{
      {"a", "b", "c"}, {"a", "b", "c"}, {"a", "b", "c"},
      {"x", "b"},      {"x", "b"},      {"x", "b"},
  };
  const auto result = infer_pfsm(traces);
  // Refinement must have split "b" (or reported the invariant unsatisfied).
  EXPECT_GT(result.refinement_steps, 0u);
  // All training traces still accepted after refinement.
  for (const auto& t : traces) EXPECT_TRUE(result.pfsm.accepts(t));
  // The machine has two "b" states post-split.
  EXPECT_GE(result.pfsm.states_with_label("b").size(), 2u);
}

TEST(Synoptic, StateCountStaysNearLabelCount) {
  // Fig. 3's point: PFSM states grow with the alphabet, not the log.
  Traces traces;
  for (int rep = 0; rep < 30; ++rep) {
    traces.push_back({"m", "on"});
    traces.push_back({"m", "on", "off"});
    traces.push_back({"ring", "plug"});
  }
  const auto result = infer_pfsm(traces);
  // 5 labels + INITIAL/TERMINAL, plus at most a few refinement splits.
  EXPECT_LE(result.pfsm.num_states(), 12u);

  const auto graph = SequenceGraph::build(traces);
  EXPECT_GT(graph.num_nodes(), result.pfsm.num_states() * 5);
}

TEST(Synoptic, EmptyInput) {
  const auto result = infer_pfsm(Traces{});
  EXPECT_EQ(result.pfsm.num_states(), 2u);
  EXPECT_EQ(result.pfsm.num_transitions(), 0u);
}

TEST(Synoptic, EventTraceOverload) {
  UserEvent e1;
  e1.ts = Timestamp(0);
  e1.device_name = "plug";
  e1.activity = "on";
  UserEvent e2 = e1;
  e2.ts = Timestamp(seconds(5.0));
  e2.activity = "off";
  const std::vector<EventTrace> traces{{e1, e2}};
  const auto result = infer_pfsm(traces);
  const std::vector<std::string> labels{"plug:on", "plug:off"};
  EXPECT_TRUE(result.pfsm.accepts(labels));
}

TEST(SequenceGraph, CountsMatchParallelSequenceFormula) {
  const Traces traces{{"a", "b"}, {"c"}, {"a", "b", "c"}};
  const auto graph = SequenceGraph::build(traces);
  // nodes = 6 events + INITIAL + TERMINAL; edges = events + traces.
  EXPECT_EQ(graph.num_nodes(), 8u);
  EXPECT_EQ(graph.num_edges(), 9u);
}

TEST(SequenceGraph, AcceptsOnlyExactTraces) {
  const Traces traces{{"a", "b"}};
  const auto graph = SequenceGraph::build(traces);
  EXPECT_TRUE(graph.accepts(std::vector<std::string>{"a", "b"}));
  EXPECT_FALSE(graph.accepts(std::vector<std::string>{"a"}));
  EXPECT_FALSE(graph.accepts(std::vector<std::string>{"a", "b", "b"}));
}

TEST(SequenceGraph, EmptyTracesSkipped) {
  const Traces traces{{}, {"a"}};
  const auto graph = SequenceGraph::build(traces);
  EXPECT_EQ(graph.num_nodes(), 3u);
  EXPECT_EQ(graph.num_edges(), 2u);
}

}  // namespace
}  // namespace behaviot
