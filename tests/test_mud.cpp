#include "behaviot/core/mud_profile.hpp"

#include <gtest/gtest.h>

#include "behaviot/flow/assembler.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

struct MudFixture;
const MudFixture& shared_fixture();

struct MudFixture {
  PeriodicModelSet periodic;
  std::vector<FlowRecord> user_flows;
  DeviceId plug_id = 0;

  MudFixture() {
    const auto idle = testbed::Datasets::idle(81, 0.6);
    DomainResolver resolver;
    testbed::configure_resolver(resolver, idle);
    FlowAssembler assembler;
    auto idle_flows = assembler.assemble(idle.packets, resolver);
    testbed::apply_ground_truth(idle_flows, idle.truths);
    periodic = PeriodicModelSet::infer(idle_flows, 0.6 * 86400.0);

    const auto activity = testbed::Datasets::activity(82, 3);
    auto flows = assembler.assemble(activity.packets, resolver);
    testbed::apply_ground_truth(flows, activity.truths);
    for (FlowRecord& f : flows) {
      if (f.truth == EventKind::kUser) user_flows.push_back(std::move(f));
    }
    plug_id = testbed::Catalog::standard().by_name("tplink_plug")->id;
  }
};

const MudFixture& shared_fixture() {
  static const MudFixture fixture;
  return fixture;
}

TEST(MudProfile, ContainsPeriodicAndUserEntries) {
  const MudFixture& fx = shared_fixture();
  const MudProfile profile = generate_mud_profile(
      fx.plug_id, "tplink_plug", fx.periodic, fx.user_flows);
  EXPECT_EQ(profile.device_name, "tplink_plug");
  std::size_t periodic_entries = 0, user_entries = 0;
  for (const MudAclEntry& e : profile.entries) {
    if (e.kind == "periodic") {
      ++periodic_entries;
      EXPECT_TRUE(e.period_seconds.has_value());
    } else {
      EXPECT_EQ(e.kind, "user-event");
      EXPECT_FALSE(e.period_seconds.has_value());
      ++user_entries;
    }
  }
  // The paper's §7.2 TP-Link example: cloud + DNS + NTP periodic entries
  // plus the control endpoint.
  EXPECT_GE(periodic_entries, 2u);
  EXPECT_GE(user_entries, 1u);
}

TEST(MudProfile, UserEntriesDeduplicateDomains) {
  const MudFixture& fx = shared_fixture();
  const MudProfile profile = generate_mud_profile(
      fx.plug_id, "tplink_plug", fx.periodic, fx.user_flows);
  std::set<std::pair<std::string, std::string>> seen;
  for (const MudAclEntry& e : profile.entries) {
    if (e.kind != "user-event") continue;
    EXPECT_TRUE(seen.insert({e.domain, e.protocol}).second)
        << e.domain << "/" << e.protocol;
  }
}

TEST(MudProfile, IgnoresOtherDevicesFlows) {
  const MudFixture& fx = shared_fixture();
  const DeviceId other =
      testbed::Catalog::standard().by_name("tplink_bulb")->id;
  const MudProfile plug_profile = generate_mud_profile(
      fx.plug_id, "tplink_plug", fx.periodic, fx.user_flows);
  for (const MudAclEntry& e : plug_profile.entries) {
    (void)other;
    // The bulb's UDP side channel (port 9999) never leaks into the plug.
    EXPECT_NE(e.domain, "");
  }
}

TEST(MudProfile, JsonRenderingIsWellFormed) {
  MudProfile profile;
  profile.device_name = "demo";
  profile.entries.push_back({"api.vendor.com", "TLS", 600.0, "periodic"});
  profile.entries.push_back({"ctrl.vendor.com", "TLS", std::nullopt,
                             "user-event"});
  const std::string json = profile.to_json();
  EXPECT_NE(json.find("\"ietf-mud:mud\""), std::string::npos);
  EXPECT_NE(json.find("\"dst-dnsname\": \"api.vendor.com\""),
            std::string::npos);
  EXPECT_NE(json.find("\"period-seconds\": 600"), std::string::npos);
  // Exactly one comma between the two entries, none after the last.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(MudCompliance, ProfileOwnTrafficIsCompliant) {
  // The flows a profile was generated from must all comply with it.
  const MudFixture& fx = shared_fixture();
  const MudProfile profile = generate_mud_profile(
      fx.plug_id, "tplink_plug", fx.periodic, fx.user_flows);
  // User flows of the plug comply by construction...
  const auto user_violations =
      check_mud_compliance(profile, fx.plug_id, fx.user_flows);
  EXPECT_TRUE(user_violations.empty());
}

TEST(MudCompliance, ForeignDestinationIsFlagged) {
  const MudFixture& fx = shared_fixture();
  const MudProfile profile = generate_mud_profile(
      fx.plug_id, "tplink_plug", fx.periodic, fx.user_flows);

  FlowRecord exfil;
  exfil.device = fx.plug_id;
  exfil.domain = "evil.exfiltration.example";
  exfil.app = AppProtocol::kTls;
  exfil.tuple = {{Ipv4Addr(192, 168, 1, 20), 45000},
                 {Ipv4Addr(54, 66, 66, 66), 443},
                 Transport::kTcp};
  exfil.start = Timestamp::from_seconds(1000.0);
  const auto violations =
      check_mud_compliance(profile, fx.plug_id, std::vector<FlowRecord>{exfil});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].domain, "evil.exfiltration.example");
  EXPECT_EQ(violations[0].reason, "unknown destination");
}

TEST(MudCompliance, WrongProtocolOnKnownDestinationIsFlagged) {
  MudProfile profile;
  profile.device_name = "demo";
  profile.entries.push_back({"api.vendor.com", "TLS", 600.0, "periodic"});

  FlowRecord flow;
  flow.device = 1;
  flow.domain = "api.vendor.com";
  flow.app = AppProtocol::kOtherUdp;  // UDP to a TLS-only destination
  flow.start = Timestamp(0);
  const auto violations =
      check_mud_compliance(profile, 1, std::vector<FlowRecord>{flow});
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_EQ(violations[0].reason, "unknown protocol for destination");
}

TEST(MudCompliance, OtherDevicesAreIgnored) {
  MudProfile profile;
  profile.device_name = "demo";
  FlowRecord foreign;
  foreign.device = 99;
  foreign.domain = "whatever.example";
  EXPECT_TRUE(check_mud_compliance(profile, 1,
                                   std::vector<FlowRecord>{foreign})
                  .empty());
}

TEST(MudProfile, EmptyModelsYieldEmptyProfile) {
  const PeriodicModelSet empty;
  const MudProfile profile =
      generate_mud_profile(0, "ghost", empty, {});
  EXPECT_TRUE(profile.entries.empty());
  EXPECT_NE(profile.to_json().find("ghost"), std::string::npos);
}

}  // namespace
}  // namespace behaviot
