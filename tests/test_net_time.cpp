#include "behaviot/net/time.hpp"

#include <gtest/gtest.h>

namespace behaviot {
namespace {

TEST(Timestamp, DefaultIsZero) {
  EXPECT_EQ(Timestamp{}.micros(), 0);
  EXPECT_DOUBLE_EQ(Timestamp{}.seconds(), 0.0);
}

TEST(Timestamp, FromSecondsRoundTrips) {
  const Timestamp t = Timestamp::from_seconds(12.5);
  EXPECT_EQ(t.micros(), 12'500'000);
  EXPECT_DOUBLE_EQ(t.seconds(), 12.5);
}

TEST(Timestamp, ArithmeticAndComparison) {
  const Timestamp a(1'000'000);
  const Timestamp b = a + seconds(2.0);
  EXPECT_EQ(b.micros(), 3'000'000);
  EXPECT_EQ(b - a, 2'000'000);
  EXPECT_LT(a, b);
  EXPECT_EQ(b - seconds(2.0), a);
}

TEST(Timestamp, CompoundAddition) {
  Timestamp t(10);
  t += 5;
  EXPECT_EQ(t.micros(), 15);
}

TEST(DurationHelpers, Conversions) {
  EXPECT_EQ(microseconds(7), 7);
  EXPECT_EQ(milliseconds(3), 3'000);
  EXPECT_EQ(seconds(1.5), 1'500'000);
  EXPECT_EQ(minutes(2.0), 120'000'000);
  EXPECT_EQ(hours(1.0), 3'600'000'000LL);
  EXPECT_EQ(days(1.0), 86'400'000'000LL);
}

TEST(FormatTimestamp, RendersDayHourMinute) {
  const Timestamp t = Timestamp::from_seconds(86400.0 + 3600.0 + 61.5);
  EXPECT_EQ(format_timestamp(t), "d1 01:01:01.500000");
}

TEST(FormatTimestamp, HandlesZeroAndNegative) {
  EXPECT_EQ(format_timestamp(Timestamp(0)), "d0 00:00:00.000000");
  EXPECT_EQ(format_timestamp(Timestamp(-1'500'000)), "-d0 00:00:01.500000");
}

}  // namespace
}  // namespace behaviot
