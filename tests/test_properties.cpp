// Cross-module property tests: randomized inputs, structural invariants.
// These complement the per-module unit tests by checking the guarantees the
// pipeline relies on across a sweep of seeds.
#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "behaviot/flow/assembler.hpp"
#include "behaviot/net/rng.hpp"
#include "behaviot/periodic/period_detector.hpp"
#include "behaviot/pfsm/sequence_graph.hpp"
#include "behaviot/pfsm/synoptic.hpp"

namespace behaviot {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};
INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range<std::uint64_t>(1, 16));

// ---------- assembler invariants ----------

std::vector<Packet> random_packets(Rng& rng, std::size_t n) {
  std::vector<Packet> packets;
  packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Packet p;
    p.ts = Timestamp::from_seconds(rng.uniform(0.0, 3600.0));
    p.tuple = {{Ipv4Addr(192, 168, 1,
                         static_cast<std::uint8_t>(10 + rng.uniform_index(5))),
                static_cast<std::uint16_t>(40000 + rng.uniform_index(20))},
               {Ipv4Addr(54, 1, 1,
                         static_cast<std::uint8_t>(rng.uniform_index(4))),
                443},
               rng.chance(0.5) ? Transport::kTcp : Transport::kUdp};
    p.size = static_cast<std::uint32_t>(60 + rng.uniform_index(1400));
    p.dir = rng.chance(0.5) ? Direction::kOutbound : Direction::kInbound;
    p.device = static_cast<DeviceId>(p.tuple.src.ip.value() & 0xff);
    packets.push_back(std::move(p));
  }
  return packets;
}

TEST_P(SeedSweep, AssemblerConservesPackets) {
  Rng rng(GetParam());
  const auto packets = random_packets(rng, 500);
  DomainResolver resolver;
  const FlowAssembler assembler;
  const auto flows = assembler.assemble(packets, resolver);

  // Every packet lands in exactly one flow.
  std::size_t total = 0;
  for (const auto& f : flows) total += f.packets.size();
  EXPECT_EQ(total, packets.size());

  for (const auto& f : flows) {
    // Flows are internally time-ordered and respect the burst gap.
    for (std::size_t i = 1; i < f.packets.size(); ++i) {
      EXPECT_LE(f.packets[i - 1].ts, f.packets[i].ts);
      EXPECT_LE(f.packets[i].ts - f.packets[i - 1].ts, seconds(1.0));
    }
    EXPECT_EQ(f.start, f.packets.front().ts);
    EXPECT_EQ(f.end, f.packets.back().ts);
  }
  // Output is sorted by start time.
  for (std::size_t i = 1; i < flows.size(); ++i) {
    EXPECT_LE(flows[i - 1].start, flows[i].start);
  }
}

TEST_P(SeedSweep, AssemblerSplitsAreMaximal) {
  // Two consecutive flows of the same tuple must be separated by more than
  // the burst gap (otherwise they should have been one flow).
  Rng rng(GetParam() + 100);
  const auto packets = random_packets(rng, 400);
  DomainResolver resolver;
  const FlowAssembler assembler;
  const auto flows = assembler.assemble(packets, resolver);
  std::map<FiveTuple, Timestamp, std::less<FiveTuple>> last_end;
  for (const auto& f : flows) {
    auto it = last_end.find(f.tuple);
    if (it != last_end.end()) {
      EXPECT_GT(f.start - it->second, seconds(1.0)) << f.tuple.to_string();
    }
    last_end[f.tuple] = f.end;
  }
}

// ---------- periodicity invariants ----------

TEST_P(SeedSweep, DetectionIsTranslationInvariant) {
  Rng rng(GetParam() + 200);
  const double period = 300.0 + rng.uniform(0, 3000);
  const double window = 86400.0;
  std::vector<double> times;
  for (double t = rng.uniform(0, period); t < window; t += period) {
    times.push_back(t + rng.normal(0, 0.01 * period));
  }
  const PeriodDetector detector;
  const auto base = detector.dominant_period(times, window);
  ASSERT_TRUE(base.has_value());

  // Shift all times by an arbitrary offset: same period detected.
  std::vector<double> shifted;
  const double offset = rng.uniform(1e4, 1e6);
  for (double t : times) shifted.push_back(t + offset);
  const auto moved = detector.dominant_period(shifted, window);
  ASSERT_TRUE(moved.has_value());
  EXPECT_NEAR(moved->period_seconds, base->period_seconds,
              0.02 * base->period_seconds);
}

TEST_P(SeedSweep, DetectionSurvivesSubsampling) {
  // Dropping a small fraction of beacons (packet loss) keeps the period.
  Rng rng(GetParam() + 300);
  const double period = 600.0;
  const double window = 86400.0 * 2;
  std::vector<double> times;
  for (double t = 5.0; t < window; t += period) {
    if (rng.chance(0.9)) times.push_back(t + rng.normal(0, 5.0));
  }
  const PeriodDetector detector;
  const auto detected = detector.dominant_period(times, window);
  ASSERT_TRUE(detected.has_value());
  EXPECT_NEAR(detected->period_seconds, period, 0.05 * period);
}

// ---------- PFSM invariants ----------

std::vector<std::vector<std::string>> random_traces(Rng& rng,
                                                    std::size_t n_traces) {
  const std::vector<std::string> alphabet{
      "cam:motion", "bulb:on", "bulb:off", "plug:on_off",
      "spot:voice", "door:open", "door:close"};
  std::vector<std::vector<std::string>> traces;
  for (std::size_t t = 0; t < n_traces; ++t) {
    std::vector<std::string> trace;
    const std::size_t len = 1 + rng.uniform_index(6);
    for (std::size_t i = 0; i < len; ++i) {
      trace.push_back(alphabet[rng.uniform_index(alphabet.size())]);
    }
    traces.push_back(std::move(trace));
  }
  return traces;
}

TEST_P(SeedSweep, PfsmAcceptsItsTrainingLog) {
  // §5.2 property (i) must hold for arbitrary logs, not just routine data.
  Rng rng(GetParam() + 400);
  const auto traces = random_traces(rng, 30);
  const auto result = infer_pfsm(traces);
  for (const auto& t : traces) {
    EXPECT_TRUE(result.pfsm.accepts(t));
  }
}

TEST_P(SeedSweep, PfsmProbabilitiesAreProbabilities) {
  Rng rng(GetParam() + 500);
  const auto traces = random_traces(rng, 25);
  const auto pfsm = infer_pfsm(traces).pfsm;
  // Outgoing probabilities of every state sum to 1 (or 0 for TERMINAL).
  std::map<int, double> outgoing;
  for (const auto& t : pfsm.transitions()) {
    outgoing[t.from] += t.probability;
    EXPECT_GE(t.probability, 0.0);
    EXPECT_LE(t.probability, 1.0 + 1e-9);
  }
  for (const auto& [state, sum] : outgoing) {
    EXPECT_NEAR(sum, 1.0, 1e-9) << pfsm.label(state);
  }
  // Trace probabilities are valid probabilities.
  for (const auto& t : traces) {
    const double p = pfsm.trace_probability(t);
    EXPECT_GT(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

TEST_P(SeedSweep, PfsmNeverLargerThanSequenceGraph) {
  Rng rng(GetParam() + 600);
  const auto traces = random_traces(rng, 40);
  const auto pfsm = infer_pfsm(traces).pfsm;
  const auto graph = SequenceGraph::build(traces);
  EXPECT_LE(pfsm.num_states(), graph.num_nodes());
}

TEST_P(SeedSweep, MinedInvariantsHoldOnTheTraces) {
  // Sanity of the miner itself: every mined invariant must actually hold
  // when re-checked directly against the trace set.
  Rng rng(GetParam() + 700);
  const auto traces = random_traces(rng, 20);
  for (const Invariant& inv : mine_invariants(traces)) {
    for (const auto& trace : traces) {
      for (std::size_t i = 0; i < trace.size(); ++i) {
        const bool followed = [&] {
          for (std::size_t j = i + 1; j < trace.size(); ++j) {
            if (trace[j] == inv.b) return true;
          }
          return false;
        }();
        if (inv.kind == InvariantKind::kAlwaysFollowedBy &&
            trace[i] == inv.a) {
          EXPECT_TRUE(followed) << inv.to_string();
        }
        if (inv.kind == InvariantKind::kNeverFollowedBy && trace[i] == inv.a) {
          EXPECT_FALSE(followed) << inv.to_string();
        }
        if (inv.kind == InvariantKind::kAlwaysPrecededBy &&
            trace[i] == inv.b) {
          bool preceded = false;
          for (std::size_t j = 0; j < i; ++j) {
            if (trace[j] == inv.a) preceded = true;
          }
          EXPECT_TRUE(preceded) << inv.to_string();
        }
      }
    }
  }
}

}  // namespace
}  // namespace behaviot
