// Deterministic fuzz/property harness for every wire-format parser on the
// ingestion path: pcap records, DNS responses, TLS ClientHello, and model
// files in both the text and the binary (.bbm) encoding.
//
// Two layers:
//  - properties on VALID inputs: parse → re-serialize is byte-identical,
//    all four pcap magic variants decode to the same packets, and the
//    streaming reader agrees with the in-memory parser;
//  - seeded mutation fuzzing (>10k mutants across the four parsers, both
//    policies): no crash, no hang (suite timeout), no unbounded allocation
//    (outputs are asserted to stay proportional to input size). Run the
//    suite under -DBEHAVIOT_ASAN=ON to add heap/UB checking; see README.
//
// Everything derives from fixed seeds via the repo's RNG, so a failure here
// reproduces bit-identically anywhere (bench/gen_fuzz_corpus emits the same
// corpus to disk for standalone debugging).
#include <gtest/gtest.h>

#include <span>
#include <sstream>

#include "behaviot/core/fuzz_corpus.hpp"
#include "behaviot/core/serialize.hpp"
#include "behaviot/core/serialize_binary.hpp"
#include "behaviot/flow/features.hpp"
#include "behaviot/flow/flow.hpp"
#include "behaviot/net/dns.hpp"
#include "behaviot/net/pcap.hpp"
#include "behaviot/net/tls.hpp"

namespace behaviot {
namespace {

constexpr std::uint64_t kSeed = 0xbe4a710f;
constexpr std::size_t kCorpusPerKind = 64;

const fuzz::Corpus& corpus() {
  static const fuzz::Corpus c = fuzz::make_corpus(kSeed, kCorpusPerKind);
  return c;
}

bool packets_equal(const Packet& a, const Packet& b) {
  return a.ts == b.ts && a.tuple == b.tuple && a.size == b.size &&
         a.dir == b.dir && a.payload == b.payload;
}

TEST(ParserFuzz, ValidPcapReserializesByteIdentical) {
  Rng rng(kSeed);
  for (int round = 0; round < 8; ++round) {
    Rng fork = rng.fork(static_cast<std::uint64_t>(round));
    const auto packets = fuzz::random_packets(fork, 50);
    const auto bytes = serialize_pcap(packets);
    const auto parsed = parse_pcap(bytes, ParsePolicy::kStrict);
    EXPECT_EQ(parsed.skipped, 0u);
    EXPECT_EQ(parsed.packets.size(), packets.size());
    EXPECT_EQ(serialize_pcap(parsed.packets), bytes) << "round " << round;
  }
}

TEST(ParserFuzz, AllFourMagicVariantsDecodeIdentically) {
  Rng rng(kSeed ^ 1);
  const auto packets = fuzz::random_packets(rng, 80);
  const auto native = serialize_pcap(packets);
  const auto reference = parse_pcap(native, ParsePolicy::kStrict);
  ASSERT_EQ(reference.packets.size(), packets.size());
  for (const bool swapped : {false, true}) {
    for (const bool nanos : {false, true}) {
      const auto variant = fuzz::pcap_variant(native, swapped, nanos);
      const auto parsed = parse_pcap(variant, ParsePolicy::kStrict);
      ASSERT_EQ(parsed.packets.size(), reference.packets.size())
          << "swapped=" << swapped << " nanos=" << nanos;
      for (std::size_t i = 0; i < parsed.packets.size(); ++i) {
        EXPECT_TRUE(packets_equal(parsed.packets[i], reference.packets[i]))
            << "swapped=" << swapped << " nanos=" << nanos << " packet " << i;
      }
    }
  }
}

TEST(ParserFuzz, ValidDnsTlsModelRoundTrips) {
  Rng rng(kSeed ^ 2);
  for (int i = 0; i < 200; ++i) {
    Rng fork = rng.fork(static_cast<std::uint64_t>(i));
    const auto txid = static_cast<std::uint16_t>(fork.next_u64());
    const Ipv4Addr addr(static_cast<std::uint32_t>(fork.next_u64()));
    const auto ttl = static_cast<std::uint32_t>(fork.uniform_index(86400));
    const std::string name = "dev" + std::to_string(i) + ".vendor.example";
    const auto binding = parse_dns_response(
        make_dns_response(txid, name, addr, ttl), ParsePolicy::kStrict);
    ASSERT_TRUE(binding.has_value());
    EXPECT_EQ(binding->name, name);
    EXPECT_EQ(binding->address, addr);
    EXPECT_EQ(binding->ttl, ttl);

    const auto sni =
        parse_tls_sni(make_tls_client_hello(name), ParsePolicy::kStrict);
    ASSERT_TRUE(sni.has_value());
    EXPECT_EQ(*sni, name);
  }
  // Model files: load(save(m)) then save again must emit identical text.
  for (const std::string& text : corpus().models) {
    std::istringstream in(text);
    const BehaviorModelSet loaded = load_models(in, ParsePolicy::kStrict);
    std::ostringstream out;
    save_models(out, loaded);
    EXPECT_EQ(out.str(), text);
  }
}

TEST(ParserFuzz, StreamingReaderMatchesParsePcapWithBoundedBuffer) {
  Rng rng(kSeed ^ 3);
  const auto packets = fuzz::random_packets(rng, 1200);
  const auto bytes = serialize_pcap(packets);
  const auto reference = parse_pcap(bytes);

  const std::string text(reinterpret_cast<const char*>(bytes.data()),
                         bytes.size());
  std::istringstream in(text);
  PcapReader reader(in, {.policy = ParsePolicy::kLenient, .chunk_size = 4096});
  std::vector<Packet> streamed;
  while (auto p = reader.next()) streamed.push_back(std::move(*p));

  ASSERT_EQ(streamed.size(), reference.packets.size());
  for (std::size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_TRUE(packets_equal(streamed[i], reference.packets[i])) << i;
  }
  // Peak buffering is max(chunk, one record), never the whole capture.
  EXPECT_GT(bytes.size(), 100u * 1024u);
  EXPECT_LE(reader.buffer_capacity(),
            4096u + 16u + 65535u);  // chunk + record header + max frame
}

// Shared mutation driver: `parse` must swallow every mutant under kLenient
// and may only throw the documented typed errors under kStrict.
template <typename Parse>
void run_mutations(const std::vector<std::vector<std::uint8_t>>& seeds,
                   std::uint64_t seed, std::size_t mutants_per_seed,
                   int max_stacked, Parse parse) {
  Rng rng(seed);
  std::size_t executed = 0;
  for (std::size_t s = 0; s < seeds.size(); ++s) {
    for (std::size_t m = 0; m < mutants_per_seed; ++m) {
      Rng fork = rng.fork(s * 131071 + m);
      std::vector<std::uint8_t> mutant = seeds[s];
      const int stacked = 1 + static_cast<int>(fork.uniform_index(
                                  static_cast<std::uint64_t>(max_stacked)));
      for (int k = 0; k < stacked; ++k) fuzz::mutate(fork, mutant);
      for (const ParsePolicy policy :
           {ParsePolicy::kLenient, ParsePolicy::kStrict}) {
        parse(mutant, policy);
        ++executed;
      }
    }
  }
  // 2 policies × seeds × mutants; the suite total must clear 10k.
  EXPECT_EQ(executed, seeds.size() * mutants_per_seed * 2);
}

TEST(ParserFuzz, MutatedPcapNeverCrashesOrBalloons) {
  run_mutations(
      corpus().pcaps, kSeed ^ 4, /*mutants_per_seed=*/24, /*max_stacked=*/4,
      [](const std::vector<std::uint8_t>& mutant, ParsePolicy policy) {
        try {
          const auto result = parse_pcap(mutant, policy);
          // Every parsed packet consumed a >=16-byte record; anything more
          // would mean the parser invented data (OOM risk on real garbage).
          EXPECT_LE(result.packets.size(), mutant.size() / 16 + 1);
          for (const Packet& p : result.packets) {
            EXPECT_LE(p.payload.size(), mutant.size());
          }
        } catch (const ParseError&) {
          // typed rejection is a valid outcome in either policy
        }
      });
}

TEST(ParserFuzz, MutatedDnsNeverCrashes) {
  run_mutations(
      corpus().dns, kSeed ^ 5, /*mutants_per_seed=*/20, /*max_stacked=*/3,
      [](const std::vector<std::uint8_t>& mutant, ParsePolicy policy) {
        ParseStats stats;
        try {
          const auto binding = parse_dns_response(mutant, policy, &stats);
          if (binding.has_value()) {
            EXPECT_LE(binding->name.size(), mutant.size() * 64);
          }
        } catch (const ParseError& e) {
          EXPECT_LE(e.offset(), mutant.size() + 1);
        }
      });
}

TEST(ParserFuzz, MutatedTlsNeverCrashes) {
  run_mutations(
      corpus().tls, kSeed ^ 6, /*mutants_per_seed=*/20, /*max_stacked=*/3,
      [](const std::vector<std::uint8_t>& mutant, ParsePolicy policy) {
        ParseStats stats;
        try {
          const auto sni = parse_tls_sni(mutant, policy, &stats);
          if (sni.has_value()) {
            EXPECT_LE(sni->size(), mutant.size());
          }
        } catch (const ParseError& e) {
          EXPECT_LE(e.offset(), mutant.size() + 1);
        }
      });
}

TEST(ParserFuzz, MutatedModelFilesNeverCrashOrBalloon) {
  std::vector<std::vector<std::uint8_t>> seeds;
  for (const std::string& text : corpus().models) {
    seeds.emplace_back(text.begin(), text.end());
  }
  run_mutations(
      seeds, kSeed ^ 7, /*mutants_per_seed=*/20, /*max_stacked=*/3,
      [](const std::vector<std::uint8_t>& mutant, ParsePolicy policy) {
        std::istringstream in(
            std::string(reinterpret_cast<const char*>(mutant.data()),
                        mutant.size()));
        try {
          ParseStats stats;
          const BehaviorModelSet models = load_models(in, policy, &stats);
          // A corrupt count must never produce state larger than the input
          // could possibly describe (the stoul("-1") → reserve(2^64) bug).
          EXPECT_LE(models.periodic.size(), mutant.size());
          std::size_t labels = 0;
          for (const auto& t : models.training_traces) labels += t.size();
          EXPECT_LE(labels, mutant.size());
        } catch (const SerializationError&) {
          // typed rejection is a valid outcome in either policy
        }
      });
}

std::span<const std::uint8_t> as_bytes(const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

TEST(ParserFuzz, ValidBinaryModelRoundTrips) {
  ASSERT_EQ(corpus().binary_models.size(), corpus().models.size());
  for (std::size_t i = 0; i < corpus().binary_models.size(); ++i) {
    const std::string& image = corpus().binary_models[i];
    const BehaviorModelSet loaded =
        load_models_binary(as_bytes(image), ParsePolicy::kStrict);
    // binary → binary: byte-identical (fixed section order, no optional
    // trailers).
    EXPECT_EQ(save_models_binary(loaded), image) << "corpus entry " << i;
    // binary → text: identical to the text serialization of the same model
    // set (the corpus stores both encodings of one set). This is the
    // text→binary→text acceptance property, across the whole corpus.
    std::ostringstream text;
    save_models(text, loaded);
    EXPECT_EQ(text.str(), corpus().models[i]) << "corpus entry " << i;
  }
}

TEST(ParserFuzz, MutatedBinaryModelsNeverCrashOrBalloon) {
  std::vector<std::vector<std::uint8_t>> seeds;
  for (const std::string& image : corpus().binary_models) {
    seeds.emplace_back(image.begin(), image.end());
  }
  run_mutations(
      seeds, kSeed ^ 9, /*mutants_per_seed=*/20, /*max_stacked=*/3,
      [](const std::vector<std::uint8_t>& mutant, ParsePolicy policy) {
        try {
          ParseStats stats;
          const BehaviorModelSet models =
              load_models_binary(mutant, policy, &stats);
          // Counts are capped against the bytes remaining in their section,
          // so no parsed structure can outgrow the input.
          EXPECT_LE(models.periodic.size(), mutant.size());
          EXPECT_LE(models.user_actions.size(), mutant.size());
          std::size_t labels = 0;
          for (const auto& t : models.training_traces) labels += t.size();
          EXPECT_LE(labels, mutant.size());
          // Anything the loader accepted must also be safe to USE: walk
          // every surviving forest exactly the way classify does (it
          // indexes row[feature], child indices and proba[1] unchecked),
          // so a forest invariant the loader failed to enforce shows up
          // here as an ASan hit or a hang instead of shipping.
          for (const auto& [device, list] : models.user_actions.classifiers()) {
            for (const double fill : {0.0, 1e308, -1e308}) {
              const std::vector<double> row(kNumFlowFeatures, fill);
              for (const auto& clf : list) {
                const auto proba = clf.forest.predict_proba(row);
                ASSERT_GE(proba.size(), 2u);
              }
            }
            FlowRecord flow;
            flow.device = device;
            (void)models.user_actions.classify(flow);
          }
        } catch (const SerializationError& e) {
          // Typed rejection with a sane offset is the only other outcome.
          EXPECT_LE(e.offset(), mutant.size() + 1);
        }
      });
}

TEST(ParserFuzz, TruncatedBinaryModelsFailCleanlyAtEveryLength) {
  // Chop a valid image at every byte length: each prefix must either load
  // (only the full image can — CRC) or throw a typed error whose offset
  // points inside the prefix. Catches any read-past-end at any boundary,
  // including mid-header, mid-table, and every section edge.
  const std::string& image = corpus().binary_models.front();
  for (std::size_t len = 0; len < image.size(); ++len) {
    const auto prefix = as_bytes(image).first(len);
    EXPECT_THROW(load_models_binary(prefix, ParsePolicy::kStrict),
                 SerializationError)
        << "prefix length " << len;
    try {
      (void)load_models_binary(prefix, ParsePolicy::kLenient);
    } catch (const SerializationError& e) {
      EXPECT_LE(e.offset(), len + 1) << "prefix length " << len;
    }
  }
  // The untruncated image still loads (guards against an off-by-one above).
  EXPECT_NO_THROW(load_models_binary(as_bytes(image), ParsePolicy::kStrict));
}

TEST(ParserFuzz, LenientPcapClassifiesEveryMutantSkip) {
  // Whatever a mutant does, lenient mode must account for each record as
  // either a packet or exactly one skip class — the stats always add up.
  Rng rng(kSeed ^ 8);
  for (std::size_t s = 0; s < corpus().pcaps.size(); ++s) {
    Rng fork = rng.fork(s);
    std::vector<std::uint8_t> mutant = corpus().pcaps[s];
    fuzz::mutate(fork, mutant);
    try {
      const auto result = parse_pcap(mutant, ParsePolicy::kLenient);
      EXPECT_EQ(result.packets.size(), result.stats.packets);
      EXPECT_EQ(result.skipped, result.stats.skipped());
      EXPECT_LE(result.stats.packets + result.stats.non_ip +
                    result.stats.non_transport + result.stats.malformed,
                result.stats.records + 1);
    } catch (const ParseError&) {
      // only the global header may throw under kLenient
    }
  }
}

}  // namespace
}  // namespace behaviot
