#include "behaviot/testbed/datasets.hpp"

#include <gtest/gtest.h>

#include <set>

namespace behaviot::testbed {
namespace {

TEST(IdleDataset, NoUserEventsAtAll) {
  const auto idle = Datasets::idle(/*seed=*/1, /*days=*/0.25);
  EXPECT_TRUE(idle.events.empty());
  EXPECT_FALSE(idle.packets.empty());
  for (const FlowTruth& t : idle.truths) {
    EXPECT_NE(t.kind, EventKind::kUser);
  }
}

TEST(IdleDataset, CoversAllDevices) {
  const auto idle = Datasets::idle(/*seed=*/2, /*days=*/0.25);
  std::set<DeviceId> devices;
  for (const Packet& p : idle.packets) devices.insert(p.device);
  EXPECT_EQ(devices.size(), Catalog::standard().size());
}

TEST(IdleDataset, PacketsSortedByTime) {
  const auto idle = Datasets::idle(/*seed=*/3, /*days=*/0.1);
  for (std::size_t i = 1; i < idle.packets.size(); ++i) {
    EXPECT_LE(idle.packets[i - 1].ts, idle.packets[i].ts);
  }
}

TEST(IdleDataset, DeterministicForSeed) {
  const auto a = Datasets::idle(4, 0.1);
  const auto b = Datasets::idle(4, 0.1);
  ASSERT_EQ(a.packets.size(), b.packets.size());
  for (std::size_t i = 0; i < a.packets.size(); i += 97) {
    EXPECT_EQ(a.packets[i].ts, b.packets[i].ts);
    EXPECT_EQ(a.packets[i].size, b.packets[i].size);
  }
  const auto c = Datasets::idle(5, 0.1);
  EXPECT_NE(a.packets.size(), c.packets.size());
}

TEST(ActivityDataset, EveryCommandRepeats) {
  const auto activity = Datasets::activity(/*seed=*/6, /*repetitions=*/3);
  std::map<std::string, std::size_t> per_label;
  for (const UserEvent& e : activity.events) {
    ++per_label[e.label()];
  }
  EXPECT_FALSE(per_label.empty());
  for (const auto& [label, count] : per_label) {
    EXPECT_GE(count, 3u) << label;  // aggregated labels repeat even more
  }
  // Every activity-set device with commands produced events.
  std::set<DeviceId> devices;
  for (const UserEvent& e : activity.events) devices.insert(e.device);
  std::size_t expected = 0;
  for (const DeviceInfo* d : Catalog::standard().activity_set()) {
    if (!d->commands.empty()) ++expected;
  }
  EXPECT_EQ(devices.size(), expected);
}

TEST(ActivityDataset, UserTruthsCarryLabels) {
  const auto activity = Datasets::activity(/*seed=*/7, /*repetitions=*/2);
  std::size_t user_flows = 0;
  for (const FlowTruth& t : activity.truths) {
    if (t.kind == EventKind::kUser) {
      ++user_flows;
      EXPECT_FALSE(t.label.empty());
      EXPECT_NE(t.label.find(':'), std::string::npos);
    }
  }
  EXPECT_GT(user_flows, 0u);
}

TEST(RoutineDataset, ProducesCorrelatedEvents) {
  const auto routine = Datasets::routine_week(/*seed=*/8, /*days=*/2.0);
  EXPECT_GT(routine.events.size(), 50u);
  // Events only from routine-set devices.
  for (const UserEvent& e : routine.events) {
    const DeviceInfo& d = Catalog::standard().by_id(e.device);
    EXPECT_TRUE(d.in_routine_set) << d.name;
  }
  // The R8 automation (ring camera motion → gosund on) appears: find a
  // gosund event within 10 s after a ring_camera motion.
  bool pair_found = false;
  for (std::size_t i = 0; i < routine.events.size() && !pair_found; ++i) {
    if (routine.events[i].device_name != "ring_camera") continue;
    for (std::size_t j = i + 1; j < routine.events.size(); ++j) {
      const auto gap = routine.events[j].ts - routine.events[i].ts;
      if (gap > seconds(10.0)) break;
      if (routine.events[j].device_name == "gosund_bulb") pair_found = true;
    }
  }
  EXPECT_TRUE(pair_found);
}

TEST(UncontrolledDay, QuietDayHasBackgroundAndSomeEvents) {
  const auto day = Datasets::uncontrolled_day(2, /*seed=*/9);
  EXPECT_FALSE(day.packets.empty());
  EXPECT_GT(day.events.size(), 5u);
  EXPECT_EQ(day.start, Timestamp::from_seconds(2 * 86400.0));
  EXPECT_EQ(day.end, Timestamp::from_seconds(3 * 86400.0));
}

TEST(UncontrolledDay, LabExperimentDayHasVoiceBurst) {
  // Day 13 carries the 50-activation experiment (case 2).
  const auto day = Datasets::uncontrolled_day(13, /*seed=*/9);
  std::size_t spot_voice = 0;
  for (const UserEvent& e : day.events) {
    if (e.device_name == "echo_spot" && e.activity == "voice") ++spot_voice;
  }
  EXPECT_GE(spot_voice, 50u);
}

TEST(UncontrolledDay, OutageDayLosesTraffic) {
  // Day 30 has a ~6 h network outage (case 6).
  const auto outage_day = Datasets::uncontrolled_day(30, /*seed=*/9);
  const auto normal_day = Datasets::uncontrolled_day(29, /*seed=*/9);
  EXPECT_LT(outage_day.truths.size(), normal_day.truths.size() * 0.95);
}

TEST(UncontrolledDay, RemovedDeviceIsSilent) {
  // tuya_camera is removed on days 40-42.
  const auto day = Datasets::uncontrolled_day(41, /*seed=*/9);
  const DeviceInfo* tuya = Catalog::standard().by_name("tuya_camera");
  for (const Packet& p : day.packets) {
    EXPECT_NE(p.device, tuya->id);
  }
}

TEST(UncontrolledDay, RelocationBoostsWyzeMotion) {
  // Days 8-11: the camera-relocation incident multiplies motion events.
  auto wyze_motions = [](std::size_t day) {
    const auto capture = Datasets::uncontrolled_day(day, /*seed=*/9);
    std::size_t n = 0;
    for (const UserEvent& e : capture.events) {
      if (e.device_name == "wyze_camera" && e.activity == "motion") ++n;
    }
    return n;
  };
  // Average a few days to damp Poisson noise.
  const std::size_t before = wyze_motions(2) + wyze_motions(4) + wyze_motions(6);
  const std::size_t during = wyze_motions(8) + wyze_motions(9) + wyze_motions(10);
  EXPECT_GT(during, before);
}

TEST(Incidents, ScheduleIsWellFormed) {
  for (const Incident& inc : standard_incidents()) {
    EXPECT_LT(inc.start_day, inc.end_day);
    EXPECT_GE(inc.start_day, 0.0);
    EXPECT_LE(inc.end_day, 87.0);
    EXPECT_FALSE(inc.note.empty());
  }
}

TEST(Incidents, OutageSpansClipToWindow) {
  // Day 30 outage: 30.40-30.65.
  const auto spans = outage_spans_for(
      "", Timestamp::from_seconds(30 * 86400.0),
      Timestamp::from_seconds(31 * 86400.0));
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_NEAR(spans[0].first.seconds(), 30.40 * 86400.0, 1.0);
  EXPECT_NEAR(spans[0].second.seconds(), 30.65 * 86400.0, 1.0);
  // A window that misses the incident yields nothing.
  EXPECT_TRUE(outage_spans_for("", Timestamp(0),
                               Timestamp::from_seconds(86400.0))
                  .empty());
}

TEST(Incidents, DeviceScopedSpansOnlyAffectThatDevice) {
  const Timestamp t0 = Timestamp::from_seconds(41 * 86400.0);
  const Timestamp t1 = Timestamp::from_seconds(42 * 86400.0);
  EXPECT_FALSE(outage_spans_for("tuya_camera", t0, t1).empty());
  EXPECT_TRUE(outage_spans_for("ring_camera", t0, t1).empty());
}

TEST(Incidents, KindNames) {
  EXPECT_STREQ(to_string(IncidentKind::kNetworkOutage), "network-outage");
  EXPECT_STREQ(to_string(IncidentKind::kCameraRelocation),
               "camera-relocation");
}

}  // namespace
}  // namespace behaviot::testbed
