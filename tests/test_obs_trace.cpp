// Event tracer and provenance layer: ring-buffer semantics (wrap, drop
// counting, sampling), Chrome trace-event JSON schema, per-thread worker
// lanes under the runtime pool, the shared JSON escape/parse helpers,
// exporter quantiles and Prometheus collision handling, and the alert
// explanation round trip.
#include "behaviot/obs/trace.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "behaviot/analysis/alert_report.hpp"
#include "behaviot/deviation/monitor.hpp"
#include "behaviot/obs/export.hpp"
#include "behaviot/obs/json.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/span.hpp"
#include "behaviot/pfsm/synoptic.hpp"
#include "behaviot/runtime/runtime.hpp"

namespace behaviot {
namespace {

/// Every test runs against a freshly armed tracer and leaves it disabled
/// (the library default). The registry stays disabled unless a test enables
/// it — span/trace gating is independent and tested as such.
class TraceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    obs::Tracer::global().stop();
    obs::MetricsRegistry::set_enabled(false);
    obs::MetricsRegistry::global().reset_values();
  }
};

TEST_F(TraceTest, DisabledByDefaultRecordsNothing) {
  ASSERT_FALSE(obs::Tracer::enabled());
  obs::trace_instant("ignored");
  obs::trace_counter("ignored", 1.0);
  obs::Tracer::global().start();  // arm only now; prior events must be gone
  obs::Tracer::global().stop();
  const auto snap = obs::Tracer::global().snapshot();
  EXPECT_EQ(snap.total_events, 0u);
}

TEST_F(TraceTest, RecordsSpansInstantsAndCounters) {
  obs::Tracer::global().start();
  obs::Tracer::global().span_begin("work");
  obs::Tracer::global().instant("marker");
  obs::Tracer::global().counter("queue_depth", 3.0);
  obs::Tracer::global().span_end("work");
  obs::Tracer::global().stop();

  const auto snap = obs::Tracer::global().snapshot();
  ASSERT_EQ(snap.total_events, 4u);
  EXPECT_EQ(snap.total_dropped, 0u);
  // All four came from this thread; timestamps are nondecreasing.
  const obs::ThreadTrace* mine = nullptr;
  for (const auto& t : snap.threads) {
    if (t.events.size() == 4) mine = &t;
  }
  ASSERT_NE(mine, nullptr);
  EXPECT_EQ(mine->events[0].kind, obs::TraceEvent::Kind::kSpanBegin);
  EXPECT_STREQ(mine->events[0].name, "work");
  EXPECT_EQ(mine->events[1].kind, obs::TraceEvent::Kind::kInstant);
  EXPECT_EQ(mine->events[2].kind, obs::TraceEvent::Kind::kCounter);
  EXPECT_DOUBLE_EQ(mine->events[2].value, 3.0);
  EXPECT_EQ(mine->events[3].kind, obs::TraceEvent::Kind::kSpanEnd);
  for (std::size_t i = 1; i < mine->events.size(); ++i) {
    EXPECT_GE(mine->events[i].ts_us, mine->events[i - 1].ts_us);
  }
}

TEST_F(TraceTest, RingWrapKeepsNewestAndCountsDrops) {
  obs::Tracer::global().start({.buffer_capacity = 8});
  for (int i = 0; i < 20; ++i) {
    std::string name = "i";
    name += std::to_string(i);
    obs::Tracer::global().instant(name);
  }
  obs::Tracer::global().stop();

  const auto snap = obs::Tracer::global().snapshot();
  ASSERT_EQ(snap.threads.size(), 1u);
  const auto& t = snap.threads[0];
  EXPECT_EQ(t.dropped, 12u);
  EXPECT_EQ(snap.total_dropped, 12u);
  ASSERT_EQ(t.events.size(), 8u);
  // The retained window is the newest 8 events, oldest first.
  for (int i = 0; i < 8; ++i) {
    std::string expected = "i";
    expected += std::to_string(12 + i);
    EXPECT_STREQ(t.events[i].name, expected.c_str());
  }
}

TEST_F(TraceTest, SamplingThinsInstantsButNeverSpans) {
  obs::Tracer::global().start({.sample_every = 4});
  for (int i = 0; i < 16; ++i) obs::Tracer::global().instant("tick");
  for (int i = 0; i < 5; ++i) {
    obs::Tracer::global().span_begin("s");
    obs::Tracer::global().span_end("s");
  }
  obs::Tracer::global().stop();

  const auto snap = obs::Tracer::global().snapshot();
  std::size_t instants = 0;
  std::size_t spans = 0;
  for (const auto& t : snap.threads) {
    for (const auto& e : t.events) {
      instants += e.kind == obs::TraceEvent::Kind::kInstant ? 1 : 0;
      spans += e.kind != obs::TraceEvent::Kind::kInstant ? 1 : 0;
    }
  }
  EXPECT_EQ(instants, 4u);  // 1 in 4 of 16
  EXPECT_EQ(spans, 10u);    // every begin/end pair survives
}

TEST_F(TraceTest, LongNamesTruncateInsteadOfAllocating) {
  obs::Tracer::global().start();
  const std::string name(200, 'x');
  obs::Tracer::global().instant(name);
  obs::Tracer::global().stop();
  const auto snap = obs::Tracer::global().snapshot();
  ASSERT_EQ(snap.total_events, 1u);
  EXPECT_EQ(std::string(snap.threads[0].events[0].name).size(),
            obs::kTraceNameCap - 1);
}

TEST_F(TraceTest, RestartResetsRetainedEvents) {
  obs::Tracer::global().start();
  obs::Tracer::global().instant("old");
  obs::Tracer::global().stop();
  obs::Tracer::global().start();
  obs::Tracer::global().instant("new");
  obs::Tracer::global().stop();
  const auto snap = obs::Tracer::global().snapshot();
  ASSERT_EQ(snap.total_events, 1u);
  EXPECT_STREQ(snap.threads[0].events[0].name, "new");
}

/// Walks a parsed Chrome trace document and asserts the schema the CLI
/// promises: required keys per event, known phases, and balanced B/E
/// nesting per thread.
void check_chrome_schema(const std::string& text) {
  const auto doc = obs::json::parse(text);
  const auto& events = doc.at("traceEvents").as_array();
  std::map<double, int> depth;  // tid -> open spans
  for (const auto& e : events) {
    const std::string& ph = e.at("ph").as_string();
    ASSERT_TRUE(ph == "B" || ph == "E" || ph == "i" || ph == "C" || ph == "M")
        << "unknown phase " << ph;
    (void)e.at("name").as_string();
    (void)e.at("pid").as_number();
    const double tid = e.at("tid").as_number();
    if (ph != "M") (void)e.at("ts").as_number();
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      --depth[tid];
      ASSERT_GE(depth[tid], 0) << "unbalanced span end on tid " << tid;
    }
    if (ph == "C") (void)e.at("args").as_object();
  }
  for (const auto& [tid, d] : depth) {
    EXPECT_EQ(d, 0) << "unclosed span on tid " << tid;
  }
}

TEST_F(TraceTest, ChromeExportIsValidAndBalanced) {
  obs::Tracer::set_thread_label("test-main");
  obs::Tracer::global().start();
  obs::Tracer::global().span_begin("outer");
  obs::Tracer::global().span_begin("inner");
  obs::Tracer::global().instant("mark");
  obs::Tracer::global().counter("n", 7.0);
  obs::Tracer::global().span_end("inner");
  obs::Tracer::global().span_end("outer");
  obs::Tracer::global().stop();

  const std::string text =
      obs::trace_to_chrome_json(obs::Tracer::global().snapshot());
  check_chrome_schema(text);
  EXPECT_NE(text.find("\"test-main\""), std::string::npos);
  EXPECT_NE(text.find("thread_name"), std::string::npos);
  EXPECT_NE(text.find("\"dropped_events\": 0"), std::string::npos);
}

TEST_F(TraceTest, ExportStaysValidAfterWrapStrandsSpanEnds) {
  // Capacity 4 with a span pair followed by instants: the wrap overwrites
  // the span-begin, leaving a stranded end the exporter must skip.
  obs::Tracer::global().start({.buffer_capacity = 4});
  obs::Tracer::global().span_begin("doomed");
  for (int i = 0; i < 6; ++i) obs::Tracer::global().instant("filler");
  obs::Tracer::global().span_end("doomed");
  obs::Tracer::global().stop();

  const auto snap = obs::Tracer::global().snapshot();
  EXPECT_GT(snap.total_dropped, 0u);
  check_chrome_schema(obs::trace_to_chrome_json(snap));
}

TEST_F(TraceTest, StageSpanTracesEvenWithRegistryDisabled) {
  ASSERT_FALSE(obs::MetricsRegistry::enabled());
  obs::Tracer::global().start();
  {
    obs::StageSpan outer("stage_a");
    EXPECT_EQ(outer.path(), "stage_a");
    obs::StageSpan inner("stage_b");
    EXPECT_EQ(inner.path(), "stage_a/stage_b");
  }
  obs::Tracer::global().stop();

  const auto snap = obs::Tracer::global().snapshot();
  ASSERT_EQ(snap.total_events, 4u);
  const auto& ev = snap.threads[0].events;
  EXPECT_STREQ(ev[0].name, "stage_a");
  EXPECT_STREQ(ev[1].name, "stage_a/stage_b");
  EXPECT_EQ(ev[2].kind, obs::TraceEvent::Kind::kSpanEnd);
  EXPECT_EQ(ev[3].kind, obs::TraceEvent::Kind::kSpanEnd);
  // The registry saw nothing: no span histogram was ever registered.
  EXPECT_EQ(
      obs::MetricsRegistry::global().snapshot().histograms.count("span.stage_a"),
      0u);
}

TEST_F(TraceTest, SpansStayNoOpWhenBothRecordersDisabled) {
  obs::StageSpan span("invisible");
  EXPECT_EQ(span.path(), "");
  EXPECT_EQ(span.elapsed_ms(), 0.0);
}

TEST_F(TraceTest, ParallelForRendersMultipleWorkerLanes) {
  runtime::ThreadPool pool({.threads = 4});
  obs::Tracer::global().start();

  // Chunk bodies hold until a second distinct thread has joined the job, so
  // at least two lanes are guaranteed even on a single-core machine (the
  // workers are already notified; the spin yields until one is scheduled).
  std::mutex mu;
  std::set<std::thread::id> seen;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(30);
  {
    // Scoped so the stage's end event is recorded before stop().
    obs::StageSpan stage("fanout");
    pool.parallel_for(0, 64, [&](std::size_t) {
      {
        std::lock_guard lock(mu);
        seen.insert(std::this_thread::get_id());
      }
      for (;;) {
        {
          std::lock_guard lock(mu);
          if (seen.size() >= 2) break;
        }
        if (std::chrono::steady_clock::now() > deadline) break;
        std::this_thread::yield();
      }
    });
  }
  ASSERT_GE(seen.size(), 2u) << "no second thread joined within the deadline";
  obs::Tracer::global().stop();

  const auto snap = obs::Tracer::global().snapshot();
  std::size_t lanes_with_chunks = 0;
  for (const auto& t : snap.threads) {
    bool has_chunk = false;
    for (const auto& e : t.events) {
      if (std::string(e.name) == "fanout/task" &&
          e.kind == obs::TraceEvent::Kind::kSpanBegin) {
        has_chunk = true;
      }
    }
    lanes_with_chunks += has_chunk ? 1 : 0;
  }
  EXPECT_GE(lanes_with_chunks, 2u);
  // Worker lanes carry their pool label.
  bool labeled_worker = false;
  for (const auto& t : snap.threads) {
    if (t.label.rfind("pool-worker-", 0) == 0 && !t.events.empty()) {
      labeled_worker = true;
    }
  }
  EXPECT_TRUE(labeled_worker);
  check_chrome_schema(obs::trace_to_chrome_json(snap));
}

// ---- JSON helpers ----

TEST(ObsJson, EscapeControlAndNonAscii) {
  EXPECT_EQ(obs::json::escape("plain"), "plain");
  EXPECT_EQ(obs::json::escape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(obs::json::escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(obs::json::escape(std::string(1, '\0')), "\\u0000");
  EXPECT_EQ(obs::json::escape("\x01\x1f"), "\\u0001\\u001f");
  // Bytes >= 0x7f (DEL, Latin-1, UTF-8 lead bytes) never pass through raw.
  EXPECT_EQ(obs::json::escape("\x7f"), "\\u007f");
  EXPECT_EQ(obs::json::escape("caf\xc3\xa9"), "caf\\u00c3\\u00a9");
}

TEST(ObsJson, ParseRoundTripsEscapedStrings) {
  const auto doc = obs::json::parse("{\"k\": \"a\\u00e9\\n\\\"b\\\"\"}");
  EXPECT_EQ(doc.at("k").as_string(), "a\xe9\n\"b\"");
}

TEST(ObsJson, ParseStructuresAndNumbers) {
  const auto doc = obs::json::parse(
      R"({"a": [1, -2.5, 1e3], "b": {"c": true, "d": null}, "e": "s"})");
  const auto& a = doc.at("a").as_array();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[0].as_number(), 1.0);
  EXPECT_DOUBLE_EQ(a[1].as_number(), -2.5);
  EXPECT_DOUBLE_EQ(a[2].as_number(), 1000.0);
  EXPECT_TRUE(doc.at("b").at("c").as_bool());
  EXPECT_TRUE(doc.at("b").at("d").is_null());
  EXPECT_EQ(doc.at("e").as_string(), "s");
}

TEST(ObsJson, ParseRejectsMalformedInput) {
  EXPECT_THROW(obs::json::parse(""), std::runtime_error);
  EXPECT_THROW(obs::json::parse("{"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("{\"a\": }"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("\"unterminated"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("nul"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("1 2"), std::runtime_error);
  EXPECT_THROW(obs::json::parse("nan"), std::runtime_error);
}

TEST(ObsJson, TypedAccessorsThrowOnMismatch) {
  const auto doc = obs::json::parse("{\"n\": 1}");
  EXPECT_THROW((void)doc.at("n").as_string(), std::runtime_error);
  EXPECT_THROW((void)doc.at("missing"), std::runtime_error);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

// ---- Exporter quantiles and Prometheus naming ----

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::MetricsRegistry::set_enabled(true);
    obs::MetricsRegistry::global().reset_values();
  }
  void TearDown() override {
    obs::MetricsRegistry::set_enabled(false);
    obs::MetricsRegistry::global().reset_values();
  }
};

TEST_F(ExportTest, HistogramQuantileInterpolatesWithinBuckets) {
  obs::HistogramSnapshot h;
  h.bounds = {10.0, 20.0, 30.0};
  h.buckets = {10, 10, 10, 0};  // 30 observations, none in the +Inf tail
  h.count = 30;
  // Rank 15 falls in the (10, 20] bucket, halfway through it.
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.5), 15.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(h, 1.0), 30.0);
  EXPECT_NEAR(histogram_quantile(h, 0.95), 28.5, 1e-9);
}

TEST_F(ExportTest, HistogramQuantileHandlesEdgeCases) {
  obs::HistogramSnapshot empty;
  EXPECT_DOUBLE_EQ(histogram_quantile(empty, 0.5), 0.0);

  obs::HistogramSnapshot tail;
  tail.bounds = {10.0};
  tail.buckets = {0, 5};  // everything beyond the last finite bound
  tail.count = 5;
  EXPECT_DOUBLE_EQ(histogram_quantile(tail, 0.5), 10.0);
}

TEST_F(ExportTest, JsonExporterCarriesQuantiles) {
  auto& h = obs::histogram("q.hist", std::vector<double>{10.0, 20.0});
  for (int i = 0; i < 10; ++i) h.observe(5.0);
  for (int i = 0; i < 10; ++i) h.observe(15.0);
  const std::string text = obs::to_json(obs::MetricsRegistry::global().snapshot());
  const auto doc = obs::json::parse(text);  // exporter output must parse
  const auto& entry = doc.at("histograms").at("q.hist");
  EXPECT_DOUBLE_EQ(entry.at("p50").as_number(), 10.0);
  EXPECT_GT(entry.at("p95").as_number(), 10.0);
  EXPECT_LE(entry.at("p99").as_number(), 20.0);
}

TEST_F(ExportTest, PrometheusEmitsQuantileSummaries) {
  auto& h = obs::histogram("sum.hist", std::vector<double>{1.0});
  h.observe(0.5);
  const std::string text =
      obs::to_prometheus(obs::MetricsRegistry::global().snapshot());
  EXPECT_NE(text.find("# TYPE behaviot_sum_hist_summary summary"),
            std::string::npos);
  EXPECT_NE(text.find("behaviot_sum_hist_summary{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.99\""), std::string::npos);
  // Span histograms keep their stage label alongside the quantile label.
  obs::histogram(std::string(obs::kSpanMetricPrefix) + "stage_x",
                 std::vector<double>{1.0})
      .observe(0.5);
  const std::string spans =
      obs::to_prometheus(obs::MetricsRegistry::global().snapshot());
  EXPECT_NE(spans.find("behaviot_stage_ms_summary{stage=\"stage_x\","
                       "quantile=\"0.5\"}"),
            std::string::npos);
}

TEST_F(ExportTest, PrometheusDisambiguatesCollidingNames) {
  obs::counter("collide.name").inc();
  obs::counter("collide_name").add(2);
  const std::string text =
      obs::to_prometheus(obs::MetricsRegistry::global().snapshot());
  // "collide.name" sorts first and keeps the bare family; "collide_name"
  // is deterministically suffixed instead of silently merging.
  EXPECT_NE(text.find("behaviot_collide_name_total 1"), std::string::npos);
  EXPECT_NE(text.find("behaviot_collide_name_total_2 2"), std::string::npos);
  // One # TYPE line per family, never repeated.
  EXPECT_EQ(text.find("# TYPE behaviot_collide_name_total counter"),
            text.rfind("# TYPE behaviot_collide_name_total counter"));
}

// ---- Alert provenance ----

/// Minimal deviation scenario shared by the explanation tests: one 600 s
/// heartbeat model and a small PFSM.
struct ProvenanceFixture {
  PeriodicModelSet periodic;
  Pfsm pfsm;
  ShortTermThreshold short_term;

  ProvenanceFixture() {
    std::vector<FlowRecord> flows;
    for (double t = 0; t < 86400.0; t += 600.0) {
      FlowRecord f = heartbeat_at(t);
      f.truth = EventKind::kPeriodic;
      flows.push_back(std::move(f));
    }
    periodic = PeriodicModelSet::infer(flows, 86400.0);

    const std::vector<std::vector<std::string>> traces{
        {"cam:motion", "bulb:on"},
        {"cam:motion", "bulb:on"},
        {"plug:on", "plug:off"}};
    pfsm = infer_pfsm(traces).pfsm;
    short_term = ShortTermThreshold::calibrate(pfsm, traces);
  }

  [[nodiscard]] static FlowRecord heartbeat_at(double t_s) {
    FlowRecord f;
    f.device = 1;
    f.tuple = {{Ipv4Addr(192, 168, 1, 11), 40000},
               {Ipv4Addr(54, 2, 2, 2), 443},
               Transport::kTcp};
    f.domain = "hb.vendor.com";
    f.app = AppProtocol::kTls;
    f.start = f.end = Timestamp::from_seconds(t_s);
    f.packets = {{f.start, 120, Direction::kOutbound, false},
                 {f.start + milliseconds(40), 90, Direction::kInbound, false}};
    return f;
  }

  [[nodiscard]] static EventTrace trace_of(
      const std::vector<std::string>& labels, double t0_s) {
    EventTrace trace;
    double t = t0_s;
    for (const auto& l : labels) {
      UserEvent e;
      const auto colon = l.find(':');
      e.device_name = l.substr(0, colon);
      e.activity = l.substr(colon + 1);
      e.ts = Timestamp::from_seconds(t);
      e.vote_margin = 0.4;
      e.confidence = 0.8;
      t += 5.0;
      trace.push_back(e);
    }
    return trace;
  }
};

TEST(AlertProvenance, EveryAlertCarriesAPopulatedExplanation) {
  ProvenanceFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);

  // Window 1 primes the timers; window 2 goes silent (periodic alert) and
  // replays a never-seen trace (short-term alert, long-term shift).
  std::vector<FlowRecord> day1;
  for (double t = 0; t < 86400.0; t += 600.0) {
    day1.push_back(ProvenanceFixture::heartbeat_at(t));
  }
  (void)monitor.evaluate_window(Timestamp(0),
                                Timestamp::from_seconds(86400.0), day1, {});

  std::vector<EventTrace> weird;
  for (int i = 0; i < 6; ++i) {
    weird.push_back(ProvenanceFixture::trace_of(
        {"kettle:on", "door:open", "plug:off", "cam:motion"},
        86400.0 + 100.0 * i));
  }
  const auto alerts = monitor.evaluate_window(
      Timestamp::from_seconds(86400.0), Timestamp::from_seconds(2 * 86400.0),
      {}, weird);
  ASSERT_FALSE(alerts.empty());

  std::set<DeviationSource> sources;
  for (const auto& a : alerts) {
    sources.insert(a.source);
    const AlertExplanation& ex = a.explanation;
    EXPECT_FALSE(ex.metric.empty()) << a.context;
    EXPECT_FALSE(ex.model_group.empty()) << a.context;
    EXPECT_GT(ex.threshold, 0.0) << a.context;
    switch (a.source) {
      case DeviationSource::kPeriodic:
        EXPECT_EQ(ex.metric, "Mp");
        EXPECT_GT(ex.observed, ex.expected);  // silence >> period
        EXPECT_GT(ex.support, 0u);
        break;
      case DeviationSource::kShortTerm:
        EXPECT_EQ(ex.metric, "A_T");
        EXPECT_DOUBLE_EQ(ex.observed, a.score);
        EXPECT_EQ(ex.support, 4u);  // trace length
        EXPECT_DOUBLE_EQ(ex.vote_margin, 0.4);
        break;
      case DeviationSource::kLongTerm:
        EXPECT_EQ(ex.metric, "|z|");
        EXPECT_NE(ex.model_group.find(" -> "), std::string::npos);
        EXPECT_GT(ex.support, 0u);
        break;
    }
  }
  EXPECT_TRUE(sources.count(DeviationSource::kPeriodic));
  EXPECT_TRUE(sources.count(DeviationSource::kShortTerm));
}

TEST(AlertProvenance, PeriodicLateArrivalCarriesClusterEvidence) {
  ProvenanceFixture fx;
  DeviationMonitor monitor(fx.periodic, fx.pfsm, fx.short_term);

  std::vector<FlowRecord> day1;
  for (double t = 0; t < 86400.0; t += 600.0) {
    day1.push_back(ProvenanceFixture::heartbeat_at(t));
  }
  (void)monitor.evaluate_window(Timestamp(0),
                                Timestamp::from_seconds(86400.0), day1, {});

  // Day 2: one very late heartbeat (observed flow, not a silence) — the
  // explanation should locate it against the trained density clusters.
  const std::vector<FlowRecord> day2{
      ProvenanceFixture::heartbeat_at(86400.0 + 40000.0)};
  const auto alerts = monitor.evaluate_window(
      Timestamp::from_seconds(86400.0), Timestamp::from_seconds(86400.0 + 40600.0),
      day2, {});
  ASSERT_FALSE(alerts.empty());
  const auto& ex = alerts[0].explanation;
  EXPECT_EQ(ex.metric, "Mp");
  // The fixture's idle flows form at least one density cluster, and the
  // late flow has the same shape, so evidence must be present and close.
  EXPECT_GE(ex.cluster_id, 0);
  EXPECT_GE(ex.cluster_distance, 0.0);
}

TEST(AlertProvenance, ReportRoundTripsThroughJson) {
  DeviationAlert a;
  a.source = DeviationSource::kShortTerm;
  a.when = Timestamp(123456789);
  a.device = 7;
  a.score = 3.25;
  a.threshold = 1.5;
  a.context = "trace [cam:motion -> bulb:on] with \"quotes\" and\nnewline";
  a.explanation.metric = "A_T";
  a.explanation.observed = 3.25;
  a.explanation.expected = 1.0625;
  a.explanation.threshold = 1.5;
  a.explanation.model_group = "cam:motion -> bulb:on";
  a.explanation.vote_margin = 0.125;
  a.explanation.support = 2;

  DeviationAlert b;  // defaults everywhere: n/a fields must survive too
  b.source = DeviationSource::kPeriodic;
  b.explanation.metric = "Mp";
  b.explanation.model_group = "tcp:hb";
  b.explanation.cluster_id = 3;
  b.explanation.cluster_distance = 0.75;

  const std::vector<DeviationAlert> alerts{a, b};
  const std::string text = alerts_to_json(alerts);
  (void)obs::json::parse(text);  // must be a valid document

  const auto back = alerts_from_json(text);
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0].source, DeviationSource::kShortTerm);
  EXPECT_EQ(back[0].when.micros(), 123456789);
  EXPECT_EQ(back[0].device, 7);
  EXPECT_DOUBLE_EQ(back[0].score, 3.25);
  EXPECT_EQ(back[0].context, a.context);
  EXPECT_EQ(back[0].explanation.metric, "A_T");
  EXPECT_DOUBLE_EQ(back[0].explanation.expected, 1.0625);
  EXPECT_DOUBLE_EQ(back[0].explanation.vote_margin, 0.125);
  EXPECT_EQ(back[0].explanation.support, 2u);
  EXPECT_EQ(back[1].explanation.cluster_id, 3);
  EXPECT_DOUBLE_EQ(back[1].explanation.cluster_distance, 0.75);
  EXPECT_EQ(back[1].explanation.vote_margin, -1.0);  // n/a preserved

  // Serialization is deterministic: a second pass is byte-identical.
  EXPECT_EQ(alerts_to_json(back), text);
}

TEST(AlertProvenance, FromJsonRejectsMalformedReports) {
  EXPECT_THROW(alerts_from_json("not json"), std::runtime_error);
  EXPECT_THROW(alerts_from_json("{\"version\": 2, \"alerts\": []}"),
               std::runtime_error);
  EXPECT_THROW(alerts_from_json("{\"alerts\": []}"), std::runtime_error);
  EXPECT_THROW(
      alerts_from_json(
          R"({"version": 1, "alerts": [{"source": "bogus"}]})"),
      std::runtime_error);
}

TEST(AlertProvenance, RenderedExplanationNamesTheEvidence) {
  DeviationAlert a;
  a.source = DeviationSource::kPeriodic;
  a.when = Timestamp::from_seconds(42.0);
  a.device = 1;
  a.score = 2.5;
  a.threshold = 1.609;
  a.context = "tcp:hb: silent for 40000s";
  a.explanation.metric = "Mp";
  a.explanation.observed = 40000.0;
  a.explanation.expected = 600.0;
  a.explanation.threshold = 1.609;
  a.explanation.model_group = "tcp:hb.vendor.com:443";
  a.explanation.support = 144;

  const std::string text = render_alert_explanation(a, "tplink_plug");
  EXPECT_NE(text.find("tplink_plug"), std::string::npos);
  EXPECT_NE(text.find("Mp"), std::string::npos);
  EXPECT_NE(text.find("expected period 600.0s"), std::string::npos);
  EXPECT_NE(text.find("tcp:hb.vendor.com:443"), std::string::npos);
  EXPECT_NE(text.find("support 144"), std::string::npos);
}

}  // namespace
}  // namespace behaviot
