#include "behaviot/net/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace behaviot {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent1(9);
  Rng parent2(9);
  parent2.next_u64();  // consuming the parent must not change the fork
  Rng f1 = parent1.fork(3);
  Rng f2 = parent2.fork(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(f1.next_u64(), f2.next_u64());
}

TEST(Rng, ForksWithDifferentStreamsDiverge) {
  Rng parent(9);
  Rng a = parent.fork(1);
  Rng b = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, UniformStaysInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-5.0, 3.0);
    EXPECT_GE(u, -5.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(13);
  std::array<int, 7> counts{};
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 7, 450);  // ~4.5 sigma of a binomial
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  double sum = 0, sum_sq = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParameters) {
  Rng rng(15);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMean) {
  Rng rng(16);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.exponential(3.0);
    EXPECT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

class PoissonLambda : public ::testing::TestWithParam<double> {};

TEST_P(PoissonLambda, MeanMatchesLambda) {
  const double lambda = GetParam();
  Rng rng(17);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(lambda));
  EXPECT_NEAR(sum / n, lambda, std::max(0.05, 3.0 * std::sqrt(lambda / n) * 3));
}

INSTANTIATE_TEST_SUITE_P(SmallAndLarge, PoissonLambda,
                         ::testing::Values(0.1, 1.0, 5.0, 29.0, 100.0));

TEST(Rng, PoissonZeroLambda) {
  Rng rng(18);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.poisson(0.0), 0u);
}

TEST(Rng, ChanceProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(20);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ChoicePicksFromSpan) {
  Rng rng(21);
  const std::vector<int> items{4, 8, 15};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.choice(std::span<const int>(items)));
  }
  EXPECT_EQ(seen.size(), 3u);
}

}  // namespace
}  // namespace behaviot
