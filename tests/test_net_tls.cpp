#include "behaviot/net/tls.hpp"

#include <gtest/gtest.h>

namespace behaviot {
namespace {

TEST(TlsSni, RoundTrip) {
  const auto hello = make_tls_client_hello("mqtt.tplinkcloud.com");
  const auto sni = parse_tls_sni(hello);
  ASSERT_TRUE(sni.has_value());
  EXPECT_EQ(*sni, "mqtt.tplinkcloud.com");
}

class SniNames : public ::testing::TestWithParam<const char*> {};

TEST_P(SniNames, RoundTripsVariousLengths) {
  const std::string name = GetParam();
  const auto sni = parse_tls_sni(make_tls_client_hello(name));
  ASSERT_TRUE(sni.has_value());
  EXPECT_EQ(*sni, name);
}

INSTANTIATE_TEST_SUITE_P(
    Names, SniNames,
    ::testing::Values("a.b", "x.example.com",
                      "very-long-subdomain-label-for-testing.svc.cloud.example.org",
                      "d1a2b3.cloudfront.net"));

TEST(TlsSni, RejectsEmptyPayload) {
  EXPECT_FALSE(parse_tls_sni({}).has_value());
}

TEST(TlsSni, RejectsNonHandshakeRecord) {
  auto hello = make_tls_client_hello("a.com");
  hello[0] = 0x17;  // application data
  EXPECT_FALSE(parse_tls_sni(hello).has_value());
}

TEST(TlsSni, RejectsNonClientHello) {
  auto hello = make_tls_client_hello("a.com");
  hello[5] = 0x02;  // server hello
  EXPECT_FALSE(parse_tls_sni(hello).has_value());
}

TEST(TlsSni, RejectsTruncatedExtensions) {
  auto hello = make_tls_client_hello("api.example.com");
  hello.resize(hello.size() - 4);
  EXPECT_FALSE(parse_tls_sni(hello).has_value());
}

TEST(TlsSni, EncryptedLookingBytesAreIgnored) {
  std::vector<std::uint8_t> garbage(128);
  for (std::size_t i = 0; i < garbage.size(); ++i) {
    garbage[i] = static_cast<std::uint8_t>(i * 37 + 11);
  }
  EXPECT_FALSE(parse_tls_sni(garbage).has_value());
}

}  // namespace
}  // namespace behaviot
