#include "behaviot/net/ip.hpp"

#include <gtest/gtest.h>

#include <set>

namespace behaviot {
namespace {

TEST(Ipv4Addr, ConstructFromOctets) {
  const Ipv4Addr a(192, 168, 1, 10);
  EXPECT_EQ(a.value(), 0xc0a8010au);
  EXPECT_EQ(a.to_string(), "192.168.1.10");
}

TEST(Ipv4Addr, ParseValid) {
  const auto a = Ipv4Addr::parse("10.0.0.1");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "10.0.0.1");
  EXPECT_EQ(Ipv4Addr::parse("255.255.255.255")->value(), 0xffffffffu);
  EXPECT_EQ(Ipv4Addr::parse("0.0.0.0")->value(), 0u);
}

struct BadAddr {
  const char* text;
};
class ParseRejects : public ::testing::TestWithParam<BadAddr> {};

TEST_P(ParseRejects, MalformedInput) {
  EXPECT_FALSE(Ipv4Addr::parse(GetParam().text).has_value());
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, ParseRejects,
    ::testing::Values(BadAddr{""}, BadAddr{"1.2.3"}, BadAddr{"1.2.3.4.5"},
                      BadAddr{"256.1.1.1"}, BadAddr{"a.b.c.d"},
                      BadAddr{"1..2.3"}, BadAddr{"1.2.3.4x"},
                      BadAddr{" 1.2.3.4"}));

struct PrivateCase {
  const char* text;
  bool is_private;
};
class PrivateRanges : public ::testing::TestWithParam<PrivateCase> {};

TEST_P(PrivateRanges, Classification) {
  const auto a = Ipv4Addr::parse(GetParam().text);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->is_private(), GetParam().is_private) << GetParam().text;
}

INSTANTIATE_TEST_SUITE_P(
    Rfc1918AndFriends, PrivateRanges,
    ::testing::Values(PrivateCase{"10.1.2.3", true},
                      PrivateCase{"172.16.0.1", true},
                      PrivateCase{"172.31.255.255", true},
                      PrivateCase{"172.32.0.1", false},
                      PrivateCase{"172.15.0.1", false},
                      PrivateCase{"192.168.0.1", true},
                      PrivateCase{"192.169.0.1", false},
                      PrivateCase{"127.0.0.1", true},
                      PrivateCase{"169.254.10.10", true},
                      PrivateCase{"8.8.8.8", false},
                      PrivateCase{"54.12.34.56", false}));

TEST(FiveTuple, OrderingAndEquality) {
  const FiveTuple a{{Ipv4Addr(192, 168, 1, 2), 1000},
                    {Ipv4Addr(54, 1, 2, 3), 443},
                    Transport::kTcp};
  FiveTuple b = a;
  EXPECT_EQ(a, b);
  b.src.port = 1001;
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(FiveTupleHash, DisperesesDistinctTuples) {
  FiveTupleHash h;
  std::set<std::size_t> hashes;
  for (std::uint16_t port = 1000; port < 1200; ++port) {
    FiveTuple t{{Ipv4Addr(192, 168, 1, 2), port},
                {Ipv4Addr(54, 1, 2, 3), 443},
                Transport::kTcp};
    hashes.insert(h(t));
  }
  // No collisions expected over 200 sequential ports with FNV-1a.
  EXPECT_EQ(hashes.size(), 200u);
}

struct ProtoCase {
  Transport t;
  std::uint16_t port;
  AppProtocol expected;
};
class AppProtocolCases : public ::testing::TestWithParam<ProtoCase> {};

TEST_P(AppProtocolCases, Classification) {
  EXPECT_EQ(classify_app_protocol(GetParam().t, GetParam().port),
            GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    WellKnownPorts, AppProtocolCases,
    ::testing::Values(
        ProtoCase{Transport::kUdp, 53, AppProtocol::kDns},
        ProtoCase{Transport::kTcp, 53, AppProtocol::kDns},
        ProtoCase{Transport::kUdp, 123, AppProtocol::kNtp},
        ProtoCase{Transport::kTcp, 443, AppProtocol::kTls},
        ProtoCase{Transport::kTcp, 80, AppProtocol::kHttp},
        ProtoCase{Transport::kTcp, 8080, AppProtocol::kHttp},
        ProtoCase{Transport::kTcp, 8883, AppProtocol::kOtherTcp},
        ProtoCase{Transport::kUdp, 10101, AppProtocol::kOtherUdp}));

TEST(ToStringHelpers, Names) {
  EXPECT_STREQ(to_string(Transport::kTcp), "TCP");
  EXPECT_STREQ(to_string(Transport::kUdp), "UDP");
  EXPECT_STREQ(to_string(AppProtocol::kDns), "DNS");
  EXPECT_STREQ(to_string(AppProtocol::kNtp), "NTP");
  EXPECT_STREQ(to_string(AppProtocol::kTls), "TLS");
}

TEST(Endpoint, ToString) {
  const Endpoint e{Ipv4Addr(1, 2, 3, 4), 80};
  EXPECT_EQ(e.to_string(), "1.2.3.4:80");
}

}  // namespace
}  // namespace behaviot
