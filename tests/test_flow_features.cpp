#include "behaviot/flow/features.hpp"

#include <gtest/gtest.h>

namespace behaviot {
namespace {

FlowRecord flow_with(std::vector<PacketSummary> packets) {
  FlowRecord f;
  f.packets = std::move(packets);
  if (!f.packets.empty()) {
    f.start = f.packets.front().ts;
    f.end = f.packets.back().ts;
  }
  return f;
}

PacketSummary pkt(std::int64_t us, std::uint32_t size, Direction dir,
                  bool local = false) {
  return {Timestamp(us), size, dir, local};
}

TEST(Features, EmptyFlowIsAllZero) {
  const auto f = extract_features(flow_with({}));
  for (double v : f) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(Features, SizeStatistics) {
  const auto f = extract_features(flow_with({
      pkt(0, 100, Direction::kOutbound),
      pkt(1000, 200, Direction::kInbound),
      pkt(2000, 300, Direction::kOutbound),
  }));
  EXPECT_DOUBLE_EQ(f[kMeanBytes], 200.0);
  EXPECT_DOUBLE_EQ(f[kMinBytes], 100.0);
  EXPECT_DOUBLE_EQ(f[kMaxBytes], 300.0);
  EXPECT_DOUBLE_EQ(f[kMedAbsDev], 100.0);
  EXPECT_NEAR(f[kSkewLength], 0.0, 1e-12);
}

TEST(Features, TimingStatistics) {
  const auto f = extract_features(flow_with({
      pkt(0, 100, Direction::kOutbound),
      pkt(seconds(0.5), 100, Direction::kOutbound),
      pkt(seconds(1.5), 100, Direction::kOutbound),
  }));
  // Gaps: 0.5 s and 1.0 s.
  EXPECT_DOUBLE_EQ(f[kMeanTbp], 0.75);
  EXPECT_DOUBLE_EQ(f[kMedianTbp], 0.75);
  EXPECT_DOUBLE_EQ(f[kVarTbp], 0.0625);
}

TEST(Features, SinglePacketHasZeroTimingFeatures) {
  const auto f = extract_features(flow_with({pkt(0, 64, Direction::kOutbound)}));
  EXPECT_DOUBLE_EQ(f[kMeanTbp], 0.0);
  EXPECT_DOUBLE_EQ(f[kVarTbp], 0.0);
  EXPECT_DOUBLE_EQ(f[kMedianTbp], 0.0);
  EXPECT_DOUBLE_EQ(f[kMeanBytes], 64.0);
}

TEST(Features, DirectionalCountsExternal) {
  const auto f = extract_features(flow_with({
      pkt(0, 100, Direction::kOutbound),
      pkt(1, 150, Direction::kOutbound),
      pkt(2, 900, Direction::kInbound),
  }));
  EXPECT_DOUBLE_EQ(f[kNetworkOutExternal], 2.0);
  EXPECT_DOUBLE_EQ(f[kNetworkInExternal], 1.0);
  EXPECT_DOUBLE_EQ(f[kNetworkExternal], 3.0);
  EXPECT_DOUBLE_EQ(f[kNetworkLocal], 0.0);
  EXPECT_DOUBLE_EQ(f[kMeanBytesOutExternal], 125.0);
  EXPECT_DOUBLE_EQ(f[kMeanBytesInExternal], 900.0);
  EXPECT_DOUBLE_EQ(f[kMeanBytesOutLocal], 0.0);
}

TEST(Features, DirectionalCountsLocal) {
  const auto f = extract_features(flow_with({
      pkt(0, 80, Direction::kOutbound, /*local=*/true),
      pkt(1, 120, Direction::kInbound, /*local=*/true),
  }));
  EXPECT_DOUBLE_EQ(f[kNetworkLocal], 2.0);
  EXPECT_DOUBLE_EQ(f[kNetworkOutLocal], 1.0);
  EXPECT_DOUBLE_EQ(f[kNetworkInLocal], 1.0);
  EXPECT_DOUBLE_EQ(f[kNetworkExternal], 0.0);
  EXPECT_DOUBLE_EQ(f[kMeanBytesOutLocal], 80.0);
  EXPECT_DOUBLE_EQ(f[kMeanBytesInLocal], 120.0);
}

TEST(Features, ConstantSizesHaveZeroSpread) {
  const auto f = extract_features(flow_with({
      pkt(0, 100, Direction::kOutbound),
      pkt(10, 100, Direction::kOutbound),
      pkt(20, 100, Direction::kOutbound),
  }));
  EXPECT_DOUBLE_EQ(f[kMedAbsDev], 0.0);
  EXPECT_DOUBLE_EQ(f[kSkewLength], 0.0);
  EXPECT_DOUBLE_EQ(f[kKurtosisLength], 0.0);
}

TEST(Features, NamesAreTable8Spellings) {
  EXPECT_EQ(feature_name(kMeanBytes), "meanBytes");
  EXPECT_EQ(feature_name(kMedAbsDev), "medAbsDev");
  EXPECT_EQ(feature_name(kMeanTbp), "meanTBP");
  EXPECT_EQ(feature_name(kNetworkOutExternal), "network_out_external");
  EXPECT_EQ(feature_name(kMeanBytesInLocal), "meanBytes_in_local");
}

TEST(Features, VectorHasTwentyOneDimensions) {
  EXPECT_EQ(kNumFlowFeatures, 21u);
  // Every index has a distinct, non-empty name.
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kNumFlowFeatures; ++i) {
    names.insert(feature_name(i));
  }
  EXPECT_EQ(names.size(), kNumFlowFeatures);
}

}  // namespace
}  // namespace behaviot
