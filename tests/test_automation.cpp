#include "behaviot/testbed/automation.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "behaviot/testbed/catalog.hpp"

namespace behaviot::testbed {
namespace {

TEST(Automations, SixteenRoutinesDefined) {
  EXPECT_EQ(standard_automations().size(), 16u);
  for (const Automation& a : standard_automations()) {
    EXPECT_FALSE(a.id.empty());
    EXPECT_FALSE(a.actions.empty()) << a.id;
  }
}

TEST(Automations, ActionDevicesExistInCatalog) {
  const Catalog& catalog = Catalog::standard();
  for (const Automation& a : standard_automations()) {
    for (const AutomationAction& action : a.actions) {
      const DeviceInfo* dev = catalog.by_name(action.device);
      ASSERT_NE(dev, nullptr) << a.id << " -> " << action.device;
      EXPECT_NE(std::find(dev->commands.begin(), dev->commands.end(),
                          action.command),
                dev->commands.end())
          << a.id << " -> " << action.device << ":" << action.command;
    }
  }
}

TEST(FireAutomations, RingCameraMotionTurnsOnGosund) {
  // R8: if Ring Camera motion, then turn on Gosund Bulb.
  const auto scheduled =
      fire_automations("ring_camera", "motion", Timestamp(0));
  ASSERT_EQ(scheduled.size(), 1u);
  EXPECT_EQ(scheduled[0].device, "gosund_bulb");
  EXPECT_EQ(scheduled[0].command, "on");
  EXPECT_GT(scheduled[0].at, Timestamp(0));
}

TEST(FireAutomations, DelaysAccumulateAlongActionList) {
  // R12: Wyze motion → plug on (+1 s), clip (+2 s), plug off (+3 s).
  const auto scheduled =
      fire_automations("wyze_camera", "motion", Timestamp(0));
  ASSERT_EQ(scheduled.size(), 3u);
  EXPECT_EQ(scheduled[0].at, Timestamp(seconds(1.0)));
  EXPECT_EQ(scheduled[1].at, Timestamp(seconds(3.0)));
  EXPECT_EQ(scheduled[2].at, Timestamp(seconds(6.0)));
}

TEST(FireAutomations, MerossOpenCascadesToR15) {
  // Opening the garage (itself often an automation action) triggers R15.
  const auto scheduled =
      fire_automations("meross_dooropener", "open", Timestamp(0));
  ASSERT_EQ(scheduled.size(), 2u);
  EXPECT_EQ(scheduled[0].device, "tplink_bulb");
  EXPECT_EQ(scheduled[0].command, "on");
  EXPECT_EQ(scheduled[1].command, "color");
}

TEST(FireAutomations, VoiceTriggersAreDriverDispatched) {
  // Voice routines are selected by the dataset driver (an utterance is not
  // identifiable from traffic); fire_automations does not expand them.
  const auto scheduled = fire_automations("echo_spot", "voice", Timestamp(0));
  EXPECT_TRUE(scheduled.empty());
}

TEST(FireAutomations, NonTriggerEventsScheduleNothing) {
  EXPECT_TRUE(fire_automations("tplink_plug", "on", Timestamp(0)).empty());
  EXPECT_TRUE(fire_automations("nonexistent", "motion", Timestamp(0)).empty());
}

TEST(FireAutomations, DoorbellRingRunsR6Sequence) {
  const auto scheduled =
      fire_automations("ring_doorbell", "ring", Timestamp(0));
  ASSERT_EQ(scheduled.size(), 3u);
  EXPECT_EQ(scheduled[0].device, "wemo_plug");
  EXPECT_EQ(scheduled[0].command, "on");
  EXPECT_EQ(scheduled[1].device, "echo_spot");
  EXPECT_EQ(scheduled[2].device, "wemo_plug");
  EXPECT_EQ(scheduled[2].command, "off");
}

}  // namespace
}  // namespace behaviot::testbed
