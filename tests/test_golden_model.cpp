// Golden-model byte-identity regression test.
//
// The periodic-inference hot path carries aggressively restructured kernels
// (pair-sweep DBSCAN, fused/cache-blocked FFT schedule, interleaved ACF
// accumulation) whose contract is *bit-identical* models: every floating-point
// accumulation chain keeps the exact operation order of the straightforward
// formulation, so serialized models must match the reference byte for byte —
// across optimizations, thread counts, and compiler flag changes.
//
// tests/data/golden_periodic_models.txt was produced by the pre-optimization
// implementation on the deterministic golden dataset below. Any divergence
// means an optimization changed arithmetic, not just scheduling, and must be
// rejected (or the golden deliberately regenerated with a documented
// semantic change).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "behaviot/core/pipeline.hpp"
#include "behaviot/core/serialize.hpp"
#include "behaviot/runtime/runtime.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing golden file: " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

std::string train_and_serialize() {
  Pipeline pipeline;
  DomainResolver resolver;
  const auto idle = testbed::Datasets::idle(211, /*days=*/0.25);
  const auto activity = testbed::Datasets::activity(212, /*repetitions=*/2);
  const auto routine = testbed::Datasets::routine_week(213, /*days=*/0.5);
  const auto idle_flows = pipeline.to_flows(idle, resolver);
  const auto activity_flows = pipeline.to_flows(activity, resolver);
  const auto routine_flows = pipeline.to_flows(routine, resolver);
  const auto models = pipeline.train(idle_flows, 0.25 * 86400.0,
                                     activity_flows, routine_flows);
  std::ostringstream os;
  save_models(os, models);
  return os.str();
}

TEST(GoldenModel, TrainedModelsAreByteIdenticalToReference) {
  const std::string golden =
      read_file(std::string(BEHAVIOT_TEST_DATA_DIR) +
                "/golden_periodic_models.txt");
  ASSERT_FALSE(golden.empty());
  const std::string current = train_and_serialize();
  ASSERT_EQ(current.size(), golden.size())
      << "serialized model size diverged from the golden reference";
  // Byte compare; on mismatch report the first diverging offset rather than
  // dumping 40 KB of models.
  if (current != golden) {
    std::size_t at = 0;
    while (at < current.size() && current[at] == golden[at]) ++at;
    FAIL() << "models diverge from golden at byte " << at << " (of "
           << golden.size() << ")";
  }
}

TEST(GoldenModel, ByteIdentityHoldsAcrossThreadCounts) {
  // The parallel inference path must assemble the same bytes at any worker
  // count; runs a second configuration to catch scheduling-dependent
  // arithmetic that the single-configuration test above would miss.
  const std::string golden =
      read_file(std::string(BEHAVIOT_TEST_DATA_DIR) +
                "/golden_periodic_models.txt");
  const std::size_t restore = runtime::global_threads();
  runtime::set_global_threads(3);
  const std::string with_three = train_and_serialize();
  runtime::set_global_threads(restore);
  EXPECT_EQ(with_three, golden);
}

}  // namespace
}  // namespace behaviot
