#include "behaviot/ml/decision_tree.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace behaviot {
namespace {

std::vector<std::size_t> all_indices(std::size_t n) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

TEST(DecisionTree, UntrainedReturnsZeros) {
  const DecisionTree tree;
  EXPECT_FALSE(tree.trained());
  const std::vector<double> row{1.0};
  EXPECT_TRUE(tree.predict_proba(row).empty());
}

TEST(DecisionTree, FitsLinearlySeparableData) {
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  for (int i = 0; i < 20; ++i) {
    X.push_back({static_cast<double>(i)});
    y.push_back(i < 10 ? 0 : 1);
  }
  Rng rng(1);
  DecisionTree tree;
  tree.fit(X, y, all_indices(X.size()), 2, rng);
  EXPECT_TRUE(tree.trained());
  EXPECT_EQ(tree.predict(std::vector<double>{3.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{15.0}), 1);
  // Threshold lies between 9 and 10.
  EXPECT_EQ(tree.predict(std::vector<double>{9.4}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{9.6}), 1);
}

TEST(DecisionTree, SolvesXorWithDepth) {
  std::vector<std::vector<double>> X{{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  std::vector<int> y{0, 1, 1, 0};
  // Replicate so min_samples constraints are satisfied.
  std::vector<std::vector<double>> Xr;
  std::vector<int> yr;
  for (int r = 0; r < 5; ++r) {
    for (std::size_t i = 0; i < X.size(); ++i) {
      Xr.push_back(X[i]);
      yr.push_back(y[i]);
    }
  }
  Rng rng(2);
  DecisionTree tree;
  tree.fit(Xr, yr, all_indices(Xr.size()), 2, rng);
  EXPECT_EQ(tree.predict(std::vector<double>{0.0, 0.0}), 0);
  EXPECT_EQ(tree.predict(std::vector<double>{0.0, 1.0}), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0, 0.0}), 1);
  EXPECT_EQ(tree.predict(std::vector<double>{1.0, 1.0}), 0);
}

TEST(DecisionTree, PureDataYieldsSingleLeaf) {
  std::vector<std::vector<double>> X{{1}, {2}, {3}};
  std::vector<int> y{1, 1, 1};
  Rng rng(3);
  DecisionTree tree;
  tree.fit(X, y, all_indices(3), 2, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  const auto proba = tree.predict_proba(std::vector<double>{2.0});
  EXPECT_DOUBLE_EQ(proba[1], 1.0);
}

TEST(DecisionTree, MaxDepthZeroForcesLeaf) {
  std::vector<std::vector<double>> X{{0}, {1}, {2}, {3}};
  std::vector<int> y{0, 0, 1, 1};
  Rng rng(4);
  DecisionTree tree({.max_depth = 0});
  tree.fit(X, y, all_indices(4), 2, rng);
  EXPECT_EQ(tree.node_count(), 1u);
  const auto proba = tree.predict_proba(std::vector<double>{0.0});
  EXPECT_DOUBLE_EQ(proba[0], 0.5);
}

TEST(DecisionTree, ProbabilitiesSumToOne) {
  std::vector<std::vector<double>> X;
  std::vector<int> y;
  Rng data_rng(5);
  for (int i = 0; i < 60; ++i) {
    X.push_back({data_rng.uniform(0, 1), data_rng.uniform(0, 1)});
    y.push_back(static_cast<int>(data_rng.uniform_index(3)));
  }
  Rng rng(6);
  DecisionTree tree({.max_depth = 4});
  tree.fit(X, y, all_indices(X.size()), 3, rng);
  for (int i = 0; i < 10; ++i) {
    const std::vector<double> row{data_rng.uniform(0, 1),
                                  data_rng.uniform(0, 1)};
    const auto proba = tree.predict_proba(row);
    double sum = 0;
    for (double p : proba) sum += p;
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(DecisionTree, MinSamplesLeafIsRespected) {
  std::vector<std::vector<double>> X{{0}, {1}, {2}, {3}, {4}};
  std::vector<int> y{0, 0, 0, 0, 1};
  Rng rng(7);
  // A leaf of one sample would be required to isolate the last point.
  DecisionTree tree({.min_samples_leaf = 2});
  tree.fit(X, y, all_indices(5), 2, rng);
  // The split at 3.5 is forbidden; the best allowed split (or a leaf) keeps
  // at least 2 samples per side.
  EXPECT_TRUE(tree.trained());
}

TEST(DecisionTree, TrainsOnSubsetOnly) {
  std::vector<std::vector<double>> X{{0}, {1}, {100}, {101}};
  std::vector<int> y{0, 0, 1, 1};
  const std::vector<std::size_t> subset{0, 1};  // only class 0
  Rng rng(8);
  DecisionTree tree;
  tree.fit(X, y, subset, 2, rng);
  // Trained exclusively on class 0, so everything predicts 0.
  EXPECT_EQ(tree.predict(std::vector<double>{100.0}), 0);
}

TEST(DecisionTree, DuplicateFeatureValuesDoNotSplit) {
  std::vector<std::vector<double>> X{{5}, {5}, {5}, {5}};
  std::vector<int> y{0, 1, 0, 1};
  Rng rng(9);
  DecisionTree tree;
  tree.fit(X, y, all_indices(4), 2, rng);
  EXPECT_EQ(tree.node_count(), 1u);  // no boundary exists
}

}  // namespace
}  // namespace behaviot
