#include "behaviot/periodic/retrain.hpp"

#include <gtest/gtest.h>

namespace behaviot {
namespace {

PeriodicModel model(DeviceId device, const std::string& domain,
                    double period, std::size_t support = 100) {
  PeriodicModel m;
  m.device = device;
  m.domain = domain;
  m.group = domain + "|TLS";
  m.app = AppProtocol::kTls;
  m.period_seconds = period;
  m.tolerance_seconds = std::max(1.0, 0.02 * period);
  m.support = support;
  return m;
}

TEST(Retrain, UnchangedModelsAreKept) {
  const auto deployed = PeriodicModelSet::from_models(
      {model(1, "hb.a.com", 600.0), model(2, "hb.b.com", 1800.0)});
  const auto fresh = PeriodicModelSet::from_models(
      {model(1, "hb.a.com", 600.0), model(2, "hb.b.com", 1800.0)});
  RetrainSummary summary;
  const auto merged = merge_periodic_models(deployed, fresh, summary);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_EQ(summary.kept, 2u);
  EXPECT_EQ(summary.drifted, 0u);
  EXPECT_EQ(summary.added, 0u);
}

TEST(Retrain, SmallChangesCountAsUpdates) {
  const auto deployed =
      PeriodicModelSet::from_models({model(1, "hb.a.com", 600.0)});
  const auto fresh =
      PeriodicModelSet::from_models({model(1, "hb.a.com", 610.0)});
  RetrainSummary summary;
  const auto merged = merge_periodic_models(deployed, fresh, summary);
  EXPECT_EQ(summary.updated, 1u);
  EXPECT_EQ(summary.drifted, 0u);
  // Fresh parameters win.
  EXPECT_DOUBLE_EQ(merged.find(1, "hb.a.com|TLS")->period_seconds, 610.0);
}

TEST(Retrain, LargeChangesAreDriftWithNotes) {
  const auto deployed =
      PeriodicModelSet::from_models({model(1, "hb.a.com", 600.0)});
  const auto fresh =
      PeriodicModelSet::from_models({model(1, "hb.a.com", 1200.0)});
  RetrainSummary summary;
  const auto merged = merge_periodic_models(deployed, fresh, summary);
  EXPECT_EQ(summary.drifted, 1u);
  ASSERT_EQ(summary.drift_notes.size(), 1u);
  EXPECT_NE(summary.drift_notes[0].find("600"), std::string::npos);
  EXPECT_NE(summary.drift_notes[0].find("1200"), std::string::npos);
  EXPECT_DOUBLE_EQ(merged.find(1, "hb.a.com|TLS")->period_seconds, 1200.0);
}

TEST(Retrain, NewGroupsAreAdded) {
  const auto deployed =
      PeriodicModelSet::from_models({model(1, "hb.a.com", 600.0)});
  const auto fresh = PeriodicModelSet::from_models(
      {model(1, "hb.a.com", 600.0), model(1, "telemetry.a.com", 3600.0)});
  RetrainSummary summary;
  const auto merged = merge_periodic_models(deployed, fresh, summary);
  EXPECT_EQ(summary.added, 1u);
  EXPECT_EQ(merged.size(), 2u);
  EXPECT_NE(merged.find(1, "telemetry.a.com|TLS"), nullptr);
}

TEST(Retrain, AbsentGroupsAreRetainedThenDropped) {
  auto deployed = PeriodicModelSet::from_models(
      {model(1, "hb.a.com", 600.0, /*support=*/100)});
  const auto fresh = PeriodicModelSet::from_models({});

  // Merge repeatedly with empty fresh sets: support decays until dropped.
  RetrainSummary summary;
  std::size_t generations = 0;
  while (true) {
    const auto merged = merge_periodic_models(deployed, fresh, summary);
    if (summary.dropped == 1) break;
    ASSERT_EQ(summary.retained, 1u);
    deployed = merged;
    ASSERT_LT(++generations, 32u) << "absence decay must terminate";
  }
  EXPECT_GE(generations, 2u);  // survives at least a couple of quiet windows
}

TEST(Retrain, SupportOneModelSurvivesQuietWindows) {
  // Regression fix: absence used to be tracked by halving support, so a
  // support-1 model (a real but rarely-seen group) hit zero and was dropped on
  // its very first quiet window — before the retention floor could apply.
  auto deployed = PeriodicModelSet::from_models(
      {model(1, "rare.a.com", 3600.0, /*support=*/1)});
  const auto fresh = PeriodicModelSet::from_models({});
  RetrainSummary summary;
  const auto merged = merge_periodic_models(deployed, fresh, summary);
  EXPECT_EQ(summary.retained, 1u);
  EXPECT_EQ(summary.dropped, 0u);
  const auto* kept = merged.find(1, "rare.a.com|TLS");
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->support, 1u);  // absence is not evidence against support
  EXPECT_EQ(kept->absent_generations, 1u);
}

TEST(Retrain, AbsenceDoesNotDecaySupport) {
  auto deployed = PeriodicModelSet::from_models(
      {model(1, "hb.a.com", 600.0, /*support=*/100)});
  const auto fresh = PeriodicModelSet::from_models({});
  RetrainSummary summary;
  auto merged = merge_periodic_models(deployed, fresh, summary);
  merged = merge_periodic_models(merged, fresh, summary);
  const auto* kept = merged.find(1, "hb.a.com|TLS");
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->support, 100u);  // pre-fix: halved to 25 by now
  EXPECT_EQ(kept->absent_generations, 2u);
}

TEST(Retrain, ReappearanceResetsAbsence) {
  const auto deployed = PeriodicModelSet::from_models(
      {model(1, "hb.a.com", 600.0, /*support=*/50)});
  const auto fresh = PeriodicModelSet::from_models({});
  RetrainSummary summary;
  auto merged = merge_periodic_models(deployed, fresh, summary);
  ASSERT_EQ(merged.find(1, "hb.a.com|TLS")->absent_generations, 1u);
  // The group reappears: the fresh model (absence zero) replaces the
  // retained one, so a later quiet spell starts its count from scratch.
  const auto back =
      PeriodicModelSet::from_models({model(1, "hb.a.com", 600.0, 60)});
  merged = merge_periodic_models(merged, back, summary);
  const auto* kept = merged.find(1, "hb.a.com|TLS");
  ASSERT_NE(kept, nullptr);
  EXPECT_EQ(kept->absent_generations, 0u);
  EXPECT_EQ(kept->support, 60u);
}

TEST(Retrain, RetentionWindowIsExactGenerations) {
  RetrainOptions options;
  options.retain_generations = 2;
  auto deployed = PeriodicModelSet::from_models(
      {model(1, "hb.a.com", 600.0, /*support=*/100)});
  const auto fresh = PeriodicModelSet::from_models({});
  RetrainSummary summary;
  // Quiet merges 1 and 2: retained. Merge 3: dropped.
  deployed = merge_periodic_models(deployed, fresh, summary, options);
  EXPECT_EQ(summary.retained, 1u);
  deployed = merge_periodic_models(deployed, fresh, summary, options);
  EXPECT_EQ(summary.retained, 1u);
  deployed = merge_periodic_models(deployed, fresh, summary, options);
  EXPECT_EQ(summary.dropped, 1u);
  EXPECT_EQ(deployed.size(), 0u);
}

TEST(Retrain, MixedScenario) {
  const auto deployed = PeriodicModelSet::from_models({
      model(1, "hb.a.com", 600.0),       // unchanged
      model(1, "sync.a.com", 3600.0),    // drifts
      model(2, "hb.b.com", 236.0, 2),    // disappears (low support)
  });
  const auto fresh = PeriodicModelSet::from_models({
      model(1, "hb.a.com", 600.0),
      model(1, "sync.a.com", 7200.0),
      model(3, "hb.c.com", 1800.0),  // new device appears
  });
  RetrainSummary summary;
  const auto merged = merge_periodic_models(deployed, fresh, summary);
  EXPECT_EQ(summary.kept, 1u);
  EXPECT_EQ(summary.drifted, 1u);
  EXPECT_EQ(summary.added, 1u);
  EXPECT_EQ(summary.retained + summary.dropped, 1u);
  EXPECT_NE(merged.find(3, "hb.c.com|TLS"), nullptr);
}

}  // namespace
}  // namespace behaviot
