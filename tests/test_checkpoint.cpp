// Crash-safety tests for the `.bbc` watch-checkpoint format and the
// kill/resume invariant: a daemon killed with SIGKILL at any checkpoint
// instant and resumed from the written checkpoint must produce an alert
// stream byte-identical to the uninterrupted run — at any thread count and
// any ingest chunking. The format half of the suite hammers the image
// itself: truncations at every section boundary, bit flips, missing and
// unknown sections, rotation fallback.
#include "behaviot/core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "behaviot/analysis/alert_report.hpp"
#include "behaviot/core/binary_io.hpp"
#include "behaviot/core/model_handle.hpp"
#include "behaviot/core/serialize.hpp"
#include "behaviot/core/serialize_binary.hpp"
#include "behaviot/core/watch_engine.hpp"
#include "behaviot/flow/assembler.hpp"
#include "behaviot/obs/health.hpp"
#include "behaviot/runtime/runtime.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {
namespace {

constexpr std::int64_t kWindowUs = 30 * 60 * 1'000'000LL;

const binio::ImageFormat kBbcFormat{kCheckpointMagic, kCheckpointFormatVersion,
                                    "bbc", "watch checkpoint"};

/// Shared fixture, built once per binary (heavy: trains real periodic
/// models from generated idle traffic; mirrors test_watch so alerts exist).
struct CheckpointFixture {
  BehaviorModelSet models;
  std::vector<Packet> eval_packets;
};

const CheckpointFixture& fixture() {
  static const CheckpointFixture* fx = [] {
    auto* f = new CheckpointFixture;
    const auto train = testbed::Datasets::idle(/*seed=*/11, /*days=*/0.5);
    DomainResolver train_resolver;
    const auto train_flows =
        FlowAssembler().assemble(train.packets, train_resolver);
    f->models.periodic = PeriodicModelSet::infer(train_flows, 0.5 * 86400.0);
    f->eval_packets =
        testbed::Datasets::routine_week(/*seed=*/23, /*days=*/0.25).packets;
    return f;
  }();
  return *fx;
}

WatchOptions watch_options() {
  WatchOptions opts;
  opts.window_us = kWindowUs;
  opts.retrain_every_windows = 4;
  return opts;
}

WatchCheckpoint make_checkpoint(const WatchEngine& engine,
                                const ModelHandle& handle,
                                const WatchOptions& opts,
                                std::uint64_t input_offset,
                                std::span<const DeviationAlert> alerts) {
  WatchCheckpoint cp;
  cp.options.window_us = opts.window_us;
  cp.options.retrain_every_windows = opts.retrain_every_windows;
  cp.options.burst_gap_us = opts.assembler.base.burst_gap_us;
  cp.options.drop_infrastructure = opts.assembler.base.drop_infrastructure;
  cp.options.max_ts_regression_us = opts.assembler.base.max_ts_regression_us;
  cp.options.reorder_horizon_us = opts.assembler.reorder_horizon_us;
  cp.options.max_open_flows = opts.assembler.max_open_flows;
  cp.options.max_buffered_packets = opts.assembler.max_buffered_packets;
  cp.engine = engine.export_state();
  cp.models_image = save_models_binary(*handle.acquire());
  cp.model_version = handle.version();
  cp.input_offset = input_offset;
  cp.alerts_json = alerts_to_json(alerts);
  obs::ComponentHealth synthetic;
  synthetic.component = "watch.test";
  synthetic.state = obs::ComponentState::kDegraded;
  synthetic.reasons = {"synthetic incident for round-trip coverage"};
  synthetic.incidents = 3;
  cp.health.components = {synthetic};
  return cp;
}

/// One serialized checkpoint from the reference run, with the number of
/// packets that were inside engine state when it was taken (the engine-level
/// stand-in for the CLI's pcap byte offset).
struct TakenCheckpoint {
  std::string bytes;
  std::size_t fed = 0;
};

struct ReferenceRun {
  std::vector<DeviationAlert> alerts;
  std::vector<TakenCheckpoint> checkpoints;
};

/// The uninterrupted run: ingest in `chunk`-sized pieces and serialize a
/// full checkpoint at every window sink — exactly where the CLI writes its
/// rotating file. The fed-packet count is captured before each ingest()
/// because the sink fires inside it, with the whole chunk in engine state.
ReferenceRun run_checkpointed(const BehaviorModelSet& models,
                              const std::vector<Packet>& packets,
                              const WatchOptions& opts, std::size_t chunk) {
  ModelHandle handle(models);
  WatchEngine engine(handle, DomainResolver{}, opts);
  ReferenceRun run;
  std::size_t fed = 0;
  engine.set_window_sink([&](const WatchWindowReport& r) {
    run.alerts.insert(run.alerts.end(), r.alerts.begin(), r.alerts.end());
    const WatchCheckpoint cp =
        make_checkpoint(engine, handle, opts, fed, run.alerts);
    run.checkpoints.push_back({save_checkpoint(cp), fed});
  });
  const std::span<const Packet> all(packets);
  for (std::size_t i = 0; i < all.size() && !engine.done(); i += chunk) {
    const auto part = all.subspan(i, std::min(chunk, all.size() - i));
    fed = i + part.size();
    engine.ingest(part);
  }
  engine.finish();
  return run;
}

struct ResumeResult {
  std::vector<DeviationAlert> alerts;  ///< emitted after the resume point
  std::size_t alerts_before = 0;       ///< checkpointed alert count
};

/// The kill -9 + resume side: everything the fresh process has is the .bbc
/// image and the capture tail. Models come from the embedded image, the
/// engine from import_state(), and the remaining packets replay from the
/// checkpointed position.
ResumeResult resume_and_finish(const std::string& bbc,
                               const std::vector<Packet>& packets,
                               std::size_t chunk) {
  WatchCheckpoint cp = load_checkpoint(binio::as_bytes(bbc));
  ModelHandle handle{BehaviorModelSet{}};
  handle.restore(load_models_binary(binio::as_bytes(cp.models_image)),
                 cp.model_version);
  WatchOptions opts;
  opts.window_us = cp.options.window_us;
  opts.retrain_every_windows =
      static_cast<std::size_t>(cp.options.retrain_every_windows);
  opts.assembler.base.burst_gap_us = cp.options.burst_gap_us;
  opts.assembler.base.drop_infrastructure = cp.options.drop_infrastructure;
  opts.assembler.base.max_ts_regression_us = cp.options.max_ts_regression_us;
  opts.assembler.reorder_horizon_us = cp.options.reorder_horizon_us;
  opts.assembler.max_open_flows =
      static_cast<std::size_t>(cp.options.max_open_flows);
  opts.assembler.max_buffered_packets =
      static_cast<std::size_t>(cp.options.max_buffered_packets);
  WatchEngine engine(handle, DomainResolver{}, opts);
  ResumeResult result;
  result.alerts_before = cp.engine.alerts;
  engine.import_state(std::move(cp.engine));
  engine.set_window_sink([&](const WatchWindowReport& r) {
    result.alerts.insert(result.alerts.end(), r.alerts.begin(),
                         r.alerts.end());
  });
  const std::span<const Packet> rest =
      std::span<const Packet>(packets).subspan(
          static_cast<std::size_t>(cp.input_offset));
  for (std::size_t i = 0; i < rest.size() && !engine.done(); i += chunk) {
    engine.ingest(rest.subspan(i, std::min(chunk, rest.size() - i)));
  }
  engine.finish();
  return result;
}

void expect_same_alerts(std::span<const DeviationAlert> a,
                        std::span<const DeviationAlert> b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].source, b[i].source) << i;
    EXPECT_EQ(a[i].when, b[i].when) << i;
    EXPECT_EQ(a[i].device, b[i].device) << i;
    EXPECT_EQ(a[i].score, b[i].score) << i;  // byte-identical, not near
    EXPECT_EQ(a[i].threshold, b[i].threshold) << i;
    EXPECT_EQ(a[i].context, b[i].context) << i;
  }
}

/// One full checkpoint the format tests dissect (taken mid-run, after a
/// retrain swap, so every section carries real content).
const std::string& reference_image() {
  static const std::string* image = [] {
    const auto& fx = fixture();
    const auto run = run_checkpointed(fx.models, fx.eval_packets,
                                      watch_options(), 1024);
    EXPECT_GE(run.checkpoints.size(), 6u);
    return new std::string(
        run.checkpoints[run.checkpoints.size() / 2].bytes);
  }();
  return *image;
}

// ---------------------------------------------------------------------------
// The tentpole invariant: kill at any checkpoint instant, resume, and the
// alert stream continues byte-identically — at 1 and 8 threads, under two
// unrelated chunkings, across every kill point.

TEST(CheckpointKillMatrix, ResumeMatchesUninterruptedRunAtEveryKillPoint) {
  const auto& fx = fixture();
  const std::size_t before = runtime::global_threads();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    runtime::set_global_threads(threads);
    for (const std::size_t chunk : {std::size_t{311}, std::size_t{1024}}) {
      const auto base =
          run_checkpointed(fx.models, fx.eval_packets, watch_options(), chunk);
      ASSERT_GE(base.checkpoints.size(), 8u);
      ASSERT_FALSE(base.alerts.empty());
      for (std::size_t k = 0; k < base.checkpoints.size(); ++k) {
        const auto resumed =
            resume_and_finish(base.checkpoints[k].bytes, fx.eval_packets,
                              chunk);
        ASSERT_LE(resumed.alerts_before, base.alerts.size())
            << "kill point " << k;
        SCOPED_TRACE(::testing::Message()
                     << "threads " << threads << " chunk " << chunk
                     << " kill point " << k);
        expect_same_alerts(resumed.alerts,
                           std::span<const DeviationAlert>(base.alerts)
                               .subspan(resumed.alerts_before));
      }
    }
  }
  runtime::set_global_threads(before);
}

TEST(CheckpointKillMatrix, ResumeChunkingIsIrrelevant) {
  // The resumed process need not replay with the chunking the dead one
  // used: boundaries carry no meaning, so a 1024-chunk run resumed with
  // 311-packet chunks (and vice versa) still continues byte-identically.
  const auto& fx = fixture();
  const auto base =
      run_checkpointed(fx.models, fx.eval_packets, watch_options(), 1024);
  ASSERT_GE(base.checkpoints.size(), 4u);
  const auto& mid = base.checkpoints[base.checkpoints.size() / 2];
  const auto resumed = resume_and_finish(mid.bytes, fx.eval_packets, 311);
  expect_same_alerts(resumed.alerts,
                     std::span<const DeviationAlert>(base.alerts)
                         .subspan(resumed.alerts_before));
}

// ---------------------------------------------------------------------------
// Format round-trip and damage handling.

TEST(CheckpointFormat, SaveLoadSaveIsByteIdentical) {
  const std::string& image = reference_image();
  const WatchCheckpoint cp = load_checkpoint(binio::as_bytes(image));
  EXPECT_EQ(save_checkpoint(cp), image);
  // Spot-check the restored content is real, not default.
  EXPECT_GT(cp.engine.windows, 0u);
  EXPECT_EQ(cp.options.window_us, kWindowUs);
  EXPECT_EQ(cp.options.retrain_every_windows, 4u);
  EXPECT_FALSE(cp.models_image.empty());
  EXPECT_FALSE(cp.engine.monitor.last_seen.empty());
  EXPECT_FALSE(cp.health.components.empty());
  EXPECT_EQ(cp.health.components.front().component, "watch.test");
  const BehaviorModelSet models =
      load_models_binary(binio::as_bytes(cp.models_image));
  EXPECT_GT(models.periodic.size(), 0u);
}

TEST(CheckpointFormat, TruncationAtEveryBoundaryThrowsInBothPolicies) {
  const std::string& image = reference_image();
  const auto layout = binio::parse_layout(binio::as_bytes(image), kBbcFormat);
  std::vector<std::size_t> cuts = {0, 1, binio::kHeaderSize - 1,
                                   binio::kHeaderSize};
  for (const auto& s : layout.sections) {
    cuts.push_back(s.offset - 1);
    cuts.push_back(s.offset);
    cuts.push_back(s.offset + s.size / 2);
    cuts.push_back(s.offset + s.size - 1);
    cuts.push_back(s.offset + s.size);
  }
  cuts.push_back(layout.payload_end);
  cuts.push_back(image.size() - 1);
  for (const std::size_t cut : cuts) {
    ASSERT_LT(cut, image.size());
    const auto prefix = binio::as_bytes(image).first(cut);
    // A truncated image is structural damage — no policy may salvage it,
    // and none may crash or allocate unboundedly on it.
    EXPECT_THROW((void)load_checkpoint(prefix, ParsePolicy::kStrict),
                 SerializationError)
        << "cut at " << cut;
    EXPECT_THROW((void)load_checkpoint(prefix, ParsePolicy::kLenient),
                 SerializationError)
        << "cut at " << cut;
  }
}

TEST(CheckpointFormat, BitFlipsNeverPassTheStrictLoad) {
  const std::string& image = reference_image();
  for (std::size_t at = 4; at < image.size(); at += 101) {
    std::string damaged = image;
    damaged[at] = static_cast<char>(damaged[at] ^ 0x5a);
    EXPECT_THROW(
        (void)load_checkpoint(binio::as_bytes(damaged), ParsePolicy::kStrict),
        SerializationError)
        << "flip at " << at;
  }
}

/// Slices the reference image back into (id, payload) pairs so individual
/// sections can be dropped, damaged, or augmented and the image rebuilt
/// with a consistent table and CRC.
std::vector<std::pair<std::uint32_t, std::string>> reference_sections() {
  const std::string& image = reference_image();
  const auto layout = binio::parse_layout(binio::as_bytes(image), kBbcFormat);
  std::vector<std::pair<std::uint32_t, std::string>> sections;
  for (const auto& s : layout.sections) {
    sections.emplace_back(s.id, image.substr(s.offset, s.size));
  }
  return sections;
}

TEST(CheckpointFormat, UnknownSectionsAreSkippedForForwardCompat) {
  auto sections = reference_sections();
  sections.emplace_back(99u, std::string("payload from a future version"));
  const std::string extended = binio::build_image(kBbcFormat, sections);
  const WatchCheckpoint cp = load_checkpoint(binio::as_bytes(extended));
  // Everything the loader understands round-trips untouched.
  EXPECT_EQ(save_checkpoint(cp), reference_image());
}

TEST(CheckpointFormat, MissingRequiredSectionThrowsByName) {
  for (const std::uint32_t drop :
       {kCkptSectionEngine, kCkptSectionAssembler, kCkptSectionMonitor,
        kCkptSectionResolver, kCkptSectionModels, kCkptSectionFrontend,
        kCkptSectionRetrain}) {
    auto sections = reference_sections();
    std::erase_if(sections, [&](const auto& s) { return s.first == drop; });
    const std::string gutted = binio::build_image(kBbcFormat, sections);
    for (const auto policy : {ParsePolicy::kStrict, ParsePolicy::kLenient}) {
      try {
        (void)load_checkpoint(binio::as_bytes(gutted), policy);
        FAIL() << "section " << drop << " missing but load succeeded";
      } catch (const SerializationError& e) {
        EXPECT_NE(std::string(e.what()).find("missing required section"),
                  std::string::npos)
            << e.what();
      }
    }
  }
}

TEST(CheckpointFormat, DamagedHealthSectionIsDroppedOnlyLeniently) {
  // Chop bytes off the (optional) health payload and rebuild, so the CRC is
  // valid and only that one section is internally broken: a resume cannot
  // be blocked by damaged telemetry, but strict parsing must still object.
  auto sections = reference_sections();
  bool found = false;
  for (auto& [id, payload] : sections) {
    if (id == kCkptSectionHealth) {
      ASSERT_GE(payload.size(), 4u);
      payload.resize(payload.size() - 3);
      found = true;
    }
  }
  ASSERT_TRUE(found);
  const std::string damaged = binio::build_image(kBbcFormat, sections);
  EXPECT_THROW(
      (void)load_checkpoint(binio::as_bytes(damaged), ParsePolicy::kStrict),
      SerializationError);
  ParseStats stats;
  const WatchCheckpoint cp =
      load_checkpoint(binio::as_bytes(damaged), ParsePolicy::kLenient, &stats);
  EXPECT_EQ(stats.sections_dropped, 1u);
  EXPECT_TRUE(cp.health.components.empty());
  EXPECT_GT(cp.engine.windows, 0u);  // the rest loaded intact
}

// ---------------------------------------------------------------------------
// Rotation and the resilient read side.

TEST(CheckpointRotation, KeepsOneIntactGenerationThroughDamage) {
  const auto dir = std::filesystem::path(::testing::TempDir()) /
                   "behaviot_checkpoint_rotation";
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "state.bbc").string();
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".prev");

  const std::string& image = reference_image();
  WatchCheckpoint first = load_checkpoint(binio::as_bytes(image));
  WatchCheckpoint second = load_checkpoint(binio::as_bytes(image));
  second.input_offset = first.input_offset + 12345;

  std::string error;
  ASSERT_TRUE(write_checkpoint_rotating(path, first, &error)) << error;
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path + ".prev"));
  ASSERT_TRUE(write_checkpoint_rotating(path, second, &error)) << error;
  EXPECT_TRUE(std::filesystem::exists(path + ".prev"));

  // Healthy: the newest generation wins.
  std::string source;
  WatchCheckpoint loaded = load_checkpoint_resilient(path, &source);
  EXPECT_EQ(source, path);
  EXPECT_EQ(loaded.input_offset, second.input_offset);

  // FILE torn mid-write (truncated): fall back to FILE.prev.
  {
    std::ofstream torn(path, std::ios::binary | std::ios::trunc);
    torn.write(image.data(), 100);
  }
  loaded = load_checkpoint_resilient(path, &source);
  EXPECT_EQ(source, path + ".prev");
  EXPECT_EQ(loaded.input_offset, first.input_offset);

  // FILE gone entirely (killed between rename and write): same fallback.
  std::filesystem::remove(path);
  loaded = load_checkpoint_resilient(path, &source);
  EXPECT_EQ(source, path + ".prev");
  EXPECT_EQ(loaded.input_offset, first.input_offset);

  // Neither generation usable: the primary failure is reported.
  std::filesystem::remove(path + ".prev");
  EXPECT_THROW((void)load_checkpoint_resilient(path), SerializationError);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Cross-version compatibility: a checkpoint written by the version that
// introduced the format must keep loading (the CI compat job runs this
// standalone against the checked-in golden file).

TEST(CheckpointGolden, CheckedInCheckpointStillLoads) {
  const std::string path =
      std::string(BEHAVIOT_TEST_DATA_DIR) + "/golden_checkpoint.bbc";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden checkpoint: " << path;
  const std::string image((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ASSERT_FALSE(image.empty());
  const WatchCheckpoint cp = load_checkpoint(binio::as_bytes(image));
  EXPECT_GT(cp.engine.windows, 0u);
  EXPECT_GT(cp.input_offset, 0u);
  EXPECT_FALSE(cp.models_image.empty());
  const BehaviorModelSet models =
      load_models_binary(binio::as_bytes(cp.models_image));
  EXPECT_GT(models.periodic.size(), 0u);
  // The byte-identity contract extends to re-serialization: writing the
  // loaded golden back out reproduces it exactly.
  EXPECT_EQ(save_checkpoint(cp), image);
}

}  // namespace
}  // namespace behaviot
