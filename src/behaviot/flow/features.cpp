#include "behaviot/flow/features.hpp"

#include <atomic>
#include <cmath>

#include "behaviot/net/stats.hpp"

namespace behaviot {

namespace {
std::atomic<FeatureChaosHook> g_feature_chaos{nullptr};
}  // namespace

void set_feature_chaos_hook(FeatureChaosHook hook) {
  g_feature_chaos.store(hook, std::memory_order_release);
}

FeatureChaosHook feature_chaos_hook() {
  return g_feature_chaos.load(std::memory_order_acquire);
}

std::string_view feature_name(std::size_t index) {
  static constexpr std::string_view kNames[kNumFlowFeatures] = {
      "meanBytes",
      "minBytes",
      "maxBytes",
      "medAbsDev",
      "skewLength",
      "kurtosisLength",
      "meanTBP",
      "varTBP",
      "medianTBP",
      "kurtosisTBP",
      "skewTBP",
      "network_out_external",
      "network_in_external",
      "network_external",
      "network_local",
      "network_out_local",
      "network_in_local",
      "meanBytes_out_external",
      "meanBytes_in_external",
      "meanBytes_out_local",
      "meanBytes_in_local",
  };
  return kNames[index];
}

std::size_t sanitize_features(std::span<double> row) {
  std::size_t replaced = 0;
  for (double& v : row) {
    if (std::isnan(v)) {
      v = 0.0;
      ++replaced;
    } else if (std::isinf(v)) {
      v = v > 0 ? 1e12 : -1e12;
      ++replaced;
    }
  }
  return replaced;
}

FeatureVector extract_features(const FlowRecord& flow) {
  FeatureVector f{};
  if (flow.packets.empty()) return f;

  std::vector<double> sizes;
  sizes.reserve(flow.packets.size());
  std::vector<double> gaps;
  gaps.reserve(flow.packets.size());

  double out_ext_count = 0, in_ext_count = 0, out_loc_count = 0,
         in_loc_count = 0;
  double out_ext_bytes = 0, in_ext_bytes = 0, out_loc_bytes = 0,
         in_loc_bytes = 0;

  for (std::size_t i = 0; i < flow.packets.size(); ++i) {
    const PacketSummary& p = flow.packets[i];
    sizes.push_back(static_cast<double>(p.size));
    if (i > 0) {
      gaps.push_back(
          static_cast<double>(p.ts - flow.packets[i - 1].ts) / 1e6);
    }
    const bool out = p.dir == Direction::kOutbound;
    if (p.local) {
      (out ? out_loc_count : in_loc_count) += 1;
      (out ? out_loc_bytes : in_loc_bytes) += p.size;
    } else {
      (out ? out_ext_count : in_ext_count) += 1;
      (out ? out_ext_bytes : in_ext_bytes) += p.size;
    }
  }

  f[kMeanBytes] = stats::mean(sizes);
  f[kMinBytes] = *std::min_element(sizes.begin(), sizes.end());
  f[kMaxBytes] = *std::max_element(sizes.begin(), sizes.end());
  f[kMedAbsDev] = stats::median_abs_deviation(sizes);
  f[kSkewLength] = stats::skewness(sizes);
  f[kKurtosisLength] = stats::kurtosis(sizes);
  f[kMeanTbp] = stats::mean(gaps);
  f[kVarTbp] = stats::variance(gaps);
  f[kMedianTbp] = stats::median(gaps);
  f[kKurtosisTbp] = stats::kurtosis(gaps);
  f[kSkewTbp] = stats::skewness(gaps);
  f[kNetworkOutExternal] = out_ext_count;
  f[kNetworkInExternal] = in_ext_count;
  f[kNetworkExternal] = out_ext_count + in_ext_count;
  f[kNetworkLocal] = out_loc_count + in_loc_count;
  f[kNetworkOutLocal] = out_loc_count;
  f[kNetworkInLocal] = in_loc_count;
  f[kMeanBytesOutExternal] =
      out_ext_count > 0 ? out_ext_bytes / out_ext_count : 0.0;
  f[kMeanBytesInExternal] =
      in_ext_count > 0 ? in_ext_bytes / in_ext_count : 0.0;
  f[kMeanBytesOutLocal] =
      out_loc_count > 0 ? out_loc_bytes / out_loc_count : 0.0;
  f[kMeanBytesInLocal] = in_loc_count > 0 ? in_loc_bytes / in_loc_count : 0.0;
  if (FeatureChaosHook hook = g_feature_chaos.load(std::memory_order_relaxed);
      hook != nullptr) {
    hook(flow, f);
  }
  return f;
}

}  // namespace behaviot
