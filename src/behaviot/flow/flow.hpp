// Flow records — the unit of all BehavIoT modeling.
//
// Per §4.1: packets are grouped by 5-tuple into flows, long flows are split
// into *flow bursts* at 1-second inactivity gaps, and (as in the paper) we
// call the bursts simply "flows" from there on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "behaviot/net/packet.hpp"

namespace behaviot {

/// Header/timing summary of one packet inside a flow. Payload is dropped —
/// after annotation the pipeline is content-blind.
struct PacketSummary {
  Timestamp ts;
  std::uint32_t size = 0;  ///< IP total length
  Direction dir = Direction::kOutbound;
  bool local = false;  ///< both endpoints in private address space
};

/// Ground-truth tag attached by the testbed simulator (or by controlled
/// experiments on a real capture). kUnknown on unlabeled traffic.
enum class EventKind : std::uint8_t { kUnknown, kPeriodic, kUser, kAperiodic };

[[nodiscard]] const char* to_string(EventKind k);

struct FlowRecord {
  DeviceId device = kUnknownDevice;
  FiveTuple tuple;
  AppProtocol app = AppProtocol::kOtherTcp;
  std::string domain;  ///< annotated destination domain, may be empty
  Timestamp start;
  Timestamp end;
  std::vector<PacketSummary> packets;

  // --- ground truth (simulation / controlled experiments only) ---
  EventKind truth = EventKind::kUnknown;
  std::string truth_label;  ///< e.g. "ring_camera:motion" for user events

  [[nodiscard]] double duration_seconds() const {
    return static_cast<double>(end - start) / 1e6;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    std::uint64_t b = 0;
    for (const auto& p : packets) b += p.size;
    return b;
  }
  /// Traffic-group key used by the periodic modeling: (domain, protocol).
  [[nodiscard]] std::string group_key() const;
};

}  // namespace behaviot
