// The 21-feature flow representation of Table 8 (Appendix B).
//
// Features are derived purely from packet headers and timing; destination
// domain and protocol are carried separately (they are categorical and used
// for grouping, not fed to the distance-based learners directly).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>

#include "behaviot/flow/flow.hpp"

namespace behaviot {

inline constexpr std::size_t kNumFlowFeatures = 21;

using FeatureVector = std::array<double, kNumFlowFeatures>;

/// Feature indices, in Table-8 order.
enum FlowFeature : std::size_t {
  kMeanBytes = 0,
  kMinBytes,
  kMaxBytes,
  kMedAbsDev,
  kSkewLength,
  kKurtosisLength,
  kMeanTbp,
  kVarTbp,
  kMedianTbp,
  kKurtosisTbp,
  kSkewTbp,
  kNetworkOutExternal,
  kNetworkInExternal,
  kNetworkExternal,
  kNetworkLocal,
  kNetworkOutLocal,
  kNetworkInLocal,
  kMeanBytesOutExternal,
  kMeanBytesInExternal,
  kMeanBytesOutLocal,
  kMeanBytesInLocal,
};

/// Human-readable names (Table 8 spelling), index-aligned with FeatureVector.
[[nodiscard]] std::string_view feature_name(std::size_t index);

/// Computes the full feature vector for a flow. Single-packet flows yield
/// zero for all inter-packet-timing features.
[[nodiscard]] FeatureVector extract_features(const FlowRecord& flow);

/// Replaces non-finite cells in place — NaN becomes 0.0 (the value an empty
/// statistic would produce) and ±Inf clamps to ±1e12 (finite, still extreme
/// enough to land in DBSCAN noise rather than inside a cluster). Returns the
/// number of cells rewritten so callers can report "features-sanitized:<n>"
/// degradation instead of hiding the repair.
std::size_t sanitize_features(std::span<double> row);
inline std::size_t sanitize_features(FeatureVector& row) {
  return sanitize_features(std::span<double>(row.data(), row.size()));
}

/// Deterministic feature-corruption hook for the chaos layer
/// (chaos/fault_injector.hpp): when armed, every extracted vector passes
/// through the hook before being returned. Must be a pure function of the
/// flow content (no call-order state) so parallel stages stay
/// thread-count-invariant. nullptr disarms; the disarmed cost is one relaxed
/// atomic load per extraction.
using FeatureChaosHook = void (*)(const FlowRecord& flow, FeatureVector& row);
void set_feature_chaos_hook(FeatureChaosHook hook);
[[nodiscard]] FeatureChaosHook feature_chaos_hook();

}  // namespace behaviot
