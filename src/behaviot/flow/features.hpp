// The 21-feature flow representation of Table 8 (Appendix B).
//
// Features are derived purely from packet headers and timing; destination
// domain and protocol are carried separately (they are categorical and used
// for grouping, not fed to the distance-based learners directly).
#pragma once

#include <array>
#include <cstddef>
#include <string_view>

#include "behaviot/flow/flow.hpp"

namespace behaviot {

inline constexpr std::size_t kNumFlowFeatures = 21;

using FeatureVector = std::array<double, kNumFlowFeatures>;

/// Feature indices, in Table-8 order.
enum FlowFeature : std::size_t {
  kMeanBytes = 0,
  kMinBytes,
  kMaxBytes,
  kMedAbsDev,
  kSkewLength,
  kKurtosisLength,
  kMeanTbp,
  kVarTbp,
  kMedianTbp,
  kKurtosisTbp,
  kSkewTbp,
  kNetworkOutExternal,
  kNetworkInExternal,
  kNetworkExternal,
  kNetworkLocal,
  kNetworkOutLocal,
  kNetworkInLocal,
  kMeanBytesOutExternal,
  kMeanBytesInExternal,
  kMeanBytesOutLocal,
  kMeanBytesInLocal,
};

/// Human-readable names (Table 8 spelling), index-aligned with FeatureVector.
[[nodiscard]] std::string_view feature_name(std::size_t index);

/// Computes the full feature vector for a flow. Single-packet flows yield
/// zero for all inter-packet-timing features.
[[nodiscard]] FeatureVector extract_features(const FlowRecord& flow);

}  // namespace behaviot
