#include "behaviot/flow/assembler.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <unordered_map>

#include "behaviot/obs/health.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/span.hpp"

namespace behaviot {

FlowAssembler::FlowAssembler(AssemblerOptions options) : options_(options) {}

std::vector<FlowRecord> FlowAssembler::assemble(
    std::span<const Packet> packets, DomainResolver& resolver) const {
  obs::StageSpan span("flow.assemble");
  obs::health().heartbeat("flow.assembler");

  // Capture clocks are allowed small reorderings but not large regressions
  // (an NTP step on the capture host). An *isolated* regression — one packet
  // jumps backwards beyond tolerance while the next is already back at the
  // running maximum — is clamped forward to that maximum, working off a side
  // vector so well-formed input stays untouched (and the chaos-off path
  // bit-identical). A sustained drop (the following packets continue on the
  // low timeline) is block-unsorted input, not a clock fault: sorting below
  // handles it, clamping would destroy it.
  std::vector<Timestamp> effective_ts(packets.size());
  std::uint64_t clamped = 0;
  Timestamp running_max{std::numeric_limits<std::int64_t>::min()};
  for (std::size_t i = 0; i < packets.size(); ++i) {
    Timestamp ts = packets[i].ts;
    if (i > 0 && i + 1 < packets.size() &&
        (running_max - ts) > options_.max_ts_regression_us &&
        packets[i + 1].ts >= running_max) {
      ts = running_max;
      ++clamped;
    }
    effective_ts[i] = ts;
    running_max = std::max(running_max, ts);
  }
  if (clamped > 0) {
    obs::counter("ingest.nonmonotonic_ts").add(clamped);
    obs::health().degrade("flow.assembler",
                          "nonmonotonic-ts:" + std::to_string(clamped));
  }

  // Sort indices by time; stable so simultaneous packets keep capture order.
  std::vector<std::size_t> order(packets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&effective_ts](std::size_t a, std::size_t b) {
                     return effective_ts[a] < effective_ts[b];
                   });

  std::vector<FlowRecord> flows;
  // Open flow per 5-tuple → index into `flows`.
  std::unordered_map<FiveTuple, std::size_t, FiveTupleHash> open;

  for (std::size_t idx : order) {
    const Packet& p = packets[idx];
    const Timestamp ts = effective_ts[idx];
    resolver.observe(p);

    auto it = open.find(p.tuple);
    const bool gap_exceeded =
        it != open.end() &&
        (ts - flows[it->second].end) > options_.burst_gap_us;
    if (it == open.end() || gap_exceeded) {
      if (it != open.end()) open.erase(it);
      FlowRecord rec;
      rec.device = p.device;
      rec.tuple = p.tuple;
      rec.app = classify_app_protocol(p.tuple.proto, p.tuple.dst.port);
      rec.start = rec.end = ts;
      open.emplace(p.tuple, flows.size());
      flows.push_back(std::move(rec));
      it = open.find(p.tuple);
    }
    FlowRecord& rec = flows[it->second];
    rec.end = ts;
    rec.packets.push_back(
        {ts, p.size, p.dir, is_local_traffic(p)});
  }

  // Seal: annotate domains now that the resolver has seen the whole capture
  // prefix up to each flow (DNS precedes use in practice; for flows whose
  // binding arrived later we still benefit since resolution is by address).
  std::vector<FlowRecord> out;
  out.reserve(flows.size());
  std::uint64_t unresolved = 0;
  for (FlowRecord& rec : flows) {
    rec.domain = resolver.resolve(rec.tuple.dst.ip);
    if (rec.domain.empty()) ++unresolved;
    if (options_.drop_infrastructure &&
        (rec.app == AppProtocol::kDns || rec.app == AppProtocol::kNtp)) {
      continue;
    }
    out.push_back(std::move(rec));
  }
  // Unresolved destinations are not an error — group_key() maps them to a
  // stable "unresolved:<ip>" group — but they do mean annotation lost
  // information (lost DNS answers, no SNI), so disclose the totals.
  if (unresolved > 0) {
    obs::counter("ingest.unresolved_flows").add(unresolved);
    obs::health().degrade("flow.assembler",
                          "unresolved-domains:" + std::to_string(unresolved));
  }
  // Deterministic output order: by start time, then tuple.
  std::sort(out.begin(), out.end(), [](const FlowRecord& a, const FlowRecord& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.tuple < b.tuple;
  });

  static auto& packets_in = obs::counter("flow.packets_in");
  static auto& assembled = obs::counter("flow.assembled");
  static auto& dropped = obs::counter("flow.infrastructure_dropped");
  packets_in.add(packets.size());
  assembled.add(out.size());
  dropped.add(flows.size() - out.size());
  return out;
}

}  // namespace behaviot
