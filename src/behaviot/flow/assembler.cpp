#include "behaviot/flow/assembler.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <string>
#include <utility>

#include "behaviot/obs/health.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/span.hpp"

namespace behaviot {
namespace {

constexpr std::int64_t kMinUs = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kMaxUs = std::numeric_limits<std::int64_t>::max();

std::int64_t saturating_sub(std::int64_t a, std::int64_t b) {
  if (b > 0 && a < kMinUs + b) return kMinUs;
  if (b < 0 && a > kMaxUs + b) return kMaxUs;
  return a - b;
}

std::int64_t saturating_add(std::int64_t a, std::int64_t b) {
  if (b > 0 && a > kMaxUs - b) return kMaxUs;
  if (b < 0 && a < kMinUs - b) return kMinUs;
  return a + b;
}

}  // namespace

StreamingFlowAssembler::StreamingFlowAssembler(StreamingAssemblerOptions options,
                                               DomainResolver& resolver)
    : options_(options), resolver_(&resolver) {}

void StreamingFlowAssembler::feed(std::span<const Packet> packets) {
  if (finished_) return;
  for (const Packet& p : packets) accept(p);
}

void StreamingFlowAssembler::accept(const Packet& p) {
  ++stats_.packets_in;
  if (!pending_) {
    pending_ = p;
    note_peaks();
    return;
  }
  // Decide the held packet's effective timestamp now that its look-ahead
  // successor is known: an isolated regression (successor already back at
  // the running maximum) is a clock fault, clamped forward; everything else
  // keeps its raw timestamp and lets the reorder stage sort it.
  Packet q = std::move(*pending_);
  *pending_ = p;
  Timestamp eff = q.ts;
  if (decided_ > 0 &&
      (running_max_ - q.ts) > options_.base.max_ts_regression_us &&
      p.ts >= running_max_) {
    eff = running_max_;
    ++stats_.clamped_ts;
  }
  ++decided_;
  prev_effective_ = eff;
  running_max_ = std::max(running_max_, eff);
  enqueue(std::move(q), eff);
}

void StreamingFlowAssembler::enqueue(Packet p, Timestamp eff) {
  max_seen_ = std::max(max_seen_, eff);
  reorder_.push_back({eff, next_seq_++, std::move(p)});
  std::push_heap(reorder_.begin(), reorder_.end(), BufferedLater{});
  pump();
  enforce_caps();
  note_peaks();
}

StreamingFlowAssembler::Buffered StreamingFlowAssembler::pop_reorder() {
  std::pop_heap(reorder_.begin(), reorder_.end(), BufferedLater{});
  Buffered b = std::move(reorder_.back());
  reorder_.pop_back();
  return b;
}

void StreamingFlowAssembler::finish() {
  if (finished_) return;
  if (pending_) {
    // Tail rule: no successor exists, so clamp when the regression starts at
    // the tail — the predecessor was still within tolerance of the running
    // maximum. If the predecessor had already dropped too, this is the tail
    // of block-unsorted input and sorting handles it.
    Packet q = std::move(*pending_);
    pending_.reset();
    Timestamp eff = q.ts;
    if (decided_ > 0 &&
        (running_max_ - q.ts) > options_.base.max_ts_regression_us &&
        (running_max_ - prev_effective_) <= options_.base.max_ts_regression_us) {
      eff = running_max_;
      ++stats_.clamped_ts;
    }
    ++decided_;
    prev_effective_ = eff;
    running_max_ = std::max(running_max_, eff);
    enqueue(std::move(q), eff);
  }
  finished_ = true;
  pump();  // release_bound() is now +inf: empty the reorder stage
  while (!lru_.empty()) seal(open_.find(lru_.front()));
}

Timestamp StreamingFlowAssembler::release_bound() const {
  if (finished_) return Timestamp(kMaxUs);
  if (max_seen_ == Timestamp(kMinUs)) return Timestamp(kMinUs);
  return Timestamp(
      saturating_sub(max_seen_.micros(), options_.reorder_horizon_us));
}

void StreamingFlowAssembler::pump() {
  const Timestamp bound = release_bound();
  while (!reorder_.empty() && reorder_.front().effective <= bound) {
    const Buffered b = pop_reorder();
    release(b.packet, b.effective);
  }
}

void StreamingFlowAssembler::release(const Packet& p, Timestamp eff) {
  if (!first_release_) first_release_ = eff;
  if (last_released_ != Timestamp(kMinUs) && eff < last_released_) {
    ++stats_.late_packets;
  }
  last_released_ = std::max(last_released_, eff);

  // Amortized idle sweep: releases are non-decreasing (late packets aside),
  // so the least-recently-active flow has the oldest end; seal from the
  // front until one is still within the gap. drain_sealed() does the full
  // sweep that covers any flows a late packet pushed out of LRU order.
  while (!lru_.empty()) {
    auto front = open_.find(lru_.front());
    if ((eff - front->second.rec.end) > options_.base.burst_gap_us) {
      seal(front);
    } else {
      break;
    }
  }

  resolver_->observe(p);

  auto it = open_.find(p.tuple);
  if (it != open_.end() &&
      (eff - it->second.rec.end) > options_.base.burst_gap_us) {
    seal(it);
    it = open_.end();
  }
  if (it == open_.end()) {
    OpenFlow of;
    of.rec.device = p.device;
    of.rec.tuple = p.tuple;
    of.rec.app = classify_app_protocol(p.tuple.proto, p.tuple.dst.port);
    of.rec.start = of.rec.end = eff;
    lru_.push_back(p.tuple);
    of.lru = std::prev(lru_.end());
    open_starts_.insert(eff);
    it = open_.emplace(p.tuple, std::move(of)).first;
  } else {
    lru_.splice(lru_.end(), lru_, it->second.lru);  // mark most recently active
  }
  FlowRecord& rec = it->second.rec;
  rec.end = std::max(rec.end, eff);
  rec.packets.push_back({eff, p.size, p.dir, is_local_traffic(p)});
  ++open_packets_;
}

void StreamingFlowAssembler::seal(
    std::unordered_map<FiveTuple, OpenFlow, FiveTupleHash>::iterator it) {
  OpenFlow& of = it->second;
  open_packets_ -= of.rec.packets.size();
  open_starts_.erase(open_starts_.find(of.rec.start));
  lru_.erase(of.lru);
  sealed_.push_back(std::move(of.rec));
  open_.erase(it);
  ++stats_.flows_sealed;
}

void StreamingFlowAssembler::sweep_idle(Timestamp now) {
  std::vector<FiveTuple> idle;
  for (const auto& [tuple, of] : open_) {
    if ((now - of.rec.end) > options_.base.burst_gap_us) idle.push_back(tuple);
  }
  for (const FiveTuple& t : idle) seal(open_.find(t));
}

void StreamingFlowAssembler::enforce_caps() {
  static auto& force_sealed_counter = obs::counter("flow.force_sealed");
  static auto& force_released_counter = obs::counter("flow.force_released");
  if (options_.max_open_flows > 0) {
    while (open_.size() > options_.max_open_flows) {
      seal(open_.find(lru_.front()));
      ++stats_.force_sealed;
      force_sealed_counter.inc();
    }
  }
  if (options_.max_buffered_packets > 0) {
    while (buffered_packets() > options_.max_buffered_packets) {
      if (!open_.empty()) {
        // Cheapest eviction: sealing moves a whole flow out of the buffer.
        seal(open_.find(lru_.front()));
        ++stats_.force_sealed;
        force_sealed_counter.inc();
      } else if (!reorder_.empty()) {
        // Releasing moves a packet from the reorder stage into an open flow
        // (buffer-neutral); the next iteration seals that flow.
        const Buffered b = pop_reorder();
        ++stats_.force_released;
        force_released_counter.inc();
        release(b.packet, b.effective);
      } else {
        break;  // only the clamp slot left; floor is one packet
      }
    }
  }
}

void StreamingFlowAssembler::note_peaks() {
  stats_.peak_open_flows = std::max(stats_.peak_open_flows, open_.size());
  stats_.peak_buffered_packets =
      std::max(stats_.peak_buffered_packets, buffered_packets());
  // Live ingest-backlog gauges for the telemetry endpoint; cached refs and
  // the registry's enabled gate keep this no-op cheap in library use.
  static auto& open_gauge = obs::gauge("flow.open_flows");
  static auto& buffered_gauge = obs::gauge("flow.buffered_packets");
  open_gauge.set(static_cast<double>(open_.size()));
  buffered_gauge.set(static_cast<double>(buffered_packets()));
}

std::size_t StreamingFlowAssembler::buffered_packets() const {
  return (pending_ ? 1u : 0u) + reorder_.size() + open_packets_;
}

Timestamp StreamingFlowAssembler::seal_watermark() {
  if (finished_) return Timestamp(kMaxUs);
  const Timestamp bound = release_bound();
  if (bound == Timestamp(kMinUs)) {
    // Nothing released yet (or a hold-all horizon): final only before the
    // earliest thing still buffered, i.e. nowhere.
    std::int64_t wm = kMinUs;
    return Timestamp(wm);
  }
  std::int64_t wm = saturating_add(bound.micros(), 1);
  sweep_idle(Timestamp(wm));
  if (pending_) wm = std::min(wm, pending_->ts.micros());
  if (!open_starts_.empty()) wm = std::min(wm, open_starts_.begin()->micros());
  return Timestamp(wm);
}

std::vector<FlowRecord> StreamingFlowAssembler::drain_sealed(Timestamp before) {
  if (!finished_) {
    const Timestamp bound = release_bound();
    if (bound != Timestamp(kMinUs)) sweep_idle(bound + 1);
  }
  std::vector<FlowRecord> picked;
  std::vector<FlowRecord> keep;
  keep.reserve(sealed_.size());
  for (FlowRecord& rec : sealed_) {
    (rec.start < before ? picked : keep).push_back(std::move(rec));
  }
  sealed_ = std::move(keep);

  std::vector<FlowRecord> out;
  out.reserve(picked.size());
  for (FlowRecord& rec : picked) {
    rec.domain = resolver_->resolve(rec.tuple.dst.ip);
    if (options_.base.drop_infrastructure &&
        (rec.app == AppProtocol::kDns || rec.app == AppProtocol::kNtp)) {
      ++stats_.infrastructure_dropped;
      continue;
    }
    // Unresolved destinations are not an error — group_key() maps them to a
    // stable "unresolved:<ip>" group — but they do mean annotation lost
    // information, so count them. Only emitted flows count: dropped DNS/NTP
    // rarely has resolver bindings and would inflate the total.
    if (rec.domain.empty()) ++stats_.unresolved_emitted;
    ++stats_.flows_emitted;
    out.push_back(std::move(rec));
  }
  // Deterministic output order: by start time, then tuple.
  std::sort(out.begin(), out.end(),
            [](const FlowRecord& a, const FlowRecord& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.tuple < b.tuple;
            });
  return out;
}

StreamingAssemblerState StreamingFlowAssembler::export_state() const {
  StreamingAssemblerState s;
  s.pending = pending_;
  s.decided = decided_;
  s.running_max = running_max_;
  s.prev_effective = prev_effective_;
  s.reorder = reorder_;
  s.next_seq = next_seq_;
  s.max_seen = max_seen_;
  s.last_released = last_released_;
  s.first_release = first_release_;
  s.open.reserve(lru_.size());
  for (const FiveTuple& t : lru_) s.open.push_back(open_.at(t).rec);
  s.sealed = sealed_;
  s.finished = finished_;
  s.stats = stats_;
  return s;
}

void StreamingFlowAssembler::import_state(StreamingAssemblerState s) {
  pending_ = std::move(s.pending);
  decided_ = s.decided;
  running_max_ = s.running_max;
  prev_effective_ = s.prev_effective;
  reorder_ = std::move(s.reorder);
  next_seq_ = s.next_seq;
  max_seen_ = s.max_seen;
  last_released_ = s.last_released;
  first_release_ = s.first_release;
  open_.clear();
  lru_.clear();
  open_starts_.clear();
  open_packets_ = 0;
  for (FlowRecord& rec : s.open) {
    const FiveTuple key = rec.tuple;
    lru_.push_back(key);
    OpenFlow of;
    of.lru = std::prev(lru_.end());
    open_starts_.insert(rec.start);
    open_packets_ += rec.packets.size();
    of.rec = std::move(rec);
    open_.emplace(key, std::move(of));
  }
  sealed_ = std::move(s.sealed);
  finished_ = s.finished;
  stats_ = s.stats;
  note_peaks();
}

FlowAssembler::FlowAssembler(AssemblerOptions options) : options_(options) {}

std::vector<FlowRecord> FlowAssembler::assemble(
    std::span<const Packet> packets, DomainResolver& resolver) const {
  obs::StageSpan span("flow.assemble");
  obs::health().heartbeat("flow.assembler");

  // Hold-all horizon: nothing is released until finish(), so the reorder
  // stage performs one global stable sort — identical to sorting the whole
  // capture up front, for any input order.
  StreamingAssemblerOptions sopts;
  sopts.base = options_;
  sopts.reorder_horizon_us = std::numeric_limits<std::int64_t>::max();
  StreamingFlowAssembler core(sopts, resolver);
  core.feed(packets);
  core.finish();
  std::vector<FlowRecord> out =
      core.drain_sealed(Timestamp(std::numeric_limits<std::int64_t>::max()));

  const StreamingAssemblerStats& st = core.stats();
  if (st.clamped_ts > 0) {
    obs::counter("ingest.nonmonotonic_ts").add(st.clamped_ts);
    obs::health().degrade("flow.assembler",
                          "nonmonotonic-ts:" + std::to_string(st.clamped_ts));
  }
  if (st.unresolved_emitted > 0) {
    obs::counter("ingest.unresolved_flows")
        .add(st.unresolved_emitted);
    obs::health().degrade(
        "flow.assembler",
        "unresolved-domains:" + std::to_string(st.unresolved_emitted));
  }
  static auto& packets_in = obs::counter("flow.packets_in");
  static auto& assembled = obs::counter("flow.assembled");
  static auto& dropped = obs::counter("flow.infrastructure_dropped");
  packets_in.add(packets.size());
  assembled.add(out.size());
  dropped.add(st.infrastructure_dropped);
  return out;
}

}  // namespace behaviot
