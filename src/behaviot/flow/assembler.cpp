#include "behaviot/flow/assembler.hpp"

#include <algorithm>
#include <unordered_map>

#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/span.hpp"

namespace behaviot {

FlowAssembler::FlowAssembler(AssemblerOptions options) : options_(options) {}

std::vector<FlowRecord> FlowAssembler::assemble(
    std::span<const Packet> packets, DomainResolver& resolver) const {
  obs::StageSpan span("flow.assemble");
  // Sort indices by time; stable so simultaneous packets keep capture order.
  std::vector<std::size_t> order(packets.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&packets](std::size_t a, std::size_t b) {
                     return packets[a].ts < packets[b].ts;
                   });

  std::vector<FlowRecord> flows;
  // Open flow per 5-tuple → index into `flows`.
  std::unordered_map<FiveTuple, std::size_t, FiveTupleHash> open;

  for (std::size_t idx : order) {
    const Packet& p = packets[idx];
    resolver.observe(p);

    auto it = open.find(p.tuple);
    const bool gap_exceeded =
        it != open.end() &&
        (p.ts - flows[it->second].end) > options_.burst_gap_us;
    if (it == open.end() || gap_exceeded) {
      if (it != open.end()) open.erase(it);
      FlowRecord rec;
      rec.device = p.device;
      rec.tuple = p.tuple;
      rec.app = classify_app_protocol(p.tuple.proto, p.tuple.dst.port);
      rec.start = rec.end = p.ts;
      open.emplace(p.tuple, flows.size());
      flows.push_back(std::move(rec));
      it = open.find(p.tuple);
    }
    FlowRecord& rec = flows[it->second];
    rec.end = p.ts;
    rec.packets.push_back(
        {p.ts, p.size, p.dir, is_local_traffic(p)});
  }

  // Seal: annotate domains now that the resolver has seen the whole capture
  // prefix up to each flow (DNS precedes use in practice; for flows whose
  // binding arrived later we still benefit since resolution is by address).
  std::vector<FlowRecord> out;
  out.reserve(flows.size());
  for (FlowRecord& rec : flows) {
    rec.domain = resolver.resolve(rec.tuple.dst.ip);
    if (options_.drop_infrastructure &&
        (rec.app == AppProtocol::kDns || rec.app == AppProtocol::kNtp)) {
      continue;
    }
    out.push_back(std::move(rec));
  }
  // Deterministic output order: by start time, then tuple.
  std::sort(out.begin(), out.end(), [](const FlowRecord& a, const FlowRecord& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.tuple < b.tuple;
  });

  static auto& packets_in = obs::counter("flow.packets_in");
  static auto& assembled = obs::counter("flow.assembled");
  static auto& dropped = obs::counter("flow.infrastructure_dropped");
  packets_in.add(packets.size());
  assembled.add(out.size());
  dropped.add(flows.size() - out.size());
  return out;
}

}  // namespace behaviot
