// Packet → flow assembly with burst splitting (§4.1), in two modes sharing
// one incremental core:
//
//  - FlowAssembler::assemble — one-shot batch assembly of a complete
//    capture (the observation-phase workflow). Equivalent to feeding every
//    packet through the incremental core with an unbounded reorder horizon
//    and draining once at the end.
//  - StreamingFlowAssembler — the `behaviot watch` ingestion stage: packets
//    arrive in capture order across many feed() calls, flows are sealed as
//    their burst gap elapses, and hard caps on open flows / buffered packets
//    keep peak memory independent of capture length.
#pragma once

#include <cstdint>
#include <limits>
#include <list>
#include <optional>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include "behaviot/flow/flow.hpp"
#include "behaviot/net/domain_resolver.hpp"

namespace behaviot {

struct AssemblerOptions {
  /// Two consecutive packets of the same 5-tuple further apart than this
  /// start a new flow burst. The paper uses 1 second (following [66, 76]).
  std::int64_t burst_gap_us = seconds(1.0);
  /// Drop pure-DNS and pure-NTP infrastructure flows from the output. The
  /// paper keeps them (they become periodic models), so default off.
  bool drop_infrastructure = false;
  /// Isolated backwards timestamp jumps (in capture order) larger than this
  /// — one packet regresses while its successor is already back at the
  /// running maximum — are treated as capture-clock faults: the packet's
  /// timestamp is clamped forward to the running maximum and counted on the
  /// `ingest.nonmonotonic_ts` counter, instead of silently re-sorting the
  /// packet seconds into the past (which smears it into the wrong burst).
  /// At the end of a stream the successor test is impossible; a final packet
  /// is clamped when its *predecessor* was still on the high timeline (the
  /// regression starts at the tail), and left alone when the predecessor had
  /// already dropped too (a sustained drop, i.e. block-unsorted input).
  /// Jumps within the threshold are ordinary network reordering, and
  /// sustained drops are block-unsorted input; both are handled by sorting.
  std::int64_t max_ts_regression_us = milliseconds(100);
};

/// Configuration of the incremental mode. The defaults bound nothing — caps
/// are opt-in so library users choose their own memory budget.
struct StreamingAssemblerOptions {
  AssemblerOptions base;
  /// Packets are held in a reorder stage until the stream clock (max
  /// effective timestamp seen) has advanced this far past them, then
  /// released in timestamp order. Matches batch assembly's global stable
  /// sort for any displacement within the horizon; packets later than the
  /// horizon are processed on arrival (counted as `late_packets`).
  std::int64_t reorder_horizon_us = seconds(1.0);
  /// Hard cap on concurrently open flows; 0 = unbounded. On overflow the
  /// least-recently-active flow is force-sealed (counted, health-degraded).
  std::size_t max_open_flows = 0;
  /// Hard cap on buffered packets (reorder stage + packets held by open
  /// flows); 0 = unbounded. On overflow idle flows are swept, then
  /// least-recently-active flows force-sealed, then the oldest reorder-stage
  /// packets force-released.
  std::size_t max_buffered_packets = 0;
};

/// Counters the incremental core keeps about its own behavior. All totals
/// are cumulative since construction.
struct StreamingAssemblerStats {
  std::uint64_t packets_in = 0;
  std::uint64_t flows_sealed = 0;
  std::uint64_t flows_emitted = 0;        ///< after infrastructure dropping
  std::uint64_t infrastructure_dropped = 0;
  std::uint64_t unresolved_emitted = 0;   ///< emitted flows without a domain
  std::uint64_t clamped_ts = 0;           ///< isolated regressions clamped
  std::uint64_t late_packets = 0;         ///< released behind the stream clock
  std::uint64_t force_sealed = 0;         ///< flows sealed by a cap
  std::uint64_t force_released = 0;       ///< packets released by the cap
  std::size_t peak_open_flows = 0;
  std::size_t peak_buffered_packets = 0;
};

/// Incremental packet→flow core. Packets enter in capture order via feed();
/// sealed flows leave via drain_sealed(). The pipeline is:
///
///   feed ─→ clamp (1-packet look-ahead) ─→ reorder (horizon) ─→ open flows
///        ─→ sealed flows ─→ drain_sealed (resolve + filter + sort)
///
/// `seal_watermark()` tells the caller up to which instant the output is
/// final: every flow starting before the watermark has been sealed, and no
/// future packet can start or extend a flow before it. A deviation window
/// [ws, we) may be closed as soon as the watermark reaches `we`.
struct StreamingAssemblerState;

class StreamingFlowAssembler {
 public:
  /// One packet parked in the reorder stage: its decided effective
  /// timestamp plus an arrival sequence number (the release tiebreak).
  /// Public because checkpointing serializes the reorder stage verbatim.
  struct Buffered {
    Timestamp effective;
    std::uint64_t seq = 0;
    Packet packet;
  };

  /// `resolver` must outlive the assembler. Packets are offered to it in
  /// release (timestamp) order; flow domains are resolved at drain time.
  StreamingFlowAssembler(StreamingAssemblerOptions options,
                         DomainResolver& resolver);

  /// Feeds a chunk of packets in capture order. Chunk boundaries carry no
  /// meaning: any split of a capture into feed() calls yields the same flows.
  void feed(std::span<const Packet> packets);

  /// Marks end of stream: flushes the look-ahead and reorder stages and
  /// seals every open flow. Further feed() calls are ignored.
  void finish();
  [[nodiscard]] bool finished() const { return finished_; }

  /// Exclusive bound below which assembly is final (see class comment).
  /// Timestamp(INT64_MIN) until the first packet; INT64_MAX once finished.
  /// Seals flows that can no longer be extended, hence non-const.
  [[nodiscard]] Timestamp seal_watermark();

  /// Removes and returns sealed flows with start < `before`, annotated with
  /// the resolver's current knowledge, infrastructure-filtered per options,
  /// sorted by (start, tuple). Only final once seal_watermark() >= before.
  std::vector<FlowRecord> drain_sealed(Timestamp before);

  /// Timestamp of the first packet released from the reorder stage (origin
  /// of the caller's window grid); nullopt before any release.
  [[nodiscard]] std::optional<Timestamp> first_release() const {
    return first_release_;
  }
  /// Max effective timestamp that has entered the reorder stage — the
  /// stream clock.
  [[nodiscard]] Timestamp stream_time() const { return max_seen_; }

  [[nodiscard]] const StreamingAssemblerStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t open_flows() const { return open_.size(); }
  /// Sealed flows awaiting drain_sealed().
  [[nodiscard]] std::size_t sealed_pending() const { return sealed_.size(); }
  /// Packets currently buffered: clamp slot + reorder stage + open flows.
  [[nodiscard]] std::size_t buffered_packets() const;

  /// Snapshot of the complete streaming state (checkpointing). The options
  /// and resolver are NOT part of the snapshot — a restored assembler must
  /// be constructed with the same options against an equivalently-restored
  /// resolver for the continuation to be byte-identical.
  [[nodiscard]] StreamingAssemblerState export_state() const;

  /// Restores a snapshot taken by export_state(), replacing all streaming
  /// state. The open-flow LRU order, reorder-heap layout and every counter
  /// round-trip exactly.
  void import_state(StreamingAssemblerState state);

 private:
  struct BufferedLater {
    bool operator()(const Buffered& a, const Buffered& b) const {
      if (a.effective != b.effective) return a.effective > b.effective;
      return a.seq > b.seq;
    }
  };
  struct OpenFlow {
    FlowRecord rec;
    std::list<FiveTuple>::iterator lru;
  };

  void accept(const Packet& p);                 // clamp stage
  void enqueue(Packet p, Timestamp eff);        // into reorder stage
  Buffered pop_reorder();                       // heap-pop the earliest
  void pump();                                  // release up to horizon
  void release(const Packet& p, Timestamp eff); // flow update
  void seal(std::unordered_map<FiveTuple, OpenFlow, FiveTupleHash>::iterator
                it);
  void sweep_idle(Timestamp now);
  void enforce_caps();
  void note_peaks();
  [[nodiscard]] Timestamp release_bound() const;

  StreamingAssemblerOptions options_;
  DomainResolver* resolver_;

  // Clamp stage: one pending packet awaiting its look-ahead successor.
  std::optional<Packet> pending_;
  std::uint64_t decided_ = 0;  ///< packets whose effective ts is fixed
  Timestamp running_max_{std::numeric_limits<std::int64_t>::min()};
  Timestamp prev_effective_{std::numeric_limits<std::int64_t>::min()};

  // Reorder stage: a binary min-heap on (effective, seq) kept via
  // push_heap/pop_heap — a plain vector instead of std::priority_queue so
  // checkpointing can serialize the raw array (and restore it verbatim; the
  // heap layout is deterministic, and pop order is fully determined by the
  // strict (effective, seq) total order regardless of layout).
  std::vector<Buffered> reorder_;
  std::uint64_t next_seq_ = 0;
  Timestamp max_seen_{std::numeric_limits<std::int64_t>::min()};
  Timestamp last_released_{std::numeric_limits<std::int64_t>::min()};
  std::optional<Timestamp> first_release_;

  // Open flows, with least-recently-active ordering for eviction sweeps.
  std::unordered_map<FiveTuple, OpenFlow, FiveTupleHash> open_;
  std::list<FiveTuple> lru_;                 ///< front = least recently active
  std::multiset<Timestamp> open_starts_;     ///< min blocks the watermark
  std::size_t open_packets_ = 0;             ///< packets held by open flows

  std::vector<FlowRecord> sealed_;
  bool finished_ = false;

  StreamingAssemblerStats stats_;
};

/// Serializable snapshot of a StreamingFlowAssembler — every member the
/// streaming core owns, in a shape the checkpoint format can walk. Open
/// flows are listed in LRU order (front = least recently active); the
/// derived indexes (tuple map, start multiset, packet tally) are rebuilt on
/// import. `reorder` is the raw heap array, restored verbatim.
struct StreamingAssemblerState {
  std::optional<Packet> pending;  ///< clamp-stage look-ahead slot
  std::uint64_t decided = 0;
  Timestamp running_max{std::numeric_limits<std::int64_t>::min()};
  Timestamp prev_effective{std::numeric_limits<std::int64_t>::min()};
  std::vector<StreamingFlowAssembler::Buffered> reorder;
  std::uint64_t next_seq = 0;
  Timestamp max_seen{std::numeric_limits<std::int64_t>::min()};
  Timestamp last_released{std::numeric_limits<std::int64_t>::min()};
  std::optional<Timestamp> first_release;
  std::vector<FlowRecord> open;  ///< LRU order, least recently active first
  std::vector<FlowRecord> sealed;
  bool finished = false;
  StreamingAssemblerStats stats;
};

/// Assembles a capture into flow records.
///
/// Packets are processed in timestamp order. Each packet is first offered to
/// the resolver (so DNS/SNI seen earlier annotate later flows, mirroring an
/// online gateway); flow domains are resolved when the flow is sealed.
class FlowAssembler {
 public:
  explicit FlowAssembler(AssemblerOptions options = {});

  /// One-shot assembly of a full capture. The input need not be sorted.
  /// Implemented on the incremental core with an unbounded reorder horizon,
  /// so batch and streaming assembly cannot drift apart.
  std::vector<FlowRecord> assemble(std::span<const Packet> packets,
                                   DomainResolver& resolver) const;

 private:
  AssemblerOptions options_;
};

}  // namespace behaviot
