// Packet → flow assembly with burst splitting (§4.1).
#pragma once

#include <span>
#include <vector>

#include "behaviot/flow/flow.hpp"
#include "behaviot/net/domain_resolver.hpp"

namespace behaviot {

struct AssemblerOptions {
  /// Two consecutive packets of the same 5-tuple further apart than this
  /// start a new flow burst. The paper uses 1 second (following [66, 76]).
  std::int64_t burst_gap_us = seconds(1.0);
  /// Drop pure-DNS and pure-NTP infrastructure flows from the output. The
  /// paper keeps them (they become periodic models), so default off.
  bool drop_infrastructure = false;
  /// Isolated backwards timestamp jumps (in capture order) larger than this
  /// — one packet regresses while its successor is already back at the
  /// running maximum — are treated as capture-clock faults: the packet's
  /// timestamp is clamped forward to the running maximum and counted on the
  /// `ingest.nonmonotonic_ts` counter, instead of silently re-sorting the
  /// packet seconds into the past (which smears it into the wrong burst).
  /// Jumps within the threshold are ordinary network reordering, and
  /// sustained drops are block-unsorted input; both are handled by the
  /// stable sort.
  std::int64_t max_ts_regression_us = milliseconds(100);
};

/// Assembles a capture into flow records.
///
/// Packets are processed in timestamp order. Each packet is first offered to
/// the resolver (so DNS/SNI seen earlier annotate later flows, mirroring an
/// online gateway); flow domains are resolved when the flow is sealed.
class FlowAssembler {
 public:
  explicit FlowAssembler(AssemblerOptions options = {});

  /// One-shot assembly of a full capture. The input need not be sorted.
  std::vector<FlowRecord> assemble(std::span<const Packet> packets,
                                   DomainResolver& resolver) const;

 private:
  AssemblerOptions options_;
};

}  // namespace behaviot
