#include "behaviot/flow/flow.hpp"

namespace behaviot {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kUnknown: return "unknown";
    case EventKind::kPeriodic: return "periodic";
    case EventKind::kUser: return "user";
    case EventKind::kAperiodic: return "aperiodic";
  }
  return "?";
}

std::string FlowRecord::group_key() const {
  // Unnamed destinations map to a stable "unresolved:<ip>" key: they still
  // form a group (so periodic inference and deviation scoring run), but the
  // key is distinguishable from a real domain, so reports and operators can
  // see at a glance that annotation failed (e.g. the DNS answer was lost).
  const std::string dest =
      domain.empty() ? "unresolved:" + tuple.dst.ip.to_string() : domain;
  return dest + "|" + to_string(app);
}

}  // namespace behaviot
