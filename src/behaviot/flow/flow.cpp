#include "behaviot/flow/flow.hpp"

namespace behaviot {

const char* to_string(EventKind k) {
  switch (k) {
    case EventKind::kUnknown: return "unknown";
    case EventKind::kPeriodic: return "periodic";
    case EventKind::kUser: return "user";
    case EventKind::kAperiodic: return "aperiodic";
  }
  return "?";
}

std::string FlowRecord::group_key() const {
  // Unnamed destinations fall back to the IP so they still form a group.
  const std::string dest = domain.empty() ? tuple.dst.ip.to_string() : domain;
  return dest + "|" + to_string(app);
}

}  // namespace behaviot
