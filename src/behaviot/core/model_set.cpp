#include "behaviot/core/model_set.hpp"

// BehaviorModelSet is an aggregate of the module models; this TU anchors the
// core library target.
