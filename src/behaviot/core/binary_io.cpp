#include "behaviot/core/binary_io.hpp"

#include <array>
#include <bit>
#include <cstring>

namespace behaviot {

std::uint32_t crc32_ieee(std::span<const std::uint8_t> bytes) {
  // Slice-by-16: sixteen table lookups per 16-byte chunk instead of sixteen
  // chained per-byte steps. The byte-at-a-time loop was the single largest
  // cost of a binary model load (half the wall-clock on a ~50 KB file); the
  // sliced kernel runs ~1.6 GB/s faster than slice-by-8 because the two
  // 8-byte halves have no data dependency, and it keeps the checksum
  // byte-identical.
  static const std::array<std::array<std::uint32_t, 256>, 16> table = [] {
    std::array<std::array<std::uint32_t, 256>, 16> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = t[0][i];
      for (std::size_t s = 1; s < 16; ++s) {
        c = t[0][c & 0xffu] ^ (c >> 8);
        t[s][i] = c;
      }
    }
    return t;
  }();
  std::uint32_t crc = 0xffffffffu;
  const std::uint8_t* p = bytes.data();
  std::size_t n = bytes.size();
  if constexpr (std::endian::native == std::endian::little) {
    // The in-register fold (a ^= crc hits the low 4 bytes) only holds on
    // little-endian hosts; big-endian falls through to the byte loop.
    while (n >= 16) {
      std::uint64_t a;
      std::uint64_t b;
      std::memcpy(&a, p, 8);
      std::memcpy(&b, p + 8, 8);
      a ^= crc;
      crc = table[15][a & 0xffu] ^ table[14][(a >> 8) & 0xffu] ^
            table[13][(a >> 16) & 0xffu] ^ table[12][(a >> 24) & 0xffu] ^
            table[11][(a >> 32) & 0xffu] ^ table[10][(a >> 40) & 0xffu] ^
            table[9][(a >> 48) & 0xffu] ^ table[8][a >> 56] ^
            table[7][b & 0xffu] ^ table[6][(b >> 8) & 0xffu] ^
            table[5][(b >> 16) & 0xffu] ^ table[4][(b >> 24) & 0xffu] ^
            table[3][(b >> 32) & 0xffu] ^ table[2][(b >> 40) & 0xffu] ^
            table[1][(b >> 48) & 0xffu] ^ table[0][b >> 56];
      p += 16;
      n -= 16;
    }
  }
  while (n > 0) {
    crc = table[0][(crc ^ *p) & 0xffu] ^ (crc >> 8);
    ++p;
    --n;
  }
  return crc ^ 0xffffffffu;
}

namespace binio {

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u16(std::string& out, std::uint16_t v) {
  out.push_back(static_cast<char>(v & 0xff));
  out.push_back(static_cast<char>(v >> 8));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_i32(std::string& out, std::int32_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
}

void put_i64(std::string& out, std::int64_t v) {
  put_u64(out, static_cast<std::uint64_t>(v));
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

void put_f64_array(std::string& out, std::span<const double> values) {
  if (values.empty()) return;
  const std::size_t at = out.size();
  out.resize(at + values.size() * sizeof(double));
  std::memcpy(out.data() + at, values.data(), values.size() * sizeof(double));
}

void put_str(std::string& out, std::string_view s) {
  put_u32(out, static_cast<std::uint32_t>(s.size()));
  out.append(s);
}

std::uint8_t Cursor::u8(const char* what) {
  need(1, what);
  return bytes_[pos_++];
}

std::uint16_t Cursor::u16(const char* what) {
  need(2, what);
  std::uint16_t v;
  if constexpr (std::endian::native == std::endian::little) {
    // The wire format is little-endian, so on LE hosts a bounds-checked
    // memcpy IS the decode — one unaligned load instead of a shift loop.
    std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
  } else {
    v = static_cast<std::uint16_t>(std::uint16_t{bytes_[pos_]} |
                                   (std::uint16_t{bytes_[pos_ + 1]} << 8));
  }
  pos_ += 2;
  return v;
}

std::uint32_t Cursor::u32(const char* what) {
  need(4, what);
  std::uint32_t v = 0;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
  } else {
    for (int i = 0; i < 4; ++i) {
      v |= std::uint32_t{bytes_[pos_ + static_cast<std::size_t>(i)]}
           << (8 * i);
    }
  }
  pos_ += 4;
  return v;
}

std::uint64_t Cursor::u64(const char* what) {
  need(8, what);
  std::uint64_t v = 0;
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&v, bytes_.data() + pos_, sizeof(v));
  } else {
    for (int i = 0; i < 8; ++i) {
      v |= std::uint64_t{bytes_[pos_ + static_cast<std::size_t>(i)]}
           << (8 * i);
    }
  }
  pos_ += 8;
  return v;
}

std::int32_t Cursor::i32(const char* what) {
  return static_cast<std::int32_t>(u32(what));
}

std::int64_t Cursor::i64(const char* what) {
  return static_cast<std::int64_t>(u64(what));
}

double Cursor::f64(const char* what) {
  const std::uint64_t bits = u64(what);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::size_t Cursor::count(const char* what, std::size_t min_element_bytes) {
  const std::size_t at = offset();
  const std::uint64_t v = u64(what);
  if (min_element_bytes == 0) min_element_bytes = 1;
  if (v > remaining() / min_element_bytes) {
    fail_at(at, std::string("count for ") + what + " (" + std::to_string(v) +
                    ") exceeds remaining " + section_ + " section bytes (" +
                    std::to_string(remaining()) + ")");
  }
  return static_cast<std::size_t>(v);
}

std::string_view Cursor::str_view(const char* what) {
  const std::size_t at = offset();
  const std::uint32_t len = u32(what);
  if (len > remaining()) {
    fail_at(at, std::string("string length for ") + what + " (" +
                    std::to_string(len) + ") exceeds remaining " + section_ +
                    " section bytes (" + std::to_string(remaining()) + ")");
  }
  const std::string_view s(reinterpret_cast<const char*>(bytes_.data() + pos_),
                           len);
  pos_ += len;
  return s;
}

void Cursor::f64_array(std::vector<double>& out, std::size_t n,
                       const char* what) {
  out.resize(n);
  const std::uint8_t* raw = f64_array_bytes(n, what);
  if (n > 0) std::memcpy(out.data(), raw, n * sizeof(double));
}

const std::uint8_t* Cursor::f64_array_bytes(std::size_t n, const char* what) {
  need(n * sizeof(double), what);
  const std::uint8_t* raw = bytes_.data() + pos_;
  pos_ += n * sizeof(double);
  return raw;
}

void Cursor::need(std::size_t n, const char* what) {
  if (remaining() < n) {
    fail_at(offset(), std::string(section_) + " section truncated reading " +
                          what + " (need " + std::to_string(n) + " bytes, " +
                          std::to_string(remaining()) + " remain)");
  }
}

void Cursor::fail_at(std::size_t at, const std::string& why) const {
  throw SerializationError(std::string(tag_) + ": " + why, at);
}

ImageLayout parse_layout(std::span<const std::uint8_t> bytes,
                         const ImageFormat& fmt) {
  const std::string tag(fmt.tag);
  Cursor header(bytes, 0, "header", fmt.tag);
  if (bytes.size() < kHeaderSize + kCrcSize) {
    header.fail("image smaller than header + checksum");
  }
  if (header.u32("magic") != fmt.magic) {
    throw SerializationError(
        tag + ": bad magic (not a " + fmt.name + " file)", std::size_t{0});
  }
  const std::uint16_t version = header.u16("version");
  if (version != fmt.version) {
    throw SerializationError(
        tag + ": unsupported format version " + std::to_string(version),
        std::size_t{4});
  }
  if (header.u16("flags") != 0) {
    throw SerializationError(tag + ": unknown header flags", std::size_t{6});
  }
  const std::uint32_t n_sections = header.u32("section count");
  // Each table entry is 16 bytes; a count the image cannot hold is corrupt.
  if (n_sections >
      (bytes.size() - kHeaderSize - kCrcSize) / kSectionEntrySize) {
    throw SerializationError(tag + ": section count (" +
                                 std::to_string(n_sections) +
                                 ") exceeds image size",
                             std::size_t{8});
  }

  ImageLayout layout;
  layout.sections.reserve(n_sections);
  std::size_t payload_offset =
      kHeaderSize + static_cast<std::size_t>(n_sections) * kSectionEntrySize;
  layout.payload_end = bytes.size() - kCrcSize;
  for (std::uint32_t i = 0; i < n_sections; ++i) {
    SectionEntry entry;
    entry.id = header.u32("section id");
    (void)header.u32("section reserved");
    const std::size_t at =
        kHeaderSize + static_cast<std::size_t>(i) * kSectionEntrySize + 8;
    const std::uint64_t size = header.u64("section size");
    if (size > layout.payload_end - payload_offset) {
      throw SerializationError(tag + ": section " + std::to_string(entry.id) +
                                   " size (" + std::to_string(size) +
                                   ") exceeds remaining image",
                               at);
    }
    entry.offset = payload_offset;
    entry.size = static_cast<std::size_t>(size);
    payload_offset += entry.size;
    layout.sections.push_back(entry);
  }
  if (payload_offset != layout.payload_end) {
    throw SerializationError(
        tag + ": section sizes leave " +
            std::to_string(layout.payload_end - payload_offset) +
            " unaccounted bytes before the checksum",
        payload_offset);
  }

  for (int i = 0; i < 4; ++i) {
    layout.stored_crc |=
        std::uint32_t{bytes[layout.payload_end + static_cast<std::size_t>(i)]}
        << (8 * i);
  }
  layout.computed_crc = crc32_ieee(bytes.first(layout.payload_end));
  layout.crc_ok = layout.stored_crc == layout.computed_crc;
  return layout;
}

void throw_crc_mismatch(const ImageLayout& layout, const ImageFormat& fmt) {
  throw SerializationError(
      std::string(fmt.tag) + ": CRC mismatch (stored " +
          std::to_string(layout.stored_crc) + ", computed " +
          std::to_string(layout.computed_crc) + ")",
      layout.payload_end);
}

std::string build_image(
    const ImageFormat& fmt,
    std::span<const std::pair<std::uint32_t, std::string>> sections) {
  std::string out;
  std::size_t total = kHeaderSize + kCrcSize;
  for (const auto& [id, payload] : sections) {
    total += kSectionEntrySize + payload.size();
  }
  out.reserve(total);

  put_u32(out, fmt.magic);
  put_u16(out, fmt.version);
  put_u16(out, 0);  // flags
  put_u32(out, static_cast<std::uint32_t>(sections.size()));
  for (const auto& [id, payload] : sections) {
    put_u32(out, id);
    put_u32(out, 0);  // reserved
    put_u64(out, payload.size());
  }
  for (const auto& [id, payload] : sections) out.append(payload);
  put_u32(out, crc32_ieee(as_bytes(out)));
  return out;
}

}  // namespace binio
}  // namespace behaviot
