#include "behaviot/core/checkpoint.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <system_error>
#include <utility>
#include <vector>

#include "behaviot/core/binary_io.hpp"
#include "behaviot/obs/crash_point.hpp"
#include "behaviot/obs/snapshot.hpp"

namespace behaviot {
namespace {

using binio::Cursor;
using binio::ImageLayout;
using binio::SectionEntry;
using binio::put_i64;
using binio::put_str;
using binio::put_u16;
using binio::put_u32;
using binio::put_u64;
using binio::put_u8;

constexpr binio::ImageFormat kBbcFormat{kCheckpointMagic,
                                        kCheckpointFormatVersion, "bbc",
                                        "watch checkpoint"};

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kCkptSectionEngine: return "engine";
    case kCkptSectionAssembler: return "assembler";
    case kCkptSectionMonitor: return "monitor";
    case kCkptSectionResolver: return "resolver";
    case kCkptSectionModels: return "models";
    case kCkptSectionFrontend: return "frontend";
    case kCkptSectionRetrain: return "retrain";
    case kCkptSectionHealth: return "health";
    default: return "unknown";
  }
}

// ---------------------------------------------------------------------------
// Primitive writers/readers shared by several sections.

void put_ts(std::string& out, Timestamp t) { put_i64(out, t.micros()); }

Timestamp read_ts(Cursor& c, const char* what) {
  return Timestamp(c.i64(what));
}

void put_opt_ts(std::string& out, const std::optional<Timestamp>& t) {
  put_u8(out, t.has_value() ? 1 : 0);
  put_i64(out, t ? t->micros() : 0);
}

std::optional<Timestamp> read_opt_ts(Cursor& c, const char* what) {
  const std::uint8_t has = c.u8(what);
  if (has > 1) c.fail(std::string(what) + ": presence flag not 0/1");
  const std::int64_t us = c.i64(what);
  if (!has) return std::nullopt;
  return Timestamp(us);
}

bool read_bool(Cursor& c, const char* what) {
  const std::uint8_t v = c.u8(what);
  if (v > 1) c.fail(std::string(what) + ": flag not 0/1");
  return v != 0;
}

void put_tuple(std::string& out, const FiveTuple& t) {
  put_u32(out, t.src.ip.value());
  put_u16(out, t.src.port);
  put_u32(out, t.dst.ip.value());
  put_u16(out, t.dst.port);
  put_u8(out, static_cast<std::uint8_t>(t.proto));
}

FiveTuple read_tuple(Cursor& c) {
  FiveTuple t;
  t.src.ip = Ipv4Addr(c.u32("src ip"));
  t.src.port = c.u16("src port");
  t.dst.ip = Ipv4Addr(c.u32("dst ip"));
  t.dst.port = c.u16("dst port");
  const std::uint8_t proto = c.u8("transport");
  if (proto != static_cast<std::uint8_t>(Transport::kTcp) &&
      proto != static_cast<std::uint8_t>(Transport::kUdp)) {
    c.fail("transport is neither TCP nor UDP");
  }
  t.proto = static_cast<Transport>(proto);
  return t;
}

Direction read_dir(Cursor& c) {
  const std::uint8_t dir = c.u8("direction");
  if (dir > 1) c.fail("direction out of range");
  return static_cast<Direction>(dir);
}

void put_packet(std::string& out, const Packet& p) {
  put_ts(out, p.ts);
  put_tuple(out, p.tuple);
  put_u32(out, p.size);
  put_u8(out, static_cast<std::uint8_t>(p.dir));
  put_u16(out, p.device);
  put_str(out, std::string_view(reinterpret_cast<const char*>(p.payload.data()),
                                p.payload.size()));
}

Packet read_packet(Cursor& c) {
  Packet p;
  p.ts = read_ts(c, "packet ts");
  p.tuple = read_tuple(c);
  p.size = c.u32("packet size");
  p.dir = read_dir(c);
  p.device = c.u16("device");
  const std::string_view payload = c.str_view("payload");
  p.payload.assign(payload.begin(), payload.end());
  return p;
}

/// Every serialized PacketSummary occupies at least this many bytes — the
/// count-cap unit for per-flow packet lists.
constexpr std::size_t kMinPacketSummaryBytes = 8 + 4 + 1 + 1;

void put_flow(std::string& out, const FlowRecord& f) {
  put_u16(out, f.device);
  put_tuple(out, f.tuple);
  put_u8(out, static_cast<std::uint8_t>(f.app));
  put_str(out, f.domain);
  put_ts(out, f.start);
  put_ts(out, f.end);
  put_u64(out, f.packets.size());
  for (const PacketSummary& p : f.packets) {
    put_ts(out, p.ts);
    put_u32(out, p.size);
    put_u8(out, static_cast<std::uint8_t>(p.dir));
    put_u8(out, p.local ? 1 : 0);
  }
  put_u8(out, static_cast<std::uint8_t>(f.truth));
  put_str(out, f.truth_label);
}

FlowRecord read_flow(Cursor& c) {
  FlowRecord f;
  f.device = c.u16("flow device");
  f.tuple = read_tuple(c);
  const std::uint8_t app = c.u8("app protocol");
  if (app > static_cast<std::uint8_t>(AppProtocol::kOtherUdp)) {
    c.fail("app protocol out of range");
  }
  f.app = static_cast<AppProtocol>(app);
  f.domain = c.str("flow domain");
  f.start = read_ts(c, "flow start");
  f.end = read_ts(c, "flow end");
  const std::size_t n = c.count("flow packets", kMinPacketSummaryBytes);
  f.packets.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    PacketSummary p;
    p.ts = read_ts(c, "summary ts");
    p.size = c.u32("summary size");
    p.dir = read_dir(c);
    p.local = read_bool(c, "summary local");
    f.packets.push_back(p);
  }
  const std::uint8_t truth = c.u8("truth kind");
  if (truth > static_cast<std::uint8_t>(EventKind::kAperiodic)) {
    c.fail("truth kind out of range");
  }
  f.truth = static_cast<EventKind>(truth);
  f.truth_label = c.str("truth label");
  return f;
}

/// Minimum serialized FlowRecord size (empty domain/label/packets) — the
/// count-cap unit for flow lists.
constexpr std::size_t kMinFlowBytes = 2 + 13 + 1 + 4 + 8 + 8 + 8 + 1 + 4;

void put_flows(std::string& out, const std::vector<FlowRecord>& flows) {
  put_u64(out, flows.size());
  for (const FlowRecord& f : flows) put_flow(out, f);
}

std::vector<FlowRecord> read_flows(Cursor& c, const char* what) {
  const std::size_t n = c.count(what, kMinFlowBytes);
  std::vector<FlowRecord> flows;
  flows.reserve(n);
  for (std::size_t i = 0; i < n; ++i) flows.push_back(read_flow(c));
  return flows;
}

// ---------------------------------------------------------------------------
// Section writers.

std::string write_engine(const WatchCheckpoint& cp) {
  std::string out;
  const CheckpointOptions& o = cp.options;
  put_i64(out, o.window_us);
  put_u64(out, o.retrain_every_windows);
  put_i64(out, o.burst_gap_us);
  put_u8(out, o.drop_infrastructure ? 1 : 0);
  put_i64(out, o.max_ts_regression_us);
  put_i64(out, o.reorder_horizon_us);
  put_u64(out, o.max_open_flows);
  put_u64(out, o.max_buffered_packets);
  const WatchEngineState& e = cp.engine;
  put_opt_ts(out, e.t0);
  put_opt_ts(out, e.last_watermark);
  put_u64(out, e.next_window);
  put_ts(out, e.max_end);
  put_u64(out, e.windows);
  put_u64(out, e.alerts);
  put_u64(out, e.model_version);
  put_u64(out, e.swaps);
  put_u8(out, e.swapped_pending_report ? 1 : 0);
  put_u8(out, e.done ? 1 : 0);
  put_u8(out, e.finished ? 1 : 0);
  put_u64(out, e.reported_force_sealed);
  put_u64(out, e.reported_late);
  return out;
}

void read_engine(Cursor& c, WatchCheckpoint& cp) {
  CheckpointOptions& o = cp.options;
  o.window_us = c.i64("window_us");
  if (o.window_us <= 0) c.fail("window_us not positive");
  o.retrain_every_windows = c.u64("retrain_every_windows");
  o.burst_gap_us = c.i64("burst_gap_us");
  o.drop_infrastructure = read_bool(c, "drop_infrastructure");
  o.max_ts_regression_us = c.i64("max_ts_regression_us");
  o.reorder_horizon_us = c.i64("reorder_horizon_us");
  o.max_open_flows = c.u64("max_open_flows");
  o.max_buffered_packets = c.u64("max_buffered_packets");
  WatchEngineState& e = cp.engine;
  e.t0 = read_opt_ts(c, "t0");
  e.last_watermark = read_opt_ts(c, "last_watermark");
  e.next_window = c.u64("next_window");
  e.max_end = read_ts(c, "max_end");
  e.windows = c.u64("windows");
  e.alerts = c.u64("alerts");
  e.model_version = c.u64("model_version");
  e.swaps = c.u64("swaps");
  e.swapped_pending_report = read_bool(c, "swapped_pending_report");
  e.done = read_bool(c, "done");
  e.finished = read_bool(c, "finished");
  e.reported_force_sealed = c.u64("reported_force_sealed");
  e.reported_late = c.u64("reported_late");
  if (!c.at_end()) c.fail("trailing bytes after engine state");
}

std::string write_assembler(const StreamingAssemblerState& a) {
  std::string out;
  put_u8(out, a.pending.has_value() ? 1 : 0);
  if (a.pending) put_packet(out, *a.pending);
  put_u64(out, a.decided);
  put_ts(out, a.running_max);
  put_ts(out, a.prev_effective);
  put_u64(out, a.reorder.size());
  for (const StreamingFlowAssembler::Buffered& b : a.reorder) {
    put_ts(out, b.effective);
    put_u64(out, b.seq);
    put_packet(out, b.packet);
  }
  put_u64(out, a.next_seq);
  put_ts(out, a.max_seen);
  put_ts(out, a.last_released);
  put_opt_ts(out, a.first_release);
  put_flows(out, a.open);
  put_flows(out, a.sealed);
  put_u8(out, a.finished ? 1 : 0);
  const StreamingAssemblerStats& st = a.stats;
  put_u64(out, st.packets_in);
  put_u64(out, st.flows_sealed);
  put_u64(out, st.flows_emitted);
  put_u64(out, st.infrastructure_dropped);
  put_u64(out, st.unresolved_emitted);
  put_u64(out, st.clamped_ts);
  put_u64(out, st.late_packets);
  put_u64(out, st.force_sealed);
  put_u64(out, st.force_released);
  put_u64(out, st.peak_open_flows);
  put_u64(out, st.peak_buffered_packets);
  return out;
}

/// Minimum serialized Packet (empty payload) — count-cap unit for the
/// reorder stage (each Buffered adds 16 bytes on top).
constexpr std::size_t kMinPacketBytes = 8 + 13 + 4 + 1 + 2 + 4;

void read_assembler(Cursor& c, StreamingAssemblerState& a) {
  if (read_bool(c, "pending flag")) a.pending = read_packet(c);
  a.decided = c.u64("decided");
  a.running_max = read_ts(c, "running_max");
  a.prev_effective = read_ts(c, "prev_effective");
  const std::size_t n_reorder = c.count("reorder stage", 16 + kMinPacketBytes);
  a.reorder.reserve(n_reorder);
  for (std::size_t i = 0; i < n_reorder; ++i) {
    StreamingFlowAssembler::Buffered b;
    b.effective = read_ts(c, "buffered effective");
    b.seq = c.u64("buffered seq");
    b.packet = read_packet(c);
    a.reorder.push_back(std::move(b));
  }
  a.next_seq = c.u64("next_seq");
  a.max_seen = read_ts(c, "max_seen");
  a.last_released = read_ts(c, "last_released");
  a.first_release = read_opt_ts(c, "first_release");
  a.open = read_flows(c, "open flows");
  a.sealed = read_flows(c, "sealed flows");
  a.finished = read_bool(c, "assembler finished");
  StreamingAssemblerStats& st = a.stats;
  st.packets_in = c.u64("packets_in");
  st.flows_sealed = c.u64("flows_sealed");
  st.flows_emitted = c.u64("flows_emitted");
  st.infrastructure_dropped = c.u64("infrastructure_dropped");
  st.unresolved_emitted = c.u64("unresolved_emitted");
  st.clamped_ts = c.u64("clamped_ts");
  st.late_packets = c.u64("late_packets");
  st.force_sealed = c.u64("force_sealed");
  st.force_released = c.u64("force_released");
  st.peak_open_flows = c.u64("peak_open_flows");
  st.peak_buffered_packets = c.u64("peak_buffered_packets");
  if (!c.at_end()) c.fail("trailing bytes after assembler state");
}

std::string write_monitor(const DeviationMonitorState& m) {
  std::string out;
  put_u64(out, m.last_seen.size());
  for (const auto& [device, group, ts] : m.last_seen) {
    put_u16(out, device);
    put_str(out, group);
    put_ts(out, ts);
  }
  put_u64(out, m.silence_reported.size());
  for (const auto& [device, group] : m.silence_reported) {
    put_u16(out, device);
    put_str(out, group);
  }
  put_u64(out, m.reported_sequences.size());
  for (const std::string& seq : m.reported_sequences) put_str(out, seq);
  put_u8(out, m.primed ? 1 : 0);
  return out;
}

void read_monitor(Cursor& c, DeviationMonitorState& m) {
  const std::size_t n_seen = c.count("last_seen", 2 + 4 + 8);
  m.last_seen.reserve(n_seen);
  for (std::size_t i = 0; i < n_seen; ++i) {
    const DeviceId device = c.u16("seen device");
    std::string group = c.str("seen group");
    m.last_seen.emplace_back(device, std::move(group),
                             read_ts(c, "seen ts"));
  }
  const std::size_t n_silence = c.count("silence_reported", 2 + 4);
  m.silence_reported.reserve(n_silence);
  for (std::size_t i = 0; i < n_silence; ++i) {
    const DeviceId device = c.u16("silence device");
    m.silence_reported.emplace_back(device, c.str("silence group"));
  }
  const std::size_t n_seq = c.count("reported_sequences", 4);
  m.reported_sequences.reserve(n_seq);
  for (std::size_t i = 0; i < n_seq; ++i) {
    m.reported_sequences.push_back(c.str("reported sequence"));
  }
  m.primed = read_bool(c, "primed");
  if (!c.at_end()) c.fail("trailing bytes after monitor state");
}

void put_bindings(std::string& out,
                  const std::vector<std::pair<std::uint32_t, std::string>>& b) {
  put_u64(out, b.size());
  for (const auto& [ip, domain] : b) {
    put_u32(out, ip);
    put_str(out, domain);
  }
}

std::vector<std::pair<std::uint32_t, std::string>> read_bindings(
    Cursor& c, const char* what) {
  const std::size_t n = c.count(what, 4 + 4);
  std::vector<std::pair<std::uint32_t, std::string>> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint32_t ip = c.u32("binding ip");
    out.emplace_back(ip, c.str("binding domain"));
  }
  return out;
}

std::string write_resolver(const DomainResolverState& r) {
  std::string out;
  put_bindings(out, r.dns);
  put_bindings(out, r.sni);
  put_bindings(out, r.reverse_dns);
  return out;
}

void read_resolver(Cursor& c, DomainResolverState& r) {
  r.dns = read_bindings(c, "dns bindings");
  r.sni = read_bindings(c, "sni bindings");
  r.reverse_dns = read_bindings(c, "reverse-dns bindings");
  if (!c.at_end()) c.fail("trailing bytes after resolver state");
}

std::string write_models(const WatchCheckpoint& cp) {
  std::string out;
  put_u64(out, cp.model_version);
  put_str(out, cp.models_image);
  return out;
}

void read_models(Cursor& c, WatchCheckpoint& cp) {
  cp.model_version = c.u64("model handle version");
  cp.models_image = c.str("embedded model image");
  if (!c.at_end()) c.fail("trailing bytes after models section");
}

std::string write_frontend(const WatchCheckpoint& cp) {
  std::string out;
  put_u64(out, cp.input_offset);
  put_str(out, cp.alerts_json);
  return out;
}

void read_frontend(Cursor& c, WatchCheckpoint& cp) {
  cp.input_offset = c.u64("input offset");
  cp.alerts_json = c.str("alerts json");
  if (!c.at_end()) c.fail("trailing bytes after frontend section");
}

std::string write_health(const obs::HealthSnapshot& snap) {
  std::string out;
  put_u64(out, snap.components.size());
  for (const obs::ComponentHealth& comp : snap.components) {
    put_str(out, comp.component);
    put_u8(out, static_cast<std::uint8_t>(comp.state));
    put_u64(out, comp.incidents);
    put_u64(out, comp.reasons.size());
    for (const std::string& r : comp.reasons) put_str(out, r);
    put_u64(out, comp.quarantined.size());
    for (const obs::QuarantineRecord& q : comp.quarantined) {
      put_str(out, q.key);
      put_str(out, q.reason);
    }
  }
  return out;
}

void read_health(Cursor& c, obs::HealthSnapshot& snap) {
  const std::size_t n = c.count("health components", 4 + 1 + 8 + 8 + 8);
  snap.components.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    obs::ComponentHealth comp;
    comp.component = c.str("component name");
    const std::uint8_t state = c.u8("component state");
    if (state > static_cast<std::uint8_t>(obs::ComponentState::kQuarantined)) {
      c.fail("component state out of range");
    }
    comp.state = static_cast<obs::ComponentState>(state);
    comp.incidents = c.u64("incidents");
    const std::size_t n_reasons = c.count("reasons", 4);
    comp.reasons.reserve(n_reasons);
    for (std::size_t r = 0; r < n_reasons; ++r) {
      comp.reasons.push_back(c.str("reason"));
    }
    const std::size_t n_quar = c.count("quarantined", 4 + 4);
    comp.quarantined.reserve(n_quar);
    for (std::size_t q = 0; q < n_quar; ++q) {
      obs::QuarantineRecord rec;
      rec.key = c.str("quarantine key");
      rec.reason = c.str("quarantine reason");
      comp.quarantined.push_back(std::move(rec));
    }
    snap.components.push_back(std::move(comp));
  }
  if (!c.at_end()) c.fail("trailing bytes after health section");
}

}  // namespace

std::string save_checkpoint(const WatchCheckpoint& cp) {
  const std::pair<std::uint32_t, std::string> sections[] = {
      {kCkptSectionEngine, write_engine(cp)},
      {kCkptSectionAssembler, write_assembler(cp.engine.assembler)},
      {kCkptSectionMonitor, write_monitor(cp.engine.monitor)},
      {kCkptSectionResolver, write_resolver(cp.engine.resolver)},
      {kCkptSectionModels, write_models(cp)},
      {kCkptSectionFrontend, write_frontend(cp)},
      {kCkptSectionRetrain,
       [&] {
         std::string out;
         put_flows(out, cp.engine.retrain_buffer);
         return out;
       }()},
      {kCkptSectionHealth, write_health(cp.health)},
  };
  return binio::build_image(kBbcFormat, sections);
}

WatchCheckpoint load_checkpoint(std::span<const std::uint8_t> bytes,
                                ParsePolicy policy, ParseStats* stats) {
  const ImageLayout layout = binio::parse_layout(bytes, kBbcFormat);
  if (!layout.crc_ok && policy == ParsePolicy::kStrict) {
    binio::throw_crc_mismatch(layout, kBbcFormat);
  }
  if (!layout.crc_ok && stats != nullptr) ++stats->malformed;

  WatchCheckpoint cp;
  bool seen[9] = {};
  for (const SectionEntry& entry : layout.sections) {
    Cursor c(bytes.subspan(entry.offset, entry.size), entry.offset,
             section_name(entry.id), kBbcFormat.tag);
    try {
      switch (entry.id) {
        case kCkptSectionEngine: read_engine(c, cp); break;
        case kCkptSectionAssembler:
          read_assembler(c, cp.engine.assembler);
          break;
        case kCkptSectionMonitor: read_monitor(c, cp.engine.monitor); break;
        case kCkptSectionResolver: read_resolver(c, cp.engine.resolver); break;
        case kCkptSectionModels: read_models(c, cp); break;
        case kCkptSectionFrontend: read_frontend(c, cp); break;
        case kCkptSectionRetrain:
          cp.engine.retrain_buffer = read_flows(c, "retrain buffer");
          if (!c.at_end()) c.fail("trailing bytes after retrain buffer");
          break;
        case kCkptSectionHealth: read_health(c, cp.health); break;
        default:
          // Unknown section from a newer minor revision: skip its bytes.
          break;
      }
    } catch (const SerializationError&) {
      // Only damage in state a resume can do without is droppable: the
      // health snapshot restores operator-facing context, not behavior.
      // Everything else is load-bearing — resuming from a guessed engine
      // state would break the byte-identity guarantee silently, which is
      // worse than failing over to FILE.prev loudly.
      if (policy == ParsePolicy::kStrict || entry.id != kCkptSectionHealth) {
        throw;
      }
      cp.health = {};
      if (stats != nullptr) ++stats->sections_dropped;
      continue;
    }
    if (entry.id >= 1 && entry.id <= 8) seen[entry.id] = true;
  }
  for (std::uint32_t id = kCkptSectionEngine; id <= kCkptSectionRetrain;
       ++id) {
    if (!seen[id]) {
      throw SerializationError(std::string("bbc: missing required section: ") +
                               section_name(id));
    }
  }
  return cp;
}

bool write_checkpoint_rotating(const std::string& path,
                               const WatchCheckpoint& cp, std::string* error) {
  const std::string image = save_checkpoint(cp);
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    obs::crash_point("checkpoint.before_rotate");
    // rename(2) is atomic and replaces any stale .prev; after it, the
    // previous generation is intact under its new name even if we die
    // before (or while) writing the new one.
    std::filesystem::rename(path, path + ".prev", ec);
    if (ec) {
      if (error != nullptr) {
        *error = "rotate failed: " + path + ": " + ec.message();
      }
      return false;
    }
    obs::crash_point("checkpoint.after_rotate");
  }
  if (!obs::write_file_atomic(path, image, error)) return false;
  obs::crash_point("checkpoint.after_write");
  return true;
}

namespace {

WatchCheckpoint load_checkpoint_file(const std::string& path,
                                     ParsePolicy policy, ParseStats* stats) {
  std::ifstream file(path, std::ios::binary);
  if (!file) throw SerializationError("cannot open for read: " + path);
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) throw SerializationError("not a readable checkpoint file: " + path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 && !file.read(reinterpret_cast<char*>(bytes.data()),
                             static_cast<std::streamsize>(size))) {
    throw SerializationError("read failed: " + path);
  }
  return load_checkpoint(bytes, policy, stats);
}

}  // namespace

WatchCheckpoint load_checkpoint_resilient(const std::string& path,
                                          std::string* source,
                                          ParseStats* stats) {
  try {
    WatchCheckpoint cp = load_checkpoint_file(path, ParsePolicy::kStrict,
                                              stats);
    if (source != nullptr) *source = path;
    return cp;
  } catch (const SerializationError& primary) {
    const std::string prev = path + ".prev";
    try {
      WatchCheckpoint cp =
          load_checkpoint_file(prev, ParsePolicy::kLenient, stats);
      if (source != nullptr) *source = prev;
      return cp;
    } catch (const SerializationError&) {
      // The fallback failing is secondary; report why the primary did.
      throw primary;
    }
  }
}

}  // namespace behaviot
