#include "behaviot/core/serialize.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <iomanip>
#include <locale>
#include <optional>
#include <sstream>
#include <string_view>

#include "behaviot/core/serialize_binary.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/snapshot.hpp"

namespace behaviot {
namespace {

void put_double(std::ostream& os, double v) {
  // Locale-independent, byte-identical to the former
  // `os << std::hexfloat << v`: to_chars emits the same shortest hexfloat
  // this toolchain's num_put did, minus the 0x prefix (restored here) and
  // with non-finite values spelled "inf(f)"/"nan" instead of the stream's
  // "inf"/"-inf"/"nan"/"-nan" (special-cased here).
  if (std::isnan(v)) {
    os << (std::signbit(v) ? "-nan" : "nan");
    return;
  }
  if (std::isinf(v)) {
    os << (std::signbit(v) ? "-inf" : "inf");
    return;
  }
  char buf[48];
  char* p = buf;
  if (std::signbit(v)) {
    *p++ = '-';
    v = -v;
  }
  *p++ = '0';
  *p++ = 'x';
  const auto [end, ec] =
      std::to_chars(p, buf + sizeof(buf), v, std::chars_format::hex);
  os.write(buf, end - buf);
}

double get_double(std::istream& is) {
  std::string token;
  if (!(is >> token)) throw SerializationError("unexpected end of input");
  // Parsed with from_chars, never strtod: strtod's radix character follows
  // the C global locale, so under a comma-decimal locale it rejects the
  // '.' in "0x1.8p+3" — the exact corruption this loader must not have.
  std::string_view sv = token;
  bool negative = false;
  if (!sv.empty() && (sv.front() == '+' || sv.front() == '-')) {
    negative = sv.front() == '-';
    sv.remove_prefix(1);
  }
  double v = 0.0;
  std::from_chars_result r{};
  if (sv.size() > 2 && sv[0] == '0' && (sv[1] == 'x' || sv[1] == 'X')) {
    r = std::from_chars(sv.data() + 2, sv.data() + sv.size(), v,
                        std::chars_format::hex);
  } else {
    // Decimal/scientific plus the "inf"/"nan" spellings the writer emits.
    r = std::from_chars(sv.data(), sv.data() + sv.size(), v,
                        std::chars_format::general);
  }
  if (sv.empty() || r.ec != std::errc{} || r.ptr != sv.data() + sv.size()) {
    throw SerializationError("malformed floating-point value: " + token);
  }
  return negative ? -v : v;
}

std::string get_token(std::istream& is, const char* what) {
  std::string token;
  if (!(is >> token)) {
    throw SerializationError(std::string("missing token: ") + what);
  }
  return token;
}

// Parses a non-negative integer token. Unlike std::stoul, a leading '-'
// (which stoul silently wraps to 2^64-1) or any other non-digit rejects.
std::size_t get_count(std::istream& is, const char* what) {
  const std::string token = get_token(is, what);
  const bool digits_only =
      !token.empty() && std::all_of(token.begin(), token.end(), [](char c) {
        return std::isdigit(static_cast<unsigned char>(c)) != 0;
      });
  std::size_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (!digits_only || ec != std::errc{} || ptr != token.data() + token.size()) {
    throw SerializationError(std::string("malformed count for ") + what +
                             ": " + token);
  }
  return value;
}

// Bytes left in the stream, or nullopt when the stream is not seekable.
std::optional<std::size_t> remaining_bytes(std::istream& is) {
  const auto pos = is.tellg();
  if (pos == std::istream::pos_type(-1)) return std::nullopt;
  is.seekg(0, std::ios::end);
  const auto end = is.tellg();
  is.seekg(pos);
  if (end == std::istream::pos_type(-1) || end < pos) return std::nullopt;
  return static_cast<std::size_t>(end - pos);
}

// For counts that size a loop or a reserve(): every serialized element
// occupies at least two bytes (one token character plus a separator), so a
// count exceeding the remaining input is malformed — reject it before it
// reaches reserve() and turns a corrupt file into a bad_alloc/OOM.
std::size_t get_size_count(std::istream& is, const char* what) {
  const std::size_t value = get_count(is, what);
  const auto remaining = remaining_bytes(is);
  if (remaining.has_value() && value > *remaining) {
    throw SerializationError(std::string("count for ") + what + " (" +
                             std::to_string(value) +
                             ") exceeds remaining input (" +
                             std::to_string(*remaining) + " bytes)");
  }
  return value;
}

void expect(std::istream& is, const std::string& keyword) {
  const std::string token = get_token(is, keyword.c_str());
  if (token != keyword) {
    throw SerializationError("expected '" + keyword + "', got '" + token +
                             "'");
  }
}

}  // namespace

void save_models(std::ostream& os, const BehaviorModelSet& models) {
  // A grouping locale would insert thousands separators into the integer
  // insertions below; pin the stream to the classic ("C") locale so the file
  // bytes never depend on the embedding application's global locale.
  os.imbue(std::locale::classic());
  os << "behaviot-models v" << kModelFormatVersion << "\n";

  // --- periodic models ---
  os << "periodic " << models.periodic.size() << "\n";
  for (const PeriodicModel& m : models.periodic.all()) {
    os << m.device << ' ' << static_cast<int>(m.app) << ' ';
    put_double(os, m.period_seconds);
    os << ' ';
    put_double(os, m.tolerance_seconds);
    os << ' ';
    put_double(os, m.autocorr_score);
    os << ' ' << m.support << ' '
       << (m.domain.empty() ? "-" : m.domain) << ' ' << m.group << ' '
       << m.secondary_periods.size();
    for (double p : m.secondary_periods) {
      os << ' ';
      put_double(os, p);
    }
    // Optional trailer, omitted when zero so files from sets that never went
    // through a retrain merge stay byte-identical to the v-format they had
    // before absence tracking existed.
    if (m.absent_generations > 0) os << " absent " << m.absent_generations;
    os << "\n";
  }

  // --- PFSM ---
  os << "pfsm " << models.pfsm.num_states() << "\n";
  for (std::size_t s = 2; s < models.pfsm.num_states(); ++s) {
    os << models.pfsm.label(static_cast<int>(s)) << "\n";
  }
  const auto transitions = models.pfsm.transitions();
  os << "transitions " << transitions.size() << "\n";
  for (const auto& t : transitions) {
    os << t.from << ' ' << t.to << ' ' << t.count << "\n";
  }

  // --- thresholds ---
  os << "thresholds ";
  put_double(os, models.thresholds.periodic);
  os << ' ';
  put_double(os, models.thresholds.long_term_z);
  os << ' ';
  put_double(os, models.short_term.mean);
  os << ' ';
  put_double(os, models.short_term.sigma);
  os << ' ';
  put_double(os, models.short_term.n_sigma);
  os << "\n";

  // --- training traces (label sequences) ---
  os << "traces " << models.training_traces.size() << "\n";
  for (const auto& trace : models.training_traces) {
    os << trace.size();
    for (const auto& label : trace) os << ' ' << label;
    os << "\n";
  }
}

void save_models_file(const std::string& path,
                      const BehaviorModelSet& models) {
  // Serialize fully in memory, then replace the target atomically: a watch
  // daemon killed mid-publish (or a fleet reader racing the write) sees the
  // previous complete generation or the new one, never a torn prefix. The
  // format still dispatches on the *target* extension, not the temp name.
  std::string payload;
  if (is_binary_model_path(path)) {
    payload = save_models_binary(models);
  } else {
    std::ostringstream os;
    save_models(os, models);
    payload = os.str();
  }
  std::string error;
  if (!obs::write_file_atomic(path, payload, &error)) {
    throw SerializationError("cannot write models: " + error);
  }
}

BehaviorModelSet load_models(std::istream& is, ParsePolicy policy,
                             ParseStats* stats) {
  // Mirror of save_models: token extraction (`is >> token`) classifies
  // whitespace through the stream's locale, so pin it too.
  is.imbue(std::locale::classic());
  BehaviorModelSet models;
  // Under kLenient a SerializationError past the header stops parsing at the
  // damage instead of propagating: completed entries stay committed, the
  // abandonment is counted, and whatever parsed so far is returned.
  const auto drop_section = [&](const SerializationError&) {
    if (policy == ParsePolicy::kStrict) throw;
    if (stats != nullptr) ++stats->sections_dropped;
    obs::counter("ingest.sections_dropped").inc();
  };

  const std::string magic = get_token(is, "magic");
  const std::string version = get_token(is, "version");
  if (magic != "behaviot-models" ||
      version != "v" + std::to_string(kModelFormatVersion)) {
    throw SerializationError("unsupported format: " + magic + " " + version);
  }

  // --- periodic models ---
  std::vector<PeriodicModel> periodic;
  try {
    expect(is, "periodic");
    const std::size_t n_periodic = get_size_count(is, "periodic count");
    periodic.reserve(n_periodic);
    for (std::size_t i = 0; i < n_periodic; ++i) {
      PeriodicModel m;
      m.device = static_cast<DeviceId>(get_count(is, "device"));
      m.app = static_cast<AppProtocol>(get_count(is, "app"));
      m.period_seconds = get_double(is);
      m.tolerance_seconds = get_double(is);
      m.autocorr_score = get_double(is);
      m.support = get_count(is, "support");
      m.domain = get_token(is, "domain");
      if (m.domain == "-") m.domain.clear();
      m.group = get_token(is, "group");
      const std::size_t n_secondary = get_size_count(is, "secondary count");
      for (std::size_t k = 0; k < n_secondary; ++k) {
        m.secondary_periods.push_back(get_double(is));
      }
      // Optional "absent <n>" trailer. The next token otherwise starts with
      // a digit (next model's device id) or 'p' ("pfsm"), so one character
      // of lookahead disambiguates.
      is >> std::ws;
      if (is.peek() == 'a') {
        expect(is, "absent");
        m.absent_generations = get_count(is, "absent generations");
      }
      periodic.push_back(std::move(m));
    }
  } catch (const SerializationError& e) {
    drop_section(e);
    models.periodic = PeriodicModelSet::from_models(std::move(periodic));
    return models;
  }
  models.periodic = PeriodicModelSet::from_models(std::move(periodic));

  // --- PFSM ---
  try {
    expect(is, "pfsm");
    const std::size_t n_states = get_size_count(is, "state count");
    if (n_states < 2) throw SerializationError("pfsm needs >= 2 states");
    for (std::size_t s = 2; s < n_states; ++s) {
      models.pfsm.add_state(get_token(is, "state label"));
    }
    expect(is, "transitions");
    const std::size_t n_transitions = get_size_count(is, "transition count");
    for (std::size_t t = 0; t < n_transitions; ++t) {
      const auto from = static_cast<int>(get_count(is, "from"));
      const auto to = static_cast<int>(get_count(is, "to"));
      const std::size_t count = get_count(is, "count");
      if (from < 0 || to < 0 ||
          static_cast<std::size_t>(from) >= n_states ||
          static_cast<std::size_t>(to) >= n_states) {
        throw SerializationError("transition references unknown state");
      }
      models.pfsm.add_transition(from, to, count);
    }
  } catch (const SerializationError& e) {
    drop_section(e);
    models.pfsm.finalize();
    return models;
  }
  models.pfsm.finalize();

  // --- thresholds ---
  try {
    expect(is, "thresholds");
    const double periodic_thr = get_double(is);
    const double long_term_z = get_double(is);
    const double mean = get_double(is);
    const double sigma = get_double(is);
    const double n_sigma = get_double(is);
    models.thresholds.periodic = periodic_thr;
    models.thresholds.long_term_z = long_term_z;
    models.short_term.mean = mean;
    models.short_term.sigma = sigma;
    models.short_term.n_sigma = n_sigma;
    models.thresholds.short_term = models.short_term.value();
  } catch (const SerializationError& e) {
    drop_section(e);
    return models;
  }

  // --- training traces ---
  try {
    expect(is, "traces");
    const std::size_t n_traces = get_size_count(is, "trace count");
    for (std::size_t t = 0; t < n_traces; ++t) {
      const std::size_t len = get_size_count(is, "trace length");
      std::vector<std::string> trace;
      trace.reserve(len);
      for (std::size_t i = 0; i < len; ++i) {
        trace.push_back(get_token(is, "trace label"));
      }
      models.training_traces.push_back(std::move(trace));
    }
  } catch (const SerializationError& e) {
    drop_section(e);
  }
  return models;
}

BehaviorModelSet load_models_file(const std::string& path, ParsePolicy policy,
                                  ParseStats* stats) {
  if (is_binary_model_path(path)) {
    return load_models_binary_file(path, policy, stats);
  }
  std::ifstream file(path);
  if (!file) throw SerializationError("cannot open for read: " + path);
  return load_models(file, policy, stats);
}

}  // namespace behaviot
