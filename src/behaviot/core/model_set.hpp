// The complete behavior model of an IoT deployment (Fig. 1's gray boxes):
// periodic models + user-action models (device behavior, §4.1) and the PFSM
// (system behavior, §4.2), plus the calibrated deviation thresholds (§5.3).
#pragma once

#include "behaviot/deviation/short_term_metric.hpp"
#include "behaviot/deviation/thresholds.hpp"
#include "behaviot/ml/user_action_model.hpp"
#include "behaviot/periodic/periodic_model.hpp"
#include "behaviot/pfsm/synoptic.hpp"

namespace behaviot {

struct BehaviorModelSet {
  PeriodicModelSet periodic;
  UserActionModels user_actions;
  Pfsm pfsm;
  /// Inference metadata: mined invariants, refinement steps.
  std::vector<Invariant> invariants;
  std::size_t pfsm_refinements = 0;
  /// Short-term threshold calibrated on the training traces.
  ShortTermThreshold short_term;
  DeviationThresholds thresholds;
  /// Training traces (label form), kept for evaluation and ablation.
  std::vector<std::vector<std::string>> training_traces;
};

}  // namespace behaviot
