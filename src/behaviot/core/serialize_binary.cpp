#include "behaviot/core/serialize_binary.hpp"

#include <bit>
#include <cctype>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <ostream>
#include <system_error>
#include <utility>
#include <vector>

#include "behaviot/core/binary_io.hpp"
#include "behaviot/flow/features.hpp"
#include "behaviot/obs/metrics.hpp"

namespace behaviot {
namespace {

using binio::Cursor;
using binio::ImageLayout;
using binio::SectionEntry;
using binio::put_f64;
using binio::put_f64_array;
using binio::put_i32;
using binio::put_str;
using binio::put_u32;
using binio::put_u64;
using binio::put_u8;

// Section ids. Unknown ids are skipped on load (their size is in the table),
// so a minor format extension can add sections without a version bump.

constexpr binio::ImageFormat kBbmFormat{kBinaryModelMagic,
                                        kBinaryModelFormatVersion, "bbm",
                                        "binary model"};

ImageLayout parse_layout(std::span<const std::uint8_t> bytes) {
  return binio::parse_layout(bytes, kBbmFormat);
}

[[noreturn]] void throw_crc_mismatch(const ImageLayout& layout) {
  binio::throw_crc_mismatch(layout, kBbmFormat);
}

Cursor section_cursor(std::span<const std::uint8_t> bytes,
                      std::size_t file_offset, const char* section) {
  return Cursor(bytes, file_offset, section, kBbmFormat.tag);
}

// ---------------------------------------------------------------------------
// Section writers.

std::string write_periodic(const BehaviorModelSet& models) {
  std::string out;
  put_u64(out, models.periodic.size());
  for (const PeriodicModel& m : models.periodic.all()) {
    put_u32(out, static_cast<std::uint32_t>(m.device));
    put_u8(out, static_cast<std::uint8_t>(m.app));
    put_u64(out, m.support);
    put_u64(out, m.absent_generations);
    put_f64(out, m.period_seconds);
    put_f64(out, m.tolerance_seconds);
    put_f64(out, m.autocorr_score);
    put_str(out, m.domain);
    put_str(out, m.group);
    put_u64(out, m.secondary_periods.size());
    put_f64_array(out, m.secondary_periods);
  }
  return out;
}

std::string write_pfsm(const BehaviorModelSet& models) {
  std::string out;
  put_u64(out, models.pfsm.num_states());
  for (std::size_t s = 2; s < models.pfsm.num_states(); ++s) {
    put_str(out, models.pfsm.label(static_cast<int>(s)));
  }
  const auto transitions = models.pfsm.transitions();
  put_u64(out, transitions.size());
  for (const auto& t : transitions) {
    put_u32(out, static_cast<std::uint32_t>(t.from));
    put_u32(out, static_cast<std::uint32_t>(t.to));
    put_u64(out, t.count);
  }
  return out;
}

std::string write_thresholds(const BehaviorModelSet& models) {
  std::string out;
  put_f64(out, models.thresholds.periodic);
  put_f64(out, models.thresholds.long_term_z);
  put_f64(out, models.short_term.mean);
  put_f64(out, models.short_term.sigma);
  put_f64(out, models.short_term.n_sigma);
  return out;
}

std::string write_traces(const BehaviorModelSet& models) {
  std::string out;
  put_u64(out, models.training_traces.size());
  for (const auto& trace : models.training_traces) {
    put_u64(out, trace.size());
    for (const auto& label : trace) put_str(out, label);
  }
  return out;
}

std::string write_forests(const BehaviorModelSet& models) {
  std::string out;
  put_f64(out, models.user_actions.decision_threshold());
  const auto& by_device = models.user_actions.classifiers();
  put_u64(out, by_device.size());
  for (const auto& [device, classifiers] : by_device) {
    put_u32(out, static_cast<std::uint32_t>(device));
    put_u64(out, classifiers.size());
    for (const auto& c : classifiers) {
      put_str(out, c.activity);
      put_u32(out, static_cast<std::uint32_t>(c.forest.num_classes()));
      put_u64(out, c.forest.num_trees());
      for (const DecisionTree& tree : c.forest.trees()) {
        put_u64(out, tree.nodes().size());
        for (const DecisionTree::Node& node : tree.nodes()) {
          put_i32(out, node.feature);
          put_f64(out, node.threshold);
          put_i32(out, node.left);
          put_i32(out, node.right);
          put_u64(out, node.distribution.size());
          put_f64_array(out, node.distribution);
        }
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Section readers. Each consumes exactly its section span; trailing bytes
// inside a section are structural corruption (strict) / a drop (lenient).

/// One periodic record decoded in place — shared by the materializing
/// loader (via PeriodicModelView::materialize) and the zero-copy view.
PeriodicModelView read_periodic_model_view(Cursor& c) {
  PeriodicModelView v;
  v.device = static_cast<DeviceId>(c.u32("device"));
  v.app = static_cast<AppProtocol>(c.u8("app protocol"));
  v.support = c.u64("support");
  v.absent_generations = c.u64("absent generations");
  v.period_seconds = c.f64("period");
  v.tolerance_seconds = c.f64("tolerance");
  v.autocorr_score = c.f64("autocorr score");
  v.domain = c.str_view("domain");
  v.group = c.str_view("group");
  v.secondary_period_count = c.count("secondary period count", sizeof(double));
  v.secondary_period_bytes =
      c.f64_array_bytes(v.secondary_period_count, "secondary periods");
  return v;
}

void read_periodic(Cursor& c, BehaviorModelSet& models) {
  // Fixed part per model: u32 + u8 + 2×u64 + 3×f64 + 2×(u32 len) + u64.
  const std::size_t n = c.count("periodic model count", 61);
  std::vector<PeriodicModel> periodic;
  periodic.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    periodic.push_back(read_periodic_model_view(c).materialize());
  }
  if (!c.at_end()) c.fail("trailing bytes after periodic models");
  models.periodic = PeriodicModelSet::from_models(std::move(periodic));
}

void read_pfsm(Cursor& c, BehaviorModelSet& models) {
  const std::size_t n_states = c.count("pfsm state count", 4);
  if (n_states < 2) c.fail("pfsm needs >= 2 states");
  for (std::size_t s = 2; s < n_states; ++s) {
    models.pfsm.add_state(c.str("state label"));
  }
  const std::size_t n_transitions = c.count("pfsm transition count", 16);
  for (std::size_t t = 0; t < n_transitions; ++t) {
    const auto from = static_cast<int>(c.u32("transition from"));
    const auto to = static_cast<int>(c.u32("transition to"));
    const auto count = static_cast<std::size_t>(c.u64("transition count"));
    if (static_cast<std::size_t>(from) >= n_states ||
        static_cast<std::size_t>(to) >= n_states) {
      c.fail("transition references unknown state");
    }
    models.pfsm.add_transition(from, to, count);
  }
  if (!c.at_end()) c.fail("trailing bytes after pfsm");
}

void read_thresholds(Cursor& c, BehaviorModelSet& models) {
  const double periodic = c.f64("periodic threshold");
  const double long_term_z = c.f64("long-term z");
  const double mean = c.f64("short-term mean");
  const double sigma = c.f64("short-term sigma");
  const double n_sigma = c.f64("short-term n_sigma");
  if (!c.at_end()) c.fail("trailing bytes after thresholds");
  models.thresholds.periodic = periodic;
  models.thresholds.long_term_z = long_term_z;
  models.short_term.mean = mean;
  models.short_term.sigma = sigma;
  models.short_term.n_sigma = n_sigma;
  models.thresholds.short_term = models.short_term.value();
}

void read_traces(Cursor& c, BehaviorModelSet& models) {
  const std::size_t n_traces = c.count("trace count", 8);
  // Parse into a scratch vector and commit only after the section fully
  // parses: a lenient drop of a damaged traces section must not leave its
  // partial traces behind (mirrors read_periodic/read_forests).
  std::vector<std::vector<std::string>> traces;
  traces.reserve(n_traces);
  for (std::size_t t = 0; t < n_traces; ++t) {
    const std::size_t len = c.count("trace length", 4);
    std::vector<std::string> trace;
    trace.reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      trace.push_back(c.str("trace label"));
    }
    traces.push_back(std::move(trace));
  }
  if (!c.at_end()) c.fail("trailing bytes after traces");
  models.training_traces = std::move(traces);
}

void read_forests(Cursor& c, BehaviorModelSet& models) {
  const double decision_threshold = c.f64("decision threshold");
  const std::size_t n_devices = c.count("forest device count", 12);
  UserActionModels::ClassifierMap classifiers;
  for (std::size_t d = 0; d < n_devices; ++d) {
    const auto device = static_cast<DeviceId>(c.u32("forest device id"));
    const std::size_t n_classifiers = c.count("classifier count", 16);
    auto& list = classifiers[device];
    list.reserve(n_classifiers);
    for (std::size_t k = 0; k < n_classifiers; ++k) {
      UserActionModels::BinaryClassifier bc;
      bc.activity = c.str("activity");
      // Classify reads predict_proba(row)[1], so a forest with fewer than
      // two classes would index past its leaf distributions.
      const auto num_classes = static_cast<int>(c.u32("class count"));
      if (num_classes < 2 || num_classes > 1 << 20) {
        c.fail("implausible class count");
      }
      const std::size_t n_trees = c.count("tree count", 8);
      std::vector<DecisionTree> trees;
      trees.reserve(n_trees);
      for (std::size_t t = 0; t < n_trees; ++t) {
        const std::size_t n_nodes = c.count("node count", 24);
        std::vector<DecisionTree::Node> nodes;
        nodes.reserve(n_nodes);
        for (std::size_t i = 0; i < n_nodes; ++i) {
          DecisionTree::Node node;
          node.feature = c.i32("node feature");
          node.threshold = c.f64("node threshold");
          node.left = c.i32("node left");
          node.right = c.i32("node right");
          const std::size_t dist =
              c.count("distribution length", sizeof(double));
          c.f64_array(node.distribution, dist, "node distribution");
          // DecisionTree::predict_proba walks nodes with no bounds checks,
          // so every invariant it relies on is enforced here: a leaf
          // (feature == -1, the only negative value the writer emits) has
          // no children and a full per-class distribution; an internal
          // node splits on a real flow feature and points both children
          // strictly forward (the builder lays children out after their
          // parent, so forward-only edges also preclude cycles and
          // self-references).
          if (node.feature < 0) {
            if (node.feature != -1 || node.left != -1 || node.right != -1) {
              c.fail("malformed leaf node");
            }
            if (node.distribution.size() !=
                static_cast<std::size_t>(num_classes)) {
              c.fail("leaf distribution length != class count");
            }
          } else {
            if (node.feature >= static_cast<int>(kNumFlowFeatures)) {
              c.fail("node feature out of range");
            }
            if (node.left <= static_cast<int>(i) ||
                node.right <= static_cast<int>(i) ||
                node.left >= static_cast<int>(n_nodes) ||
                node.right >= static_cast<int>(n_nodes)) {
              c.fail("tree child index out of range");
            }
          }
          nodes.push_back(std::move(node));
        }
        trees.push_back(
            DecisionTree::from_nodes(num_classes, std::move(nodes)));
      }
      bc.forest = RandomForest::from_trees(num_classes, std::move(trees));
      list.push_back(std::move(bc));
    }
  }
  if (!c.at_end()) c.fail("trailing bytes after forests");
  models.user_actions = UserActionModels::from_classifiers(
      std::move(classifiers), decision_threshold);
}

const char* section_name(std::uint32_t id) {
  switch (id) {
    case kSectionPeriodic:
      return "periodic";
    case kSectionPfsm:
      return "pfsm";
    case kSectionThresholds:
      return "thresholds";
    case kSectionTraces:
      return "traces";
    case kSectionForests:
      return "forests";
    default:
      return "unknown";
  }
}

}  // namespace

std::string save_models_binary(const BehaviorModelSet& models) {
  const std::pair<std::uint32_t, std::string> sections[] = {
      {kSectionPeriodic, write_periodic(models)},
      {kSectionPfsm, write_pfsm(models)},
      {kSectionThresholds, write_thresholds(models)},
      {kSectionTraces, write_traces(models)},
      {kSectionForests, write_forests(models)},
  };
  return binio::build_image(kBbmFormat, sections);
}

void save_models_binary(std::ostream& os, const BehaviorModelSet& models) {
  const std::string bytes = save_models_binary(models);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void save_models_binary_file(const std::string& path,
                             const BehaviorModelSet& models) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) throw SerializationError("cannot open for write: " + path);
  save_models_binary(file, models);
  if (!file) throw SerializationError("write failed: " + path);
}

BehaviorModelSet load_models_binary(std::span<const std::uint8_t> bytes,
                                    ParsePolicy policy, ParseStats* stats) {
  // Header, section table and CRC trailer are structural: parse_layout
  // throws under either policy, like the text magic line.
  const ImageLayout layout = parse_layout(bytes);
  if (!layout.crc_ok && policy == ParsePolicy::kStrict) {
    throw_crc_mismatch(layout);
  }
  // Lenient: parsing continues — every section walk below is bounds-checked,
  // so flipped payload bytes surface as dropped sections or bounded wrong
  // values, never as a crash or an oversized allocation. The damage is
  // disclosed through the stats.
  if (!layout.crc_ok && stats != nullptr) ++stats->malformed;
  const std::vector<SectionEntry>& table = layout.sections;

  // --- sections: per-section strict/lenient, resynchronized by the table ---
  BehaviorModelSet models;
  bool pfsm_loaded = false;
  const auto drop_section = [&](const SerializationError&) {
    if (policy == ParsePolicy::kStrict) throw;
    if (stats != nullptr) ++stats->sections_dropped;
    obs::counter("ingest.sections_dropped").inc();
  };
  for (const SectionEntry& entry : table) {
    Cursor c = section_cursor(bytes.subspan(entry.offset, entry.size),
                              entry.offset, section_name(entry.id));
    try {
      switch (entry.id) {
        case kSectionPeriodic:
          read_periodic(c, models);
          break;
        case kSectionPfsm: {
          // A half-parsed PFSM (states added, then a bad transition) must
          // not leak into the result; parse into a scratch set and commit
          // whole.
          BehaviorModelSet scratch;
          read_pfsm(c, scratch);
          models.pfsm = std::move(scratch.pfsm);
          pfsm_loaded = true;
          break;
        }
        case kSectionThresholds:
          read_thresholds(c, models);
          break;
        case kSectionTraces:
          read_traces(c, models);
          break;
        case kSectionForests:
          read_forests(c, models);
          break;
        default:
          // Unknown section from a newer minor revision: skip its bytes.
          break;
      }
    } catch (const SerializationError& e) {
      drop_section(e);
    }
  }
  if (pfsm_loaded) models.pfsm.finalize();
  return models;
}

BehaviorModelSet load_models_binary_file(const std::string& path,
                                         ParsePolicy policy,
                                         ParseStats* stats) {
  // One read of the whole image; the loader then walks it in place. The
  // buffer is sized from the filesystem, not tellg(): tellg returns -1 on
  // failure and an absurd value for non-regular files (a directory passed
  // as a model path), either of which would size the allocation at garbage
  // and surface as bad_alloc instead of a typed error.
  std::ifstream file(path, std::ios::binary);
  if (!file) throw SerializationError("cannot open for read: " + path);
  std::error_code ec;
  const std::uintmax_t size = std::filesystem::file_size(path, ec);
  if (ec) throw SerializationError("not a readable model file: " + path);
  std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
  if (size > 0 && !file.read(reinterpret_cast<char*>(bytes.data()),
                             static_cast<std::streamsize>(size))) {
    throw SerializationError("read failed: " + path);
  }
  return load_models_binary(bytes, policy, stats);
}

bool is_binary_model_path(const std::string& path) {
  static constexpr char kExt[] = ".bbm";
  if (path.size() < 4) return false;
  for (std::size_t i = 0; i < 4; ++i) {
    const char c = path[path.size() - 4 + i];
    if (std::tolower(static_cast<unsigned char>(c)) != kExt[i]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Zero-copy view.

double PeriodicModelView::secondary_period(std::size_t i) const {
  std::uint64_t bits = 0;
  const std::uint8_t* p = secondary_period_bytes + i * sizeof(double);
  if constexpr (std::endian::native == std::endian::little) {
    std::memcpy(&bits, p, sizeof(bits));
  } else {
    for (int k = 0; k < 8; ++k) {
      bits |= std::uint64_t{p[k]} << (8 * k);
    }
  }
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

PeriodicModel PeriodicModelView::materialize() const {
  PeriodicModel m;
  m.device = device;
  m.app = app;
  m.support = static_cast<std::size_t>(support);
  m.absent_generations = static_cast<std::size_t>(absent_generations);
  m.period_seconds = period_seconds;
  m.tolerance_seconds = tolerance_seconds;
  m.autocorr_score = autocorr_score;
  m.domain.assign(domain);
  m.group.assign(group);
  m.secondary_periods.resize(secondary_period_count);
  if constexpr (std::endian::native == std::endian::little) {
    if (secondary_period_count > 0) {
      std::memcpy(m.secondary_periods.data(), secondary_period_bytes,
                  secondary_period_count * sizeof(double));
    }
  } else {
    for (std::size_t i = 0; i < secondary_period_count; ++i) {
      m.secondary_periods[i] = secondary_period(i);
    }
  }
  return m;
}

BinaryModelView BinaryModelView::open(std::span<const std::uint8_t> bytes) {
  const ImageLayout layout = parse_layout(bytes);
  if (!layout.crc_ok) throw_crc_mismatch(layout);
  BinaryModelView view;
  view.image_ = bytes;
  view.sections_.reserve(layout.sections.size());
  for (const SectionEntry& entry : layout.sections) {
    view.sections_.push_back({entry.id, entry.offset, entry.size});
  }
  return view;
}

const BinaryModelView::Section* BinaryModelView::find_section(
    std::uint32_t id) const {
  for (const Section& s : sections_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

bool BinaryModelView::has_section(std::uint32_t id) const {
  return find_section(id) != nullptr;
}

std::vector<PeriodicModelView> BinaryModelView::periodic() const {
  const Section* s = find_section(kSectionPeriodic);
  if (s == nullptr) return {};
  Cursor c = section_cursor(image_.subspan(s->offset, s->size), s->offset,
                            "periodic");
  const std::size_t n = c.count("periodic model count", 61);
  std::vector<PeriodicModelView> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(read_periodic_model_view(c));
  }
  if (!c.at_end()) c.fail("trailing bytes after periodic models");
  return out;
}

std::optional<PeriodicModelView> BinaryModelView::find_periodic(
    DeviceId device, std::string_view group) const {
  const Section* s = find_section(kSectionPeriodic);
  if (s == nullptr) return std::nullopt;
  Cursor c = section_cursor(image_.subspan(s->offset, s->size), s->offset,
                            "periodic");
  const std::size_t n = c.count("periodic model count", 61);
  for (std::size_t i = 0; i < n; ++i) {
    const PeriodicModelView v = read_periodic_model_view(c);
    if (v.device == device && v.group == group) return v;
  }
  return std::nullopt;
}

std::size_t BinaryModelView::periodic_count() const {
  const Section* s = find_section(kSectionPeriodic);
  if (s == nullptr) return 0;
  Cursor c = section_cursor(image_.subspan(s->offset, s->size), s->offset,
                            "periodic");
  return c.count("periodic model count", 61);
}

std::optional<ThresholdsView> BinaryModelView::thresholds() const {
  const Section* s = find_section(kSectionThresholds);
  if (s == nullptr) return std::nullopt;
  Cursor c = section_cursor(image_.subspan(s->offset, s->size), s->offset,
                            "thresholds");
  ThresholdsView t;
  t.periodic = c.f64("periodic threshold");
  t.long_term_z = c.f64("long-term z threshold");
  t.short_term_mean = c.f64("short-term mean");
  t.short_term_sigma = c.f64("short-term sigma");
  t.short_term_n_sigma = c.f64("short-term n-sigma");
  if (!c.at_end()) c.fail("trailing bytes after thresholds");
  return t;
}

}  // namespace behaviot
