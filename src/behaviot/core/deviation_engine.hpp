// Longitudinal deviation analysis: drives the full pipeline over successive
// windows (days) of new traffic and reports significant behavior deviations,
// as in the §6.2 uncontrolled-experiment study.
#pragma once

#include "behaviot/core/pipeline.hpp"
#include "behaviot/deviation/monitor.hpp"

namespace behaviot {

class DeviationEngine {
 public:
  /// `models` must outlive the engine.
  DeviationEngine(const BehaviorModelSet& models, PipelineOptions pipeline = {},
                  MonitorOptions monitor = {});

  /// Processes one window of raw capture. Classification state (timers, DNS
  /// knowledge) persists across windows.
  std::vector<DeviationAlert> process_window(
      const testbed::GeneratedCapture& capture);

  /// Forgets all streaming state — monitor timers and silence episodes,
  /// accumulated DNS knowledge, and the window count — so the engine can
  /// replay a second capture from scratch. Without this, a re-run inherits
  /// stale last-seen timers and reports phantom silences.
  void reset();

  /// Windows processed so far.
  [[nodiscard]] std::size_t windows_processed() const { return windows_; }

 private:
  const BehaviorModelSet* models_;
  Pipeline pipeline_;
  DeviationMonitor monitor_;
  DomainResolver resolver_;
  std::size_t windows_ = 0;
};

}  // namespace behaviot
