#include "behaviot/core/mud_profile.hpp"

#include <map>
#include <set>
#include <sstream>

namespace behaviot {

std::string MudProfile::to_json() const {
  std::ostringstream os;
  os << "{\n  \"ietf-mud:mud\": {\n    \"systeminfo\": \"" << device_name
     << " (BehavIoT inferred profile)\",\n    \"acls\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const MudAclEntry& e = entries[i];
    os << "      {\"dst-dnsname\": \"" << e.domain << "\", \"protocol\": \""
       << e.protocol << "\", \"kind\": \"" << e.kind << "\"";
    if (e.period_seconds) {
      os << ", \"period-seconds\": " << *e.period_seconds;
    }
    os << "}" << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  os << "    ]\n  }\n}\n";
  return os.str();
}

MudProfile generate_mud_profile(DeviceId device,
                                const std::string& device_name,
                                const PeriodicModelSet& periodic,
                                std::span<const FlowRecord> user_event_flows) {
  MudProfile profile;
  profile.device_name = device_name;

  for (const PeriodicModel* model : periodic.models_for(device)) {
    MudAclEntry entry;
    entry.domain = model->domain.empty() ? "(unresolved)" : model->domain;
    entry.protocol = to_string(model->app);
    entry.period_seconds = model->period_seconds;
    entry.kind = "periodic";
    profile.entries.push_back(std::move(entry));
  }

  std::set<std::pair<std::string, std::string>> seen;
  for (const FlowRecord& f : user_event_flows) {
    if (f.device != device) continue;
    const std::string domain = f.domain.empty() ? f.tuple.dst.ip.to_string()
                                                : f.domain;
    if (!seen.insert({domain, to_string(f.app)}).second) continue;
    MudAclEntry entry;
    entry.domain = domain;
    entry.protocol = to_string(f.app);
    entry.kind = "user-event";
    profile.entries.push_back(std::move(entry));
  }
  return profile;
}

std::vector<MudViolation> check_mud_compliance(
    const MudProfile& profile, DeviceId device,
    std::span<const FlowRecord> flows) {
  // Index the ACL: destination → allowed protocols.
  std::map<std::string, std::set<std::string>> allowed;
  for (const MudAclEntry& e : profile.entries) {
    allowed[e.domain].insert(e.protocol);
  }

  std::vector<MudViolation> violations;
  for (const FlowRecord& f : flows) {
    if (f.device != device) continue;
    const std::string domain =
        f.domain.empty() ? f.tuple.dst.ip.to_string() : f.domain;
    MudViolation v;
    v.when = f.start;
    v.domain = domain;
    v.protocol = to_string(f.app);
    auto it = allowed.find(domain);
    if (it == allowed.end()) {
      v.reason = "unknown destination";
    } else if (it->second.count(v.protocol) == 0) {
      v.reason = "unknown protocol for destination";
    } else {
      continue;  // compliant
    }
    violations.push_back(std::move(v));
  }
  return violations;
}

}  // namespace behaviot
