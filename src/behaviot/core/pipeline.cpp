#include "behaviot/core/pipeline.hpp"

#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>

#include "behaviot/obs/health.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/span.hpp"
#include "behaviot/runtime/runtime.hpp"

namespace behaviot {

Pipeline::Pipeline(PipelineOptions options) : options_(std::move(options)) {}

std::vector<FlowRecord> Pipeline::to_flows(
    const testbed::GeneratedCapture& capture,
    DomainResolver& resolver) const {
  obs::StageSpan span("pipeline.to_flows");
  testbed::configure_resolver(resolver, capture);
  FlowAssembler assembler(options_.assembler);
  std::vector<FlowRecord> flows = assembler.assemble(capture.packets, resolver);
  testbed::apply_ground_truth(flows, capture.truths);
  return flows;
}

BehaviorModelSet Pipeline::train(std::span<const FlowRecord> idle_flows,
                                 double idle_window_seconds,
                                 std::span<const FlowRecord> activity_flows,
                                 std::span<const FlowRecord> routine_flows)
    const {
  obs::StageSpan span("pipeline.train");
  obs::health().heartbeat("pipeline.train");
  BehaviorModelSet models;

  // Each model family trains independently; a stage that throws outright is
  // quarantined (its models stay empty — the paper's three deviation metrics
  // degrade to the families that did train) instead of losing the whole
  // observation phase. Per-group/per-classifier isolation happens one level
  // down, inside the stages themselves.

  // (1) Periodic models from idle traffic (unsupervised, §4.1).
  try {
    models.periodic = PeriodicModelSet::infer(idle_flows, idle_window_seconds,
                                              options_.periodic);
  } catch (const std::exception& e) {
    obs::health().quarantine("pipeline.train", "periodic",
                             std::string("stage lost: ") + e.what());
  }

  // (2) User-action models from labeled activity traffic. As in Appendix B,
  // the training set is the activity dataset itself — its background flows
  // provide the negatives (idle traffic is the periodic stage's domain).
  try {
    models.user_actions = UserActionModels::train(activity_flows, {},
                                                  options_.user_actions);
  } catch (const std::exception& e) {
    obs::health().quarantine("pipeline.train", "user_actions",
                             std::string("stage lost: ") + e.what());
  }

  // (3) System behavior: classify the routine capture with the device
  // models, extract user-event traces, and run Synoptic inference.
  try {
    obs::StageSpan system_span("system_model");
    const Classified routine = classify(routine_flows, models);
    const std::vector<EventTrace> traces = traces_of(routine.user_events);
    SynopticResult synoptic = infer_pfsm(traces, options_.synoptic);
    models.pfsm = std::move(synoptic.pfsm);
    models.invariants = std::move(synoptic.invariants);
    models.pfsm_refinements = synoptic.refinement_steps;

    for (const EventTrace& t : traces) {
      models.training_traces.push_back(trace_labels(t));
    }
    models.short_term = ShortTermThreshold::calibrate(
        models.pfsm, models.training_traces, options_.short_term_n_sigma);
    models.thresholds.short_term = models.short_term.value();
  } catch (const std::exception& e) {
    obs::health().quarantine("pipeline.train", "system_model",
                             std::string("stage lost: ") + e.what());
  }
  return models;
}

Pipeline::Classified Pipeline::classify(std::span<const FlowRecord> flows,
                                        const BehaviorModelSet& models) const {
  obs::StageSpan span("pipeline.classify");
  obs::health().heartbeat("pipeline.classify");
  Classified out;
  out.kinds.resize(flows.size(), EventKind::kAperiodic);
  out.labels.resize(flows.size());

  // Periodic stages (timer + cluster): the timer carries state *within* a
  // (device, group) stream — the last accepted occurrence — but streams are
  // mutually independent, so each group classifies in parallel with its own
  // classifier. Flow indices stay in input (time) order inside a group, and
  // every index writes only its own kinds/labels slot, so the outcome is
  // identical to the former sequential sweep at any thread count.
  std::map<std::pair<DeviceId, std::string>, std::vector<std::size_t>>
      by_group;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    by_group[{flows[i].device, flows[i].group_key()}].push_back(i);
  }
  using GroupIndices = std::pair<const std::pair<DeviceId, std::string>,
                                 std::vector<std::size_t>>;
  std::vector<const GroupIndices*> group_list;
  group_list.reserve(by_group.size());
  for (const GroupIndices& g : by_group) group_list.push_back(&g);

  struct GroupCounts {
    std::size_t via_timer = 0;
    std::size_t via_cluster = 0;
  };
  // Error-isolating: a group whose classification throws falls back whole to
  // aperiodic (the safe default — aperiodic flows get *more* scrutiny
  // downstream, not less) and is quarantined with the error.
  const auto counts = runtime::global_pool().parallel_try_map(
      group_list, [&](const GroupIndices* g) -> GroupCounts {
        GroupCounts c;
        PeriodicEventClassifier periodic(models.periodic);
        for (const std::size_t i : g->second) {
          const PeriodicClassification p = periodic.classify(flows[i]);
          if (p.periodic) {
            out.kinds[i] = EventKind::kPeriodic;
            c.via_timer += p.via_timer ? 1 : 0;
            c.via_cluster += p.via_cluster ? 1 : 0;
          }
        }
        return c;
      });
  for (std::size_t gi = 0; gi < counts.size(); ++gi) {
    if (!counts[gi].ok()) {
      const auto& key = group_list[gi]->first;
      const std::string code = "periodic-group-quarantined:" +
                               std::to_string(key.first) + ":" + key.second;
      // Partial writes from before the throw revert: the whole group
      // classifies aperiodic, so the outcome does not depend on how far the
      // sweep got.
      for (const std::size_t i : group_list[gi]->second) {
        out.kinds[i] = EventKind::kAperiodic;
      }
      out.degraded.push_back(code);
      obs::health().quarantine("pipeline.classify",
                               std::to_string(key.first) + ":" + key.second,
                               counts[gi].error);
      continue;
    }
    out.periodic_via_timer += counts[gi]->via_timer;
    out.periodic_via_cluster += counts[gi]->via_cluster;
  }

  // User-action stage: stateless per flow — flat data-parallel sweep over
  // everything the periodic stages did not claim. Confidence and vote margin
  // ride along per flow so merged user events can carry their provenance.
  std::vector<double> confidences(flows.size(), 0.0);
  std::vector<double> margins(flows.size(), 0.0);
  // Per-flow isolation: a throwing classification leaves that flow
  // aperiodic/unlabeled. Errors collect per-slot (deterministic at any
  // thread count) and aggregate into one degradation entry below.
  std::vector<std::uint8_t> flow_errors(flows.size(), 0);
  runtime::parallel_for(0, flows.size(), [&](std::size_t i) {
    if (out.kinds[i] == EventKind::kPeriodic) return;
    try {
      const UserActionPrediction u = models.user_actions.classify(flows[i]);
      if (u.is_user_event()) {
        out.kinds[i] = EventKind::kUser;
        out.labels[i] = u.activity;
        confidences[i] = u.confidence;
        margins[i] = u.vote_margin();
      }
    } catch (const std::exception&) {
      flow_errors[i] = 1;
    }
  });
  std::size_t user_action_errors = 0;
  for (const std::uint8_t e : flow_errors) user_action_errors += e;
  if (user_action_errors > 0) {
    const std::string code =
        "user-action-errors:" + std::to_string(user_action_errors);
    out.degraded.push_back(code);
    obs::health().degrade("pipeline.classify", code);
    obs::counter("classify.user_action_errors").add(user_action_errors);
  }
  std::sort(out.degraded.begin(), out.degraded.end());

  // Merge same-label user flows within the merge window into one event
  // (control flow + relay flow of the same physical action). Event merging
  // is inherently sequential (each decision depends on the previously
  // emitted event of the label), so it stays a single ordered pass.
  const auto merge_us =
      static_cast<std::int64_t>(options_.event_merge_window_s * 1e6);
  std::unordered_map<std::string, Timestamp> last_emitted;
  last_emitted.reserve(models.user_actions.size() * 4);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (out.kinds[i] != EventKind::kUser) continue;
    const std::string& label = out.labels[i];
    auto it = last_emitted.find(label);
    if (it != last_emitted.end() && (flows[i].start - it->second) < merge_us) {
      continue;  // same ongoing event
    }
    last_emitted[label] = flows[i].start;

    UserEvent event;
    event.ts = flows[i].start;
    event.device = flows[i].device;
    const auto colon = label.find(':');
    event.device_name = label.substr(0, colon);
    event.activity = colon == std::string::npos ? label
                                                : label.substr(colon + 1);
    event.confidence = confidences[i];
    event.vote_margin = margins[i];
    out.user_events.push_back(std::move(event));
  }
  std::sort(out.user_events.begin(), out.user_events.end(), before);

  if (obs::MetricsRegistry::enabled()) {
    std::size_t user_flows = 0;
    for (const EventKind k : out.kinds) {
      user_flows += k == EventKind::kUser ? 1 : 0;
    }
    obs::counter("classify.flows").add(flows.size());
    obs::counter("classify.periodic_via_timer").add(out.periodic_via_timer);
    obs::counter("classify.periodic_via_cluster")
        .add(out.periodic_via_cluster);
    obs::counter("classify.user_flows").add(user_flows);
    obs::counter("classify.user_events").add(out.user_events.size());
  }
  return out;
}

std::vector<EventTrace> Pipeline::traces_of(
    std::span<const UserEvent> events) const {
  return build_traces(events, options_.trace_gap_us);
}

}  // namespace behaviot
