// MUD-like profile generation (§7.2 "Informing IoT profiles").
//
// Emits, per device, the communication pattern the behavior models inferred:
// periodic groups as (protocol, destination, period) entries and user-event
// destinations as on-demand entries — the shape of an RFC 8520 Manufacturer
// Usage Description, generated from observation instead of by the vendor.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "behaviot/flow/flow.hpp"
#include "behaviot/periodic/periodic_model.hpp"

namespace behaviot {

struct MudAclEntry {
  std::string domain;
  std::string protocol;  ///< "TCP"/"UDP"/"DNS"/"NTP"/"TLS"/"HTTP"
  std::optional<double> period_seconds;  ///< set for periodic entries
  std::string kind;  ///< "periodic" or "user-event"
};

struct MudProfile {
  std::string device_name;
  std::vector<MudAclEntry> entries;

  /// RFC 8520-flavored JSON rendering.
  [[nodiscard]] std::string to_json() const;
};

/// Builds a device profile from its inferred periodic models plus the
/// destinations of its observed (classified or labeled) user-event flows.
MudProfile generate_mud_profile(DeviceId device,
                                const std::string& device_name,
                                const PeriodicModelSet& periodic,
                                std::span<const FlowRecord> user_event_flows);

/// A flow that does not match any profile entry (§7.2: "any network traffic
/// from the device that deviated from these models could be flagged as
/// non-compliant").
struct MudViolation {
  Timestamp when;
  std::string domain;    ///< destination (IP when unresolved)
  std::string protocol;  ///< application protocol of the flow
  std::string reason;    ///< "unknown destination" / "unknown protocol"
};

/// Checks a device's flows against its profile. A flow complies when its
/// (destination, protocol) pair matches an ACL entry; flows of other
/// devices are ignored. Returns violations in flow order.
std::vector<MudViolation> check_mud_compliance(
    const MudProfile& profile, DeviceId device,
    std::span<const FlowRecord> flows);

}  // namespace behaviot
