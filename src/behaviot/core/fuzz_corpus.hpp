// Deterministic corpus generation for the parser fuzz/property harness.
//
// All four ingestion formats (pcap captures, DNS responses, TLS ClientHello,
// model files) get seed-reproducible valid inputs plus a seeded mutator, so
// the harness in tests/test_parser_fuzz.cpp and the bench/gen_fuzz_corpus
// tool exercise byte-for-byte identical corpora: a crash found in CI is a
// crash reproducible at the shell with the same seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "behaviot/core/model_set.hpp"
#include "behaviot/net/packet.hpp"
#include "behaviot/net/rng.hpp"

namespace behaviot::fuzz {

/// Random-but-plausible gateway packets: mixed TCP/UDP, private/public
/// endpoints, DNS/TLS payloads on some, sizes spanning padded minimum
/// frames to MTU-sized records.
std::vector<Packet> random_packets(Rng& rng, std::size_t count);

/// Small randomized model set (periodic models incl. absence trailers,
/// user-action forests, PFSM, thresholds) whose save_models text and
/// save_models_binary image exercise every section of both formats. (The
/// text format omits the forests by design; the binary format carries
/// them.)
BehaviorModelSet random_models(Rng& rng);

/// Rewrites a native little-endian µs pcap byte stream (as produced by
/// serialize_pcap) into one of the other magic variants: byte-swapped
/// headers and/or nanosecond timestamp fractions. Frame bytes are copied
/// unchanged. Input must be well-formed.
std::vector<std::uint8_t> pcap_variant(const std::vector<std::uint8_t>& bytes,
                                       bool swapped, bool nanos);

/// Applies one seeded mutation in place: bit flip, byte splat, truncation,
/// span erase/duplicate/zero, or small random insertion. Size growth is
/// bounded, so repeated application cannot balloon the input.
void mutate(Rng& rng, std::vector<std::uint8_t>& bytes);

/// A full valid corpus for all five formats (model files in both the text
/// and the binary `.bbm` encoding of the same model sets).
struct Corpus {
  std::vector<std::vector<std::uint8_t>> pcaps;
  std::vector<std::vector<std::uint8_t>> dns;
  std::vector<std::vector<std::uint8_t>> tls;
  std::vector<std::string> models;
  std::vector<std::string> binary_models;
};

Corpus make_corpus(std::uint64_t seed, std::size_t per_kind);

}  // namespace behaviot::fuzz
