// Streaming daemon core (`behaviot watch`): unbounded packet stream in,
// per-window deviation alerts out, with bounded memory and hot model swaps.
//
// The engine composes the incremental pieces of the pipeline:
//
//   packets ─→ StreamingFlowAssembler ─→ window close ─→ DeviationMonitor
//                     (bounded)               │                 │
//                                      retrain buffer    ModelHandle swap
//                                              └── background merge ──┘
//
// Windows follow the batch `score --window-s` grid exactly — the k-th
// window is [t0 + kW, t0 + (k+1)W) with t0 the first flow start — and a
// window is evaluated as soon as the assembler's seal watermark passes its
// end, so on any finite capture the streamed alerts are identical to the
// batch path's.
//
// Retraining is deterministic by construction: a retrain generation is
// launched right after window k closes and *always* joined (and its model
// set published + rebound) before window k+1 is evaluated. The background
// thread only buys wall-clock overlap with ingestion; alert output is
// byte-identical whether the merge runs inline or concurrently, at any
// runtime thread count.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "behaviot/core/model_handle.hpp"
#include "behaviot/deviation/monitor.hpp"
#include "behaviot/flow/assembler.hpp"
#include "behaviot/net/domain_resolver.hpp"
#include "behaviot/periodic/retrain.hpp"

namespace behaviot {

struct WatchOptions {
  /// Deviation window width W.
  std::int64_t window_us = minutes(30.0);
  /// Stop after this many evaluated windows; 0 = run until the stream ends.
  std::size_t max_windows = 0;
  /// Stop before evaluating any window that starts at or after this capture
  /// time (deterministic `--until` mode); unset = run until the stream ends.
  std::optional<Timestamp> until;
  /// Launch a background retrain every N closed windows (over the flows of
  /// those N windows) and hot-swap the merged models; 0 = never retrain.
  std::size_t retrain_every_windows = 0;
  /// Retrain watchdog: a background retrain still not finished this many
  /// seconds after launch is abandoned at its join point — the prior
  /// generation keeps scoring, `watch.retrain_failures_total` counts it,
  /// health degrades, and the next interval retries with fresh flows. 0
  /// (default) waits indefinitely, which keeps the join point — and thus
  /// alert output — deterministic; a timeout trades that determinism for
  /// liveness, so it is opt-in. Abandoned retrains finish (and are
  /// discarded) in the background; the engine destructor joins stragglers.
  double retrain_timeout_s = 0.0;
  RetrainOptions retrain;
  MonitorOptions monitor;
  /// Reorder horizon and the open-flow/buffered-packet memory caps.
  StreamingAssemblerOptions assembler;
  /// When non-empty, every retrained generation is written here right after
  /// the hot swap (format by extension — ".bbm" binary, otherwise text), so
  /// a fleet's model store always holds the generation currently scoring.
  /// A write failure degrades health but never stops the stream.
  std::string publish_models_path;
};

/// Serializable snapshot of a WatchEngine between two windows
/// (checkpointing). Captured at the window sink — the only point where no
/// retrain is in flight (window k's retrain is joined before window k+1 is
/// evaluated and launched only after the sink returns), so the snapshot is
/// closed under the engine's own invariants: restoring it and replaying the
/// remaining packets reproduces the uninterrupted alert stream byte for
/// byte. The pinned model generation itself is *not* part of the snapshot —
/// the checkpoint container embeds it as a binary model image and restores
/// it into the ModelHandle before import_state() runs.
struct WatchEngineState {
  std::optional<Timestamp> t0;
  std::optional<Timestamp> last_watermark;
  std::size_t next_window = 0;
  Timestamp max_end{std::numeric_limits<std::int64_t>::min()};
  std::size_t windows = 0;
  std::size_t alerts = 0;
  std::uint64_t model_version = 1;
  std::uint64_t swaps = 0;
  bool swapped_pending_report = false;
  bool done = false;
  bool finished = false;
  std::uint64_t reported_force_sealed = 0;
  std::uint64_t reported_late = 0;
  std::vector<FlowRecord> retrain_buffer;
  StreamingAssemblerState assembler;
  DeviationMonitorState monitor;
  DomainResolverState resolver;
};

/// One closed window's outcome, handed to the window sink.
struct WatchWindowReport {
  std::size_t index = 0;  ///< 0-based window number
  Timestamp start;
  Timestamp end;
  std::size_t flows = 0;
  std::vector<DeviationAlert> alerts;
  /// Model generation the window was evaluated against.
  std::uint64_t model_version = 1;
  /// True when a retrain finished and its generation was swapped in right
  /// before this window was evaluated.
  bool swapped = false;
};

class WatchEngine {
 public:
  /// `models` must outlive the engine. The resolver is owned (DNS knowledge
  /// accumulates across the whole stream, as on a gateway); pre-seed it with
  /// static rDNS before handing it over.
  WatchEngine(ModelHandle& models, DomainResolver resolver,
              WatchOptions options);

  /// Invoked synchronously for every evaluated window, in window order.
  void set_window_sink(std::function<void(const WatchWindowReport&)> sink) {
    sink_ = std::move(sink);
  }

  /// Feeds a chunk of captured packets (any chunking; boundaries carry no
  /// meaning) and evaluates every window the stream clock has closed.
  /// No-op once done().
  void ingest(std::span<const Packet> packets);

  /// End of stream: flushes the assembler and evaluates all remaining
  /// windows (same window count as the batch path). Joins any in-flight
  /// retrain. Idempotent.
  void finish();

  /// True once max_windows/until was hit or finish() completed — the caller
  /// can stop reading the capture.
  [[nodiscard]] bool done() const { return done_; }

  [[nodiscard]] std::size_t windows_evaluated() const { return windows_; }
  [[nodiscard]] std::size_t alerts_emitted() const { return alerts_; }
  [[nodiscard]] std::uint64_t model_version() const { return model_version_; }
  [[nodiscard]] std::uint64_t swaps() const { return swaps_; }
  [[nodiscard]] const StreamingAssemblerStats& assembler_stats() const {
    return assembler_.stats();
  }
  /// Live buffered-state gauge for memory-bound assertions.
  [[nodiscard]] std::size_t buffered_packets() const {
    return assembler_.buffered_packets();
  }
  [[nodiscard]] std::size_t open_flows() const {
    return assembler_.open_flows();
  }
  /// Seal watermark observed at the most recent window-advance check — the
  /// stream clock /statusz reports. Unset until the first released packet.
  [[nodiscard]] std::optional<Timestamp> last_seal_watermark() const {
    return last_watermark_;
  }
  /// Retrains abandoned (threw or exceeded retrain_timeout_s); the prior
  /// generation kept scoring each time.
  [[nodiscard]] std::uint64_t retrain_failures() const {
    return retrain_failures_;
  }

  /// Snapshot of the full streaming state. Only valid where no retrain is
  /// in flight — guaranteed inside the window sink; calling with a retrain
  /// pending throws std::logic_error.
  [[nodiscard]] WatchEngineState export_state() const;
  /// Restores a snapshot into a freshly constructed engine (before any
  /// ingest). The ModelHandle must already hold the checkpointed
  /// generation; the monitor is rebound to it here. Replays the retrain
  /// launch the uninterrupted run performed right after the checkpointing
  /// sink returned, so resumed and uninterrupted runs stay in lockstep.
  void import_state(WatchEngineState state);

 private:
  void advance_windows(bool to_completion);
  void close_window(Timestamp ws, Timestamp we);
  void join_retrain_and_swap();
  void launch_retrain();

  WatchOptions options_;
  ModelHandle* models_;
  DomainResolver resolver_;
  StreamingFlowAssembler assembler_;
  /// Pinned generation the monitor currently scores against.
  std::shared_ptr<const BehaviorModelSet> generation_;
  DeviationMonitor monitor_;
  std::function<void(const WatchWindowReport&)> sink_;

  std::optional<Timestamp> t0_;      ///< window-grid origin (first flow start)
  std::optional<Timestamp> last_watermark_;  ///< latest observed seal watermark
  std::size_t next_window_ = 0;      ///< next window index to evaluate
  Timestamp max_end_{std::numeric_limits<std::int64_t>::min()};
  std::size_t windows_ = 0;
  std::size_t alerts_ = 0;
  std::uint64_t model_version_ = 1;
  std::uint64_t swaps_ = 0;
  bool swapped_pending_report_ = false;
  bool done_ = false;
  bool finished_ = false;

  std::vector<FlowRecord> retrain_buffer_;
  std::future<BehaviorModelSet> retrain_;
  /// Launch instant of retrain_, for the retrain_timeout_s watchdog.
  std::chrono::steady_clock::time_point retrain_launched_at_{};
  /// Timed-out retrains parked here so their destructors (which block on
  /// the async task) don't stall the join point; swept once finished.
  std::vector<std::future<BehaviorModelSet>> abandoned_retrains_;
  std::uint64_t retrain_failures_ = 0;

  // Degradation dedup: last reported assembler-stat values.
  std::uint64_t reported_force_sealed_ = 0;
  std::uint64_t reported_late_ = 0;
};

}  // namespace behaviot
