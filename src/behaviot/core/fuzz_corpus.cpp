#include "behaviot/core/fuzz_corpus.hpp"

#include <algorithm>
#include <sstream>

#include "behaviot/core/serialize.hpp"
#include "behaviot/core/serialize_binary.hpp"
#include "behaviot/deviation/short_term_metric.hpp"
#include "behaviot/net/dns.hpp"
#include "behaviot/net/pcap.hpp"
#include "behaviot/net/tls.hpp"
#include "behaviot/pfsm/synoptic.hpp"

namespace behaviot::fuzz {
namespace {

constexpr const char* kDomains[] = {
    "hb.vendor.com", "ntp.pool.example.org", "api.iot-cloud.net",
    "telemetry.smarthome.io", "cdn.firmware-updates.com", "a.b",
};

constexpr const char* kLabels[] = {
    "cam:motion", "bulb:on", "bulb:off", "plug:on_off", "echo:voice",
    "lock:unlock",
};

std::uint32_t get_u32le(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) |
         (std::uint32_t{p[2]} << 16) | (std::uint32_t{p[3]} << 24);
}

std::string random_domain(Rng& rng) {
  return kDomains[rng.uniform_index(std::size(kDomains))];
}

}  // namespace

std::vector<Packet> random_packets(Rng& rng, std::size_t count) {
  std::vector<Packet> packets;
  packets.reserve(count);
  std::int64_t ts = 0;
  for (std::size_t i = 0; i < count; ++i) {
    ts += static_cast<std::int64_t>(rng.exponential(250'000.0)) + 1;
    Packet p;
    p.ts = Timestamp(ts);
    p.dir = rng.chance(0.6) ? Direction::kOutbound : Direction::kInbound;
    const bool udp = rng.chance(0.4);
    const Transport proto = udp ? Transport::kUdp : Transport::kTcp;
    const Ipv4Addr device(192, 168, 1,
                          static_cast<std::uint8_t>(2 + rng.uniform_index(50)));
    const Ipv4Addr remote(
        rng.chance(0.15)
            ? Ipv4Addr(192, 168, 1,
                       static_cast<std::uint8_t>(2 + rng.uniform_index(50)))
            : Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64() | 0x08000000)));
    const auto src_port =
        static_cast<std::uint16_t>(32768 + rng.uniform_index(28000));
    const std::uint16_t dst_port =
        udp ? (rng.chance(0.5) ? 53 : 123) : (rng.chance(0.7) ? 443 : 80);
    p.tuple = {{device, src_port}, {remote, dst_port}, proto};

    const double roll = rng.uniform();
    if (udp && roll < 0.3) {
      p.payload = make_dns_response(
          static_cast<std::uint16_t>(rng.next_u64()), random_domain(rng),
          Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
          static_cast<std::uint32_t>(rng.uniform_index(3600)));
    } else if (!udp && roll < 0.3) {
      p.payload = make_tls_client_hello(random_domain(rng));
    } else if (roll < 0.45) {
      p.payload.resize(rng.uniform_index(200));
      for (auto& b : p.payload) b = static_cast<std::uint8_t>(rng.next_u64());
    }
    const std::uint32_t overhead = header_overhead(proto);
    // Mix of sizes: padded sub-minimum frames, payload-sized, and larger
    // records whose payload the writer zero-pads.
    p.size = static_cast<std::uint32_t>(
        rng.chance(0.2) ? rng.uniform_index(overhead + 4)
                        : overhead + p.payload.size() +
                              (rng.chance(0.3) ? rng.uniform_index(400) : 0));
    packets.push_back(std::move(p));
  }
  return packets;
}

BehaviorModelSet random_models(Rng& rng) {
  BehaviorModelSet models;

  std::vector<PeriodicModel> periodic;
  const std::size_t n = 1 + rng.uniform_index(6);
  for (std::size_t i = 0; i < n; ++i) {
    PeriodicModel m;
    m.device = static_cast<DeviceId>(rng.uniform_index(49));
    m.app = static_cast<AppProtocol>(rng.uniform_index(6));
    m.domain = rng.chance(0.8) ? random_domain(rng) : "";
    m.group = (m.domain.empty() ? "54.1.2.3" : m.domain) + "|" +
              std::to_string(i);
    m.period_seconds = rng.uniform(5.0, 86400.0);
    m.tolerance_seconds = rng.uniform(0.1, 60.0);
    m.autocorr_score = rng.uniform();
    m.support = 1 + rng.uniform_index(500);
    if (rng.chance(0.3)) m.absent_generations = 1 + rng.uniform_index(5);
    const std::size_t extra = rng.uniform_index(3);
    for (std::size_t k = 0; k < extra; ++k) {
      m.secondary_periods.push_back(rng.uniform(5.0, 86400.0));
    }
    periodic.push_back(std::move(m));
  }
  models.periodic = PeriodicModelSet::from_models(std::move(periodic));

  // Hand-built user-action forests (binary-format-only section): a mix of
  // single-leaf and one-split trees covers leaves, internal nodes, and
  // distribution arrays without paying for real training in a fuzz loop.
  UserActionModels::ClassifierMap classifiers;
  const std::size_t n_forest_devices = rng.uniform_index(3);
  for (std::size_t d = 0; d < n_forest_devices; ++d) {
    auto& list = classifiers[static_cast<DeviceId>(rng.uniform_index(49))];
    const std::size_t n_classifiers = 1 + rng.uniform_index(2);
    for (std::size_t k = 0; k < n_classifiers; ++k) {
      std::vector<DecisionTree> trees;
      const std::size_t n_trees = 1 + rng.uniform_index(3);
      for (std::size_t t = 0; t < n_trees; ++t) {
        std::vector<DecisionTree::Node> nodes;
        const double p = rng.uniform();
        if (rng.chance(0.5)) {
          nodes.push_back({-1, 0.0, -1, -1, {p, 1.0 - p}});
        } else {
          nodes.push_back({static_cast<int>(rng.uniform_index(6)),
                           rng.uniform(0.0, 1500.0), 1, 2, {}});
          nodes.push_back({-1, 0.0, -1, -1, {p, 1.0 - p}});
          nodes.push_back({-1, 0.0, -1, -1, {1.0 - p, p}});
        }
        trees.push_back(DecisionTree::from_nodes(2, std::move(nodes)));
      }
      list.push_back({kLabels[rng.uniform_index(std::size(kLabels))],
                      RandomForest::from_trees(2, std::move(trees))});
    }
  }
  models.user_actions = UserActionModels::from_classifiers(
      std::move(classifiers), rng.uniform(0.5, 0.9));

  std::vector<std::vector<std::string>> traces;
  const std::size_t n_traces = 2 + rng.uniform_index(4);
  for (std::size_t t = 0; t < n_traces; ++t) {
    std::vector<std::string> trace;
    const std::size_t len = 1 + rng.uniform_index(5);
    for (std::size_t i = 0; i < len; ++i) {
      trace.push_back(kLabels[rng.uniform_index(std::size(kLabels))]);
    }
    traces.push_back(std::move(trace));
  }
  models.pfsm = infer_pfsm(traces).pfsm;
  models.training_traces = traces;
  models.short_term = ShortTermThreshold::calibrate(models.pfsm, traces);
  models.thresholds.short_term = models.short_term.value();
  models.thresholds.periodic = rng.uniform(0.1, 2.0);
  models.thresholds.long_term_z = rng.uniform(1.0, 5.0);
  return models;
}

std::vector<std::uint8_t> pcap_variant(const std::vector<std::uint8_t>& bytes,
                                       bool swapped, bool nanos) {
  std::vector<std::uint8_t> out;
  out.reserve(bytes.size());
  const auto put32 = [&](std::uint32_t v) {
    if (swapped) {
      out.push_back(static_cast<std::uint8_t>(v >> 24));
      out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
      out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
      out.push_back(static_cast<std::uint8_t>(v & 0xff));
    } else {
      out.push_back(static_cast<std::uint8_t>(v & 0xff));
      out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
      out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
      out.push_back(static_cast<std::uint8_t>(v >> 24));
    }
  };
  const auto put16 = [&](std::uint16_t v) {
    if (swapped) {
      out.push_back(static_cast<std::uint8_t>(v >> 8));
      out.push_back(static_cast<std::uint8_t>(v & 0xff));
    } else {
      out.push_back(static_cast<std::uint8_t>(v & 0xff));
      out.push_back(static_cast<std::uint8_t>(v >> 8));
    }
  };

  put32(nanos ? 0xa1b23c4du : 0xa1b2c3d4u);
  put16(2);  // version major
  put16(4);  // version minor
  put32(get_u32le(bytes.data() + 8));    // thiszone
  put32(get_u32le(bytes.data() + 12));   // sigfigs
  put32(get_u32le(bytes.data() + 16));   // snaplen
  put32(get_u32le(bytes.data() + 20));   // linktype

  std::size_t off = 24;
  while (off + 16 <= bytes.size()) {
    const std::uint32_t sec = get_u32le(bytes.data() + off);
    const std::uint32_t frac = get_u32le(bytes.data() + off + 4);
    const std::uint32_t incl = get_u32le(bytes.data() + off + 8);
    const std::uint32_t orig = get_u32le(bytes.data() + off + 12);
    off += 16;
    put32(sec);
    put32(nanos ? frac * 1000u : frac);  // µs fraction < 1e6: no overflow
    put32(incl);
    put32(orig);
    const std::size_t take = std::min<std::size_t>(incl, bytes.size() - off);
    out.insert(out.end(), bytes.begin() + static_cast<long>(off),
               bytes.begin() + static_cast<long>(off + take));
    off += take;
  }
  return out;
}

void mutate(Rng& rng, std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) {
    bytes.push_back(static_cast<std::uint8_t>(rng.next_u64()));
    return;
  }
  const std::size_t at = rng.uniform_index(bytes.size());
  switch (rng.uniform_index(7)) {
    case 0:  // bit flip
      bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_index(8));
      break;
    case 1:  // byte splat
      bytes[at] = static_cast<std::uint8_t>(rng.next_u64());
      break;
    case 2:  // truncate
      bytes.resize(at);
      break;
    case 3: {  // erase a short span
      const std::size_t len = std::min(bytes.size() - at,
                                       1 + rng.uniform_index(16));
      bytes.erase(bytes.begin() + static_cast<long>(at),
                  bytes.begin() + static_cast<long>(at + len));
      break;
    }
    case 4: {  // duplicate a short span
      const std::size_t len = std::min(bytes.size() - at,
                                       1 + rng.uniform_index(16));
      std::vector<std::uint8_t> span(bytes.begin() + static_cast<long>(at),
                                     bytes.begin() +
                                         static_cast<long>(at + len));
      bytes.insert(bytes.begin() + static_cast<long>(at), span.begin(),
                   span.end());
      break;
    }
    case 5: {  // zero a short span
      const std::size_t len = std::min(bytes.size() - at,
                                       1 + rng.uniform_index(16));
      std::fill(bytes.begin() + static_cast<long>(at),
                bytes.begin() + static_cast<long>(at + len), 0);
      break;
    }
    default: {  // insert a few random bytes
      std::vector<std::uint8_t> extra(1 + rng.uniform_index(8));
      for (auto& b : extra) b = static_cast<std::uint8_t>(rng.next_u64());
      bytes.insert(bytes.begin() + static_cast<long>(at), extra.begin(),
                   extra.end());
      break;
    }
  }
}

Corpus make_corpus(std::uint64_t seed, std::size_t per_kind) {
  Rng rng(seed);
  Corpus corpus;
  for (std::size_t i = 0; i < per_kind; ++i) {
    Rng fork = rng.fork(i);
    const auto packets = random_packets(fork, 1 + fork.uniform_index(40));
    auto bytes = serialize_pcap(packets);
    // Cycle through the four magic variants so every corpus covers them.
    switch (i % 4) {
      case 1: bytes = pcap_variant(bytes, /*swapped=*/true, /*nanos=*/false);
        break;
      case 2: bytes = pcap_variant(bytes, /*swapped=*/false, /*nanos=*/true);
        break;
      case 3: bytes = pcap_variant(bytes, /*swapped=*/true, /*nanos=*/true);
        break;
      default: break;
    }
    corpus.pcaps.push_back(std::move(bytes));

    corpus.dns.push_back(
        fork.chance(0.8)
            ? make_dns_response(static_cast<std::uint16_t>(fork.next_u64()),
                                random_domain(fork),
                                Ipv4Addr(static_cast<std::uint32_t>(
                                    fork.next_u64())),
                                static_cast<std::uint32_t>(
                                    fork.uniform_index(86400)))
            : make_dns_query(static_cast<std::uint16_t>(fork.next_u64()),
                             random_domain(fork)));
    corpus.tls.push_back(make_tls_client_hello(random_domain(fork)));

    const BehaviorModelSet model_set = random_models(fork);
    std::ostringstream model_text;
    save_models(model_text, model_set);
    corpus.models.push_back(model_text.str());
    corpus.binary_models.push_back(save_models_binary(model_set));
  }
  return corpus;
}

}  // namespace behaviot::fuzz
