// Versioned binary watch-checkpoint format (`.bbc`) — durable crash-safe
// snapshots of a running `behaviot watch` daemon.
//
// A checkpoint captures, between two windows, everything a fresh process
// needs to continue the stream as if the crash never happened:
//
//   - the WatchEngine streaming state (window-grid cursor, seal watermark,
//     assembler clamp slot + reorder heap + open/sealed flows, deviation
//     monitor timers and dedup sets, retrain buffer, counters),
//   - the pinned model generation, embedded verbatim as a `.bbm` image
//     (core/serialize_binary.hpp) so resume scores against bit-identical
//     models even if the on-disk model store moved on,
//   - the resolver's learned DNS/SNI bindings,
//   - the capture-side cursor: the byte offset up to which the input pcap
//     was consumed, and the accumulated --alerts JSON document so the
//     resumed daemon's snapshot files continue byte-identically,
//   - the health registry snapshot, preserving escalate-only semantics
//     across the restart.
//
// The envelope is the shared section-tabled image format (core/binary_io.hpp):
// magic "BBC1", version, section table, payloads, CRC32 trailer. Unknown
// section ids are skipped (forward compatibility); the health section is
// optional, every other section is required in either parse policy.
// kLenient differs from kStrict only in tolerating a corrupt CRC or a
// damaged *optional* section (counted in stats->sections_dropped) — state
// a resume cannot do without still throws, because resuming from a guessed
// engine state would silently break the byte-identity guarantee.
//
// On-disk rotation (write_checkpoint_rotating) keeps two generations:
// `FILE` (newest) and `FILE.prev`. The write sequence — rename FILE to
// FILE.prev, then write_file_atomic the new image — guarantees that at
// every instant at least one complete, CRC-valid checkpoint exists.
// load_checkpoint_resilient() encodes the matching read side: strict FILE
// first, lenient FILE.prev as fallback.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "behaviot/core/watch_engine.hpp"
#include "behaviot/net/parse_policy.hpp"
#include "behaviot/obs/health.hpp"

namespace behaviot {

inline constexpr std::uint16_t kCheckpointFormatVersion = 1;
/// "BBC1" when read as little-endian u32.
inline constexpr std::uint32_t kCheckpointMagic = 0x31434242u;

/// Section ids of checkpoint format version 1.
inline constexpr std::uint32_t kCkptSectionEngine = 1;
inline constexpr std::uint32_t kCkptSectionAssembler = 2;
inline constexpr std::uint32_t kCkptSectionMonitor = 3;
inline constexpr std::uint32_t kCkptSectionResolver = 4;
inline constexpr std::uint32_t kCkptSectionModels = 5;
inline constexpr std::uint32_t kCkptSectionFrontend = 6;
inline constexpr std::uint32_t kCkptSectionRetrain = 7;
inline constexpr std::uint32_t kCkptSectionHealth = 8;

/// The deterministic option grid a checkpoint pins. On resume these win
/// over whatever flags the restarted process was given — window geometry,
/// retrain cadence and assembler behavior must match the checkpointed run
/// exactly or the continuation diverges. Operational knobs (--follow,
/// --max-windows, --until, snapshot paths, telemetry port) stay
/// CLI-provided.
struct CheckpointOptions {
  std::int64_t window_us = 0;
  std::uint64_t retrain_every_windows = 0;
  std::int64_t burst_gap_us = 0;
  bool drop_infrastructure = false;
  std::int64_t max_ts_regression_us = 0;
  std::int64_t reorder_horizon_us = 0;
  std::uint64_t max_open_flows = 0;
  std::uint64_t max_buffered_packets = 0;
};

/// One complete daemon snapshot, in memory.
struct WatchCheckpoint {
  CheckpointOptions options;
  WatchEngineState engine;
  /// The pinned generation as a `.bbm` image (save_models_binary), plus the
  /// ModelHandle version to restore so post-resume publishes number their
  /// generations exactly as the uninterrupted run would.
  std::string models_image;
  std::uint64_t model_version = 1;
  /// Consumed byte offset in the input capture: every byte before it is
  /// fully inside the checkpointed engine state; replay starts here.
  std::uint64_t input_offset = 0;
  /// The accumulated --alerts JSON document at checkpoint time (empty when
  /// the daemon writes no alerts file).
  std::string alerts_json;
  obs::HealthSnapshot health;
};

/// Serializes a checkpoint to a complete `.bbc` image.
[[nodiscard]] std::string save_checkpoint(const WatchCheckpoint& cp);

/// Deserializes a `.bbc` image. See the header comment for what kLenient
/// may salvage; everything a resume requires throws SerializationError
/// (with the absolute byte offset of the damage) in either policy.
WatchCheckpoint load_checkpoint(std::span<const std::uint8_t> bytes,
                                ParsePolicy policy = ParsePolicy::kStrict,
                                ParseStats* stats = nullptr);

/// Writes `cp` to `path` with two-generation rotation: the existing file
/// (if any) is renamed to `path + ".prev"`, then the new image lands via
/// write-to-temp-then-rename. At every instant at least one complete
/// checkpoint survives a kill -9. Returns false (with a one-line reason in
/// `error`) on I/O failure; never throws.
[[nodiscard]] bool write_checkpoint_rotating(const std::string& path,
                                             const WatchCheckpoint& cp,
                                             std::string* error = nullptr);

/// Read side of the rotation scheme: loads `path` strictly; if that fails
/// (missing, torn, corrupt), falls back to `path + ".prev"` leniently.
/// `source` (when non-null) receives the path actually loaded. Throws when
/// neither generation is usable.
WatchCheckpoint load_checkpoint_resilient(const std::string& path,
                                          std::string* source = nullptr,
                                          ParseStats* stats = nullptr);

}  // namespace behaviot
