#include "behaviot/core/watch_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "behaviot/core/serialize.hpp"
#include "behaviot/obs/health.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/span.hpp"

namespace behaviot {

WatchEngine::WatchEngine(ModelHandle& models, DomainResolver resolver,
                         WatchOptions options)
    : options_(options),
      models_(&models),
      resolver_(std::move(resolver)),
      assembler_(options.assembler, resolver_),
      generation_(models.acquire()),
      monitor_(generation_->periodic, generation_->pfsm,
               generation_->short_term, options.monitor),
      model_version_(models.version()) {}

void WatchEngine::ingest(std::span<const Packet> packets) {
  if (done_ || finished_) return;
  obs::counter("watch.packets_in").add(packets.size());
  assembler_.feed(packets);
  advance_windows(/*to_completion=*/false);
}

void WatchEngine::finish() {
  if (finished_) {
    // Still join a retrain left in flight by a max_windows/until stop.
    join_retrain_and_swap();
    done_ = true;
    return;
  }
  finished_ = true;
  assembler_.finish();
  advance_windows(/*to_completion=*/true);
}

void WatchEngine::advance_windows(bool to_completion) {
  for (;;) {
    if (done_) break;
    if (!t0_) {
      // The first released packet carries the minimum flow start — the same
      // t0 the batch path reads off its sorted flow list.
      t0_ = assembler_.first_release();
      if (!t0_) break;
    }
    const Timestamp ws =
        *t0_ + static_cast<std::int64_t>(next_window_) * options_.window_us;
    const Timestamp we = ws + options_.window_us;
    if (options_.until && ws >= *options_.until) {
      done_ = true;
      break;
    }
    if (to_completion) {
      // Mirror the batch loop bound: windows exist while ws < max flow end
      // + 1 s. Flows always drain before ws passes that bound, so the
      // window count matches the batch path exactly.
      const bool flows_left = assembler_.sealed_pending() > 0;
      const bool time_left =
          max_end_.micros() != std::numeric_limits<std::int64_t>::min() &&
          ws < max_end_ + seconds(1.0);
      if (!flows_left && !time_left) break;
    } else {
      // One watermark read serves both the close decision and the /statusz
      // stream clock (seal_watermark() sweeps idle flows, so read it once).
      last_watermark_ = assembler_.seal_watermark();
      if (*last_watermark_ < we) {
        break;  // window not final yet — wait for the stream clock
      }
    }
    close_window(ws, we);
    if (options_.max_windows > 0 && windows_ >= options_.max_windows) {
      done_ = true;
    }
  }
  if (to_completion) {
    join_retrain_and_swap();
    done_ = true;
  }
}

namespace {

/// Stream-time lag buckets (seconds): how far the seal watermark had moved
/// past a window's end by the time we closed it. Spans sub-second live
/// tailing through multi-hour batch replay.
std::span<const double> watermark_lag_bounds_s() {
  static const double bounds[] = {0.5, 1.0, 5.0, 30.0, 60.0,
                                  300.0, 900.0, 3600.0};
  return bounds;
}

}  // namespace

void WatchEngine::close_window(Timestamp ws, Timestamp we) {
  obs::StageSpan span("watch.window");
  obs::health().heartbeat("watch.engine");
  const auto close_start = std::chrono::steady_clock::now();
  if (last_watermark_ && *last_watermark_ >= we) {
    static auto& lag_hist =
        obs::histogram("watch.watermark_lag_s", watermark_lag_bounds_s());
    lag_hist.observe(
        static_cast<double>(last_watermark_->micros() - we.micros()) / 1e6);
  }

  // Deterministic swap point: a retrain launched after window k is always
  // published and rebound here, before window k+1 is evaluated — never
  // mid-window, never against a half-written set.
  join_retrain_and_swap();

  std::vector<FlowRecord> flows = assembler_.drain_sealed(we);
  std::size_t late = 0;
  for (const FlowRecord& f : flows) {
    max_end_ = std::max(max_end_, f.end);
    if (f.start < ws) ++late;
  }
  if (late > 0) {
    // A packet beyond the reorder horizon (or a force-sealed flow's
    // continuation) produced a flow for an already-closed window. Score it
    // in this window rather than dropping it, and disclose.
    obs::counter("watch.flows_out_of_window").add(late);
    obs::health().degrade("watch.engine",
                          "out-of-window-flows:" + std::to_string(late));
  }

  std::vector<DeviationAlert> alerts =
      monitor_.evaluate_window(ws, we, flows, {});

  static auto& windows_counter = obs::counter("watch.windows");
  static auto& flows_counter = obs::counter("watch.flows");
  static auto& alerts_counter = obs::counter("watch.alerts");
  windows_counter.inc();
  flows_counter.add(flows.size());
  alerts_counter.add(alerts.size());
  obs::gauge("watch.buffered_packets")
      .set(static_cast<double>(assembler_.buffered_packets()));
  obs::gauge("watch.open_flows").set(static_cast<double>(open_flows()));

  const StreamingAssemblerStats& st = assembler_.stats();
  if (st.force_sealed > reported_force_sealed_) {
    reported_force_sealed_ = st.force_sealed;
    obs::health().degrade("watch.engine",
                          "force-sealed:" + std::to_string(st.force_sealed));
  }
  if (st.late_packets > reported_late_) {
    reported_late_ = st.late_packets;
    obs::health().degrade("watch.engine",
                          "late-packets:" + std::to_string(st.late_packets));
  }

  alerts_ += alerts.size();
  WatchWindowReport report;
  report.index = next_window_;
  report.start = ws;
  report.end = we;
  report.flows = flows.size();
  report.alerts = std::move(alerts);
  report.model_version = model_version_;
  report.swapped = swapped_pending_report_;
  swapped_pending_report_ = false;

  if (options_.retrain_every_windows > 0) {
    retrain_buffer_.insert(retrain_buffer_.end(),
                           std::make_move_iterator(flows.begin()),
                           std::make_move_iterator(flows.end()));
  }

  ++windows_;
  ++next_window_;

  // Observed before the sink so a scrape triggered by the sink (the CLI
  // updates /statusz there) already includes this window's close latency.
  static auto& close_hist = obs::histogram("watch.window_close_latency_ms");
  close_hist.observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - close_start)
                         .count());

  if (sink_) sink_(report);

  if (options_.retrain_every_windows > 0 &&
      windows_ % options_.retrain_every_windows == 0) {
    launch_retrain();
  }
}

void WatchEngine::launch_retrain() {
  obs::counter("watch.retrains").inc();
  const double duration_s =
      static_cast<double>(options_.retrain_every_windows) *
      static_cast<double>(options_.window_us) / 1e6;
  const RetrainOptions ropts = options_.retrain;
  auto base = generation_;  // pinned: stays alive for the thread's lifetime
  retrain_ = std::async(
      std::launch::async,
      [buffer = std::move(retrain_buffer_), base, duration_s, ropts]() {
        obs::StageSpan span("watch.retrain");
        const auto retrain_start = std::chrono::steady_clock::now();
        PeriodicModelSet fresh = PeriodicModelSet::infer(buffer, duration_s);
        RetrainSummary summary;
        BehaviorModelSet next = *base;  // non-periodic members carry over
        next.periodic =
            merge_periodic_models(base->periodic, fresh, summary, ropts);
        obs::histogram("watch.retrain_duration_ms")
            .observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - retrain_start)
                         .count());
        return next;
      });
  retrain_buffer_ = {};
}

void WatchEngine::join_retrain_and_swap() {
  if (!retrain_.valid()) return;
  // Blocking on purpose: the join point — not thread speed — defines which
  // window first sees the new generation, so alert output is identical at
  // any thread count and with the merge run inline.
  BehaviorModelSet next = retrain_.get();
  model_version_ = models_->publish(std::move(next));
  generation_ = models_->acquire();
  monitor_.rebind(generation_->periodic, generation_->pfsm,
                  generation_->short_term);
  ++swaps_;
  swapped_pending_report_ = true;
  obs::counter("watch.swaps").inc();

  if (!options_.publish_models_path.empty()) {
    // The swapped-in generation is what every window from here on scores
    // against; persist exactly that. Publishing is best-effort — a full
    // disk must not take down the monitoring stream.
    try {
      save_models_file(options_.publish_models_path, *generation_);
      obs::counter("watch.models_published").inc();
    } catch (const std::exception& e) {
      obs::health().degrade("watch.engine",
                            std::string("publish-models-failed: ") + e.what());
    }
  }
}

}  // namespace behaviot
