#include "behaviot/core/watch_engine.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "behaviot/core/serialize.hpp"
#include "behaviot/obs/health.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/span.hpp"

namespace behaviot {

WatchEngine::WatchEngine(ModelHandle& models, DomainResolver resolver,
                         WatchOptions options)
    : options_(options),
      models_(&models),
      resolver_(std::move(resolver)),
      assembler_(options.assembler, resolver_),
      generation_(models.acquire()),
      monitor_(generation_->periodic, generation_->pfsm,
               generation_->short_term, options.monitor),
      model_version_(models.version()) {}

void WatchEngine::ingest(std::span<const Packet> packets) {
  if (done_ || finished_) return;
  obs::counter("watch.packets_in").add(packets.size());
  assembler_.feed(packets);
  advance_windows(/*to_completion=*/false);
}

void WatchEngine::finish() {
  if (finished_) {
    // Still join a retrain left in flight by a max_windows/until stop.
    join_retrain_and_swap();
    done_ = true;
    return;
  }
  finished_ = true;
  assembler_.finish();
  advance_windows(/*to_completion=*/true);
}

void WatchEngine::advance_windows(bool to_completion) {
  for (;;) {
    if (done_) break;
    if (!t0_) {
      // The first released packet carries the minimum flow start — the same
      // t0 the batch path reads off its sorted flow list.
      t0_ = assembler_.first_release();
      if (!t0_) break;
    }
    const Timestamp ws =
        *t0_ + static_cast<std::int64_t>(next_window_) * options_.window_us;
    const Timestamp we = ws + options_.window_us;
    if (options_.until && ws >= *options_.until) {
      done_ = true;
      break;
    }
    if (to_completion) {
      // Mirror the batch loop bound: windows exist while ws < max flow end
      // + 1 s. Flows always drain before ws passes that bound, so the
      // window count matches the batch path exactly.
      const bool flows_left = assembler_.sealed_pending() > 0;
      const bool time_left =
          max_end_.micros() != std::numeric_limits<std::int64_t>::min() &&
          ws < max_end_ + seconds(1.0);
      if (!flows_left && !time_left) break;
    } else {
      // One watermark read serves both the close decision and the /statusz
      // stream clock (seal_watermark() sweeps idle flows, so read it once).
      last_watermark_ = assembler_.seal_watermark();
      if (*last_watermark_ < we) {
        break;  // window not final yet — wait for the stream clock
      }
    }
    close_window(ws, we);
    if (options_.max_windows > 0 && windows_ >= options_.max_windows) {
      done_ = true;
    }
  }
  if (to_completion) {
    join_retrain_and_swap();
    done_ = true;
  }
}

namespace {

/// Stream-time lag buckets (seconds): how far the seal watermark had moved
/// past a window's end by the time we closed it. Spans sub-second live
/// tailing through multi-hour batch replay.
std::span<const double> watermark_lag_bounds_s() {
  static const double bounds[] = {0.5, 1.0, 5.0, 30.0, 60.0,
                                  300.0, 900.0, 3600.0};
  return bounds;
}

}  // namespace

void WatchEngine::close_window(Timestamp ws, Timestamp we) {
  obs::StageSpan span("watch.window");
  obs::health().heartbeat("watch.engine");
  const auto close_start = std::chrono::steady_clock::now();
  if (last_watermark_ && *last_watermark_ >= we) {
    static auto& lag_hist =
        obs::histogram("watch.watermark_lag_s", watermark_lag_bounds_s());
    lag_hist.observe(
        static_cast<double>(last_watermark_->micros() - we.micros()) / 1e6);
  }

  // Deterministic swap point: a retrain launched after window k is always
  // published and rebound here, before window k+1 is evaluated — never
  // mid-window, never against a half-written set.
  join_retrain_and_swap();

  std::vector<FlowRecord> flows = assembler_.drain_sealed(we);
  std::size_t late = 0;
  for (const FlowRecord& f : flows) {
    max_end_ = std::max(max_end_, f.end);
    if (f.start < ws) ++late;
  }
  if (late > 0) {
    // A packet beyond the reorder horizon (or a force-sealed flow's
    // continuation) produced a flow for an already-closed window. Score it
    // in this window rather than dropping it, and disclose.
    obs::counter("watch.flows_out_of_window").add(late);
    obs::health().degrade("watch.engine",
                          "out-of-window-flows:" + std::to_string(late));
  }

  std::vector<DeviationAlert> alerts =
      monitor_.evaluate_window(ws, we, flows, {});

  static auto& windows_counter = obs::counter("watch.windows");
  static auto& flows_counter = obs::counter("watch.flows");
  static auto& alerts_counter = obs::counter("watch.alerts");
  windows_counter.inc();
  flows_counter.add(flows.size());
  alerts_counter.add(alerts.size());
  obs::gauge("watch.buffered_packets")
      .set(static_cast<double>(assembler_.buffered_packets()));
  obs::gauge("watch.open_flows").set(static_cast<double>(open_flows()));

  const StreamingAssemblerStats& st = assembler_.stats();
  if (st.force_sealed > reported_force_sealed_) {
    reported_force_sealed_ = st.force_sealed;
    obs::health().degrade("watch.engine",
                          "force-sealed:" + std::to_string(st.force_sealed));
  }
  if (st.late_packets > reported_late_) {
    reported_late_ = st.late_packets;
    obs::health().degrade("watch.engine",
                          "late-packets:" + std::to_string(st.late_packets));
  }

  alerts_ += alerts.size();
  WatchWindowReport report;
  report.index = next_window_;
  report.start = ws;
  report.end = we;
  report.flows = flows.size();
  report.alerts = std::move(alerts);
  report.model_version = model_version_;
  report.swapped = swapped_pending_report_;
  swapped_pending_report_ = false;

  if (options_.retrain_every_windows > 0) {
    retrain_buffer_.insert(retrain_buffer_.end(),
                           std::make_move_iterator(flows.begin()),
                           std::make_move_iterator(flows.end()));
  }

  ++windows_;
  ++next_window_;

  // Observed before the sink so a scrape triggered by the sink (the CLI
  // updates /statusz there) already includes this window's close latency.
  static auto& close_hist = obs::histogram("watch.window_close_latency_ms");
  close_hist.observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - close_start)
                         .count());

  if (sink_) sink_(report);

  if (options_.retrain_every_windows > 0 &&
      windows_ % options_.retrain_every_windows == 0) {
    launch_retrain();
  }
}

void WatchEngine::launch_retrain() {
  // Sweep abandoned retrains that have since finished so the parking lot
  // stays bounded even under repeated timeouts.
  std::erase_if(abandoned_retrains_, [](std::future<BehaviorModelSet>& f) {
    return f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
  });
  obs::counter("watch.retrains").inc();
  const double duration_s =
      static_cast<double>(options_.retrain_every_windows) *
      static_cast<double>(options_.window_us) / 1e6;
  const RetrainOptions ropts = options_.retrain;
  auto base = generation_;  // pinned: stays alive for the thread's lifetime
  retrain_launched_at_ = std::chrono::steady_clock::now();
  retrain_ = std::async(
      std::launch::async,
      [buffer = std::move(retrain_buffer_), base, duration_s, ropts]() {
        obs::StageSpan span("watch.retrain");
        const auto retrain_start = std::chrono::steady_clock::now();
        PeriodicModelSet fresh = PeriodicModelSet::infer(buffer, duration_s);
        RetrainSummary summary;
        BehaviorModelSet next = *base;  // non-periodic members carry over
        next.periodic =
            merge_periodic_models(base->periodic, fresh, summary, ropts);
        obs::histogram("watch.retrain_duration_ms")
            .observe(std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - retrain_start)
                         .count());
        return next;
      });
  retrain_buffer_ = {};
}

void WatchEngine::join_retrain_and_swap() {
  if (!retrain_.valid()) return;
  // Blocking on purpose: the join point — not thread speed — defines which
  // window first sees the new generation, so alert output is identical at
  // any thread count and with the merge run inline. A watchdog timeout
  // (opt-in) caps the block: a wedged retrain is abandoned and the prior
  // generation keeps scoring.
  if (options_.retrain_timeout_s > 0.0) {
    const auto deadline =
        retrain_launched_at_ +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(options_.retrain_timeout_s));
    if (retrain_.wait_until(deadline) != std::future_status::ready) {
      // Park the future: its destructor blocks on the async task, and the
      // whole point is not to. Swept once finished; joined at destruction.
      abandoned_retrains_.push_back(std::move(retrain_));
      retrain_ = {};
      ++retrain_failures_;
      obs::counter("watch.retrain_failures_total").inc();
      obs::health().degrade("watch.engine", "retrain-timeout");
      return;
    }
  }
  BehaviorModelSet next;
  try {
    next = retrain_.get();
  } catch (const std::exception& e) {
    ++retrain_failures_;
    obs::counter("watch.retrain_failures_total").inc();
    obs::health().degrade("watch.engine",
                          std::string("retrain-failed: ") + e.what());
    return;
  }
  model_version_ = models_->publish(std::move(next));
  generation_ = models_->acquire();
  monitor_.rebind(generation_->periodic, generation_->pfsm,
                  generation_->short_term);
  ++swaps_;
  swapped_pending_report_ = true;
  obs::counter("watch.swaps").inc();

  if (!options_.publish_models_path.empty()) {
    // The swapped-in generation is what every window from here on scores
    // against; persist exactly that. Publishing is best-effort — a full
    // disk must not take down the monitoring stream.
    try {
      save_models_file(options_.publish_models_path, *generation_);
      obs::counter("watch.models_published").inc();
    } catch (const std::exception& e) {
      obs::health().degrade("watch.engine",
                            std::string("publish-models-failed: ") + e.what());
    }
  }
}

WatchEngineState WatchEngine::export_state() const {
  if (retrain_.valid()) {
    throw std::logic_error(
        "WatchEngine::export_state: retrain in flight — snapshot only from "
        "the window sink");
  }
  WatchEngineState s;
  s.t0 = t0_;
  s.last_watermark = last_watermark_;
  s.next_window = next_window_;
  s.max_end = max_end_;
  s.windows = windows_;
  s.alerts = alerts_;
  s.model_version = model_version_;
  s.swaps = swaps_;
  s.swapped_pending_report = swapped_pending_report_;
  s.done = done_;
  s.finished = finished_;
  s.reported_force_sealed = reported_force_sealed_;
  s.reported_late = reported_late_;
  s.retrain_buffer = retrain_buffer_;
  s.assembler = assembler_.export_state();
  s.monitor = monitor_.export_state();
  s.resolver = resolver_.export_state();
  return s;
}

void WatchEngine::import_state(WatchEngineState state) {
  t0_ = state.t0;
  last_watermark_ = state.last_watermark;
  next_window_ = state.next_window;
  max_end_ = state.max_end;
  windows_ = state.windows;
  alerts_ = state.alerts;
  model_version_ = state.model_version;
  swaps_ = state.swaps;
  swapped_pending_report_ = state.swapped_pending_report;
  done_ = state.done;
  finished_ = state.finished;
  reported_force_sealed_ = state.reported_force_sealed;
  reported_late_ = state.reported_late;
  retrain_buffer_ = std::move(state.retrain_buffer);
  resolver_.import_state(state.resolver);
  assembler_.import_state(std::move(state.assembler));
  // Re-pin whatever generation the handle was restored to, and rebind the
  // monitor before pouring its streaming state back in.
  generation_ = models_->acquire();
  monitor_.rebind(generation_->periodic, generation_->pfsm,
                  generation_->short_term);
  monitor_.import_state(state.monitor);
  // The snapshot was taken inside the sink, *before* the post-sink launch
  // decision. Replay it: the uninterrupted run launched a retrain over the
  // restored buffer iff the just-closed window completed an interval.
  if (options_.retrain_every_windows > 0 && windows_ > 0 &&
      windows_ % options_.retrain_every_windows == 0) {
    launch_retrain();
  }
}

}  // namespace behaviot
