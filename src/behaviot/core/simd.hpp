// Portable hot-loop kernels for the periodic-inference path.
//
// Every kernel preserves the exact IEEE-754 operation sequence of the naive
// scalar loop it replaces: unrolling never splits an accumulation chain into
// multiple accumulators, and element-wise kernels have no cross-element
// dependency at all. That pins results bit-for-bit — the byte-identity
// guarantees (thread-invariance, zero-spec chaos identity, the golden-model
// test) hold through these kernels by construction, while the compiler is
// still free to vectorize the independent work:
//
//  - `magnitudes_squared` writes independent outputs (trivially SIMD).
//  - `centered_autocorr_lags` interleaves the per-lag accumulation chains of
//    a windowed autocorrelation: the scalar code iterates lags in the outer
//    loop (one latency-bound dependent-add chain per lag, each ~4 cycles per
//    element); interleaving runs all chains concurrently over one pass of the
//    series, so the chains hide each other's FP-add latency and the inner
//    loop over lags vectorizes. Each individual chain still performs the
//    same adds on the same values in the same order.
//  - Reduction kernels (`sum`, `squared_distance`, ...) keep a single
//    accumulator and are unrolled only to cut loop overhead; they exist so
//    the callers share one definition whose FP shape is audited here once.
//
// Header-only; no intrinsics, no target-specific code. The scalar fallback
// IS the implementation — "SIMD" here means shaped so that auto-vectorization
// is legal without -ffast-math.
#pragma once

#include <complex>
#include <cstddef>
#include <span>

namespace behaviot::simd {

/// Σ x[i], left-to-right. Same add sequence as `for (x : xs) s += x;`.
[[nodiscard]] inline double sum(std::span<const double> xs) {
  double s = 0.0;
  std::size_t i = 0;
  const std::size_t n = xs.size();
  // Single accumulator: the unroll removes branch overhead only; the add
  // chain (and therefore rounding) is identical to the rolled loop.
  for (; i + 4 <= n; i += 4) {
    s += xs[i];
    s += xs[i + 1];
    s += xs[i + 2];
    s += xs[i + 3];
  }
  for (; i < n; ++i) s += xs[i];
  return s;
}

/// Σ (x[i]-m)^2, left-to-right — the r0 term of a normalized ACF.
[[nodiscard]] inline double centered_sum_squares(std::span<const double> xs,
                                                 double m) {
  double s = 0.0;
  std::size_t i = 0;
  const std::size_t n = xs.size();
  for (; i + 4 <= n; i += 4) {
    const double d0 = xs[i] - m;
    const double d1 = xs[i + 1] - m;
    const double d2 = xs[i + 2] - m;
    const double d3 = xs[i + 3] - m;
    s += d0 * d0;
    s += d1 * d1;
    s += d2 * d2;
    s += d3 * d3;
  }
  for (; i < n; ++i) {
    const double d = xs[i] - m;
    s += d * d;
  }
  return s;
}

/// Squared euclidean distance with the accumulation order of the naive
/// `for (i) { d = a[i]-b[i]; s += d*d; }` loop. The 2/3-D fast paths cover
/// the projected-grid DBSCAN hot path without any loop overhead.
[[nodiscard]] inline double squared_distance(const double* a, const double* b,
                                             std::size_t n) {
  switch (n) {
    case 2: {
      const double d0 = a[0] - b[0];
      const double d1 = a[1] - b[1];
      double s = d0 * d0;
      s += d1 * d1;
      return s;
    }
    case 3: {
      const double d0 = a[0] - b[0];
      const double d1 = a[1] - b[1];
      const double d2 = a[2] - b[2];
      double s = d0 * d0;
      s += d1 * d1;
      s += d2 * d2;
      return s;
    }
    default: {
      double s = 0.0;
      std::size_t i = 0;
      for (; i + 4 <= n; i += 4) {
        const double d0 = a[i] - b[i];
        const double d1 = a[i + 1] - b[i + 1];
        const double d2 = a[i + 2] - b[i + 2];
        const double d3 = a[i + 3] - b[i + 3];
        s += d0 * d0;
        s += d1 * d1;
        s += d2 * d2;
        s += d3 * d3;
      }
      for (; i < n; ++i) {
        const double d = a[i] - b[i];
        s += d * d;
      }
      return s;
    }
  }
}

[[nodiscard]] inline double squared_distance(std::span<const double> a,
                                             std::span<const double> b) {
  return squared_distance(a.data(), b.data(), a.size());
}

/// out[k] = |c[k]|^2. Element-wise, no cross-element dependency.
inline void magnitudes_squared(std::span<const std::complex<double>> c,
                               double* out) {
  for (std::size_t k = 0; k < c.size(); ++k) {
    const double re = c[k].real();
    const double im = c[k].imag();
    out[k] = re * re + im * im;
  }
}

/// Windowed autocovariance sums for every lag in [lag_lo, lag_hi]:
///
///   out[lag - lag_lo] = Σ_{t=0}^{n-lag-1} (x[t]-m) * (x[t+lag]-m)
///
/// Bit-identical to running the scalar per-lag loop for each lag: the sums
/// are accumulated in increasing t for every lag, with the identical
/// subtract/multiply/add expression shape — only the *interleaving across
/// lags* differs, which IEEE-754 cannot observe because the chains are
/// independent. `out` must hold lag_hi - lag_lo + 1 slots.
inline void centered_autocorr_lags(std::span<const double> xs, double m,
                                   std::size_t lag_lo, std::size_t lag_hi,
                                   double* out) {
  const std::size_t n = xs.size();
  const std::size_t lags = lag_hi - lag_lo + 1;
  for (std::size_t l = 0; l < lags; ++l) out[l] = 0.0;
  if (n <= lag_lo) return;

  // Main region: every lag participates (t + lag_hi < n), so the inner loop
  // over lags is branch-free and auto-vectorizes (contiguous xs[t+lag] loads,
  // independent out[l] accumulators). When the lag window fits a stack
  // array, accumulate there: `out` is a caller pointer the compiler must
  // assume aliases `xs`, which forces a reload/store of every accumulator
  // per t — local accumulators provably don't alias, so they stay in
  // registers across the whole pass. Same chains, same order, same sums.
  const std::size_t main_end = n > lag_hi ? n - lag_hi : 0;
  std::size_t t = 0;
  constexpr std::size_t kMaxLocalLags = 64;
  if (lags <= kMaxLocalLags) {
    double acc[kMaxLocalLags] = {};
    for (; t < main_end; ++t) {
      const double xc = xs[t] - m;
      const double* right = xs.data() + t + lag_lo;
      for (std::size_t l = 0; l < lags; ++l) {
        acc[l] += xc * (right[l] - m);
      }
    }
    for (std::size_t l = 0; l < lags; ++l) out[l] = acc[l];
  } else {
    for (; t < main_end; ++t) {
      const double xc = xs[t] - m;
      const double* right = xs.data() + t + lag_lo;
      for (std::size_t l = 0; l < lags; ++l) {
        out[l] += xc * (right[l] - m);
      }
    }
  }
  // Tail: lags drop out one by one as t + lag reaches n. Still increasing t
  // per surviving lag, so each chain's order is unchanged.
  for (; t + lag_lo < n; ++t) {
    const double xc = xs[t] - m;
    const std::size_t live = n - t - lag_lo;  // lags still in range
    const double* right = xs.data() + t + lag_lo;
    for (std::size_t l = 0; l < live && l < lags; ++l) {
      out[l] += xc * (right[l] - m);
    }
  }
}

}  // namespace behaviot::simd
