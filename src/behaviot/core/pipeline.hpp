// End-to-end BehavIoT pipeline (Fig. 1): network traffic → annotated flows →
// event inference → behavior models, and classification of new traffic
// against trained models.
#pragma once

#include <span>

#include "behaviot/core/model_set.hpp"
#include "behaviot/flow/assembler.hpp"
#include "behaviot/periodic/periodic_classifier.hpp"
#include "behaviot/pfsm/trace.hpp"
#include "behaviot/testbed/datasets.hpp"

namespace behaviot {

struct PipelineOptions {
  AssemblerOptions assembler;
  PeriodicInferenceOptions periodic;
  UserActionTrainOptions user_actions;
  SynopticOptions synoptic;
  /// Trace segmentation gap (§4.2; 1 minute in the paper).
  std::int64_t trace_gap_us = kDefaultTraceGapUs;
  /// Flows with the same predicted user label within this window merge into
  /// one user event (an activity can span a control flow + a relay flow).
  double event_merge_window_s = 8.0;
  double short_term_n_sigma = 3.0;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});

  /// Assembles and annotates a capture's flows, attaching simulation ground
  /// truth. The resolver persists across calls (DNS knowledge accumulates,
  /// as on a long-running gateway).
  [[nodiscard]] std::vector<FlowRecord> to_flows(
      const testbed::GeneratedCapture& capture, DomainResolver& resolver) const;

  /// Observation phase: trains all models from the three controlled
  /// datasets. Flows must already carry ground-truth labels.
  [[nodiscard]] BehaviorModelSet train(std::span<const FlowRecord> idle_flows,
                                       double idle_window_seconds,
                                       std::span<const FlowRecord> activity_flows,
                                       std::span<const FlowRecord> routine_flows)
      const;

  /// Per-flow classification outcome against a trained model set.
  struct Classified {
    std::vector<EventKind> kinds;        ///< aligned with the input flows
    std::vector<std::string> labels;     ///< "<device>:<label>" user labels
    std::vector<UserEvent> user_events;  ///< merged user events
    std::size_t periodic_via_timer = 0;
    std::size_t periodic_via_cluster = 0;
    /// Reason codes when classification ran in degraded mode — e.g.
    /// "periodic-group-quarantined:<device>:<group>" (the group's flows fell
    /// back to aperiodic) or "user-action-errors:<n>" (those flows stayed
    /// unlabeled). Empty means every stage ran cleanly. Sorted,
    /// deterministic; the same codes are reported to obs::health().
    std::vector<std::string> degraded;
  };

  /// Classifies flows (sorted by start time) into periodic / user /
  /// aperiodic events: timers + clusters first (§4.1), then the user-action
  /// models, remainder aperiodic.
  [[nodiscard]] Classified classify(std::span<const FlowRecord> flows,
                                    const BehaviorModelSet& models) const;

  /// Builds user-event traces from classified events.
  [[nodiscard]] std::vector<EventTrace> traces_of(
      std::span<const UserEvent> events) const;

  [[nodiscard]] const PipelineOptions& options() const { return options_; }

 private:
  PipelineOptions options_;
};

}  // namespace behaviot
