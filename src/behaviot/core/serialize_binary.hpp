// Versioned binary behavior-model format (`.bbm`) — the fleet-scale model
// store counterpart of the text serializer in core/serialize.hpp.
//
// Motivation (ROADMAP "fleet scale"): a fleet of N homes sharing a model
// store loads models homes × retrain-generations times; the hexfloat text
// format pays stream tokenization + float parsing per value. The binary
// format is laid out so a load is one read plus an in-place pointer walk:
// POD arrays (secondary periods, tree node distributions) are copied with a
// single memcpy each, strings need exactly one pass, and no tokenizer runs.
//
// Layout (all integers little-endian, doubles raw IEEE-754 binary64 LE):
//
//   offset  size  field
//   0       4     magic "BBM1"
//   4       2     format version (currently 1)
//   6       2     flags (reserved, must be 0)
//   8       4     section count (u32)
//   12      16*n  section table: {id u32, reserved u32 = 0, size u64}
//   ...           section payloads, in table order, back to back
//   end-4   4     CRC32 (IEEE 802.3) over every byte before it
//
// Sections (unknown ids are skipped — forward compatibility within a major
// version; their bytes are still covered by the CRC):
//
//   1 periodic    u64 count; per model: u32 device, u8 app, u64 support,
//                 u64 absent_generations, f64 period, f64 tolerance,
//                 f64 autocorr, str domain, str group,
//                 u64 n_secondary + raw f64[n_secondary]
//   2 pfsm        u64 num_states; str label per state >= 2;
//                 u64 n_transitions; per edge: u32 from, u32 to, u64 count
//   3 thresholds  f64 periodic, f64 long_term_z, f64 short_term mean,
//                 f64 sigma, f64 n_sigma
//   4 traces      u64 n_traces; per trace: u64 len + str per label
//   5 forests     f64 decision_threshold; u64 n_devices; per device:
//                 u32 device, u64 n_classifiers; per classifier:
//                 str activity, u32 num_classes, u64 n_trees; per tree:
//                 u64 n_nodes; per node: i32 feature, f64 threshold,
//                 i32 left, i32 right, u64 dist_len + raw f64[dist_len]
//
// Forest invariants (enforced on load — classify walks trees with no
// bounds checks): num_classes >= 2; a leaf is exactly {feature == -1,
// left == right == -1, dist_len == num_classes}; an internal node has
// 0 <= feature < kNumFlowFeatures and both children strictly greater than
// its own index and < n_nodes (the trainer lays children out after their
// parent, so forward-only edges also rule out cycles).
//
// `str` is u32 length + raw bytes. The forests section is binary-only: the
// text format deliberately omits user-action forests, so text → binary →
// text round trips stay byte-identical while the binary store can carry the
// full model set a fleet shares.
//
// Parse policy matches the text loader (DESIGN.md §5c/§5i): the header
// (magic, version, flags, section table, structural sizes) must always
// parse — failing there throws SerializationError in either policy, with
// the absolute byte offset of the damage. After the header, kStrict throws
// at the first malformed section; kLenient drops the damaged section
// (counted in stats->sections_dropped), then — unlike the text loader,
// which has no framing to resynchronize on — uses the section table to
// continue with the next section. Every count is capped against the bytes
// remaining in its section before any reserve(), so a corrupt count can
// never drive an allocation larger than the input.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "behaviot/core/model_set.hpp"
#include "behaviot/core/serialize.hpp"
#include "behaviot/net/parse_policy.hpp"

namespace behaviot {

inline constexpr std::uint16_t kBinaryModelFormatVersion = 1;
/// "BBM1" when read as little-endian u32.
inline constexpr std::uint32_t kBinaryModelMagic = 0x314d4242u;

/// Section ids of format version 1 (see the layout comment above).
inline constexpr std::uint32_t kSectionPeriodic = 1;
inline constexpr std::uint32_t kSectionPfsm = 2;
inline constexpr std::uint32_t kSectionThresholds = 3;
inline constexpr std::uint32_t kSectionTraces = 4;
inline constexpr std::uint32_t kSectionForests = 5;

/// CRC32 (IEEE 802.3, reflected, init/final 0xffffffff) — the trailer
/// checksum of the .bbm format, exposed for tests and external validators.
[[nodiscard]] std::uint32_t crc32_ieee(std::span<const std::uint8_t> bytes);

/// Serializes the full model set — periodic models (incl.
/// absent_generations), user-action forests, PFSM, thresholds, training
/// traces — to the binary format.
[[nodiscard]] std::string save_models_binary(const BehaviorModelSet& models);
void save_models_binary(std::ostream& os, const BehaviorModelSet& models);
void save_models_binary_file(const std::string& path,
                             const BehaviorModelSet& models);

/// Deserializes a binary model set from an in-memory image (the whole file,
/// read in one shot — the zero-copy walk needs random access for the
/// section table and CRC). See the header comment for policy semantics.
BehaviorModelSet load_models_binary(std::span<const std::uint8_t> bytes,
                                    ParsePolicy policy = ParsePolicy::kStrict,
                                    ParseStats* stats = nullptr);
BehaviorModelSet load_models_binary_file(
    const std::string& path, ParsePolicy policy = ParsePolicy::kStrict,
    ParseStats* stats = nullptr);

/// True when `path` names a binary model file by extension (".bbm",
/// case-insensitive) — the dispatch rule save_models_file/load_models_file
/// use to route between the text and binary formats.
[[nodiscard]] bool is_binary_model_path(const std::string& path);

/// One periodic model decoded in place from a .bbm image: scalars by value,
/// strings as views into the image. Valid only while the image bytes
/// outlive it — a borrowed record, not an owning PeriodicModel.
struct PeriodicModelView {
  DeviceId device = kUnknownDevice;
  AppProtocol app = AppProtocol::kOtherTcp;
  std::uint64_t support = 0;
  std::uint64_t absent_generations = 0;
  double period_seconds = 0.0;
  double tolerance_seconds = 0.0;
  double autocorr_score = 0.0;
  std::string_view domain;
  std::string_view group;
  /// Secondary periods stay in the image (where they are unaligned, so a
  /// span<const double> would be UB); decode one on demand.
  std::size_t secondary_period_count = 0;
  const std::uint8_t* secondary_period_bytes = nullptr;

  [[nodiscard]] double secondary_period(std::size_t i) const;

  /// Owning copy, for callers that keep a record past the image's lifetime.
  [[nodiscard]] PeriodicModel materialize() const;
};

/// The thresholds section decoded by value (it is all scalars).
struct ThresholdsView {
  double periodic = 0.0;
  double long_term_z = 0.0;
  double short_term_mean = 0.0;
  double short_term_sigma = 0.0;
  double short_term_n_sigma = 0.0;
};

/// Zero-copy accessor over a .bbm image — the "one read + in-place pointer
/// walk" load the format is laid out for. open() validates everything
/// structural (header, section table, size accounting, CRC trailer) and
/// throws SerializationError with a byte offset on any damage; there is no
/// lenient mode here — salvage belongs to load_models_binary. After open(),
/// accessors decode fields straight out of the borrowed image with no
/// per-model allocation, so a fleet store can scan or point-query thousands
/// of model files without materializing them. The image must outlive the
/// view and every PeriodicModelView obtained from it.
class BinaryModelView {
 public:
  struct Section {
    std::uint32_t id = 0;
    std::size_t offset = 0;  ///< absolute payload offset in the image
    std::size_t size = 0;
  };

  static BinaryModelView open(std::span<const std::uint8_t> bytes);

  /// Decodes every periodic model in place: one allocation for the returned
  /// vector, zero per model.
  [[nodiscard]] std::vector<PeriodicModelView> periodic() const;

  /// Point lookup without decoding the rest of the set (fleet store
  /// queries). Linear in the section — the image carries no index.
  [[nodiscard]] std::optional<PeriodicModelView> find_periodic(
      DeviceId device, std::string_view group) const;

  [[nodiscard]] std::size_t periodic_count() const;
  [[nodiscard]] std::optional<ThresholdsView> thresholds() const;
  [[nodiscard]] bool has_section(std::uint32_t id) const;
  [[nodiscard]] const std::vector<Section>& sections() const {
    return sections_;
  }

 private:
  BinaryModelView() = default;

  [[nodiscard]] const Section* find_section(std::uint32_t id) const;

  std::span<const std::uint8_t> image_;
  std::vector<Section> sections_;
};

}  // namespace behaviot
