// Atomic model-generation handle for hot swaps (`behaviot watch`).
//
// The watch loop evaluates deviation windows against a model generation
// while a background retrain builds the next one. The handle makes the
// handover safe and atomic: a retrain builds a complete BehaviorModelSet
// off to the side and publishes it with one pointer swap, so readers only
// ever see fully constructed generations — never a half-written set — and
// a generation stays alive for as long as any reader still holds it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

#include "behaviot/core/model_set.hpp"

namespace behaviot {

class ModelHandle {
 public:
  explicit ModelHandle(BehaviorModelSet initial)
      : current_(std::make_shared<const BehaviorModelSet>(std::move(initial))) {
  }

  ModelHandle(const ModelHandle&) = delete;
  ModelHandle& operator=(const ModelHandle&) = delete;

  /// Current generation. The returned shared_ptr pins the generation: it
  /// remains valid (and unchanged) however many publishes happen afterwards,
  /// so a monitor can keep scoring one window against one generation while
  /// the next is swapped in.
  [[nodiscard]] std::shared_ptr<const BehaviorModelSet> acquire() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Publishes a fully built generation (release side of the swap). Readers
  /// acquire either the old or the new set, never a mixture. Returns the new
  /// generation's version number.
  std::uint64_t publish(BehaviorModelSet next) {
    auto fresh = std::make_shared<const BehaviorModelSet>(std::move(next));
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(fresh);
    return ++version_;
  }

  /// Restores a checkpointed generation: the set becomes current and the
  /// version counter continues from `version`, so post-resume publishes
  /// number their generations exactly as the uninterrupted run would have.
  void restore(BehaviorModelSet set, std::uint64_t version) {
    auto fresh = std::make_shared<const BehaviorModelSet>(std::move(set));
    std::lock_guard<std::mutex> lock(mu_);
    current_ = std::move(fresh);
    version_ = version;
  }

  /// Monotonic generation counter; 1 is the initial set.
  [[nodiscard]] std::uint64_t version() const {
    std::lock_guard<std::mutex> lock(mu_);
    return version_;
  }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const BehaviorModelSet> current_;
  std::uint64_t version_ = 1;
};

}  // namespace behaviot
