#include "behaviot/core/deviation_engine.hpp"

#include "behaviot/obs/span.hpp"

namespace behaviot {

DeviationEngine::DeviationEngine(const BehaviorModelSet& models,
                                 PipelineOptions pipeline,
                                 MonitorOptions monitor)
    : models_(&models),
      pipeline_(std::move(pipeline)),
      monitor_(models.periodic, models.pfsm, models.short_term, monitor) {}

std::vector<DeviationAlert> DeviationEngine::process_window(
    const testbed::GeneratedCapture& capture) {
  obs::StageSpan span("deviation.window");
  const std::vector<FlowRecord> flows =
      pipeline_.to_flows(capture, resolver_);
  const Pipeline::Classified classified =
      pipeline_.classify(flows, *models_);
  const std::vector<EventTrace> traces =
      pipeline_.traces_of(classified.user_events);
  ++windows_;
  return monitor_.evaluate_window(capture.start, capture.end, flows, traces);
}

void DeviationEngine::reset() {
  monitor_.reset();
  resolver_ = DomainResolver{};
  windows_ = 0;
}

}  // namespace behaviot
