// Behavior-model serialization (§7.2: "models based on lab experiments can
// be pushed into home-network-based deployments").
//
// A line-oriented text format: human-diffable, versioned, and stable across
// platforms (all floating-point values round-trip via hexfloat). Covers the
// periodic models (with their timer state-free parameters) and the PFSM +
// thresholds. Random-Forest user-action models serialize tree-by-tree.
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "behaviot/core/model_set.hpp"

namespace behaviot {

/// Raised on malformed or version-incompatible input.
class SerializationError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr int kModelFormatVersion = 1;

/// Writes the full model set (periodic models, PFSM, thresholds, training
/// traces). User-action forests are *not* included — they are retrained
/// from labeled data and dominate size; see the discussion in DESIGN.md.
void save_models(std::ostream& os, const BehaviorModelSet& models);
void save_models_file(const std::string& path,
                      const BehaviorModelSet& models);

/// Reads a model set previously written by save_models. The periodic
/// cluster stage is not serialized (it is a cache over training features);
/// loaded models classify via timers, which the paper's timer-first design
/// makes the dominant path.
BehaviorModelSet load_models(std::istream& is);
BehaviorModelSet load_models_file(const std::string& path);

}  // namespace behaviot
