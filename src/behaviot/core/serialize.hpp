// Behavior-model serialization (§7.2: "models based on lab experiments can
// be pushed into home-network-based deployments").
//
// A line-oriented text format: human-diffable, versioned, and stable across
// platforms (all floating-point values round-trip via hexfloat). Covers the
// periodic models (with their timer state-free parameters) and the PFSM +
// thresholds. Random-Forest user-action models serialize tree-by-tree.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "behaviot/core/model_set.hpp"
#include "behaviot/net/parse_policy.hpp"

namespace behaviot {

/// Raised on malformed or version-incompatible input. The binary loader
/// (core/serialize_binary.hpp) reports the absolute byte offset of the
/// damage; the token-oriented text loader has no byte positions and leaves
/// it at kNoOffset.
class SerializationError : public std::runtime_error {
 public:
  static constexpr std::size_t kNoOffset = static_cast<std::size_t>(-1);

  using std::runtime_error::runtime_error;
  SerializationError(const std::string& what, std::size_t offset)
      : std::runtime_error(what + " (at byte " + std::to_string(offset) + ")"),
        offset_(offset) {}

  /// Byte offset of the malformation, or kNoOffset when unknown.
  [[nodiscard]] std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_ = kNoOffset;
};

inline constexpr int kModelFormatVersion = 1;

/// Writes the full model set (periodic models, PFSM, thresholds, training
/// traces). User-action forests are *not* included — they are retrained
/// from labeled data and dominate size; see the discussion in DESIGN.md.
/// All formatting is locale-independent (to_chars + a classic-imbued
/// stream), so an embedding app that sets a comma-decimal global locale
/// still writes and reads byte-identical model files.
void save_models(std::ostream& os, const BehaviorModelSet& models);
/// Dispatches on extension: a ".bbm" path is written in the binary format
/// (core/serialize_binary.hpp, which does carry user-action forests); any
/// other path gets the text format.
void save_models_file(const std::string& path,
                      const BehaviorModelSet& models);

/// Reads a model set previously written by save_models. The periodic
/// cluster stage is not serialized (it is a cache over training features);
/// loaded models classify via timers, which the paper's timer-first design
/// makes the dominant path.
///
/// The header (magic + version) must always parse — a file that fails there
/// is not a model file and throws SerializationError in either policy.
/// After the header, kStrict (the default) throws SerializationError at the
/// first malformed token; kLenient stops at the damage instead, returning
/// every fully parsed entry up to that point and counting the abandonment
/// in `stats->sections_dropped`. Counts are validated (digits only, capped
/// against the remaining input size) so corrupt files fail cleanly instead
/// of driving huge reserve() allocations.
BehaviorModelSet load_models(std::istream& is,
                             ParsePolicy policy = ParsePolicy::kStrict,
                             ParseStats* stats = nullptr);
/// Dispatches on extension like save_models_file: ".bbm" loads binary,
/// anything else loads text.
BehaviorModelSet load_models_file(const std::string& path,
                                  ParsePolicy policy = ParsePolicy::kStrict,
                                  ParseStats* stats = nullptr);

}  // namespace behaviot
