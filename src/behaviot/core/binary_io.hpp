// Shared machinery for the repo's section-tabled binary image formats.
//
// Two on-disk formats use the exact same envelope — the `.bbm` model store
// (core/serialize_binary.hpp) and the `.bbc` watch checkpoint
// (core/checkpoint.hpp):
//
//   offset  size  field
//   0       4     format magic (u32 LE)
//   4       2     format version (u16 LE)
//   6       2     flags (reserved, must be 0)
//   8       4     section count (u32 LE)
//   12      16*n  section table: {id u32, reserved u32 = 0, size u64}
//   ...           section payloads, in table order, back to back
//   end-4   4     CRC32 (IEEE 802.3) over every byte before it
//
// This header factors the envelope out once: little-endian writer
// primitives, the bounds-checked section Cursor (absolute byte offsets in
// every SerializationError, counts capped against remaining section bytes
// before any allocation), structural layout validation, and image assembly.
// Each format supplies an ImageFormat{magic, version, tag, name}; the tag
// prefixes every error ("bbm: ...", "bbc: ...") so a damaged file names its
// own format.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "behaviot/core/serialize.hpp"

namespace behaviot {

/// CRC32 (IEEE 802.3, reflected, init/final 0xffffffff) — the trailer
/// checksum of every section-tabled image, exposed for tests and external
/// validators.
[[nodiscard]] std::uint32_t crc32_ieee(std::span<const std::uint8_t> bytes);

namespace binio {

inline constexpr std::size_t kHeaderSize = 12;  ///< magic + ver + flags + n
inline constexpr std::size_t kSectionEntrySize = 16;  ///< id + reserved + size
inline constexpr std::size_t kCrcSize = 4;

/// Identity of one image format: magic word, the single supported version,
/// the error-message tag ("bbm") and a human-readable name for the
/// bad-magic message ("binary model").
struct ImageFormat {
  std::uint32_t magic = 0;
  std::uint16_t version = 0;
  const char* tag = "?";
  const char* name = "?";
};

[[nodiscard]] inline std::span<const std::uint8_t> as_bytes(
    const std::string& s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

// ---------------------------------------------------------------------------
// Writer: append little-endian primitives to a byte buffer. Doubles are raw
// IEEE-754 binary64 — every platform this repo targets is little-endian
// IEEE; the formats pin that so images are portable across the fleet.

void put_u8(std::string& out, std::uint8_t v);
void put_u16(std::string& out, std::uint16_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
void put_i32(std::string& out, std::int32_t v);
void put_i64(std::string& out, std::int64_t v);
void put_f64(std::string& out, double v);

/// Raw POD array: one length-free memcpy (the element count is always
/// written separately by the caller).
void put_f64_array(std::string& out, std::span<const double> values);

void put_str(std::string& out, std::string_view s);

// ---------------------------------------------------------------------------
// Reader: a bounds-checked cursor over one section of a loaded image.
// Every accessor throws SerializationError with the absolute file offset of
// the damage; counts are capped against the bytes remaining in the section
// before any allocation sized by them.

class Cursor {
 public:
  Cursor(std::span<const std::uint8_t> bytes, std::size_t file_offset,
         const char* section, const char* tag)
      : bytes_(bytes), file_offset_(file_offset), section_(section),
        tag_(tag) {}

  [[nodiscard]] std::size_t remaining() const { return bytes_.size() - pos_; }
  [[nodiscard]] bool at_end() const { return pos_ == bytes_.size(); }
  [[nodiscard]] std::size_t offset() const { return file_offset_ + pos_; }

  std::uint8_t u8(const char* what);
  std::uint16_t u16(const char* what);
  std::uint32_t u32(const char* what);
  std::uint64_t u64(const char* what);
  std::int32_t i32(const char* what);
  std::int64_t i64(const char* what);
  double f64(const char* what);

  /// Element count for a loop/reserve: each element occupies at least
  /// `min_element_bytes` of the section, so a count exceeding the remaining
  /// bytes is structural corruption — rejected before it can size an
  /// allocation (the binary analogue of the text loader's stoul("-1") →
  /// reserve(2^64) guard).
  std::size_t count(const char* what, std::size_t min_element_bytes);

  /// Borrowed string: length-prefix check, then a view into the image.
  std::string_view str_view(const char* what);
  std::string str(const char* what) { return std::string(str_view(what)); }

  /// Zero-copy POD array read: one memcpy from the image into `out`.
  void f64_array(std::vector<double>& out, std::size_t n, const char* what);

  /// Fully zero-copy variant: bounds-checks and skips `n` doubles, returning
  /// a pointer to their (unaligned) bytes in the image.
  const std::uint8_t* f64_array_bytes(std::size_t n, const char* what);

  [[noreturn]] void fail(const std::string& why) const {
    fail_at(offset(), why);
  }

 private:
  void need(std::size_t n, const char* what);
  [[noreturn]] void fail_at(std::size_t at, const std::string& why) const;

  std::span<const std::uint8_t> bytes_;
  std::size_t pos_ = 0;
  std::size_t file_offset_;
  const char* section_;
  const char* tag_;
};

struct SectionEntry {
  std::uint32_t id = 0;
  std::size_t offset = 0;  ///< absolute offset of the payload in the image
  std::size_t size = 0;
};

/// Everything structural about an image, validated: header fields, section
/// table, size accounting, CRC trailer. Structural damage always throws
/// regardless of parse policy; the CRC verdict is returned instead of
/// enforced so each caller (strict load, lenient load, zero-copy view) can
/// apply its own policy to payload integrity.
struct ImageLayout {
  std::vector<SectionEntry> sections;
  std::size_t payload_end = 0;
  bool crc_ok = false;
  std::uint32_t stored_crc = 0;
  std::uint32_t computed_crc = 0;
};

ImageLayout parse_layout(std::span<const std::uint8_t> bytes,
                         const ImageFormat& fmt);

[[noreturn]] void throw_crc_mismatch(const ImageLayout& layout,
                                     const ImageFormat& fmt);

/// Assembles a complete image — header, section table, payloads in order,
/// CRC trailer — from (id, payload) pairs.
[[nodiscard]] std::string build_image(
    const ImageFormat& fmt,
    std::span<const std::pair<std::uint32_t, std::string>> sections);

}  // namespace binio
}  // namespace behaviot
