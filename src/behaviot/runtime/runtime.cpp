#include "behaviot/runtime/runtime.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>
#include <string>

#include "behaviot/obs/span.hpp"
#include "behaviot/obs/trace.hpp"

namespace behaviot::runtime {
namespace {

/// True while this thread is executing inside a parallel region (a worker,
/// or the caller running its own share of chunks). Nested parallel_for
/// calls from such a thread run inline instead of re-entering the pool.
thread_local bool tls_in_parallel_region = false;

/// Worker-scratch slot of this thread; 0 (caller) unless a pool worker set
/// it at startup. See runtime::worker_slot().
thread_local std::size_t tls_worker_slot = 0;

}  // namespace

std::size_t worker_slot() { return tls_worker_slot; }

std::size_t default_threads() {
  if (const char* env = std::getenv("BEHAVIOT_THREADS")) {
    char* end = nullptr;
    const unsigned long v = std::strtoul(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

/// One parallel_for invocation. Lives on the caller's stack; workers hold a
/// pointer only for the duration of the job (the caller blocks until
/// `active_` drains before the Job goes out of scope).
struct ThreadPool::Job {
  const std::function<void(std::size_t)>* fn = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::size_t num_chunks = 0;
  std::atomic<std::size_t> cursor{0};  ///< next chunk to claim
  std::atomic<bool> failed{false};     ///< abandon unclaimed chunks
  std::mutex error_mu;
  std::exception_ptr error;
  /// Trace span name for each executed chunk; empty when tracing is off at
  /// submit time. Captured once by the submitting thread (its innermost
  /// StageSpan path + "/task"), read-only during the job.
  std::string trace_label;
};

ThreadPool::ThreadPool(RuntimeOptions options) : options_(options) {
  if (options_.threads == 0) options_.threads = default_threads();
  if (options_.chunks_per_thread == 0) options_.chunks_per_thread = 1;
  workers_.reserve(options_.threads - 1);
  for (std::size_t i = 0; i + 1 < options_.threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::run_job(Job& job) {
  const bool traced = !job.trace_label.empty() && obs::Tracer::enabled();
  while (!job.failed.load(std::memory_order_relaxed)) {
    const std::size_t c = job.cursor.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    const std::size_t lo = job.begin + c * job.chunk;
    const std::size_t hi = std::min(job.end, lo + job.chunk);
    if (traced) obs::Tracer::global().span_begin(job.trace_label);
    try {
      for (std::size_t i = lo; i < hi; ++i) (*job.fn)(i);
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(job.error_mu);
        if (!job.error) job.error = std::current_exception();
      }
      job.failed.store(true, std::memory_order_relaxed);
    }
    if (traced) obs::Tracer::global().span_end(job.trace_label);
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  tls_in_parallel_region = true;
  tls_worker_slot = worker_index + 1;
  obs::Tracer::set_thread_label("pool-worker-" + std::to_string(worker_index));
  std::uint64_t seen_generation = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(
          lock, [&] { return stop_ || generation_ != seen_generation; });
      if (stop_) return;
      seen_generation = generation_;
      job = job_;
    }
    if (job != nullptr) run_job(*job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--active_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (end <= begin) return;
  const std::size_t n = end - begin;
  if (workers_.empty() || tls_in_parallel_region || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  Job job;
  job.fn = &fn;
  job.begin = begin;
  job.end = end;
  if (obs::Tracer::enabled()) {
    const std::string& parent = obs::current_span_path();
    job.trace_label = parent.empty() ? "parallel_for" : parent + "/task";
  }
  const std::size_t target_chunks = threads() * options_.chunks_per_thread;
  job.chunk = std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);
  job.num_chunks = (n + job.chunk - 1) / job.chunk;

  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &job;
    ++generation_;
    active_ = workers_.size();
  }
  work_cv_.notify_all();

  tls_in_parallel_region = true;
  run_job(job);  // the caller works too; run_job never throws
  tls_in_parallel_region = false;

  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] { return active_ == 0; });
    job_ = nullptr;
  }
  if (job.error) std::rethrow_exception(job.error);
}

namespace {

std::mutex g_global_mu;

std::unique_ptr<ThreadPool>& global_slot() {
  static std::unique_ptr<ThreadPool> pool;  // joins workers at exit
  return pool;
}

}  // namespace

ThreadPool& global_pool() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  auto& slot = global_slot();
  if (!slot) slot = std::make_unique<ThreadPool>(RuntimeOptions{});
  return *slot;
}

void set_global_threads(std::size_t threads) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  global_slot() = std::make_unique<ThreadPool>(RuntimeOptions{.threads = threads});
}

std::size_t global_threads() { return global_pool().threads(); }

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn) {
  global_pool().parallel_for(begin, end, fn);
}

}  // namespace behaviot::runtime
