// Deterministic parallel execution runtime for the pipeline's hot paths.
//
// A small chunked thread pool (no work stealing): each `parallel_for` splits
// its index range into fixed-size chunks and workers claim chunks from a
// single atomic cursor. Which thread executes which chunk is nondeterministic,
// but every index writes to its own dedicated output slot, so any computation
// whose per-index work is pure produces bit-identical results at every thread
// count. The pipeline relies on this: training with 1 thread and N threads
// must serialize to byte-identical `BehaviorModelSet`s.
//
// Rules of use:
//  - `threads == 1` (or a pool on a single-core machine) never spawns
//    workers; every call runs inline on the caller's thread.
//  - Nested calls are safe: a `parallel_for` issued from inside a worker (or
//    from inside the caller's own chunk) runs serially on that thread rather
//    than deadlocking on the shared pool.
//  - Exceptions thrown by the body are caught, the remaining chunks are
//    abandoned, and the first exception is rethrown on the calling thread.
//
// When the event tracer (obs/trace.hpp) is armed, each claimed chunk is
// recorded as a span on the executing thread, labeled with the submitting
// thread's innermost StageSpan path plus "/task" — so a parallel stage
// renders as per-thread lanes of chunk spans under the stage's name in
// Perfetto. Workers label themselves "pool-worker-<i>" in exported traces.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

namespace behaviot::runtime {

/// Outcome of one item of an error-isolating parallel map: either the value
/// or the error message of the exception the item's function threw.
template <typename T>
struct Try {
  std::optional<T> value;
  std::string error;  ///< empty on success

  [[nodiscard]] bool ok() const noexcept { return value.has_value(); }
  [[nodiscard]] T& operator*() { return *value; }
  [[nodiscard]] const T& operator*() const { return *value; }
  [[nodiscard]] T* operator->() { return &*value; }
  [[nodiscard]] const T* operator->() const { return &*value; }
};

struct RuntimeOptions {
  /// Worker count. 0 = use the BEHAVIOT_THREADS environment variable when it
  /// is set to a positive integer, otherwise hardware concurrency.
  std::size_t threads = 0;
  /// Scheduling grain: chunks handed out per thread. More chunks smooth out
  /// imbalanced per-index work at the cost of more cursor traffic.
  std::size_t chunks_per_thread = 8;
};

/// Thread count a default-constructed pool resolves to: BEHAVIOT_THREADS
/// when set to a positive integer, else hardware concurrency (>= 1).
[[nodiscard]] std::size_t default_threads();

class ThreadPool {
 public:
  explicit ThreadPool(RuntimeOptions options = {});
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in a parallel region (workers + caller).
  [[nodiscard]] std::size_t threads() const noexcept {
    return workers_.size() + 1;
  }

  /// Calls `fn(i)` for every i in [begin, end) and blocks until all calls
  /// return. Rethrows the first exception thrown by `fn`.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Maps `fn` over `items` into a result vector aligned with the input.
  /// The result type must be default-constructible and move-assignable.
  template <typename Items, typename Fn>
  auto parallel_map(const Items& items, Fn&& fn) {
    using Out = std::decay_t<std::invoke_result_t<Fn&, decltype(items[0])>>;
    std::vector<Out> out(items.size());
    parallel_for(0, items.size(),
                 [&](std::size_t i) { out[i] = fn(items[i]); });
    return out;
  }

  /// Error-isolating variant of `parallel_map`: an item whose `fn` throws
  /// yields a Try carrying the error message instead of aborting the whole
  /// map — the quarantine primitive of the graceful-degradation pipeline.
  /// Every item runs to completion (or failure); results stay aligned with
  /// the input, so the outcome is deterministic at any thread count.
  template <typename Items, typename Fn>
  auto parallel_try_map(const Items& items, Fn&& fn) {
    using Out = std::decay_t<std::invoke_result_t<Fn&, decltype(items[0])>>;
    std::vector<Try<Out>> out(items.size());
    parallel_for(0, items.size(), [&](std::size_t i) {
      try {
        out[i].value = fn(items[i]);
      } catch (const std::exception& e) {
        out[i].error = e.what();
        if (out[i].error.empty()) out[i].error = "unspecified error";
      } catch (...) {
        out[i].error = "non-standard exception";
      }
    });
    return out;
  }

 private:
  struct Job;

  void worker_loop(std::size_t worker_index);
  static void run_job(Job& job);

  RuntimeOptions options_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< signals a new job generation
  std::condition_variable done_cv_;  ///< signals all workers finished a job
  Job* job_ = nullptr;
  std::uint64_t generation_ = 0;
  std::size_t active_ = 0;  ///< workers still inside the current job
  bool stop_ = false;
};

/// The process-wide pool used by the pipeline's parallel stages. Lazily
/// constructed with `RuntimeOptions{}` (honoring BEHAVIOT_THREADS).
[[nodiscard]] ThreadPool& global_pool();

/// Replaces the global pool with one of `threads` threads (0 = re-resolve
/// the default). Must not race with in-flight parallel work; intended for
/// startup configuration, tests, and benchmarks.
void set_global_threads(std::size_t threads);

/// Thread count of the current global pool.
[[nodiscard]] std::size_t global_threads();

/// Stable slot of the current thread within parallel regions: 0 for the
/// submitting caller (and any thread outside a pool), 1..N for pool workers.
/// Slots are per-thread and fixed for a worker's lifetime, so they index
/// per-worker scratch storage without locks.
[[nodiscard]] std::size_t worker_slot();

/// Per-worker scratch storage for parallel regions: one `T` per
/// participating thread, indexed by `worker_slot()`. Intended for reusable
/// buffers (e.g. FFT workspaces) that are expensive to allocate per item but
/// must not be shared across threads mid-region.
///
/// Size it with `global_threads()` (the default) when the region runs on the
/// global pool. A slot index beyond the storage (a pool larger than the
/// WorkerLocal, e.g. after `set_global_threads` grew the pool) falls back to
/// slot 0 — safe only when such threads cannot run concurrently with the
/// caller, so construct the WorkerLocal after the pool is configured.
template <typename T>
class WorkerLocal {
 public:
  explicit WorkerLocal(std::size_t slots = 0)
      : slots_(slots > 0 ? slots : global_threads() + 1) {}

  /// This thread's instance (slot 0 for the caller).
  [[nodiscard]] T& local() {
    const std::size_t s = worker_slot();
    return slots_[s < slots_.size() ? s : 0];
  }

  [[nodiscard]] std::size_t size() const noexcept { return slots_.size(); }

 private:
  std::vector<T> slots_;
};

/// Convenience wrappers over the global pool.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& fn);

template <typename Items, typename Fn>
auto parallel_map(const Items& items, Fn&& fn) {
  return global_pool().parallel_map(items, std::forward<Fn>(fn));
}

template <typename Items, typename Fn>
auto parallel_try_map(const Items& items, Fn&& fn) {
  return global_pool().parallel_try_map(items, std::forward<Fn>(fn));
}

}  // namespace behaviot::runtime
