// User events — the alphabet of the system behavior model (§4.2).
#pragma once

#include <string>
#include <vector>

#include "behaviot/net/packet.hpp"
#include "behaviot/net/time.hpp"

namespace behaviot {

struct UserEvent {
  Timestamp ts;
  DeviceId device = kUnknownDevice;
  std::string device_name;
  std::string activity;
  /// Provenance from the inferring classifier: winning forest probability
  /// and its margin over the runner-up activity. 1.0/1.0 for ground-truth
  /// events (the simulator emits certainties, not votes).
  double confidence = 1.0;
  double vote_margin = 1.0;

  /// State label in the PFSM, e.g. "tplink_plug:on".
  [[nodiscard]] std::string label() const {
    return device_name + ":" + activity;
  }

  friend bool operator==(const UserEvent&, const UserEvent&) = default;
};

/// Chronological comparison for sorting event streams.
[[nodiscard]] inline bool before(const UserEvent& a, const UserEvent& b) {
  return a.ts < b.ts;
}

}  // namespace behaviot
