#include "behaviot/pfsm/event.hpp"

// UserEvent is header-only; this TU anchors the module in the build.
