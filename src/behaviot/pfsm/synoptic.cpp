#include "behaviot/pfsm/synoptic.hpp"

#include <algorithm>
#include <deque>
#include <map>
#include <optional>
#include <set>

#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/span.hpp"

namespace behaviot {
namespace {

// One event instance: position `pos` of trace `trace`.
struct Instance {
  std::size_t trace = 0;
  std::size_t pos = 0;
};

constexpr int kInitialPartition = 0;
constexpr int kTerminalPartition = 1;

struct RefinementState {
  std::span<const std::vector<std::string>> traces;
  std::vector<Instance> instances;
  std::vector<int> partition_of;          // per instance
  std::vector<std::string> partition_label;  // per partition id
  int next_partition = 2;

  [[nodiscard]] const std::string& label_of(std::size_t inst) const {
    const Instance& i = instances[inst];
    return traces[i.trace][i.pos];
  }

  /// Partition graph edges with counts, derived from instance succession.
  [[nodiscard]] std::map<std::pair<int, int>, std::size_t> edges() const {
    std::map<std::pair<int, int>, std::size_t> out;
    // Map (trace, pos) -> instance index for successor lookup.
    std::size_t idx = 0;
    for (std::size_t t = 0; t < traces.size(); ++t) {
      if (traces[t].empty()) continue;
      const std::size_t first = idx;
      for (std::size_t p = 0; p + 1 < traces[t].size(); ++p) {
        ++out[{partition_of[idx + p], partition_of[idx + p + 1]}];
      }
      ++out[{kInitialPartition, partition_of[first]}];
      ++out[{partition_of[idx + traces[t].size() - 1], kTerminalPartition}];
      idx += traces[t].size();
    }
    return out;
  }

  /// True when trace position `pos` is eventually followed by label `b`.
  [[nodiscard]] bool eventually(const Instance& i, const std::string& b) const {
    const auto& tr = traces[i.trace];
    for (std::size_t p = i.pos + 1; p < tr.size(); ++p) {
      if (tr[p] == b) return true;
    }
    return false;
  }

  /// True when trace position `pos` was preceded by label `a`.
  [[nodiscard]] bool previously(const Instance& i, const std::string& a) const {
    const auto& tr = traces[i.trace];
    for (std::size_t p = 0; p < i.pos; ++p) {
      if (tr[p] == a) return true;
    }
    return false;
  }
};

/// BFS for a path `from` → `to` (≥1 edge), optionally avoiding partitions
/// whose label equals `avoid_label`. Returns the path as partition ids.
std::optional<std::vector<int>> find_path(
    const std::map<std::pair<int, int>, std::size_t>& edges,
    const RefinementState& state, int from, int to,
    const std::string& avoid_label) {
  std::map<int, std::vector<int>> adj;
  for (const auto& [edge, count] : edges) {
    (void)count;
    adj[edge.first].push_back(edge.second);
  }
  std::map<int, int> parent;
  std::deque<int> frontier;
  // Seed with from's successors so the path has at least one edge.
  for (int next : adj[from]) {
    if (next != to && next >= 2 &&
        !avoid_label.empty() &&
        state.partition_label[static_cast<std::size_t>(next)] == avoid_label) {
      continue;
    }
    if (parent.count(next) == 0) {
      parent[next] = from;
      frontier.push_back(next);
    }
  }
  while (!frontier.empty()) {
    const int cur = frontier.front();
    frontier.pop_front();
    if (cur == to) {
      std::vector<int> path{to};
      int p = cur;
      while (p != from) {
        p = parent[p];
        path.push_back(p);
      }
      std::reverse(path.begin(), path.end());
      return path;
    }
    for (int next : adj[cur]) {
      if (parent.count(next) != 0) continue;
      if (next != to && next >= 2 && !avoid_label.empty() &&
          state.partition_label[static_cast<std::size_t>(next)] ==
              avoid_label) {
        continue;
      }
      parent[next] = cur;
      frontier.push_back(next);
    }
  }
  return std::nullopt;
}

/// Finds a counterexample path for the invariant in the current partition
/// graph, or nullopt when the model satisfies it.
std::optional<std::vector<int>> find_violation(
    const RefinementState& state,
    const std::map<std::pair<int, int>, std::size_t>& edges,
    const Invariant& inv) {
  auto partitions_labeled = [&state](const std::string& lbl) {
    std::vector<int> out;
    for (std::size_t p = 2; p < state.partition_label.size(); ++p) {
      if (state.partition_label[p] == lbl) out.push_back(static_cast<int>(p));
    }
    return out;
  };

  switch (inv.kind) {
    case InvariantKind::kNeverFollowedBy: {
      // Violated when some b-partition is reachable from an a-partition.
      for (int a : partitions_labeled(inv.a)) {
        for (int b : partitions_labeled(inv.b)) {
          if (auto path = find_path(edges, state, a, b, "")) {
            path->insert(path->begin(), a);
            return path;
          }
        }
      }
      return std::nullopt;
    }
    case InvariantKind::kAlwaysFollowedBy: {
      // Violated when TERMINAL is reachable from an a-partition while
      // avoiding every b-partition.
      for (int a : partitions_labeled(inv.a)) {
        if (auto path =
                find_path(edges, state, a, kTerminalPartition, inv.b)) {
          path->insert(path->begin(), a);
          return path;
        }
      }
      return std::nullopt;
    }
    case InvariantKind::kAlwaysPrecededBy: {
      // Violated when a b-partition is reachable from INITIAL avoiding all
      // a-partitions.
      for (int b : partitions_labeled(inv.b)) {
        if (auto path =
                find_path(edges, state, kInitialPartition, b, inv.a)) {
          return path;  // INITIAL is virtual; keep path as-is
        }
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

/// Splits the first partition on `path` whose instances disagree on the
/// invariant's history/future predicate. Returns true when a split happened.
bool split_along_path(RefinementState& state, const std::vector<int>& path,
                      const Invariant& inv) {
  for (int part : path) {
    if (part < 2) continue;
    // Gather instances of this partition and their predicate values.
    std::vector<std::size_t> members;
    for (std::size_t i = 0; i < state.instances.size(); ++i) {
      if (state.partition_of[i] == part) members.push_back(i);
    }
    bool any_true = false, any_false = false;
    std::vector<bool> pred(members.size());
    for (std::size_t k = 0; k < members.size(); ++k) {
      const Instance& inst = state.instances[members[k]];
      const bool v = inv.kind == InvariantKind::kAlwaysPrecededBy
                         ? state.previously(inst, inv.a)
                         : state.eventually(inst, inv.b);
      pred[k] = v;
      (v ? any_true : any_false) = true;
    }
    if (!(any_true && any_false)) continue;

    // Move the predicate-true members into a fresh partition.
    const int fresh = state.next_partition++;
    state.partition_label.push_back(
        state.partition_label[static_cast<std::size_t>(part)]);
    for (std::size_t k = 0; k < members.size(); ++k) {
      if (pred[k]) state.partition_of[members[k]] = fresh;
    }
    return true;
  }
  return false;
}

}  // namespace

SynopticResult infer_pfsm(std::span<const std::vector<std::string>> traces,
                          const SynopticOptions& options) {
  obs::StageSpan span("pfsm.infer");
  obs::counter("pfsm.training_traces").add(traces.size());
  SynopticResult result;
  result.invariants =
      mine_invariants(traces, options.min_invariant_support);

  // Initial partitioning: one partition per label (ids 0/1 reserved).
  RefinementState state;
  state.traces = traces;
  state.partition_label.assign({Pfsm::kInitialLabel, Pfsm::kTerminalLabel});
  std::map<std::string, int> label_partition;
  for (std::size_t t = 0; t < traces.size(); ++t) {
    for (std::size_t p = 0; p < traces[t].size(); ++p) {
      state.instances.push_back({t, p});
      const std::string& lbl = traces[t][p];
      auto [it, inserted] = label_partition.try_emplace(lbl, state.next_partition);
      if (inserted) {
        ++state.next_partition;
        state.partition_label.push_back(lbl);
      }
      state.partition_of.push_back(it->second);
    }
  }

  // Counterexample-guided refinement.
  std::vector<Invariant> active = result.invariants;
  for (std::size_t step = 0; step < options.max_refinements; ++step) {
    const auto edges = state.edges();
    bool refined = false;
    for (auto it = active.begin(); it != active.end();) {
      const auto path = find_violation(state, edges, *it);
      if (!path) {
        ++it;
        continue;
      }
      if (split_along_path(state, *path, *it)) {
        ++result.refinement_steps;
        refined = true;
        break;  // edges changed; rebuild the graph
      }
      // No partition on the path separates the predicate: the invariant
      // cannot be enforced by this refinement scheme.
      result.unsatisfied.push_back(*it);
      it = active.erase(it);
    }
    if (!refined) {
      // Either all active invariants hold, or only unsatisfiable ones were
      // left (already moved out of `active`).
      bool any_violation = false;
      for (const auto& inv : active) {
        if (find_violation(state, edges, inv)) {
          any_violation = true;
          break;
        }
      }
      if (!any_violation) break;
    }
  }

  // Emit the PFSM: one state per non-empty partition.
  std::map<int, int> partition_state;
  Pfsm& pfsm = result.pfsm;
  partition_state[kInitialPartition] = Pfsm::kInitial;
  partition_state[kTerminalPartition] = Pfsm::kTerminal;
  std::set<int> used(state.partition_of.begin(), state.partition_of.end());
  for (int part : used) {
    partition_state[part] =
        pfsm.add_state(state.partition_label[static_cast<std::size_t>(part)]);
  }
  for (const auto& [edge, count] : state.edges()) {
    pfsm.add_transition(partition_state[edge.first],
                        partition_state[edge.second], count);
  }
  pfsm.finalize();
  return result;
}

SynopticResult infer_pfsm(std::span<const EventTrace> traces,
                          const SynopticOptions& options) {
  std::vector<std::vector<std::string>> label_traces;
  label_traces.reserve(traces.size());
  for (const EventTrace& t : traces) label_traces.push_back(trace_labels(t));
  return infer_pfsm(label_traces, options);
}

}  // namespace behaviot
