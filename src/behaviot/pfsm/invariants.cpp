#include "behaviot/pfsm/invariants.hpp"

#include <map>
#include <set>

namespace behaviot {

const char* to_string(InvariantKind k) {
  switch (k) {
    case InvariantKind::kAlwaysFollowedBy: return "AFby";
    case InvariantKind::kNeverFollowedBy: return "NFby";
    case InvariantKind::kAlwaysPrecededBy: return "AP";
  }
  return "?";
}

std::string Invariant::to_string() const {
  return a + " " + behaviot::to_string(kind) + " " + b;
}

std::vector<Invariant> mine_invariants(
    std::span<const std::vector<std::string>> traces,
    std::size_t min_support) {
  // Occurrence counts per label, and per ordered pair: how many
  // a-occurrences are followed by b, and how many b-occurrences are
  // preceded by a.
  std::map<std::string, std::size_t> occurrences;
  std::map<std::pair<std::string, std::string>, std::size_t> followed;
  std::map<std::pair<std::string, std::string>, std::size_t> preceded;
  // Candidate pairs: all ordered pairs of labels sharing a trace (in any
  // order, including (a, a)); as in Synoptic, NFby is meaningful for pairs
  // that co-occur without ever appearing in the forbidden order.
  std::set<std::pair<std::string, std::string>> candidate_pairs;

  for (const auto& trace : traces) {
    const std::set<std::string> alphabet(trace.begin(), trace.end());
    for (const auto& a : alphabet) {
      for (const auto& b : alphabet) {
        candidate_pairs.insert({a, b});
      }
    }
    for (std::size_t i = 0; i < trace.size(); ++i) {
      ++occurrences[trace[i]];
      std::set<std::string> later(trace.begin() + static_cast<long>(i) + 1,
                                  trace.end());
      for (const auto& b : later) ++followed[{trace[i], b}];
      std::set<std::string> earlier(trace.begin(),
                                    trace.begin() + static_cast<long>(i));
      for (const auto& a : earlier) ++preceded[{a, trace[i]}];
    }
  }

  std::vector<Invariant> out;
  for (const auto& pair : candidate_pairs) {
    const auto& [a, b] = pair;
    const std::size_t n_a = occurrences[a];
    const std::size_t n_b = occurrences[b];
    const std::size_t f = followed.count(pair) ? followed[pair] : 0;
    const std::size_t p = preceded.count(pair) ? preceded[pair] : 0;

    if (f == n_a && n_a >= min_support) {
      out.push_back({InvariantKind::kAlwaysFollowedBy, a, b});
    }
    if (f == 0 && n_a >= min_support) {
      out.push_back({InvariantKind::kNeverFollowedBy, a, b});
    }
    if (p == n_b && n_b >= min_support) {
      out.push_back({InvariantKind::kAlwaysPrecededBy, a, b});
    }
  }
  return out;
}

}  // namespace behaviot
