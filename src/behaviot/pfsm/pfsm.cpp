#include "behaviot/pfsm/pfsm.hpp"

#include <algorithm>
#include <sstream>

namespace behaviot {

Pfsm::Pfsm() {
  labels_.push_back(kInitialLabel);   // state 0
  labels_.push_back(kTerminalLabel);  // state 1
  out_counts_.assign(2, 0);
}

int Pfsm::add_state(std::string label) {
  labels_.push_back(std::move(label));
  out_counts_.push_back(0);
  return static_cast<int>(labels_.size() - 1);
}

void Pfsm::add_transition(int from, int to, std::size_t count) {
  counts_[{from, to}] += count;
  out_counts_[static_cast<std::size_t>(from)] += count;
}

void Pfsm::finalize() {
  probabilities_.clear();
  for (const auto& [edge, count] : counts_) {
    const std::size_t out = out_counts_[static_cast<std::size_t>(edge.first)];
    probabilities_[edge] =
        out == 0 ? 0.0
                 : static_cast<double>(count) / static_cast<double>(out);
  }
}

std::size_t Pfsm::num_transitions() const { return counts_.size(); }

std::vector<int> Pfsm::states_with_label(const std::string& label) const {
  std::vector<int> out;
  for (std::size_t s = 0; s < labels_.size(); ++s) {
    if (labels_[s] == label) out.push_back(static_cast<int>(s));
  }
  return out;
}

std::vector<Pfsm::Transition> Pfsm::transitions() const {
  std::vector<Transition> out;
  out.reserve(counts_.size());
  for (const auto& [edge, count] : counts_) {
    auto p = probabilities_.find(edge);
    out.push_back({edge.first, edge.second, count,
                   p == probabilities_.end() ? 0.0 : p->second});
  }
  return out;
}

bool Pfsm::accepts(std::span<const std::string> labels) const {
  // NFA walk: current reachable state set, advanced one label at a time.
  std::vector<int> current{kInitial};
  for (const auto& lbl : labels) {
    std::vector<int> next;
    for (int s : current) {
      for (const auto& [edge, count] : counts_) {
        (void)count;
        if (edge.first != s) continue;
        if (labels_[static_cast<std::size_t>(edge.second)] == lbl) {
          if (std::find(next.begin(), next.end(), edge.second) == next.end()) {
            next.push_back(edge.second);
          }
        }
      }
    }
    if (next.empty()) return false;
    current = std::move(next);
  }
  for (int s : current) {
    if (counts_.count({s, kTerminal}) > 0) return true;
  }
  return false;
}

double Pfsm::trace_probability(std::span<const std::string> labels,
                               double alpha) const {
  // Forward algorithm over the state NFA with additive smoothing: from state
  // s, the smoothed probability of stepping to state t is
  //   (count(s,t) + alpha) / (out(s) + alpha * num_states).
  // Mass stepping to a label with no matching state at all is approximated
  // by a single phantom-state step of probability alpha / denom, so P_T > 0
  // for every trace.
  const double n_states = static_cast<double>(num_states());
  std::map<int, double> mass{{kInitial, 1.0}};
  double phantom = 0.0;  // probability mass that has left the known states

  auto smoothed = [&](int from, int to) {
    const double out =
        static_cast<double>(out_counts_[static_cast<std::size_t>(from)]);
    auto it = counts_.find({from, to});
    const double count =
        it == counts_.end() ? 0.0 : static_cast<double>(it->second);
    return (count + alpha) / (out + alpha * n_states);
  };
  // Escape probability for a step with no matching state / from the phantom.
  auto escape = [&](int from) {
    const double out =
        from < 0 ? 0.0
                 : static_cast<double>(
                       out_counts_[static_cast<std::size_t>(from)]);
    return alpha / (out + alpha * n_states);
  };

  for (const auto& lbl : labels) {
    const std::vector<int> targets = states_with_label(lbl);
    std::map<int, double> next;
    double next_phantom = phantom * escape(-1);
    for (const auto& [state, m] : mass) {
      if (targets.empty()) {
        next_phantom += m * escape(state);
        continue;
      }
      for (int t : targets) next[t] += m * smoothed(state, t);
    }
    if (!targets.empty()) {
      // The phantom can also re-enter known states at the escape rate.
      for (int t : targets) next[t] += phantom * escape(-1);
      next_phantom = phantom * escape(-1);
    }
    mass = std::move(next);
    phantom = next_phantom;
  }

  double p = phantom * escape(-1);  // phantom must still "terminate"
  for (const auto& [state, m] : mass) p += m * smoothed(state, kTerminal);
  return std::min(p, 1.0);
}

Pfsm::BigramStat Pfsm::label_bigram(const std::string& a,
                                    const std::string& b) const {
  std::size_t pair_count = 0;
  std::size_t from_total = 0;
  for (const auto& [edge, count] : counts_) {
    if (labels_[static_cast<std::size_t>(edge.first)] != a) continue;
    from_total += count;
    if (labels_[static_cast<std::size_t>(edge.second)] == b)
      pair_count += count;
  }
  BigramStat stat;
  stat.from_occurrences = from_total;
  stat.probability = from_total == 0 ? 0.0
                                     : static_cast<double>(pair_count) /
                                           static_cast<double>(from_total);
  return stat;
}

std::map<std::pair<std::string, std::string>, Pfsm::BigramStat>
Pfsm::label_bigrams() const {
  std::map<std::string, std::size_t> from_totals;
  std::map<std::pair<std::string, std::string>, std::size_t> pair_counts;
  for (const auto& [edge, count] : counts_) {
    const std::string& a = labels_[static_cast<std::size_t>(edge.first)];
    const std::string& b = labels_[static_cast<std::size_t>(edge.second)];
    from_totals[a] += count;
    pair_counts[{a, b}] += count;
  }
  std::map<std::pair<std::string, std::string>, BigramStat> out;
  for (const auto& [pair, count] : pair_counts) {
    BigramStat stat;
    stat.from_occurrences = from_totals[pair.first];
    stat.probability = static_cast<double>(count) /
                       static_cast<double>(stat.from_occurrences);
    out[pair] = stat;
  }
  return out;
}

std::string Pfsm::to_dot() const {
  std::ostringstream os;
  os << "digraph pfsm {\n  rankdir=LR;\n";
  for (std::size_t s = 0; s < labels_.size(); ++s) {
    os << "  s" << s << " [label=\"" << labels_[s] << "\"];\n";
  }
  for (const auto& [edge, count] : counts_) {
    auto p = probabilities_.find(edge);
    os << "  s" << edge.first << " -> s" << edge.second << " [label=\""
       << (p == probabilities_.end() ? 0.0 : p->second) << " (" << count
       << ")\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace behaviot
