// The naive system-model baseline of §5.2 / Fig. 3: traces combined as
// parallel event sequences between shared INITIAL and TERMINAL nodes. Each
// event instance is its own node, so the model grows linearly with the log
// and provides the comparison point that motivates the PFSM.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "behaviot/pfsm/trace.hpp"

namespace behaviot {

class SequenceGraph {
 public:
  /// Builds the parallel-sequence model from label traces.
  static SequenceGraph build(std::span<const std::vector<std::string>> traces);
  static SequenceGraph build(std::span<const EventTrace> traces);

  /// Nodes: one per event instance, plus INITIAL and TERMINAL.
  [[nodiscard]] std::size_t num_nodes() const { return nodes_; }
  /// Edges: one per consecutive pair, plus INITIAL fan-out and TERMINAL
  /// fan-in (= events + traces).
  [[nodiscard]] std::size_t num_edges() const { return edges_; }

  /// Deterministic acceptance: only traces identical to a stored one.
  [[nodiscard]] bool accepts(std::span<const std::string> labels) const;

 private:
  std::size_t nodes_ = 2;  // INITIAL + TERMINAL
  std::size_t edges_ = 0;
  std::vector<std::vector<std::string>> stored_;
};

}  // namespace behaviot
