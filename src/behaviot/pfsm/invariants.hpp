// Temporal-invariant mining, as in Synoptic [17].
//
// Three invariant families over event labels, mined from the trace set:
//   AlwaysFollowedBy(a, b): every a is eventually followed by a b (same trace)
//   NeverFollowedBy(a, b):  no a is ever followed by a b
//   AlwaysPrecededBy(a, b): every b has an earlier a in its trace
// These drive the counterexample-guided refinement of the PFSM.
#pragma once

#include <span>
#include <string>
#include <vector>

namespace behaviot {

enum class InvariantKind : std::uint8_t {
  kAlwaysFollowedBy,
  kNeverFollowedBy,
  kAlwaysPrecededBy,
};

[[nodiscard]] const char* to_string(InvariantKind k);

struct Invariant {
  InvariantKind kind;
  std::string a;
  std::string b;

  friend bool operator==(const Invariant&, const Invariant&) = default;
  [[nodiscard]] std::string to_string() const;
};

/// Mines all invariants that hold over the given label traces. Pairs are
/// only considered when both labels occur somewhere in the trace set and the
/// invariant is supported by at least `min_support` relevant occurrences
/// (occurrences of `a` for followed-by kinds, of `b` for preceded-by).
std::vector<Invariant> mine_invariants(
    std::span<const std::vector<std::string>> traces,
    std::size_t min_support = 1);

}  // namespace behaviot
