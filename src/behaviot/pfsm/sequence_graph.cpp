#include "behaviot/pfsm/sequence_graph.hpp"

#include <algorithm>

namespace behaviot {

SequenceGraph SequenceGraph::build(
    std::span<const std::vector<std::string>> traces) {
  SequenceGraph g;
  for (const auto& t : traces) {
    if (t.empty()) continue;
    g.nodes_ += t.size();
    // initial -> e1 -> ... -> en -> terminal contributes n+1 edges.
    g.edges_ += t.size() + 1;
    g.stored_.push_back(t);
  }
  return g;
}

SequenceGraph SequenceGraph::build(std::span<const EventTrace> traces) {
  std::vector<std::vector<std::string>> label_traces;
  label_traces.reserve(traces.size());
  for (const EventTrace& t : traces) label_traces.push_back(trace_labels(t));
  return build(label_traces);
}

bool SequenceGraph::accepts(std::span<const std::string> labels) const {
  return std::any_of(stored_.begin(), stored_.end(),
                     [&labels](const std::vector<std::string>& t) {
                       return t.size() == labels.size() &&
                              std::equal(t.begin(), t.end(), labels.begin());
                     });
}

}  // namespace behaviot
