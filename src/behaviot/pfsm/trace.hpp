// Event traces: temporally correlated user-event sequences (§4.2).
//
// A user-event stream is cut into traces wherever two consecutive events are
// farther apart than a gap threshold (1 minute in the paper, chosen following
// [33, 66, 76]).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "behaviot/pfsm/event.hpp"

namespace behaviot {

using EventTrace = std::vector<UserEvent>;

inline constexpr std::int64_t kDefaultTraceGapUs = minutes(1.0);

/// Splits a stream (sorted internally by time) into traces at gaps larger
/// than `gap_us`.
std::vector<EventTrace> build_traces(std::span<const UserEvent> events,
                                     std::int64_t gap_us = kDefaultTraceGapUs);

/// Label sequence of a trace (the view the PFSM operates on).
std::vector<std::string> trace_labels(const EventTrace& trace);

}  // namespace behaviot
