// Synoptic-style PFSM inference [17] (§4.2).
//
// The algorithm follows Synoptic's structure:
//   1. mine temporal invariants (AFby / NFby / AP) from the trace set;
//   2. start from the coarsest partition of event instances — one partition
//      per activity label;
//   3. counterexample-guided refinement: while the partition graph admits a
//      path violating a mined invariant, split a partition along the
//      counterexample path by the invariant's history/future predicate;
//   4. emit the PFSM with maximum-likelihood transition probabilities.
//
// The result accepts 100% of training traces by construction and generalizes
// to unseen recombinations of observed transitions (§5.2 "PFSM properties").
#pragma once

#include <span>
#include <string>
#include <vector>

#include "behaviot/pfsm/invariants.hpp"
#include "behaviot/pfsm/pfsm.hpp"
#include "behaviot/pfsm/trace.hpp"

namespace behaviot {

struct SynopticOptions {
  /// Refinement iteration cap (each iteration performs one split).
  std::size_t max_refinements = 200;
  /// Minimum supporting occurrences for a mined invariant to drive
  /// refinement; raises robustness to one-off event orderings.
  std::size_t min_invariant_support = 1;
};

struct SynopticResult {
  Pfsm pfsm;
  std::vector<Invariant> invariants;          ///< all mined
  std::vector<Invariant> unsatisfied;         ///< could not be enforced
  std::size_t refinement_steps = 0;
};

/// Infers a PFSM from label traces.
SynopticResult infer_pfsm(std::span<const std::vector<std::string>> traces,
                          const SynopticOptions& options = {});

/// Convenience overload over event traces.
SynopticResult infer_pfsm(std::span<const EventTrace> traces,
                          const SynopticOptions& options = {});

}  // namespace behaviot
