#include "behaviot/pfsm/trace.hpp"

#include <algorithm>

namespace behaviot {

std::vector<EventTrace> build_traces(std::span<const UserEvent> events,
                                     std::int64_t gap_us) {
  std::vector<UserEvent> sorted(events.begin(), events.end());
  std::stable_sort(sorted.begin(), sorted.end(), before);

  std::vector<EventTrace> traces;
  for (const UserEvent& e : sorted) {
    if (traces.empty() || (e.ts - traces.back().back().ts) > gap_us) {
      traces.emplace_back();
    }
    traces.back().push_back(e);
  }
  return traces;
}

std::vector<std::string> trace_labels(const EventTrace& trace) {
  std::vector<std::string> labels;
  labels.reserve(trace.size());
  for (const UserEvent& e : trace) labels.push_back(e.label());
  return labels;
}

}  // namespace behaviot
