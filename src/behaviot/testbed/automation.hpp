// Trigger-action automations (Table 7, R1-R16).
//
// An automation binds a trigger (device command) to a sequence of delayed
// action commands, as authored on the Alexa/IFTTT platforms in the paper's
// routine experiments.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "behaviot/net/time.hpp"

namespace behaviot::testbed {

struct AutomationAction {
  std::string device;   ///< catalog device name
  std::string command;  ///< physical command
  double delay_s = 1.0;  ///< delay after the trigger (or previous action)
};

struct Automation {
  std::string id;  ///< "R1".."R16"
  std::string description;
  std::string trigger_device;
  std::string trigger_command;
  std::vector<AutomationAction> actions;
};

/// The 16 automations of Table 7, flattened (R11's nested garage routine is
/// inlined) and restricted to catalog devices.
const std::vector<Automation>& standard_automations();

/// A scheduled command produced by firing automations.
struct ScheduledCommand {
  std::string device;
  std::string command;
  Timestamp at;
};

/// Expands a trigger into the action commands it schedules (the trigger's
/// own event is not included). Delays accumulate along the action list.
std::vector<ScheduledCommand> fire_automations(
    const std::string& trigger_device, const std::string& trigger_command,
    Timestamp trigger_time);

}  // namespace behaviot::testbed
