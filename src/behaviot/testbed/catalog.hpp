// The simulated testbed's device catalog: the 49 devices of Table 1, their
// categories, vendors, dataset memberships, and user activities.
//
// `periodic_behaviors` encodes how many periodic traffic groups each device
// exhibits (DNS and NTP included), sized per category to match the Table-4
// distribution (home automation ≈ 4, cameras ≈ 6, smart speakers ≈ 23,
// hubs ≈ 6, appliances ≈ 6; Echo Show 5 tops the list at 31).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "behaviot/net/ip.hpp"
#include "behaviot/net/packet.hpp"

namespace behaviot::testbed {

enum class DeviceCategory : std::uint8_t {
  kCamera,
  kSmartSpeaker,
  kHomeAutomation,
  kAppliance,
  kHub,
};

[[nodiscard]] const char* to_string(DeviceCategory c);
inline constexpr std::size_t kNumCategories = 5;

struct DeviceInfo {
  DeviceId id = kUnknownDevice;
  std::string name;     ///< snake_case key, e.g. "tplink_plug"
  std::string display;  ///< Table-1 spelling, e.g. "TPLink Plug"
  DeviceCategory category = DeviceCategory::kHomeAutomation;
  std::string vendor;  ///< PartyRegistry vendor key
  Ipv4Addr ip;         ///< static lease on the testbed LAN
  std::size_t periodic_behaviors = 4;  ///< periodic traffic groups (incl. DNS/NTP)
  bool in_activity_set = false;   ///< 30-device labeled interaction dataset
  bool in_routine_set = false;    ///< 18-device automation dataset (Table 6)
  bool in_uncontrolled = false;   ///< 47-device user-study dataset
  /// Physical user commands (e.g. "on", "off", "motion"). The *network
  /// label* of a command may aggregate indistinguishable pairs — see
  /// `label_for`.
  std::vector<std::string> commands;
  /// True when this device's on/off (or equivalent binary) commands produce
  /// identical traffic and are aggregated into one label (§6.1: 13 of 18
  /// devices).
  bool binary_commands_aggregated = false;

  /// Network-level ground-truth label for a physical command.
  [[nodiscard]] std::string label_for(const std::string& command) const;
};

class Catalog {
 public:
  /// The 49-device testbed of Table 1.
  static const Catalog& standard();

  [[nodiscard]] std::span<const DeviceInfo> devices() const {
    return devices_;
  }
  [[nodiscard]] const DeviceInfo* by_name(const std::string& name) const;
  [[nodiscard]] const DeviceInfo& by_id(DeviceId id) const;
  [[nodiscard]] const DeviceInfo* by_ip(Ipv4Addr ip) const;
  [[nodiscard]] std::size_t size() const { return devices_.size(); }

  [[nodiscard]] std::vector<const DeviceInfo*> in_category(
      DeviceCategory c) const;
  [[nodiscard]] std::vector<const DeviceInfo*> activity_set() const;
  [[nodiscard]] std::vector<const DeviceInfo*> routine_set() const;
  [[nodiscard]] std::vector<const DeviceInfo*> uncontrolled_set() const;

 private:
  Catalog();
  std::vector<DeviceInfo> devices_;
};

}  // namespace behaviot::testbed
