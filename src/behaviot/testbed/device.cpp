#include "behaviot/testbed/device.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "behaviot/net/rng.hpp"

namespace behaviot::testbed {
namespace {

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Primary first-party cloud suffix per vendor (aligned with the
/// PartyRegistry and EssentialList entries).
std::string vendor_cloud(const std::string& vendor) {
  if (vendor == "amazon") return "amazon.com";
  if (vendor == "google") return "google.com";
  if (vendor == "apple") return "icloud.com";
  if (vendor == "tplink") return "tplinkcloud.com";
  if (vendor == "tuya" || vendor == "smartlife") return "tuyaus.com";
  if (vendor == "ring") return "ring.com";
  if (vendor == "dlink") return "dlink.com";
  if (vendor == "wemo") return "xbcs.net";
  if (vendor == "philips") return "meethue.com";
  if (vendor == "samsung") return "samsungiotcloud.com";
  if (vendor == "nest") return "nest.com";
  if (vendor == "wyze") return "wyze.com";
  if (vendor == "meross") return "meross.com";
  if (vendor == "govee") return "govee.com";
  if (vendor == "switchbot") return "switch-bot.com";
  if (vendor == "ikea") return "ikea.net";
  if (vendor == "aqara") return "aqara.cn";
  if (vendor == "wink") return "wink.com";
  if (vendor == "smarter") return "mysmarter.com";
  if (vendor == "behmor") return "behmor.com";
  if (vendor == "anova") return "anovaculinary.com";
  if (vendor == "ge") return "geappliances.com";
  if (vendor == "lefun") return "lefuncam.net";
  if (vendor == "microseven") return "microseven.com";
  if (vendor == "yi") return "yitechnology.com";
  if (vendor == "wansview") return "wansview.net";
  if (vendor == "ubell") return "ubell.io";
  if (vendor == "icsee") return "icsee.net";
  if (vendor == "keyco") return "keyco.io";
  if (vendor == "thermopro") return "thermopro.io";
  if (vendor == "magichome") return "magichomecloud.com";
  if (vendor == "gosund") return "gosund.net";
  if (vendor == "jinvoo") return "jinvoo.com";
  return vendor + ".example.com";
}

constexpr std::array<const char*, 29> kFirstPartyPrefixes = {
    "api",  "mqtt",   "heartbeat", "status", "sync", "events", "push",
    "cfg",  "iot",    "cloud",     "relay",  "meta", "reg",    "log",
    "feed", "media",  "time",      "info",   "link", "core",   "app",
    "svc",  "data",   "node",      "edge2",  "pulse", "beat",
    "keepalive", "ping"};

constexpr std::array<const char*, 8> kSupportDomains = {
    "d1a2b3.cloudfront.net",      "d4x9.cloudfront.net",
    "iot.us-east-1.amazonaws.com", "mqtt.us-west-2.amazonaws.com",
    "edge.akamai.net",            "cdn.fastly.net",
    "api.azurewebsites.net",      "storage.googleapis.com"};

constexpr std::array<const char*, 5> kThirdDomains = {
    "metrics.adservice.net", "api.tracker.io", "collector.mixpanel.com",
    "stats.crashlytics.com", "ads.doubleclick.net"};

/// 17 distinct NTP servers, including third parties and non-US hosts, per
/// the §6.1 finding.
constexpr std::array<const char*, 17> kNtpServers = {
    "0.pool.ntp.org", "1.pool.ntp.org",  "2.pool.ntp.org", "3.pool.ntp.org",
    "time.google.com", "time1.google.com", "time.apple.com",
    "time.windows.com", "time.nist.gov",  "ptbtime1.ptb.de",
    "ntp.grnet.gr",    "cn.ntp.org.cn",   "ntp1.neu.edu",
    "us.pool.ntp.org", "europe.pool.ntp.org", "time.cloudflare.com",
    "chronos.ntp.org"};

/// Candidate heartbeat/telemetry periods, seconds. The smallest matches the
/// paper's TP-Link example (TCP-*.tplinkcloud.com-236).
constexpr std::array<double, 12> kPeriodPool = {
    236, 300, 443, 600, 907, 1200, 1800, 2400, 3600, 5400, 7200, 10800};

struct PartyMix {
  double first;
  double support;  // remainder third
};

PartyMix mix_for(DeviceCategory c) {
  switch (c) {
    case DeviceCategory::kHomeAutomation: return {0.55, 0.35};
    case DeviceCategory::kCamera: return {0.25, 0.42};
    case DeviceCategory::kSmartSpeaker: return {0.83, 0.10};
    case DeviceCategory::kHub: return {0.20, 0.28};
    case DeviceCategory::kAppliance: return {0.45, 0.26};
  }
  return {0.5, 0.3};
}

std::vector<double> heartbeat_sizes(Rng& rng) {
  // Request/ack exchanges of 2-6 packets with stable sizes.
  const std::size_t n = 2 + rng.uniform_index(5);
  std::vector<double> sizes;
  sizes.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    sizes.push_back(std::floor(rng.uniform(90.0, 700.0)));
  }
  return sizes;
}

ActivitySignature make_activity(const DeviceInfo& info,
                                const std::string& command) {
  ActivitySignature sig;
  sig.command = command;
  sig.label = info.label_for(command);
  // "ctrl." endpoints are reserved for user-event traffic; periodic groups
  // use other prefixes, so user flows never collide with a periodic model's
  // (domain, protocol) group — except where a device quirk makes them (the
  // SmartThings Hub below).
  sig.domain = "ctrl." + vendor_cloud(info.vendor);

  const std::uint64_t h = fnv1a(info.name + "|" + sig.label);
  const double base = 160.0 + static_cast<double>(h % 640);
  const std::size_t out_n = 2 + (h >> 8) % 3;  // 2-4 outbound packets
  for (std::size_t i = 0; i < out_n; ++i) {
    sig.out_sizes.push_back(
        std::floor(base + 37.0 * static_cast<double>(i) +
                   static_cast<double>((h >> (12 + 4 * i)) % 48)));
  }
  sig.in_sizes = {std::floor(base * 0.72 + 40.0), 118.0};
  sig.size_jitter = 5.0;
  sig.duration_s = 0.4 + static_cast<double>(h % 800) / 1000.0;
  sig.proto = Transport::kTcp;
  sig.dst_port = 443;

  // A quarter of devices control via UDP (the paper measures 48.4% of
  // activity *flows* as UDP) — exactly the traffic PingPong cannot model.
  if (info.id % 4 == 1) {
    sig.proto = Transport::kUdp;
    sig.dst_port = 8886;
  }
  // TP-Link Bulb's color/dim ride a noisy UDP side channel; Nest's "set"
  // carries a variable payload. Both erode signature-based matching while
  // the 21-feature models stay accurate (Table 3).
  if (info.name == "tplink_bulb" && (command == "dim" || command == "color")) {
    sig.proto = Transport::kUdp;
    sig.dst_port = 9999;
    sig.size_jitter = 26.0;
  }
  if (info.name == "nest_thermostat" && command == "set") {
    sig.size_jitter = 30.0;
  }
  if (info.name == "amazon_plug") {
    sig.size_jitter = 9.0;
  }
  // One third of activity devices relay through a support-party cloud.
  if (info.id % 3 == 0) {
    sig.support_domain =
        kSupportDomains[h % kSupportDomains.size()];
  }
  return sig;
}

}  // namespace

Ipv4Addr campus_resolver_ip() { return Ipv4Addr(155, 33, 10, 53); }
Ipv4Addr google_dns_ip() { return Ipv4Addr(8, 8, 8, 8); }

Ipv4Addr ip_for_domain(const std::string& domain) {
  if (domain == "dns.neu.edu" || domain == "ns.neu.edu")
    return campus_resolver_ip();
  if (domain == "dns.google") return google_dns_ip();
  const std::uint64_t h = fnv1a(domain);
  // Public 54.x.y.z block (never private).
  return Ipv4Addr(54, static_cast<std::uint8_t>((h >> 16) & 0xff),
                  static_cast<std::uint8_t>((h >> 8) & 0xff),
                  static_cast<std::uint8_t>(h & 0xff));
}

const ActivitySignature* DeviceProfile::signature_for(
    const std::string& command) const {
  for (const ActivitySignature& a : activities) {
    if (a.command == command) return &a;
  }
  return nullptr;
}

DeviceProfile build_profile(const DeviceInfo& info) {
  DeviceProfile profile;
  profile.info = &info;
  Rng rng(fnv1a(info.name) ^ 0xbe47a110ULL);

  // --- DNS (periodic, hourly re-resolution; 6 devices insist on Google DNS
  // despite the DHCP-provided campus resolver, per §6.1). ---
  PeriodicBehavior dns;
  dns.is_dns = true;
  dns.domain = (info.id % 8 == 3) ? "dns.google" : "dns.neu.edu";
  dns.proto = Transport::kUdp;
  dns.dst_port = 53;
  dns.period_s = 3603.0;
  dns.jitter_s = 8.0;
  dns.sizes = {78.0, 94.0};
  dns.size_jitter = 3.0;
  profile.periodic.push_back(dns);

  // --- NTP (periodic, hourly, server drawn from a global pool). ---
  PeriodicBehavior ntp;
  ntp.is_ntp = true;
  ntp.domain = kNtpServers[fnv1a(info.name + "|ntp") % kNtpServers.size()];
  ntp.proto = Transport::kUdp;
  ntp.dst_port = 123;
  ntp.period_s = 3603.0;
  ntp.jitter_s = 6.0;
  ntp.sizes = {76.0, 76.0};
  ntp.size_jitter = 0.0;
  profile.periodic.push_back(ntp);

  // --- Vendor / support / third-party periodic groups. ---
  const std::size_t remaining =
      info.periodic_behaviors > 2 ? info.periodic_behaviors - 2 : 0;
  const PartyMix mix = mix_for(info.category);
  const auto n_first = static_cast<std::size_t>(
      std::round(mix.first * static_cast<double>(remaining)));
  const auto n_support = static_cast<std::size_t>(
      std::round(mix.support * static_cast<double>(remaining)));
  const std::string cloud = vendor_cloud(info.vendor);

  std::size_t support_cursor = fnv1a(info.name + "|sup") % kSupportDomains.size();
  std::size_t third_cursor = fnv1a(info.name + "|3p") % kThirdDomains.size();
  for (std::size_t i = 0; i < remaining; ++i) {
    PeriodicBehavior b;
    if (i < n_first) {
      b.domain = std::string(kFirstPartyPrefixes[i % kFirstPartyPrefixes.size()]) +
                 "." + cloud;
      // Device telemetry endpoints mirror the paper's examples.
      if (info.vendor == "amazon" && i == 1) {
        b.domain = "device-metrics-us.amazon.com";
      }
    } else if (i < n_first + n_support) {
      b.domain = kSupportDomains[(support_cursor + i) % kSupportDomains.size()];
    } else {
      b.domain = kThirdDomains[(third_cursor + i) % kThirdDomains.size()];
    }
    b.proto = rng.chance(0.15) ? Transport::kUdp : Transport::kTcp;
    b.dst_port = b.proto == Transport::kTcp
                     ? (rng.chance(0.8) ? std::uint16_t{443} : std::uint16_t{8883})
                     : std::uint16_t{10101};
    b.period_s = kPeriodPool[rng.uniform_index(kPeriodPool.size())];
    b.jitter_s = std::max(1.0, 0.01 * b.period_s);
    b.sizes = heartbeat_sizes(rng);
    b.size_jitter = rng.uniform(2.0, 6.0);
    profile.periodic.push_back(std::move(b));
  }

  // --- User activities. ---
  for (const std::string& command : info.commands) {
    profile.activities.push_back(make_activity(info, command));
  }
  // SmartThings Hub quirk (§5.1 FNR): its "turn everything on/off" rides the
  // same TCP connection and shape as its first cloud heartbeat, making the
  // events nearly indistinguishable from background.
  if (info.name == "smartthings_hub" && !profile.activities.empty() &&
      profile.periodic.size() > 2) {
    ActivitySignature& a = profile.activities.front();
    const PeriodicBehavior& hb = profile.periodic[2];
    a.domain = hb.domain;
    a.proto = hb.proto;
    a.dst_port = hb.dst_port;
    a.out_sizes.clear();
    a.in_sizes.clear();
    for (std::size_t i = 0; i < hb.sizes.size(); ++i) {
      (i % 2 == 0 ? a.out_sizes : a.in_sizes).push_back(hb.sizes[i]);
    }
    a.size_jitter = hb.size_jitter;
    a.support_domain.reset();
  }

  // --- Aperiodic behaviors: firmware checks for everyone... ---
  AperiodicBehavior update;
  update.domain = "updates." + cloud;
  update.daily_rate = 0.35;
  update.sizes = {620.0, 1380.0, 1380.0, 540.0};
  profile.aperiodic.push_back(update);
  // ...plus push/skill noise on complex devices.
  if (info.category == DeviceCategory::kSmartSpeaker ||
      info.category == DeviceCategory::kHub ||
      info.name == "samsung_fridge") {
    AperiodicBehavior push;
    push.domain = info.vendor == "amazon" ? "mas-sdk.amazon.com"
                                          : "push." + cloud;
    push.daily_rate = info.name == "echo_show5" ? 2.5 : 0.8;
    push.sizes = {240.0, 980.0, 410.0};
    profile.aperiodic.push_back(push);
  }
  // Echo Show 5 quirk (§5.1 FPR): idle flows shaped like its voice events.
  if (info.name == "echo_show5") {
    const ActivitySignature* voice = profile.signature_for("voice");
    if (voice != nullptr) {
      AperiodicBehavior mimic;
      mimic.domain = voice->domain;
      mimic.proto = voice->proto;
      mimic.dst_port = voice->dst_port;
      mimic.daily_rate = 1.2;
      for (std::size_t i = 0;
           i < voice->out_sizes.size() + voice->in_sizes.size(); ++i) {
        mimic.sizes.push_back(i % 2 == 0 ? voice->out_sizes[i / 2]
                                         : voice->in_sizes[std::min(
                                               i / 2,
                                               voice->in_sizes.size() - 1)]);
      }
      mimic.size_jitter = voice->size_jitter;
      mimic.mimics_user_activity = true;
      profile.aperiodic.push_back(std::move(mimic));
    }
  }
  return profile;
}

}  // namespace behaviot::testbed
