#include "behaviot/testbed/catalog.hpp"

#include <algorithm>
#include <stdexcept>

namespace behaviot::testbed {

const char* to_string(DeviceCategory c) {
  switch (c) {
    case DeviceCategory::kCamera: return "Camera";
    case DeviceCategory::kSmartSpeaker: return "Smart Speaker";
    case DeviceCategory::kHomeAutomation: return "Home Auto";
    case DeviceCategory::kAppliance: return "Appliance";
    case DeviceCategory::kHub: return "Hub";
  }
  return "?";
}

std::string DeviceInfo::label_for(const std::string& command) const {
  if (binary_commands_aggregated &&
      (command == "on" || command == "off" || command == "open" ||
       command == "close")) {
    return "on_off";
  }
  return command;
}

namespace {

struct Row {
  const char* name;
  const char* display;
  DeviceCategory cat;
  const char* vendor;
  std::size_t periodic;
  bool activity;
  bool routine;
  bool uncontrolled;
  std::vector<std::string> commands;
  bool aggregated;
};

std::vector<Row> table1() {
  using C = DeviceCategory;
  std::vector<Row> rows;
  // --- Cameras (11): motion / watch / record / photo / intercom / ring ---
  rows.push_back({"dlink_camera", "D-Link Camera", C::kCamera, "dlink", 5,
                  true, true, true, {"motion", "watch", "record", "photo"},
                  false});
  rows.push_back({"icsee_doorbell", "iCSee Doorbell", C::kCamera, "icsee", 10,
                  false, false, true, {"motion", "ring"}, false});
  rows.push_back({"lefun_camera", "LeFun Cam", C::kCamera, "lefun", 5, true,
                  false, true, {"motion", "watch", "record"}, false});
  rows.push_back({"microseven_camera", "Microseven Camera", C::kCamera,
                  "microseven", 4, false, false, true, {"motion", "watch"},
                  false});
  rows.push_back({"ring_camera", "Ring Camera", C::kCamera, "ring", 6, true,
                  true, true, {"motion", "video"}, false});
  rows.push_back({"ring_doorbell", "Ring Doorbell", C::kCamera, "ring", 7,
                  true, true, true, {"motion", "ring", "video"}, false});
  rows.push_back({"tuya_camera", "Tuya Camera", C::kCamera, "tuya", 5, true,
                  false, true, {"motion", "watch", "record"}, false});
  rows.push_back({"ubell_doorbell", "Ubell Doorbell", C::kCamera, "ubell", 4,
                  false, false, true, {"motion", "ring"}, false});
  rows.push_back({"wansview_camera", "Wansview Cam", C::kCamera, "wansview",
                  5, true, false, true, {"motion", "watch"}, false});
  rows.push_back({"yi_camera", "Yi Camera", C::kCamera, "yi", 5, false, false,
                  true, {"motion", "record"}, false});
  rows.push_back({"wyze_camera", "Wyze Camera", C::kCamera, "wyze", 8, true,
                  true, true, {"motion", "video", "clip"}, false});

  // --- Smart speakers (11): voice / volume / on-off ---
  rows.push_back({"echo_dot", "Echo Dot", C::kSmartSpeaker, "amazon", 20,
                  true, false, true, {"voice", "volume"}, false});
  rows.push_back({"echo_dot3", "Echo Dot3", C::kSmartSpeaker, "amazon", 21,
                  true, false, true, {"voice", "volume"}, false});
  rows.push_back({"echo_dot4", "Echo Dot4", C::kSmartSpeaker, "amazon", 22,
                  true, false, true, {"voice", "volume"}, false});
  rows.push_back({"echo_flex", "Echo Flex", C::kSmartSpeaker, "amazon", 19,
                  false, false, true, {"voice"}, false});
  rows.push_back({"echo_plus", "Echo Plus", C::kSmartSpeaker, "amazon", 24,
                  false, false, true, {"voice", "volume"}, false});
  rows.push_back({"echo_show5", "Echo Show5", C::kSmartSpeaker, "amazon", 31,
                  true, false, true, {"voice", "volume", "on_off_screen"},
                  false});
  rows.push_back({"echo_spot", "Echo Spot", C::kSmartSpeaker, "amazon", 27,
                  true, true, true, {"voice", "volume"}, false});
  rows.push_back({"google_home_mini", "Google Home Mini", C::kSmartSpeaker,
                  "google", 22, true, false, true, {"voice", "volume"},
                  false});
  rows.push_back({"google_nest_mini", "Google Nest Mini", C::kSmartSpeaker,
                  "google", 21, false, false, true, {"voice", "volume"},
                  false});
  rows.push_back({"homepod_mini", "Homepod Mini", C::kSmartSpeaker, "apple",
                  27, true, false, true, {"voice", "volume"}, false});
  rows.push_back({"homepod", "Homepod", C::kSmartSpeaker, "apple", 23, false,
                  false, true, {"voice"}, false});

  // --- Home automation & sensors (16) ---
  rows.push_back({"amazon_plug", "Amazon Plug", C::kHomeAutomation, "amazon",
                  4, true, false, true, {"on", "off"}, true});
  rows.push_back({"dlink_sensor", "D-Link Sensor", C::kHomeAutomation,
                  "dlink", 3, false, false, true, {"motion"}, false});
  rows.push_back({"govee_bulb", "Govee Bulb", C::kHomeAutomation, "govee", 4,
                  true, true, true, {"on", "off"}, false});
  rows.push_back({"meross_dooropener", "Meross Dooropener",
                  C::kHomeAutomation, "meross", 4, true, true, true,
                  {"open", "close"}, false});
  rows.push_back({"nest_thermostat", "Nest Thermostat", C::kHomeAutomation,
                  "nest", 8, true, true, true, {"on", "off", "set"}, false});
  rows.push_back({"smartlife_bulb", "Smartlife Bulb", C::kHomeAutomation,
                  "smartlife", 4, true, true, true, {"on", "off"}, true});
  rows.push_back({"tplink_bulb", "TPLink Bulb", C::kHomeAutomation, "tplink",
                  4, true, true, true, {"on", "off", "color", "dim"}, false});
  rows.push_back({"keyco_air_sensor", "Keyco Air Sensor", C::kHomeAutomation,
                  "keyco", 3, false, false, true, {}, false});
  rows.push_back({"jinvoo_bulb", "Jinvoo Bulb", C::kHomeAutomation, "jinvoo",
                  4, true, true, true, {"on", "off", "color"}, true});
  rows.push_back({"gosund_bulb", "Gosund Bulb", C::kHomeAutomation, "gosund",
                  4, true, true, true, {"on", "off"}, true});
  rows.push_back({"magichome_strip", "Magichome Strip", C::kHomeAutomation,
                  "magichome", 4, true, true, true, {"on", "off"}, false});
  rows.push_back({"philips_bulb", "Philips Bulb", C::kHomeAutomation,
                  "philips", 4, true, true, true, {"on", "off"}, true});
  rows.push_back({"ring_chime", "Ring Chime", C::kHomeAutomation, "ring", 4,
                  false, false, true, {"ring"}, false});
  rows.push_back({"wemo_plug", "Wemo Plug", C::kHomeAutomation, "wemo", 4,
                  true, true, true, {"on", "off"}, true});
  rows.push_back({"tplink_plug", "TPLink Plug", C::kHomeAutomation, "tplink",
                  3, true, true, true, {"on", "off"}, true});
  rows.push_back({"thermopro_sensor", "Thermopro Sensor", C::kHomeAutomation,
                  "thermopro", 4, false, false, true, {}, false});

  // --- Appliances (5) ---
  rows.push_back({"behmor_brewer", "Behmor Brewer", C::kAppliance, "behmor",
                  4, false, false, false, {"on", "off"}, true});
  rows.push_back({"samsung_fridge", "Samsung Fridge", C::kAppliance,
                  "samsung", 22, true, false, true, {"on", "off"}, true});
  rows.push_back({"smarter_ikettle", "Smarter iKettle", C::kAppliance,
                  "smarter", 3, true, true, true, {"on", "off"}, false});
  rows.push_back({"ge_microwave", "GE Microwave", C::kAppliance, "ge", 3,
                  false, false, true, {"on", "off"}, true});
  rows.push_back({"anova_sousvide", "Anova Sousvide", C::kAppliance, "anova",
                  3, false, false, true, {"on", "off"}, true});

  // --- Hubs (6) ---
  rows.push_back({"aqara_hub", "Aqara Hub", C::kHub, "aqara", 4, false, false,
                  true, {"on", "off"}, true});
  rows.push_back({"ikea_hub", "IKEA Hub", C::kHub, "ikea", 4, false, false,
                  true, {"on", "off"}, true});
  rows.push_back({"smartthings_hub", "SmartThings Hub", C::kHub, "samsung", 5,
                  true, false, true, {"on_off_all"}, false});
  rows.push_back({"switchbot_hub", "SwitchBot Hub", C::kHub, "switchbot", 3,
                  true, true, true, {"on", "off"}, true});
  rows.push_back({"philips_hub", "Philips Hub", C::kHub, "philips", 15, true,
                  false, true, {"on", "off"}, true});
  rows.push_back({"wink_hub2", "Wink Hub2", C::kHub, "wink", 5, false, false,
                  false, {"on", "off"}, true});
  return rows;
}

}  // namespace

Catalog::Catalog() {
  const auto rows = table1();
  devices_.reserve(rows.size());
  DeviceId next_id = 0;
  for (const Row& row : rows) {
    DeviceInfo d;
    d.id = next_id++;
    d.name = row.name;
    d.display = row.display;
    d.category = row.cat;
    d.vendor = row.vendor;
    d.ip = Ipv4Addr(192, 168, 1, static_cast<std::uint8_t>(10 + d.id));
    d.periodic_behaviors = row.periodic;
    d.in_activity_set = row.activity;
    d.in_routine_set = row.routine;
    d.in_uncontrolled = row.uncontrolled;
    d.commands = row.commands;
    d.binary_commands_aggregated = row.aggregated;
    devices_.push_back(std::move(d));
  }
}

const Catalog& Catalog::standard() {
  static const Catalog instance;
  return instance;
}

const DeviceInfo* Catalog::by_name(const std::string& name) const {
  for (const DeviceInfo& d : devices_) {
    if (d.name == name) return &d;
  }
  return nullptr;
}

const DeviceInfo& Catalog::by_id(DeviceId id) const {
  if (id >= devices_.size()) throw std::out_of_range("Catalog::by_id");
  return devices_[id];
}

const DeviceInfo* Catalog::by_ip(Ipv4Addr ip) const {
  for (const DeviceInfo& d : devices_) {
    if (d.ip == ip) return &d;
  }
  return nullptr;
}

std::vector<const DeviceInfo*> Catalog::in_category(DeviceCategory c) const {
  std::vector<const DeviceInfo*> out;
  for (const DeviceInfo& d : devices_) {
    if (d.category == c) out.push_back(&d);
  }
  return out;
}

std::vector<const DeviceInfo*> Catalog::activity_set() const {
  std::vector<const DeviceInfo*> out;
  for (const DeviceInfo& d : devices_) {
    if (d.in_activity_set) out.push_back(&d);
  }
  return out;
}

std::vector<const DeviceInfo*> Catalog::routine_set() const {
  std::vector<const DeviceInfo*> out;
  for (const DeviceInfo& d : devices_) {
    if (d.in_routine_set) out.push_back(&d);
  }
  return out;
}

std::vector<const DeviceInfo*> Catalog::uncontrolled_set() const {
  std::vector<const DeviceInfo*> out;
  for (const DeviceInfo& d : devices_) {
    if (d.in_uncontrolled) out.push_back(&d);
  }
  return out;
}

}  // namespace behaviot::testbed
