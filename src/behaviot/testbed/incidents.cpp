#include "behaviot/testbed/incidents.hpp"

#include <algorithm>

namespace behaviot::testbed {

const char* to_string(IncidentKind k) {
  switch (k) {
    case IncidentKind::kCameraRelocation: return "camera-relocation";
    case IncidentKind::kLabExperiment: return "lab-experiment";
    case IncidentKind::kDeviceMisconfig: return "device-misconfig";
    case IncidentKind::kNetworkOutage: return "network-outage";
    case IncidentKind::kDeviceRemoval: return "device-removal";
    case IncidentKind::kDeviceMalfunction: return "device-malfunction";
  }
  return "?";
}

const std::vector<Incident>& standard_incidents() {
  static const std::vector<Incident> incidents = [] {
    std::vector<Incident> v;
    // Cases 1/4/5: the Wyze camera is moved to a motion-sensitive spot three
    // times; motion events spike for the following days.
    v.push_back({IncidentKind::kCameraRelocation, "wyze_camera", 8.0, 12.0,
                 "camera relocated near the door (case 1)"});
    v.push_back({IncidentKind::kCameraRelocation, "wyze_camera", 45.0, 48.0,
                 "camera relocated again (case 4)"});
    v.push_back({IncidentKind::kCameraRelocation, "wyze_camera", 66.0, 69.0,
                 "camera relocated again (case 5)"});
    // Case 2: another project runs 50 consecutive voice activations.
    v.push_back({IncidentKind::kLabExperiment, "echo_spot", 13.0, 13.03,
                 "50 voice activations within 30 minutes (case 2)"});
    // Case 3: two devices reset and misconfigured, repeating events.
    v.push_back({IncidentKind::kDeviceMisconfig, "smartlife_bulb", 15.0,
                 15.15, "reset loop after reconfiguration (case 3)"});
    v.push_back({IncidentKind::kDeviceMisconfig, "switchbot_hub", 15.0, 15.15,
                 "reset loop after reconfiguration (case 3)"});
    // Cases 6-8: documented network outages.
    v.push_back({IncidentKind::kNetworkOutage, "", 30.40, 30.65,
                 "campus network outage (case 6)"});
    v.push_back({IncidentKind::kNetworkOutage, "", 52.10, 52.28,
                 "gateway maintenance (case 7)"});
    v.push_back({IncidentKind::kNetworkOutage, "", 70.35, 70.70,
                 "upstream ISP outage (case 8)"});
    // Case 7-adjacent: a device removed for another experiment.
    v.push_back({IncidentKind::kDeviceRemoval, "tuya_camera", 40.0, 42.5,
                 "device borrowed for another experiment"});
    // Case 9: SwitchBot Hub malfunction — off for minutes-to-hours.
    for (double day : {60.0, 62.0, 65.0, 68.0, 71.0, 74.0, 77.0, 80.0}) {
      v.push_back({IncidentKind::kDeviceMalfunction, "switchbot_hub",
                   day + 0.3, day + 0.3 + 0.04 + 0.02 * day / 20.0,
                   "hub spontaneously powered off (case 9)"});
    }
    return v;
  }();
  return incidents;
}

OutageSpans outage_spans_for(const std::string& device_name, Timestamp t0,
                             Timestamp t1) {
  OutageSpans spans;
  for (const Incident& inc : standard_incidents()) {
    const bool offline_kind = inc.kind == IncidentKind::kNetworkOutage ||
                              inc.kind == IncidentKind::kDeviceRemoval ||
                              inc.kind == IncidentKind::kDeviceMalfunction;
    if (!offline_kind) continue;
    if (!inc.device.empty() && inc.device != device_name) continue;
    const Timestamp from = Timestamp::from_seconds(inc.start_day * 86400.0);
    const Timestamp to = Timestamp::from_seconds(inc.end_day * 86400.0);
    const Timestamp lo = std::max(from, t0);
    const Timestamp hi = std::min(to, t1);
    if (lo < hi) spans.emplace_back(lo, hi);
  }
  return spans;
}

}  // namespace behaviot::testbed
