#include "behaviot/testbed/traffic_gen.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "behaviot/net/dns.hpp"
#include "behaviot/net/rng.hpp"
#include "behaviot/net/tls.hpp"

namespace behaviot::testbed {
namespace {

std::uint64_t mix_key(std::uint64_t a, std::uint64_t b) {
  a ^= b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2);
  return a;
}

bool in_outage(Timestamp t, const OutageSpans& outages) {
  for (const auto& [from, to] : outages) {
    if (t >= from && t < to) return true;
  }
  return false;
}

}  // namespace

void GeneratedCapture::merge(GeneratedCapture&& other) {
  packets.insert(packets.end(),
                 std::make_move_iterator(other.packets.begin()),
                 std::make_move_iterator(other.packets.end()));
  truths.insert(truths.end(), std::make_move_iterator(other.truths.begin()),
                std::make_move_iterator(other.truths.end()));
  events.insert(events.end(), other.events.begin(), other.events.end());
  rdns.insert(rdns.end(), other.rdns.begin(), other.rdns.end());
  start = std::min(start, other.start);
  end = std::max(end, other.end);
}

void GeneratedCapture::sort_packets() {
  std::stable_sort(packets.begin(), packets.end(),
                   [](const Packet& a, const Packet& b) { return a.ts < b.ts; });
  std::stable_sort(events.begin(), events.end(), before);
}

std::size_t apply_ground_truth(std::vector<FlowRecord>& flows,
                               std::span<const FlowTruth> truths) {
  std::map<std::pair<std::size_t, std::int64_t>, const FlowTruth*> index;
  FiveTupleHash hasher;
  for (const FlowTruth& t : truths) {
    index[{hasher(t.tuple), t.start.micros()}] = &t;
  }
  std::size_t unmatched = 0;
  for (FlowRecord& f : flows) {
    auto it = index.find({hasher(f.tuple), f.start.micros()});
    if (it == index.end()) {
      ++unmatched;
      continue;
    }
    f.truth = it->second->kind;
    f.truth_label = it->second->label;
  }
  return unmatched;
}

TrafficGenerator::TrafficGenerator(const Catalog& catalog, std::uint64_t seed)
    : catalog_(&catalog), seed_(seed) {
  profiles_.reserve(catalog.size());
  next_ports_.assign(catalog.size(), 20000);
  Rng phase_rng(seed ^ 0x70a5e5ULL);
  for (const DeviceInfo& info : catalog.devices()) {
    profiles_.push_back(build_profile(info));
    const DeviceProfile& p = profiles_.back();
    for (std::size_t b = 0; b < p.periodic.size(); ++b) {
      phases_[{info.id, b}] = {phase_rng.uniform(0.0, p.periodic[b].period_s)};
    }
  }
}

const DeviceProfile& TrafficGenerator::profile(DeviceId device) const {
  return profiles_[device];
}

std::uint16_t TrafficGenerator::next_port(DeviceId device) {
  std::uint16_t& p = next_ports_[device];
  if (p >= 60000) p = 20000;
  return ++p;
}

void TrafficGenerator::emit_flow(const DeviceInfo& info,
                                 const std::string& domain, Transport proto,
                                 std::uint16_t dst_port, Timestamp t,
                                 std::span<const double> sizes,
                                 double size_jitter, double spread_s,
                                 EventKind kind, const std::string& label,
                                 bool with_sni, GeneratedCapture& out,
                                 Rng& rng) {
  FiveTuple tuple;
  tuple.src = {info.ip, next_port(info.id)};
  tuple.dst = {ip_for_domain(domain), dst_port};
  tuple.proto = proto;

  const double mean_gap =
      sizes.size() > 1
          ? std::min(0.8, spread_s / static_cast<double>(sizes.size() - 1))
          : 0.0;

  Timestamp ts = t;
  const Timestamp first = ts;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    Packet p;
    p.ts = ts;
    p.tuple = tuple;
    p.device = info.id;
    p.dir = (i % 2 == 0) ? Direction::kOutbound : Direction::kInbound;
    const double sz = std::max(
        60.0, sizes[i] + (size_jitter > 0 ? rng.normal(0.0, size_jitter) : 0.0));
    p.size = static_cast<std::uint32_t>(sz);
    if (with_sni && i == 0 && proto == Transport::kTcp && dst_port == 443) {
      p.payload = make_tls_client_hello(domain);
      p.size = std::max<std::uint32_t>(
          p.size, static_cast<std::uint32_t>(p.payload.size()) +
                      header_overhead(proto));
    }
    out.packets.push_back(std::move(p));
    if (i + 1 < sizes.size()) {
      // Exponential gaps, clamped below the 1 s burst threshold so one
      // logical exchange stays one flow burst.
      const double gap = std::min(0.9, 0.01 + rng.exponential(mean_gap + 1e-3));
      ts += seconds(gap);
    }
  }
  out.truths.push_back({tuple, first, kind, label});
  out.start = std::min(out.start, first);
  out.end = std::max(out.end, ts);
}

void TrafficGenerator::emit_dns_lookup(const DeviceInfo& info,
                                       const std::string& name, Timestamp t,
                                       GeneratedCapture& out, Rng& rng) {
  const DeviceProfile& prof = profiles_[info.id];
  const PeriodicBehavior& dns = prof.periodic.front();  // DNS is always first

  FiveTuple tuple;
  tuple.src = {info.ip, next_port(info.id)};
  tuple.dst = {ip_for_domain(dns.domain), 53};
  tuple.proto = Transport::kUdp;

  const auto txid =
      static_cast<std::uint16_t>(rng.next_u64() & 0xffff);
  Packet query;
  query.ts = t;
  query.tuple = tuple;
  query.device = info.id;
  query.dir = Direction::kOutbound;
  query.payload = make_dns_query(txid, name);
  query.size = static_cast<std::uint32_t>(query.payload.size()) +
               header_overhead(Transport::kUdp);

  Packet response;
  response.ts = t + milliseconds(8 + static_cast<std::int64_t>(
                                          rng.uniform(0.0, 40.0)));
  response.tuple = tuple;
  response.device = info.id;
  response.dir = Direction::kInbound;
  response.payload = make_dns_response(txid, name, ip_for_domain(name));
  response.size = static_cast<std::uint32_t>(response.payload.size()) +
                  header_overhead(Transport::kUdp);

  out.truths.push_back({tuple, t, EventKind::kPeriodic, ""});
  out.start = std::min(out.start, t);
  out.end = std::max(out.end, response.ts);
  out.packets.push_back(std::move(query));
  out.packets.push_back(std::move(response));
}

void TrafficGenerator::add_static_rdns(GeneratedCapture& out) {
  // Resolver reverse-DNS entries (the resolvers themselves are never
  // resolved via DNS).
  out.rdns.emplace_back(campus_resolver_ip(), "dns.neu.edu");
  out.rdns.emplace_back(google_dns_ip(), "dns.google");
}

void TrafficGenerator::gen_dns_bootstrap(DeviceId device, Timestamp t,
                                         GeneratedCapture& out) {
  const DeviceInfo& info = catalog_->by_id(device);
  const DeviceProfile& prof = profiles_[device];
  Rng rng(mix_key(seed_, mix_key(device, 0xb007)));

  Timestamp ts = t + seconds(rng.uniform(0.5, 8.0));
  std::set<std::string> seen;
  auto lookup = [&](const std::string& name) {
    if (name == prof.periodic.front().domain) return;  // resolver itself
    if (!seen.insert(name).second) return;
    emit_dns_lookup(info, name, ts, out, rng);
    ts += milliseconds(60 + static_cast<std::int64_t>(rng.uniform(0, 400)));
  };
  for (const PeriodicBehavior& b : prof.periodic) lookup(b.domain);
  for (const ActivitySignature& a : prof.activities) {
    lookup(a.domain);
    if (a.support_domain) lookup(*a.support_domain);
  }
  for (const AperiodicBehavior& b : prof.aperiodic) lookup(b.domain);
}

void TrafficGenerator::gen_background(DeviceId device, Timestamp t0,
                                      Timestamp t1, const OutageSpans& outages,
                                      GeneratedCapture& out) {
  const DeviceInfo& info = catalog_->by_id(device);
  const DeviceProfile& prof = profiles_[device];
  Rng rng(mix_key(seed_, mix_key(device, static_cast<std::uint64_t>(
                                             t0.micros()))));

  // Periodic behaviors tick on an absolute grid so day-by-day generation
  // stays phase-continuous.
  std::size_t dns_rotation = 0;
  for (std::size_t b = 0; b < prof.periodic.size(); ++b) {
    const PeriodicBehavior& beh = prof.periodic[b];
    const double offset = phases_.at({device, b}).offset_s;
    const double period = beh.period_s;
    auto k = static_cast<std::int64_t>(
        std::ceil((t0.seconds() - offset) / period));
    if (k < 0) k = 0;
    for (;; ++k) {
      const double grid_s = offset + static_cast<double>(k) * period;
      if (grid_s >= t1.seconds()) break;
      if (grid_s < t0.seconds()) continue;
      double jitter = rng.normal(0.0, beh.jitter_s);
      // Occasional congestion: a late beacon well beyond normal jitter,
      // which the timer stage misses and the cluster stage must absorb.
      if (rng.chance(0.008)) {
        jitter += rng.uniform(4.0 * beh.jitter_s, 0.04 * period);
      }
      const Timestamp t = Timestamp::from_seconds(grid_s + std::abs(jitter));
      if (t < t0 || t >= t1 || in_outage(t, outages)) continue;
      if (beh.is_dns) {
        // Hourly re-resolution rotates through the device's destinations.
        std::vector<std::string> names;
        for (const PeriodicBehavior& p : prof.periodic) {
          if (!p.is_dns) names.push_back(p.domain);
        }
        for (const ActivitySignature& a : prof.activities)
          names.push_back(a.domain);
        if (!names.empty()) {
          emit_dns_lookup(info, names[dns_rotation++ % names.size()], t, out,
                          rng);
        }
      } else {
        emit_flow(info, beh.domain, beh.proto, beh.dst_port, t, beh.sizes,
                  beh.size_jitter, 0.4, EventKind::kPeriodic, "",
                  /*with_sni=*/true, out, rng);
      }
    }
  }

  // Aperiodic behaviors: Poisson arrivals over the window.
  const double window_days = (t1 - t0) / 1e6 / 86400.0;
  for (const AperiodicBehavior& beh : prof.aperiodic) {
    const std::uint64_t n = rng.poisson(beh.daily_rate * window_days);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Timestamp t =
          t0 + static_cast<std::int64_t>(rng.uniform(
                   0.0, static_cast<double>(t1 - t0)));
      if (in_outage(t, outages)) continue;
      emit_flow(info, beh.domain, beh.proto, beh.dst_port, t, beh.sizes,
                beh.size_jitter, 0.8, EventKind::kAperiodic, "",
                /*with_sni=*/true, out, rng);
    }
  }
  out.start = std::min(out.start, t0);
  out.end = std::max(out.end, t1);
}

void TrafficGenerator::gen_user_event(DeviceId device,
                                      const std::string& command, Timestamp t,
                                      GeneratedCapture& out) {
  const DeviceInfo& info = catalog_->by_id(device);
  const DeviceProfile& prof = profiles_[device];
  const ActivitySignature* sig = prof.signature_for(command);
  if (sig == nullptr) return;
  Rng rng(mix_key(seed_, mix_key(device, static_cast<std::uint64_t>(
                                             t.micros()) ^ 0xeef7)));

  // Interleave out/in templates into one packet-size sequence.
  std::vector<double> sizes;
  const std::size_t n = sig->out_sizes.size() + sig->in_sizes.size();
  std::size_t oi = 0, ii = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i % 2 == 0 && oi < sig->out_sizes.size()) {
      sizes.push_back(sig->out_sizes[oi++]);
    } else if (ii < sig->in_sizes.size()) {
      sizes.push_back(sig->in_sizes[ii++]);
    } else {
      sizes.push_back(sig->out_sizes[oi++]);
    }
  }

  const std::string event_label = info.name + ":" + sig->label;
  emit_flow(info, sig->domain, sig->proto, sig->dst_port, t, sizes,
            sig->size_jitter, sig->duration_s, EventKind::kUser, event_label,
            /*with_sni=*/true, out, rng);
  if (sig->support_domain) {
    // Relay leg through the support cloud, slightly later and smaller.
    std::vector<double> relay_sizes;
    for (double s : sizes) relay_sizes.push_back(std::max(80.0, s * 0.8));
    emit_flow(info, *sig->support_domain, Transport::kTcp, 443,
              t + milliseconds(300 + static_cast<std::int64_t>(
                                         rng.uniform(0, 600))),
              relay_sizes, sig->size_jitter, sig->duration_s, EventKind::kUser,
              event_label, /*with_sni=*/true, out, rng);
  }

  UserEvent event;
  event.ts = t;
  event.device = device;
  event.device_name = info.name;
  event.activity = sig->label;
  out.events.push_back(std::move(event));
  out.end = std::max(out.end, t + seconds(sig->duration_s));
}

}  // namespace behaviot::testbed
