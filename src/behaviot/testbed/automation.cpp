#include "behaviot/testbed/automation.hpp"

namespace behaviot::testbed {

const std::vector<Automation>& standard_automations() {
  static const std::vector<Automation> automations = [] {
    std::vector<Automation> a;
    a.push_back({"R1", "Alexa/IFTTT: 'open garage' opens the Meross door",
                 "echo_spot", "voice",
                 {{"meross_dooropener", "open", 2.0}}});
    a.push_back({"R2", "Alexa: all lights on", "echo_spot", "voice",
                 {{"philips_bulb", "on", 1.0},
                  {"tplink_bulb", "on", 0.5},
                  {"smartlife_bulb", "on", 0.5},
                  {"jinvoo_bulb", "on", 0.5},
                  {"gosund_bulb", "on", 0.5},
                  {"govee_bulb", "on", 0.5},
                  {"magichome_strip", "on", 0.5}}});
    a.push_back({"R3", "Alexa: all lights off", "echo_spot", "voice",
                 {{"philips_bulb", "off", 1.0},
                  {"tplink_bulb", "off", 0.5},
                  {"smartlife_bulb", "off", 0.5},
                  {"jinvoo_bulb", "off", 0.5},
                  {"gosund_bulb", "off", 0.5},
                  {"govee_bulb", "off", 0.5},
                  {"magichome_strip", "off", 0.5}}});
    a.push_back({"R4", "Alexa: 'turn on TV' via SwitchBot, strip off",
                 "echo_spot", "voice",
                 {{"switchbot_hub", "on", 1.5},
                  {"magichome_strip", "off", 1.0}}});
    a.push_back({"R5", "Alexa: 'turn off TV' via SwitchBot, strip on",
                 "echo_spot", "voice",
                 {{"switchbot_hub", "off", 1.5},
                  {"magichome_strip", "on", 1.0}}});
    a.push_back({"R6", "Doorbell ring: Wemo on, weather on Echo, Wemo off",
                 "ring_doorbell", "ring",
                 {{"wemo_plug", "on", 1.5},
                  {"echo_spot", "voice", 1.0},
                  {"wemo_plug", "off", 5.0}}});
    a.push_back({"R7", "Doorbell motion: blink Smartlife, Jinvoo red",
                 "ring_doorbell", "motion",
                 {{"smartlife_bulb", "on", 1.0},
                  {"smartlife_bulb", "off", 5.0},
                  {"jinvoo_bulb", "color", 0.5}}});
    a.push_back({"R8", "Ring Camera motion: Gosund on", "ring_camera",
                 "motion", {{"gosund_bulb", "on", 1.5}}});
    a.push_back({"R9", "D-Link motion: TPLink Bulb on", "dlink_camera",
                 "motion", {{"tplink_bulb", "on", 1.5}}});
    a.push_back({"R10", "App schedule: thermostat on 6AM / off 10PM",
                 "", "",  // time-scheduled, expanded by the dataset driver
                 {{"nest_thermostat", "on", 0.0},
                  {"nest_thermostat", "off", 0.0}}});
    a.push_back({"R11", "Alexa 'I am leaving': thermostat 72, garage cycle",
                 "echo_spot", "voice",
                 {{"nest_thermostat", "set", 2.0},
                  {"meross_dooropener", "open", 2.0},
                  {"meross_dooropener", "close", 300.0}}});
    a.push_back({"R12", "Wyze motion: TPLink Plug on, clip, off",
                 "wyze_camera", "motion",
                 {{"tplink_plug", "on", 1.0},
                  {"wyze_camera", "clip", 2.0},
                  {"tplink_plug", "off", 3.0}}});
    a.push_back({"R13", "IFTTT 'good morning': boil iKettle, Govee on",
                 "echo_spot", "voice",
                 {{"smarter_ikettle", "on", 2.0}, {"govee_bulb", "on", 1.0}}});
    a.push_back({"R14", "IFTTT 'good night': Govee off", "echo_spot", "voice",
                 {{"govee_bulb", "off", 2.0}}});
    a.push_back({"R15", "Meross opens: TPLink Bulb on + maroon",
                 "meross_dooropener", "open",
                 {{"tplink_bulb", "on", 1.0}, {"tplink_bulb", "color", 1.0}}});
    a.push_back({"R16", "Meross closes: TPLink Plug off, bulb green",
                 "meross_dooropener", "close",
                 {{"tplink_plug", "off", 1.0},
                  {"tplink_bulb", "color", 1.0}}});
    return a;
  }();
  return automations;
}

namespace {

void expand(const std::string& device, const std::string& command,
            Timestamp at, int depth, std::vector<ScheduledCommand>& out) {
  if (depth > 3) return;  // guard against automation cycles
  for (const Automation& a : standard_automations()) {
    if (a.trigger_device != device || a.trigger_command != command ||
        a.trigger_device.empty()) {
      continue;
    }
    // R1's voice trigger is handled by the driver picking routines by id;
    // cascading here covers device-sensed triggers only.
    if (a.trigger_command == "voice") continue;
    Timestamp t = at;
    for (const AutomationAction& action : a.actions) {
      t += seconds(action.delay_s);
      out.push_back({action.device, action.command, t});
      expand(action.device, action.command, t, depth + 1, out);
    }
  }
}

}  // namespace

std::vector<ScheduledCommand> fire_automations(
    const std::string& trigger_device, const std::string& trigger_command,
    Timestamp trigger_time) {
  std::vector<ScheduledCommand> out;
  expand(trigger_device, trigger_command, trigger_time, 0, out);
  return out;
}

}  // namespace behaviot::testbed
