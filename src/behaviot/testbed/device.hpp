// Per-device behavior profiles: the statistical "firmware" of each simulated
// device. A profile lists the device's periodic traffic groups (heartbeats,
// DNS, NTP, telemetry), its user-activity flow signatures, and its rare
// aperiodic behaviors (update checks, pushes). Profiles are derived
// deterministically from the catalog so every dataset regenerates
// identically.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "behaviot/net/ip.hpp"
#include "behaviot/testbed/catalog.hpp"

namespace behaviot::testbed {

struct PeriodicBehavior {
  std::string domain;
  Transport proto = Transport::kTcp;
  std::uint16_t dst_port = 443;
  double period_s = 600.0;
  double jitter_s = 5.0;  ///< gaussian arrival jitter (σ)
  /// Flow shape: packet-size template alternating out/in, starting outbound.
  std::vector<double> sizes;
  double size_jitter = 4.0;
  bool is_dns = false;
  bool is_ntp = false;
};

struct ActivitySignature {
  std::string command;  ///< physical command ("on")
  std::string label;    ///< network-level ground-truth label ("on_off")
  std::string domain;
  Transport proto = Transport::kTcp;
  std::uint16_t dst_port = 443;
  std::vector<double> out_sizes;  ///< outbound packet-size template
  std::vector<double> in_sizes;   ///< interleaved inbound replies
  double size_jitter = 5.0;
  double duration_s = 0.6;  ///< exchange spread
  /// Optional second flow to a support-party relay (one third of activity
  /// devices use cloud relays per §6.1).
  std::optional<std::string> support_domain;
};

struct AperiodicBehavior {
  std::string domain;
  Transport proto = Transport::kTcp;
  std::uint16_t dst_port = 443;
  double daily_rate = 0.3;  ///< Poisson events per day
  std::vector<double> sizes;
  double size_jitter = 6.0;
  /// Echo Show 5 quirk (§5.1): aperiodic flows whose shape mimics a user
  /// activity, producing the bulk of the paper's 0.09% FPR.
  bool mimics_user_activity = false;
};

struct DeviceProfile {
  const DeviceInfo* info = nullptr;
  std::vector<PeriodicBehavior> periodic;
  std::vector<ActivitySignature> activities;
  std::vector<AperiodicBehavior> aperiodic;

  [[nodiscard]] const ActivitySignature* signature_for(
      const std::string& command) const;
};

/// Builds the deterministic profile of one device.
DeviceProfile build_profile(const DeviceInfo& info);

/// The testbed LAN's DNS resolver address (a campus resolver, as in the
/// paper's *.neu.edu periodic models) and the public resolver some devices
/// insist on (the "6 devices query Google DNS" finding).
inline constexpr std::uint32_t kCampusResolverIpValue = 0x9b210a35;  // 155.33.10.53
[[nodiscard]] Ipv4Addr campus_resolver_ip();
[[nodiscard]] Ipv4Addr google_dns_ip();

/// Deterministic public IP for a destination domain.
[[nodiscard]] Ipv4Addr ip_for_domain(const std::string& domain);

}  // namespace behaviot::testbed
