#include "behaviot/testbed/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "behaviot/net/rng.hpp"
#include "behaviot/testbed/automation.hpp"

namespace behaviot::testbed {
namespace {

/// Executes one voice routine: the Echo Spot's trigger event plus the
/// routine's action commands (cascading through device-sensed automations).
void run_voice_routine(TrafficGenerator& gen, const Automation& routine,
                       Timestamp t, GeneratedCapture& out,
                       const Catalog& catalog) {
  const DeviceInfo* spot = catalog.by_name("echo_spot");
  if (spot != nullptr) gen.gen_user_event(spot->id, "voice", t, out);
  Timestamp at = t;
  for (const AutomationAction& action : routine.actions) {
    at += seconds(action.delay_s);
    const DeviceInfo* dev = catalog.by_name(action.device);
    if (dev == nullptr) continue;
    gen.gen_user_event(dev->id, action.command, at, out);
    for (const ScheduledCommand& chained :
         fire_automations(action.device, action.command, at)) {
      const DeviceInfo* cd = catalog.by_name(chained.device);
      if (cd != nullptr) gen.gen_user_event(cd->id, chained.command,
                                            chained.at, out);
    }
  }
}

/// Executes a device-sensed trigger (motion/ring/...) and its automations.
void run_trigger(TrafficGenerator& gen, const std::string& device,
                 const std::string& command, Timestamp t,
                 GeneratedCapture& out, const Catalog& catalog) {
  const DeviceInfo* dev = catalog.by_name(device);
  if (dev == nullptr) return;
  gen.gen_user_event(dev->id, command, t, out);
  for (const ScheduledCommand& chained : fire_automations(device, command, t)) {
    const DeviceInfo* cd = catalog.by_name(chained.device);
    if (cd != nullptr) gen.gen_user_event(cd->id, chained.command, chained.at,
                                          out);
  }
}

const Automation* routine_by_id(const std::string& id) {
  for (const Automation& a : standard_automations()) {
    if (a.id == id) return &a;
  }
  return nullptr;
}

/// Daytime timestamp within a day: base day + uniform in [from_h, to_h).
Timestamp day_time(std::size_t day, double from_h, double to_h, Rng& rng) {
  const double h = rng.uniform(from_h, to_h);
  return Timestamp::from_seconds(static_cast<double>(day) * 86400.0 +
                                 h * 3600.0);
}

/// One day of "someone lives here" user activity on the routine subset.
/// `intensity` scales event volume; `motion_boost` multiplies Wyze motion
/// (camera-relocation incident).
void stochastic_user_day(TrafficGenerator& gen, const Catalog& catalog,
                         std::size_t day, double intensity,
                         double wyze_motion_boost, Rng& rng,
                         GeneratedCapture& out) {
  // R10: thermostat schedule fires every day.
  const DeviceInfo* nest = catalog.by_name("nest_thermostat");
  if (nest != nullptr) {
    gen.gen_user_event(nest->id, "on",
                       Timestamp::from_seconds(
                           static_cast<double>(day) * 86400.0 + 6.0 * 3600.0 +
                           rng.uniform(0, 90)),
                       out);
    gen.gen_user_event(nest->id, "off",
                       Timestamp::from_seconds(
                           static_cast<double>(day) * 86400.0 + 22.0 * 3600.0 +
                           rng.uniform(0, 90)),
                       out);
  }

  // Camera motions (people moving around) with their automations.
  struct MotionSource {
    const char* device;
    const char* command;
    double rate;
  };
  const MotionSource sources[] = {
      {"wyze_camera", "motion", 3.0 * wyze_motion_boost},
      {"ring_camera", "motion", 3.0},
      {"dlink_camera", "motion", 2.5},
      {"ring_doorbell", "motion", 2.0},
      {"ring_doorbell", "ring", 1.2},
  };
  for (const MotionSource& src : sources) {
    const std::uint64_t n = rng.poisson(src.rate * intensity);
    for (std::uint64_t i = 0; i < n; ++i) {
      run_trigger(gen, src.device, src.command, day_time(day, 7.5, 22.5, rng),
                  out, catalog);
    }
  }

  // Voice routines at plausible hours.
  struct VoiceSlot {
    const char* id;
    double from_h, to_h;
    double rate;
  };
  const VoiceSlot slots[] = {
      {"R13", 6.5, 9.0, 0.9},   // good morning
      {"R14", 21.5, 23.5, 0.9},  // good night
      {"R2", 17.0, 21.0, 0.8},  {"R3", 21.0, 23.5, 0.8},
      {"R4", 18.0, 22.0, 0.6},  {"R5", 20.0, 23.0, 0.6},
      {"R1", 7.0, 20.0, 0.7},   {"R11", 8.0, 10.0, 0.5},
  };
  for (const VoiceSlot& slot : slots) {
    const std::uint64_t n = rng.poisson(slot.rate * intensity);
    for (std::uint64_t i = 0; i < n; ++i) {
      const Automation* routine = routine_by_id(slot.id);
      if (routine == nullptr) continue;
      run_voice_routine(gen, *routine, day_time(day, slot.from_h, slot.to_h, rng),
                        out, catalog);
    }
  }

  // Ad-hoc direct app/voice commands on random routine devices.
  const auto routine_devices = catalog.routine_set();
  const std::uint64_t adhoc = rng.poisson(5.0 * intensity);
  for (std::uint64_t i = 0; i < adhoc; ++i) {
    const DeviceInfo* dev =
        routine_devices[rng.uniform_index(routine_devices.size())];
    if (dev->commands.empty()) continue;
    const std::string& command =
        dev->commands[rng.uniform_index(dev->commands.size())];
    run_trigger(gen, dev->name, command, day_time(day, 7.0, 23.5, rng), out,
                catalog);
  }
}

}  // namespace

void configure_resolver(DomainResolver& resolver,
                        const GeneratedCapture& capture) {
  for (const auto& [ip, name] : capture.rdns) {
    resolver.add_reverse_dns(ip, name);
  }
}

GeneratedCapture Datasets::idle(std::uint64_t seed, double days) {
  const Catalog& catalog = Catalog::standard();
  TrafficGenerator gen(catalog, seed);
  GeneratedCapture out;
  TrafficGenerator::add_static_rdns(out);
  const Timestamp t0 = Timestamp(0);
  const Timestamp t1 = Timestamp::from_seconds(days * 86400.0);
  for (const DeviceInfo& dev : catalog.devices()) {
    gen.gen_dns_bootstrap(dev.id, t0, out);
    gen.gen_background(dev.id, t0, t1, {}, out);
  }
  out.sort_packets();
  return out;
}

GeneratedCapture Datasets::activity(std::uint64_t seed,
                                    std::size_t repetitions) {
  const Catalog& catalog = Catalog::standard();
  TrafficGenerator gen(catalog, seed);
  Rng rng(seed ^ 0xac71ULL);
  GeneratedCapture out;
  TrafficGenerator::add_static_rdns(out);
  const Timestamp t0 = Timestamp(0);

  // Devices run their interaction scripts in parallel: each device steps
  // through its commands round-robin, one interaction every ~2-4 minutes,
  // offset so devices do not synchronize.
  Timestamp latest = t0;
  for (const DeviceInfo* dev : catalog.activity_set()) {
    if (dev->commands.empty()) continue;
    Rng drng = rng.fork(dev->id);
    Timestamp t = t0 + seconds(drng.uniform(10.0, 120.0));
    for (std::size_t rep = 0; rep < repetitions; ++rep) {
      for (const std::string& command : dev->commands) {
        gen.gen_user_event(dev->id, command, t, out);
        t += seconds(drng.uniform(120.0, 240.0));
      }
    }
    latest = std::max(latest, t);
  }
  const Timestamp t1 = latest + minutes(5.0);
  for (const DeviceInfo& dev : catalog.devices()) {
    gen.gen_dns_bootstrap(dev.id, t0, out);
    gen.gen_background(dev.id, t0, t1, {}, out);
  }
  out.sort_packets();
  return out;
}

GeneratedCapture Datasets::routine_week(std::uint64_t seed, double days) {
  const Catalog& catalog = Catalog::standard();
  TrafficGenerator gen(catalog, seed);
  Rng rng(seed ^ 0x60711e);
  GeneratedCapture out;
  TrafficGenerator::add_static_rdns(out);
  const Timestamp t0 = Timestamp(0);
  const Timestamp t1 = Timestamp::from_seconds(days * 86400.0);

  const auto n_days = static_cast<std::size_t>(std::ceil(days));
  for (std::size_t day = 0; day < n_days; ++day) {
    Rng day_rng = rng.fork(day);
    stochastic_user_day(gen, catalog, day, /*intensity=*/1.0,
                        /*wyze_motion_boost=*/1.0, day_rng, out);
  }
  // Background for the routine subset only (the paper's routine experiments
  // captured the 18 devices involved).
  for (const DeviceInfo* dev : catalog.routine_set()) {
    gen.gen_dns_bootstrap(dev->id, t0, out);
    gen.gen_background(dev->id, t0, t1, {}, out);
  }
  out.sort_packets();
  return out;
}

GeneratedCapture Datasets::uncontrolled_day(std::size_t day,
                                            std::uint64_t seed) {
  const Catalog& catalog = Catalog::standard();
  TrafficGenerator gen(catalog, seed);
  Rng rng = Rng(seed ^ 0x87dULL).fork(day);
  GeneratedCapture out;
  TrafficGenerator::add_static_rdns(out);
  const Timestamp t0 = Timestamp::from_seconds(static_cast<double>(day) *
                                               86400.0);
  const Timestamp t1 = t0 + days(1.0);

  // Incident modifiers for this day.
  double wyze_boost = 1.0;
  bool lab_experiment = false;
  bool misconfig = false;
  for (const Incident& inc : standard_incidents()) {
    if (!inc.covers_day(day)) continue;
    switch (inc.kind) {
      case IncidentKind::kCameraRelocation: wyze_boost = 6.0; break;
      case IncidentKind::kLabExperiment: lab_experiment = true; break;
      case IncidentKind::kDeviceMisconfig: misconfig = true; break;
      default: break;  // offline incidents handled via outage spans
    }
  }

  // Participants wander in and out; weekends are busier.
  const double intensity = (day % 7 >= 5 ? 1.3 : 0.9) * rng.uniform(0.7, 1.2);
  stochastic_user_day(gen, catalog, day, intensity, wyze_boost, rng, out);

  if (lab_experiment) {
    // Case 2: 50 consecutive voice activations within 30 minutes.
    const DeviceInfo* spot = catalog.by_name("echo_spot");
    Timestamp t = t0 + hours(14.0);
    for (int i = 0; i < 50; ++i) {
      if (spot != nullptr) gen.gen_user_event(spot->id, "voice", t, out);
      t += seconds(rng.uniform(20.0, 40.0));
    }
  }
  if (misconfig) {
    // Case 3: reset devices repeat on/off for ~3 hours.
    Timestamp t = t0 + hours(10.0);
    const Timestamp stop = t + hours(3.0);
    while (t < stop) {
      run_trigger(gen, "smartlife_bulb", rng.chance(0.5) ? "on" : "off", t,
                  out, catalog);
      run_trigger(gen, "switchbot_hub", rng.chance(0.5) ? "on" : "off",
                  t + seconds(rng.uniform(5.0, 20.0)), out, catalog);
      t += seconds(rng.uniform(100.0, 200.0));
    }
  }

  // Background with incident-driven outages. Day 0 bootstraps DNS.
  for (const DeviceInfo* dev : catalog.uncontrolled_set()) {
    if (day == 0) gen.gen_dns_bootstrap(dev->id, t0, out);
    gen.gen_background(dev->id, t0, t1,
                       outage_spans_for(dev->name, t0, t1), out);
  }

  // Drop user events landing inside outages (no connectivity, no events).
  const OutageSpans network_outages = outage_spans_for("", t0, t1);
  if (!network_outages.empty()) {
    auto in_any = [&network_outages](Timestamp t) {
      for (const auto& [from, to] : network_outages) {
        if (t >= from && t < to) return true;
      }
      return false;
    };
    std::erase_if(out.packets,
                  [&in_any](const Packet& p) { return in_any(p.ts); });
    std::erase_if(out.events,
                  [&in_any](const UserEvent& e) { return in_any(e.ts); });
    std::erase_if(out.truths, [&in_any](const FlowTruth& t) {
      return in_any(t.start);
    });
  }

  out.start = t0;
  out.end = t1;
  out.sort_packets();
  return out;
}

}  // namespace behaviot::testbed
