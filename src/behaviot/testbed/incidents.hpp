// Ground-truth incidents injected into the uncontrolled dataset, mirroring
// the §6.2 case studies: a relocated camera (cases 1/4/5), a lab stress
// experiment (case 2), device reset misconfiguration (case 3), network
// outages and device removals (cases 6-8), and recurring device
// malfunctions (case 9).
#pragma once

#include <string>
#include <vector>

#include "behaviot/testbed/traffic_gen.hpp"

namespace behaviot::testbed {

enum class IncidentKind : std::uint8_t {
  kCameraRelocation,   ///< motion sensitivity jumps after a move
  kLabExperiment,      ///< burst of 50 voice activations in 30 minutes
  kDeviceMisconfig,    ///< devices reset and stuck repeating events
  kNetworkOutage,      ///< whole testbed offline for hours
  kDeviceRemoval,      ///< one device unplugged for days
  kDeviceMalfunction,  ///< intermittent hours-long blackouts
};

[[nodiscard]] const char* to_string(IncidentKind k);

struct Incident {
  IncidentKind kind = IncidentKind::kNetworkOutage;
  std::string device;  ///< catalog name; empty = entire network
  double start_day = 0.0;  ///< fractional days from the uncontrolled start
  double end_day = 0.0;
  std::string note;

  [[nodiscard]] bool covers_day(std::size_t day) const {
    return start_day < static_cast<double>(day + 1) &&
           end_day > static_cast<double>(day);
  }
};

/// The injected incident schedule for the 87-day uncontrolled dataset.
const std::vector<Incident>& standard_incidents();

/// Offline spans affecting `device_name` (its own incidents plus network-wide
/// ones) clipped to [t0, t1).
OutageSpans outage_spans_for(const std::string& device_name, Timestamp t0,
                             Timestamp t1);

}  // namespace behaviot::testbed
