// Packet-level traffic synthesis from device profiles.
//
// The generator produces the gateway's view: packets with headers, timing,
// and the cleartext DNS/TLS-SNI payloads a real capture would carry, plus a
// ground-truth side channel (per-flow kind/label and per-event records) that
// plays the role of the paper's controlled-experiment labels.
#pragma once

#include <limits>
#include <map>
#include <span>
#include <utility>
#include <vector>

#include "behaviot/flow/flow.hpp"
#include "behaviot/net/rng.hpp"
#include "behaviot/pfsm/event.hpp"
#include "behaviot/testbed/device.hpp"

namespace behaviot::testbed {

/// Ground truth for one generated flow, joinable to assembled FlowRecords by
/// (5-tuple, first-packet timestamp).
struct FlowTruth {
  FiveTuple tuple;
  Timestamp start;
  EventKind kind = EventKind::kPeriodic;
  std::string label;  ///< "<device>:<label>" for user events, else ""
};

struct GeneratedCapture {
  std::vector<Packet> packets;
  std::vector<FlowTruth> truths;
  std::vector<UserEvent> events;  ///< physical user events (ground truth)
  /// Reverse-DNS fallback entries a gateway operator would configure.
  std::vector<std::pair<Ipv4Addr, std::string>> rdns;
  Timestamp start{std::numeric_limits<std::int64_t>::max()};
  Timestamp end{std::numeric_limits<std::int64_t>::min()};

  void merge(GeneratedCapture&& other);
  /// Sorts packets by time (generation appends per device/behavior).
  void sort_packets();
};

/// Applies the ground-truth side channel to assembled flows. Returns the
/// number of flows that found no truth entry (should be 0 on simulated
/// captures).
std::size_t apply_ground_truth(std::vector<FlowRecord>& flows,
                               std::span<const FlowTruth> truths);

/// Time spans during which a device (or the whole network) is offline.
using OutageSpans = std::vector<std::pair<Timestamp, Timestamp>>;

class TrafficGenerator {
 public:
  TrafficGenerator(const Catalog& catalog, std::uint64_t seed);

  [[nodiscard]] const DeviceProfile& profile(DeviceId device) const;
  [[nodiscard]] const Catalog& catalog() const { return *catalog_; }

  /// DNS bootstrap: the device resolves all its destinations shortly after
  /// `t` (as on power-up), teaching the capture's DomainResolver.
  void gen_dns_bootstrap(DeviceId device, Timestamp t, GeneratedCapture& out);

  /// Attaches the gateway operator's static reverse-DNS entries (resolver
  /// addresses) to a capture. Part of every capture: the entries are router
  /// configuration, not traffic.
  static void add_static_rdns(GeneratedCapture& out);

  /// Periodic + aperiodic background over [t0, t1), skipping outage spans.
  void gen_background(DeviceId device, Timestamp t0, Timestamp t1,
                      const OutageSpans& outages, GeneratedCapture& out);

  /// One user event: emits the activity's flow(s), a FlowTruth per flow, and
  /// the ground-truth UserEvent. Unknown commands are ignored.
  void gen_user_event(DeviceId device, const std::string& command,
                      Timestamp t, GeneratedCapture& out);

 private:
  struct BehaviorPhase {
    double offset_s = 0.0;  ///< phase of the periodic grid
  };

  void emit_flow(const DeviceInfo& info, const std::string& domain,
                 Transport proto, std::uint16_t dst_port, Timestamp t,
                 std::span<const double> sizes, double size_jitter,
                 double spread_s, EventKind kind, const std::string& label,
                 bool with_sni, GeneratedCapture& out, Rng& rng);
  void emit_dns_lookup(const DeviceInfo& info, const std::string& name,
                       Timestamp t, GeneratedCapture& out, Rng& rng);

  std::uint16_t next_port(DeviceId device);

  const Catalog* catalog_;
  std::uint64_t seed_;
  std::vector<DeviceProfile> profiles_;  // index = DeviceId
  std::vector<std::uint16_t> next_ports_;
  /// Deterministic per-(device, behavior) phase offsets.
  std::map<std::pair<DeviceId, std::size_t>, BehaviorPhase> phases_;
};

}  // namespace behaviot::testbed
