// Dataset factories reproducing the paper's data collection (§3):
//   idle            — 5 days, 49 devices, zero user interaction
//   activity        — scripted labeled interactions, ≥30 reps per activity
//   routine_week    — 18 devices, 7 days of automations + ad-hoc commands
//   uncontrolled    — 87 days, 47 devices, stochastic participants + the
//                     injected incidents of incidents.hpp
// All captures regenerate bit-identically from their seeds.
#pragma once

#include "behaviot/net/domain_resolver.hpp"
#include "behaviot/testbed/incidents.hpp"
#include "behaviot/testbed/traffic_gen.hpp"

namespace behaviot::testbed {

struct Datasets {
  static constexpr std::size_t kUncontrolledDays = 87;
  static constexpr double kIdleDays = 5.0;

  /// Idle dataset (§3.2): all 49 devices, background only.
  static GeneratedCapture idle(std::uint64_t seed = 101,
                               double days = kIdleDays);

  /// Activity dataset (§3.2): every activity-set device runs each of its
  /// commands `repetitions` times, background running, ground truth labeled.
  static GeneratedCapture activity(std::uint64_t seed = 202,
                                   std::size_t repetitions = 30);

  /// Routine dataset (§3.2): one week of trigger-action automations plus
  /// ad-hoc voice/app commands on the 18-device subset.
  static GeneratedCapture routine_week(std::uint64_t seed = 303,
                                       double days = 7.0);

  /// One day of the uncontrolled dataset (§3.3), 0-indexed. Generated
  /// per-day so longitudinal benches can stream 87 days without holding the
  /// whole capture in memory. Incidents from standard_incidents() apply.
  static GeneratedCapture uncontrolled_day(std::size_t day,
                                           std::uint64_t seed = 404);
};

/// Installs the capture's reverse-DNS entries into a resolver (the gateway
/// operator's static configuration).
void configure_resolver(DomainResolver& resolver,
                        const GeneratedCapture& capture);

}  // namespace behaviot::testbed
