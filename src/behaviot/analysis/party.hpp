// Destination-party classification (§6.1 "Event destination analysis").
//
// First party: the device vendor or an affiliate. Support party: cloud/CDN
// infrastructure. Third party: everything else (trackers, Google DNS,
// public NTP pools...). The registry plays the role of the WHOIS +
// common-sense matching rules the paper applies.
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

namespace behaviot {

enum class Party : std::uint8_t { kFirst, kSupport, kThird, kUnknown };

[[nodiscard]] const char* to_string(Party p);

class PartyRegistry {
 public:
  /// Registry pre-populated with the vendor/support/third mappings used by
  /// the simulated testbed plus common real-world domains.
  static PartyRegistry standard();

  /// Maps a domain suffix (e.g. "tplinkcloud.com") to an organization.
  void add_domain(std::string suffix, std::string organization, Party party);
  /// Marks an organization as the vendor (first party) of a device vendor
  /// key, e.g. vendor "tplink" → org "TP-Link".
  void add_vendor_alias(std::string vendor, std::string organization);

  /// Classifies a destination domain from the point of view of a device of
  /// the given vendor. A support/third org that IS the device's vendor
  /// (or an affiliate) is promoted to first party — e.g. Amazon domains are
  /// first party for Echo devices but support party for a Wemo plug using
  /// AWS.
  [[nodiscard]] Party classify(std::string_view domain,
                               std::string_view vendor) const;

  /// Organization for a domain ("" when unknown).
  [[nodiscard]] std::string organization(std::string_view domain) const;

 private:
  struct Entry {
    std::string organization;
    Party party = Party::kUnknown;
  };
  /// Keyed by domain suffix; longest suffix wins.
  std::map<std::string, Entry> by_suffix_;
  std::map<std::string, std::string> vendor_org_;
};

}  // namespace behaviot
