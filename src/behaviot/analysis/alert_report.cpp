#include "behaviot/analysis/alert_report.hpp"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

#include "behaviot/obs/json.hpp"

namespace behaviot {
namespace {

/// Full-precision double rendering so scores survive a round trip. The
/// report consumers parse with from_chars, so 17 significant digits are
/// exact — and to_chars (unlike %.17g) never swaps the decimal point for
/// the global C locale's radix character, which would break those parses.
std::string num(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v,
                                       std::chars_format::general, 17);
  return std::string(buf, end);
}

DeviationSource source_from_string(const std::string& s) {
  if (s == "periodic") return DeviationSource::kPeriodic;
  if (s == "short-term") return DeviationSource::kShortTerm;
  if (s == "long-term") return DeviationSource::kLongTerm;
  throw std::runtime_error("alert report: unknown source '" + s + "'");
}

void emit_explanation(std::ostringstream& os, const AlertExplanation& ex) {
  os << "{\"metric\": \"" << obs::json::escape(ex.metric) << "\""
     << ", \"observed\": " << num(ex.observed)
     << ", \"expected\": " << num(ex.expected)
     << ", \"threshold\": " << num(ex.threshold)
     << ", \"model_group\": \"" << obs::json::escape(ex.model_group) << "\""
     << ", \"cluster_id\": " << ex.cluster_id
     << ", \"cluster_distance\": " << num(ex.cluster_distance)
     << ", \"vote_margin\": " << num(ex.vote_margin)
     << ", \"support\": " << ex.support << "}";
}

AlertExplanation parse_explanation(const obs::json::Value& v) {
  AlertExplanation ex;
  ex.metric = v.at("metric").as_string();
  ex.observed = v.at("observed").as_number();
  ex.expected = v.at("expected").as_number();
  ex.threshold = v.at("threshold").as_number();
  ex.model_group = v.at("model_group").as_string();
  ex.cluster_id = static_cast<int>(v.at("cluster_id").as_number());
  ex.cluster_distance = v.at("cluster_distance").as_number();
  ex.vote_margin = v.at("vote_margin").as_number();
  ex.support = static_cast<std::size_t>(v.at("support").as_number());
  return ex;
}

}  // namespace

std::string alerts_to_json(std::span<const DeviationAlert> alerts,
                           const obs::HealthSnapshot* health) {
  std::ostringstream os;
  os << "{\n\"version\": 1,\n";
  if (health != nullptr) {
    os << "\"health\": " << obs::health_to_json(*health) << ",\n";
  }
  os << "\"alerts\": [";
  for (std::size_t i = 0; i < alerts.size(); ++i) {
    const DeviationAlert& a = alerts[i];
    os << (i == 0 ? "\n" : ",\n");
    os << "{\"source\": \"" << to_string(a.source) << "\""
       << ", \"when_us\": " << a.when.micros()
       << ", \"device\": " << static_cast<long long>(a.device)
       << ", \"score\": " << num(a.score)
       << ", \"threshold\": " << num(a.threshold)
       << ", \"context\": \"" << obs::json::escape(a.context) << "\""
       << ", \"explanation\": ";
    emit_explanation(os, a.explanation);
    os << "}";
  }
  os << "\n]\n}\n";
  return os.str();
}

std::vector<DeviationAlert> alerts_from_json(std::string_view text) {
  const obs::json::Value doc = obs::json::parse(text);
  const double version = doc.at("version").as_number();
  if (version != 1.0) {
    throw std::runtime_error("alert report: unsupported version " +
                             std::to_string(version));
  }
  std::vector<DeviationAlert> out;
  for (const obs::json::Value& v : doc.at("alerts").as_array()) {
    DeviationAlert a;
    a.source = source_from_string(v.at("source").as_string());
    a.when = Timestamp(static_cast<std::int64_t>(v.at("when_us").as_number()));
    a.device = static_cast<DeviceId>(v.at("device").as_number());
    a.score = v.at("score").as_number();
    a.threshold = v.at("threshold").as_number();
    a.context = v.at("context").as_string();
    a.explanation = parse_explanation(v.at("explanation"));
    out.push_back(std::move(a));
  }
  return out;
}

std::string render_alert_explanation(const DeviationAlert& alert,
                                     std::string_view device_name) {
  const AlertExplanation& ex = alert.explanation;
  std::ostringstream os;
  os << "[" << to_string(alert.source) << "] ";
  if (!device_name.empty()) {
    os << std::string(device_name) << " ";
  }
  char line[160];
  std::snprintf(line, sizeof(line), "score %.3f crossed threshold %.3f (%s)",
                alert.score, alert.threshold, ex.metric.c_str());
  os << "at t=" << alert.when.micros() / 1000000 << "s: " << line << "\n";

  switch (alert.source) {
    case DeviationSource::kPeriodic:
      std::snprintf(line, sizeof(line),
                    "  observed %.1fs between events vs expected period %.1fs",
                    ex.observed, ex.expected);
      os << line << "\n";
      os << "  model group: " << ex.model_group << " (support "
         << ex.support << " training flows)\n";
      if (ex.cluster_id >= 0) {
        std::snprintf(line, sizeof(line),
                      "  deviating flow sits %.3f from density cluster #%d",
                      ex.cluster_distance, ex.cluster_id);
        os << line << "\n";
      } else {
        os << "  no flow evidence (silence, or no fitted cluster stage)\n";
      }
      break;
    case DeviationSource::kShortTerm:
      std::snprintf(line, sizeof(line),
                    "  trace surprisal A_T=%.3f vs calibrated mean %.3f",
                    ex.observed, ex.expected);
      os << line << "\n";
      os << "  trace (" << ex.support << " events): " << ex.model_group
         << "\n";
      if (ex.vote_margin >= 0.0) {
        std::snprintf(line, sizeof(line),
                      "  weakest classifier vote margin in trace: %.3f",
                      ex.vote_margin);
        os << line << "\n";
      }
      break;
    case DeviationSource::kLongTerm:
      std::snprintf(line, sizeof(line),
                    "  transition probability %.4f vs model %.4f over n=%zu",
                    ex.observed, ex.expected, ex.support);
      os << line << "\n";
      os << "  transition: " << ex.model_group << "\n";
      break;
  }
  os << "  context: " << alert.context << "\n";
  return os.str();
}

}  // namespace behaviot
