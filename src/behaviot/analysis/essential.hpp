// Essential / non-essential destination lists (§6.1), modeled on the IoTrim
// study [49]: a destination is non-essential when blocking it does not
// impair device functionality.
#pragma once

#include <set>
#include <string>
#include <string_view>

namespace behaviot {

enum class Essentiality : std::uint8_t { kEssential, kNonEssential, kUnlisted };

[[nodiscard]] const char* to_string(Essentiality e);

class EssentialList {
 public:
  /// The list used for the §6.1 analysis: vendor-cloud control/primary-
  /// function endpoints are essential; telemetry, ads, trackers, and
  /// public-DNS detours are non-essential.
  static EssentialList standard();

  void add_essential(std::string suffix);
  void add_non_essential(std::string suffix);

  [[nodiscard]] Essentiality classify(std::string_view domain) const;

  [[nodiscard]] std::size_t essential_count() const {
    return essential_.size();
  }
  [[nodiscard]] std::size_t non_essential_count() const {
    return non_essential_.size();
  }

 private:
  std::set<std::string> essential_;
  std::set<std::string> non_essential_;
};

}  // namespace behaviot
