// Alert report serialization: deviation alerts — including their provenance
// records — round-trip through a JSON document so a scoring run can be
// archived and explained offline (`behaviot_cli score --alerts FILE`, then
// `behaviot_cli explain --alerts FILE`).
#pragma once

#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "behaviot/deviation/monitor.hpp"
#include "behaviot/obs/health.hpp"

namespace behaviot {

/// Serializes alerts as a JSON object {"version": 1, "alerts": [...]};
/// every alert carries its AlertExplanation under "explanation". Field
/// order is fixed, doubles round-trip at full precision, and strings are
/// escaped to plain ASCII, so the output is deterministic and diffable.
///
/// When `health` is non-null the document also carries a "health" object
/// (obs::health_to_json) — an alert consumer can then tell whether the run
/// that produced the alerts was itself degraded (readers that predate the
/// field ignore it).
[[nodiscard]] std::string alerts_to_json(
    std::span<const DeviationAlert> alerts,
    const obs::HealthSnapshot* health = nullptr);

/// Parses a document written by alerts_to_json. Throws std::runtime_error
/// on malformed JSON, an unknown version, or a missing required field.
[[nodiscard]] std::vector<DeviationAlert> alerts_from_json(
    std::string_view text);

/// Renders one alert's provenance as a human-readable block (used by the
/// `explain` subcommand): what was observed, what the model expected, which
/// threshold was crossed, and the source-specific evidence.
/// `device_name` may be empty for system-level (long-term) alerts.
[[nodiscard]] std::string render_alert_explanation(const DeviationAlert& alert,
                                                   std::string_view device_name);

}  // namespace behaviot
