// Per-device behavior characterization (§6.1): summarizes what the trained
// models say about each device — periodic-model inventory, destination
// parties, event-type mix — the data behind the paper's observations that
// device complexity correlates with periodic-model count and that
// same-vendor devices share model families with differing periods.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "behaviot/analysis/party.hpp"
#include "behaviot/flow/flow.hpp"
#include "behaviot/periodic/periodic_model.hpp"
#include "behaviot/testbed/catalog.hpp"

namespace behaviot {

struct DeviceCharacterization {
  DeviceId device = kUnknownDevice;
  std::string name;
  std::string display;
  testbed::DeviceCategory category = testbed::DeviceCategory::kHomeAutomation;
  std::size_t periodic_models = 0;
  std::vector<double> periods;  ///< sorted ascending
  std::size_t first_party_dests = 0;
  std::size_t support_party_dests = 0;
  std::size_t third_party_dests = 0;
  /// Event-type flow mix over the supplied traffic (by ground truth or
  /// classification, whichever the caller filled into FlowRecord::truth).
  std::size_t periodic_flows = 0;
  std::size_t user_flows = 0;
  std::size_t aperiodic_flows = 0;

  [[nodiscard]] std::size_t total_flows() const {
    return periodic_flows + user_flows + aperiodic_flows;
  }
};

/// Builds the per-device summaries from inferred models and a traffic
/// sample. Devices without models or traffic still appear (zeroed).
std::vector<DeviceCharacterization> characterize_devices(
    const PeriodicModelSet& models, std::span<const FlowRecord> flows,
    const testbed::Catalog& catalog, const PartyRegistry& registry);

/// Text rendering, one block per device, suitable for operator reports.
std::string render_characterization(
    std::span<const DeviceCharacterization> devices);

}  // namespace behaviot
