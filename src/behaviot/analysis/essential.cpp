#include "behaviot/analysis/essential.hpp"

namespace behaviot {

const char* to_string(Essentiality e) {
  switch (e) {
    case Essentiality::kEssential: return "essential";
    case Essentiality::kNonEssential: return "non-essential";
    case Essentiality::kUnlisted: return "unlisted";
  }
  return "?";
}

void EssentialList::add_essential(std::string suffix) {
  essential_.insert(std::move(suffix));
}

void EssentialList::add_non_essential(std::string suffix) {
  non_essential_.insert(std::move(suffix));
}

namespace {

bool suffix_match(std::string_view domain, std::string_view suffix) {
  if (domain.size() < suffix.size() || !domain.ends_with(suffix)) return false;
  return domain.size() == suffix.size() ||
         domain[domain.size() - suffix.size() - 1] == '.';
}

bool any_match(const std::set<std::string>& suffixes,
               std::string_view domain) {
  for (const auto& s : suffixes) {
    if (suffix_match(domain, s)) return true;
  }
  return false;
}

}  // namespace

Essentiality EssentialList::classify(std::string_view domain) const {
  // Non-essential entries are more specific (telemetry subdomains of vendor
  // clouds), so they take precedence.
  if (any_match(non_essential_, domain)) return Essentiality::kNonEssential;
  if (any_match(essential_, domain)) return Essentiality::kEssential;
  return Essentiality::kUnlisted;
}

EssentialList EssentialList::standard() {
  EssentialList list;
  // Essential: primary-function control planes.
  for (const char* s :
       {"tplinkcloud.com", "tuyacloud.com", "tuyaus.com", "ring.com",
        "dlink.com", "xbcs.net", "meethue.com", "samsungiotcloud.com",
        "smartthings.com", "nest.com", "wyze.com", "meross.com", "govee.com",
        "switch-bot.com", "ikea.net", "aqara.cn", "wink.com", "mysmarter.com",
        "behmor.com", "anovaculinary.com", "geappliances.com", "lefuncam.net",
        "microseven.com", "yitechnology.com", "wansview.net", "ubell.io",
        "icsee.net", "keyco.io", "thermopro.io", "magichomecloud.com",
        "gosund.net", "jinvoo.com", "alexa.com", "avs.amazon.com",
        "clients.google.com", "gateway.icloud.com", "pool.ntp.org",
        "neu.edu"}) {
    list.add_essential(s);
  }
  // Non-essential: telemetry, metrics, advertising, tracker detours.
  for (const char* s :
       {"device-metrics-us.amazon.com", "mas-sdk.amazon.com",
        "crashlytics.com", "adservice.net", "tracker.io", "mixpanel.com",
        "doubleclick.net", "dns.google", "metrics.icloud.com",
        "telemetry.tuyaus.com", "stats.tplinkcloud.com",
        "analytics.samsungiotcloud.com", "logs.ring.com"}) {
    list.add_non_essential(s);
  }
  return list;
}

}  // namespace behaviot
