// Fixed-width table rendering used by the benchmark harness so every
// reproduced table/figure prints in a uniform, diff-friendly format.
#pragma once

#include <string>
#include <vector>

namespace behaviot {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders the table with a header underline and right-padded columns.
  [[nodiscard]] std::string to_string() const;

  /// Formats helpers shared by bench binaries.
  static std::string percent(double fraction, int decimals = 1);
  static std::string fixed(double value, int decimals = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace behaviot
