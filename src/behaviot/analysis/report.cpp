#include "behaviot/analysis/report.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace behaviot {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TablePrinter::percent(double fraction, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
  return buf;
}

std::string TablePrinter::fixed(double value, int decimals) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

}  // namespace behaviot
