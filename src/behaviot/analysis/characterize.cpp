#include "behaviot/analysis/characterize.hpp"

#include <algorithm>
#include <set>
#include <sstream>

namespace behaviot {

std::vector<DeviceCharacterization> characterize_devices(
    const PeriodicModelSet& models, std::span<const FlowRecord> flows,
    const testbed::Catalog& catalog, const PartyRegistry& registry) {
  std::map<DeviceId, DeviceCharacterization> by_device;
  for (const auto& info : catalog.devices()) {
    DeviceCharacterization c;
    c.device = info.id;
    c.name = info.name;
    c.display = info.display;
    c.category = info.category;
    by_device[info.id] = std::move(c);
  }

  // Model inventory + destination parties.
  std::map<DeviceId, std::set<std::string>> dest_seen;
  for (const PeriodicModel& m : models.all()) {
    auto it = by_device.find(m.device);
    if (it == by_device.end()) continue;
    DeviceCharacterization& c = it->second;
    ++c.periodic_models;
    c.periods.push_back(m.period_seconds);
    if (m.domain.empty() || !dest_seen[m.device].insert(m.domain).second) {
      continue;
    }
    switch (registry.classify(m.domain, catalog.by_id(m.device).vendor)) {
      case Party::kFirst: ++c.first_party_dests; break;
      case Party::kSupport: ++c.support_party_dests; break;
      case Party::kThird:
      case Party::kUnknown: ++c.third_party_dests; break;
    }
  }

  // Traffic mix.
  for (const FlowRecord& f : flows) {
    auto it = by_device.find(f.device);
    if (it == by_device.end()) continue;
    switch (f.truth) {
      case EventKind::kPeriodic: ++it->second.periodic_flows; break;
      case EventKind::kUser: ++it->second.user_flows; break;
      case EventKind::kAperiodic:
      case EventKind::kUnknown: ++it->second.aperiodic_flows; break;
    }
  }

  std::vector<DeviceCharacterization> out;
  out.reserve(by_device.size());
  for (auto& [device, c] : by_device) {
    std::sort(c.periods.begin(), c.periods.end());
    out.push_back(std::move(c));
  }
  return out;
}

std::string render_characterization(
    std::span<const DeviceCharacterization> devices) {
  std::ostringstream os;
  for (const DeviceCharacterization& c : devices) {
    os << c.display << " [" << to_string(c.category) << "]\n";
    os << "  periodic models: " << c.periodic_models;
    if (!c.periods.empty()) {
      os << "  (periods:";
      for (double p : c.periods) {
        os << ' ' << static_cast<long>(p + 0.5) << 's';
      }
      os << ')';
    }
    os << "\n  destinations: " << c.first_party_dests << " first / "
       << c.support_party_dests << " support / " << c.third_party_dests
       << " third party\n";
    if (c.total_flows() > 0) {
      const auto total = static_cast<double>(c.total_flows());
      os << "  traffic mix: "
         << static_cast<int>(100.0 * static_cast<double>(c.periodic_flows) /
                                 total +
                             0.5)
         << "% periodic, "
         << static_cast<int>(
                100.0 * static_cast<double>(c.user_flows) / total + 0.5)
         << "% user, "
         << static_cast<int>(100.0 * static_cast<double>(c.aperiodic_flows) /
                                 total +
                             0.5)
         << "% aperiodic\n";
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace behaviot
