#include "behaviot/analysis/party.hpp"

#include <algorithm>

namespace behaviot {

const char* to_string(Party p) {
  switch (p) {
    case Party::kFirst: return "first";
    case Party::kSupport: return "support";
    case Party::kThird: return "third";
    case Party::kUnknown: return "unknown";
  }
  return "?";
}

void PartyRegistry::add_domain(std::string suffix, std::string organization,
                               Party party) {
  by_suffix_[std::move(suffix)] = {std::move(organization), party};
}

void PartyRegistry::add_vendor_alias(std::string vendor,
                                     std::string organization) {
  vendor_org_[std::move(vendor)] = std::move(organization);
}

namespace {

/// True when `domain` equals `suffix` or ends with "." + suffix.
bool suffix_match(std::string_view domain, std::string_view suffix) {
  if (domain.size() < suffix.size()) return false;
  if (!domain.ends_with(suffix)) return false;
  return domain.size() == suffix.size() ||
         domain[domain.size() - suffix.size() - 1] == '.';
}

}  // namespace

Party PartyRegistry::classify(std::string_view domain,
                              std::string_view vendor) const {
  if (domain.empty()) return Party::kUnknown;
  const Entry* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [suffix, entry] : by_suffix_) {
    if (suffix.size() > best_len && suffix_match(domain, suffix)) {
      best = &entry;
      best_len = suffix.size();
    }
  }
  if (best == nullptr) return Party::kThird;  // "all other entities"
  auto org_it = vendor_org_.find(std::string(vendor));
  if (org_it != vendor_org_.end() && org_it->second == best->organization) {
    return Party::kFirst;
  }
  return best->party;
}

std::string PartyRegistry::organization(std::string_view domain) const {
  const Entry* best = nullptr;
  std::size_t best_len = 0;
  for (const auto& [suffix, entry] : by_suffix_) {
    if (suffix.size() > best_len && suffix_match(domain, suffix)) {
      best = &entry;
      best_len = suffix.size();
    }
  }
  return best == nullptr ? "" : best->organization;
}

PartyRegistry PartyRegistry::standard() {
  PartyRegistry r;
  // Vendor organizations (testbed catalog vendor keys).
  r.add_vendor_alias("amazon", "Amazon");
  r.add_vendor_alias("google", "Google");
  r.add_vendor_alias("apple", "Apple");
  r.add_vendor_alias("tplink", "TP-Link");
  r.add_vendor_alias("tuya", "Tuya");
  r.add_vendor_alias("ring", "Ring");
  r.add_vendor_alias("dlink", "D-Link");
  r.add_vendor_alias("wemo", "Belkin");
  r.add_vendor_alias("philips", "Signify");
  r.add_vendor_alias("samsung", "Samsung");
  r.add_vendor_alias("nest", "Google");
  r.add_vendor_alias("wyze", "Wyze");
  r.add_vendor_alias("meross", "Meross");
  r.add_vendor_alias("govee", "Govee");
  r.add_vendor_alias("switchbot", "SwitchBot");
  r.add_vendor_alias("ikea", "IKEA");
  r.add_vendor_alias("aqara", "Aqara");
  r.add_vendor_alias("wink", "Wink");
  r.add_vendor_alias("smarter", "Smarter");
  r.add_vendor_alias("behmor", "Behmor");
  r.add_vendor_alias("anova", "Anova");
  r.add_vendor_alias("ge", "GE");
  r.add_vendor_alias("lefun", "LeFun");
  r.add_vendor_alias("microseven", "Microseven");
  r.add_vendor_alias("yi", "Yi");
  r.add_vendor_alias("wansview", "Wansview");
  r.add_vendor_alias("ubell", "Ubell");
  r.add_vendor_alias("icsee", "iCSee");
  r.add_vendor_alias("keyco", "Keyco");
  r.add_vendor_alias("thermopro", "ThermoPro");
  r.add_vendor_alias("magichome", "MagicHome");
  r.add_vendor_alias("gosund", "Gosund");
  r.add_vendor_alias("jinvoo", "Jinvoo");
  r.add_vendor_alias("smartlife", "Tuya");  // Smart Life is Tuya's platform

  // Vendor clouds: third party by default, promoted to first for their own
  // devices by the vendor alias above.
  r.add_domain("amazon.com", "Amazon", Party::kThird);
  r.add_domain("alexa.com", "Amazon", Party::kThird);
  r.add_domain("google.com", "Google", Party::kThird);
  r.add_domain("googleapis.com", "Google", Party::kSupport);
  r.add_domain("apple.com", "Apple", Party::kThird);
  r.add_domain("icloud.com", "Apple", Party::kThird);
  r.add_domain("tplinkcloud.com", "TP-Link", Party::kThird);
  r.add_domain("tuyacloud.com", "Tuya", Party::kThird);
  r.add_domain("tuyaus.com", "Tuya", Party::kThird);
  r.add_domain("ring.com", "Ring", Party::kThird);
  r.add_domain("dlink.com", "D-Link", Party::kThird);
  r.add_domain("xbcs.net", "Belkin", Party::kThird);  // Wemo cloud
  r.add_domain("meethue.com", "Signify", Party::kThird);
  r.add_domain("samsungiotcloud.com", "Samsung", Party::kThird);
  r.add_domain("smartthings.com", "Samsung", Party::kThird);
  r.add_domain("nest.com", "Google", Party::kThird);
  r.add_domain("wyze.com", "Wyze", Party::kThird);
  r.add_domain("meross.com", "Meross", Party::kThird);
  r.add_domain("govee.com", "Govee", Party::kThird);
  r.add_domain("switch-bot.com", "SwitchBot", Party::kThird);
  r.add_domain("ikea.net", "IKEA", Party::kThird);
  r.add_domain("aqara.cn", "Aqara", Party::kThird);
  r.add_domain("wink.com", "Wink", Party::kThird);
  r.add_domain("mysmarter.com", "Smarter", Party::kThird);
  r.add_domain("behmor.com", "Behmor", Party::kThird);
  r.add_domain("anovaculinary.com", "Anova", Party::kThird);
  r.add_domain("geappliances.com", "GE", Party::kThird);
  r.add_domain("lefuncam.net", "LeFun", Party::kThird);
  r.add_domain("microseven.com", "Microseven", Party::kThird);
  r.add_domain("yitechnology.com", "Yi", Party::kThird);
  r.add_domain("wansview.net", "Wansview", Party::kThird);
  r.add_domain("ubell.io", "Ubell", Party::kThird);
  r.add_domain("icsee.net", "iCSee", Party::kThird);
  r.add_domain("keyco.io", "Keyco", Party::kThird);
  r.add_domain("thermopro.io", "ThermoPro", Party::kThird);
  r.add_domain("magichomecloud.com", "MagicHome", Party::kThird);
  r.add_domain("gosund.net", "Gosund", Party::kThird);
  r.add_domain("jinvoo.com", "Jinvoo", Party::kThird);

  // Support parties: cloud and CDN infrastructure.
  r.add_domain("amazonaws.com", "AWS", Party::kSupport);
  r.add_domain("cloudfront.net", "AWS", Party::kSupport);
  r.add_domain("akamai.net", "Akamai", Party::kSupport);
  r.add_domain("akamaiedge.net", "Akamai", Party::kSupport);
  r.add_domain("azure.com", "Microsoft", Party::kSupport);
  r.add_domain("azurewebsites.net", "Microsoft", Party::kSupport);
  r.add_domain("fastly.net", "Fastly", Party::kSupport);
  r.add_domain("cloudflare.com", "Cloudflare", Party::kSupport);

  // Third parties: public resolvers, NTP pools, trackers, ads.
  r.add_domain("dns.google", "Google Public DNS", Party::kThird);
  r.add_domain("pool.ntp.org", "NTP Pool", Party::kThird);
  r.add_domain("time.google.com", "Google NTP", Party::kThird);
  r.add_domain("time.apple.com", "Apple NTP", Party::kThird);
  r.add_domain("time.windows.com", "Microsoft NTP", Party::kThird);
  r.add_domain("nist.gov", "NIST", Party::kThird);
  r.add_domain("crashlytics.com", "Crashlytics", Party::kThird);
  r.add_domain("adservice.net", "AdService", Party::kThird);
  r.add_domain("tracker.io", "Tracker.io", Party::kThird);
  r.add_domain("mixpanel.com", "Mixpanel", Party::kThird);
  r.add_domain("doubleclick.net", "Google Ads", Party::kThird);

  // Local network infrastructure (the testbed's own services).
  r.add_domain("neu.edu", "Northeastern", Party::kSupport);
  r.add_domain("lab.local", "Testbed", Party::kSupport);
  return r;
}

}  // namespace behaviot
