#include "behaviot/ml/user_action_model.hpp"

#include <algorithm>

#include "behaviot/obs/health.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/obs/span.hpp"
#include "behaviot/runtime/runtime.hpp"

namespace behaviot {

UserActionModels UserActionModels::from_classifiers(
    ClassifierMap classifiers, double decision_threshold) {
  UserActionModels models;
  models.classifiers_ = std::move(classifiers);
  models.decision_threshold_ = decision_threshold;
  return models;
}

UserActionModels UserActionModels::train(
    std::span<const FlowRecord> labeled, std::span<const FlowRecord> background,
    const UserActionTrainOptions& options) {
  obs::StageSpan span("ml.user_actions_train");
  obs::health().heartbeat("ml.user_actions");
  UserActionModels models;
  models.decision_threshold_ = options.decision_threshold;

  // Collect per-device positives by activity and the shared negative pool
  // (other activities of the same device + idle background of the device).
  // A flow whose feature extraction throws is skipped (counted); one with
  // non-finite features is repaired at this boundary so nothing non-finite
  // reaches a forest split. Both repairs are disclosed below.
  std::map<DeviceId, std::map<std::string, std::vector<FeatureVector>>>
      positives;
  std::map<DeviceId, std::vector<FeatureVector>> device_background;
  std::size_t flows_skipped = 0;
  std::size_t sanitized_cells = 0;

  const auto features_of =
      [&](const FlowRecord& f) -> std::optional<FeatureVector> {
    try {
      FeatureVector row = extract_features(f);
      sanitized_cells += sanitize_features(row);
      return row;
    } catch (const std::exception&) {
      ++flows_skipped;
      return std::nullopt;
    }
  };
  for (const FlowRecord& f : labeled) {
    const auto row = features_of(f);
    if (!row) continue;
    if (f.truth == EventKind::kUser && !f.truth_label.empty()) {
      positives[f.device][f.truth_label].push_back(*row);
    } else {
      device_background[f.device].push_back(*row);
    }
  }
  for (const FlowRecord& f : background) {
    const auto row = features_of(f);
    if (row) device_background[f.device].push_back(*row);
  }
  if (flows_skipped > 0) {
    obs::health().degrade(
        "ml.user_actions",
        "training-flows-skipped:" + std::to_string(flows_skipped));
    obs::counter("ml.training_flows_skipped").add(flows_skipped);
  }
  if (sanitized_cells > 0) {
    obs::health().degrade(
        "ml.user_actions",
        "features-sanitized:" + std::to_string(sanitized_cells));
    obs::counter("ml.features_sanitized").add(sanitized_cells);
  }

  // One forest per (device, activity); forests are independent, so they
  // train data-parallel. Stream ids are assigned in the deterministic map
  // iteration order *before* the fan-out, so every forest draws the same RNG
  // stream — and therefore the same negatives and trees — at any thread
  // count. (Each forest's own per-tree loop also runs parallel when this
  // outer level is serial; nested calls degrade to inline execution.)
  struct ForestTask {
    DeviceId device = kUnknownDevice;
    const std::string* activity = nullptr;
    const std::vector<FeatureVector>* pos_rows = nullptr;
    const std::map<std::string, std::vector<FeatureVector>>* by_activity =
        nullptr;
    std::uint64_t stream = 0;
  };
  std::vector<ForestTask> tasks;
  std::uint64_t stream = 0;
  for (auto& [device, by_activity] : positives) {
    for (auto& [activity, pos_rows] : by_activity) {
      tasks.push_back({device, &activity, &pos_rows, &by_activity, stream++});
    }
  }

  const Rng rng(options.seed);
  // Error-isolating: a classifier that fails to train is quarantined (the
  // device keeps its other activities), never aborts the whole stage.
  auto forests = runtime::parallel_try_map(
      tasks, [&](const ForestTask& task) -> RandomForest {
        const std::string& activity = *task.activity;
        const auto& pos_rows = *task.pos_rows;
        Dataset data;
        for (const auto& row : pos_rows) {
          data.add(std::vector<double>(row.begin(), row.end()), 1);
        }
        // Negatives: flows of *other* activities of this device...
        std::vector<const FeatureVector*> neg_pool;
        for (const auto& [other, rows] : *task.by_activity) {
          if (other == activity) continue;
          for (const auto& r : rows) neg_pool.push_back(&r);
        }
        // ...plus idle/background flows of this device.
        if (auto it = device_background.find(task.device);
            it != device_background.end()) {
          for (const auto& r : it->second) neg_pool.push_back(&r);
        }
        Rng local = rng.fork(task.stream);
        const std::size_t max_neg =
            options.max_negatives_per_positive *
            std::max<std::size_t>(pos_rows.size(), 1);
        if (neg_pool.size() > max_neg) {
          local.shuffle(neg_pool);
          neg_pool.resize(max_neg);
        }
        data.X.reserve(data.size() + neg_pool.size());
        data.y.reserve(data.size() + neg_pool.size());
        for (const FeatureVector* r : neg_pool) {
          data.add(std::vector<double>(r->begin(), r->end()), 0);
        }

        ForestOptions forest_options = options.forest;
        forest_options.seed =
            options.seed ^ ((task.stream + 1) * 0x9e3779b97f4a7c15ULL);
        RandomForest forest(forest_options);
        sanitize(data);  // negatives may carry repairs the pool missed
        forest.fit(data, /*num_classes=*/2);
        return forest;
      });
  std::size_t trained = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!forests[i].ok()) {
      obs::health().quarantine(
          "ml.user_actions",
          std::to_string(tasks[i].device) + ":" + *tasks[i].activity,
          forests[i].error);
      continue;
    }
    models.classifiers_[tasks[i].device].push_back(
        {*tasks[i].activity, std::move(*forests[i])});
    ++trained;
  }
  obs::counter("ml.user_action_models").add(trained);
  return models;
}

UserActionPrediction UserActionModels::classify(const FlowRecord& flow) const {
  UserActionPrediction best;
  auto it = classifiers_.find(flow.device);
  if (it == classifiers_.end()) return best;

  FeatureVector features = extract_features(flow);
  sanitize_features(features);  // never hand a forest a NaN/Inf split input
  const std::vector<double> row(features.begin(), features.end());
  for (const BinaryClassifier& clf : it->second) {
    const double p = clf.forest.predict_proba(row)[1];
    if (p < decision_threshold_) continue;
    if (p > best.confidence) {
      best.runner_up = best.activity;
      best.runner_up_confidence = best.confidence;
      best.activity = clf.activity;
      best.confidence = p;
    } else if (p > best.runner_up_confidence) {
      best.runner_up = clf.activity;
      best.runner_up_confidence = p;
    }
  }
  return best;
}

std::vector<std::string> UserActionModels::activities_for(
    DeviceId device) const {
  std::vector<std::string> out;
  if (auto it = classifiers_.find(device); it != classifiers_.end()) {
    for (const auto& clf : it->second) out.push_back(clf.activity);
  }
  return out;
}

}  // namespace behaviot
