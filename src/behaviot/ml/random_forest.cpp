#include "behaviot/ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

namespace behaviot {

RandomForest::RandomForest(ForestOptions options) : options_(options) {}

void RandomForest::fit(const Dataset& data, int num_classes) {
  num_classes_ = num_classes;
  trees_.clear();
  if (data.size() == 0) return;

  TreeOptions tree_options = options_.tree;
  tree_options.max_features =
      options_.max_features != 0
          ? options_.max_features
          : static_cast<std::size_t>(
                std::max(1.0, std::floor(std::sqrt(
                                  static_cast<double>(data.num_features())))));

  Rng root(options_.seed);
  trees_.reserve(options_.num_trees);
  for (std::size_t t = 0; t < options_.num_trees; ++t) {
    Rng tree_rng = root.fork(t);
    const auto sample = bootstrap_indices(data.size(), tree_rng);
    DecisionTree tree(tree_options);
    tree.fit(data.X, data.y, sample, num_classes, tree_rng);
    trees_.push_back(std::move(tree));
  }
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> row) const {
  std::vector<double> acc(static_cast<std::size_t>(num_classes_), 0.0);
  if (trees_.empty()) return acc;
  for (const DecisionTree& tree : trees_) {
    const auto p = tree.predict_proba(row);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  for (double& v : acc) v /= static_cast<double>(trees_.size());
  return acc;
}

int RandomForest::predict(std::span<const double> row) const {
  const auto proba = predict_proba(row);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace behaviot
