#include "behaviot/ml/random_forest.hpp"

#include <algorithm>
#include <cmath>

#include "behaviot/obs/metrics.hpp"
#include "behaviot/runtime/runtime.hpp"

namespace behaviot {

RandomForest::RandomForest(ForestOptions options) : options_(options) {}

RandomForest RandomForest::from_trees(int num_classes,
                                      std::vector<DecisionTree> trees) {
  RandomForest forest;
  forest.num_classes_ = num_classes;
  forest.trees_ = std::move(trees);
  return forest;
}

void RandomForest::fit(const Dataset& data, int num_classes) {
  num_classes_ = num_classes;
  trees_.clear();
  if (data.size() == 0) return;

  TreeOptions tree_options = options_.tree;
  tree_options.max_features =
      options_.max_features != 0
          ? options_.max_features
          : static_cast<std::size_t>(
                std::max(1.0, std::floor(std::sqrt(
                                  static_cast<double>(data.num_features())))));

  // Trees train data-parallel: each tree draws from its own forked RNG
  // stream keyed by the tree index, so the forest is bit-identical at any
  // thread count (and identical to the former sequential loop).
  const Rng root(options_.seed);
  std::vector<DecisionTree> trees(options_.num_trees,
                                  DecisionTree(tree_options));
  runtime::parallel_for(0, options_.num_trees, [&](std::size_t t) {
    Rng tree_rng = root.fork(t);
    const auto sample = bootstrap_indices(data.size(), tree_rng);
    trees[t].fit(data.X, data.y, sample, num_classes, tree_rng);
  });
  trees_ = std::move(trees);

  static auto& forests_fit = obs::counter("ml.forests_fit");
  static auto& trees_fit = obs::counter("ml.trees_fit");
  forests_fit.inc();
  trees_fit.add(trees_.size());
}

std::vector<double> RandomForest::predict_proba(
    std::span<const double> row) const {
  std::vector<double> acc(static_cast<std::size_t>(num_classes_), 0.0);
  if (trees_.empty()) return acc;
  for (const DecisionTree& tree : trees_) {
    const auto p = tree.predict_proba(row);
    for (std::size_t c = 0; c < acc.size(); ++c) acc[c] += p[c];
  }
  for (double& v : acc) v /= static_cast<double>(trees_.size());
  return acc;
}

int RandomForest::predict(std::span<const double> row) const {
  const auto proba = predict_proba(row);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace behaviot
