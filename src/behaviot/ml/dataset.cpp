#include "behaviot/ml/dataset.hpp"

#include <algorithm>
#include <map>

#include "behaviot/flow/features.hpp"

namespace behaviot {

std::size_t sanitize(Dataset& ds) {
  std::size_t replaced = 0;
  for (auto& row : ds.X) replaced += sanitize_features(row);
  return replaced;
}

std::vector<std::vector<std::size_t>> stratified_kfold(
    std::span<const int> labels, std::size_t k, std::uint64_t seed) {
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i)
    by_class[labels[i]].push_back(i);

  Rng rng(seed);
  std::vector<std::vector<std::size_t>> folds(k);
  for (auto& fold : folds) fold.reserve(labels.size() / k + by_class.size());
  for (auto& [label, indices] : by_class) {
    rng.shuffle(indices);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      folds[i % k].push_back(indices[i]);
    }
  }
  for (auto& fold : folds) std::sort(fold.begin(), fold.end());
  return folds;
}

TrainTestSplit stratified_split(std::span<const int> labels,
                                double test_fraction, std::uint64_t seed) {
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i)
    by_class[labels[i]].push_back(i);

  Rng rng(seed);
  TrainTestSplit split;
  split.train.reserve(labels.size());
  split.test.reserve(
      static_cast<std::size_t>(static_cast<double>(labels.size()) *
                               test_fraction) +
      by_class.size());
  for (auto& [label, indices] : by_class) {
    rng.shuffle(indices);
    // At least one test sample per class when the class has >1 members.
    auto n_test = static_cast<std::size_t>(
        static_cast<double>(indices.size()) * test_fraction);
    if (n_test == 0 && indices.size() > 1) n_test = 1;
    for (std::size_t i = 0; i < indices.size(); ++i) {
      (i < n_test ? split.test : split.train).push_back(indices[i]);
    }
  }
  std::sort(split.train.begin(), split.train.end());
  std::sort(split.test.begin(), split.test.end());
  return split;
}

std::vector<std::size_t> bootstrap_indices(std::size_t n, Rng& rng) {
  std::vector<std::size_t> out(n);
  for (auto& idx : out) idx = rng.uniform_index(n);
  return out;
}

}  // namespace behaviot
