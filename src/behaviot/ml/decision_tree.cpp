#include "behaviot/ml/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace behaviot {
namespace {

double gini(std::span<const std::size_t> counts, std::size_t total) {
  if (total == 0) return 0.0;
  double sum_sq = 0.0;
  for (std::size_t c : counts) {
    const double p = static_cast<double>(c) / static_cast<double>(total);
    sum_sq += p * p;
  }
  return 1.0 - sum_sq;
}

}  // namespace

DecisionTree::DecisionTree(TreeOptions options) : options_(options) {}

DecisionTree DecisionTree::from_nodes(int num_classes,
                                      std::vector<Node> nodes) {
  DecisionTree tree;
  tree.num_classes_ = num_classes;
  tree.nodes_ = std::move(nodes);
  return tree;
}

void DecisionTree::fit(std::span<const std::vector<double>> X,
                       std::span<const int> y,
                       std::span<const std::size_t> sample, int num_classes,
                       Rng& rng) {
  num_classes_ = num_classes;
  nodes_.clear();
  if (sample.empty()) return;
  std::vector<std::size_t> indices(sample.begin(), sample.end());
  build(X, y, indices, 0, indices.size(), 0, rng);
}

int DecisionTree::build(std::span<const std::vector<double>> X,
                        std::span<const int> y,
                        std::vector<std::size_t>& indices, std::size_t begin,
                        std::size_t end, std::size_t depth, Rng& rng) {
  const std::size_t n = end - begin;
  std::vector<std::size_t> counts(static_cast<std::size_t>(num_classes_), 0);
  for (std::size_t i = begin; i < end; ++i) ++counts[static_cast<std::size_t>(y[indices[i]])];

  const double node_gini = gini(counts, n);
  const bool pure = node_gini <= 1e-12;

  auto make_leaf = [&]() {
    Node leaf;
    leaf.distribution.resize(static_cast<std::size_t>(num_classes_));
    for (std::size_t c = 0; c < leaf.distribution.size(); ++c) {
      leaf.distribution[c] =
          static_cast<double>(counts[c]) / static_cast<double>(n);
    }
    nodes_.push_back(std::move(leaf));
    return static_cast<int>(nodes_.size() - 1);
  };

  if (pure || depth >= options_.max_depth || n < options_.min_samples_split) {
    return make_leaf();
  }

  const std::size_t num_features = X.front().size();
  std::vector<std::size_t> feature_order(num_features);
  std::iota(feature_order.begin(), feature_order.end(), 0);
  std::size_t features_to_try = options_.max_features == 0
                                    ? num_features
                                    : std::min(options_.max_features,
                                               num_features);
  if (features_to_try < num_features) rng.shuffle(feature_order);

  // Best split search: sort node samples per candidate feature and scan
  // boundaries, maintaining left/right class counts incrementally. Zero-gain
  // splits are kept as a fallback: problems like XOR have no first split
  // with immediate Gini improvement, yet splitting still enables pure
  // children one level down (max_depth bounds the recursion).
  int best_feature = -1;
  double best_threshold = 0.0;
  double best_gini = node_gini;
  int fallback_feature = -1;
  double fallback_threshold = 0.0;
  std::vector<std::size_t> node_samples(indices.begin() + static_cast<long>(begin),
                                        indices.begin() + static_cast<long>(end));

  for (std::size_t fi = 0; fi < features_to_try; ++fi) {
    const std::size_t f = feature_order[fi];
    std::sort(node_samples.begin(), node_samples.end(),
              [&X, f](std::size_t a, std::size_t b) { return X[a][f] < X[b][f]; });
    std::vector<std::size_t> left_counts(static_cast<std::size_t>(num_classes_), 0);
    std::vector<std::size_t> right_counts = counts;

    for (std::size_t i = 0; i + 1 < n; ++i) {
      const auto cls = static_cast<std::size_t>(y[node_samples[i]]);
      ++left_counts[cls];
      --right_counts[cls];
      const double v = X[node_samples[i]][f];
      const double v_next = X[node_samples[i + 1]][f];
      if (v_next <= v) continue;  // not a boundary
      const std::size_t n_left = i + 1;
      const std::size_t n_right = n - n_left;
      if (n_left < options_.min_samples_leaf ||
          n_right < options_.min_samples_leaf) {
        continue;
      }
      const double weighted =
          (static_cast<double>(n_left) * gini(left_counts, n_left) +
           static_cast<double>(n_right) * gini(right_counts, n_right)) /
          static_cast<double>(n);
      if (weighted + 1e-12 < best_gini) {
        best_gini = weighted;
        best_feature = static_cast<int>(f);
        best_threshold = (v + v_next) / 2.0;
      } else if (fallback_feature < 0 && weighted <= node_gini + 1e-12) {
        fallback_feature = static_cast<int>(f);
        fallback_threshold = (v + v_next) / 2.0;
      }
    }
  }

  if (best_feature < 0) {
    best_feature = fallback_feature;
    best_threshold = fallback_threshold;
  }
  if (best_feature < 0) return make_leaf();

  // Partition [begin, end) by the chosen split.
  auto mid_it = std::stable_partition(
      indices.begin() + static_cast<long>(begin),
      indices.begin() + static_cast<long>(end),
      [&X, best_feature, best_threshold](std::size_t i) {
        return X[i][static_cast<std::size_t>(best_feature)] <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_it - indices.begin());
  if (mid == begin || mid == end) return make_leaf();  // degenerate

  // Reserve this node's slot before recursing so children land after it.
  nodes_.emplace_back();
  const auto self = static_cast<int>(nodes_.size() - 1);
  const int left = build(X, y, indices, begin, mid, depth + 1, rng);
  const int right = build(X, y, indices, mid, end, depth + 1, rng);
  nodes_[static_cast<std::size_t>(self)].feature = best_feature;
  nodes_[static_cast<std::size_t>(self)].threshold = best_threshold;
  nodes_[static_cast<std::size_t>(self)].left = left;
  nodes_[static_cast<std::size_t>(self)].right = right;
  return self;
}

std::vector<double> DecisionTree::predict_proba(
    std::span<const double> row) const {
  if (nodes_.empty()) {
    return std::vector<double>(static_cast<std::size_t>(num_classes_), 0.0);
  }
  std::size_t node = 0;
  while (nodes_[node].feature >= 0) {
    const Node& nd = nodes_[node];
    node = static_cast<std::size_t>(
        row[static_cast<std::size_t>(nd.feature)] <= nd.threshold ? nd.left
                                                                  : nd.right);
  }
  return nodes_[node].distribution;
}

int DecisionTree::predict(std::span<const double> row) const {
  const auto proba = predict_proba(row);
  return static_cast<int>(
      std::max_element(proba.begin(), proba.end()) - proba.begin());
}

}  // namespace behaviot
