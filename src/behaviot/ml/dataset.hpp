// Tabular dataset container and resampling utilities for the user-action
// classifiers (Appendix B).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "behaviot/net/rng.hpp"

namespace behaviot {

/// Dense feature matrix with integer class labels.
struct Dataset {
  std::vector<std::vector<double>> X;
  std::vector<int> y;

  [[nodiscard]] std::size_t size() const { return X.size(); }
  [[nodiscard]] std::size_t num_features() const {
    return X.empty() ? 0 : X.front().size();
  }
  void add(std::vector<double> row, int label) {
    X.push_back(std::move(row));
    y.push_back(label);
  }
};

/// Repairs non-finite cells across the whole matrix (NaN → 0, ±Inf clamped;
/// see flow/features.hpp sanitize_features). This is the boundary every
/// learner input crosses: corrupted features may flow in, but nothing
/// non-finite reaches a forest split or a distance computation. Returns the
/// number of cells rewritten; callers disclose non-zero counts to
/// obs::health() as "features-sanitized:<n>".
std::size_t sanitize(Dataset& ds);

/// Index lists for stratified k-fold cross validation: every fold preserves
/// the class proportions of `labels`. Deterministic given the seed.
std::vector<std::vector<std::size_t>> stratified_kfold(
    std::span<const int> labels, std::size_t k, std::uint64_t seed);

/// Splits indices into train/test with the given test fraction, stratified.
struct TrainTestSplit {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};
TrainTestSplit stratified_split(std::span<const int> labels,
                                double test_fraction, std::uint64_t seed);

/// Bootstrap sample of n indices drawn from [0, n) with replacement.
std::vector<std::size_t> bootstrap_indices(std::size_t n, Rng& rng);

}  // namespace behaviot
