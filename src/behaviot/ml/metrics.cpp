#include "behaviot/ml/metrics.hpp"

namespace behaviot {

double BinaryCounts::accuracy() const {
  const std::size_t n = total();
  if (n == 0) return 0.0;
  return static_cast<double>(true_positive + true_negative) /
         static_cast<double>(n);
}

double BinaryCounts::false_negative_rate() const {
  const std::size_t positives = false_negative + true_positive;
  if (positives == 0) return 0.0;
  return static_cast<double>(false_negative) / static_cast<double>(positives);
}

double BinaryCounts::false_positive_rate() const {
  const std::size_t negatives = false_positive + true_negative;
  if (negatives == 0) return 0.0;
  return static_cast<double>(false_positive) / static_cast<double>(negatives);
}

double multiclass_accuracy(std::span<const std::string> truth,
                           std::span<const std::string> predicted) {
  if (truth.empty() || truth.size() != predicted.size()) return 0.0;
  std::size_t hits = 0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    if (truth[i] == predicted[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

std::map<std::pair<std::string, std::string>, std::size_t> confusion(
    std::span<const std::string> truth,
    std::span<const std::string> predicted) {
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  for (std::size_t i = 0; i < truth.size() && i < predicted.size(); ++i) {
    ++counts[{truth[i], predicted[i]}];
  }
  return counts;
}

}  // namespace behaviot
