// Bagged Random Forest [18] — the user-action model learner. Chosen by the
// paper for being lightweight enough to run on a home router and accurate
// with limited training samples.
#pragma once

#include <span>
#include <vector>

#include "behaviot/ml/dataset.hpp"
#include "behaviot/ml/decision_tree.hpp"

namespace behaviot {

struct ForestOptions {
  std::size_t num_trees = 30;
  TreeOptions tree;
  /// Features per split; 0 = floor(sqrt(d)), the usual forest default.
  std::size_t max_features = 0;
  std::uint64_t seed = 42;
};

class RandomForest {
 public:
  explicit RandomForest(ForestOptions options = {});

  /// Fits `num_trees` trees on bootstrap resamples of the dataset.
  void fit(const Dataset& data, int num_classes);

  /// Mean class-probability vector across trees.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const;

  [[nodiscard]] int predict(std::span<const double> row) const;

  [[nodiscard]] std::size_t num_trees() const { return trees_.size(); }
  [[nodiscard]] int num_classes() const { return num_classes_; }

  /// Fitted trees, in training order — the serialized representation.
  [[nodiscard]] const std::vector<DecisionTree>& trees() const {
    return trees_;
  }

  /// Rebuilds a fitted forest from serialized trees (deserialization).
  [[nodiscard]] static RandomForest from_trees(int num_classes,
                                               std::vector<DecisionTree> trees);

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
  int num_classes_ = 0;
};

}  // namespace behaviot
