// User-action models (§4.1, Appendix B).
//
// One binary Random Forest per (device, activity). At classification time
// every binary classifier of the flow's device votes; the most confident
// positive wins. No positive vote → the flow is not a user event (it falls
// to the periodic/aperiodic stages).
#pragma once

#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "behaviot/flow/features.hpp"
#include "behaviot/ml/random_forest.hpp"

namespace behaviot {

struct UserActionPrediction {
  std::string activity;  ///< empty when no classifier fired
  double confidence = 0.0;
  /// Runner-up activity and its probability (provenance: how contested the
  /// vote was). Empty/0 when only one classifier fired.
  std::string runner_up;
  double runner_up_confidence = 0.0;

  [[nodiscard]] bool is_user_event() const { return !activity.empty(); }

  /// Winning probability minus the runner-up's: the forest vote margin
  /// reported in alert explanations. Equals `confidence` for uncontested
  /// predictions; 0 when nothing fired.
  [[nodiscard]] double vote_margin() const {
    return confidence - runner_up_confidence;
  }
};

struct UserActionTrainOptions {
  ForestOptions forest{};
  /// Positive-vote threshold for a binary classifier. Above 0.5 to keep the
  /// false-positive rate on the vast background traffic near the paper's
  /// 0.09% — a coin-flip threshold lets rare background shapes leak through.
  double decision_threshold = 0.6;
  /// Cap on background (negative) flows sampled per classifier; generous so
  /// classifiers see the diversity of heartbeat shapes, yet bounded to keep
  /// training balanced.
  std::size_t max_negatives_per_positive = 10;
  std::uint64_t seed = 7;
};

class UserActionModels {
 public:
  /// One (activity, forest) binary classifier, exposed for model
  /// serialization (core/serialize_binary).
  struct BinaryClassifier {
    std::string activity;
    RandomForest forest;
  };
  using ClassifierMap = std::map<DeviceId, std::vector<BinaryClassifier>>;

  UserActionModels() = default;

  /// Trains per-activity binary classifiers. `labeled` must carry
  /// ground-truth user labels in FlowRecord::truth_label; `background`
  /// provides negative examples (idle traffic from the same devices).
  static UserActionModels train(std::span<const FlowRecord> labeled,
                                std::span<const FlowRecord> background,
                                const UserActionTrainOptions& options = {});

  /// Classifies one flow of a known device.
  [[nodiscard]] UserActionPrediction classify(const FlowRecord& flow) const;

  /// Number of trained (device, activity) classifiers.
  [[nodiscard]] std::size_t size() const { return classifiers_.size(); }

  /// Activities known for a device.
  [[nodiscard]] std::vector<std::string> activities_for(DeviceId device) const;

  /// Trained classifiers by device — the serialized representation.
  [[nodiscard]] const ClassifierMap& classifiers() const {
    return classifiers_;
  }
  [[nodiscard]] double decision_threshold() const {
    return decision_threshold_;
  }

  /// Rebuilds a trained model set from serialized classifiers
  /// (deserialization).
  [[nodiscard]] static UserActionModels from_classifiers(
      ClassifierMap classifiers, double decision_threshold);

 private:
  ClassifierMap classifiers_;
  double decision_threshold_ = 0.5;
};

}  // namespace behaviot
