#include "behaviot/ml/unsupervised.hpp"

#include <algorithm>
#include <cmath>

#include "behaviot/net/stats.hpp"

namespace behaviot {

std::vector<double> unsupervised_feature_subset(const FeatureVector& full) {
  static constexpr std::size_t kDims[] = {
      kMeanBytes,          kMinBytes,
      kMaxBytes,           kMedAbsDev,
      kNetworkOutExternal, kNetworkInExternal,
      kNetworkExternal,    kNetworkLocal,
      kMeanBytesOutExternal, kMeanBytesInExternal,
  };
  std::vector<double> out;
  out.reserve(std::size(kDims));
  for (std::size_t d : kDims) out.push_back(full[d]);
  return out;
}

namespace {

std::vector<double> standardize(const std::vector<double>& row,
                                const std::vector<double>& means,
                                const std::vector<double>& scales) {
  std::vector<double> out(row.size());
  for (std::size_t d = 0; d < row.size(); ++d) {
    out[d] = (row[d] - means[d]) / scales[d];
  }
  return out;
}

}  // namespace

UnsupervisedActionModels UnsupervisedActionModels::train(
    std::span<const FlowRecord> candidate_flows,
    const UnsupervisedTrainOptions& options) {
  UnsupervisedActionModels models;

  std::map<DeviceId, std::vector<std::vector<double>>> by_device;
  for (const FlowRecord& f : candidate_flows) {
    by_device[f.device].push_back(
        unsupervised_feature_subset(extract_features(f)));
  }

  for (auto& [device, rows] : by_device) {
    if (rows.size() < options.min_cluster_size) continue;
    const std::size_t dims = rows.front().size();
    DeviceClusters dc;
    dc.eps = options.dbscan.eps;
    dc.means.assign(dims, 0.0);
    dc.scales.assign(dims, 1.0);
    for (std::size_t d = 0; d < dims; ++d) {
      std::vector<double> col;
      col.reserve(rows.size());
      for (const auto& r : rows) col.push_back(r[d]);
      dc.means[d] = stats::mean(col);
      dc.scales[d] = std::max(stats::stddev(col), 1.0);
    }

    std::vector<std::vector<double>> scaled;
    scaled.reserve(rows.size());
    for (const auto& r : rows) {
      scaled.push_back(standardize(r, dc.means, dc.scales));
    }
    const DbscanResult fit = dbscan(scaled, options.dbscan);

    std::vector<std::vector<double>> sums(
        static_cast<std::size_t>(fit.num_clusters),
        std::vector<double>(dims, 0.0));
    std::vector<std::size_t> sizes(static_cast<std::size_t>(fit.num_clusters),
                                   0);
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      if (fit.labels[i] == kDbscanNoise) continue;
      const auto c = static_cast<std::size_t>(fit.labels[i]);
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += scaled[i][d];
      ++sizes[c];
    }
    for (std::size_t c = 0; c < sums.size(); ++c) {
      if (sizes[c] < options.min_cluster_size) continue;
      for (double& v : sums[c]) v /= static_cast<double>(sizes[c]);
      dc.centroids.push_back(std::move(sums[c]));
    }
    if (!dc.centroids.empty()) {
      models.devices_.emplace(device, std::move(dc));
    }
  }
  return models;
}

int UnsupervisedActionModels::nearest_cluster(
    const DeviceClusters& dc, const FeatureVector& features) const {
  const std::vector<double> scaled = standardize(
      unsupervised_feature_subset(features), dc.means, dc.scales);
  int best = -1;
  double best_dist = dc.eps * dc.eps;  // must be within eps of a centroid
  for (std::size_t c = 0; c < dc.centroids.size(); ++c) {
    double dist = 0.0;
    for (std::size_t d = 0; d < scaled.size(); ++d) {
      const double delta = scaled[d] - dc.centroids[c][d];
      dist += delta * delta;
    }
    if (dist <= best_dist) {
      best_dist = dist;
      best = static_cast<int>(c);
    }
  }
  return best;
}

PseudoActivityPrediction UnsupervisedActionModels::classify(
    const FlowRecord& flow) const {
  PseudoActivityPrediction out;
  auto it = devices_.find(flow.device);
  if (it == devices_.end()) return out;
  const int cluster = nearest_cluster(it->second, extract_features(flow));
  if (cluster < 0) return out;
  out.label = std::to_string(flow.device) + "#" + std::to_string(cluster);
  return out;
}

std::size_t UnsupervisedActionModels::num_clusters() const {
  std::size_t n = 0;
  for (const auto& [device, dc] : devices_) n += dc.centroids.size();
  return n;
}

std::vector<std::string> UnsupervisedActionModels::labels_for(
    DeviceId device) const {
  std::vector<std::string> out;
  if (auto it = devices_.find(device); it != devices_.end()) {
    for (std::size_t c = 0; c < it->second.centroids.size(); ++c) {
      out.push_back(std::to_string(device) + "#" + std::to_string(c));
    }
  }
  return out;
}

double UnsupervisedActionModels::purity(
    std::span<const FlowRecord> flows) const {
  std::map<std::string, std::map<std::string, std::size_t>> composition;
  std::size_t assigned = 0;
  for (const FlowRecord& f : flows) {
    const auto prediction = classify(f);
    if (!prediction.matched()) continue;
    ++composition[prediction.label][f.truth_label];
    ++assigned;
  }
  if (assigned == 0) return 0.0;
  std::size_t majority_total = 0;
  for (const auto& [cluster, truth_counts] : composition) {
    std::size_t majority = 0;
    for (const auto& [label, count] : truth_counts) {
      majority = std::max(majority, count);
    }
    majority_total += majority;
  }
  return static_cast<double>(majority_total) / static_cast<double>(assigned);
}

}  // namespace behaviot
