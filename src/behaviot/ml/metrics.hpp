// Classification scoring: accuracy, false-negative rate, false-positive rate
// as defined in §5.1.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <string>

namespace behaviot {

struct BinaryCounts {
  std::size_t true_positive = 0;
  std::size_t true_negative = 0;
  std::size_t false_positive = 0;
  std::size_t false_negative = 0;

  [[nodiscard]] std::size_t total() const {
    return true_positive + true_negative + false_positive + false_negative;
  }
  [[nodiscard]] double accuracy() const;
  /// FN / (FN + TP): user events missed (§5.1 "false negative rate").
  [[nodiscard]] double false_negative_rate() const;
  /// FP / total negatives presented (§5.1 computes FPR over idle events).
  [[nodiscard]] double false_positive_rate() const;
};

/// Multiclass accuracy over parallel label sequences.
double multiclass_accuracy(std::span<const std::string> truth,
                           std::span<const std::string> predicted);

/// Confusion counts keyed by (truth, predicted) label pair.
std::map<std::pair<std::string, std::string>, std::size_t> confusion(
    std::span<const std::string> truth,
    std::span<const std::string> predicted);

}  // namespace behaviot
