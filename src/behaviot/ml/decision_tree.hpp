// CART decision tree (Gini impurity), the base learner of the Random Forest
// user-action models [18].
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "behaviot/net/rng.hpp"

namespace behaviot {

struct TreeOptions {
  std::size_t max_depth = 24;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Features examined per split; 0 means all (single trees), forests pass
  /// ~sqrt(d) for decorrelation.
  std::size_t max_features = 0;
};

class DecisionTree {
 public:
  /// One tree node, exposed for model serialization (core/serialize_binary).
  struct Node {
    int feature = -1;        ///< -1 for leaves
    double threshold = 0.0;  ///< go left when row[feature] <= threshold
    int left = -1;
    int right = -1;
    std::vector<double> distribution;  ///< leaf class probabilities
  };

  explicit DecisionTree(TreeOptions options = {});

  /// Fits on the rows of X selected by `sample`. Labels must lie in
  /// [0, num_classes). `rng` drives feature subsampling.
  void fit(std::span<const std::vector<double>> X, std::span<const int> y,
           std::span<const std::size_t> sample, int num_classes, Rng& rng);

  /// Class-probability vector (size num_classes) for one row.
  [[nodiscard]] std::vector<double> predict_proba(
      std::span<const double> row) const;

  [[nodiscard]] int predict(std::span<const double> row) const;

  [[nodiscard]] std::size_t node_count() const { return nodes_.size(); }
  [[nodiscard]] bool trained() const { return !nodes_.empty(); }

  /// Flat node storage, root at index 0 — the serialized representation.
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }

  /// Rebuilds a fitted tree from serialized nodes (deserialization). Child
  /// indices must be -1 or in [0, nodes.size()); callers deserializing
  /// untrusted input validate that before constructing.
  [[nodiscard]] static DecisionTree from_nodes(int num_classes,
                                               std::vector<Node> nodes);

 private:
  int build(std::span<const std::vector<double>> X, std::span<const int> y,
            std::vector<std::size_t>& indices, std::size_t begin,
            std::size_t end, std::size_t depth, Rng& rng);

  TreeOptions options_;
  int num_classes_ = 0;
  std::vector<Node> nodes_;
};

}  // namespace behaviot
