// Unsupervised user-action models (§7.3 "Ground-truth limitations").
//
// When labeled interactions are unavailable, incomplete, or stale (e.g.
// after a firmware update), the paper proposes building user-action models
// with unsupervised clustering instead of supervised forests. This module
// implements that extension: non-periodic flows from an observation window
// are clustered per device (DBSCAN over standardized Table-8 features), and
// each cluster becomes a pseudo-activity. Downstream consumers (PFSM, the
// deviation metrics) operate on pseudo-labels exactly as on real labels.
#pragma once

#include <map>
#include <span>
#include <string>
#include <vector>

#include "behaviot/flow/features.hpp"
#include "behaviot/periodic/dbscan.hpp"
#include "behaviot/periodic/periodic_model.hpp"

namespace behaviot {

struct UnsupervisedTrainOptions {
  DbscanOptions dbscan{.eps = 2.0, .min_points = 4};
  /// Clusters smaller than this are discarded as noise artifacts.
  std::size_t min_cluster_size = 4;
};

/// Feature subset used for unsupervised clustering: the packet-size and
/// directional-count dimensions. Inter-packet-timing features are excluded —
/// they vary run-to-run with scheduling noise and would smear otherwise
/// tight activity clusters (size patterns are what distinguishes activities
/// in encrypted traffic, per the paper's §6.1 observations).
std::vector<double> unsupervised_feature_subset(const FeatureVector& full);

struct PseudoActivityPrediction {
  std::string label;  ///< "<device-id>#<cluster>" or "" when unmatched
  [[nodiscard]] bool matched() const { return !label.empty(); }
};

class UnsupervisedActionModels {
 public:
  UnsupervisedActionModels() = default;

  /// Clusters candidate event flows (typically: flows a PeriodicModelSet
  /// did not claim) into per-device pseudo-activities.
  static UnsupervisedActionModels train(
      std::span<const FlowRecord> candidate_flows,
      const UnsupervisedTrainOptions& options = {});

  /// Assigns a flow to its pseudo-activity, or "" when it is not density-
  /// reachable from any learned cluster.
  [[nodiscard]] PseudoActivityPrediction classify(const FlowRecord& flow) const;

  /// Number of pseudo-activities across all devices.
  [[nodiscard]] std::size_t num_clusters() const;
  [[nodiscard]] std::vector<std::string> labels_for(DeviceId device) const;

  /// Cluster purity against ground-truth labels (evaluation aid): for each
  /// cluster, the fraction of member flows sharing the cluster's majority
  /// truth label, weighted by cluster size. 1.0 = every cluster maps to one
  /// real activity.
  [[nodiscard]] double purity(std::span<const FlowRecord> flows) const;

 private:
  struct DeviceClusters {
    /// Per-dimension standardization over the reduced feature subset.
    std::vector<double> means;
    std::vector<double> scales;
    /// Centroid per cluster, in standardized space.
    std::vector<std::vector<double>> centroids;
    double eps = 2.0;
  };
  [[nodiscard]] int nearest_cluster(const DeviceClusters& dc,
                                    const FeatureVector& features) const;
  std::map<DeviceId, DeviceClusters> devices_;
};

}  // namespace behaviot
