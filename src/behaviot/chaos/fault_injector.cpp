#include "behaviot/chaos/fault_injector.hpp"

#include <algorithm>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "behaviot/ml/dataset.hpp"
#include "behaviot/net/rng.hpp"
#include "behaviot/obs/crash_point.hpp"
#include "behaviot/obs/health.hpp"
#include "behaviot/obs/metrics.hpp"
#include "behaviot/testbed/traffic_gen.hpp"

namespace behaviot::chaos {

namespace {

/// The single armed injector the feature-chaos trampoline dispatches to.
std::atomic<FaultInjector*> g_armed{nullptr};
/// Ditto for the crash-point hook (armed independently: a spec can carry
/// crash= without any feature faults).
std::atomic<FaultInjector*> g_crash_armed{nullptr};

double parse_probability(std::string_view key, std::string_view text) {
  std::string buf(text);
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end == buf.c_str() || *end != '\0' || !std::isfinite(v)) {
    throw std::invalid_argument("chaos: bad value for '" + std::string(key) +
                                "': '" + buf + "'");
  }
  return v;
}

/// SplitMix64 over the flow's identity: device, canonical tuple, start time.
/// Call-order independent by construction — the same flow hashes the same
/// whether features are extracted serially or from any pool worker.
std::uint64_t flow_content_hash(const FlowRecord& flow, std::uint64_t seed,
                                std::uint64_t stream) {
  SplitMix64 mix(seed ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  std::uint64_t h = mix.next();
  auto fold = [&h](std::uint64_t v) {
    SplitMix64 m(h ^ v);
    h = m.next();
  };
  fold(flow.device);
  fold(flow.tuple.src.ip.value());
  fold(flow.tuple.src.port);
  fold(flow.tuple.dst.ip.value());
  fold(flow.tuple.dst.port);
  fold(static_cast<std::uint64_t>(flow.tuple.proto));
  fold(static_cast<std::uint64_t>(flow.start.micros()));
  return h;
}

/// Bernoulli(p) decided by a hash: uniform in [0,1) from the top 53 bits.
bool hash_chance(std::uint64_t h, double p) {
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p;
}

bool is_dns_response(const Packet& p) {
  return p.tuple.proto == Transport::kUdp && p.tuple.dst.port == 53 &&
         p.dir == Direction::kInbound && !p.payload.empty();
}

}  // namespace

FaultSpec FaultSpec::parse(std::string_view spec) {
  FaultSpec out;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string_view::npos) comma = spec.size();
    std::string_view item = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (item.empty()) continue;
    std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      throw std::invalid_argument("chaos: expected name=value, got '" +
                                  std::string(item) + "'");
    }
    std::string_view key = item.substr(0, eq);
    std::string_view value = item.substr(eq + 1);
    if (key == "seed") {
      out.seed = static_cast<std::uint64_t>(
          std::llround(parse_probability(key, value)));
      continue;
    }
    if (key == "crash") {
      if (value.empty()) {
        throw std::invalid_argument("chaos: 'crash' needs a crash-point name");
      }
      out.crash = std::string(value);
      continue;
    }
    if (key == "crashn") {
      const double n = parse_probability(key, value);
      if (n < 1.0 || n != std::floor(n)) {
        throw std::invalid_argument(
            "chaos: 'crashn' must be a positive integer");
      }
      out.crash_after = static_cast<std::uint64_t>(n);
      continue;
    }
    double v = parse_probability(key, value);
    if (key == "skew") {
      out.skew_ppm = v;
      continue;
    }
    double* field = nullptr;
    if (key == "drop") field = &out.drop;
    else if (key == "dup") field = &out.dup;
    else if (key == "reorder") field = &out.reorder;
    else if (key == "regress") field = &out.regress;
    else if (key == "dnsloss") field = &out.dns_loss;
    else if (key == "flap") field = &out.flap;
    else if (key == "truncate") field = &out.truncate;
    else if (key == "nan") field = &out.nan;
    else if (key == "inf") field = &out.inf;
    else if (key == "throw") field = &out.throw_p;
    if (field == nullptr) {
      throw std::invalid_argument(
          "chaos: unknown fault '" + std::string(key) +
          "' (valid: drop dup reorder regress dnsloss flap truncate nan inf "
          "throw skew seed crash crashn)");
    }
    if (v < 0.0 || v > 1.0) {
      throw std::invalid_argument("chaos: probability for '" +
                                  std::string(key) + "' outside [0,1]");
    }
    *field = v;
  }
  return out;
}

bool FaultSpec::any_packet_faults() const {
  return drop > 0 || dup > 0 || reorder > 0 || regress > 0 || dns_loss > 0 ||
         flap > 0 || truncate > 0 || skew_ppm != 0.0;
}

bool FaultSpec::any_feature_faults() const {
  return nan > 0 || inf > 0 || throw_p > 0;
}

std::string FaultSpec::summary() const {
  std::ostringstream os;
  auto emit = [&os](const char* name, double v) {
    if (v != 0.0) os << (os.tellp() > 0 ? " " : "") << name << "=" << v;
  };
  emit("drop", drop);
  emit("dup", dup);
  emit("reorder", reorder);
  emit("regress", regress);
  emit("dnsloss", dns_loss);
  emit("flap", flap);
  emit("truncate", truncate);
  emit("nan", nan);
  emit("inf", inf);
  emit("throw", throw_p);
  emit("skew", skew_ppm);
  if (!crash.empty()) {
    os << (os.tellp() > 0 ? " " : "") << "crash=" << crash;
    if (crash_after != 1) os << " crashn=" << crash_after;
  }
  os << (os.tellp() > 0 ? " " : "") << "seed=" << seed;
  return os.str();
}

std::uint64_t FaultStats::total() const {
  return packets_dropped.load() + packets_duplicated.load() +
         packets_reordered.load() + timestamps_regressed.load() +
         timestamps_skewed.load() + dns_answers_dropped.load() +
         devices_flapped.load() + payloads_truncated.load() +
         features_nan.load() + features_inf.load() + faults_thrown.load();
}

void FaultStats::publish() const {
  auto mirror = [](const char* name, std::uint64_t v) {
    if (v > 0) obs::counter(name).add(v);
  };
  mirror("chaos.packets_dropped", packets_dropped.load());
  mirror("chaos.packets_duplicated", packets_duplicated.load());
  mirror("chaos.packets_reordered", packets_reordered.load());
  mirror("chaos.timestamps_regressed", timestamps_regressed.load());
  mirror("chaos.timestamps_skewed", timestamps_skewed.load());
  mirror("chaos.dns_answers_dropped", dns_answers_dropped.load());
  mirror("chaos.devices_flapped", devices_flapped.load());
  mirror("chaos.payloads_truncated", payloads_truncated.load());
  mirror("chaos.features_nan", features_nan.load());
  mirror("chaos.features_inf", features_inf.load());
  mirror("chaos.faults_thrown", faults_thrown.load());
}

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec) {}

FaultInjector::~FaultInjector() {
  disarm_feature_chaos();
  disarm_crash_points();
}

void FaultInjector::apply(std::vector<Packet>& packets) {
  if (!spec_.any_packet_faults() || packets.empty()) return;
  Rng rng(spec_.seed);

  Timestamp t0 = packets.front().ts;
  Timestamp t1 = packets.front().ts;
  for (const Packet& p : packets) {
    t0 = std::min(t0, p.ts);
    t1 = std::max(t1, p.ts);
  }
  const std::int64_t span = t1 - t0;

  // Device flap: each device independently goes dark for ~30% of the
  // capture, starting somewhere in the middle half.
  if (spec_.flap > 0 && span > 0) {
    std::vector<DeviceId> devices;
    for (const Packet& p : packets) {
      if (p.device != kUnknownDevice) devices.push_back(p.device);
    }
    std::sort(devices.begin(), devices.end());
    devices.erase(std::unique(devices.begin(), devices.end()), devices.end());
    std::unordered_map<DeviceId, std::pair<Timestamp, Timestamp>> outages;
    Rng flap_rng = rng.fork(1);
    for (DeviceId d : devices) {
      if (!flap_rng.chance(spec_.flap)) continue;
      const auto off = static_cast<std::int64_t>(
          flap_rng.uniform(0.25, 0.55) * static_cast<double>(span));
      const auto len =
          static_cast<std::int64_t>(0.3 * static_cast<double>(span));
      outages.emplace(d, std::make_pair(t0 + off, t0 + off + len));
      stats_.devices_flapped.fetch_add(1, std::memory_order_relaxed);
    }
    if (!outages.empty()) {
      std::erase_if(packets, [&](const Packet& p) {
        auto it = outages.find(p.device);
        return it != outages.end() && p.ts >= it->second.first &&
               p.ts < it->second.second;
      });
    }
  }

  // DNS-answer loss: the query goes out, the response never arrives, the
  // resolver never learns the binding — downstream flows stay unresolved.
  if (spec_.dns_loss > 0) {
    Rng dns_rng = rng.fork(2);
    std::erase_if(packets, [&](const Packet& p) {
      if (!is_dns_response(p)) return false;
      if (!dns_rng.chance(spec_.dns_loss)) return false;
      stats_.dns_answers_dropped.fetch_add(1, std::memory_order_relaxed);
      return true;
    });
  }

  // Uniform packet loss.
  if (spec_.drop > 0) {
    Rng drop_rng = rng.fork(3);
    std::erase_if(packets, [&](const Packet&) {
      if (!drop_rng.chance(spec_.drop)) return false;
      stats_.packets_dropped.fetch_add(1, std::memory_order_relaxed);
      return true;
    });
  }

  // Duplication: the copy lands 0.1–1 ms later (same flow, same burst).
  if (spec_.dup > 0) {
    Rng dup_rng = rng.fork(4);
    std::vector<Packet> dups;
    for (const Packet& p : packets) {
      if (!dup_rng.chance(spec_.dup)) continue;
      Packet copy = p;
      copy.ts += static_cast<std::int64_t>(dup_rng.uniform(100.0, 1000.0));
      dups.push_back(std::move(copy));
      stats_.packets_duplicated.fetch_add(1, std::memory_order_relaxed);
    }
    packets.insert(packets.end(), std::make_move_iterator(dups.begin()),
                   std::make_move_iterator(dups.end()));
    std::sort(packets.begin(), packets.end(),
              [](const Packet& a, const Packet& b) {
                return a.ts != b.ts ? a.ts < b.ts
                                    : std::tie(a.tuple.src.port, a.size) <
                                          std::tie(b.tuple.src.port, b.size);
              });
  }

  // Payload truncation: half the payload survives (as after a mid-datagram
  // capture fault). Exercises the lenient/strict parse policies.
  if (spec_.truncate > 0) {
    Rng trunc_rng = rng.fork(5);
    for (Packet& p : packets) {
      if (p.payload.empty() || !trunc_rng.chance(spec_.truncate)) continue;
      p.payload.resize(p.payload.size() / 2);
      stats_.payloads_truncated.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Clock drift: a linear stretch from the capture start, as from a gateway
  // whose oscillator runs fast or slow by `skew_ppm`.
  if (spec_.skew_ppm != 0.0) {
    const double rate = spec_.skew_ppm * 1e-6;
    for (Packet& p : packets) {
      const auto elapsed = static_cast<double>(p.ts - t0);
      p.ts = t0 + static_cast<std::int64_t>(elapsed * (1.0 + rate));
      stats_.timestamps_skewed.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Timestamp regression: individual packets jump 0.5–2 s into the past
  // (NTP step on the capture host). Leaves the stream non-monotonic.
  if (spec_.regress > 0) {
    Rng reg_rng = rng.fork(6);
    for (Packet& p : packets) {
      if (!reg_rng.chance(spec_.regress)) continue;
      p.ts = p.ts - static_cast<std::int64_t>(reg_rng.uniform(5e5, 2e6));
      stats_.timestamps_regressed.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Reordering: swap with the successor (classic out-of-order delivery).
  if (spec_.reorder > 0) {
    Rng ro_rng = rng.fork(7);
    for (std::size_t i = 0; i + 1 < packets.size(); ++i) {
      if (!ro_rng.chance(spec_.reorder)) continue;
      std::swap(packets[i], packets[i + 1]);
      stats_.packets_reordered.fetch_add(1, std::memory_order_relaxed);
    }
  }

  if (stats_.total() > 0) {
    obs::health().degrade("chaos.injector", "injected: " + spec_.summary());
  }
  stats_.publish();
}

void FaultInjector::apply(testbed::GeneratedCapture& cap) {
  apply(cap.packets);
}

void FaultInjector::corrupt(Dataset& ds) {
  if (!spec_.any_feature_faults()) return;
  const double q_nan = spec_.nan;
  const double q_inf = spec_.nan + spec_.inf;
  for (std::size_t i = 0; i < ds.X.size(); ++i) {
    if (ds.X[i].empty()) continue;
    SplitMix64 mix(spec_.seed ^ (i * 0x9e3779b97f4a7c15ULL + 0xc0ffee));
    const std::uint64_t h = mix.next();
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    if (u >= q_inf) continue;
    const std::size_t col = mix.next() % ds.X[i].size();
    if (u < q_nan) {
      ds.X[i][col] = std::numeric_limits<double>::quiet_NaN();
      stats_.features_nan.fetch_add(1, std::memory_order_relaxed);
    } else {
      ds.X[i][col] = (h & 1) ? std::numeric_limits<double>::infinity()
                             : -std::numeric_limits<double>::infinity();
      stats_.features_inf.fetch_add(1, std::memory_order_relaxed);
    }
  }
  stats_.publish();
}

void FaultInjector::arm_feature_chaos() {
  if (!spec_.any_feature_faults()) return;
  FaultInjector* expected = nullptr;
  if (!g_armed.compare_exchange_strong(expected, this)) {
    if (expected == this) return;
    throw std::logic_error("chaos: another FaultInjector is already armed");
  }
  armed_ = true;
  set_feature_chaos_hook(&FaultInjector::hook_trampoline);
  obs::health().degrade("chaos.injector", "armed: " + spec_.summary());
}

void FaultInjector::disarm_feature_chaos() {
  if (!armed_) return;
  set_feature_chaos_hook(nullptr);
  g_armed.store(nullptr, std::memory_order_release);
  armed_ = false;
  stats_.publish();
}

void FaultInjector::arm_crash_points() {
  if (spec_.crash.empty()) return;
  FaultInjector* expected = nullptr;
  if (!g_crash_armed.compare_exchange_strong(expected, this)) {
    if (expected == this) return;
    throw std::logic_error(
        "chaos: another FaultInjector already owns the crash-point hook");
  }
  crash_armed_ = true;
  obs::set_crash_point_hook(&FaultInjector::crash_trampoline);
  // No health degrade on purpose (unlike arm_feature_chaos): the
  // crash-recovery tests compare a killed-and-resumed run byte-for-byte
  // against an uninterrupted no-chaos baseline, and a "chaos.injector"
  // component inside the checkpointed health snapshot would make the two
  // alert documents differ for reasons that have nothing to do with
  // recovery correctness.
}

void FaultInjector::disarm_crash_points() {
  if (!crash_armed_) return;
  obs::set_crash_point_hook(nullptr);
  g_crash_armed.store(nullptr, std::memory_order_release);
  crash_armed_ = false;
}

void FaultInjector::crash_trampoline(const char* point) {
  FaultInjector* self = g_crash_armed.load(std::memory_order_acquire);
  if (self != nullptr) self->maybe_crash(point);
}

void FaultInjector::maybe_crash(const char* point) {
  if (spec_.crash != point) return;
  if (crash_hits_.fetch_add(1, std::memory_order_relaxed) + 1 <
      spec_.crash_after) {
    return;
  }
  // SIGKILL, not exit(): no atexit handlers, no stream flushing, no stack
  // unwinding — indistinguishable from a power cut, which is the failure
  // the checkpoint format must survive.
  (void)std::raise(SIGKILL);
}

bool FaultInjector::flow_fault_fires(const FlowRecord& flow,
                                     std::string_view fault) const {
  if (fault == "throw") {
    return hash_chance(flow_content_hash(flow, spec_.seed, 11),
                       spec_.throw_p);
  }
  const std::uint64_t h = flow_content_hash(flow, spec_.seed, 10);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (fault == "nan") return u < spec_.nan;
  if (fault == "inf") return u >= spec_.nan && u < spec_.nan + spec_.inf;
  return false;
}

void FaultInjector::hook_trampoline(const FlowRecord& flow,
                                    FeatureVector& row) {
  FaultInjector* self = g_armed.load(std::memory_order_acquire);
  if (self != nullptr) self->corrupt_features(flow, row);
}

void FaultInjector::corrupt_features(const FlowRecord& flow,
                                     FeatureVector& row) {
  // Injected exception first: the quarantine paths must cope with feature
  // extraction that never returns.
  if (spec_.throw_p > 0 &&
      hash_chance(flow_content_hash(flow, spec_.seed, 11), spec_.throw_p)) {
    stats_.faults_thrown.fetch_add(1, std::memory_order_relaxed);
    throw ChaosFault("chaos: injected fault extracting features for flow " +
                     flow.group_key());
  }
  const std::uint64_t h = flow_content_hash(flow, spec_.seed, 10);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  if (u < spec_.nan) {
    // Timing features go NaN, as from a single-packet flow divided by zero.
    row[kMeanTbp] = std::numeric_limits<double>::quiet_NaN();
    row[kVarTbp] = std::numeric_limits<double>::quiet_NaN();
    row[kSkewTbp] = std::numeric_limits<double>::quiet_NaN();
    stats_.features_nan.fetch_add(1, std::memory_order_relaxed);
  } else if (u < spec_.nan + spec_.inf) {
    row[kMeanBytes] = std::numeric_limits<double>::infinity();
    row[kKurtosisLength] = -std::numeric_limits<double>::infinity();
    stats_.features_inf.fetch_add(1, std::memory_order_relaxed);
  }
}

FaultSpec parse_chaos_spec(std::string_view spec) {
  if (spec.empty()) return FaultSpec{};
  return FaultSpec::parse(spec);
}

}  // namespace behaviot::chaos
