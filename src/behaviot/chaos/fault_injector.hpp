// Deterministic fault injection for robustness testing.
//
// A FaultInjector perturbs a packet stream (and, through the feature-chaos
// hook, the feature extraction stage) with a fixed menu of fault classes —
// packet loss, duplication, reordering, clock drift, timestamp regression,
// DNS-answer loss, device flap, payload truncation, NaN/Inf feature
// corruption, and injected exceptions. Everything is driven by a seed:
// per-packet faults come from a forked xoshiro stream, per-flow faults from
// a content hash of the flow itself, so the same spec + seed produces the
// same faulted capture at any thread count and the differential tests
// (chaos-off vs chaos-on) are exactly reproducible.
//
// The injector is how the graceful-degradation pipeline is exercised: every
// fault class maps to a recovery path (assembler timestamp clamping,
// unresolved-flow keying, dataset sanitization, quarantine in
// PeriodicModelSet::infer / Pipeline::classify) and each recovery reports
// into obs::HealthRegistry, so `behaviot_cli health` shows precisely which
// components degraded and why.
#pragma once

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "behaviot/flow/features.hpp"
#include "behaviot/net/packet.hpp"

namespace behaviot {
struct Dataset;
}
namespace behaviot::testbed {
struct GeneratedCapture;
}

namespace behaviot::chaos {

/// The exception the `throw=` fault class raises from inside feature
/// extraction; the pipeline must quarantine the affected (device, group) or
/// flow, never crash.
class ChaosFault : public std::runtime_error {
 public:
  explicit ChaosFault(const std::string& what) : std::runtime_error(what) {}
};

/// Parsed `--chaos` specification. All probabilities are per-packet or
/// per-flow Bernoulli rates in [0, 1]; `skew_ppm` is a clock-drift rate in
/// parts per million (applied as a linear stretch from the capture start).
struct FaultSpec {
  double drop = 0.0;      ///< per-packet loss
  double dup = 0.0;       ///< per-packet duplication (copy arrives ~1ms late)
  double reorder = 0.0;   ///< per-packet swap with its successor
  double regress = 0.0;   ///< per-packet backwards timestamp jump (0.5–2 s)
  double dns_loss = 0.0;  ///< per-DNS-response-packet loss
  double flap = 0.0;      ///< per-device mid-capture outage (~30% of span)
  double truncate = 0.0;  ///< per-payload-packet truncation to half length
  double nan = 0.0;       ///< per-flow: timing features become NaN
  double inf = 0.0;       ///< per-flow: size features become +/-Inf
  double throw_p = 0.0;   ///< per-flow: feature extraction throws ChaosFault
  double skew_ppm = 0.0;  ///< clock drift, ppm (may be negative)
  /// Crash-recovery testing: SIGKILL the process at this named crash point
  /// (see obs/crash_point.hpp for the points durability code announces,
  /// e.g. "checkpoint.after_rotate"). Empty = never. Unlike every other
  /// fault class, crashes are counted, not probabilistic: the process dies
  /// at the `crash_after`-th hit of the point, so the kill instant is
  /// exactly reproducible.
  std::string crash;
  std::uint64_t crash_after = 1;  ///< 1-based hit index that fires the kill
  std::uint64_t seed = 0x5eed;

  /// Parses the comma-separated `name=value` grammar, e.g.
  /// "drop=0.01,reorder=0.005,nan=0.02,seed=42". Keys: drop, dup, reorder,
  /// regress, dnsloss, flap, truncate, nan, inf, throw, skew (ppm), seed,
  /// crash (a crash-point name), crashn (1-based hit index, default 1).
  /// Throws std::invalid_argument on unknown keys, malformed numbers, or
  /// out-of-range probabilities.
  static FaultSpec parse(std::string_view spec);

  /// Any fault that rewrites the packet stream.
  [[nodiscard]] bool any_packet_faults() const;
  /// Any fault that fires inside feature extraction (needs the hook armed).
  [[nodiscard]] bool any_feature_faults() const;
  [[nodiscard]] bool enabled() const {
    return any_packet_faults() || any_feature_faults() || !crash.empty();
  }
  /// Compact "drop=0.01 nan=0.02 seed=42" rendering of the non-zero fields.
  [[nodiscard]] std::string summary() const;
};

/// Counts of faults actually injected (as opposed to configured rates).
/// Atomic because the feature hook fires from pool workers.
struct FaultStats {
  std::atomic<std::uint64_t> packets_dropped{0};
  std::atomic<std::uint64_t> packets_duplicated{0};
  std::atomic<std::uint64_t> packets_reordered{0};
  std::atomic<std::uint64_t> timestamps_regressed{0};
  std::atomic<std::uint64_t> timestamps_skewed{0};
  std::atomic<std::uint64_t> dns_answers_dropped{0};
  std::atomic<std::uint64_t> devices_flapped{0};
  std::atomic<std::uint64_t> payloads_truncated{0};
  std::atomic<std::uint64_t> features_nan{0};
  std::atomic<std::uint64_t> features_inf{0};
  std::atomic<std::uint64_t> faults_thrown{0};

  [[nodiscard]] std::uint64_t total() const;
  /// Mirrors every non-zero counter onto the obs registry as "chaos.<name>"
  /// (no-op while metrics collection is disabled).
  void publish() const;
};

/// Applies a FaultSpec to captures and (optionally) to feature extraction.
///
/// Packet-stream faults are applied by `apply()`, which mutates the packet
/// vector in place. Feature faults require `arm_feature_chaos()`, which
/// installs a process-global hook (at most one injector may be armed at a
/// time); disarm with `disarm_feature_chaos()` or let the destructor do it.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);
  ~FaultInjector();
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] const FaultStats& stats() const { return stats_; }

  /// Rewrites the packet stream in place: flap → dnsloss → drop → dup →
  /// truncate → skew → regress → reorder. Deterministic for a given
  /// (spec, input); reports a degradation summary to obs::health() when any
  /// fault fired.
  void apply(std::vector<Packet>& packets);

  /// Convenience for the testbed generator: faults `cap.packets` (ground
  /// truth and rdns entries are left intact — they describe what *should*
  /// have happened, which is exactly what the differential tests compare
  /// against).
  void apply(testbed::GeneratedCapture& cap);

  /// Injects NaN/Inf directly into an assembled dataset (for tests that
  /// exercise the ml/dataset sanitization boundary without a full capture).
  /// Deterministic per (row index, seed).
  void corrupt(Dataset& ds);

  /// Installs this injector's nan/inf/throw faults as the process-global
  /// feature-chaos hook. Throws std::logic_error if another injector is
  /// already armed.
  void arm_feature_chaos();
  /// Removes the hook if this injector installed it.
  void disarm_feature_chaos();

  /// Installs the `crash=` fault as the process-global crash-point hook
  /// (obs/crash_point.hpp): the process raises SIGKILL — no atexit, no
  /// flushing, exactly like a power cut — at the crash_after-th hit of the
  /// named point. No-op for a spec without `crash`. Deliberately does NOT
  /// degrade health: the crash-recovery tests compare a killed-and-resumed
  /// run byte-for-byte against an uninterrupted no-chaos baseline, so
  /// arming must leave no trace in checkpointed state.
  void arm_crash_points();
  /// Removes the crash-point hook if this injector installed it.
  void disarm_crash_points();

  /// Per-flow fault decision, exposed for the differential tests: true when
  /// `fault` ("nan" | "inf" | "throw") fires for this flow under the spec.
  [[nodiscard]] bool flow_fault_fires(const FlowRecord& flow,
                                      std::string_view fault) const;

 private:
  static void hook_trampoline(const FlowRecord& flow, FeatureVector& row);
  static void crash_trampoline(const char* point);
  void corrupt_features(const FlowRecord& flow, FeatureVector& row);
  void maybe_crash(const char* point);

  FaultSpec spec_;
  FaultStats stats_;
  bool armed_ = false;
  bool crash_armed_ = false;
  std::atomic<std::uint64_t> crash_hits_{0};
};

/// Parses `spec`, or returns an empty (all-zero) FaultSpec for an empty
/// string. Convenience for CLI flag plumbing.
[[nodiscard]] FaultSpec parse_chaos_spec(std::string_view spec);

}  // namespace behaviot::chaos
