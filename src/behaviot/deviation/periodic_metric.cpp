#include "behaviot/deviation/periodic_metric.hpp"

// Header-only metric; this TU anchors the module in the build.
