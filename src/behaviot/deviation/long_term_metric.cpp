#include "behaviot/deviation/long_term_metric.hpp"

#include <algorithm>
#include <cmath>
#include <map>

namespace behaviot {

double binomial_z_score(double p, double p0, std::size_t n) {
  if (n == 0) return 0.0;
  const double floor = 1.0 / (static_cast<double>(n) + 2.0);
  const double p0c = std::clamp(p0, floor, 1.0 - floor);
  const double se = std::sqrt(p0c * (1.0 - p0c) / static_cast<double>(n));
  return (p - p0c) / se;
}

std::vector<LongTermDeviation> long_term_deviations(
    const Pfsm& model, std::span<const std::vector<std::string>> window) {
  // Observed bigram counts in the window, with INITIAL/TERMINAL ends.
  std::map<std::string, std::size_t> from_totals;
  std::map<std::pair<std::string, std::string>, std::size_t> pair_counts;
  for (const auto& trace : window) {
    if (trace.empty()) continue;
    ++pair_counts[{Pfsm::kInitialLabel, trace.front()}];
    ++from_totals[Pfsm::kInitialLabel];
    for (std::size_t i = 0; i + 1 < trace.size(); ++i) {
      ++pair_counts[{trace[i], trace[i + 1]}];
      ++from_totals[trace[i]];
    }
    ++pair_counts[{trace.back(), Pfsm::kTerminalLabel}];
    ++from_totals[trace.back()];
  }

  std::vector<LongTermDeviation> out;
  for (const auto& [pair, count] : pair_counts) {
    LongTermDeviation d;
    d.from = pair.first;
    d.to = pair.second;
    d.occurrences = from_totals[pair.first];
    d.observed_p =
        static_cast<double>(count) / static_cast<double>(d.occurrences);
    d.model_p = model.label_bigram(pair.first, pair.second).probability;
    d.z_abs = std::abs(binomial_z_score(d.observed_p, d.model_p,
                                        d.occurrences));
    out.push_back(std::move(d));
  }
  std::sort(out.begin(), out.end(),
            [](const LongTermDeviation& a, const LongTermDeviation& b) {
              return a.z_abs > b.z_abs;
            });
  return out;
}

}  // namespace behaviot
