// Long-term deviation metric (§4.3):
//   Z = |z|,  z = (p - p0) / sqrt(p0 (1 - p0) / n)
// The binomial z-score of an observed transition frequency p (over n
// occurrences of the source state in a snapshot window) against the modeled
// transition probability p0. Captures compound frequency drift — e.g. a
// smart speaker mis-activating far more often than the model expects.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "behaviot/pfsm/pfsm.hpp"

namespace behaviot {

/// 95% confidence interval on the standard normal (§5.3).
inline constexpr double kLongTermZThreshold = 1.959963984540054;

/// Raw z-score; p0 is clamped away from {0, 1} with a 1/(n+2) Laplace floor
/// so never-seen transitions still produce a finite, large score.
[[nodiscard]] double binomial_z_score(double p, double p0, std::size_t n);

struct LongTermDeviation {
  std::string from;
  std::string to;
  double observed_p = 0.0;
  double model_p = 0.0;
  std::size_t occurrences = 0;  ///< n: source-label occurrences in window
  double z_abs = 0.0;
};

/// Scores every label transition observed in a window of traces against the
/// model's bigram probabilities. INITIAL/TERMINAL boundaries participate as
/// pseudo-labels. Sorted by descending |z|.
std::vector<LongTermDeviation> long_term_deviations(
    const Pfsm& model, std::span<const std::vector<std::string>> window);

}  // namespace behaviot
