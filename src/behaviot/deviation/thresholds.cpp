#include "behaviot/deviation/thresholds.hpp"

#include <algorithm>
#include <cmath>

namespace behaviot {

double cdf_knee(std::vector<double> samples) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const std::size_t n = samples.size();
  if (samples.front() == samples.back()) return samples.front();

  // Normalize both axes to [0,1]; knee = max perpendicular distance from
  // the straight line joining the endpoints of the CDF.
  const double x0 = samples.front();
  const double x_range = samples.back() - x0;
  double best_dist = -1.0;
  double best_x = samples.front();
  for (std::size_t i = 0; i < n; ++i) {
    const double x = (samples[i] - x0) / x_range;
    const double y = static_cast<double>(i + 1) / static_cast<double>(n);
    // Distance from the y=x chord is |y - x| / sqrt(2); the constant factor
    // does not affect the argmax.
    const double dist = y - x;
    if (dist > best_dist) {
      best_dist = dist;
      best_x = samples[i];
    }
  }
  return best_x;
}

double z_for_confidence(double confidence) {
  // Acklam's rational approximation of the inverse standard-normal CDF,
  // evaluated at (1 + confidence) / 2 for a two-sided interval.
  const double p = std::clamp((1.0 + confidence) / 2.0, 1e-10, 1.0 - 1e-10);

  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};

  const double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace behaviot
