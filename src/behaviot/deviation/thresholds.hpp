// Significance-threshold calibration (§5.3).
//
// Each deviation metric gets its own statistically motivated threshold:
// periodic — the knee of the training CDF (ln 5 in the paper); short-term —
// µ + nσ over training scores; long-term — a normal confidence interval.
#pragma once

#include <span>
#include <vector>

namespace behaviot {

struct DeviationThresholds {
  double periodic = 1.6094379124341003;  ///< ln(5), see periodic_metric.hpp
  double short_term = 0.0;               ///< calibrate via µ + nσ
  double long_term_z = 1.959963984540054;  ///< 95% CI
};

/// Knee-of-CDF estimator: the point of maximum curvature of the empirical
/// CDF, found by the Kneedle-style maximum distance from the chord between
/// the curve's endpoints. Used to justify the periodic threshold on data.
[[nodiscard]] double cdf_knee(std::vector<double> samples);

/// z-value for a symmetric confidence interval, e.g. 0.95 → 1.96.
/// Implemented with the Acklam inverse-normal approximation.
[[nodiscard]] double z_for_confidence(double confidence);

}  // namespace behaviot
