#include "behaviot/deviation/short_term_metric.hpp"

#include <cmath>

#include "behaviot/net/stats.hpp"

namespace behaviot {

double short_term_deviation(const Pfsm& pfsm,
                            std::span<const std::string> labels,
                            double alpha) {
  const double p = pfsm.trace_probability(labels, alpha);
  // Smoothing guarantees p > 0; clamp defensively anyway.
  return 1.0 - std::log(std::max(p, 1e-300));
}

ShortTermThreshold ShortTermThreshold::calibrate(
    const Pfsm& pfsm, std::span<const std::vector<std::string>> traces,
    double n_sigma, double alpha) {
  std::vector<double> scores;
  scores.reserve(traces.size());
  for (const auto& t : traces) {
    scores.push_back(short_term_deviation(pfsm, t, alpha));
  }
  ShortTermThreshold threshold;
  threshold.mean = stats::mean(scores);
  threshold.sigma = stats::sample_stddev(scores);
  threshold.n_sigma = n_sigma;
  return threshold;
}

}  // namespace behaviot
