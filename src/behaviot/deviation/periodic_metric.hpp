// Periodic-event deviation metric (§4.3):
//   Mp = log(|T0 - T| / T + 1)
// where T is the modeled period and T0 the elapsed time measured by a
// count-up timer since the last occurrence. Zero when events follow their
// period exactly; grows logarithmically with lateness/earliness.
#pragma once

#include <cmath>

namespace behaviot {

/// The paper's significance threshold: ln(5), reached when T0 = 5T,
/// identified at the knee of the Fig. 4a CDF.
inline constexpr double kPeriodicDeviationThreshold = 1.6094379124341003;

[[nodiscard]] inline double periodic_deviation(double elapsed_seconds,
                                               double period_seconds) {
  if (period_seconds <= 0.0) return 0.0;
  return std::log(std::abs(elapsed_seconds - period_seconds) /
                      period_seconds +
                  1.0);
}

/// Variant that forgives skipped-cycle arrivals: the deviation is measured
/// against the nearest period multiple up to `max_cycles`, matching the
/// timer-based classifier's slack. Used when scoring *observed* events;
/// the plain form is used for count-up timers on *missing* events.
[[nodiscard]] inline double periodic_deviation_nearest_cycle(
    double elapsed_seconds, double period_seconds, int max_cycles = 1) {
  if (period_seconds <= 0.0) return 0.0;
  double best = periodic_deviation(elapsed_seconds, period_seconds);
  for (int k = 2; k <= max_cycles; ++k) {
    const double d = std::log(
        std::abs(elapsed_seconds - k * period_seconds) / period_seconds + 1.0);
    best = std::min(best, d);
  }
  return best;
}

}  // namespace behaviot
