// Streaming deviation monitor: evaluates successive time windows of traffic
// against the trained behavior models and emits significant deviations,
// reproducing the §6.2 longitudinal analysis.
#pragma once

#include <map>
#include <set>
#include <span>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "behaviot/deviation/long_term_metric.hpp"
#include "behaviot/deviation/periodic_metric.hpp"
#include "behaviot/deviation/short_term_metric.hpp"
#include "behaviot/deviation/thresholds.hpp"
#include "behaviot/periodic/periodic_model.hpp"
#include "behaviot/pfsm/trace.hpp"

namespace behaviot {

enum class DeviationSource : std::uint8_t {
  kPeriodic,
  kShortTerm,
  kLongTerm,
};

[[nodiscard]] const char* to_string(DeviationSource s);

/// Decision provenance: the machine-readable evidence behind one alert,
/// sufficient to reconstruct *why* the monitor fired without re-running it.
/// `metric`/`observed`/`expected`/`threshold` are populated for every
/// source; the remaining fields depend on it:
///  - periodic: `model_group` is the deviating (device, group) key's group,
///    `support` the model's training support, and — when the worst deviation
///    was an observed flow rather than a silence and the model set carries a
///    fitted cluster stage — `cluster_id`/`cluster_distance` locate that
///    flow against the trained density clusters.
///  - short-term: `model_group` is the deviating trace's label sequence,
///    `support` its length, `vote_margin` the weakest forest vote margin
///    among the trace's inferred events.
///  - long-term: `model_group` is the "from -> to" transition, `support`
///    the occurrence count n behind the binomial test.
struct AlertExplanation {
  std::string metric;       ///< "Mp" | "A_T" | "|z|"
  double observed = 0.0;    ///< measured quantity (elapsed s / A_T / p̂)
  double expected = 0.0;    ///< model expectation (period T / µ / p0)
  double threshold = 0.0;   ///< the crossed threshold, in score units
  std::string model_group;  ///< group key / trace signature / transition
  int cluster_id = -1;             ///< nearest DBSCAN cluster; -1 when n/a
  double cluster_distance = -1.0;  ///< distance to nearest core; <0 when n/a
  double vote_margin = -1.0;       ///< weakest event vote margin; <0 when n/a
  std::size_t support = 0;  ///< model support / trace length / n
};

struct DeviationAlert {
  DeviationSource source = DeviationSource::kPeriodic;
  Timestamp when;
  DeviceId device = kUnknownDevice;
  double score = 0.0;
  double threshold = 0.0;
  /// Human-readable explanation: which model/trace/transition deviated.
  std::string context;
  /// Machine-readable provenance (always populated by evaluate_window).
  AlertExplanation explanation;
};

struct MonitorOptions {
  DeviationThresholds thresholds;
  double smoothing_alpha = kDefaultSmoothingAlpha;
  /// At most one periodic alert per model per window (the paper reports
  /// deviations, not every late heartbeat).
  bool dedupe_periodic_per_model = true;
  /// Identical deviating label sequences within one window collapse into a
  /// single short-term alert (a repeating anomaly is one deviation).
  bool dedupe_short_term_traces = true;
  /// ...and across windows: a novel sequence is one behavior change, not a
  /// new deviation every day it recurs.
  bool dedupe_short_term_across_windows = true;
  /// One periodic alert per device per window, carrying the worst-scoring
  /// group and the number of co-deviating groups. A whole-device outage is
  /// one deviation, not one per heartbeat destination.
  bool aggregate_periodic_per_device = true;
  /// Bonferroni-style correction of the long-term threshold: a window tests
  /// every observed transition, so the per-transition z threshold is set
  /// for a family-wise 5% at z(1 - 0.05 / #transitions) instead of the raw
  /// 95% CI. Keeps daily windows from flagging noise transitions.
  bool long_term_family_wise = true;
};

/// Serializable streaming state of a DeviationMonitor (checkpointing):
/// armed count-up timers, ongoing silence episodes, cross-window trace
/// dedup, and the first-sighting priming flag. Entries are in the ordered
/// containers' iteration order, so export is deterministic.
struct DeviationMonitorState {
  std::vector<std::tuple<DeviceId, std::string, Timestamp>> last_seen;
  std::vector<std::pair<DeviceId, std::string>> silence_reported;
  std::vector<std::string> reported_sequences;
  bool primed = false;
};

class DeviationMonitor {
 public:
  /// Both models must outlive the monitor. `short_term` must have been
  /// calibrated on the training traces.
  DeviationMonitor(const PeriodicModelSet& periodic, const Pfsm& pfsm,
                   ShortTermThreshold short_term, MonitorOptions options = {});

  /// Evaluates one window. `flows` are the window's flows (periodic-group
  /// timing is derived from them); `traces` its user-event traces. Stateful:
  /// last-seen times persist across windows so outages spanning windows
  /// keep scoring.
  std::vector<DeviationAlert> evaluate_window(
      Timestamp window_start, Timestamp window_end,
      std::span<const FlowRecord> flows, std::span<const EventTrace> traces);

  /// Forgets all streaming state.
  void reset();

  /// Points the monitor at a new model generation (hot model swap in
  /// `behaviot watch`). Streaming state — armed timers, silence episodes,
  /// reported sequences — is retained; entries keyed by groups absent from
  /// the new set are purged at the next window start, exactly as reset-free
  /// retraining behaves in the batch engine. The referents must outlive the
  /// monitor (the watch engine keeps the owning generation alive until the
  /// next swap completes).
  void rebind(const PeriodicModelSet& periodic, const Pfsm& pfsm,
              ShortTermThreshold short_term);

  /// Snapshot / restore of the streaming state (checkpointing). The model
  /// references are not part of the snapshot — rebind() or construction
  /// against the restored generation precedes import_state().
  [[nodiscard]] DeviationMonitorState export_state() const;
  void import_state(const DeviationMonitorState& state);

 private:
  const PeriodicModelSet* periodic_;
  const Pfsm* pfsm_;
  ShortTermThreshold short_term_;
  MonitorOptions options_;
  /// Count-up timers: last occurrence per (device, group).
  std::map<std::pair<DeviceId, std::string>, Timestamp> last_seen_;
  /// Groups whose ongoing silence was already alerted; one alert per
  /// silence episode (the paper counts deviation events, not silent days).
  std::set<std::pair<DeviceId, std::string>> silence_reported_;
  /// Novel trace signatures already alerted (cross-window dedup).
  std::set<std::string> reported_sequences_;
  bool primed_ = false;
};

}  // namespace behaviot
