// Streaming deviation monitor: evaluates successive time windows of traffic
// against the trained behavior models and emits significant deviations,
// reproducing the §6.2 longitudinal analysis.
#pragma once

#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "behaviot/deviation/long_term_metric.hpp"
#include "behaviot/deviation/periodic_metric.hpp"
#include "behaviot/deviation/short_term_metric.hpp"
#include "behaviot/deviation/thresholds.hpp"
#include "behaviot/periodic/periodic_model.hpp"
#include "behaviot/pfsm/trace.hpp"

namespace behaviot {

enum class DeviationSource : std::uint8_t {
  kPeriodic,
  kShortTerm,
  kLongTerm,
};

[[nodiscard]] const char* to_string(DeviationSource s);

struct DeviationAlert {
  DeviationSource source = DeviationSource::kPeriodic;
  Timestamp when;
  DeviceId device = kUnknownDevice;
  double score = 0.0;
  double threshold = 0.0;
  /// Human-readable explanation: which model/trace/transition deviated.
  std::string context;
};

struct MonitorOptions {
  DeviationThresholds thresholds;
  double smoothing_alpha = kDefaultSmoothingAlpha;
  /// At most one periodic alert per model per window (the paper reports
  /// deviations, not every late heartbeat).
  bool dedupe_periodic_per_model = true;
  /// Identical deviating label sequences within one window collapse into a
  /// single short-term alert (a repeating anomaly is one deviation).
  bool dedupe_short_term_traces = true;
  /// ...and across windows: a novel sequence is one behavior change, not a
  /// new deviation every day it recurs.
  bool dedupe_short_term_across_windows = true;
  /// One periodic alert per device per window, carrying the worst-scoring
  /// group and the number of co-deviating groups. A whole-device outage is
  /// one deviation, not one per heartbeat destination.
  bool aggregate_periodic_per_device = true;
  /// Bonferroni-style correction of the long-term threshold: a window tests
  /// every observed transition, so the per-transition z threshold is set
  /// for a family-wise 5% at z(1 - 0.05 / #transitions) instead of the raw
  /// 95% CI. Keeps daily windows from flagging noise transitions.
  bool long_term_family_wise = true;
};

class DeviationMonitor {
 public:
  /// Both models must outlive the monitor. `short_term` must have been
  /// calibrated on the training traces.
  DeviationMonitor(const PeriodicModelSet& periodic, const Pfsm& pfsm,
                   ShortTermThreshold short_term, MonitorOptions options = {});

  /// Evaluates one window. `flows` are the window's flows (periodic-group
  /// timing is derived from them); `traces` its user-event traces. Stateful:
  /// last-seen times persist across windows so outages spanning windows
  /// keep scoring.
  std::vector<DeviationAlert> evaluate_window(
      Timestamp window_start, Timestamp window_end,
      std::span<const FlowRecord> flows, std::span<const EventTrace> traces);

  /// Forgets all streaming state.
  void reset();

 private:
  const PeriodicModelSet* periodic_;
  const Pfsm* pfsm_;
  ShortTermThreshold short_term_;
  MonitorOptions options_;
  /// Count-up timers: last occurrence per (device, group).
  std::map<std::pair<DeviceId, std::string>, Timestamp> last_seen_;
  /// Groups whose ongoing silence was already alerted; one alert per
  /// silence episode (the paper counts deviation events, not silent days).
  std::set<std::pair<DeviceId, std::string>> silence_reported_;
  /// Novel trace signatures already alerted (cross-window dedup).
  std::set<std::string> reported_sequences_;
  bool primed_ = false;
};

}  // namespace behaviot
